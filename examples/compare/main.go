// Algorithm shoot-out: the direct comparison the paper names as future work
// (§8). Parallel ER, aspiration search, mandatory-work-first, tree-
// splitting and pv-splitting all search the same strongly ordered tree on
// the same virtual hardware, and the table shows how their speedups scale
// with processors.
package main

import (
	"flag"
	"fmt"

	"ertree"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 99, "tree seed")
		degree = flag.Int("degree", 4, "tree degree")
		depth  = flag.Int("depth", 8, "tree height = search depth")
	)
	flag.Parse()

	tr := ertree.NewStrongTree(*seed, *degree, *depth)
	order := ertree.StaticOrder{MaxPly: 5}
	cost := ertree.DefaultCostModel()

	var abStats ertree.Stats
	sab := ertree.Serial{Stats: &abStats, Order: order}
	value := sab.AlphaBeta(tr.Root(), *depth, ertree.FullWindow())
	serialCost := cost.Of(abStats.Snapshot())
	fmt.Printf("strongly ordered tree %v, value %d, serial alpha-beta %d units\n\n",
		tr, value, serialCost)

	check := func(algo string, v ertree.Value) {
		if v != value {
			panic(fmt.Sprintf("%s returned %d, want %d", algo, v, value))
		}
	}

	fmt.Printf("%4s %12s %12s %12s %12s %12s\n", "P", "parallel-ER", "aspiration", "MWF", "tree-split", "pv-split")
	for _, p := range []int{1, 2, 4, 8, 16} {
		er, err := ertree.Simulate(tr.Root(), *depth,
			ertree.Config{Workers: p, SerialDepth: *depth - 3, Order: order}, cost)
		if err != nil {
			panic(err)
		}
		check("parallel ER", er.Value)

		asp := ertree.Aspiration(tr.Root(), *depth,
			ertree.AspirationOptions{Workers: p, Bound: 3000, Order: order}, cost)
		check("aspiration", asp.Value)

		mwf := ertree.MWF(tr.Root(), *depth,
			ertree.MWFOptions{Workers: p, SerialDepth: *depth - 3, Order: order}, cost)
		check("MWF", mwf.Value)

		// Tree-splitting uses the binary processor tree closest to P.
		h := 0
		for 1<<(h+1) <= p {
			h++
		}
		opt := ertree.TreeSplitOptions{Height: h, Fanout: 2, Order: order}
		ts := ertree.TreeSplit(tr.Root(), *depth, opt, cost)
		check("tree-splitting", ts.Value)
		pv := ertree.PVSplit(tr.Root(), *depth, opt, cost)
		check("pv-splitting", pv.Value)

		sp := func(t int64) float64 { return float64(serialCost) / float64(t) }
		fmt.Printf("%4d %12.2f %12.2f %12.2f %12.2f %12.2f\n",
			p, sp(er.VirtualTime), sp(asp.ParallelTime), sp(mwf.VirtualTime),
			sp(ts.Time), sp(pv.Time))
	}
	fmt.Println("\n(table entries are speedups over serial alpha-beta; tree-split and")
	fmt.Println(" pv-split use the binary processor tree with at most P leaf processors)")
}
