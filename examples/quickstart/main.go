// Quickstart: define a game by implementing ertree.Position, then search it
// serially and in parallel.
//
// The game here is a tiny "withdrawal" Nim variant: a pile of N stones,
// players alternately remove 1-3 stones, and taking the last stone WINS.
// The exact value from the mover's view is +1 unless N % 4 == 0 (the
// classical losing positions), which the searches verify.
package main

import (
	"fmt"
	"log"

	"ertree"
)

// Nim is a pile of stones; the player to move removes 1-3. It implements
// ertree.Position.
type Nim int

// Children returns the positions after removing 1, 2 or 3 stones.
func (n Nim) Children() []ertree.Position {
	var out []ertree.Position
	for take := 1; take <= 3 && take <= int(n); take++ {
		out = append(out, n-Nim(take))
	}
	return out
}

// Value scores a terminal pile: 0 stones means the previous player took the
// last stone, so the player to move has lost. Non-terminal positions are
// unknown to the static evaluator (0).
func (n Nim) Value() ertree.Value {
	if n == 0 {
		return -1
	}
	return 0
}

func main() {
	for pile := 1; pile <= 14; pile++ {
		depth := pile // enough plies to play the game out
		want := ertree.Value(1)
		if pile%4 == 0 {
			want = -1
		}

		// Serial reference searches.
		negmax := ertree.Negmax(Nim(pile), depth)
		ab := ertree.AlphaBeta(Nim(pile), depth)
		er := ertree.SerialER(Nim(pile), depth)

		// Parallel ER on 4 goroutine workers.
		par, err := ertree.Search(Nim(pile), depth, ertree.Config{Workers: 4, SerialDepth: 3})
		if err != nil {
			log.Fatalf("pile %d: %v", pile, err)
		}

		// Parallel ER on 4 virtual processors of the deterministic
		// simulator, which also reports virtual time.
		sim, err := ertree.Simulate(Nim(pile), depth, ertree.Config{Workers: 4, SerialDepth: 3},
			ertree.DefaultCostModel())
		if err != nil {
			log.Fatalf("pile %d: %v", pile, err)
		}

		if negmax != want || ab != want || er != want || par.Value != want || sim.Value != want {
			log.Fatalf("pile %d: got %d/%d/%d/%d/%d, want %d",
				pile, negmax, ab, er, par.Value, sim.Value, want)
		}
		fmt.Printf("pile %2d: value %+d (virtual time %4d on 4 processors)\n",
			pile, sim.Value, sim.VirtualTime)
	}
	fmt.Println("all searches agree: piles divisible by 4 are lost for the mover")
}
