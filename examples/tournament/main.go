// Tournament: engines powered by the different search algorithms play a
// Connect Four round-robin — the library as a game-playing toolkit. Engines
// of equal depth pick equally good moves and tend to split or draw their
// games; the shallow engine should finish last.
package main

import (
	"fmt"

	"ertree"
)

func engine(name string, depth int, search func(ertree.Position, int) ertree.Value) ertree.SearchEngine {
	return ertree.SearchEngine{
		Label: fmt.Sprintf("%s(d=%d)", name, depth),
		Search: func(child ertree.Position) ertree.Value {
			return search(child, depth)
		},
	}
}

func main() {
	parER := func(p ertree.Position, d int) ertree.Value {
		res, err := ertree.Search(p, d, ertree.Config{Workers: 4, SerialDepth: d - 2})
		if err != nil {
			panic(err)
		}
		return res.Value
	}
	alphaBeta := func(p ertree.Position, d int) ertree.Value {
		var s ertree.Serial
		return s.AlphaBeta(p, d, ertree.FullWindow())
	}
	serialER := func(p ertree.Position, d int) ertree.Value {
		var s ertree.Serial
		return s.ER(p, d, ertree.FullWindow())
	}
	pvs := func(p ertree.Position, d int) ertree.Value {
		var s ertree.Serial
		return s.PVS(p, d, ertree.FullWindow())
	}

	engines := []ertree.Engine{
		engine("parallel-er", 7, parER),
		engine("alpha-beta", 7, alphaBeta),
		engine("serial-er", 7, serialER),
		engine("pvs", 7, pvs),
		engine("shallow-ab", 2, alphaBeta),
	}

	outcome := func(final ertree.Playable) int {
		b := final.(ertree.Connect4Board)
		switch v := b.Value(); {
		case v <= -9000:
			return -1
		case v >= 9000:
			return 1
		default:
			return 0
		}
	}

	points := make([]float64, len(engines))
	fmt.Println("connect four round-robin, 2 games per pairing (colors alternate):")
	for i := 0; i < len(engines); i++ {
		for j := i + 1; j < len(engines); j++ {
			aw, bw, dr := ertree.PlaySeries(ertree.Connect4(), engines[i], engines[j], 2, 42, outcome)
			points[i] += float64(aw) + float64(dr)/2
			points[j] += float64(bw) + float64(dr)/2
			fmt.Printf("  %-18s vs %-18s  %d-%d (%d draws)\n",
				engines[i].Name(), engines[j].Name(), aw, bw, dr)
		}
	}
	fmt.Println("\nstandings:")
	for i, e := range engines {
		fmt.Printf("  %-18s %.1f\n", e.Name(), points[i])
	}
}
