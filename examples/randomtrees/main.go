// Random-tree scaling study: a compact version of the paper's Figures 11
// and 13 on a user-chosen random tree, printed as text curves. It shows the
// two headline behaviors: efficiency declines gently as processors are
// added, and the number of nodes examined grows quickly up to ~4 processors
// and then plateaus.
package main

import (
	"flag"
	"fmt"
	"strings"

	"ertree"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 2026, "tree seed")
		degree = flag.Int("degree", 4, "tree degree")
		depth  = flag.Int("depth", 8, "tree height = search depth")
		serial = flag.Int("serial-depth", 5, "serial subtree depth")
	)
	flag.Parse()

	tr := ertree.NewRandomTree(*seed, *degree, *depth)
	cost := ertree.DefaultCostModel()

	// Serial baselines.
	var abStats, erStats ertree.Stats
	sab := ertree.Serial{Stats: &abStats}
	value := sab.AlphaBeta(tr.Root(), *depth, ertree.FullWindow())
	ser := ertree.Serial{Stats: &erStats}
	if v := ser.ER(tr.Root(), *depth, ertree.FullWindow()); v != value {
		panic("serial algorithms disagree")
	}
	abCost := cost.Of(abStats.Snapshot())
	erCost := cost.Of(erStats.Snapshot())
	best := abCost
	if erCost < best {
		best = erCost
	}
	fmt.Printf("tree %v, exact value %d\n", tr, value)
	fmt.Printf("serial alpha-beta: %d cost units; serial ER: %d cost units\n\n", abCost, erCost)

	fmt.Printf("%3s  %10s  %10s  %10s  %s\n", "P", "time", "speedup", "nodes", "efficiency")
	for _, p := range []int{1, 2, 4, 8, 12, 16} {
		res, err := ertree.Simulate(tr.Root(), *depth, ertree.Config{
			Workers:     p,
			SerialDepth: *serial,
		}, cost)
		if err != nil {
			panic(err)
		}
		if res.Value != value {
			panic("parallel ER disagrees")
		}
		speedup := float64(best) / float64(res.VirtualTime)
		eff := speedup / float64(p)
		bar := strings.Repeat("#", int(eff*40+0.5))
		fmt.Printf("%3d  %10d  %10.2f  %10d  %.3f %s\n",
			p, res.VirtualTime, speedup, res.Stats.Generated+res.Stats.Evaluated, eff, bar)
	}
	fmt.Println("\n(efficiency is speedup over the best serial algorithm divided by P)")
}
