// Connect Four analysis: BestMove with parallel ER scores every opening
// reply, then the engine plays out a short game against itself, printing
// the principal line. Demonstrates the move-selection API on a third game.
package main

import (
	"fmt"
	"log"

	"ertree"
)

const (
	searchDepth = 9
	playPlies   = 16
)

func main() {
	cfg := ertree.Config{Workers: 4, SerialDepth: 6}

	// Score every first move of the game.
	b := ertree.Connect4()
	best, all, err := ertree.BestMove(b, searchDepth, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opening analysis at depth %d (children are center-out: 3,2,4,1,5,0,6):\n", searchDepth)
	for _, m := range all {
		marker := " "
		if m.Index == best.Index {
			marker = "*"
		}
		kind := "score"
		if !m.Exact {
			kind = "bound" // refuted by the scout search: upper bound only
		}
		fmt.Printf("  %s child %d: %s %+d\n", marker, m.Index, kind, m.Score)
	}

	// Self-play: the engine answers itself for a few plies.
	fmt.Printf("\nself-play, %d plies at depth %d:\n\n", playPlies, searchDepth)
	for i := 0; i < playPlies && !b.Terminal(); i++ {
		best, _, err := ertree.BestMove(b, searchDepth, cfg)
		if err != nil {
			break
		}
		kids := b.Children()
		b = kids[best.Index].(ertree.Connect4Board)
	}
	fmt.Print(b)
	v := ertree.AlphaBeta(b, 10)
	fmt.Printf("\nposition after %d plies; 10-ply value for the player to move: %+d\n", b.Ply(), v)
}
