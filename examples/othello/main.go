// Othello self-play: the paper's real-game workload used as an engine.
// Parallel ER (White) plays serial alpha-beta (Black) from the standard
// initial position; both search 5 plies with static move ordering. The
// example prints the game and the final score, demonstrating the engine on
// the paper's domain end to end.
package main

import (
	"fmt"
	"log"

	"ertree"
)

const searchDepth = 5

// pickMove returns the best move index for the side to move under the given
// search function (our engine scores a child by the negation of its value).
func pickMove(b ertree.OthelloBoard, search func(ertree.Position) ertree.Value) int {
	moves := b.Moves()
	bestMove, bestScore := -1, -ertree.Inf
	for _, m := range moves {
		child, ok := b.Play(m)
		if !ok {
			log.Fatalf("legal move rejected: %d", m)
		}
		if score := -search(child); score > bestScore {
			bestMove, bestScore = m, score
		}
	}
	return bestMove
}

func main() {
	order := ertree.StaticOrder{MaxPly: 5}
	parallelER := func(p ertree.Position) ertree.Value {
		res, err := ertree.Search(p, searchDepth, ertree.Config{
			Workers:     4,
			SerialDepth: 3,
			Order:       order,
		})
		if err != nil {
			panic(err)
		}
		return res.Value
	}
	alphaBeta := func(p ertree.Position) ertree.Value {
		s := ertree.Serial{Order: order}
		return s.AlphaBeta(p, searchDepth, ertree.FullWindow())
	}

	b := ertree.Othello()
	var moveLog []string
	for !b.Terminal() {
		moves := b.Moves()
		if len(moves) == 0 {
			nb, _ := b.Play(-1) // forced pass
			b = nb
			moveLog = append(moveLog, "pass")
			continue
		}
		var mv int
		if b.BlackToMove() {
			mv = pickMove(b, alphaBeta)
		} else {
			mv = pickMove(b, parallelER)
		}
		nb, ok := b.Play(mv)
		if !ok {
			log.Fatalf("engine chose an illegal move")
		}
		moveLog = append(moveLog, squareName(mv))
		b = nb
	}

	fmt.Println("final position:")
	fmt.Print(b)
	own, opp := b.Discs()
	black, white := own, opp
	if !b.BlackToMove() {
		black, white = opp, own
	}
	fmt.Printf("\nmoves (%d): %v\n", len(moveLog), moveLog)
	fmt.Printf("score: Black (alpha-beta) %d - White (parallel ER) %d\n", black, white)
	switch {
	case white > black:
		fmt.Println("parallel ER wins")
	case black > white:
		fmt.Println("alpha-beta wins")
	default:
		fmt.Println("draw")
	}
}

func squareName(i int) string {
	return string([]byte{byte('a' + i%8), byte('1' + i/8)})
}
