// Command ertree searches a position with any of the repository's
// algorithms and reports the value and search statistics.
//
// Usage:
//
//	ertree -game othello -root O1 -depth 7 -algo er-par -workers 16 -serial-depth 5
//	ertree -game random -seed 7 -degree 4 -tree-depth 10 -depth 10 -algo ab
//	ertree -game ttt -algo negmax -depth 9
//	ertree -game strong -degree 8 -tree-depth 6 -depth 6 -algo pvsplit -workers 4
//
// Algorithms: negmax, ab (alpha-beta), ab-tt (with transposition table),
// ab-select (selective sorting), abnd (without deep cutoffs), id (iterative
// deepening), er (serial ER), er-par (parallel ER on the deterministic
// simulator), er-real (parallel ER on goroutines), aspiration, mwf,
// rootsplit, treesplit, pvsplit, pvsplit-mw.
//
// -backend runs the search through the engine's backend seam instead of
// -algo, comparing schedulers on identical terms:
//
//	ertree -game connect4 -depth 9 -backend lazysmp -workers 4 -table-bits 20
//
// -driver runs a full deepening session through the engine's root-driver
// seam (aspiration, mtdf, bns), printing one line per iteration with the
// driver's probe and re-search counts:
//
//	ertree -game othello -depth 8 -driver mtdf -workers 4 -table-bits 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ertree"
	"ertree/internal/engine"
	"ertree/internal/metrics"
	"ertree/internal/obs"
)

func main() {
	var (
		gameName    = flag.String("game", "othello", "game: othello, ttt, connect4, checkers, random, strong")
		rootName    = flag.String("root", "", "othello root: empty for the initial position, or O1/O2/O3")
		seed        = flag.Uint64("seed", 1, "random/strong tree seed")
		degree      = flag.Int("degree", 4, "random/strong tree degree")
		treeDepth   = flag.Int("tree-depth", 8, "random/strong tree height")
		depth       = flag.Int("depth", 6, "search depth (plies)")
		algo        = flag.String("algo", "er-par", "algorithm")
		backendName = flag.String("backend", "", "search via a named backend instead of -algo: "+joinBackends())
		driverName  = flag.String("driver", "", "run engine deepening with a named root driver instead of -algo: "+joinDrivers())
		delta       = flag.Int("delta", 25, "with -driver: aspiration half-window around the previous iteration's value (0 = full window)")
		workers     = flag.Int("workers", 4, "processors for parallel algorithms")
		serialDepth = flag.Int("serial-depth", 3, "depth at or below which subtrees are searched serially")
		sortPly     = flag.Int("sort-ply", 5, "statically sort children above this ply (0 disables)")
		show        = flag.Bool("show", false, "print the position before searching")
		timeline    = flag.Bool("timeline", false, "with er-par: print the worker-utilization timeline")
		traceOut    = flag.String("trace", "", "with er-par/er-real: write a Chrome trace_event JSON (open in Perfetto) to this file")
		bestLine    = flag.Bool("bestmove", false, "also print the best move and principal variation (parallel ER)")
		tableBits   = flag.Int("table-bits", 0, "with er-real: back serial tasks with a shared transposition table of 2^bits slots (0 disables)")
		tableImpl   = flag.String("table-impl", "", "shared table implementation: "+joinTables()+" (empty consults ERTREE_TABLE, then the default)")
		flightOn    = flag.Bool("flight", false, "with er-real: record the search flight log and print the speculation-waste report")
		obsOn       = flag.Bool("obs", false, "with -driver: run the self-monitor during the session and print its report after")
		mutexProf   = flag.String("mutexprofile", "", "write a mutex-contention profile to this file (er-real lock interference)")
		blockProf   = flag.String("blockprofile", "", "write a blocking profile to this file")
	)
	flag.Parse()
	if !ertree.ValidTableImpl(*tableImpl) {
		fmt.Fprintf(os.Stderr, "ertree: unknown table implementation %q (valid: %s)\n", *tableImpl, joinTables())
		os.Exit(2)
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProf)
	}

	pos, defaultOrder, err := buildPosition(*gameName, *rootName, *seed, *degree, *treeDepth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ertree:", err)
		os.Exit(1)
	}
	if *show {
		fmt.Printf("%v\n", pos)
	}
	var order ertree.Orderer
	if defaultOrder && *sortPly > 0 {
		order = ertree.StaticOrder{MaxPly: *sortPly}
	}

	var stats ertree.Stats
	cfg := ertree.Config{Workers: *workers, SerialDepth: *serialDepth, Order: order, Stats: &stats}
	cost := ertree.DefaultCostModel()

	if *driverName != "" {
		if !ertree.ValidDriver(*driverName) {
			fmt.Fprintf(os.Stderr, "ertree: unknown driver %q (valid: %s)\n", *driverName, joinDrivers())
			os.Exit(2)
		}
		if *backendName != "" && !ertree.ValidBackend(*backendName) {
			fmt.Fprintf(os.Stderr, "ertree: unknown backend %q (valid: %s)\n", *backendName, joinBackends())
			os.Exit(2)
		}
		ecfg := engine.Config{
			Backend:     *backendName,
			Driver:      *driverName,
			Workers:     *workers,
			SerialDepth: *serialDepth,
			Order:       order,
			TableBits:   *tableBits,
			TableImpl:   *tableImpl,
			Delta:       ertree.Value(*delta),
		}
		var mon *obs.Monitor
		if *obsOn {
			// A CLI session is short, so sample fast; the ring easily holds a
			// whole session at this rate (default slots × 20ms ≈ 4.8s).
			mon = obs.New(obs.Config{SampleEvery: 20 * time.Millisecond})
			ecfg.Obs = mon
		}
		eng := engine.New(ecfg)
		if mon != nil {
			mon.SetSource(func(s *obs.Sample) {
				g := eng.Gauges()
				s.InFlight = g.InFlight
				s.Waiting = g.Waiting
				s.Sessions = g.Sessions
				s.Iterations = g.Iterations
				s.Probes = g.Probes
				s.ShedFull = g.ShedFull
				s.ShedTimeout = g.ShedTimeout
				s.ShedCancelled = g.ShedCancelled
				s.Steals = g.Steals
				s.StealFails = g.StealFails
				s.TTProbes = g.TTProbes
				s.TTHits = g.TTHits
				s.TTFill = g.TTFill
				s.TTLen = g.TTLen
				s.TTGenerations = g.TTGeneration
			})
			mon.Start()
		}
		an, err := eng.Analyze(context.Background(), pos, *depth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ertree:", err)
			os.Exit(1)
		}
		for _, it := range an.Iterations {
			fmt.Printf("depth %2d: value %6d move %d (%d probes, %d re-searches) in %v\n",
				it.Depth, it.Value, it.Move, it.Probes, it.Researches, it.Elapsed)
		}
		fmt.Printf("driver %s on backend %s: best move %d (natural order), value %d, %d nodes in %v\n",
			an.Driver, an.Backend, an.Move, an.Value, an.Nodes, an.Elapsed)
		if st := eng.Stats(); st.HasTable && st.TTProbes > 0 {
			fmt.Printf("table: %d probes, %d hits (%.1f%%), %d stores, %d searches answered without searching\n",
				st.TTProbes, st.TTHits,
				100*float64(st.TTHits)/float64(st.TTProbes),
				st.TTStores, st.TTCutoffs)
		}
		if mon != nil {
			// One final synchronous sample so the report includes the session's
			// end state even if it finished between ticker beats.
			mon.Tick(time.Now())
			mon.Close()
			fmt.Println()
			mon.WriteText(os.Stdout)
		}
		return
	}

	if *backendName != "" {
		if !ertree.ValidBackend(*backendName) {
			fmt.Fprintf(os.Stderr, "ertree: unknown backend %q (valid: %s)\n", *backendName, joinBackends())
			os.Exit(2)
		}
		if *tableBits > 0 {
			cfg.Table = mustTable(*tableImpl, *tableBits)
		}
		res, err := ertree.SearchWith(*backendName, pos, *depth, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ertree:", err)
			os.Exit(1)
		}
		report(res.Value, nil)
		fmt.Printf("backend %s: best move %d (natural order), %d nodes on %d workers\n",
			*backendName, res.Move, res.Totals.Nodes, res.Workers)
		if res.Totals.TTProbes > 0 {
			fmt.Printf("table: %d probes, %d hits (%.1f%%), %d stores, %d searches answered without searching\n",
				res.Totals.TTProbes, res.Totals.TTHits,
				100*float64(res.Totals.TTHits)/float64(res.Totals.TTProbes),
				res.Totals.TTStores, res.Totals.TTCutoffs)
		}
		return
	}

	switch *algo {
	case "negmax":
		report(ertree.Negmax(pos, *depth), nil)
	case "ab":
		s := ertree.Serial{Order: order, Stats: &stats}
		report(s.AlphaBeta(pos, *depth, ertree.FullWindow()), &stats)
	case "ab-tt":
		s := ertree.Serial{Order: order, Stats: &stats}
		table := ertree.NewTranspositionTable(20)
		report(s.AlphaBetaTT(pos, *depth, ertree.FullWindow(), table), &stats)
		fmt.Printf("transposition table: %d probes, %d hits (%.1f%%), %d stores\n",
			table.Probes, table.Hits, 100*table.HitRate(), table.Stores)
	case "ab-select":
		s := ertree.Serial{Order: order, Stats: &stats}
		report(s.AlphaBetaSelectiveSort(pos, *depth, ertree.FullWindow()), &stats)
	case "abnd":
		s := ertree.Serial{Order: order, Stats: &stats}
		report(s.AlphaBetaNoDeep(pos, *depth, ertree.Inf), &stats)
	case "id":
		for _, r := range ertree.IterativeDeepening(pos, *depth, 64, order) {
			fmt.Printf("depth %2d: value %6d (%d re-searches)\n", r.Depth, r.Value, r.Researches)
		}
	case "er":
		s := ertree.Serial{Order: order, Stats: &stats}
		report(s.ER(pos, *depth, ertree.FullWindow()), &stats)
	case "er-par":
		cfg2 := cfg
		cfg2.Trace = *timeline || *traceOut != ""
		res, err := ertree.Simulate(pos, *depth, cfg2, cost)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ertree:", err)
			os.Exit(1)
		}
		report(res.Value, &stats)
		fmt.Printf("virtual time %d on %d processors (busy %d, starved %d, lock wait %d)\n",
			res.VirtualTime, res.Workers, res.BusyTime, res.StarveTime, res.LockTime)
		fmt.Printf("serial tasks %d, speculative pops %d, cancelled %d\n",
			res.SerialTasks, res.SpecPops, res.CutoffDrops+res.Dropped)
		if *timeline {
			spans := make([][]metrics.Span, len(res.Timeline))
			for i, iv := range res.Timeline {
				for _, s := range iv {
					spans[i] = append(spans[i], metrics.Span{Start: s.Start, End: s.End})
				}
			}
			fmt.Print(metrics.Timeline("worker utilization", spans, res.VirtualTime, 64))
		}
		if *traceOut != "" {
			if err := writeSimTrace(*traceOut, "ertree er-par (virtual time)", res.Timeline); err != nil {
				fmt.Fprintln(os.Stderr, "ertree:", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
		}
	case "er-real":
		if *tableBits > 0 {
			cfg.Table = mustTable(*tableImpl, *tableBits)
		}
		var sink *traceSink
		if *traceOut != "" || *flightOn {
			sink = newTraceSink()
			cfg.Hooks = &ertree.SearchHooks{Spans: *traceOut != "", HeapEvery: 8, OnWorkerDone: sink.add}
			if *flightOn {
				cfg.Hooks.Events = 1 << 16
			}
		}
		res, err := ertree.Search(pos, *depth, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ertree:", err)
			os.Exit(1)
		}
		report(res.Value, &stats)
		fmt.Printf("elapsed %v on %d workers\n", res.Elapsed, res.Workers)
		if sink != nil && *traceOut != "" {
			if err := writeRealTrace(*traceOut, "ertree er-real", sink.workers()); err != nil {
				fmt.Fprintln(os.Stderr, "ertree:", err)
				os.Exit(1)
			}
			fmt.Printf("trace written to %s (open in https://ui.perfetto.dev)\n", *traceOut)
		}
		if *flightOn {
			label := fmt.Sprintf("%s depth %d", *gameName, *depth)
			printFlight(pos, *depth, *serialDepth, order == nil, res.Workers, label, sink.workers())
		}
		if res.TTProbes > 0 {
			fmt.Printf("table: %d probes, %d hits (%.1f%%), %d stores, %d tasks answered without searching\n",
				res.TTProbes, res.TTHits,
				100*float64(res.TTHits)/float64(res.TTProbes),
				res.TTStores, res.TTCutoffs)
		}
	case "aspiration":
		res := ertree.Aspiration(pos, *depth, ertree.AspirationOptions{Workers: *workers, Bound: 12000, Order: order}, cost)
		report(res.Value, nil)
		fmt.Printf("parallel time %d, total nodes %d across %d windows\n",
			res.ParallelTime, res.TotalNodes, len(res.Windows))
	case "mwf":
		res := ertree.MWF(pos, *depth, ertree.MWFOptions{Workers: *workers, SerialDepth: *serialDepth, Order: order}, cost)
		report(res.Value, nil)
		fmt.Printf("virtual time %d, nodes %d, tasks %d\n", res.VirtualTime, res.Nodes, res.Tasks)
	case "rootsplit":
		res := ertree.RootSplit(pos, *depth, ertree.RootSplitOptions{Workers: *workers, Order: order}, cost)
		report(res.Value, nil)
		fmt.Printf("virtual time %d on %d processors, nodes %d\n", res.Time, res.Workers, res.Nodes)
	case "treesplit", "pvsplit", "pvsplit-mw":
		opt := ertree.TreeSplitOptions{Height: heightFor(*workers), Fanout: 2, Order: order}
		var res ertree.TreeSplitResult
		switch *algo {
		case "treesplit":
			res = ertree.TreeSplit(pos, *depth, opt, cost)
		case "pvsplit-mw":
			res = ertree.PVSplitMW(pos, *depth, opt, cost)
		default:
			res = ertree.PVSplit(pos, *depth, opt, cost)
		}
		report(res.Value, nil)
		fmt.Printf("virtual time %d on %d slave processors, nodes %d, aborts %d\n",
			res.Time, opt.Processors(), res.Nodes, res.Aborts)
	default:
		fmt.Fprintf(os.Stderr, "ertree: unknown algorithm %q\n", *algo)
		os.Exit(1)
	}

	if *bestLine {
		line, err := ertree.BestLine(pos, *depth, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ertree:", err)
			os.Exit(1)
		}
		if len(line) == 0 {
			fmt.Println("no moves (terminal position)")
			return
		}
		fmt.Printf("principal variation (child indices, natural move order):")
		for _, mv := range line {
			fmt.Printf(" %d(%+d)", mv.Index, mv.Score)
		}
		fmt.Println()
	}
}

// writeProfile dumps the named runtime profile to path. Profiles are
// best-effort tooling: failures are reported, not fatal. (Error exits via
// os.Exit skip the profile, which is fine — there is nothing to profile.)
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ertree:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "ertree:", err)
	}
}

// buildPosition constructs the root position; the bool reports whether the
// game benefits from static move ordering.
func buildPosition(gameName, rootName string, seed uint64, degree, treeDepth int) (ertree.Position, bool, error) {
	switch gameName {
	case "othello":
		if rootName == "" {
			return ertree.Othello(), true, nil
		}
		b, err := ertree.OthelloRoot(rootName)
		return b, true, err
	case "ttt":
		return ertree.TicTacToe(), false, nil
	case "connect4":
		return ertree.Connect4(), false, nil
	case "checkers":
		return ertree.Checkers(), true, nil
	case "random":
		return ertree.NewRandomTree(seed, degree, treeDepth).Root(), false, nil
	case "strong":
		return ertree.NewStrongTree(seed, degree, treeDepth).Root(), true, nil
	default:
		return nil, false, fmt.Errorf("unknown game %q", gameName)
	}
}

// joinBackends lists the registered backend names for flag help and errors.
func joinBackends() string { return strings.Join(ertree.Backends(), ", ") }

// joinDrivers lists the registered root-driver names for flag help and errors.
func joinDrivers() string { return strings.Join(ertree.Drivers(), ", ") }

// joinTables lists the shared-table implementation names for flag help.
func joinTables() string { return strings.Join(ertree.TableImpls(), ", ") }

// mustTable builds the selected shared-table implementation. The impl name
// was validated right after flag.Parse, so a failure here means the
// ERTREE_TABLE environment fallback named an unknown implementation.
func mustTable(impl string, bits int) ertree.SearchTable {
	t, err := ertree.NewSearchTable(impl, bits, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ertree:", err)
		os.Exit(2)
	}
	return t
}

// heightFor returns the binary processor-tree height closest to the
// requested worker count from below.
func heightFor(workers int) int {
	h := 0
	for 1<<(h+1) <= workers {
		h++
	}
	return h
}

func report(v ertree.Value, stats *ertree.Stats) {
	fmt.Printf("value %d\n", v)
	if stats != nil {
		s := stats.Snapshot()
		fmt.Printf("nodes generated %d, static evaluations %d (+%d for ordering), cutoffs %d\n",
			s.Generated, s.Evaluated, s.SortEvals, s.Cutoffs)
	}
}
