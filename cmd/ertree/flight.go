package main

import (
	"fmt"
	"os"

	"ertree"
	"ertree/internal/flight"
	"ertree/internal/gtree"
)

// materializeBudget bounds the explicit tree mirror built for minimal-tree
// classification: past ~2M nodes the mirror costs more than the insight.
const materializeBudget = 2 << 20

// materialize builds an explicit gtree mirror of pos down to depth plies, so
// the flight report can classify the visited set against the Knuth–Moore
// minimal tree. Positions at the search frontier become leaves carrying their
// static value, matching what a depth-limited search evaluates. Returns nil
// (skip classification) when the mirror would exceed the node budget.
func materialize(pos ertree.Position, depth int, budget *int) *gtree.Node {
	*budget--
	if *budget < 0 {
		return nil
	}
	if depth == 0 {
		return &gtree.Node{Leaf: pos.Value()}
	}
	kids := pos.Children()
	if len(kids) == 0 {
		return &gtree.Node{Leaf: pos.Value()}
	}
	n := &gtree.Node{Kids: make([]*gtree.Node, len(kids))}
	for i, k := range kids {
		c := materialize(k, depth-1, budget)
		if c == nil {
			return nil
		}
		n.Kids[i] = c
	}
	return n
}

// printFlight builds and prints the speculation-waste report of a hooked
// er-real search. Minimal-tree classification needs the spawn log's move
// indices to line up with child order, so it only runs under natural move
// order (no static sorting), and only within the materialization budget.
func printFlight(pos ertree.Position, depth, serialDepth int, naturalOrder bool, workers int, label string, tels []ertree.WorkerTelemetry) {
	opts := flight.Options{Label: label, Workers: workers}
	if naturalOrder {
		budget := materializeBudget
		if root := materialize(pos, depth, &budget); root != nil {
			opts.Root = root
		} else {
			fmt.Fprintf(os.Stderr, "ertree: tree exceeds %d nodes; skipping minimal-tree classification\n", materializeBudget)
		}
	}
	flight.Build(tels, opts).WriteText(os.Stdout)
	if opts.Root != nil && serialDepth > 0 {
		fmt.Printf("  (serial-depth %d: visited counts cover the parallel tree only; run -serial-depth 0 for exact node accounting)\n", serialDepth)
	}
}
