package main

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"ertree"
	"ertree/internal/engine"
	"ertree/internal/sim"
	"ertree/internal/telemetry"
)

// traceSink collects and merges the per-worker telemetry a hooked er-real
// search delivers at worker exit.
type traceSink struct {
	mu       sync.Mutex
	byWorker map[int]*ertree.WorkerTelemetry
}

func newTraceSink() *traceSink {
	return &traceSink{byWorker: make(map[int]*ertree.WorkerTelemetry)}
}

func (s *traceSink) add(wt ertree.WorkerTelemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.byWorker[wt.Worker]; ok {
		m.Merge(wt)
	} else {
		cp := wt
		s.byWorker[wt.Worker] = &cp
	}
}

func (s *traceSink) workers() []ertree.WorkerTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.byWorker))
	for id := range s.byWorker {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]ertree.WorkerTelemetry, len(ids))
	for i, id := range ids {
		out[i] = *s.byWorker[id]
	}
	return out
}

// writeRealTrace renders an er-real search's worker telemetry as a Chrome
// trace_event JSON file (open it at https://ui.perfetto.dev).
func writeRealTrace(path, process string, tels []ertree.WorkerTelemetry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := engine.WriteWorkerTrace(f, process, tels)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeSimTrace renders an er-par run's deterministic timeline through the
// same trace writer: one track per virtual processor, one span per busy
// interval, timestamps in virtual time units.
func writeSimTrace(path, process string, timeline [][]sim.Interval) error {
	var spans []telemetry.TraceSpan
	for p, ivs := range timeline {
		for _, iv := range ivs {
			spans = append(spans, telemetry.TraceSpan{
				Track:     p,
				TrackName: fmt.Sprintf("processor %d", p),
				Name:      "busy",
				Cat:       "simulated",
				StartUS:   iv.Start,
				DurUS:     iv.End - iv.Start,
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := telemetry.WriteTrace(f, process, spans)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
