// Command erserve is an HTTP/JSON analysis service over the repository's
// parallel ER engine: cancellable, time-managed search sessions with a
// bounded concurrent-session pool and per-game shared transposition tables.
// The service itself lives in internal/serve; this command is the flag shell.
//
// Endpoints:
//
//	GET /bestmove?game=connect4&moves=3,3&depth=8&budget_ms=500
//	GET /bestmove?game=connect4&depth=8&backend=lazysmp (per-request backend)
//	GET /bestmove?game=connect4&depth=8&driver=mtdf (per-request root driver)
//	GET /analyze?game=othello&depth=6        (adds per-iteration history)
//	GET /analyze?game=othello&depth=6&trace=1  (Perfetto-loadable worker trace)
//	GET /analyze?game=othello&depth=6&stream=1 (SSE per-iteration progress)
//	GET /analyze?game=othello&depth=6&flight=1 (record a flight report)
//	GET /debug/flight                        (retained reports; ?id=<request id>)
//	GET /debug/obs                           (self-monitor: sample ring, detector states, anomalies)
//	GET /debug/obs/profiles/<id>             (auto-captured pprof profiles; ?type=goroutine|cpu)
//	GET /healthz                             (readiness + uptime/backend/table/in-flight)
//	GET /stats                               (counters + windowed latency quantiles)
//	GET /metrics                             (Prometheus text; ?format=json)
//
// A position is the list of child indices (natural move order) from the
// game's initial position. The search runs iterative deepening under the
// request budget and always answers with the deepest completed iteration,
// marking completed=false when the budget cut it short.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"ertree/internal/backend"
	"ertree/internal/driver"
	"ertree/internal/engine"
	"ertree/internal/serve"
	"ertree/internal/tt"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 4, "parallel-ER workers per search")
		backendName   = flag.String("backend", engine.DefaultBackend, "default search backend: "+backend.NamesString())
		driverName    = flag.String("driver", engine.DefaultDriver, "default root driver: "+driver.NamesString())
		serialDepth   = flag.Int("serial-depth", 3, "depth at or below which subtrees are searched serially")
		sharded       = flag.Bool("sharded", false, "use the per-worker work-stealing problem heap")
		tableBits     = flag.Int("table-bits", 20, "per-game transposition table size (2^bits slots, 0 disables)")
		tableImpl     = flag.String("table-impl", "", "transposition-table implementation: "+tt.ImplsString()+" (empty follows $"+tt.EnvTable+", then "+tt.DefaultImpl+")")
		cacheSize     = flag.Int("answer-cache", 256, "completed analyses retained by the single-flight answer cache (0 disables caching and request coalescing)")
		maxConcurrent = flag.Int("max-concurrent", 2, "server-wide concurrent search sessions")
		queueTimeout  = flag.Duration("queue-timeout", time.Second, "how long an over-capacity request waits for a slot before 503")
		maxDepth      = flag.Int("max-depth", 32, "cap on the requested search depth")
		defaultBudget = flag.Duration("default-budget", 5*time.Second, "search budget when the request has no budget_ms")
		windowTick    = flag.Duration("slo-window-tick", serve.DefaultWindowTick, "interval between windowed-quantile snapshots")
		windowSlots   = flag.Int("slo-window-slots", serve.DefaultWindowSlots, "snapshots retained per windowed quantile (window ≈ tick × slots)")
		pprofOn       = flag.Bool("pprof", false, "serve /debug/pprof/ profiling endpoints (enables mutex and block profiling)")
		obsSample     = flag.Duration("obs-sample", 250*time.Millisecond, "self-monitor sampling interval for /debug/obs (0 disables the anomaly watchdog)")
		obsRing       = flag.Int("obs-ring", 0, "samples retained by the self-monitor ring (0 = default, ≈1 minute at the sample interval)")
	)
	flag.Parse()

	if !backend.Valid(*backendName) {
		fmt.Fprintf(os.Stderr, "erserve: unknown backend %q (valid: %s)\n",
			*backendName, backend.NamesString())
		os.Exit(2)
	}
	if !driver.Valid(*driverName) {
		fmt.Fprintf(os.Stderr, "erserve: unknown driver %q (valid: %s)\n",
			*driverName, driver.NamesString())
		os.Exit(2)
	}
	if !tt.ValidImpl(*tableImpl) {
		fmt.Fprintf(os.Stderr, "erserve: unknown table implementation %q (valid: %s)\n",
			*tableImpl, tt.ImplsString())
		os.Exit(2)
	}
	s := serve.New(serve.Config{
		Workers:       *workers,
		Backend:       *backendName,
		Driver:        *driverName,
		SerialDepth:   *serialDepth,
		Sharded:       *sharded,
		TableBits:     *tableBits,
		TableImpl:     *tableImpl,
		CacheSize:     *cacheSize,
		MaxConcurrent: *maxConcurrent,
		QueueTimeout:  *queueTimeout,
		MaxDepth:      *maxDepth,
		DefaultBudget: *defaultBudget,
		WindowTick:    *windowTick,
		WindowSlots:   *windowSlots,
		ObsSample:     *obsSample,
		ObsRing:       *obsRing,
	})
	defer s.Close()
	var h http.Handler = s.Handler()
	if *pprofOn {
		// Contention on the engine lock is the quantity the paper measures;
		// sample it so /debug/pprof/mutex and /debug/pprof/block show where
		// the real runtime waits.
		runtime.SetMutexProfileFraction(1)
		runtime.SetBlockProfileRate(1)
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", h)
		h = mux
	}
	fmt.Printf("erserve: listening on %s (%s backend, %s driver, %d workers/search, %d concurrent sessions)\n",
		*addr, *backendName, *driverName, *workers, *maxConcurrent)
	if err := http.ListenAndServe(*addr, h); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}
