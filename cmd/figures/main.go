// Command figures regenerates every table and figure of the paper's
// evaluation, plus the extension experiments E1-E3 and the ablation A1
// (DESIGN.md §5), as fixed-width text tables on stdout.
//
// Usage:
//
//	figures               # everything
//	figures -fig 10       # one artifact: table3, 10, 11, 12, 13, e1, e2, e3, a1
//	figures -workers 1,2,4,8,12,16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ertree/internal/core"
	"ertree/internal/experiments"
	"ertree/internal/metrics"
)

func main() {
	fig := flag.String("fig", "all", "which artifact to regenerate: table3, 10, 11, 12, 13, e1, e2, e3, e0, a1, a3, a4, a5, a6, all")
	workersFlag := flag.String("workers", "1,2,4,8,12,16", "processor counts for the figure axes")
	format := flag.String("format", "table", "output format for the figure artifacts: table or csv")
	flag.Parse()
	csvOut = *format == "csv"

	workers, err := parseInts(*workersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: bad -workers: %v\n", err)
		os.Exit(1)
	}
	cost := core.DefaultCostModel()

	run := func(name string, f func()) {
		if *fig == "all" || *fig == name {
			f()
		}
	}

	run("table3", func() { table3() })
	run("10", func() {
		efficiencyFigure("Figure 10: efficiency of ER for Othello game trees", "othello", cost, workers)
	})
	run("11", func() { efficiencyFigure("Figure 11: efficiency of ER for random game trees", "random", cost, workers) })
	run("12", func() { nodesFigure("Figure 12: nodes generated for Othello game trees", "othello", cost, workers) })
	run("13", func() { nodesFigure("Figure 13: nodes generated for random game trees", "random", cost, workers) })
	run("e0", func() { e0(cost, workers) })
	run("e1", func() { e1(cost, workers) })
	run("e2", func() { e2(cost, workers) })
	run("e3", func() { e3(cost) })
	run("a1", func() { a1(cost) })
	run("a3", func() { a3(cost) })
	run("a4", func() { a4(cost) })
	run("a5", func() { a5(cost) })
	run("a6", func() { a6(cost) })
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d < 1", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// csvOut switches the figure renderers from fixed-width tables to CSV.
var csvOut bool

// render prints series in the selected format.
func render(title, column string, series []metrics.Series) {
	if csvOut {
		fmt.Printf("# %s\n%s\n", title, metrics.CSV(column, series))
		return
	}
	fmt.Println(metrics.Table(title, column, series))
}

func table3() {
	fmt.Println("Table 3: descriptions of the game trees used in the experiments")
	fmt.Printf("%-6s %-8s %-8s %-12s %-12s\n", "Name", "Type", "Degree", "SearchDepth", "SerialDepth")
	for _, w := range experiments.Table3() {
		degree := "varying"
		if w.Kind == "random" {
			// Degree is part of the workload definition; recover it from
			// the root's child count (uniform trees).
			degree = fmt.Sprint(len(w.Root.Children()))
		}
		fmt.Printf("%-6s %-8s %-8s %-12d %-12d\n", w.Name, w.Kind, degree, w.Depth, w.SerialDepth)
	}
	fmt.Println()
}

func efficiencyFigure(title, kind string, cost core.CostModel, workers []int) {
	var series []metrics.Series
	for _, w := range experiments.Table3() {
		if w.Kind != kind {
			continue
		}
		er, ab, base := experiments.EfficiencyFigure(w, cost, workers)
		series = append(series, er, ab)
		last := er.Points[len(er.Points)-1]
		fmt.Printf("# %s: value=%d bestSerial=%d  speedup(P=%d)=%.2f\n",
			w.Name, base.Value, base.Best(), last.Workers, last.Speedup)
	}
	render(title+" (columns: ER per tree, then serial alpha-beta reference)", "efficiency", series)
}

func nodesFigure(title, kind string, cost core.CostModel, workers []int) {
	var series []metrics.Series
	for _, w := range experiments.Table3() {
		if w.Kind != kind {
			continue
		}
		er, ab := experiments.NodesFigure(w, cost, workers)
		series = append(series, er, ab)
	}
	render(title+" (columns: ER per tree, then serial alpha-beta reference)", "nodes", series)
}

func e0(cost core.CostModel, workers []int) {
	var series []metrics.Series
	for _, w := range experiments.Table3() {
		if w.Name != "R3" && w.Name != "O1" {
			continue
		}
		series = append(series, experiments.E0RootSplit(w, cost, workers))
	}
	render("E0: naive root partitioning (the introduction's strawman; low efficiency)", "efficiency", series)
}

func e1(cost core.CostModel, workers []int) {
	var series []metrics.Series
	for _, w := range experiments.Table3() {
		if w.Kind != "random" {
			continue
		}
		series = append(series, experiments.E1Aspiration(w, cost, workers))
	}
	render("E1: parallel aspiration search speedup (Baudet, §4.1; plateaus at ~5-6)", "speedup", series)
}

func e2(cost core.CostModel, workers []int) {
	var series []metrics.Series
	for _, w := range experiments.AklWorkloads() {
		series = append(series, experiments.E2MWF(w, cost, workers))
	}
	render("E2: mandatory-work-first speedup (Akl et al., §4.2; plateaus near 6)", "speedup", series)
}

func e3(cost core.CostModel) {
	ts, pv := experiments.E3TreeSplit(cost, []int{0, 1, 2, 3, 4})
	tsc, pvc := experiments.E3TreeSplitCheckers(cost, []int{0, 1, 2, 3, 4})
	render("E3: tree-splitting vs pv-splitting, strongly ordered tree (S1) and checkers (CK) (efficiency; O(1/sqrt k) for tree-splitting)",
		"efficiency", []metrics.Series{ts, pv, tsc, pvc})
}

func a1(cost core.CostModel) {
	for _, w := range experiments.Table3() {
		if w.Name != "R3" && w.Name != "O1" {
			continue
		}
		series := experiments.A1Ablation(w, 16, cost)
		fmt.Println(metrics.Table(
			fmt.Sprintf("A1: speculation ablation on %s at P=16 (virtual time; lower is better)", w.Name),
			"time", series))
	}
}

func a3(cost core.CostModel) {
	for _, w := range experiments.Table3() {
		if w.Name != "R3" && w.Name != "O1" {
			continue
		}
		series := experiments.A3SpecRank(w, 16, cost)
		fmt.Println(metrics.Table(
			fmt.Sprintf("A3: speculative-queue ranking policies on %s at P=16 (virtual time; §8 future work)", w.Name),
			"time", series))
	}
}

func a4(cost core.CostModel) {
	fmt.Println("A4: serial ER vs alpha-beta with selective sorting (§7 open question; virtual cost units)")
	fmt.Printf("%-6s %12s %12s %12s %14s %14s\n",
		"tree", "ab(sorted)", "ab(select)", "serial-ER", "sortEvals(ab)", "sortEvals(sel)")
	for _, w := range experiments.Table3() {
		if w.Kind != "othello" {
			continue
		}
		r := experiments.A4SelectiveSort(w, cost)
		fmt.Printf("%-6s %12d %12d %12d %14d %14d\n",
			r.Workload, r.AlphaBeta, r.AlphaBetaSelective, r.SerialER,
			r.SortEvalsFull, r.SortEvalsSelective)
	}
	fmt.Println()
}

func a5(cost core.CostModel) {
	for _, w := range experiments.Table3() {
		if w.Name != "R1" && w.Name != "O1" {
			continue
		}
		fmt.Printf("A5: serial-depth grain study on %s at P=16 (the §7 contention/starvation tradeoff)\n", w.Name)
		fmt.Printf("%8s %10s %10s %10s %10s %10s\n", "serial", "time", "nodes", "starve", "lockwait", "heapops")
		for _, p := range experiments.A5SerialDepth(w, 16, cost, []int{2, 3, 4, 5, 6, 7}) {
			fmt.Printf("%8d %10d %10d %10d %10d %10d\n",
				p.SerialDepth, p.Time, p.Nodes, p.StarveTime, p.LockTime, p.HeapOps)
		}
		fmt.Println()
	}
}

func a6(cost core.CostModel) {
	fmt.Println("A6: eager speculative admission (extension) vs the paper's all-but-one rule, P=16")
	fmt.Printf("%-6s %-8s %10s %10s %10s %10s %12s\n",
		"tree", "policy", "time", "nodes", "starve", "specpops", "efficiency")
	for _, w := range experiments.Table3() {
		for _, p := range experiments.A6EagerSpec(w, 16, cost) {
			fmt.Printf("%-6s %-8s %10d %10d %10d %10d %12.3f\n",
				w.Name, p.Name, p.Time, p.Nodes, p.StarveTime, p.SpecPops, p.Efficiency)
		}
	}
	fmt.Println()
}
