package main

import (
	"fmt"
	"time"

	"ertree"
)

// stageMix weights the position stages a phase draws from. Weights need not
// sum to 1; they are normalised at draw time.
type stageMix struct {
	Open, Mid, End float64
}

// Phase is one segment of a load scenario: an open-loop Poisson arrival
// process at Rate requests/sec for Duration, drawing positions from Games
// under Mix, with configurable fractions of SSE subscribers, duplicate
// requests (a small hot set, exercising the answer cache), and mid-flight
// client cancellations.
type Phase struct {
	Name     string
	Duration time.Duration
	Rate     float64 // target arrivals per second (Poisson)

	Games []string // games to draw from, uniformly
	Mix   stageMix // open/mid/end position weights

	Depth    int    // requested search depth
	BudgetMS int    // per-request search budget
	Driver   string // per-request root driver ("" = server default)

	SSEFraction    float64 // fraction using /analyze?stream=1 and reading events
	DupFraction    float64 // fraction drawn from the hot set instead of fresh
	CancelFraction float64 // fraction whose client gives up mid-budget
	HotSet         int     // distinct requests in the duplicate hot set

	// AssertCacheHits makes the run fail if the phase ends with a zero
	// answer-cache hit rate — the duplicate-mix phase's self-check.
	AssertCacheHits bool

	// AssertAnomaly makes the run fail unless the server's self-monitor
	// detects at least one anomaly of this kind during the phase AND retains
	// a downloadable pprof capture for it — the anomaly scenario's self-check.
	AssertAnomaly string
}

// selfServer overrides the in-process server knobs when a scenario needs a
// particular capacity shape (the anomaly scenario wants a server small enough
// that its overload phase sheds on any host). Ignored with -url.
type selfServer struct {
	MaxConcurrent int
	QueueTimeout  time.Duration
}

// Scenario is a named sequence of phases, run back to back against one server.
type Scenario struct {
	Name   string
	Phases []Phase
	Self   *selfServer // in-process server shape this scenario requires, if any
}

// scenarios holds the built-in scenarios, selectable with -scenario.
var scenarios = map[string]Scenario{
	"default": defaultScenario(),
	"smoke":   smokeScenario(),
	"anomaly": anomalyScenario(),
}

// defaultScenario is the full traffic shape: a warmup of cheap openings, a
// duplicate-heavy phase aimed at the answer cache, a Poisson rate ramp into
// overload across all four games, and a churn phase of SSE subscribers and
// cancelling clients.
func defaultScenario() Scenario {
	return Scenario{Name: "default", Phases: []Phase{
		{
			Name: "warmup-open", Duration: 5 * time.Second, Rate: 12,
			Games: []string{"ttt", "connect4"}, Mix: stageMix{Open: 1},
			Depth: 6, BudgetMS: 400,
		},
		{
			Name: "duplicate-mix", Duration: 6 * time.Second, Rate: 20,
			Games: []string{"ttt", "connect4"}, Mix: stageMix{Open: 1, Mid: 1},
			Depth: 6, BudgetMS: 400,
			DupFraction: 0.6, HotSet: 4, AssertCacheHits: true,
		},
		{
			Name: "ramp-overload", Duration: 8 * time.Second, Rate: 40,
			Games: []string{"ttt", "connect4", "othello", "checkers"},
			Mix:   stageMix{Open: 1, Mid: 2, End: 1},
			Depth: 10, BudgetMS: 300,
		},
		{
			// Deep budget-bound searches so a mid-budget cancel actually
			// pre-empts the answer instead of arriving after it.
			Name: "sse-cancel-churn", Duration: 6 * time.Second, Rate: 15,
			Games: []string{"connect4", "othello"}, Mix: stageMix{Mid: 2, End: 1},
			Depth: 20, BudgetMS: 500,
			SSEFraction: 0.35, CancelFraction: 0.3,
		},
	}}
}

// smokeScenario is the CI shape: two short phases — a duplicate-heavy one
// that must light up the answer cache, and an SSE/cancel churn one — sized to
// finish in under ten seconds on one core.
func smokeScenario() Scenario {
	return Scenario{Name: "smoke", Phases: []Phase{
		{
			Name: "smoke-dup", Duration: 3 * time.Second, Rate: 15,
			Games: []string{"ttt"}, Mix: stageMix{Open: 1, Mid: 1},
			Depth: 5, BudgetMS: 300,
			DupFraction: 0.6, HotSet: 3, AssertCacheHits: true,
		},
		{
			// Depth far past what the budget allows: every search is
			// budget-bound, so cancels land mid-search.
			Name: "smoke-churn", Duration: 3 * time.Second, Rate: 10,
			Games: []string{"connect4"}, Mix: stageMix{Mid: 1},
			Depth: 20, BudgetMS: 300,
			SSEFraction: 0.25, CancelFraction: 0.3,
		},
	}}
}

// anomalyScenario exercises the self-monitor end to end: an MTD(f) probe
// phase (null-window probing shows up in the probes/iteration gauge), then a
// shed storm — arrivals far past a deliberately tiny server's capacity — that
// must trip the shed-spike detector and retain a pprof capture. The Self
// override pins the in-process server to 2 slots and a short queue so the
// storm sheds by construction, independent of host core count.
func anomalyScenario() Scenario {
	return Scenario{
		Name: "anomaly",
		Self: &selfServer{MaxConcurrent: 2, QueueTimeout: 50 * time.Millisecond},
		Phases: []Phase{
			{
				Name: "probe-traffic", Duration: 3 * time.Second, Rate: 6,
				Games: []string{"connect4"}, Mix: stageMix{Open: 1, Mid: 1},
				Depth: 8, BudgetMS: 300, Driver: "mtdf",
			},
			{
				Name: "shed-storm", Duration: 4 * time.Second, Rate: 60,
				Games: []string{"othello", "checkers"}, Mix: stageMix{Mid: 2, End: 1},
				Depth: 20, BudgetMS: 400,
				AssertAnomaly: "shed-spike",
			},
		},
	}
}

// validate rejects phases the runner cannot execute sensibly.
func (s Scenario) validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q has no phases", s.Name)
	}
	for _, p := range s.Phases {
		if p.Rate <= 0 || p.Duration <= 0 {
			return fmt.Errorf("phase %q: rate and duration must be positive", p.Name)
		}
		if len(p.Games) == 0 {
			return fmt.Errorf("phase %q: no games", p.Name)
		}
		for _, g := range p.Games {
			if _, ok := gameRoots[g]; !ok {
				return fmt.Errorf("phase %q: unknown game %q", p.Name, g)
			}
		}
		if p.Mix.Open+p.Mix.Mid+p.Mix.End <= 0 {
			return fmt.Errorf("phase %q: empty stage mix", p.Name)
		}
		if p.Driver != "" && !ertree.ValidDriver(p.Driver) {
			return fmt.Errorf("phase %q: unknown driver %q", p.Name, p.Driver)
		}
		if p.DupFraction > 0 && p.HotSet <= 0 {
			return fmt.Errorf("phase %q: duplicate fraction without a hot set", p.Name)
		}
	}
	return nil
}
