package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// request is one fully-determined unit of load. Every random choice (game,
// position, SSE, duplicate, cancellation point) is made on the arrival loop's
// goroutine with the seeded rng, so a fixed seed replays the same traffic.
type request struct {
	game, moves string
	depth       int
	budgetMS    int
	driver      string // per-request root driver override ("" = server default)
	sse         bool
	dup         bool
	cancelAfter time.Duration // 0 = patient client
}

// runner drives one server through a scenario.
type runner struct {
	base        string
	client      *http.Client
	rng         *rand.Rand
	corpus      corpus
	sampleEvery time.Duration
	verbose     bool
}

// collector accumulates one phase's outcomes. Latencies are recorded for
// successful requests only — shed responses return in microseconds and would
// make the latency quantiles look better the worse the overload gets.
type collector struct {
	mu          sync.Mutex
	latenciesMS []float64
	ok, shed    int
	errors      int
	cancelled   int
	sse, dups   int
	lastErr     string
}

func (c *collector) record(req request, latency time.Duration, outcome string, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.sse {
		c.sse++
	}
	if req.dup {
		c.dups++
	}
	switch outcome {
	case "ok":
		c.ok++
		c.latenciesMS = append(c.latenciesMS, float64(latency)/float64(time.Millisecond))
	case "shed":
		c.shed++
	case "cancelled":
		c.cancelled++
	default:
		c.errors++
		if errMsg != "" {
			c.lastErr = errMsg
		}
	}
}

// healthz mirrors the server's /healthz body (the readiness and load fields
// the harness gates and samples on).
type healthz struct {
	Status    string `json:"status"`
	Backend   string `json:"backend"`
	TableImpl string `json:"table_impl"`
	InFlight  int    `json:"in_flight"`
	Capacity  int    `json:"capacity"`
	Waiting   int64  `json:"waiting"`
}

// statsView decodes the /stats fields the harness differences across a phase.
type statsView struct {
	AnswerCache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"answer_cache"`
}

// obsView decodes the /debug/obs fields the harness differences across a
// phase: the per-kind anomaly totals, plus the anomaly list with profile ids
// for the assertion path.
type obsView struct {
	Enabled   bool             `json:"enabled"`
	Totals    map[string]int64 `json:"totals"`
	Anomalies []struct {
		Kind      string `json:"kind"`
		ProfileID int64  `json:"profile_id"`
	} `json:"anomalies"`
}

// obsTotals snapshots the server's per-kind anomaly counters. A server
// without the self-monitor (obs disabled, or an older binary without the
// endpoint) yields ok=false and the phase records an empty anomaly map.
func (r *runner) obsTotals(ctx context.Context) (map[string]int64, bool) {
	var v obsView
	if err := r.getJSON(ctx, "/debug/obs", &v); err != nil || !v.Enabled {
		return nil, false
	}
	return v.Totals, true
}

// Artifact schema — what lands in BENCH_serve.json.

type latencyMS struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type cacheDelta struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type loadGauges struct {
	Samples      int     `json:"samples"`
	MaxInFlight  int     `json:"max_in_flight"`
	MaxWaiting   int64   `json:"max_waiting"`
	MeanInFlight float64 `json:"mean_in_flight"`
}

type phaseResult struct {
	Name          string     `json:"name"`
	DurationMS    int64      `json:"duration_ms"`
	TargetRate    float64    `json:"target_rate"`
	Offered       int        `json:"offered"`
	Completed     int        `json:"completed"`
	Shed          int        `json:"shed"`
	Errors        int        `json:"errors"`
	Cancelled     int        `json:"cancelled"`
	SSE           int        `json:"sse"`
	Duplicates    int        `json:"duplicates"`
	ThroughputRPS float64    `json:"throughput_rps"`
	ShedRate      float64    `json:"shed_rate"`
	ErrorRate     float64    `json:"error_rate"`
	Latency       latencyMS  `json:"latency_ms"`
	Cache         cacheDelta `json:"answer_cache"`
	Load          loadGauges `json:"load"`
	// Anomalies counts the self-monitor detections this phase triggered, by
	// kind. Always present (empty when the target runs without the monitor)
	// so artifact consumers can rely on the field existing.
	Anomalies map[string]int64 `json:"anomalies"`
}

type serverInfo struct {
	Backend   string `json:"backend"`
	TableImpl string `json:"table_impl"`
	Capacity  int    `json:"capacity"`
}

// benchServe is the committed BENCH_serve.json: host metadata so numbers are
// interpretable, then one entry per phase.
type benchServe struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scenario   string        `json:"scenario"`
	Target     string        `json:"target"` // "in-process" or the -url value
	Seed       int64         `json:"seed"`
	Server     serverInfo    `json:"server"`
	Phases     []phaseResult `json:"phases"`
}

// awaitReady polls /healthz until the server reports ok — the readiness gate
// before any load is offered.
func (r *runner) awaitReady(ctx context.Context, timeout time.Duration) (healthz, error) {
	deadline := time.Now().Add(timeout)
	for {
		var h healthz
		if err := r.getJSON(ctx, "/healthz", &h); err == nil && h.Status == "ok" {
			return h, nil
		}
		if time.Now().After(deadline) {
			return healthz{}, fmt.Errorf("server not ready after %v", timeout)
		}
		select {
		case <-ctx.Done():
			return healthz{}, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func (r *runner) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// run executes the scenario phase by phase, draining each phase's in-flight
// requests before sampling its closing cache counters.
func (r *runner) run(ctx context.Context, sc Scenario) ([]phaseResult, error) {
	results := make([]phaseResult, 0, len(sc.Phases))
	for _, p := range sc.Phases {
		res, err := r.runPhase(ctx, p)
		if err != nil {
			return results, fmt.Errorf("phase %q: %w", p.Name, err)
		}
		results = append(results, res)
		if r.verbose {
			fmt.Printf("phase %-16s offered=%d ok=%d shed=%d err=%d cancel=%d p50=%.1fms p99=%.1fms thr=%.1f/s cache=%.0f%%\n",
				res.Name, res.Offered, res.Completed, res.Shed, res.Errors, res.Cancelled,
				res.Latency.P50, res.Latency.P99, res.ThroughputRPS, res.Cache.HitRate*100)
			if len(res.Anomalies) > 0 {
				fmt.Printf("phase %-16s anomalies: %v\n", res.Name, res.Anomalies)
			}
		}
		if p.AssertCacheHits && res.Cache.HitRate == 0 {
			return results, fmt.Errorf("duplicate-mix phase ended with zero answer-cache hit rate (hits=%d misses=%d) — cache disabled or duplicates not coalescing", res.Cache.Hits, res.Cache.Misses)
		}
		if p.AssertAnomaly != "" {
			if res.Anomalies[p.AssertAnomaly] < 1 {
				return results, fmt.Errorf("phase %q: expected the self-monitor to detect a %q anomaly, saw %v — monitor disabled or thresholds not reached", p.Name, p.AssertAnomaly, res.Anomalies)
			}
			if err := r.verifyProfile(ctx, p.AssertAnomaly); err != nil {
				return results, fmt.Errorf("phase %q: %w", p.Name, err)
			}
		}
	}
	return results, nil
}

// verifyProfile closes the acceptance loop on a detected anomaly: the monitor
// must have retained a pprof capture for it, and the capture must actually
// download from /debug/obs/profiles/<id>.
func (r *runner) verifyProfile(ctx context.Context, kind string) error {
	var v obsView
	if err := r.getJSON(ctx, "/debug/obs", &v); err != nil {
		return fmt.Errorf("reading /debug/obs: %w", err)
	}
	var profileID int64
	for _, a := range v.Anomalies {
		if a.Kind == kind && a.ProfileID != 0 {
			profileID = a.ProfileID
		}
	}
	if profileID == 0 {
		return fmt.Errorf("no retained profile for any %q anomaly", kind)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/debug/obs/profiles/%d?type=goroutine", r.base, profileID), nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(httpReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK || len(b) == 0 {
		return fmt.Errorf("profile %d download: status %d, %d bytes", profileID, resp.StatusCode, len(b))
	}
	if r.verbose {
		fmt.Printf("anomaly %q: retained goroutine profile %d downloaded (%d bytes)\n", kind, profileID, len(b))
	}
	return nil
}

// runPhase offers open-loop Poisson load: arrivals follow the clock, not the
// completions, so when the server falls behind, the queue (and the shed rate)
// grows — exactly the overload behaviour a closed loop would mask.
func (r *runner) runPhase(ctx context.Context, p Phase) (phaseResult, error) {
	var before statsView
	if err := r.getJSON(ctx, "/stats", &before); err != nil {
		return phaseResult{}, fmt.Errorf("reading /stats: %w", err)
	}
	obsBefore, obsEnabled := r.obsTotals(ctx)

	hot := r.buildHotSet(p)
	col := &collector{}
	var wg sync.WaitGroup

	// Sampler: poll the in-flight and queue-depth gauges during the phase.
	sampleDone := make(chan loadGauges, 1)
	sampleStop := make(chan struct{})
	go r.sample(ctx, sampleStop, sampleDone)

	start := time.Now()
	offered := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= p.Duration || ctx.Err() != nil {
			break
		}
		// Exponential inter-arrival gap: a Poisson process at p.Rate.
		gap := time.Duration(r.rng.ExpFloat64() / p.Rate * float64(time.Second))
		if remaining := p.Duration - elapsed; gap > remaining {
			gap = remaining
		}
		select {
		case <-ctx.Done():
		case <-time.After(gap):
		}
		if time.Since(start) >= p.Duration || ctx.Err() != nil {
			break
		}
		req := r.draw(p, hot)
		offered++
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.do(ctx, req, col)
		}()
	}
	wg.Wait()
	close(sampleStop)
	load := <-sampleDone
	wall := time.Since(start)

	var after statsView
	if err := r.getJSON(ctx, "/stats", &after); err != nil {
		return phaseResult{}, fmt.Errorf("reading /stats: %w", err)
	}
	if ctx.Err() != nil {
		return phaseResult{}, ctx.Err()
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	res := phaseResult{
		Name:       p.Name,
		DurationMS: wall.Milliseconds(),
		TargetRate: p.Rate,
		Offered:    offered,
		Completed:  col.ok,
		Shed:       col.shed,
		Errors:     col.errors,
		Cancelled:  col.cancelled,
		SSE:        col.sse,
		Duplicates: col.dups,
		Latency:    summarize(col.latenciesMS),
		Load:       load,
	}
	if wall > 0 {
		res.ThroughputRPS = float64(col.ok) / wall.Seconds()
	}
	if offered > 0 {
		res.ShedRate = float64(col.shed) / float64(offered)
		res.ErrorRate = float64(col.errors) / float64(offered)
	}
	res.Cache.Hits = after.AnswerCache.Hits - before.AnswerCache.Hits
	res.Cache.Misses = after.AnswerCache.Misses - before.AnswerCache.Misses
	if lookups := res.Cache.Hits + res.Cache.Misses; lookups > 0 {
		res.Cache.HitRate = float64(res.Cache.Hits) / float64(lookups)
	}
	// Anomaly delta: what the self-monitor detected during (or just after)
	// this phase. Detection is asynchronous — the monitor ticks on its own
	// sampling clock — so a phase with an anomaly assertion polls briefly
	// for the expected kind instead of racing the detector.
	res.Anomalies = map[string]int64{}
	if obsEnabled {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if obsAfter, ok := r.obsTotals(ctx); ok {
				clear(res.Anomalies)
				for k, v := range obsAfter {
					if d := v - obsBefore[k]; d > 0 {
						res.Anomalies[k] = d
					}
				}
			}
			if p.AssertAnomaly == "" || res.Anomalies[p.AssertAnomaly] >= 1 ||
				time.Now().After(deadline) || ctx.Err() != nil {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if col.errors > 0 && col.lastErr != "" && r.verbose {
		fmt.Printf("phase %s: last error: %s\n", p.Name, col.lastErr)
	}
	return res, nil
}

// buildHotSet pre-draws the small set of requests the duplicate fraction
// replays. Hot requests are plain (non-SSE, patient) so their answers are
// cacheable and repeat hits are unambiguous.
func (r *runner) buildHotSet(p Phase) []request {
	if p.DupFraction <= 0 || p.HotSet <= 0 {
		return nil
	}
	hot := make([]request, p.HotSet)
	for i := range hot {
		hot[i] = r.drawFresh(p)
		hot[i].dup = true
	}
	return hot
}

// draw picks the next arrival's request: a replay from the hot set with
// probability DupFraction, otherwise a fresh position, with SSE and
// cancellation rolled independently.
func (r *runner) draw(p Phase, hot []request) request {
	if len(hot) > 0 && r.rng.Float64() < p.DupFraction {
		return hot[r.rng.Intn(len(hot))]
	}
	req := r.drawFresh(p)
	if r.rng.Float64() < p.SSEFraction {
		req.sse = true
	}
	if r.rng.Float64() < p.CancelFraction {
		// Give up somewhere in the middle 60% of the budget — late enough to
		// land mid-search, early enough to actually pre-empt the answer.
		frac := 0.2 + 0.6*r.rng.Float64()
		req.cancelAfter = time.Duration(frac * float64(p.BudgetMS) * float64(time.Millisecond))
	}
	return req
}

func (r *runner) drawFresh(p Phase) request {
	game := p.Games[r.rng.Intn(len(p.Games))]
	total := p.Mix.Open + p.Mix.Mid + p.Mix.End
	roll := r.rng.Float64() * total
	stage := stageOpen
	switch {
	case roll < p.Mix.Open:
	case roll < p.Mix.Open+p.Mix.Mid:
		stage = stageMid
	default:
		stage = stageEnd
	}
	paths := r.corpus.paths(game, stage)
	return request{
		game:     game,
		moves:    paths[r.rng.Intn(len(paths))],
		depth:    p.Depth,
		budgetMS: p.BudgetMS,
		driver:   p.Driver,
	}
}

// do issues one request and classifies its outcome. SSE requests subscribe to
// the progress stream and read it to completion; latency covers the full
// stream. A cancellation fires a context cancel mid-budget, modelling a
// client that navigated away.
func (r *runner) do(ctx context.Context, req request, col *collector) {
	q := url.Values{}
	q.Set("game", req.game)
	if req.moves != "" {
		q.Set("moves", req.moves)
	}
	q.Set("depth", fmt.Sprint(req.depth))
	q.Set("budget_ms", fmt.Sprint(req.budgetMS))
	if req.driver != "" {
		q.Set("driver", req.driver)
	}
	path := "/bestmove"
	if req.sse {
		path = "/analyze"
		q.Set("stream", "1")
	}

	rctx := ctx
	if req.cancelAfter > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithCancel(ctx)
		defer cancel()
		t := time.AfterFunc(req.cancelAfter, cancel)
		defer t.Stop()
	}
	// The impatient-client cancel is the only way rctx dies while the run's
	// own context is still live.
	wasCancelled := func() bool { return req.cancelAfter > 0 && rctx.Err() != nil && ctx.Err() == nil }

	start := time.Now()
	httpReq, err := http.NewRequestWithContext(rctx, http.MethodGet, r.base+path+"?"+q.Encode(), nil)
	if err != nil {
		col.record(req, 0, "error", err.Error())
		return
	}
	resp, err := r.client.Do(httpReq)
	if err != nil {
		if wasCancelled() {
			col.record(req, 0, "cancelled", "")
		} else {
			col.record(req, 0, "error", err.Error())
		}
		return
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		col.record(req, 0, "shed", "")
		return
	case resp.StatusCode != http.StatusOK:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		col.record(req, 0, "error", fmt.Sprintf("status %d: %s", resp.StatusCode, body))
		return
	}
	// Drain the body — for SSE that means reading events until the server
	// finishes (or our cancel disconnects mid-stream).
	var readErr error
	if req.sse {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
		}
		readErr = sc.Err()
	} else {
		_, readErr = io.Copy(io.Discard, resp.Body)
	}
	latency := time.Since(start)
	if readErr != nil || wasCancelled() {
		if wasCancelled() {
			col.record(req, latency, "cancelled", "")
		} else {
			col.record(req, latency, "error", readErr.Error())
		}
		return
	}
	col.record(req, latency, "ok", "")
}

// sample polls /healthz for the in-flight and queue-depth gauges until
// stopped, then delivers the aggregate.
func (r *runner) sample(ctx context.Context, stop <-chan struct{}, done chan<- loadGauges) {
	var g loadGauges
	var sumInFlight int
	t := time.NewTicker(r.sampleEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			if g.Samples > 0 {
				g.MeanInFlight = float64(sumInFlight) / float64(g.Samples)
			}
			done <- g
			return
		case <-ctx.Done():
			done <- g
			return
		case <-t.C:
			var h healthz
			if err := r.getJSON(ctx, "/healthz", &h); err != nil {
				continue
			}
			g.Samples++
			sumInFlight += h.InFlight
			if h.InFlight > g.MaxInFlight {
				g.MaxInFlight = h.InFlight
			}
			if h.Waiting > g.MaxWaiting {
				g.MaxWaiting = h.Waiting
			}
		}
	}
}

// summarize computes the latency summary over a phase's successes.
func summarize(ms []float64) latencyMS {
	if len(ms) == 0 {
		return latencyMS{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return latencyMS{
		P50:  percentile(sorted, 0.50),
		P95:  percentile(sorted, 0.95),
		P99:  percentile(sorted, 0.99),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// percentile is nearest-rank on a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
