package main

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ertree/internal/checkers"
	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/ttt"
)

// Game phases a scenario can mix. The serving claim is about traffic shape:
// opening positions hit the answer cache and transposition table hard (few
// distinct lines), midgame positions are the expensive wide searches, and
// endgames are deep but narrow. A load phase weights the three.
const (
	stageOpen = "open"
	stageMid  = "mid"
	stageEnd  = "end"
)

// stagePlies is how many plies into a random playout each stage sits, per
// game — rough thirds of a typical game length.
var stagePlies = map[string]map[string]int{
	"ttt":      {stageOpen: 0, stageMid: 3, stageEnd: 5},
	"connect4": {stageOpen: 1, stageMid: 8, stageEnd: 20},
	"othello":  {stageOpen: 2, stageMid: 16, stageEnd: 40},
	"checkers": {stageOpen: 1, stageMid: 10, stageEnd: 24},
}

// gameRoots mirrors the server's registered games (the wire protocol
// addresses positions as child-index paths from these roots).
var gameRoots = map[string]func() game.Position{
	"ttt":      func() game.Position { return ttt.New() },
	"connect4": func() game.Position { return connect4.New() },
	"othello":  func() game.Position { return othello.Start() },
	"checkers": func() game.Position { return checkers.Start() },
}

// corpus holds pre-walked request positions: game -> stage -> move paths
// (comma-joined child indices, the server's position addressing).
type corpus map[string]map[string][]string

// paths returns the pool for (game, stage), falling back to the opening
// position when a stage has no entries.
func (c corpus) paths(game, stage string) []string {
	if p := c[game][stage]; len(p) > 0 {
		return p
	}
	return []string{""}
}

// buildCorpus random-walks each game to its stage plies, keeping only
// non-terminal positions so every generated request is searchable. The walk
// is seeded, so a fixed seed reproduces the exact same traffic.
func buildCorpus(rng *rand.Rand, perStage int) corpus {
	// Fixed game and stage order: map iteration would reorder the rng draws
	// and break same-seed reproducibility.
	names := make([]string, 0, len(gameRoots))
	for name := range gameRoots {
		names = append(names, name)
	}
	sort.Strings(names)
	c := make(corpus, len(gameRoots))
	for _, name := range names {
		root := gameRoots[name]
		c[name] = make(map[string][]string, len(stagePlies[name]))
		for _, stage := range []string{stageOpen, stageMid, stageEnd} {
			plies := stagePlies[name][stage]
			pool := make([]string, 0, perStage)
			for len(pool) < perStage {
				if path, ok := walk(rng, root(), plies); ok {
					pool = append(pool, path)
				} else {
					// Playout died before reaching the stage (possible in
					// short games); retry caps keep this from spinning.
					plies--
					if plies < 0 {
						break
					}
				}
			}
			c[name][stage] = pool
		}
	}
	return c
}

// walk plays plies random moves from pos and returns the child-index path if
// the resulting position still has legal moves.
func walk(rng *rand.Rand, pos game.Position, plies int) (string, bool) {
	var b strings.Builder
	for i := 0; i < plies; i++ {
		kids := pos.Children()
		if len(kids) == 0 {
			return "", false
		}
		idx := rng.Intn(len(kids))
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
		pos = kids[idx]
	}
	if len(pos.Children()) == 0 {
		return "", false
	}
	return b.String(), true
}
