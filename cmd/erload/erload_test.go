package main

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"ertree/internal/serve"
)

// TestCorpusCoversAllStages: every registered game yields non-terminal
// positions for every stage, and the walks are reproducible under a seed.
func TestCorpusCoversAllStages(t *testing.T) {
	c1 := buildCorpus(rand.New(rand.NewSource(7)), 8)
	c2 := buildCorpus(rand.New(rand.NewSource(7)), 8)
	for game := range gameRoots {
		for _, stage := range []string{stageOpen, stageMid, stageEnd} {
			p1, p2 := c1.paths(game, stage), c2.paths(game, stage)
			if len(p1) == 0 {
				t.Errorf("%s/%s: empty pool", game, stage)
			}
			if len(p1) != len(p2) {
				t.Fatalf("%s/%s: corpus not reproducible under a fixed seed", game, stage)
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("%s/%s: path %d differs across same-seed builds", game, stage, i)
				}
			}
		}
	}
}

// TestSmokeScenarioInProcess runs the CI smoke scenario against an in-process
// server and checks the resulting artifact phases are well-formed: nonzero
// throughput, coherent quantiles, rates in range, and a lit-up answer cache
// in the duplicate-mix phase.
func TestSmokeScenarioInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	srv := serve.New(serve.Config{
		Workers: 2, SerialDepth: 4, TableBits: 14, CacheSize: 64,
		MaxConcurrent: 4, QueueTimeout: 100 * time.Millisecond,
		WindowTick: time.Second, WindowSlots: 30,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(42))
	r := &runner{
		base:        ts.URL,
		client:      ts.Client(),
		rng:         rng,
		corpus:      buildCorpus(rng, 8),
		sampleEvery: 50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := r.awaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	sc := scenarios["smoke"]
	if err := sc.validate(); err != nil {
		t.Fatal(err)
	}
	phases, err := r.run(ctx, sc)
	if err != nil {
		t.Fatalf("run: %v (phases so far: %+v)", err, phases)
	}
	if len(phases) != len(sc.Phases) {
		t.Fatalf("got %d phase results, want %d", len(phases), len(sc.Phases))
	}
	for _, p := range phases {
		if p.Offered == 0 || p.Completed == 0 {
			t.Errorf("phase %s: offered=%d completed=%d", p.Name, p.Offered, p.Completed)
		}
		if p.ThroughputRPS <= 0 {
			t.Errorf("phase %s: throughput %.3f", p.Name, p.ThroughputRPS)
		}
		l := p.Latency
		if !(l.P50 > 0 && l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
			t.Errorf("phase %s: incoherent latency summary %+v", p.Name, l)
		}
		if p.ShedRate < 0 || p.ShedRate > 1 || p.ErrorRate < 0 || p.ErrorRate > 1 {
			t.Errorf("phase %s: rates out of range: shed=%.3f err=%.3f", p.Name, p.ShedRate, p.ErrorRate)
		}
		if p.Errors > p.Offered/2 {
			t.Errorf("phase %s: %d/%d requests errored (last server state suspect)", p.Name, p.Errors, p.Offered)
		}
	}
	// The duplicate phase must have exercised the answer cache...
	if dup := phases[0]; dup.Cache.HitRate <= 0 {
		t.Errorf("duplicate phase cache hit rate %.3f, want > 0 (hits=%d misses=%d)",
			dup.Cache.HitRate, dup.Cache.Hits, dup.Cache.Misses)
	}
	// ...and the churn phase must have actually churned.
	churn := phases[1]
	if churn.SSE == 0 {
		t.Errorf("churn phase saw no SSE subscribers")
	}
	if churn.Cancelled == 0 {
		t.Errorf("churn phase saw no cancellations")
	}
	// The sampler must have observed the server under load.
	if phases[0].Load.Samples == 0 {
		t.Errorf("gauge sampler took no samples")
	}
	// With the monitor off the anomaly map is present but empty — the field
	// must exist in every artifact regardless of monitoring.
	for _, p := range phases {
		if p.Anomalies == nil {
			t.Errorf("phase %s: nil anomaly map (artifact consumers rely on the field)", p.Name)
		}
	}
}

// TestAnomalyScenarioInProcess is the acceptance path: the anomaly scenario's
// shed storm against a deliberately tiny obs-enabled server must produce at
// least one shed-spike detection with a retained, downloadable pprof capture
// (runner.run fails the AssertAnomaly phase otherwise), and the per-phase
// anomaly counts must land in the artifact.
func TestAnomalyScenarioInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load run")
	}
	sc := scenarios["anomaly"]
	if err := sc.validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Self == nil {
		t.Fatal("anomaly scenario must pin the self-server shape")
	}
	srv := serve.New(serve.Config{
		Workers: 2, SerialDepth: 4, TableBits: 14, CacheSize: 64,
		MaxConcurrent: sc.Self.MaxConcurrent, QueueTimeout: sc.Self.QueueTimeout,
		WindowTick: time.Second, WindowSlots: 30,
		ObsSample: 25 * time.Millisecond,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(7))
	r := &runner{
		base:        ts.URL,
		client:      ts.Client(),
		rng:         rng,
		corpus:      buildCorpus(rng, 8),
		sampleEvery: 50 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := r.awaitReady(ctx, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	phases, err := r.run(ctx, sc)
	if err != nil {
		t.Fatalf("run: %v (phases so far: %+v)", err, phases)
	}
	if len(phases) != len(sc.Phases) {
		t.Fatalf("got %d phase results, want %d", len(phases), len(sc.Phases))
	}
	storm := phases[len(phases)-1]
	if storm.Anomalies["shed-spike"] < 1 {
		t.Fatalf("shed storm recorded no shed-spike anomaly: %v", storm.Anomalies)
	}
	if storm.Shed == 0 {
		t.Fatalf("shed storm shed nothing (offered=%d) — server shape too large", storm.Offered)
	}
}
