// Command erload is a traffic-shaped load harness for the erserve analysis
// service. It replays a scenario — phases of open-loop Poisson arrivals over
// per-game opening/midgame/endgame position mixes, with configurable
// fractions of SSE subscribers, duplicate requests (exercising the
// single-flight answer cache), and mid-budget client cancellations — against
// a running server (-url) or an in-process one it starts itself (default),
// and writes per-phase p50/p95/p99 latency, throughput, shed/error rates,
// answer-cache hit rate, and sampled in-flight/queue-depth gauges to a JSON
// artifact (-out, the committed BENCH_serve.json).
//
// The arrivals are open-loop: request launches follow the seeded Poisson
// clock regardless of completions, so overload shows up as queueing and shed
// rather than as a silently slowed offered rate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"ertree/internal/benchlog"
	"ertree/internal/serve"
)

func main() {
	var (
		target      = flag.String("url", "", "base URL of a running erserve; empty starts an in-process server")
		scenarioArg = flag.String("scenario", "default", "scenario to run: "+scenarioNames())
		seed        = flag.Int64("seed", 1, "rng seed for arrivals and position draws")
		out         = flag.String("out", "", "write the JSON results artifact here (e.g. BENCH_serve.json)")
		verbose     = flag.Bool("v", true, "print per-phase summaries as they complete")
		sampleEvery = flag.Duration("sample-every", 100*time.Millisecond, "in-flight/queue gauge sampling interval")
		readyWait   = flag.Duration("ready-timeout", 10*time.Second, "how long to wait for /healthz readiness")

		// In-process server knobs (ignored with -url).
		backendArg    = flag.String("backend", "", "in-process server: search backend (empty = engine default)")
		workers       = flag.Int("workers", runtime.NumCPU(), "in-process server: parallel-ER workers per search")
		serialDepth   = flag.Int("serial-depth", 4, "in-process server: serial work grain")
		maxConcurrent = flag.Int("max-concurrent", 2*runtime.NumCPU(), "in-process server: concurrent session slots")
		queueTimeout  = flag.Duration("queue-timeout", 150*time.Millisecond, "in-process server: admission queue wait before 503")
		tableBits     = flag.Int("table-bits", 16, "in-process server: per-game transposition table bits")
		cacheSize     = flag.Int("cache-size", 256, "in-process server: answer-cache capacity (0 disables)")
		obsSample     = flag.Duration("obs-sample", 100*time.Millisecond, "in-process server: self-monitor sampling interval (0 disables anomaly detection)")
		history       = flag.String("history", "", "append this run's headline throughput/shed numbers to a JSONL history file (e.g. BENCH_history.jsonl)")
	)
	flag.Parse()

	sc, ok := scenarios[*scenarioArg]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (have: %s)\n", *scenarioArg, scenarioNames())
		os.Exit(2)
	}
	if err := sc.validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *target
	targetLabel := base
	if base == "" {
		// Self mode: an in-process server on a loopback port, so the harness
		// (and CI) needs no separately managed process. A scenario that needs
		// a particular capacity shape (the anomaly storm) overrides the pool
		// knobs so its assertions hold on any host.
		mc, qt := *maxConcurrent, *queueTimeout
		if sc.Self != nil {
			mc, qt = sc.Self.MaxConcurrent, sc.Self.QueueTimeout
		}
		srv := serve.New(serve.Config{
			Backend:       *backendArg,
			Workers:       *workers,
			SerialDepth:   *serialDepth,
			MaxConcurrent: mc,
			QueueTimeout:  qt,
			TableBits:     *tableBits,
			CacheSize:     *cacheSize,
			WindowTick:    time.Second,
			WindowSlots:   30,
			ObsSample:     *obsSample,
			Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		targetLabel = "in-process"
	}

	rng := rand.New(rand.NewSource(*seed))
	r := &runner{
		base:        base,
		client:      &http.Client{Timeout: 60 * time.Second},
		rng:         rng,
		corpus:      buildCorpus(rng, 16),
		sampleEvery: *sampleEvery,
		verbose:     *verbose,
	}

	health, err := r.awaitReady(ctx, *readyWait)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("target %s ready: backend=%s table=%s capacity=%d; scenario %q (%d phases, seed %d)\n",
			targetLabel, health.Backend, health.TableImpl, health.Capacity, sc.Name, len(sc.Phases), *seed)
	}

	phases, runErr := r.run(ctx, sc)

	art := benchServe{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario:   sc.Name,
		Target:     targetLabel,
		Seed:       *seed,
		Server: serverInfo{
			Backend:   health.Backend,
			TableImpl: health.TableImpl,
			Capacity:  health.Capacity,
		},
		Phases: phases,
	}
	if *out != "" && len(phases) > 0 {
		data, err := json.MarshalIndent(art, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("wrote %s (%d phases)\n", *out, len(phases))
		}
	}
	if *history != "" && len(phases) > 0 {
		// Headline per-phase numbers for the retained history: throughput,
		// shed rate, and total anomaly detections keyed by phase name.
		ratios := make(map[string]float64, 3*len(phases))
		for _, p := range phases {
			ratios[p.Name+"_throughput_rps"] = p.ThroughputRPS
			ratios[p.Name+"_shed_rate"] = p.ShedRate
			var anoms int64
			for _, n := range p.Anomalies {
				anoms += n
			}
			ratios[p.Name+"_anomalies"] = float64(anoms)
		}
		if err := benchlog.Append(*history, "erload-"+sc.Name, ratios); err != nil {
			fmt.Fprintf(os.Stderr, "appending %s: %v\n", *history, err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("appended headline numbers to %s\n", *history)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}
}

func scenarioNames() string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
