package ertree_test

import (
	"strings"
	"testing"

	"ertree"
)

// TestBackendsRegistry checks the facade exposes the three shipped backends
// and rejects unknown names with a message listing them.
func TestBackendsRegistry(t *testing.T) {
	names := ertree.Backends()
	for _, want := range []string{"er", "serial", "lazysmp"} {
		if !ertree.ValidBackend(want) {
			t.Fatalf("backend %q not registered", want)
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Backends() = %v, missing %q", names, want)
		}
	}
	if _, err := ertree.SearchWith("nosuch", ertree.TicTacToe(), 3, ertree.Config{}); err == nil {
		t.Fatal("SearchWith accepted an unknown backend")
	} else if !strings.Contains(err.Error(), "lazysmp") {
		t.Fatalf("error does not list the registered set: %v", err)
	}
}

// TestSearchWithAgreesAcrossBackends runs the same position through every
// backend via the facade and requires identical exact values — the public
// face of the invariance suite.
func TestSearchWithAgreesAcrossBackends(t *testing.T) {
	pos := ertree.Connect4()
	const depth = 7
	var want ertree.Value
	for i, name := range ertree.Backends() {
		res, err := ertree.SearchWith(name, pos, depth, ertree.Config{
			Workers:     4,
			SerialDepth: 3,
			Table:       ertree.NewSharedTranspositionTable(14, 0),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Exact {
			t.Fatalf("%s: full-window search not exact", name)
		}
		if i == 0 {
			want = res.Value
			continue
		}
		if res.Value != want {
			t.Fatalf("%s: value %d, other backends found %d", name, res.Value, want)
		}
	}
}
