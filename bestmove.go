package ertree

import (
	"errors"

	"ertree/internal/serial"
)

// ErrNoMoves reports a position with no legal moves passed to BestMove.
var ErrNoMoves = errors.New("ertree: position has no legal moves")

// Move pairs a move index (position in the root's Children slice, natural
// move order) with its negamax score from the root player's view. Exact
// reports whether Score is the move's exact value; when false the move was
// refuted by a scout search and Score is a fail-soft upper bound — enough to
// know the move is no better than the best.
type Move struct {
	Index int
	Score Value
	Exact bool
}

// BestMove searches the children of pos to depth-1 with parallel ER and
// returns the move with the highest score, together with all scored moves.
// The first child is searched with a full window; every later child is
// scouted against a fail-soft lower bound of the best score so far (a null
// window just above it) and re-searched with an open window only when it
// fails high — the principal-variation pattern that keeps the best move's
// score exact while refuted moves cut quickly on a bound.
func BestMove(pos Position, depth int, cfg Config) (best Move, all []Move, err error) {
	kids := pos.Children()
	if len(kids) == 0 {
		return Move{}, nil, ErrNoMoves
	}
	all = make([]Move, 0, len(kids))
	best = Move{Index: -1, Score: -Inf - 1}
	for i, k := range kids {
		m := Move{Index: i, Exact: true}
		switch {
		case depth <= 1:
			var s serial.Searcher
			s.Stats = cfg.Stats
			m.Score = -s.Negmax(k, 0)
		case best.Index < 0:
			// First child: full window; its exact score seeds the bound.
			res, err := Search(k, depth-1, cfg)
			if err != nil {
				return Move{}, all, err
			}
			m.Score = -res.Value
		default:
			// Scout: can this move beat the best? Null window (b, b+1).
			scout := cfg
			scout.RootWindow = &Window{Alpha: -(best.Score + 1), Beta: -best.Score}
			res, err := Search(k, depth-1, scout)
			if err != nil {
				return Move{}, all, err
			}
			m.Score = -res.Value
			if m.Score > best.Score {
				// Fail high: the move beats the best so far. Re-search with
				// the upper window open; the true value exceeds Alpha, so
				// the fail-soft result is exact.
				wide := cfg
				wide.RootWindow = &Window{Alpha: -Inf, Beta: -best.Score}
				res, err = Search(k, depth-1, wide)
				if err != nil {
					return Move{}, all, err
				}
				m.Score = -res.Value
			} else {
				m.Exact = false // refuted: Score is an upper bound
			}
		}
		all = append(all, m)
		if m.Score > best.Score {
			best = m
		}
	}
	return best, all, nil
}

// BestLine returns the principal variation from pos to the given depth as a
// sequence of child indices (natural move order at each step), by repeatedly
// selecting the best move with parallel ER. The line has up to depth moves;
// it stops early at terminal positions.
func BestLine(pos Position, depth int, cfg Config) ([]Move, error) {
	var line []Move
	cur := pos
	for d := depth; d > 0; d-- {
		best, _, err := BestMove(cur, d, cfg)
		if errors.Is(err, ErrNoMoves) {
			break
		}
		if err != nil {
			return line, err
		}
		line = append(line, best)
		cur = cur.Children()[best.Index]
	}
	return line, nil
}

// IterativeDeepening runs serial iterative deepening with aspiration windows
// (a serial application of Baudet's §4.1 idea) up to maxDepth, returning the
// per-depth values. The final entry is the exact value at maxDepth.
func IterativeDeepening(pos Position, maxDepth int, delta Value, order Orderer) []DeepeningResult {
	s := serial.Searcher{Order: order}
	return s.IterativeDeepening(pos, serial.DeepeningOptions{MaxDepth: maxDepth, Delta: delta})
}

// DeepeningResult reports one iteration of IterativeDeepening.
type DeepeningResult = serial.DeepeningResult
