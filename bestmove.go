package ertree

import "ertree/internal/serial"

// Move pairs a move index (position in the root's Children slice, natural
// move order) with its exact negamax score from the root player's view.
type Move struct {
	Index int
	Score Value
}

// BestMove searches each child of pos to depth-1 with parallel ER and
// returns the move with the highest score, together with all scored moves.
// It returns ok=false when pos has no children. Every child is searched
// with a full window, so all returned scores are exact — what a
// game-playing program needs for move selection and analysis.
func BestMove(pos Position, depth int, cfg Config) (best Move, all []Move, ok bool) {
	kids := pos.Children()
	if len(kids) == 0 {
		return Move{}, nil, false
	}
	best = Move{Index: -1, Score: -Inf - 1}
	for i, k := range kids {
		var v Value
		if depth <= 1 {
			var s serial.Searcher
			s.Stats = cfg.Stats
			v = -s.Negmax(k, 0)
		} else {
			res := Search(k, depth-1, cfg)
			v = -res.Value
		}
		m := Move{Index: i, Score: v}
		all = append(all, m)
		if v > best.Score {
			best = m
		}
	}
	return best, all, true
}

// BestLine returns the principal variation from pos to the given depth as a
// sequence of child indices (natural move order at each step), by repeatedly
// selecting the best move with parallel ER. The line has up to depth moves;
// it stops early at terminal positions.
func BestLine(pos Position, depth int, cfg Config) []Move {
	var line []Move
	cur := pos
	for d := depth; d > 0; d-- {
		best, _, ok := BestMove(cur, d, cfg)
		if !ok {
			break
		}
		line = append(line, best)
		cur = cur.Children()[best.Index]
	}
	return line
}

// IterativeDeepening runs serial iterative deepening with aspiration windows
// (a serial application of Baudet's §4.1 idea) up to maxDepth, returning the
// per-depth values. The final entry is the exact value at maxDepth.
func IterativeDeepening(pos Position, maxDepth int, delta Value, order Orderer) []DeepeningResult {
	s := serial.Searcher{Order: order}
	return s.IterativeDeepening(pos, serial.DeepeningOptions{MaxDepth: maxDepth, Delta: delta})
}

// DeepeningResult reports one iteration of IterativeDeepening.
type DeepeningResult = serial.DeepeningResult
