package ertree

import (
	"ertree/internal/checkers"
	"ertree/internal/connect4"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/ttt"
)

// OthelloBoard is a full 8x8 Othello position (bitboard move generation,
// pass handling, phase-blended positional/mobility evaluator). It
// implements Position.
type OthelloBoard = othello.Board

// Othello returns the standard Othello initial position, Black to move.
func Othello() OthelloBoard { return othello.Start() }

// OthelloRoot returns one of the paper's three experiment roots "O1", "O2"
// or "O3": deterministic midgame positions with White to move (§7, Figure 9
// substitution documented in DESIGN.md).
func OthelloRoot(name string) (OthelloBoard, error) { return othello.Root(name) }

// ParseOthello builds a board from a diagram of 'X'/'O'/'.' cells (rank 8
// first) and the side to move.
func ParseOthello(diagram string, blackToMove bool) (OthelloBoard, error) {
	return othello.Parse(diagram, blackToMove)
}

// TicTacToeBoard is a tic-tac-toe position (the game of the paper's
// Figure 1). It implements Position.
type TicTacToeBoard = ttt.Board

// TicTacToe returns the empty tic-tac-toe board, X to move. Its exact value
// is 0: the game is a draw (Figure 1).
func TicTacToe() TicTacToeBoard { return ttt.New() }

// CheckersBoard is an English draughts position (forced captures,
// multi-jumps, promotion; material/positional evaluator) — the game of
// Fishburn's tree-splitting experiments cited in §4.4. It implements
// Position.
type CheckersBoard = checkers.Board

// Checkers returns the standard checkers initial position, Black to move.
func Checkers() CheckersBoard { return checkers.Start() }

// Connect4Board is a Connect Four position (bitboards, center-out move
// ordering, line-potential evaluator). It implements Position.
type Connect4Board = connect4.Board

// Connect4 returns the empty Connect Four board.
func Connect4() Connect4Board { return connect4.New() }

// RandomTree describes a uniform random game tree: fixed degree, fixed
// depth, independent uniform leaf values derived from the seed (§7). The
// tree is never materialized, so arbitrarily large trees cost no memory.
type RandomTree = randtree.Tree

// NewRandomTree returns a random game tree workload.
func NewRandomTree(seed uint64, degree, depth int) *RandomTree {
	return &randtree.Tree{Seed: seed, Degree: degree, Depth: depth, ValueRange: 10000}
}

// R1, R2, R3 return the paper's Table 3 random-tree workloads.
func R1() *RandomTree { return randtree.R1() }

// R2 returns random tree R2 of Table 3 (degree 4, 11 ply).
func R2() *RandomTree { return randtree.R2() }

// R3 returns random tree R3 of Table 3 (degree 8, 7 ply).
func R3() *RandomTree { return randtree.R3() }

// StrongTree is a synthetic "strongly ordered" game tree in Marsland's
// sense (§4.4): the first branch is best most of the time, and interior
// positions expose an informed static estimate.
type StrongTree = randtree.StrongTree

// NewStrongTree returns a strongly ordered tree tuned to Marsland's 70%/90%
// ordering statistics.
func NewStrongTree(seed uint64, degree, depth int) *StrongTree {
	return randtree.Marsland(seed, degree, depth)
}
