package ertree

import (
	"context"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
	"ertree/internal/tt"
)

// Errors returned by Search, SearchContext and Simulate.
var (
	// ErrAborted reports a search cancelled before the root resolved; the
	// partial Result still carries statistics.
	ErrAborted = core.ErrAborted
	// ErrUnresolved reports a search that terminated without resolving the
	// root, an internal invariant violation.
	ErrUnresolved = core.ErrUnresolved
)

// Position is a game state from the point of view of the player to move.
// Implement it to search your own game; Othello, TicTacToe and the random
// trees in this package already do.
type Position = game.Position

// Value is a position score in the negamax convention: always from the
// point of view of the player to move, bounded by (-Inf, Inf).
type Value = game.Value

// Inf bounds every legal score's magnitude.
const Inf = game.Inf

// Window is an alpha-beta window.
type Window = game.Window

// FullWindow returns the unrestricted window (-Inf, Inf).
func FullWindow() Window { return game.FullWindow() }

// Orderer is a move-ordering policy.
type Orderer = game.Orderer

// NaturalOrder searches children in the game's natural move order.
type NaturalOrder = game.NaturalOrder

// StaticOrder sorts children by static evaluation down to a ply limit, the
// ordering used by the paper's Othello experiments.
type StaticOrder = game.StaticOrder

// Stats accumulates node accounting for a search.
type Stats = game.Stats

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot = game.StatsSnapshot

// Negmax computes the exact value of pos searched to the given depth by
// visiting every node (paper §2). It is the reference oracle.
func Negmax(pos Position, depth int) Value {
	var s serial.Searcher
	return s.Negmax(pos, depth)
}

// AlphaBeta computes the exact value of pos using serial fail-soft
// alpha-beta with deep cutoffs (paper §2.1).
func AlphaBeta(pos Position, depth int) Value {
	var s serial.Searcher
	return s.AlphaBeta(pos, depth, game.FullWindow())
}

// SerialER computes the exact value of pos using the serial ER algorithm of
// the paper's Figure 8.
func SerialER(pos Position, depth int) Value {
	var s serial.Searcher
	return s.ER(pos, depth, game.FullWindow())
}

// Serial exposes the serial algorithms with full control over windows, move
// ordering and statistics.
type Serial = serial.Searcher

// PVS computes the exact value of pos using serial principal-variation
// search (minimal-window verification of non-first children), the technique
// behind the pv-splitting variant of the paper's footnote 3.
func PVS(pos Position, depth int) Value {
	var s serial.Searcher
	return s.PVS(pos, depth, game.FullWindow())
}

// TranspositionTable caches search results across transpositions for
// positions that implement Hashable (Othello, Connect Four, tic-tac-toe and
// the random trees all do). Use it with Serial.AlphaBetaTT.
type TranspositionTable = tt.Table

// Hashable is the capability a Position implements to enable transposition
// tables.
type Hashable = tt.Hashable

// NewTranspositionTable creates a table with 2^bits slots.
func NewTranspositionTable(bits int) *TranspositionTable { return tt.New(bits) }

// SharedTranspositionTable is the concurrent, mutex-striped table used by
// parallel searches: attach one via Config.Table and the serial subtree tasks
// probe it before searching and store their fail-soft bounds after, so
// concurrent workers — and successive searches sharing the table — reuse each
// other's subtree work. Exactness is preserved (probes match exact depth).
type SharedTranspositionTable = tt.Shared

// NewSharedTranspositionTable creates a striped shared table with 2^bits
// slots split across the given number of mutex stripes (zero picks a
// default). For implementation selection (lock-free vs striped) use
// NewSearchTable.
func NewSharedTranspositionTable(bits, shards int) *SharedTranspositionTable {
	return tt.NewShared(bits, shards)
}

// SearchTable is the concurrent transposition-table seam every search
// accepts: the mutex-striped baseline (SharedTranspositionTable) and the
// lock-free bucketed table both implement it.
type SearchTable = tt.SharedTable

// Shared-table implementation names accepted by NewSearchTable.
const (
	TableStriped  = tt.ImplStriped  // mutex-striped direct-mapped baseline
	TableLockFree = tt.ImplLockFree // atomic cache-line buckets, aging replacement
)

// NewSearchTable creates a shared table of the named implementation with
// 2^bits slots ("" consults the ERTREE_TABLE environment variable, then the
// default, lock-free). shards stripes the striped implementation and is
// ignored by the lock-free one. Unknown names return an error listing the
// valid set.
func NewSearchTable(impl string, bits, shards int) (SearchTable, error) {
	return tt.NewSharedTable(impl, bits, shards)
}

// TableImpls returns the shared-table implementation names, sorted.
func TableImpls() []string { return tt.Impls() }

// ValidTableImpl reports whether impl names a shared-table implementation
// ("" selects the default and is valid).
func ValidTableImpl(impl string) bool { return tt.ValidImpl(impl) }

// Config configures a parallel ER search.
type Config struct {
	// Workers is the number of processors. Defaults to 1.
	Workers int
	// SerialDepth is the remaining depth at or below which e-node subtrees
	// are searched by one serial ER call (the work grain). Zero
	// parallelizes to the leaves.
	SerialDepth int
	// Order is the move-ordering policy for non-e-node expansions; nil
	// means natural order.
	Order Orderer
	// DisableParallelRefutation, DisableMultipleENodes and
	// DisableEarlyChoice turn off the three speculative-work mechanisms of
	// §5 (all are on by default, the paper's configuration).
	DisableParallelRefutation bool
	DisableMultipleENodes     bool
	DisableEarlyChoice        bool
	// SpecRank selects the speculative-queue ordering: SpecRankPaper
	// (default, fewest e-children then shallowest), SpecRankDepth, or
	// SpecRankBound (global ranking by most optimistic candidate bound).
	SpecRank SpecRank
	// Trace records per-processor busy intervals during Simulate (see
	// Result.Timeline).
	Trace bool
	// EagerSpec admits nodes to the speculative queue after their first
	// elder grandchild instead of the paper's all-but-one rule. Helps on
	// uninformed trees, hurts on strongly ordered games (experiment A6).
	EagerSpec bool
	// Sharded replaces Search's global problem heap with per-worker shards
	// plus rank-respecting work stealing, removing the shared-heap lock from
	// the pop path. Identical results, different schedule; see core.Options.
	// Ignored by Simulate, which models the paper's single shared heap.
	Sharded bool
	// StealSeed seeds the per-worker victim-rotation RNG of the sharded
	// heap; distinct seeds decorrelate steal patterns across repeated
	// searches. Zero is a valid seed.
	StealSeed uint64
	// RootWindow, if non-nil, narrows the root search window. The search is
	// fail-soft: a value inside the window is exact, a value at or below
	// Alpha is an upper bound, a value at or above Beta is a lower bound.
	// Nil searches the full window and always returns the exact value.
	RootWindow *Window
	// Stats, if non-nil, receives node accounting.
	Stats *Stats
	// Table, if non-nil, backs the serial subtree tasks of Search with a
	// concurrent transposition table — any SearchTable implementation (see
	// NewSearchTable; NewSharedTranspositionTable builds the striped
	// baseline). Ignored by Simulate, whose model of the paper's machine has
	// no table.
	Table SearchTable
	// Hooks, if non-nil, arms per-worker telemetry on Search: busy spans by
	// task kind, the speculative-vs-primary work split, heap samples, and —
	// with Hooks.Events set — the bounded flight-recorder event log,
	// delivered per worker at exit. Nil costs one pointer test per task.
	// Ignored by Simulate, which records Timeline via Trace instead.
	Hooks *SearchHooks
	// ProfileLabels runs every Search task under runtime/pprof goroutine
	// labels (task_kind, spec), so CPU and mutex profiles segment by the
	// search's work taxonomy. Ignored by Simulate.
	ProfileLabels bool
}

// SearchHooks configures real-runtime search telemetry; see core.Hooks.
type SearchHooks = core.Hooks

// WorkerTelemetry is one worker's accumulated telemetry shard, delivered via
// SearchHooks.OnWorkerDone.
type WorkerTelemetry = core.WorkerTelemetry

// TaskKind classifies the work units reported in WorkerTelemetry.
type TaskKind = core.TaskKind

// Task kinds reported by search telemetry (see core.TaskKind).
const (
	TaskLeaf    = core.TaskLeaf
	TaskSerial  = core.TaskSerial
	TaskExamine = core.TaskExamine
	TaskExpand  = core.TaskExpand
	TaskSpec    = core.TaskSpec
	TaskCutoff  = core.TaskCutoff
	TaskDrop    = core.TaskDrop
)

// SpecRank is a speculative-queue ordering policy.
type SpecRank = core.SpecRank

// Speculative-queue ordering policies (see core.SpecRank).
const (
	SpecRankPaper = core.SpecRankPaper
	SpecRankDepth = core.SpecRankDepth
	SpecRankBound = core.SpecRankBound
)

func (c Config) options() core.Options {
	opt := core.Options{
		Workers:            c.Workers,
		SerialDepth:        c.SerialDepth,
		Order:              c.Order,
		ParallelRefutation: !c.DisableParallelRefutation,
		MultipleENodes:     !c.DisableMultipleENodes,
		EarlyChoice:        !c.DisableEarlyChoice,
		SpecRank:           c.SpecRank,
		EagerSpec:          c.EagerSpec,
		Sharded:            c.Sharded,
		StealSeed:          c.StealSeed,
		RootWindow:         c.RootWindow,
		Trace:              c.Trace,
		Stats:              c.Stats,
		Hooks:              c.Hooks,
		ProfileLabels:      c.ProfileLabels,
	}
	if !tt.IsNil(c.Table) {
		// Assign only when non-nil: a typed-nil table wrapped in the Prober
		// interface would read as attached.
		opt.Table = c.Table
	}
	return opt
}

// Result reports the outcome of a parallel ER search; see core.Result for
// field documentation.
type Result = core.Result

// CostModel maps engine operations to virtual time for Simulate.
type CostModel = core.CostModel

// DefaultCostModel returns the cost model used by the experiment harness.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// Search runs parallel ER on real goroutines and returns the root value —
// exact, or a fail-soft bound when Config.RootWindow excludes it. Correct for
// any worker count; prefer Simulate for speedup measurement on machines with
// few cores. The error is always nil today unless a RootWindow search trips
// an internal invariant; it exists so cancellable variants share the
// signature.
func Search(pos Position, depth int, cfg Config) (Result, error) {
	return core.Search(pos, depth, cfg.options())
}

// SearchContext is Search under a context: when ctx is cancelled or its
// deadline expires, the workers stop cooperatively and SearchContext returns
// the partial Result with ErrAborted. Callers wanting a best-so-far answer
// under time control should prefer the engine package, which wraps this in
// iterative deepening.
func SearchContext(ctx context.Context, pos Position, depth int, cfg Config) (Result, error) {
	opt := cfg.options()
	opt.Cancel = ctx.Done()
	return core.Search(pos, depth, opt)
}

// Simulate runs parallel ER on P virtual processors of the deterministic
// discrete-event simulator under the given cost model, reporting virtual
// makespan and the starvation/interference loss decomposition of §3.1.
func Simulate(pos Position, depth int, cfg Config, cost CostModel) (Result, error) {
	return core.Simulate(pos, depth, cfg.options(), cost)
}
