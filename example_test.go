package ertree_test

import (
	"fmt"

	"ertree"
)

// The paper's Figure 1: tic-tac-toe is a draw under optimal play.
func ExampleNegmax() {
	v := ertree.Negmax(ertree.TicTacToe(), 9)
	fmt.Println(v)
	// Output: 0
}

// Parallel ER returns the exact negamax value for any worker count.
func ExampleSearch() {
	tree := ertree.NewRandomTree(7, 4, 6)
	serial := ertree.AlphaBeta(tree.Root(), 6)
	parallel, _ := ertree.Search(tree.Root(), 6, ertree.Config{Workers: 8, SerialDepth: 3})
	fmt.Println(serial == parallel.Value)
	// Output: true
}

// Simulate reproduces the paper's measurements deterministically: the same
// configuration always yields the same virtual makespan.
func ExampleSimulate() {
	tree := ertree.NewRandomTree(7, 4, 6)
	cfg := ertree.Config{Workers: 16, SerialDepth: 3}
	a, _ := ertree.Simulate(tree.Root(), 6, cfg, ertree.DefaultCostModel())
	b, _ := ertree.Simulate(tree.Root(), 6, cfg, ertree.DefaultCostModel())
	fmt.Println(a.VirtualTime == b.VirtualTime, a.Value == b.Value)
	// Output: true true
}

// BestMove returns the highest-scoring move with an exact score; in Connect
// Four the center opening is best.
func ExampleBestMove() {
	best, _, _ := ertree.BestMove(ertree.Connect4(), 7, ertree.Config{Workers: 4, SerialDepth: 4})
	// Children are ordered center-out, so index 0 is the center column.
	fmt.Println(best.Index)
	// Output: 0
}

// A transposition table accelerates search on transposition-rich games
// without changing the result.
func ExampleNewTranspositionTable() {
	board := ertree.Connect4()
	var s ertree.Serial
	plain := s.AlphaBeta(board, 7, ertree.FullWindow())
	table := ertree.NewTranspositionTable(16)
	cached := s.AlphaBetaTT(board, 7, ertree.FullWindow(), table)
	fmt.Println(plain == cached, table.Hits > 0)
	// Output: true true
}
