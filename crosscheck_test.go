package ertree_test

// Repository-wide cross-validation: every algorithm in the library must
// return the exact negmax value on the same inputs. This is the soak
// version of the per-package agreement tests: more trees, more shapes, all
// engines, run together. Skipped under -short.

import (
	"math/rand"
	"testing"

	"ertree"
	"ertree/internal/game"
	"ertree/internal/gtree"
)

func TestEveryAlgorithmAgreesEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	rng := rand.New(rand.NewSource(0xC0FFEE))
	specs := []gtree.RandomSpec{
		{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 100},
		{MinDegree: 2, MaxDegree: 2, MinDepth: 5, MaxDepth: 7, ValueRange: 4},
		{MinDegree: 1, MaxDegree: 6, MinDepth: 1, MaxDepth: 3, ValueRange: 10000},
		{MinDegree: 3, MaxDegree: 5, MinDepth: 3, MaxDepth: 4, ValueRange: 60, StaticNoise: 10},
	}
	cost := ertree.DefaultCostModel()
	checked := 0
	for si, spec := range specs {
		for i := 0; i < 40; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			want := ertree.Negmax(root, h)
			checked++

			assert := func(name string, got ertree.Value) {
				if got != want {
					t.Fatalf("spec %d tree %d: %s = %d, want %d\n%s",
						si, i, name, got, want, root)
				}
			}

			assert("AlphaBeta", ertree.AlphaBeta(root, h))
			assert("SerialER", ertree.SerialER(root, h))
			assert("PVS", ertree.PVS(root, h))

			var s ertree.Serial
			assert("AlphaBetaNoDeep", s.AlphaBetaNoDeep(root, h, ertree.Inf))
			assert("AlphaBetaSelectiveSort", s.AlphaBetaSelectiveSort(root, h, ertree.FullWindow()))
			assert("AlphaBetaTT", s.AlphaBetaTT(root, h, ertree.FullWindow(), ertree.NewTranspositionTable(10)))

			cfg := ertree.Config{Workers: 1 + rng.Intn(16), SerialDepth: rng.Intn(h + 1)}
			assert("Search", mustSearch(t, root, h, cfg).Value)
			assert("Simulate", mustSimulate(t, root, h, cfg, cost).Value)

			cfgAlt := cfg
			cfgAlt.SpecRank = ertree.SpecRankBound
			cfgAlt.EagerSpec = true
			assert("Simulate/bound+eager", mustSimulate(t, root, h, cfgAlt, cost).Value)

			assert("Aspiration", ertree.Aspiration(root, h,
				ertree.AspirationOptions{Workers: 1 + rng.Intn(8), Bound: spec.ValueRange + 10}, cost).Value)
			assert("MWF", ertree.MWF(root, h,
				ertree.MWFOptions{Workers: 1 + rng.Intn(8), SerialDepth: rng.Intn(h + 1)}, cost).Value)

			tsOpt := ertree.TreeSplitOptions{Height: rng.Intn(3), Fanout: 2 + rng.Intn(2)}
			assert("TreeSplit", ertree.TreeSplit(root, h, tsOpt, cost).Value)
			assert("PVSplit", ertree.PVSplit(root, h, tsOpt, cost).Value)
			assert("PVSplitMW", ertree.PVSplitMW(root, h, tsOpt, cost).Value)

			if id := ertree.IterativeDeepening(root, h, 8, nil); id[len(id)-1].Value != want {
				t.Fatalf("spec %d tree %d: IterativeDeepening = %d, want %d",
					si, i, id[len(id)-1].Value, want)
			}
		}
	}
	t.Logf("cross-checked %d trees across 14 algorithms", checked)
}

// TestAlgorithmsAgreeOnRealGames repeats the cross-check on positions from
// the three real games.
func TestAlgorithmsAgreeOnRealGames(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	rng := rand.New(rand.NewSource(7))
	cost := ertree.DefaultCostModel()
	type testCase struct {
		name  string
		pos   ertree.Position
		depth int
	}
	var cases []testCase

	o := ertree.Othello()
	for i := 0; i < 10; i++ {
		kids := o.Children()
		o = kids[rng.Intn(len(kids))].(ertree.OthelloBoard)
	}
	cases = append(cases, testCase{"othello", o, 4})

	c4 := ertree.Connect4()
	for i := 0; i < 8; i++ {
		kids := c4.Children()
		c4 = kids[rng.Intn(len(kids))].(ertree.Connect4Board)
	}
	cases = append(cases, testCase{"connect4", c4, 6})

	ck := ertree.Checkers()
	for i := 0; i < 10; i++ {
		moves := ck.Moves()
		ck = ck.Apply(moves[rng.Intn(len(moves))])
	}
	cases = append(cases, testCase{"checkers", ck, 5})

	cases = append(cases, testCase{"tictactoe", ertree.TicTacToe(), 9})

	for _, tc := range cases {
		want := ertree.Negmax(tc.pos, tc.depth)
		order := ertree.StaticOrder{MaxPly: 3}
		s := ertree.Serial{Order: order}
		if got := s.AlphaBeta(tc.pos, tc.depth, ertree.FullWindow()); got != want {
			t.Errorf("%s: sorted alpha-beta %d, want %d", tc.name, got, want)
		}
		if got := s.PVS(tc.pos, tc.depth, ertree.FullWindow()); got != want {
			t.Errorf("%s: PVS %d, want %d", tc.name, got, want)
		}
		if got := s.ER(tc.pos, tc.depth, ertree.FullWindow()); got != want {
			t.Errorf("%s: serial ER %d, want %d", tc.name, got, want)
		}
		for _, p := range []int{2, 7, 16} {
			cfg := ertree.Config{Workers: p, SerialDepth: tc.depth / 2, Order: order}
			if got := mustSimulate(t, tc.pos, tc.depth, cfg, cost); got.Value != want {
				t.Errorf("%s P=%d: parallel ER %d, want %d", tc.name, p, got.Value, want)
			}
		}
		if game.Position(tc.pos) == nil {
			t.Errorf("%s: nil position", tc.name)
		}
	}
}
