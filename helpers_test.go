package ertree_test

import (
	"testing"

	"ertree"
)

// mustSearch and mustSimulate unwrap the error-returning entry points for
// tests that search with a full window and no cancellation, where any error
// is a bug.
func mustSearch(t testing.TB, pos ertree.Position, depth int, cfg ertree.Config) ertree.Result {
	t.Helper()
	res, err := ertree.Search(pos, depth, cfg)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return res
}

func mustSimulate(t testing.TB, pos ertree.Position, depth int, cfg ertree.Config, cost ertree.CostModel) ertree.Result {
	t.Helper()
	res, err := ertree.Simulate(pos, depth, cfg, cost)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

// warnSingleCPUArtifact is the one caveat both committed-artifact guards
// (BENCH_core.json, BENCH_serve.json) attach to numbers measured on a 1-CPU
// host: every parallel comparison there measures single-core scheduling, not
// contention relief or the parallel serving path. `what` names the numbers
// the specific artifact should not be quoted for.
func warnSingleCPUArtifact(t testing.TB, numCPU int, what string) {
	t.Helper()
	if numCPU != 1 {
		return
	}
	t.Logf("warning: artifact was produced on a 1-CPU host; %s measure "+
		"single-core scheduling, not parallel behavior — regenerate on a "+
		"multi-core machine before quoting them", what)
}
