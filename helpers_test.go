package ertree_test

import (
	"testing"

	"ertree"
)

// mustSearch and mustSimulate unwrap the error-returning entry points for
// tests that search with a full window and no cancellation, where any error
// is a bug.
func mustSearch(t testing.TB, pos ertree.Position, depth int, cfg ertree.Config) ertree.Result {
	t.Helper()
	res, err := ertree.Search(pos, depth, cfg)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return res
}

func mustSimulate(t testing.TB, pos ertree.Position, depth int, cfg ertree.Config, cost ertree.CostModel) ertree.Result {
	t.Helper()
	res, err := ertree.Simulate(pos, depth, cfg, cost)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}
