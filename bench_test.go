// Benchmarks that regenerate each artifact of the paper's evaluation
// (DESIGN.md §5 maps every table and figure to its benchmark). The figure
// benchmarks run one representative workload per iteration and report the
// derived quantity the figure plots as a custom metric; `go run ./cmd/figures`
// produces the complete tables.
package ertree_test

import (
	"testing"

	"ertree"
	"ertree/internal/core"
	"ertree/internal/dib"
	"ertree/internal/experiments"
	"ertree/internal/game"
	"ertree/internal/metrics"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

var benchCost = core.DefaultCostModel()

func workload(name string) experiments.Workload {
	for _, w := range experiments.Table3() {
		if w.Name == name {
			return w
		}
	}
	panic("unknown workload " + name)
}

// BenchmarkTable3_Workloads builds every Table 3 workload and its serial
// baselines (the inputs every figure shares).
func BenchmarkTable3_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := experiments.Table3()
		if len(ws) != 6 {
			b.Fatal("workload count")
		}
		// Baseline the cheapest workload each iteration to keep the
		// benchmark meaningful but bounded.
		base := experiments.Baseline(ws[3], benchCost) // O1
		if base.Best() <= 0 {
			b.Fatal("bad baseline")
		}
	}
}

// BenchmarkFigure10_EfficiencyOthello regenerates one Othello curve of
// Figure 10 and reports the P=16 efficiency.
func BenchmarkFigure10_EfficiencyOthello(b *testing.B) {
	w := workload("O1")
	var eff float64
	for i := 0; i < b.N; i++ {
		er, _, _ := experiments.EfficiencyFigure(w, benchCost, []int{1, 4, 16})
		eff = er.Points[2].Efficiency
	}
	b.ReportMetric(eff, "efficiency@16")
}

// BenchmarkFigure11_EfficiencyRandom regenerates one random-tree curve of
// Figure 11 and reports the P=16 efficiency.
func BenchmarkFigure11_EfficiencyRandom(b *testing.B) {
	w := workload("R3")
	var eff float64
	for i := 0; i < b.N; i++ {
		er, _, _ := experiments.EfficiencyFigure(w, benchCost, []int{1, 4, 16})
		eff = er.Points[2].Efficiency
	}
	b.ReportMetric(eff, "efficiency@16")
}

// BenchmarkFigure12_NodesOthello regenerates one Othello group of Figure 12
// and reports the node growth from P=1 to P=16.
func BenchmarkFigure12_NodesOthello(b *testing.B) {
	w := workload("O1")
	var growth float64
	for i := 0; i < b.N; i++ {
		er, _ := experiments.NodesFigure(w, benchCost, []int{1, 16})
		growth = float64(er.Points[1].Nodes) / float64(er.Points[0].Nodes)
	}
	b.ReportMetric(growth, "nodes16/nodes1")
}

// BenchmarkFigure13_NodesRandom regenerates one random-tree group of
// Figure 13 and reports the node growth from P=1 to P=16.
func BenchmarkFigure13_NodesRandom(b *testing.B) {
	w := workload("R3")
	var growth float64
	for i := 0; i < b.N; i++ {
		er, _ := experiments.NodesFigure(w, benchCost, []int{1, 16})
		growth = float64(er.Points[1].Nodes) / float64(er.Points[0].Nodes)
	}
	b.ReportMetric(growth, "nodes16/nodes1")
}

// BenchmarkE1_Aspiration regenerates the aspiration-search comparison and
// reports the speedup plateau (P=16).
func BenchmarkE1_Aspiration(b *testing.B) {
	w := workload("R3")
	var sp float64
	for i := 0; i < b.N; i++ {
		s := experiments.E1Aspiration(w, benchCost, []int{1, 4, 16})
		sp = s.Points[2].Speedup
	}
	b.ReportMetric(sp, "speedup@16")
}

// BenchmarkE2_MWF regenerates the mandatory-work-first comparison on an
// Akl-style tree and reports the plateau speedup.
func BenchmarkE2_MWF(b *testing.B) {
	w := experiments.AklWorkloads()[0]
	var sp float64
	for i := 0; i < b.N; i++ {
		s := experiments.E2MWF(w, benchCost, []int{1, 16})
		sp = s.Points[1].Speedup
	}
	b.ReportMetric(sp, "speedup@16")
}

// BenchmarkE3_TreeSplitPVSplit regenerates the tree-splitting/pv-splitting
// comparison and reports tree-splitting's efficiency at 16 slaves.
func BenchmarkE3_TreeSplitPVSplit(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		ts, _ := experiments.E3TreeSplit(benchCost, []int{0, 2, 4})
		eff = ts.Points[2].Efficiency
	}
	b.ReportMetric(eff, "ts-efficiency@16")
}

// BenchmarkA1_SpeculationAblation runs the §5 mechanism ablation at P=16 and
// reports the makespan ratio of no-speculation to full speculation.
func BenchmarkA1_SpeculationAblation(b *testing.B) {
	w := workload("R3")
	var ratio float64
	for i := 0; i < b.N; i++ {
		series := experiments.A1Ablation(w, 16, benchCost)
		var full, none float64
		for _, s := range series {
			switch s.Name {
			case "full":
				full = float64(s.Points[0].Time)
			case "none":
				none = float64(s.Points[0].Time)
			}
		}
		ratio = none / full
	}
	b.ReportMetric(ratio, "none/full-time")
}

// --- Micro-benchmarks of the substrates ---

func BenchmarkSerialAlphaBeta_R3(b *testing.B) {
	tr := randtree.R3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s serial.Searcher
		if v := s.AlphaBeta(tr.Root(), 6, game.FullWindow()); v == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkSerialER_R3(b *testing.B) {
	tr := randtree.R3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s serial.Searcher
		if v := s.ER(tr.Root(), 6, game.FullWindow()); v == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkParallelER_Simulated16(b *testing.B) {
	tr := randtree.R3()
	opt := core.DefaultOptions()
	opt.Workers = 16
	opt.SerialDepth = 4
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(tr.Root(), 6, opt, benchCost)
		if err != nil || res.Value == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkParallelER_RealGoroutines(b *testing.B) {
	tr := randtree.R3()
	opt := core.DefaultOptions()
	opt.Workers = 8
	opt.SerialDepth = 4
	for i := 0; i < b.N; i++ {
		res, err := core.Search(tr.Root(), 6, opt)
		if err != nil || res.Value == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkOthelloMoveGeneration(b *testing.B) {
	pos := othello.O1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(pos.Moves()) == 0 {
			b.Fatal("no moves")
		}
	}
}

func BenchmarkOthelloEvaluate(b *testing.B) {
	pos := othello.O2()
	var sink ertree.Value
	for i := 0; i < b.N; i++ {
		sink += pos.Value()
	}
	_ = sink
}

func BenchmarkOthelloChildren(b *testing.B) {
	pos := othello.O3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(pos.Children()) == 0 {
			b.Fatal("no children")
		}
	}
}

func BenchmarkRandomTreeChildren(b *testing.B) {
	tr := randtree.R1()
	root := tr.Root()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kids := root.Children()
		if len(kids) != 4 {
			b.Fatal("bad degree")
		}
	}
}

func BenchmarkMetricsTable(b *testing.B) {
	series := []metrics.Series{{Name: "x", Points: []metrics.Point{
		{Workers: 1, Efficiency: 1}, {Workers: 16, Efficiency: 0.5},
	}}}
	for i := 0; i < b.N; i++ {
		if metrics.Table("t", "efficiency", series) == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkSerialPVS_Strong(b *testing.B) {
	tr := randtree.Marsland(7, 4, 7)
	order := game.StaticOrder{MaxPly: 5}
	for i := 0; i < b.N; i++ {
		s := serial.Searcher{Order: order}
		if v := s.PVS(tr.Root(), 7, game.FullWindow()); v == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkAlphaBetaTT_Connect4(b *testing.B) {
	pos := ertree.Connect4()
	for i := 0; i < b.N; i++ {
		table := ertree.NewTranspositionTable(16)
		var s ertree.Serial
		if v := s.AlphaBetaTT(pos, 7, ertree.FullWindow(), table); v == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkCheckersMoveGeneration(b *testing.B) {
	pos := ertree.Checkers()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(pos.Moves()) != 7 {
			b.Fatal("bad move count")
		}
	}
}

func BenchmarkConnect4Search6(b *testing.B) {
	pos := ertree.Connect4()
	for i := 0; i < b.N; i++ {
		if v := ertree.AlphaBeta(pos, 6); v == game.NoValue {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkDIBNQueens8(b *testing.B) {
	spec := dib.Count(
		func(q nqueens) []nqueens { return q.children() },
		func(q nqueens) bool { return len(q.cols) == q.n },
	)
	for i := 0; i < b.N; i++ {
		if got := dib.Run(nqueens{n: 8}, spec, 4); got != 92 {
			b.Fatalf("n-queens = %d", got)
		}
	}
}

// nqueens mirrors the DIB package's test example for benchmarking.
type nqueens struct {
	n    int
	cols []int
}

func (q nqueens) children() []nqueens {
	if len(q.cols) == q.n {
		return nil
	}
	var out []nqueens
	row := len(q.cols)
	for c := 0; c < q.n; c++ {
		valid := true
		for r, qc := range q.cols {
			if qc == c || qc-c == row-r || c-qc == row-r {
				valid = false
				break
			}
		}
		if valid {
			out = append(out, nqueens{n: q.n, cols: append(append([]int{}, q.cols...), c)})
		}
	}
	return out
}
