// BenchmarkRealSpeedup measures the real (goroutine) runtime the way the
// paper measured its Sequent implementation: wall-clock time of the same
// search at increasing processor counts. It complements the simulator
// benchmarks above — the simulator reports the model's speedup, this reports
// the hardware's — and writes its measurements to BENCH_core.json so runs on
// real multicore hosts leave a comparable artifact. On a single-CPU host the
// curve is flat (workers interleave); the artifact records the host's CPU
// count so readers can tell.
package ertree_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ertree"
	"ertree/internal/experiments"
	"ertree/internal/flight"
	"ertree/internal/telemetry"
)

// realSpeedupPoint is one (workload, worker-count, heap-mode) measurement.
type realSpeedupPoint struct {
	Workload  string  `json:"workload"`
	Workers   int     `json:"workers"`
	Sharded   bool    `json:"sharded"` // per-worker work-stealing heap vs. global heap
	ElapsedNS int64   `json:"elapsed_ns"`
	Speedup   float64 `json:"speedup"` // T(1, global) / T(P) for the same workload
	Value     int     `json:"value"`
	Nodes     int64   `json:"nodes"`
	Steals    int64   `json:"steals,omitempty"`
	TTProbes  int64   `json:"tt_probes"`
	TTHits    int64   `json:"tt_hits"`
	TTStores  int64   `json:"tt_stores"`
	TTCutoffs int64   `json:"tt_cutoffs"`
	TTHitRate float64 `json:"tt_hit_rate"`
}

// taskLatencySummary condenses the per-worker-count task-latency histogram:
// every task span observed at that processor count, across all workloads.
type taskLatencySummary struct {
	Workers int     `json:"workers"`
	Tasks   int64   `json:"tasks"`
	P50US   float64 `json:"p50_us"` // median task latency, microseconds
	P95US   float64 `json:"p95_us"`
	MeanUS  float64 `json:"mean_us"`
}

// specWasteSummary condenses the flight-recorder waste attribution per worker
// count: how much of the recorded busy time was speculative at all, and how
// much of it was provably wasted — the paper's §6 overhead, measured on the
// real runtime as P grows.
type specWasteSummary struct {
	Workers     int     `json:"workers"`
	Searches    int     `json:"searches"`
	SpecShare   float64 `json:"spec_share"`   // speculative fraction of recorded busy time
	WastedRatio float64 `json:"wasted_ratio"` // wasted-speculative fraction of recorded busy time
}

type realSpeedupArtifact struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	TableBits int    `json:"table_bits"`
	// ShardedVsGlobal is the throughput ratio T(global)/T(sharded) at the
	// highest measured worker count, averaged over workloads: >1 means the
	// sharded heap wins where contention is worst.
	ShardedVsGlobal float64              `json:"sharded_vs_global_at_max_p"`
	Points          []realSpeedupPoint   `json:"points"`
	TaskLatency     []taskLatencySummary `json:"task_latency"`
	SpecWaste       []specWasteSummary   `json:"spec_waste"`
}

// realSpeedupWorkers returns the measured processor counts: the paper's
// doubling ladder plus the host's CPU count, deduplicated and sorted.
func realSpeedupWorkers() []int {
	ps := []int{1, 2, 4, 8, runtime.NumCPU()}
	sort.Ints(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

func BenchmarkRealSpeedup(b *testing.B) {
	const tableBits = 18
	workloads := experiments.Table3()
	points := []realSpeedupPoint{}
	var lastSpeedup float64
	// One task-latency histogram per processor count, fed by search hooks:
	// the artifact summarizes how the work grain shifts as P grows.
	reg := telemetry.NewRegistry()
	taskHist := map[int]*telemetry.Histogram{}
	histFor := func(p int) *telemetry.Histogram {
		h, ok := taskHist[p]
		if !ok {
			h = reg.Histogram(fmt.Sprintf("bench_task_seconds_p%d", p),
				"Task latency at this worker count.",
				telemetry.ExponentialBuckets(1e-6, 2, 22))
			taskHist[p] = h
		}
		return h
	}
	// Elapsed per (workload, P, mode) at max P, for the sharded-vs-global
	// summary ratio. Each point is the best of a few repetitions: one cold
	// search is noisy at the millisecond scale and the comparison at max P is
	// the headline number.
	const reps = 3
	var ratioSum float64
	var ratioN int
	// Per-worker-count waste attribution, rebuilt per iteration from each
	// search's flight log (the hooks are armed for spans anyway).
	type wasteAccum struct {
		wasted, spec, total time.Duration
		searches            int
	}
	waste := map[int]*wasteAccum{}
	for i := 0; i < b.N; i++ {
		points = points[:0]
		ratioSum, ratioN = 0, 0
		waste = map[int]*wasteAccum{}
		for _, w := range workloads {
			base := int64(0)
			maxP := realSpeedupWorkers()[len(realSpeedupWorkers())-1]
			var globalAtMaxP int64
			for _, p := range realSpeedupWorkers() {
				for _, sharded := range []bool{false, true} {
					hist := histFor(p)
					var best ertree.Result
					for r := 0; r < reps; r++ {
						// One search's telemetry shards, for the flight-log
						// waste attribution below.
						var telMu sync.Mutex
						var tels []ertree.WorkerTelemetry
						// A fresh table per measurement: each one is a cold
						// search, not a replay of the previous point's work.
						cfg := ertree.Config{
							Workers:     p,
							SerialDepth: w.SerialDepth,
							Order:       w.Order,
							Sharded:     sharded,
							StealSeed:   uint64(r),
							Table:       ertree.NewSharedTranspositionTable(tableBits, 0),
							Hooks: &ertree.SearchHooks{
								Spans:  true,
								Events: 1 << 16,
								OnWorkerDone: func(wt ertree.WorkerTelemetry) {
									for _, sp := range wt.Spans {
										hist.Observe((sp.End - sp.Start).Seconds())
									}
									telMu.Lock()
									tels = append(tels, wt)
									telMu.Unlock()
								},
							},
						}
						res, err := ertree.Search(w.Root, w.Depth, cfg)
						if err != nil {
							b.Fatalf("%s P=%d sharded=%v: %v", w.Name, p, sharded, err)
						}
						rep := flight.Build(tels, flight.Options{Workers: p})
						wa, ok := waste[p]
						if !ok {
							wa = &wasteAccum{}
							waste[p] = wa
						}
						wa.wasted += rep.WastedSpec.Time
						wa.spec += rep.UsefulSpec.Time + rep.WastedSpec.Time
						wa.total += rep.UsefulPrimary.Time + rep.UsefulSpec.Time + rep.WastedSpec.Time
						wa.searches++
						if r == 0 || res.Elapsed < best.Elapsed {
							best = res
						}
					}
					res := best
					if p == 1 && !sharded {
						base = res.Elapsed.Nanoseconds()
					}
					if p == maxP {
						if sharded {
							if res.Elapsed > 0 {
								ratioSum += float64(globalAtMaxP) / float64(res.Elapsed.Nanoseconds())
								ratioN++
							}
						} else {
							globalAtMaxP = res.Elapsed.Nanoseconds()
						}
					}
					pt := realSpeedupPoint{
						Workload:  w.Name,
						Workers:   p,
						Sharded:   sharded,
						ElapsedNS: res.Elapsed.Nanoseconds(),
						Value:     int(res.Value),
						Nodes:     res.Stats.Generated,
						Steals:    res.Steals,
						TTProbes:  res.TTProbes,
						TTHits:    res.TTHits,
						TTStores:  res.TTStores,
						TTCutoffs: res.TTCutoffs,
					}
					if res.Elapsed > 0 {
						pt.Speedup = float64(base) / float64(res.Elapsed.Nanoseconds())
					}
					if res.TTProbes > 0 {
						pt.TTHitRate = float64(res.TTHits) / float64(res.TTProbes)
					}
					if res.SerialTasks > 0 && res.TTProbes == 0 {
						b.Fatalf("%s P=%d: table attached but never probed", w.Name, p)
					}
					points = append(points, pt)
					lastSpeedup = pt.Speedup
				}
			}
		}
	}
	b.ReportMetric(lastSpeedup, "speedup@maxP")
	shardedVsGlobal := 0.0
	if ratioN > 0 {
		shardedVsGlobal = ratioSum / float64(ratioN)
	}
	b.ReportMetric(shardedVsGlobal, "sharded/global@maxP")

	art := realSpeedupArtifact{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		TableBits:       tableBits,
		ShardedVsGlobal: shardedVsGlobal,
		Points:          points,
	}
	for _, p := range realSpeedupWorkers() {
		h := histFor(p)
		n := h.Count()
		if n == 0 {
			continue
		}
		art.TaskLatency = append(art.TaskLatency, taskLatencySummary{
			Workers: p,
			Tasks:   n,
			P50US:   h.Quantile(0.5) * 1e6,
			P95US:   h.Quantile(0.95) * 1e6,
			MeanUS:  h.Sum() / float64(n) * 1e6,
		})
	}
	for _, p := range realSpeedupWorkers() {
		wa, ok := waste[p]
		if !ok || wa.total == 0 {
			continue
		}
		art.SpecWaste = append(art.SpecWaste, specWasteSummary{
			Workers:     p,
			Searches:    wa.searches,
			SpecShare:   float64(wa.spec) / float64(wa.total),
			WastedRatio: float64(wa.wasted) / float64(wa.total),
		})
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
