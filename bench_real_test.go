// BenchmarkRealSpeedup measures the real (goroutine) runtime the way the
// paper measured its Sequent implementation: wall-clock time of the same
// search at increasing processor counts. It complements the simulator
// benchmarks above — the simulator reports the model's speedup, this reports
// the hardware's — and writes its measurements to BENCH_core.json so runs on
// real multicore hosts leave a comparable artifact. On a single-CPU host the
// curve is flat (workers interleave); the artifact records the host's CPU
// count so readers can tell.
package ertree_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ertree"
	"ertree/internal/benchlog"
	"ertree/internal/engine"
	"ertree/internal/experiments"
	"ertree/internal/flight"
	"ertree/internal/telemetry"
)

// realSpeedupPoint is one (workload, backend, worker-count, heap-mode)
// measurement.
type realSpeedupPoint struct {
	Workload  string  `json:"workload"`
	Backend   string  `json:"backend"` // search backend: er, serial, lazysmp
	Table     string  `json:"table"`   // shared-table implementation: lockfree, striped
	Workers   int     `json:"workers"`
	Sharded   bool    `json:"sharded"` // er only: work-stealing heap vs. global heap
	ElapsedNS int64   `json:"elapsed_ns"`
	Speedup   float64 `json:"speedup"` // T(1, global) / T(P) for the same workload
	Value     int     `json:"value"`
	Nodes     int64   `json:"nodes"`
	Steals    int64   `json:"steals,omitempty"`
	TTProbes  int64   `json:"tt_probes"`
	TTHits    int64   `json:"tt_hits"`
	TTStores  int64   `json:"tt_stores"`
	TTCutoffs int64   `json:"tt_cutoffs"`
	TTHitRate float64 `json:"tt_hit_rate"`
}

// driverSweepPoint is one (workload, root-driver) deepening measurement at
// the highest worker count: a full engine session (iterative deepening to the
// workload's depth on a fresh shared table) resolved by the named driver,
// with the driver's probe/re-search spend and the table pressure it induced.
type driverSweepPoint struct {
	Workload   string  `json:"workload"`
	Driver     string  `json:"driver"` // root driver: aspiration, mtdf, bns
	Workers    int     `json:"workers"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	Speedup    float64 `json:"speedup"` // T(aspiration) / T(driver), same workload
	Value      int     `json:"value"`
	Nodes      int64   `json:"nodes"`
	Probes     int64   `json:"probes"`     // null-window probes spent (mtdf/bns)
	Researches int64   `json:"researches"` // wide-window re-searches (reopens + fallbacks)
	TTProbes   int64   `json:"tt_probes"`
	TTHits     int64   `json:"tt_hits"`
	TTHitRate  float64 `json:"tt_hit_rate"`
}

// taskLatencySummary condenses the per-worker-count task-latency histogram:
// every task span observed at that processor count, across all workloads.
type taskLatencySummary struct {
	Workers int     `json:"workers"`
	Tasks   int64   `json:"tasks"`
	P50US   float64 `json:"p50_us"` // median task latency, microseconds
	P95US   float64 `json:"p95_us"`
	MeanUS  float64 `json:"mean_us"`
}

// specWasteSummary condenses the flight-recorder waste attribution per worker
// count: how much of the recorded busy time was speculative at all, and how
// much of it was provably wasted — the paper's §6 overhead, measured on the
// real runtime as P grows.
type specWasteSummary struct {
	Workers     int     `json:"workers"`
	Searches    int     `json:"searches"`
	SpecShare   float64 `json:"spec_share"`   // speculative fraction of recorded busy time
	WastedRatio float64 `json:"wasted_ratio"` // wasted-speculative fraction of recorded busy time
}

type realSpeedupArtifact struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU and GOMAXPROCS pin down the host the curves were measured on: a
	// single-CPU run (like the seed data) has flat curves by construction,
	// and a GOMAXPROCS cap below NumCPU caps the usable parallelism.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	TableBits  int `json:"table_bits"`
	// ShardedVsGlobal is the throughput ratio T(global)/T(sharded) at the
	// highest measured worker count, averaged over workloads: >1 means the
	// sharded heap wins where contention is worst.
	ShardedVsGlobal float64 `json:"sharded_vs_global_at_max_p"`
	// LazySMPVsER is the throughput ratio T(er, global)/T(lazysmp) at the
	// highest measured worker count, averaged over workloads: >1 means the
	// shared-hash-table scheduler beats the paper's ER scheduler on this
	// host — the comparison the 1990 paper couldn't run.
	LazySMPVsER float64 `json:"lazysmp_vs_er_at_max_p"`
	// LockfreeVsStriped is the throughput ratio T(striped)/T(lockfree) on the
	// er global-heap points at the highest measured worker count, averaged
	// over workloads: >1 means the lock-free table wins where probe/store
	// contention is worst.
	LockfreeVsStriped float64 `json:"lockfree_vs_striped_at_max_p"`
	// MTDFVsAspiration is the deepening-throughput ratio
	// T(aspiration)/T(mtdf) at the highest measured worker count, averaged
	// over workloads: >1 means MTD(f)'s null-window probes against the shared
	// table beat the classic wide-window loop on this host.
	MTDFVsAspiration float64              `json:"mtdf_vs_aspiration_at_max_p"`
	Points           []realSpeedupPoint   `json:"points"`
	DriverSweep      []driverSweepPoint   `json:"driver_sweep"`
	TaskLatency      []taskLatencySummary `json:"task_latency"`
	SpecWaste        []specWasteSummary   `json:"spec_waste"`
}

// backendSweepPoint selects one (backend, worker-count) measurement of the
// head-to-head sweep.
type backendSweepPoint struct {
	backend string
	workers int
}

// backendSweepPoints lists the non-er measurements for one workload: the
// serial scout is one processor by definition; lazysmp walks the same worker
// ladder as er.
func backendSweepPoints() []backendSweepPoint {
	out := []backendSweepPoint{{backend: "serial", workers: 1}}
	for _, p := range realSpeedupWorkers() {
		out = append(out, backendSweepPoint{backend: "lazysmp", workers: p})
	}
	return out
}

// benchBackendSearch measures one backend point: best-of-reps wall clock of
// a full-window fixed-depth search on a fresh shared table (each measurement
// is a cold search, matching the er points).
func benchBackendSearch(b *testing.B, name string, workers int, w experiments.Workload, tableBits, reps int) (ertree.BackendResult, time.Duration) {
	var best ertree.BackendResult
	var bestElapsed time.Duration
	for r := 0; r < reps; r++ {
		// Pinned to the lock-free (default) table so the backend curves stay
		// on one table variable; the table comparison is the er sweep's job.
		table, err := ertree.NewSearchTable(ertree.TableLockFree, tableBits, 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg := ertree.Config{
			Workers:     workers,
			SerialDepth: w.SerialDepth,
			Order:       w.Order,
			Table:       table,
		}
		t0 := time.Now()
		res, err := ertree.SearchWith(name, w.Root, w.Depth, cfg)
		elapsed := time.Since(t0)
		if err != nil {
			b.Fatalf("%s backend %s P=%d: %v", w.Name, name, workers, err)
		}
		if r == 0 || elapsed < bestElapsed {
			best, bestElapsed = res, elapsed
		}
	}
	return best, bestElapsed
}

// realSpeedupWorkers returns the measured processor counts: the paper's
// doubling ladder plus the host's CPU count, deduplicated and sorted.
func realSpeedupWorkers() []int {
	ps := []int{1, 2, 4, 8, runtime.NumCPU()}
	sort.Ints(ps)
	out := ps[:1]
	for _, p := range ps[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

func BenchmarkRealSpeedup(b *testing.B) {
	const tableBits = 18
	workloads := experiments.Table3()
	points := []realSpeedupPoint{}
	var lastSpeedup float64
	// One task-latency histogram per processor count, fed by search hooks:
	// the artifact summarizes how the work grain shifts as P grows.
	reg := telemetry.NewRegistry()
	taskHist := map[int]*telemetry.Histogram{}
	histFor := func(p int) *telemetry.Histogram {
		h, ok := taskHist[p]
		if !ok {
			h = reg.Histogram(fmt.Sprintf("bench_task_seconds_p%d", p),
				"Task latency at this worker count.",
				telemetry.ExponentialBuckets(1e-6, 2, 22))
			taskHist[p] = h
		}
		return h
	}
	// Elapsed per (workload, P, mode) at max P, for the sharded-vs-global
	// summary ratio. Each point is the best of a few repetitions: one cold
	// search is noisy at the millisecond scale and the comparison at max P is
	// the headline number.
	const reps = 3
	var ratioSum float64
	var ratioN int
	var lazyRatioSum float64
	var lazyRatioN int
	var lfRatioSum float64
	var lfRatioN int
	var mtdfRatioSum float64
	var mtdfRatioN int
	driverPoints := []driverSweepPoint{}
	// erModes are the (heap, table) variants measured per worker count: the
	// lock-free table on both heap modes (the serving default and its
	// work-stealing variant) plus the striped-table baseline on the global
	// heap — the pair behind the lockfree_vs_striped summary ratio. The
	// global+lockfree mode must come first: it is the T(1) denominator and
	// the max-P reference the other modes are divided by.
	erModes := []struct {
		sharded bool
		table   string
	}{
		{sharded: false, table: ertree.TableLockFree},
		{sharded: true, table: ertree.TableLockFree},
		{sharded: false, table: ertree.TableStriped},
	}
	// Per-worker-count waste attribution, rebuilt per iteration from each
	// search's flight log (the hooks are armed for spans anyway).
	type wasteAccum struct {
		wasted, spec, total time.Duration
		searches            int
	}
	waste := map[int]*wasteAccum{}
	for i := 0; i < b.N; i++ {
		points = points[:0]
		ratioSum, ratioN = 0, 0
		lazyRatioSum, lazyRatioN = 0, 0
		lfRatioSum, lfRatioN = 0, 0
		mtdfRatioSum, mtdfRatioN = 0, 0
		driverPoints = driverPoints[:0]
		waste = map[int]*wasteAccum{}
		for _, w := range workloads {
			base := int64(0)
			maxP := realSpeedupWorkers()[len(realSpeedupWorkers())-1]
			var globalAtMaxP int64
			for _, p := range realSpeedupWorkers() {
				for _, mode := range erModes {
					hist := histFor(p)
					var best ertree.Result
					for r := 0; r < reps; r++ {
						// One search's telemetry shards, for the flight-log
						// waste attribution below.
						var telMu sync.Mutex
						var tels []ertree.WorkerTelemetry
						// A fresh table per measurement: each one is a cold
						// search, not a replay of the previous point's work.
						table, err := ertree.NewSearchTable(mode.table, tableBits, 0)
						if err != nil {
							b.Fatal(err)
						}
						cfg := ertree.Config{
							Workers:     p,
							SerialDepth: w.SerialDepth,
							Order:       w.Order,
							Sharded:     mode.sharded,
							StealSeed:   uint64(r),
							Table:       table,
							Hooks: &ertree.SearchHooks{
								Spans:  true,
								Events: 1 << 16,
								OnWorkerDone: func(wt ertree.WorkerTelemetry) {
									for _, sp := range wt.Spans {
										hist.Observe((sp.End - sp.Start).Seconds())
									}
									telMu.Lock()
									tels = append(tels, wt)
									telMu.Unlock()
								},
							},
						}
						res, err := ertree.Search(w.Root, w.Depth, cfg)
						if err != nil {
							b.Fatalf("%s P=%d sharded=%v table=%s: %v", w.Name, p, mode.sharded, mode.table, err)
						}
						rep := flight.Build(tels, flight.Options{Workers: p})
						wa, ok := waste[p]
						if !ok {
							wa = &wasteAccum{}
							waste[p] = wa
						}
						wa.wasted += rep.WastedSpec.Time
						wa.spec += rep.UsefulSpec.Time + rep.WastedSpec.Time
						wa.total += rep.UsefulPrimary.Time + rep.UsefulSpec.Time + rep.WastedSpec.Time
						wa.searches++
						if r == 0 || res.Elapsed < best.Elapsed {
							best = res
						}
					}
					res := best
					lockfree := mode.table == ertree.TableLockFree
					if p == 1 && !mode.sharded && lockfree {
						base = res.Elapsed.Nanoseconds()
					}
					if p == maxP {
						switch {
						case !mode.sharded && lockfree:
							globalAtMaxP = res.Elapsed.Nanoseconds()
						case mode.sharded:
							if res.Elapsed > 0 {
								ratioSum += float64(globalAtMaxP) / float64(res.Elapsed.Nanoseconds())
								ratioN++
							}
						default: // striped, global heap: the table head-to-head
							if globalAtMaxP > 0 {
								lfRatioSum += float64(res.Elapsed.Nanoseconds()) / float64(globalAtMaxP)
								lfRatioN++
							}
						}
					}
					pt := realSpeedupPoint{
						Workload:  w.Name,
						Backend:   "er",
						Table:     mode.table,
						Workers:   p,
						Sharded:   mode.sharded,
						ElapsedNS: res.Elapsed.Nanoseconds(),
						Value:     int(res.Value),
						Nodes:     res.Stats.Generated,
						Steals:    res.Steals,
						TTProbes:  res.TTProbes,
						TTHits:    res.TTHits,
						TTStores:  res.TTStores,
						TTCutoffs: res.TTCutoffs,
					}
					if res.Elapsed > 0 {
						pt.Speedup = float64(base) / float64(res.Elapsed.Nanoseconds())
					}
					if res.TTProbes > 0 {
						pt.TTHitRate = float64(res.TTHits) / float64(res.TTProbes)
					}
					if res.SerialTasks > 0 && res.TTProbes == 0 {
						b.Fatalf("%s P=%d: table attached but never probed", w.Name, p)
					}
					points = append(points, pt)
					lastSpeedup = pt.Speedup
				}
			}
			// Backend head-to-head on the same workload, same fresh-table
			// policy, same repetition discipline: the serial scout at P=1 and
			// Lazy-SMP across the ladder, with every point's Speedup on the
			// common T(1, er-global) denominator so the three curves read
			// side by side. The er curve is the non-sharded points above.
			erValue := points[len(points)-1].Value
			for _, bw := range backendSweepPoints() {
				res, elapsed := benchBackendSearch(b, bw.backend, bw.workers, w, tableBits, reps)
				if int(res.Value) != erValue {
					b.Fatalf("%s backend %s P=%d: value %d, er found %d",
						w.Name, bw.backend, bw.workers, res.Value, erValue)
				}
				pt := realSpeedupPoint{
					Workload:  w.Name,
					Backend:   bw.backend,
					Table:     ertree.TableLockFree,
					Workers:   bw.workers,
					ElapsedNS: elapsed.Nanoseconds(),
					Value:     int(res.Value),
					Nodes:     res.Totals.Nodes,
					TTProbes:  res.Totals.TTProbes,
					TTHits:    res.Totals.TTHits,
					TTStores:  res.Totals.TTStores,
					TTCutoffs: res.Totals.TTCutoffs,
				}
				if elapsed > 0 {
					pt.Speedup = float64(base) / float64(elapsed.Nanoseconds())
				}
				if res.Totals.TTProbes > 0 {
					pt.TTHitRate = float64(res.Totals.TTHits) / float64(res.Totals.TTProbes)
				}
				if bw.backend == "lazysmp" && bw.workers == maxP && elapsed > 0 {
					lazyRatioSum += float64(globalAtMaxP) / float64(elapsed.Nanoseconds())
					lazyRatioN++
				}
				points = append(points, pt)
			}
			// Root-driver head-to-head at max P: full deepening sessions (the
			// unit the drivers actually steer) on the default er backend, one
			// fresh engine-owned table per repetition so every driver pays the
			// same cold-table cost and the mtdf probes only ever hit entries
			// the session itself stored. Drivers() is sorted, so aspiration —
			// the Speedup denominator and the reference side of
			// mtdf_vs_aspiration_at_max_p — always runs first.
			var aspAtMaxP int64
			for _, dName := range ertree.Drivers() {
				var bestAn *engine.Analysis
				var bestStats engine.Stats
				for r := 0; r < reps; r++ {
					eng := engine.New(engine.Config{
						Driver:      dName,
						Workers:     maxP,
						SerialDepth: w.SerialDepth,
						Order:       w.Order,
						TableBits:   tableBits,
						// The ertree CLI's default half-window, so the
						// aspiration baseline matches what -driver users see.
						Delta: 25,
					})
					an, err := eng.Analyze(context.Background(), w.Root, w.Depth)
					if err != nil {
						b.Fatalf("%s driver %s P=%d: %v", w.Name, dName, maxP, err)
					}
					if !an.Completed {
						b.Fatalf("%s driver %s P=%d: session cut short", w.Name, dName, maxP)
					}
					if r == 0 || an.Elapsed < bestAn.Elapsed {
						bestAn, bestStats = an, eng.Stats()
					}
				}
				if int(bestAn.Value) != erValue {
					b.Fatalf("%s driver %s P=%d: value %d, er found %d",
						w.Name, dName, maxP, bestAn.Value, erValue)
				}
				var probes, researches int64
				for _, it := range bestAn.Iterations {
					probes += int64(it.Probes)
					researches += int64(it.Researches)
				}
				pt := driverSweepPoint{
					Workload:   w.Name,
					Driver:     dName,
					Workers:    maxP,
					ElapsedNS:  bestAn.Elapsed.Nanoseconds(),
					Value:      int(bestAn.Value),
					Nodes:      bestAn.Nodes,
					Probes:     probes,
					Researches: researches,
					TTProbes:   bestStats.TTProbes,
					TTHits:     bestStats.TTHits,
				}
				if bestStats.TTProbes > 0 {
					pt.TTHitRate = float64(bestStats.TTHits) / float64(bestStats.TTProbes)
				}
				switch {
				case dName == engine.DefaultDriver:
					aspAtMaxP = bestAn.Elapsed.Nanoseconds()
					pt.Speedup = 1
				case bestAn.Elapsed > 0 && aspAtMaxP > 0:
					pt.Speedup = float64(aspAtMaxP) / float64(bestAn.Elapsed.Nanoseconds())
					if dName == "mtdf" {
						mtdfRatioSum += pt.Speedup
						mtdfRatioN++
					}
				}
				driverPoints = append(driverPoints, pt)
			}
		}
	}
	b.ReportMetric(lastSpeedup, "speedup@maxP")
	shardedVsGlobal := 0.0
	if ratioN > 0 {
		shardedVsGlobal = ratioSum / float64(ratioN)
	}
	b.ReportMetric(shardedVsGlobal, "sharded/global@maxP")
	lazyVsER := 0.0
	if lazyRatioN > 0 {
		lazyVsER = lazyRatioSum / float64(lazyRatioN)
	}
	b.ReportMetric(lazyVsER, "lazysmp/er@maxP")
	lockfreeVsStriped := 0.0
	if lfRatioN > 0 {
		lockfreeVsStriped = lfRatioSum / float64(lfRatioN)
	}
	b.ReportMetric(lockfreeVsStriped, "lockfree/striped@maxP")
	mtdfVsAspiration := 0.0
	if mtdfRatioN > 0 {
		mtdfVsAspiration = mtdfRatioSum / float64(mtdfRatioN)
	}
	b.ReportMetric(mtdfVsAspiration, "mtdf/aspiration@maxP")

	art := realSpeedupArtifact{
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		TableBits:         tableBits,
		ShardedVsGlobal:   shardedVsGlobal,
		LazySMPVsER:       lazyVsER,
		LockfreeVsStriped: lockfreeVsStriped,
		MTDFVsAspiration:  mtdfVsAspiration,
		Points:            points,
		DriverSweep:       driverPoints,
	}
	for _, p := range realSpeedupWorkers() {
		h := histFor(p)
		n := h.Count()
		if n == 0 {
			continue
		}
		art.TaskLatency = append(art.TaskLatency, taskLatencySummary{
			Workers: p,
			Tasks:   n,
			P50US:   h.Quantile(0.5) * 1e6,
			P95US:   h.Quantile(0.95) * 1e6,
			MeanUS:  h.Sum() / float64(n) * 1e6,
		})
	}
	for _, p := range realSpeedupWorkers() {
		wa, ok := waste[p]
		if !ok || wa.total == 0 {
			continue
		}
		art.SpecWaste = append(art.SpecWaste, specWasteSummary{
			Workers:     p,
			Searches:    wa.searches,
			SpecShare:   float64(wa.spec) / float64(wa.total),
			WastedRatio: float64(wa.wasted) / float64(wa.total),
		})
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	// BENCH_core.json is a snapshot each run overwrites; the history file
	// keeps every run's headline ratios so trends survive.
	if err := benchlog.Append("BENCH_history.jsonl", "bench-real", map[string]float64{
		"sharded_vs_global_at_max_p":   shardedVsGlobal,
		"lazysmp_vs_er_at_max_p":       lazyVsER,
		"lockfree_vs_striped_at_max_p": lockfreeVsStriped,
		"mtdf_vs_aspiration_at_max_p":  mtdfVsAspiration,
	}); err != nil {
		b.Fatal(err)
	}
}
