package ertree

import "ertree/internal/match"

// Playable is a position that also knows when the game is over; all games
// in this module (Othello, Connect Four, checkers, tic-tac-toe) implement
// it.
type Playable = match.Playable

// Engine chooses moves in engine-vs-engine play.
type Engine = match.Engine

// SearchEngine is an Engine that picks the child maximizing the negation of
// a supplied search function.
type SearchEngine = match.SearchEngine

// GameResult reports a finished (or aborted) game.
type GameResult = match.Result

// PlayGame alternates two engines from start until the game ends or
// maxPlies is reached; the first engine moves first.
func PlayGame(start Playable, first, second Engine, maxPlies int) GameResult {
	return match.Play(start, first, second, maxPlies)
}

// PlaySeries plays n games alternating which engine moves first and returns
// (aWins, bWins, draws). outcome maps a final position to +1 when the
// player to move at the end has won, -1 when they have lost, 0 for a draw.
func PlaySeries(start Playable, a, b Engine, games, maxPlies int, outcome func(final Playable) int) (aWins, bWins, draws int) {
	return match.Series(start, a, b, games, maxPlies, outcome)
}
