// Package ertree is a from-scratch reproduction of "Searching Game Trees in
// Parallel" (Igor Steinberg and Marvin Solomon, ICPP 1990): the ER parallel
// game-tree search algorithm, the serial algorithms it is measured against
// (negmax, alpha-beta with and without deep cutoffs, serial ER), the
// baseline parallel algorithms it is compared with (aspiration search,
// mandatory-work-first, tree-splitting, pv-splitting), and the workloads of
// the paper's evaluation (uniform random game trees and 7-ply Othello
// searches).
//
// # Quick start
//
// Define a game by implementing Position (or use a built-in game):
//
//	board := ertree.Othello()                   // initial Othello position
//	res, _ := ertree.Search(board, 6, ertree.Config{Workers: 8, SerialDepth: 4})
//	fmt.Println(res.Value)                      // exact negamax value, 6 plies
//
// Search runs parallel ER on goroutines. Simulate runs the identical
// algorithm on P virtual processors of a deterministic discrete-event
// simulator and additionally reports virtual time, starvation and lock
// contention — this is how the paper's speedup figures are regenerated on
// any host (see EXPERIMENTS.md).
//
// # The algorithm
//
// ER decomposes game-tree search into evaluating some nodes (e-nodes: exact
// value needed) and refuting others (r-nodes: a bound suffices). Before
// committing to which child of an e-node to evaluate, ER evaluates every
// child's first grandchild — the elder grandchildren — and uses those
// tentative values to pick the most promising child, order the refutations
// of the rest, and rank speculative work. The parallel implementation is a
// problem-heap algorithm: a primary queue of scheduled work (deepest first)
// and a speculative queue of e-nodes that can absorb idle processors by
// growing additional e-children (fewest e-children first, then shallowest).
package ertree
