package ertree

import (
	"ertree/internal/baseline/aspiration"
	"ertree/internal/baseline/mwf"
	"ertree/internal/baseline/rootsplit"
	"ertree/internal/baseline/treesplit"
)

// The baseline parallel algorithms the paper surveys (§4) and proposes
// comparing against (§8). All run on virtual time with the same cost models
// as Simulate, so their results are directly comparable with parallel ER's.

// AspirationOptions configures Baudet's parallel aspiration search (§4.1).
type AspirationOptions = aspiration.Options

// AspirationResult reports a parallel aspiration search.
type AspirationResult = aspiration.Result

// Aspiration runs parallel aspiration search: the window is divided among
// the workers and each searches the whole tree with its own slice.
func Aspiration(pos Position, depth int, opt AspirationOptions, cost CostModel) AspirationResult {
	return aspiration.Search(pos, depth, opt, cost)
}

// MWFOptions configures mandatory-work-first (§4.2).
type MWFOptions = mwf.Options

// MWFResult reports an MWF run.
type MWFResult = mwf.Result

// MWF runs the Mandatory Work First algorithm of Akl, Barnard and Doran on
// P virtual processors.
func MWF(pos Position, depth int, opt MWFOptions, cost CostModel) MWFResult {
	return mwf.Search(pos, depth, opt, cost)
}

// TreeSplitOptions configures tree-splitting and pv-splitting (§4.3-4.4):
// a processor tree of the given height and fanout.
type TreeSplitOptions = treesplit.Options

// TreeSplitResult reports a tree-splitting or pv-splitting run.
type TreeSplitResult = treesplit.Result

// TreeSplit runs Fishburn's tree-splitting algorithm.
func TreeSplit(pos Position, depth int, opt TreeSplitOptions, cost CostModel) TreeSplitResult {
	return treesplit.Search(pos, depth, opt, cost)
}

// PVSplit runs Marsland's principal-variation splitting.
func PVSplit(pos Position, depth int, opt TreeSplitOptions, cost CostModel) TreeSplitResult {
	return treesplit.PVSplit(pos, depth, opt, cost)
}

// PVSplitMW runs the Marsland-Popowich pv-splitting variant of the paper's
// footnote 3: rightmost children along the principal variation are verified
// with parallel minimal-window searches.
func PVSplitMW(pos Position, depth int, opt TreeSplitOptions, cost CostModel) TreeSplitResult {
	return treesplit.PVSplitMW(pos, depth, opt, cost)
}

// RootSplitOptions configures the naive root-partitioning baseline from the
// paper's introduction.
type RootSplitOptions = rootsplit.Options

// RootSplitResult reports a root-splitting run.
type RootSplitResult = rootsplit.Result

// RootSplit deals the root's subtrees round-robin to independent serial
// alpha-beta workers with private windows — the strawman the paper's
// introduction dismisses for its low efficiency (experiment E0).
func RootSplit(pos Position, depth int, opt RootSplitOptions, cost CostModel) RootSplitResult {
	return rootsplit.Search(pos, depth, opt, cost)
}
