package ertree_test

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchArtifactBackendCurves guards the committed BENCH_core.json: the
// head-to-head benchmark must have produced a curve for every registered
// backend, and enough host metadata to interpret the numbers on different
// hardware. CI's bench smoke regenerates the artifact first, so a sweep that
// silently drops a backend fails here rather than in a human's spreadsheet.
func TestBenchArtifactBackendCurves(t *testing.T) {
	raw, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var art struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		LazyVsER   float64 `json:"lazysmp_vs_er_at_max_p"`
		Points     []struct {
			Backend string `json:"backend"`
			Workers int    `json:"workers"`
			Value   int    `json:"value"`
			Nodes   int64  `json:"nodes"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}

	if art.GoVersion == "" || art.GOOS == "" || art.GOARCH == "" {
		t.Fatalf("artifact missing toolchain metadata: %+v", art)
	}
	if art.NumCPU < 1 || art.GOMAXPROCS < 1 {
		t.Fatalf("artifact missing host metadata: num_cpu=%d gomaxprocs=%d", art.NumCPU, art.GOMAXPROCS)
	}
	if art.LazyVsER <= 0 {
		t.Fatalf("artifact missing lazysmp_vs_er_at_max_p ratio: %v", art.LazyVsER)
	}

	perBackend := map[string]int{}
	for _, p := range art.Points {
		perBackend[p.Backend]++
		if p.Nodes <= 0 {
			t.Fatalf("point with no node count: %+v", p)
		}
	}
	for _, be := range []string{"er", "serial", "lazysmp"} {
		if perBackend[be] == 0 {
			t.Fatalf("artifact has no %q curve (points per backend: %v)", be, perBackend)
		}
	}
}
