package ertree_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"ertree"
)

// TestBenchArtifactBackendCurves guards the committed BENCH_core.json: the
// head-to-head benchmark must have produced a curve for every registered
// backend and both shared-table implementations, plus enough host metadata to
// interpret the numbers on different hardware. CI's bench smoke regenerates
// the artifact first, so a sweep that silently drops a backend or a table
// implementation fails here rather than in a human's spreadsheet.
func TestBenchArtifactBackendCurves(t *testing.T) {
	raw, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var art struct {
		GoVersion  string  `json:"go_version"`
		GOOS       string  `json:"goos"`
		GOARCH     string  `json:"goarch"`
		NumCPU     int     `json:"num_cpu"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		LazyVsER   float64 `json:"lazysmp_vs_er_at_max_p"`
		LFvsStripe float64 `json:"lockfree_vs_striped_at_max_p"`
		MTDFvsAsp  float64 `json:"mtdf_vs_aspiration_at_max_p"`
		Points     []struct {
			Backend string `json:"backend"`
			Table   string `json:"table"`
			Workers int    `json:"workers"`
			Value   int    `json:"value"`
			Nodes   int64  `json:"nodes"`
		} `json:"points"`
		DriverSweep []struct {
			Workload   string `json:"workload"`
			Driver     string `json:"driver"`
			Workers    int    `json:"workers"`
			Value      int    `json:"value"`
			Nodes      int64  `json:"nodes"`
			Probes     int64  `json:"probes"`
			Researches int64  `json:"researches"`
		} `json:"driver_sweep"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}

	if art.GoVersion == "" || art.GOOS == "" || art.GOARCH == "" {
		t.Fatalf("artifact missing toolchain metadata: %+v", art)
	}
	if art.NumCPU < 1 || art.GOMAXPROCS < 1 {
		t.Fatalf("artifact missing host metadata: num_cpu=%d gomaxprocs=%d", art.NumCPU, art.GOMAXPROCS)
	}
	if art.LazyVsER <= 0 {
		t.Fatalf("artifact missing lazysmp_vs_er_at_max_p ratio: %v", art.LazyVsER)
	}
	if art.LFvsStripe <= 0 {
		t.Fatalf("artifact missing lockfree_vs_striped_at_max_p ratio: %v", art.LFvsStripe)
	}
	if art.MTDFvsAsp <= 0 {
		t.Fatalf("artifact missing mtdf_vs_aspiration_at_max_p ratio: %v", art.MTDFvsAsp)
	}
	warnSingleCPUArtifact(t, art.NumCPU, fmt.Sprintf(
		"parallel speedups and the lockfree-vs-striped (%.2f) and "+
			"mtdf-vs-aspiration (%.2f) ratios", art.LFvsStripe, art.MTDFvsAsp))

	perBackend := map[string]int{}
	erPerTable := map[string]int{}
	for _, p := range art.Points {
		perBackend[p.Backend]++
		if p.Backend == "er" {
			erPerTable[p.Table]++
		}
		if p.Nodes <= 0 {
			t.Fatalf("point with no node count: %+v", p)
		}
		if p.Table == "" {
			t.Fatalf("point missing table implementation: %+v", p)
		}
	}
	for _, be := range []string{"er", "serial", "lazysmp"} {
		if perBackend[be] == 0 {
			t.Fatalf("artifact has no %q curve (points per backend: %v)", be, perBackend)
		}
	}
	// The er sweep runs both table implementations head to head; losing
	// either curve silently voids the lockfree-vs-striped ratio.
	for _, impl := range []string{"lockfree", "striped"} {
		if erPerTable[impl] == 0 {
			t.Fatalf("artifact has no er curve for table=%q (er points per table: %v)", impl, erPerTable)
		}
	}

	// The driver sweep must carry every registered root driver, each point
	// with the probe/re-search split that distinguishes the drivers —
	// aspiration never spends null-window probes, mtdf and bns always do —
	// and all drivers on one workload must have found the same exact value
	// (they resolve the same fixed-depth trees).
	perDriver := map[string]int{}
	valueByWorkload := map[string]map[string]int{}
	for _, p := range art.DriverSweep {
		perDriver[p.Driver]++
		if p.Workload == "" || p.Workers < 1 {
			t.Fatalf("driver point missing identity: %+v", p)
		}
		if p.Nodes <= 0 {
			t.Fatalf("driver point with no node count: %+v", p)
		}
		if p.Driver == "aspiration" {
			if p.Probes != 0 {
				t.Fatalf("aspiration point reports null-window probes: %+v", p)
			}
		} else if p.Probes <= 0 {
			t.Fatalf("%s point reports no null-window probes: %+v", p.Driver, p)
		}
		if valueByWorkload[p.Workload] == nil {
			valueByWorkload[p.Workload] = map[string]int{}
		}
		valueByWorkload[p.Workload][p.Driver] = p.Value
	}
	for _, d := range ertree.Drivers() {
		if perDriver[d] == 0 {
			t.Fatalf("artifact has no %q driver curve (points per driver: %v)", d, perDriver)
		}
	}
	for wl, vals := range valueByWorkload {
		want, ok := vals["aspiration"]
		if !ok {
			t.Fatalf("workload %q has no aspiration reference point", wl)
		}
		for d, v := range vals {
			if v != want {
				t.Fatalf("workload %q: driver %q found %d, aspiration found %d", wl, d, v, want)
			}
		}
	}
}
