package ertree_test

import (
	"encoding/json"
	"os"
	"testing"
)

// TestBenchArtifactBackendCurves guards the committed BENCH_core.json: the
// head-to-head benchmark must have produced a curve for every registered
// backend and both shared-table implementations, plus enough host metadata to
// interpret the numbers on different hardware. CI's bench smoke regenerates
// the artifact first, so a sweep that silently drops a backend or a table
// implementation fails here rather than in a human's spreadsheet.
func TestBenchArtifactBackendCurves(t *testing.T) {
	raw, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var art struct {
		GoVersion  string  `json:"go_version"`
		GOOS       string  `json:"goos"`
		GOARCH     string  `json:"goarch"`
		NumCPU     int     `json:"num_cpu"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		LazyVsER   float64 `json:"lazysmp_vs_er_at_max_p"`
		LFvsStripe float64 `json:"lockfree_vs_striped_at_max_p"`
		Points     []struct {
			Backend string `json:"backend"`
			Table   string `json:"table"`
			Workers int    `json:"workers"`
			Value   int    `json:"value"`
			Nodes   int64  `json:"nodes"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}

	if art.GoVersion == "" || art.GOOS == "" || art.GOARCH == "" {
		t.Fatalf("artifact missing toolchain metadata: %+v", art)
	}
	if art.NumCPU < 1 || art.GOMAXPROCS < 1 {
		t.Fatalf("artifact missing host metadata: num_cpu=%d gomaxprocs=%d", art.NumCPU, art.GOMAXPROCS)
	}
	if art.LazyVsER <= 0 {
		t.Fatalf("artifact missing lazysmp_vs_er_at_max_p ratio: %v", art.LazyVsER)
	}
	if art.LFvsStripe <= 0 {
		t.Fatalf("artifact missing lockfree_vs_striped_at_max_p ratio: %v", art.LFvsStripe)
	}
	if art.NumCPU == 1 {
		t.Logf("warning: artifact was produced on a 1-CPU host; parallel speedups "+
			"and the lockfree-vs-striped ratio (%.2f) measure scheduling overhead, "+
			"not contention relief — regenerate on a multi-core machine before "+
			"quoting them", art.LFvsStripe)
	}

	perBackend := map[string]int{}
	erPerTable := map[string]int{}
	for _, p := range art.Points {
		perBackend[p.Backend]++
		if p.Backend == "er" {
			erPerTable[p.Table]++
		}
		if p.Nodes <= 0 {
			t.Fatalf("point with no node count: %+v", p)
		}
		if p.Table == "" {
			t.Fatalf("point missing table implementation: %+v", p)
		}
	}
	for _, be := range []string{"er", "serial", "lazysmp"} {
		if perBackend[be] == 0 {
			t.Fatalf("artifact has no %q curve (points per backend: %v)", be, perBackend)
		}
	}
	// The er sweep runs both table implementations head to head; losing
	// either curve silently voids the lockfree-vs-striped ratio.
	for _, impl := range []string{"lockfree", "striped"} {
		if erPerTable[impl] == 0 {
			t.Fatalf("artifact has no er curve for table=%q (er points per table: %v)", impl, erPerTable)
		}
	}
}
