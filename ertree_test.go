package ertree_test

import (
	"testing"

	"ertree"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// Tic-tac-toe is a draw (paper Figure 1).
	if v := ertree.Negmax(ertree.TicTacToe(), 9); v != 0 {
		t.Fatalf("tic-tac-toe value %d, want 0", v)
	}
	// All entry points agree on an Othello position.
	b := ertree.Othello()
	want := ertree.Negmax(b, 4)
	if v := ertree.AlphaBeta(b, 4); v != want {
		t.Fatalf("AlphaBeta %d, want %d", v, want)
	}
	if v := ertree.SerialER(b, 4); v != want {
		t.Fatalf("SerialER %d, want %d", v, want)
	}
	res := mustSearch(t, b, 4, ertree.Config{Workers: 4, SerialDepth: 2})
	if res.Value != want {
		t.Fatalf("Search %d, want %d", res.Value, want)
	}
	sim := mustSimulate(t, b, 4, ertree.Config{Workers: 4, SerialDepth: 2}, ertree.DefaultCostModel())
	if sim.Value != want {
		t.Fatalf("Simulate %d, want %d", sim.Value, want)
	}
	if sim.VirtualTime <= 0 {
		t.Fatal("Simulate reported no virtual time")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	for _, tr := range []*ertree.RandomTree{ertree.R1(), ertree.R2(), ertree.R3()} {
		if tr.Degree < 4 || tr.Depth < 7 {
			t.Fatalf("workload %v implausible", tr)
		}
	}
	tr := ertree.NewRandomTree(1, 3, 5)
	want := ertree.Negmax(tr.Root(), 5)
	res := mustSimulate(t, tr.Root(), 5, ertree.Config{Workers: 8, SerialDepth: 2}, ertree.DefaultCostModel())
	if res.Value != want {
		t.Fatalf("random tree: %d want %d", res.Value, want)
	}
	st := ertree.NewStrongTree(2, 4, 5)
	if v1, v2 := ertree.Negmax(st.Root(), 5), ertree.SerialER(st.Root(), 5); v1 != v2 {
		t.Fatalf("strong tree disagreement: %d vs %d", v1, v2)
	}
}

func TestPublicAPIOthelloRoots(t *testing.T) {
	for _, name := range []string{"O1", "O2", "O3"} {
		b, err := ertree.OthelloRoot(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.BlackToMove() {
			t.Fatalf("%s: want White to move", name)
		}
	}
	if _, err := ertree.OthelloRoot("bogus"); err == nil {
		t.Fatal("bogus root accepted")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	tr := ertree.NewRandomTree(7, 3, 5)
	cost := ertree.DefaultCostModel()
	want := ertree.Negmax(tr.Root(), 5)
	if r := ertree.Aspiration(tr.Root(), 5, ertree.AspirationOptions{Workers: 4, Bound: 11000}, cost); r.Value != want {
		t.Fatalf("aspiration %d want %d", r.Value, want)
	}
	if r := ertree.MWF(tr.Root(), 5, ertree.MWFOptions{Workers: 4, SerialDepth: 2}, cost); r.Value != want {
		t.Fatalf("mwf %d want %d", r.Value, want)
	}
	if r := ertree.TreeSplit(tr.Root(), 5, ertree.TreeSplitOptions{Height: 2, Fanout: 2}, cost); r.Value != want {
		t.Fatalf("treesplit %d want %d", r.Value, want)
	}
	if r := ertree.PVSplit(tr.Root(), 5, ertree.TreeSplitOptions{Height: 2, Fanout: 2}, cost); r.Value != want {
		t.Fatalf("pvsplit %d want %d", r.Value, want)
	}
}

func TestConfigTogglesMapThrough(t *testing.T) {
	tr := ertree.NewRandomTree(9, 4, 5)
	want := ertree.Negmax(tr.Root(), 5)
	cfg := ertree.Config{
		Workers:                   8,
		SerialDepth:               2,
		DisableParallelRefutation: true,
		DisableMultipleENodes:     true,
		DisableEarlyChoice:        true,
	}
	res := mustSimulate(t, tr.Root(), 5, cfg, ertree.DefaultCostModel())
	if res.Value != want {
		t.Fatalf("no-speculation config: %d want %d", res.Value, want)
	}
	if res.SpecPops != 0 {
		t.Fatalf("speculative queue used despite being disabled")
	}
}

func TestStatsPlumbing(t *testing.T) {
	var st ertree.Stats
	tr := ertree.NewRandomTree(4, 3, 4)
	mustSearch(t, tr.Root(), 4, ertree.Config{Workers: 2, Stats: &st})
	snap := st.Snapshot()
	if snap.Generated == 0 || snap.Evaluated == 0 {
		t.Fatalf("stats not accumulated: %+v", snap)
	}
}
