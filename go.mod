module ertree

go 1.22
