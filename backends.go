package ertree

import (
	"ertree/internal/backend"
	"ertree/internal/game"

	// Register the lazysmp backend so facade callers can select it by name.
	_ "ertree/internal/lazysmp"
)

// Backends returns the registered search-backend names, sorted: "er" (the
// paper's parallel scheduler), "serial" (single-threaded scout/PVS), and
// "lazysmp" (shared-table deepening workers), plus any backend a caller
// registered itself.
func Backends() []string { return backend.Names() }

// ValidBackend reports whether name is a registered search backend; servers
// and CLIs use it to reject unknown names with a message from Backends()
// instead of silently falling back.
func ValidBackend(name string) bool { return backend.Valid(name) }

// BackendResult is the outcome of one backend search: fail-soft value, the
// root child index proving it, per-child scores, and work totals. See
// internal/backend.Response.
type BackendResult = backend.Response

// SearchWith runs one fixed-depth, full-window search of pos on the named
// backend ("er", "serial", "lazysmp"), configured from cfg the same way
// Search configures parallel ER (workers, serial depth, ordering, shared
// table, speculation toggles). It is the head-to-head entry point: same
// position, same table policy, different scheduler.
func SearchWith(name string, pos Position, depth int, cfg Config) (BackendResult, error) {
	be, err := backend.New(name, backend.Config{
		Workers:            cfg.Workers,
		SerialDepth:        cfg.SerialDepth,
		Order:              cfg.Order,
		Table:              cfg.Table,
		ParallelRefutation: !cfg.DisableParallelRefutation,
		MultipleENodes:     !cfg.DisableMultipleENodes,
		EarlyChoice:        !cfg.DisableEarlyChoice,
		SpecRank:           cfg.SpecRank,
		EagerSpec:          cfg.EagerSpec,
		Sharded:            cfg.Sharded,
		StealSeed:          cfg.StealSeed,
		ProfileLabels:      cfg.ProfileLabels,
	})
	if err != nil {
		return BackendResult{}, err
	}
	w := game.FullWindow()
	if cfg.RootWindow != nil {
		w = *cfg.RootWindow
	}
	return be.Search(backend.Request{
		Pos:    pos,
		Depth:  depth,
		Window: w,
		Hooks:  cfg.Hooks,
	})
}
