package metrics

import (
	"strings"
	"testing"
)

func TestTimelineRendering(t *testing.T) {
	workers := [][]Span{
		{{Start: 0, End: 50}, {Start: 50, End: 100}}, // fully busy
		{{Start: 0, End: 25}},                        // quarter busy
		nil,                                          // idle
	}
	out := Timeline("test", workers, 100, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("fully busy row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[1], "100.0%") {
		t.Errorf("utilization missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####...........") && !strings.Contains(lines[2], "25.0%") {
		t.Errorf("quarter row wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], strings.Repeat(".", 20)) {
		t.Errorf("idle row wrong: %q", lines[3])
	}
	// Degenerate inputs.
	if out := Timeline("x", nil, 0, 10); !strings.Contains(out, "makespan 0") {
		t.Errorf("zero makespan mishandled")
	}
	if out := Timeline("x", workers, 100, 0); out == "" {
		t.Errorf("width clamp failed")
	}
}
