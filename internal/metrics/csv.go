package metrics

import (
	"fmt"
	"strings"
)

// CSV renders series as comma-separated values with one row per processor
// count: workers, then one column per series carrying the requested Point
// field ("efficiency", "speedup", "time" or "nodes"). Missing points render
// as empty cells. Useful for piping figure data into plotting tools.
func CSV(column string, series []Series) string {
	var b strings.Builder
	b.WriteString("workers")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteByte('\n')
	seen := map[int]bool{}
	var workers []int
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Workers] {
				seen[p.Workers] = true
				workers = append(workers, p.Workers)
			}
		}
	}
	for i := 1; i < len(workers); i++ {
		j := i
		for j > 0 && workers[j] < workers[j-1] {
			workers[j], workers[j-1] = workers[j-1], workers[j]
			j--
		}
	}
	for _, w := range workers {
		fmt.Fprintf(&b, "%d", w)
		for _, s := range series {
			b.WriteByte(',')
			p, ok := find(s, w)
			if !ok {
				continue
			}
			switch column {
			case "efficiency":
				fmt.Fprintf(&b, "%.4f", p.Efficiency)
			case "speedup":
				fmt.Fprintf(&b, "%.4f", p.Speedup)
			case "time":
				fmt.Fprintf(&b, "%d", p.Time)
			case "nodes":
				fmt.Fprintf(&b, "%d", p.Nodes)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
