// Package metrics implements the performance bookkeeping of §3: Fishburn's
// speedup (time of the best serial algorithm over time of the parallel
// algorithm) and efficiency (speedup per processor), plus small formatting
// helpers for the experiment tables.
package metrics

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Speedup is best-serial time divided by parallel time.
func Speedup(bestSerial, parallel int64) float64 {
	if parallel <= 0 {
		return 0
	}
	return float64(bestSerial) / float64(parallel)
}

// Efficiency is speedup divided by the processor count.
func Efficiency(bestSerial, parallel int64, workers int) float64 {
	if workers <= 0 {
		return 0
	}
	return Speedup(bestSerial, parallel) / float64(workers)
}

// Point is one measurement in a figure: a processor count and the values
// plotted there.
type Point struct {
	Workers    int
	Speedup    float64
	Efficiency float64
	Time       int64
	Nodes      int64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Table renders series as a fixed-width text table with one row per
// processor count and one column group per series, in the spirit of the
// paper's figures. The chosen column selects which Point field is shown:
// "efficiency", "speedup", "time" or "nodes".
func Table(title, column string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	// Collect the union of worker counts in order.
	seen := map[int]bool{}
	var workers []int
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Workers] {
				seen[p.Workers] = true
				workers = append(workers, p.Workers)
			}
		}
	}
	for i := 1; i < len(workers); i++ {
		j := i
		for j > 0 && workers[j] < workers[j-1] {
			workers[j], workers[j-1] = workers[j-1], workers[j]
			j--
		}
	}
	fmt.Fprintf(&b, "%6s", "P")
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", truncate(s.Name, 12))
	}
	b.WriteByte('\n')
	for _, w := range workers {
		fmt.Fprintf(&b, "%6d", w)
		for _, s := range series {
			p, ok := find(s, w)
			if !ok {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			switch column {
			case "efficiency":
				fmt.Fprintf(&b, " %12.3f", p.Efficiency)
			case "speedup":
				fmt.Fprintf(&b, " %12.2f", p.Speedup)
			case "time":
				fmt.Fprintf(&b, " %12d", p.Time)
			case "nodes":
				fmt.Fprintf(&b, " %12d", p.Nodes)
			default:
				fmt.Fprintf(&b, " %12s", "?")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func find(s Series, workers int) (Point, bool) {
	for _, p := range s.Points {
		if p.Workers == workers {
			return p, true
		}
	}
	return Point{}, false
}

// truncate shortens s to at most n bytes without slicing through a UTF-8
// sequence: the cut backs up to the nearest rune boundary, so a multi-byte
// series name never turns into mojibake in the table header.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n]
}
