package metrics

import (
	"strings"
	"testing"
)

func TestCSV(t *testing.T) {
	series := []Series{
		{Name: "a,b", Points: []Point{
			{Workers: 1, Efficiency: 0.5, Speedup: 0.5, Time: 10, Nodes: 3},
			{Workers: 4, Efficiency: 0.25, Speedup: 1, Time: 5, Nodes: 6},
		}},
		{Name: "x", Points: []Point{{Workers: 4, Time: 7}}},
	}
	out := CSV("time", series)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	if lines[0] != "workers,a;b,x" {
		t.Fatalf("header %q (commas in names must be escaped)", lines[0])
	}
	if lines[1] != "1,10," {
		t.Fatalf("row1 %q", lines[1])
	}
	if lines[2] != "4,5,7" {
		t.Fatalf("row2 %q", lines[2])
	}
	if !strings.Contains(CSV("efficiency", series), "0.5000") {
		t.Fatal("efficiency column missing")
	}
	if !strings.Contains(CSV("speedup", series), "1.0000") {
		t.Fatal("speedup column missing")
	}
	if !strings.Contains(CSV("nodes", series), "6") {
		t.Fatal("nodes column missing")
	}
}
