package metrics

import (
	"strings"
	"testing"
)

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(100, 25) != 4.0 {
		t.Fatal("speedup")
	}
	if Efficiency(100, 25, 8) != 0.5 {
		t.Fatal("efficiency")
	}
	if Speedup(100, 0) != 0 || Efficiency(100, 10, 0) != 0 {
		t.Fatal("degenerate inputs must not divide by zero")
	}
}

func TestTableRendering(t *testing.T) {
	s := []Series{
		{Name: "R1", Points: []Point{
			{Workers: 1, Efficiency: 0.9, Speedup: 0.9, Time: 100, Nodes: 50},
			{Workers: 4, Efficiency: 0.5, Speedup: 2.0, Time: 50, Nodes: 80},
		}},
		{Name: "averyverylongname", Points: []Point{
			{Workers: 4, Efficiency: 0.25, Speedup: 1.0, Time: 100, Nodes: 90},
		}},
	}
	out := Table("Figure X", "efficiency", s)
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "0.900") || !strings.Contains(out, "0.250") {
		t.Fatalf("missing efficiency values:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent point:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, P=1, P=4
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	for _, col := range []string{"speedup", "time", "nodes"} {
		if out := Table("t", col, s); out == "" {
			t.Fatalf("column %s empty", col)
		}
	}
	if !strings.Contains(Table("t", "nodes", s), "50") {
		t.Fatal("nodes column missing value")
	}
}

func TestTableSortsWorkers(t *testing.T) {
	s := []Series{{Name: "x", Points: []Point{
		{Workers: 16}, {Workers: 1}, {Workers: 4},
	}}}
	out := Table("t", "time", s)
	i1 := strings.Index(out, "\n     1")
	i4 := strings.Index(out, "\n     4")
	i16 := strings.Index(out, "\n    16")
	if !(i1 < i4 && i4 < i16) {
		t.Fatalf("worker rows not ascending:\n%s", out)
	}
}
