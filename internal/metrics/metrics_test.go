package metrics

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(100, 25) != 4.0 {
		t.Fatal("speedup")
	}
	if Efficiency(100, 25, 8) != 0.5 {
		t.Fatal("efficiency")
	}
	if Speedup(100, 0) != 0 || Efficiency(100, 10, 0) != 0 {
		t.Fatal("degenerate inputs must not divide by zero")
	}
}

func TestTableRendering(t *testing.T) {
	s := []Series{
		{Name: "R1", Points: []Point{
			{Workers: 1, Efficiency: 0.9, Speedup: 0.9, Time: 100, Nodes: 50},
			{Workers: 4, Efficiency: 0.5, Speedup: 2.0, Time: 50, Nodes: 80},
		}},
		{Name: "averyverylongname", Points: []Point{
			{Workers: 4, Efficiency: 0.25, Speedup: 1.0, Time: 100, Nodes: 90},
		}},
	}
	out := Table("Figure X", "efficiency", s)
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "0.900") || !strings.Contains(out, "0.250") {
		t.Fatalf("missing efficiency values:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent point:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, P=1, P=4
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	for _, col := range []string{"speedup", "time", "nodes"} {
		if out := Table("t", col, s); out == "" {
			t.Fatalf("column %s empty", col)
		}
	}
	if !strings.Contains(Table("t", "nodes", s), "50") {
		t.Fatal("nodes column missing value")
	}
}

func TestTableSortsWorkers(t *testing.T) {
	s := []Series{{Name: "x", Points: []Point{
		{Workers: 16}, {Workers: 1}, {Workers: 4},
	}}}
	out := Table("t", "time", s)
	i1 := strings.Index(out, "\n     1")
	i4 := strings.Index(out, "\n     4")
	i16 := strings.Index(out, "\n    16")
	if !(i1 < i4 && i4 < i16) {
		t.Fatalf("worker rows not ascending:\n%s", out)
	}
}

// TestTruncateRuneBoundary: truncation must not slice through a multi-byte
// UTF-8 sequence (the old byte slicing produced invalid strings for non-ASCII
// series names).
func TestTruncateRuneBoundary(t *testing.T) {
	for _, tc := range []struct {
		in   string
		n    int
		want string
	}{
		{"ascii", 12, "ascii"},
		{"ascii-name-too-long", 12, "ascii-name-t"},
		{"αβγδεζηθικλμ", 7, "αβγ"},  // 2-byte runes: 7 backs up to 6
		{"er-par αβ", 8, "er-par "}, // cut would land mid-α
		{"日本語の名前", 8, "日本"},         // 3-byte runes: 8 backs up to 6
		{"", 4, ""},
		{"αβ", 1, ""}, // no room for even one rune
	} {
		got := truncate(tc.in, tc.n)
		if got != tc.want {
			t.Errorf("truncate(%q, %d) = %q, want %q", tc.in, tc.n, got, tc.want)
		}
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%q, %d) = %q: invalid UTF-8", tc.in, tc.n, got)
		}
		if len(got) > tc.n {
			t.Errorf("truncate(%q, %d) = %q: %d bytes", tc.in, tc.n, got, len(got))
		}
	}
}
