// Timeline rendering for worker-utilization traces.

package metrics

import (
	"fmt"
	"strings"
)

// Span is a busy interval of one worker in virtual time.
type Span struct {
	Start, End int64
}

// Timeline renders per-worker busy spans as a text Gantt chart: each worker
// is one row of `width` buckets covering [0, makespan); a bucket is '#' when
// the worker was busy for more than half of it, '+' when busy at all, and
// '.' when idle. The utilization percentage is appended per row.
func Timeline(title string, workers [][]Span, makespan int64, width int) string {
	if width < 1 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (makespan %d)\n", title, makespan)
	if makespan <= 0 {
		return b.String()
	}
	for w, spans := range workers {
		row := make([]int64, width) // busy time per bucket
		var busy int64
		for _, s := range spans {
			busy += s.End - s.Start
			for t := s.Start; t < s.End; {
				bucket := int(t * int64(width) / makespan)
				if bucket >= width {
					bucket = width - 1
				}
				bucketEnd := (int64(bucket+1)*makespan + int64(width) - 1) / int64(width)
				if bucketEnd > s.End {
					bucketEnd = s.End
				}
				row[bucket] += bucketEnd - t
				t = bucketEnd
			}
		}
		bucketSpan := makespan / int64(width)
		if bucketSpan == 0 {
			bucketSpan = 1
		}
		fmt.Fprintf(&b, "p%-3d ", w)
		for _, v := range row {
			switch {
			case v > bucketSpan/2:
				b.WriteByte('#')
			case v > 0:
				b.WriteByte('+')
			default:
				b.WriteByte('.')
			}
		}
		fmt.Fprintf(&b, " %5.1f%%\n", 100*float64(busy)/float64(makespan))
	}
	return b.String()
}
