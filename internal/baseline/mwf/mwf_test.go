package mwf

import (
	"math/rand"
	"testing"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

func TestExactValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	specs := []gtree.RandomSpec{
		{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 60},
		{MinDegree: 2, MaxDegree: 2, MinDepth: 5, MaxDepth: 6, ValueRange: 4},
	}
	for si, spec := range specs {
		for i := 0; i < 40; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			var s serial.Searcher
			want := s.Negmax(root, h)
			for _, workers := range []int{1, 2, 4, 10} {
				for _, sd := range []int{0, 2, h} {
					res := Search(root, h, Options{Workers: workers, SerialDepth: sd},
						core.DefaultCostModel())
					if res.Value != want {
						t.Fatalf("spec %d tree %d P=%d sd=%d: value %d, want %d\n%s",
							si, i, workers, sd, res.Value, want, root)
					}
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	tr := randtree.R3()
	opt := Options{Workers: 6, SerialDepth: 3}
	a := Search(tr.Root(), 5, opt, core.DefaultCostModel())
	b := Search(tr.Root(), 5, opt, core.DefaultCostModel())
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSpeedupPlateau(t *testing.T) {
	// Akl's observation: speedup rises for the first few processors then
	// plateaus near six; extra processors only starve.
	tr := &randtree.Tree{Seed: 8, Degree: 4, Depth: 8, ValueRange: 10000}
	cost := core.DefaultCostModel()
	t1 := Search(tr.Root(), 8, Options{Workers: 1, SerialDepth: 4}, cost).VirtualTime
	var sp10, sp20 float64
	for _, workers := range []int{2, 4, 6, 10, 20} {
		res := Search(tr.Root(), 8, Options{Workers: workers, SerialDepth: 4}, cost)
		sp := float64(t1) / float64(res.VirtualTime)
		t.Logf("P=%d: speedup %.2f (starve %d)", workers, sp, res.StarveTime)
		if workers == 10 {
			sp10 = sp
		}
		if workers == 20 {
			sp20 = sp
		}
	}
	if sp20 > sp10*1.3 {
		t.Errorf("MWF kept scaling past 10 processors (%.2f -> %.2f); expected a plateau",
			sp10, sp20)
	}
	if sp10 < 1.5 {
		t.Errorf("MWF achieved almost no speedup (%.2f at P=10)", sp10)
	}
}

func TestStarvationGrowsWithWorkers(t *testing.T) {
	tr := &randtree.Tree{Seed: 9, Degree: 4, Depth: 7, ValueRange: 10000}
	cost := core.DefaultCostModel()
	s4 := Search(tr.Root(), 7, Options{Workers: 4, SerialDepth: 4}, cost).StarveTime
	s16 := Search(tr.Root(), 7, Options{Workers: 16, SerialDepth: 4}, cost).StarveTime
	if s16 <= s4 {
		t.Errorf("starvation did not grow with processors: %d vs %d", s4, s16)
	}
}

func TestMandatoryFirstNodeCounts(t *testing.T) {
	// At P=1 with no refutations needed (best-first tree), MWF should
	// examine close to the minimal tree.
	rng := rand.New(rand.NewSource(10))
	root := gtree.Complete(3, 4, func(i int) game.Value { return game.Value(rng.Intn(2000) - 1000) })
	root.SortByNegmax()
	res := Search(root, 4, Options{Workers: 1, SerialDepth: 0}, core.DefaultCostModel())
	var s serial.Searcher
	if want := s.Negmax(root, 4); res.Value != want {
		t.Fatalf("value %d want %d", res.Value, want)
	}
	minimal := int64(gtree.MinimalLeafCount(3, 4))
	t.Logf("MWF nodes on best-first tree: %d (minimal leaves %d)", res.Nodes, minimal)
	if res.Nodes < minimal {
		t.Errorf("examined fewer nodes than the minimal tree has leaves")
	}
}
