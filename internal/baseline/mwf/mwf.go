// Package mwf implements the Mandatory Work First algorithm of Akl, Barnard
// and Doran (paper §4.2) on the deterministic simulator.
//
// MWF exploits the minimal tree of alpha-beta *without* deep cutoffs: in its
// first phase the whole minimal tree (all children of 1-nodes, plus the
// first child of every 2-node) is searched in parallel; in subsequent
// speculative phases the right children of 2-nodes are searched, each by
// *serial* alpha-beta, and a right child s_i may not start until the 2-node
// has a refutation bound (a sibling of the 2-node has finished) and all
// earlier siblings s_j, j<i, have finished. The phases of the paper's
// Figure 4 are not represented explicitly; they emerge from these gates.
package mwf

import (
	"fmt"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
	"ertree/internal/sim"
)

// Options configures an MWF search.
type Options struct {
	// Workers is the processor count.
	Workers int
	// SerialDepth is the remaining depth at or below which minimal-tree
	// nodes are searched serially as one task (the decomposition grain).
	// Right children of 2-nodes are always whole serial tasks, per Akl.
	SerialDepth int
	// Order is the move-ordering policy.
	Order game.Orderer
}

// Result reports an MWF run.
type Result struct {
	Value       game.Value
	Workers     int
	VirtualTime int64
	Nodes       int64 // nodes examined across all processors
	Tasks       int64 // serial subtree tasks executed
	StarveTime  int64
	LockTime    int64
}

type kind int8

const (
	type1 kind = iota // critical 1-node: all children searched in parallel
	type2             // critical 2-node: first child mandatory, rest gated
)

type node struct {
	pos    game.Position
	parent *node
	depth  int
	ply    int
	kind   kind

	// serialOnly forces the node to be searched as one serial alpha-beta
	// task regardless of depth (right children of 2-nodes).
	serialOnly bool

	value game.Value
	done  bool

	moves    []game.Position
	expanded bool
	kids     []*node
	kidsDone int
	launched int
}

func (n *node) alive() bool {
	for a := n; a != nil; a = a.parent {
		if a.done {
			return false
		}
	}
	return true
}

// beta returns the no-deep-cutoff bound: only the parent's running value
// restricts the search.
func (n *node) beta() game.Value {
	if n.parent == nil {
		return game.Inf
	}
	return -n.parent.value
}

type state struct {
	opt   Options
	cost  core.CostModel
	queue []*node
	root  *node
	done  bool
	nodes int64
	tasks int64
}

// Search runs MWF with P virtual processors; the result is deterministic.
// It panics on an internal deadlock (a bug).
func Search(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	s := &state{opt: opt, cost: cost}
	s.root = &node{pos: pos, depth: depth, kind: type1, value: -game.Inf}
	s.push(s.root)

	env := sim.NewEnv()
	res := env.NewResource("mwf")
	cond := env.NewCond(res)
	for i := 0; i < workers; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) { s.worker(p, res, cond) })
	}
	if err := env.Run(); err != nil {
		panic("mwf: " + err.Error())
	}
	if !s.root.done {
		panic("mwf: root unresolved")
	}
	out := Result{
		Value: s.root.value, Workers: workers,
		VirtualTime: env.Now(), Nodes: s.nodes, Tasks: s.tasks,
	}
	for _, p := range env.Procs() {
		out.StarveTime += p.StarveTime()
		out.LockTime += p.LockTime()
	}
	return out
}

// push appends to the work queue, deepest nodes first (stable).
func (s *state) push(n *node) {
	s.queue = append(s.queue, n)
	for i := len(s.queue) - 1; i > 0; i-- {
		if s.queue[i-1].ply >= s.queue[i].ply {
			break
		}
		s.queue[i-1], s.queue[i] = s.queue[i], s.queue[i-1]
	}
}

func (s *state) pop() *node {
	if len(s.queue) == 0 {
		return nil
	}
	n := s.queue[0]
	s.queue = s.queue[1:]
	return n
}

func (s *state) worker(p *sim.Proc, res *sim.Resource, cond *sim.Cond) {
	p.Acquire(res)
	defer p.Release(res)
	for {
		for !s.done && len(s.queue) == 0 {
			p.Wait(cond)
		}
		if s.done {
			return
		}
		n := s.pop()
		p.Advance(s.cost.HeapOp)
		if n == nil || !n.alive() {
			continue
		}
		if n.value >= n.beta() {
			n.done = true
			s.combine(n, p, cond)
			continue
		}
		if n.serialOnly || n.depth <= s.opt.SerialDepth {
			s.serialTask(n, p, res, cond)
			continue
		}
		s.expand(n, p, res, cond)
	}
}

// serialTask searches n's whole subtree with serial alpha-beta without deep
// cutoffs (MWF's reference algorithm) under a snapshot bound. Lock held on
// entry and exit; released around the search.
func (s *state) serialTask(n *node, p *sim.Proc, res *sim.Resource, cond *sim.Cond) {
	beta := n.beta()
	p.Release(res)
	var st game.Stats
	sr := serial.Searcher{Order: s.opt.Order, Stats: &st, BasePly: n.ply}
	v := sr.AlphaBetaNoDeep(n.pos, n.depth, beta)
	snap := st.Snapshot()
	p.Advance(s.cost.Of(snap))
	p.Acquire(res)
	s.nodes += snap.Generated + snap.Evaluated
	s.tasks++
	if !n.alive() {
		return
	}
	if v > n.value {
		n.value = v
	}
	n.done = true
	s.combine(n, p, cond)
}

// expand applies MWF's generation rules to an interior critical node.
// Lock held on entry and exit.
func (s *state) expand(n *node, p *sim.Proc, res *sim.Resource, cond *sim.Cond) {
	if !n.expanded {
		p.Release(res)
		moves := n.pos.Children()
		var sortEvals int64
		if len(moves) > 1 && s.opt.Order != nil {
			sortEvals = int64(s.opt.Order.Cost(len(moves), n.ply))
			moves = s.opt.Order.Order(moves, n.ply)
		}
		p.Advance(sortEvals * s.cost.Eval)
		p.Acquire(res)
		if !n.alive() {
			return
		}
		n.moves = moves
		n.expanded = true
	}
	if len(n.moves) == 0 { // terminal above the horizon
		p.Release(res)
		v := n.pos.Value()
		p.Advance(s.cost.Eval)
		p.Acquire(res)
		s.nodes++
		if !n.alive() {
			return
		}
		if v > n.value {
			n.value = v
		}
		n.done = true
		s.combine(n, p, cond)
		return
	}
	count := len(n.moves)
	if n.kind == type2 {
		count = 1 // only the first child (a 1-node) is mandatory
	}
	for i := 0; i < count; i++ {
		k := &node{pos: n.moves[i], parent: n, depth: n.depth - 1, ply: n.ply + 1,
			kind: type2, value: -game.Inf}
		if i == 0 {
			k.kind = type1
		}
		n.kids = append(n.kids, k)
		n.launched++
		s.nodes++
		p.Advance(s.cost.Node + s.cost.HeapOp)
		s.push(k)
	}
	p.Broadcast(cond)
}

// combine backs up a completed node's value, re-evaluates the gating of
// 2-nodes affected by the new bound, and completes ancestors. Lock held.
func (s *state) combine(n *node, p *sim.Proc, cond *sim.Cond) {
	cur := n
	for {
		p.Advance(s.cost.Combine)
		par := cur.parent
		if par == nil {
			s.done = true
			p.Broadcast(cond)
			return
		}
		if par.done {
			return
		}
		improved := false
		if -cur.value > par.value {
			par.value = -cur.value
			improved = true
		}
		par.kidsDone++

		// A better bound at par may refute or unlock its other 2-node
		// children.
		if improved {
			for _, k := range par.kids {
				if k != cur && !k.done && k.kind == type2 {
					s.tryAdvance(k, p, cond)
				}
			}
			if par.done {
				return // a recursive combine completed par already
			}
		}

		if par.value >= par.beta() {
			par.done = true
			cur = par
			continue
		}

		if par.kind == type1 {
			if par.expanded && par.kidsDone == len(par.moves) {
				par.done = true
				cur = par
				continue
			}
			return
		}
		// type2: launch the next gated right child, or complete.
		if par.kidsDone == par.launched {
			if par.launched == len(par.moves) {
				par.done = true // refutation failed; value final
				cur = par
				continue
			}
			s.launchRight(par, p, cond)
		}
		return
	}
}

// tryAdvance re-checks a 2-node after its parent's bound improved: it may
// now be refuted outright, or its next right child may have become
// launchable. Lock held.
func (s *state) tryAdvance(P *node, p *sim.Proc, cond *sim.Cond) {
	if P.done || !P.expanded {
		return
	}
	if P.value >= P.beta() {
		P.done = true
		s.combine(P, p, cond)
		return
	}
	if P.kidsDone == P.launched && P.launched < len(P.moves) {
		s.launchRight(P, p, cond)
	}
}

// launchRight starts the next right child of 2-node P as a serial task if
// the gate is open: a refutation bound exists and no sibling is running.
// Lock held.
func (s *state) launchRight(P *node, p *sim.Proc, cond *sim.Cond) {
	if P.parent != nil && P.parent.value <= -game.Inf {
		return // no bound to refute against yet (still phase 1 here)
	}
	k := &node{pos: P.moves[P.launched], parent: P, depth: P.depth - 1,
		ply: P.ply + 1, kind: type2, serialOnly: true, value: -game.Inf}
	P.kids = append(P.kids, k)
	P.launched++
	s.nodes++
	p.Advance(s.cost.Node + s.cost.HeapOp)
	s.push(k)
	p.Broadcast(cond)
}
