// Package treesplit implements Fishburn's tree-splitting algorithm (paper
// §4.3) and Marsland's principal-variation splitting refinement (§4.4) on
// virtual time.
//
// Tree-splitting maps a tree of processors onto the game tree: a master
// generates the children of its subtree root and assigns each to a slave
// (queuing extras until a slave frees up); leaf processors run serial
// alpha-beta; on each slave completion the master narrows the window for the
// slaves still to be assigned and aborts outstanding work when a cutoff
// occurs.
//
// Because slaves only interact through their master, the schedule is a
// deterministic recursion: each master tracks its slaves' virtual free
// times, assigns children in move order with the window current at
// assignment time, and processes completions in time order. No event
// simulator is needed; the recursion *is* the event schedule.
package treesplit

import (
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
)

// Options configures a tree-splitting or pv-splitting search.
type Options struct {
	// Height is the processor-tree height; Fanout is its branching factor.
	// The slave (leaf-processor) count is Fanout^Height.
	Height, Fanout int
	// Order is the move-ordering policy.
	Order game.Orderer
}

// Processors returns the number of leaf processors the options describe —
// the processors that perform searches. (Fishburn's interior masters mostly
// coordinate; following his analysis they are not counted as search
// processors.)
func (o Options) Processors() int {
	p := 1
	f := o.Fanout
	if f < 1 {
		f = 2
	}
	for i := 0; i < o.Height; i++ {
		p *= f
	}
	return p
}

// Result reports a search outcome in virtual time.
type Result struct {
	Value game.Value
	// Time is the virtual completion time of the root master.
	Time int64
	// Nodes is the total work performed across all processors, in nodes;
	// slaves aborted by a master cutoff are charged pro rata for the time
	// they actually ran.
	Nodes int64
	// Aborts counts slave searches cancelled by a master cutoff.
	Aborts int64
}

type searcher struct {
	opt    Options
	cost   core.CostModel
	aborts int64
}

// Search runs Fishburn's tree-splitting algorithm.
func Search(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	if opt.Fanout < 1 {
		opt.Fanout = 2
	}
	s := &searcher{opt: opt, cost: cost}
	v, t, n := s.split(pos, depth, 0, game.FullWindow(), opt.Height)
	return Result{Value: v, Time: t, Nodes: int64(n), Aborts: s.aborts}
}

// PVSplit runs Marsland's pv-splitting: follow the leftmost branch until the
// remaining depth equals the processor-tree height, determine that child's
// value with tree-splitting, then run tree-splitting on the remaining
// siblings with the improved bound, backing values up to the root.
func PVSplit(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	if opt.Fanout < 1 {
		opt.Fanout = 2
	}
	s := &searcher{opt: opt, cost: cost}
	v, t, n := s.pvSplit(pos, depth, 0, game.FullWindow())
	return Result{Value: v, Time: t, Nodes: int64(n), Aborts: s.aborts}
}

// serialLeaf runs serial alpha-beta on a leaf processor, returning value,
// virtual duration, and nodes examined.
func (s *searcher) serialLeaf(pos game.Position, depth, ply int, w game.Window) (game.Value, int64, float64) {
	var st game.Stats
	sr := serial.Searcher{Order: s.opt.Order, Stats: &st, BasePly: ply}
	v := sr.AlphaBeta(pos, depth, w)
	snap := st.Snapshot()
	return v, s.cost.Of(snap), float64(snap.Generated + snap.Evaluated)
}

// expand generates and orders children, returning the master's setup time.
func (s *searcher) expand(pos game.Position, ply int) ([]game.Position, int64) {
	kids := pos.Children()
	var t int64
	if len(kids) > 1 && s.opt.Order != nil {
		t = int64(s.opt.Order.Cost(len(kids), ply)) * s.cost.Eval
		kids = s.opt.Order.Order(kids, ply)
	}
	t += int64(len(kids)) * s.cost.Node
	return kids, t
}

// job is one slave assignment.
type job struct {
	value    game.Value
	start    int64
	dur      int64
	nodes    float64
	absorbed bool
}

func (j *job) done() int64 { return j.start + j.dur }

// split is the master procedure at a processor-tree node of the given
// height. Returns (value, completion time relative to the master's start,
// nodes performed in the subtree, pro-rated for aborts).
func (s *searcher) split(pos game.Position, depth, ply int, w game.Window, height int) (game.Value, int64, float64) {
	if height == 0 || depth == 0 {
		return s.serialLeaf(pos, depth, ply, w)
	}
	kids, setup := s.expand(pos, ply)
	if len(kids) == 0 {
		v, t, n := s.serialLeaf(pos, 0, ply, w)
		return v, setup + t, n
	}

	m := -game.Inf
	nodes := float64(len(kids))
	free := make([]int64, s.opt.Fanout)
	for i := range free {
		free[i] = setup
	}
	var jobs []*job
	next := 0
	finish := setup

	// absorb folds in completions up to time t in completion order;
	// returns (cutoff?, cutoff-or-latest time).
	absorb := func(t int64) (bool, int64) {
		for {
			var soonest *job
			for _, j := range jobs {
				if !j.absorbed && j.done() <= t && (soonest == nil || j.done() < soonest.done()) {
					soonest = j
				}
			}
			if soonest == nil {
				return false, finish
			}
			soonest.absorbed = true
			nodes += soonest.nodes
			if soonest.done() > finish {
				finish = soonest.done()
			}
			if v := -soonest.value; v > m {
				m = v
			}
			if m >= w.Beta {
				return true, soonest.done()
			}
		}
	}

	// abort charges pro-rata work for slaves still running at the cutoff.
	abort := func(tc int64) {
		for _, j := range jobs {
			if j.absorbed {
				continue
			}
			s.aborts++
			if j.dur > 0 && tc > j.start {
				nodes += j.nodes * float64(tc-j.start) / float64(j.dur)
			}
		}
	}

	for next < len(kids) {
		// Earliest-free slave takes the next child.
		slave := 0
		for i := 1; i < len(free); i++ {
			if free[i] < free[slave] {
				slave = i
			}
		}
		start := free[slave]
		if cut, tc := absorb(start); cut {
			abort(tc)
			return m, tc, nodes
		}
		v, dur, n := s.split(kids[next], depth-1, ply+1, w.Child(m), height-1)
		jobs = append(jobs, &job{value: v, start: start, dur: dur, nodes: n})
		free[slave] = start + dur
		next++
	}
	if cut, tc := absorb(int64(1) << 62); cut {
		abort(tc)
		return m, tc, nodes
	}
	return m, finish, nodes
}

// PVSplitMW runs the Marsland-Popowich variant of pv-splitting described in
// the paper's footnote 3: rightmost children along the candidate principal
// variation are *verified* with parallel minimal-window searches, and only
// re-searched with a proper window when the verification fails high.
func PVSplitMW(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	if opt.Fanout < 1 {
		opt.Fanout = 2
	}
	s := &searcher{opt: opt, cost: cost}
	v, t, n := s.pvSplitMW(pos, depth, 0, game.FullWindow())
	return Result{Value: v, Time: t, Nodes: int64(n), Aborts: s.aborts}
}

func (s *searcher) pvSplitMW(pos game.Position, depth, ply int, w game.Window) (game.Value, int64, float64) {
	if depth <= s.opt.Height || depth == 0 {
		return s.split(pos, depth, ply, w, s.opt.Height)
	}
	kids, setup := s.expand(pos, ply)
	if len(kids) == 0 {
		v, t, n := s.serialLeaf(pos, 0, ply, w)
		return v, setup + t, n
	}
	t := setup
	nodes := float64(len(kids))
	v0, dt, n0 := s.pvSplitMW(kids[0], depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -w.Alpha})
	t += dt
	nodes += n0
	m := -v0
	if m >= w.Beta {
		return m, t, nodes
	}
	for _, k := range kids[1:] {
		a := game.Max(w.Alpha, m)
		// Minimal-window verification with the full processor tree.
		v, dt, n := s.split(k, depth-1, ply+1, game.Window{Alpha: -(a + 1), Beta: -a}, s.opt.Height)
		t += dt
		nodes += n
		tv := -v
		if tv > a && tv < w.Beta {
			// Fails high inside the window: proper re-search.
			v, dt, n = s.split(k, depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -a}, s.opt.Height)
			t += dt
			nodes += n
			tv = -v
		}
		if tv > m {
			m = tv
		}
		if m >= w.Beta {
			return m, t, nodes
		}
	}
	return m, t, nodes
}

// pvSplit follows the candidate principal variation (leftmost branch) down
// to the processor-tree height, then backs values up, invoking
// tree-splitting on remaining siblings with improved bounds (§4.4).
func (s *searcher) pvSplit(pos game.Position, depth, ply int, w game.Window) (game.Value, int64, float64) {
	if depth <= s.opt.Height || depth == 0 {
		return s.split(pos, depth, ply, w, s.opt.Height)
	}
	kids, setup := s.expand(pos, ply)
	if len(kids) == 0 {
		v, t, n := s.serialLeaf(pos, 0, ply, w)
		return v, setup + t, n
	}
	t := setup
	nodes := float64(len(kids))
	v0, dt, n0 := s.pvSplit(kids[0], depth-1, ply+1, w.Child(-game.Inf))
	t += dt
	nodes += n0
	m := -v0
	if m >= w.Beta {
		return m, t, nodes
	}
	for _, k := range kids[1:] {
		v, dt, n := s.split(k, depth-1, ply+1, w.Child(m), s.opt.Height)
		t += dt
		nodes += n
		if nv := -v; nv > m {
			m = nv
		}
		if m >= w.Beta {
			return m, t, nodes
		}
	}
	return m, t, nodes
}
