package treesplit

import (
	"math/rand"
	"testing"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

func TestExactValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 60}
	for i := 0; i < 60; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var s serial.Searcher
		want := s.Negmax(root, h)
		for _, opt := range []Options{
			{Height: 0, Fanout: 2},
			{Height: 1, Fanout: 2},
			{Height: 2, Fanout: 2},
			{Height: 1, Fanout: 4},
			{Height: 2, Fanout: 3},
		} {
			if got := Search(root, h, opt, core.DefaultCostModel()); got.Value != want {
				t.Fatalf("tree %d opts %+v: split value %d, want %d\n%s", i, opt, got.Value, want, root)
			}
			if got := PVSplit(root, h, opt, core.DefaultCostModel()); got.Value != want {
				t.Fatalf("tree %d opts %+v: pvsplit value %d, want %d\n%s", i, opt, got.Value, want, root)
			}
		}
	}
}

func TestProcessorsCount(t *testing.T) {
	if (Options{Height: 2, Fanout: 2}).Processors() != 4 {
		t.Fatal("2^2 != 4")
	}
	if (Options{Height: 3, Fanout: 2}).Processors() != 8 {
		t.Fatal("2^3 != 8")
	}
	if (Options{Height: 0, Fanout: 2}).Processors() != 1 {
		t.Fatal("height 0 is one processor")
	}
}

func TestTreeSplittingSpeedsUpWorstOrder(t *testing.T) {
	// Fishburn: on trees where alpha-beta achieves no cutoffs (worst-first
	// order), tree-splitting achieves speedup near the processor count.
	// Degree 4 matches the 4-slave processor tree, so no load imbalance
	// obscures the effect.
	rng := rand.New(rand.NewSource(4))
	root := gtree.Complete(4, 5, func(i int) game.Value {
		return game.Value(rng.Intn(2000) - 1000)
	})
	root.SortByNegmax()
	// Reverse every node's children: worst-first order.
	var rev func(n *gtree.Node)
	rev = func(n *gtree.Node) {
		for i, j := 0, len(n.Kids)-1; i < j; i, j = i+1, j-1 {
			n.Kids[i], n.Kids[j] = n.Kids[j], n.Kids[i]
		}
		for _, k := range n.Kids {
			rev(k)
		}
	}
	rev(root)
	cost := core.DefaultCostModel()
	t1 := Search(root, 5, Options{Height: 0, Fanout: 2}, cost)
	t4 := Search(root, 5, Options{Height: 2, Fanout: 2}, cost)
	sp := float64(t1.Time) / float64(t4.Time)
	t.Logf("worst-order speedup with 4 slaves: %.2f", sp)
	if sp < 2.8 {
		t.Errorf("tree-splitting speedup %.2f on worst-ordered tree; expected near 4", sp)
	}
}

func TestTreeSplittingPoorOnBestOrder(t *testing.T) {
	// On best-first trees, tree-splitting efficiency is O(1/sqrt(k)):
	// speedup with 4 slaves should be well below 4.
	rng := rand.New(rand.NewSource(4))
	root := gtree.Complete(3, 6, func(i int) game.Value {
		return game.Value(rng.Intn(2000) - 1000)
	})
	root.SortByNegmax()
	cost := core.DefaultCostModel()
	t1 := Search(root, 6, Options{Height: 0, Fanout: 2}, cost)
	t4 := Search(root, 6, Options{Height: 2, Fanout: 2}, cost)
	sp := float64(t1.Time) / float64(t4.Time)
	t.Logf("best-order speedup with 4 slaves: %.2f (O(sqrt k) predicted ~2)", sp)
	if sp > 3.2 {
		t.Errorf("tree-splitting speedup %.2f on best-ordered tree; theory predicts ~sqrt(4)=2", sp)
	}
}

func TestPVSplitBeatsTreeSplitOnOrderedTrees(t *testing.T) {
	// pv-splitting was designed for strongly ordered trees; it should
	// dominate plain tree-splitting there (fewer nodes and less time).
	tr := randtree.Marsland(77, 4, 7)
	cost := core.DefaultCostModel()
	opt := Options{Height: 2, Fanout: 2, Order: game.StaticOrder{MaxPly: 5}}
	ts := Search(tr.Root(), 7, opt, cost)
	pv := PVSplit(tr.Root(), 7, opt, cost)
	if ts.Value != pv.Value {
		t.Fatalf("values differ: %d vs %d", ts.Value, pv.Value)
	}
	t.Logf("tree-split: time %d nodes %d aborts %d; pv-split: time %d nodes %d aborts %d",
		ts.Time, ts.Nodes, ts.Aborts, pv.Time, pv.Nodes, pv.Aborts)
	if pv.Nodes > ts.Nodes {
		t.Errorf("pv-split examined more nodes (%d) than tree-split (%d) on a strongly ordered tree",
			pv.Nodes, ts.Nodes)
	}
}

func TestAbortsHappen(t *testing.T) {
	// With enough slaves on a prunable tree, some slave work must be
	// aborted by master cutoffs (that is the speculative loss).
	tr := &randtree.Tree{Seed: 12, Degree: 6, Depth: 5, ValueRange: 10000}
	res := Search(tr.Root(), 5, Options{Height: 2, Fanout: 3}, core.DefaultCostModel())
	if res.Aborts == 0 {
		t.Logf("note: no aborts on this tree (possible, but unusual)")
	}
	var s serial.Searcher
	if want := s.Negmax(tr.Root(), 5); res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
}

func TestNodesNeverBelowSerial(t *testing.T) {
	// Parallel tree-splitting cannot examine fewer nodes than the serial
	// alpha-beta it degenerates to at Height 0... (it can, rarely, due to
	// acceleration anomalies; assert only that counting is sane: nodes>0
	// and no more than the whole tree).
	tr := &randtree.Tree{Seed: 13, Degree: 3, Depth: 6, ValueRange: 100}
	whole := int64(1)
	for i := 0; i <= 6; i++ {
		p := int64(1)
		for j := 0; j < i; j++ {
			p *= 3
		}
		whole += p
	}
	for _, opt := range []Options{{Height: 0, Fanout: 2}, {Height: 2, Fanout: 2}} {
		res := Search(tr.Root(), 6, opt, core.DefaultCostModel())
		if res.Nodes <= 0 || res.Nodes > whole {
			t.Fatalf("opts %+v: implausible node count %d (tree has %d)", opt, res.Nodes, whole)
		}
	}
}

func TestDegenerate(t *testing.T) {
	leaf := gtree.L(9)
	res := Search(leaf, 0, Options{Height: 2, Fanout: 2}, core.DefaultCostModel())
	if res.Value != 9 {
		t.Fatalf("leaf value %d", res.Value)
	}
	res = PVSplit(leaf, 3, Options{Height: 1, Fanout: 2}, core.DefaultCostModel())
	if res.Value != 9 {
		t.Fatalf("terminal pv-split value %d", res.Value)
	}
	single := gtree.N(gtree.L(-4))
	res = Search(single, 1, Options{Height: 3, Fanout: 2}, core.DefaultCostModel())
	if res.Value != 4 {
		t.Fatalf("single-child value %d", res.Value)
	}
}

func TestPVSplitMWExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 60}
	for i := 0; i < 40; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var s serial.Searcher
		want := s.Negmax(root, h)
		for _, opt := range []Options{{Height: 1, Fanout: 2}, {Height: 2, Fanout: 2}} {
			if got := PVSplitMW(root, h, opt, core.DefaultCostModel()); got.Value != want {
				t.Fatalf("tree %d opts %+v: %d want %d\n%s", i, opt, got.Value, want, root)
			}
		}
	}
}

func TestPVSplitMWComparableOnOrderedTrees(t *testing.T) {
	// The minimal-window variant must agree on the value. On these
	// synthetic trees it examines FEWER leaves but re-expands interior
	// nodes on verification failures; without a transposition table the
	// re-searches make it roughly a wash (Marsland and Popowich's gains
	// presumed the memory their implementations had). Assert it stays
	// within 50% of plain pv-splitting rather than strictly better.
	tr := randtree.Marsland(123, 4, 8)
	order := game.StaticOrder{MaxPly: 5}
	opt := Options{Height: 2, Fanout: 2, Order: order}
	cost := core.DefaultCostModel()
	pv := PVSplit(tr.Root(), 8, opt, cost)
	mw := PVSplitMW(tr.Root(), 8, opt, cost)
	if pv.Value != mw.Value {
		t.Fatalf("values differ: %d vs %d", pv.Value, mw.Value)
	}
	t.Logf("pv-split: time %d nodes %d; pv-split-mw: time %d nodes %d",
		pv.Time, pv.Nodes, mw.Time, mw.Nodes)
	if mw.Nodes > pv.Nodes*3/2 {
		t.Errorf("minimal-window variant examined %d nodes vs %d (+>50%%)", mw.Nodes, pv.Nodes)
	}
}
