package aspiration

import (
	"math/rand"
	"testing"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

func TestExactValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 40}
	for i := 0; i < 60; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var s serial.Searcher
		want := s.Negmax(root, h)
		for _, workers := range []int{1, 2, 3, 5, 8} {
			res := Search(root, h, Options{Workers: workers, Bound: 45}, core.DefaultCostModel())
			if res.Value != want {
				t.Fatalf("tree %d P=%d: value %d, want %d", i, workers, res.Value, want)
			}
		}
	}
}

func TestBoundaryValues(t *testing.T) {
	// Craft a tree whose value lands exactly on a window cut. With
	// Bound=4 and 4 workers, cuts fall at -2, 0, 2; value 0 is a cut.
	root := gtree.N(gtree.L(0), gtree.L(5))
	var s serial.Searcher
	want := s.Negmax(root, 1)
	res := Search(root, 1, Options{Workers: 4, Bound: 4}, core.DefaultCostModel())
	if res.Value != want {
		t.Fatalf("boundary value: %d, want %d", res.Value, want)
	}
}

func TestExactlyOneSuccessInteriorValue(t *testing.T) {
	tr := &randtree.Tree{Seed: 3, Degree: 3, Depth: 5, ValueRange: 1000}
	res := Search(tr.Root(), 5, Options{Workers: 5, Bound: 1100}, core.DefaultCostModel())
	succ := 0
	for _, w := range res.Windows {
		if w.Success {
			succ++
		}
	}
	if succ > 1 {
		t.Fatalf("%d windows succeeded, want at most 1", succ)
	}
}

func TestNarrowWindowsCheaper(t *testing.T) {
	// The succeeding narrow window must cost no more than the full-window
	// serial search (that is the entire point of aspiration).
	tr := &randtree.Tree{Seed: 9, Degree: 4, Depth: 6, ValueRange: 10000}
	full := Search(tr.Root(), 6, Options{Workers: 1}, core.DefaultCostModel())
	split := Search(tr.Root(), 6, Options{Workers: 6, Bound: 11000}, core.DefaultCostModel())
	if split.Value != full.Value {
		t.Fatalf("values differ")
	}
	if split.ParallelTime > full.ParallelTime {
		t.Errorf("aspiration slower than serial: %d > %d", split.ParallelTime, full.ParallelTime)
	}
	t.Logf("serial %d, aspiration(6) %d, speedup %.2f",
		full.ParallelTime, split.ParallelTime,
		float64(full.ParallelTime)/float64(split.ParallelTime))
}

func TestSpeedupPlateaus(t *testing.T) {
	// Baudet's key observation: speedup is bounded regardless of
	// processors (each search still visits at least the minimal tree).
	tr := &randtree.Tree{Seed: 17, Degree: 4, Depth: 7, ValueRange: 10000}
	serialTime := Search(tr.Root(), 7, Options{Workers: 1}, core.DefaultCostModel()).ParallelTime
	best := 0.0
	for _, workers := range []int{2, 4, 8, 16, 32} {
		res := Search(tr.Root(), 7, Options{Workers: workers, Bound: 11000}, core.DefaultCostModel())
		sp := float64(serialTime) / float64(res.ParallelTime)
		if sp > best {
			best = sp
		}
	}
	t.Logf("max aspiration speedup observed: %.2f", best)
	if best > 8 {
		t.Errorf("aspiration speedup %.2f implausibly high (Baudet bound ~5-6)", best)
	}
	if best < 1.0 {
		t.Errorf("aspiration achieved no speedup at all")
	}
}

func TestTotalNodesGrowWithWorkers(t *testing.T) {
	tr := &randtree.Tree{Seed: 21, Degree: 3, Depth: 6, ValueRange: 1000}
	n1 := Search(tr.Root(), 6, Options{Workers: 1}, core.DefaultCostModel()).TotalNodes
	n8 := Search(tr.Root(), 6, Options{Workers: 8, Bound: 1100}, core.DefaultCostModel()).TotalNodes
	if n8 <= n1 {
		t.Errorf("8 windows should examine more total nodes than 1 (%d vs %d)", n8, n1)
	}
}

func TestDefaultsAndDegenerate(t *testing.T) {
	leaf := gtree.L(7)
	res := Search(leaf, 0, Options{}, core.DefaultCostModel())
	if res.Value != 7 || res.Workers != 1 {
		t.Fatalf("degenerate search: %+v", res)
	}
	if res.ParallelTime <= 0 {
		t.Fatalf("no time charged")
	}
	if !res.Windows[0].Window.Contains(game.Value(7)) {
		t.Fatalf("full window should contain the value")
	}
}
