// Package aspiration implements Baudet's parallel aspiration search (paper
// §4.1): the alpha-beta window is divided into k disjoint intervals, each
// processor searches the full tree with its own interval, and exactly one
// succeeds. The processors never communicate, so the parallel time is simply
// the time of the search that proves the value; the speedup comes from
// narrow windows cutting more, and is bounded (Baudet observed a maximum of
// 5-6) because every processor must still examine at least the minimal tree.
package aspiration

import (
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
)

// Options configures an aspiration search.
type Options struct {
	// Workers is the number of processors (windows). Defaults to 1.
	Workers int
	// Bound is the largest value magnitude considered; the interval
	// [-Bound, Bound] is divided evenly among the workers, with the
	// outermost windows extended to infinity. Must be positive.
	Bound game.Value
	// Order is the move-ordering policy shared by all searches.
	Order game.Orderer
}

// WindowResult describes one processor's search.
type WindowResult struct {
	Window  game.Window
	Value   game.Value // fail-soft alpha-beta result
	Cost    int64      // virtual time of this search
	Nodes   int64
	Success bool // the window strictly contained the true value
}

// Result is the outcome of a parallel aspiration search.
type Result struct {
	Value   game.Value
	Workers int
	Windows []WindowResult
	// ParallelTime is the virtual time until the value is proved: the
	// succeeding window's search, or — when the value falls on a window
	// boundary — the slower of the two adjacent proofs.
	ParallelTime int64
	// TotalNodes across all processors (they all run to completion unless
	// aborted; Baudet's scheme has no abort channel).
	TotalNodes int64
}

// Search runs parallel aspiration search. Because the k searches are fully
// independent, they are evaluated sequentially here and combined under the
// cost model: virtual parallel time needs no event simulation.
func Search(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	bound := opt.Bound
	if bound <= 0 {
		bound = game.Inf - 1
	}
	res := Result{Workers: workers, Value: game.NoValue}

	// Build k contiguous windows covering (-Inf, Inf).
	cuts := make([]game.Value, workers+1)
	cuts[0] = -game.Inf
	cuts[workers] = game.Inf
	for i := 1; i < workers; i++ {
		cuts[i] = -bound + game.Value(int64(2*bound)*int64(i)/int64(workers))
	}

	for i := 0; i < workers; i++ {
		w := game.Window{Alpha: cuts[i], Beta: cuts[i+1]}
		var st game.Stats
		s := serial.Searcher{Order: opt.Order, Stats: &st}
		v := s.AlphaBeta(pos, depth, w)
		snap := st.Snapshot()
		wr := WindowResult{
			Window:  w,
			Value:   v,
			Cost:    cost.Of(snap),
			Nodes:   snap.Generated + snap.Evaluated,
			Success: w.Contains(v),
		}
		res.Windows = append(res.Windows, wr)
		res.TotalNodes += wr.Nodes
		if wr.Success {
			res.Value = v
			res.ParallelTime = wr.Cost
		}
	}

	if res.Value == game.NoValue {
		// The true value fell on a window boundary: the window below
		// failed high at it and the window above failed low at it; the
		// two proofs together pin the value. Find the boundary b where
		// windows[i] fails high with value b and windows[i+1] fails low
		// with value b.
		for i := 0; i+1 < workers; i++ {
			lo, hi := res.Windows[i], res.Windows[i+1]
			if lo.Value >= lo.Window.Beta && hi.Value <= hi.Window.Alpha && lo.Value == hi.Value {
				res.Value = lo.Value
				if lo.Cost > hi.Cost {
					res.ParallelTime = lo.Cost
				} else {
					res.ParallelTime = hi.Cost
				}
				break
			}
		}
	}
	if res.Value == game.NoValue {
		// Single window (workers == 1) or pathological bound settings:
		// fall back to the full-window search result.
		res.Value = res.Windows[0].Value
		res.ParallelTime = res.Windows[0].Cost
	}
	return res
}
