package rootsplit

import (
	"math/rand"
	"testing"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/randtree"
	"ertree/internal/serial"
)

func TestExactValueRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 60}
	for i := 0; i < 60; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var s serial.Searcher
		want := s.Negmax(root, h)
		for _, workers := range []int{1, 2, 3, 8} {
			res := Search(root, h, Options{Workers: workers}, core.DefaultCostModel())
			if res.Value != want {
				t.Fatalf("tree %d P=%d: %d want %d\n%s", i, workers, res.Value, want, root)
			}
		}
	}
}

func TestSearchesMoreNodesThanSerial(t *testing.T) {
	// The intro's claim: naive partitioning searches a much greater
	// portion of the tree than serial alpha-beta.
	tr := &randtree.Tree{Seed: 5, Degree: 8, Depth: 5, ValueRange: 10000}
	var st game.Stats
	s := serial.Searcher{Stats: &st}
	s.AlphaBeta(tr.Root(), 5, game.FullWindow())
	serialNodes := st.Generated.Load() + st.Evaluated.Load()
	res := Search(tr.Root(), 5, Options{Workers: 8}, core.DefaultCostModel())
	t.Logf("serial alpha-beta: %d nodes; root-split(8): %d nodes", serialNodes, res.Nodes)
	if res.Nodes <= serialNodes*5/4 {
		t.Errorf("root splitting examined only %d nodes vs serial %d; expected a big blowup",
			res.Nodes, serialNodes)
	}
}

func TestLowEfficiency(t *testing.T) {
	tr := &randtree.Tree{Seed: 6, Degree: 8, Depth: 5, ValueRange: 10000}
	var st game.Stats
	s := serial.Searcher{Stats: &st}
	s.AlphaBeta(tr.Root(), 5, game.FullWindow())
	serialCost := core.DefaultCostModel().Of(st.Snapshot())
	res := Search(tr.Root(), 5, Options{Workers: 8}, core.DefaultCostModel())
	eff := float64(serialCost) / float64(res.Time) / 8
	t.Logf("root-split(8) efficiency vs serial alpha-beta: %.2f", eff)
	if eff > 0.6 {
		t.Errorf("naive root splitting efficiency %.2f suspiciously high", eff)
	}
}

func TestDegenerate(t *testing.T) {
	leaf := gtree.L(5)
	res := Search(leaf, 3, Options{Workers: 4}, core.DefaultCostModel())
	if res.Value != 5 {
		t.Fatalf("terminal: %d", res.Value)
	}
	res = Search(gtree.N(gtree.L(-2)), 1, Options{Workers: 16}, core.DefaultCostModel())
	if res.Value != 2 {
		t.Fatalf("single child: %d", res.Value)
	}
}
