// Package rootsplit implements the naive parallelization the paper's
// introduction dismisses: "A parallel algorithm that simply partitions the
// tree amongst the available processors will search a much greater portion
// of the tree than serial alpha-beta, resulting in low efficiency."
//
// The root's subtrees are dealt round-robin to P processors; each processor
// searches its share with serial alpha-beta using only its own private
// bounds (no communication). The parallel time is the busiest processor's
// total. Experiment E0 uses this to quantify the intro's claim.
package rootsplit

import (
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
)

// Options configures a root-splitting run.
type Options struct {
	// Workers is the processor count.
	Workers int
	// Order is the move-ordering policy.
	Order game.Orderer
}

// Result reports a root-splitting run in virtual time.
type Result struct {
	Value game.Value
	// Time is the busiest processor's total virtual time (the makespan of
	// the static round-robin schedule).
	Time int64
	// Nodes is the total work across all processors.
	Nodes int64
	// Workers is the processor count used.
	Workers int
}

// Search partitions the root's children round-robin over the workers; each
// worker searches its children sequentially with serial alpha-beta and a
// private window. Because the workers never share bounds, each child search
// starts from the worker's own running value only — the missed cutoffs are
// the point of the experiment.
func Search(pos game.Position, depth int, opt Options, cost core.CostModel) Result {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	kids := pos.Children()
	if depth == 0 || len(kids) == 0 {
		var st game.Stats
		s := serial.Searcher{Order: opt.Order, Stats: &st}
		v := s.Negmax(pos, 0)
		snap := st.Snapshot()
		return Result{Value: v, Time: cost.Of(snap), Nodes: snap.Generated + snap.Evaluated, Workers: workers}
	}
	if opt.Order != nil {
		kids = opt.Order.Order(kids, 0)
	}

	times := make([]int64, workers)
	values := make([]game.Value, workers)
	var nodes int64
	for i := range values {
		values[i] = -game.Inf
	}
	for i, k := range kids {
		w := i % workers
		var st game.Stats
		s := serial.Searcher{Order: opt.Order, Stats: &st, BasePly: 1}
		// Private window: only this worker's own best bounds the search.
		t := -s.AlphaBeta(k, depth-1, game.Window{Alpha: -game.Inf, Beta: -values[w]})
		if t > values[w] {
			values[w] = t
		}
		snap := st.Snapshot()
		times[w] += cost.Of(snap)
		nodes += snap.Generated + snap.Evaluated
	}

	res := Result{Value: -game.Inf, Workers: workers}
	for w := 0; w < workers && w < len(kids); w++ {
		if values[w] > res.Value {
			res.Value = values[w]
		}
		if times[w] > res.Time {
			res.Time = times[w]
		}
	}
	res.Nodes = nodes
	return res
}
