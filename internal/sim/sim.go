// Package sim is a deterministic, process-oriented discrete-event simulator.
// It is the repository's stand-in for the paper's 16-processor Sequent
// Symmetry (DESIGN.md §3): parallel algorithms are written as ordinary
// worker loops against sim's primitives (Advance, Acquire/Release, Wait/
// Broadcast), and the simulator executes P such workers under a virtual
// clock.
//
// Exactly one simulated process runs at any instant — processes hand control
// back to the scheduler whenever they touch a primitive — so results are
// bit-for-bit reproducible regardless of the host's real parallelism, and
// the three loss sources the paper analyzes are directly measurable:
// starvation (time blocked in Wait), interference (time blocked in Acquire),
// and speculative loss (extra work, measured by the algorithms themselves).
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Env is a simulation environment: a virtual clock plus a set of processes.
// Create one with NewEnv, add processes with Spawn, then call Run.
type Env struct {
	now     int64
	queue   eventQueue
	seq     uint64
	procs   []*Proc
	parked  chan *Proc
	live    int
	running bool
	trace   bool
}

// NewEnv returns an empty environment at virtual time 0.
func NewEnv() *Env {
	return &Env{parked: make(chan *Proc)}
}

// Now returns the current virtual time.
func (e *Env) Now() int64 { return e.now }

// Procs returns the spawned processes (for metrics inspection after Run).
func (e *Env) Procs() []*Proc { return e.procs }

// procState tracks where a process is from the scheduler's point of view.
type procState int8

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateBlocked
	stateExited
)

// Proc is a simulated process. All methods must be called from within the
// process's own function (they yield to the scheduler); accessor methods
// (Busy, StarveTime, LockTime, Name, ID) are safe after Run completes.
type Proc struct {
	env  *Env
	id   int
	name string
	fn   func(*Proc)

	cont  chan struct{}
	state procState
	wake  int64

	busy      int64 // virtual time consumed by Advance
	starve    int64 // virtual time blocked in Wait (starvation)
	lockWait  int64 // virtual time blocked in Acquire (interference)
	blockedAt int64
	intervals []Interval // busy spans, recorded when tracing is enabled
}

// ID returns the process id (dense, starting at 0 in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Busy returns the total virtual time the process spent in Advance.
func (p *Proc) Busy() int64 { return p.busy }

// StarveTime returns the total virtual time the process spent blocked in
// Wait — the starvation loss of §3.1.
func (p *Proc) StarveTime() int64 { return p.starve }

// LockTime returns the total virtual time the process spent blocked in
// Acquire — the interference loss of §3.1.
func (p *Proc) LockTime() int64 { return p.lockWait }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.env.now }

// Spawn adds a process to the environment, runnable at the current virtual
// time. It may be called before Run or from inside a running process.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, id: len(e.procs), name: name, fn: fn, cont: make(chan struct{})}
	e.procs = append(e.procs, p)
	e.live++
	e.schedule(p, e.now)
	go func() {
		<-p.cont
		p.fn(p)
		p.state = stateExited
		e.parked <- p
	}()
	return p
}

// schedule marks p runnable at time t.
func (e *Env) schedule(p *Proc, t int64) {
	p.state = stateRunnable
	p.wake = t
	e.seq++
	heap.Push(&e.queue, event{time: t, seq: e.seq, proc: p})
}

// park hands control back to the scheduler and blocks until resumed. Must be
// called from the process goroutine.
func (p *Proc) park() {
	p.env.parked <- p
	<-p.cont
}

// Run executes the simulation until every process has exited. It returns an
// error on deadlock (processes blocked with nothing runnable). Run must be
// called exactly once, after at least one Spawn.
func (e *Env) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called twice")
	}
	e.running = true
	for e.live > 0 {
		if e.queue.Len() == 0 {
			return e.deadlockError()
		}
		ev := heap.Pop(&e.queue).(event)
		p := ev.proc
		if p.state != stateRunnable || p.wake != ev.time {
			continue // stale event
		}
		e.now = ev.time
		p.state = stateRunning
		p.cont <- struct{}{}
		q := <-e.parked
		if q.state == stateExited {
			e.live--
		}
	}
	return nil
}

func (e *Env) deadlockError() error {
	var blocked []string
	for _, p := range e.procs {
		if p.state == stateBlocked {
			blocked = append(blocked, p.name)
		}
	}
	sort.Strings(blocked)
	return fmt.Errorf("sim: deadlock at t=%d, blocked: %v", e.now, blocked)
}

// Advance consumes d units of virtual time (the process is busy). d must be
// non-negative; zero is a no-op that does not yield.
func (p *Proc) Advance(d int64) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	if d == 0 {
		return
	}
	p.busy += d
	start := p.env.now
	p.env.schedule(p, start+d)
	p.park()
	p.recordBusy(start, start+d)
}

// event is a scheduler queue entry.
type event struct {
	time int64
	seq  uint64
	proc *Proc
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
