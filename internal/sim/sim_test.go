package sim

import (
	"strings"
	"testing"
)

func TestAdvanceAccumulatesClock(t *testing.T) {
	e := NewEnv()
	var finished int64
	e.Spawn("a", func(p *Proc) {
		p.Advance(5)
		p.Advance(7)
		finished = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished != 12 || e.Now() != 12 {
		t.Fatalf("clock = %d / %d, want 12", finished, e.Now())
	}
	if e.Procs()[0].Busy() != 12 {
		t.Fatalf("busy = %d, want 12", e.Procs()[0].Busy())
	}
}

func TestProcessesInterleaveByTime(t *testing.T) {
	e := NewEnv()
	var order []string
	step := func(name string, d int64) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Advance(d)
				order = append(order, name)
			}
		}
	}
	e.Spawn("slow", step("slow", 10))
	e.Spawn("fast", step("fast", 3))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// fast at t=3,6,9; slow at t=10,20,30.
	want := "fast fast fast slow slow slow"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
	if e.Now() != 30 {
		t.Fatalf("makespan %d, want 30", e.Now())
	}
}

func TestDeterministicTieBreaking(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var order []string
		for _, name := range []string{"p0", "p1", "p2"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				p.Advance(5) // all wake at the same instant
				order = append(order, name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := strings.Join(run(), " ")
	for i := 0; i < 10; i++ {
		if b := strings.Join(run(), " "); b != a {
			t.Fatalf("nondeterministic: %q vs %q", a, b)
		}
	}
	if a != "p0 p1 p2" {
		t.Fatalf("ties must resolve in spawn order, got %q", a)
	}
}

func TestResourceMutualExclusionAndFIFO(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("lock")
	inside := 0
	var maxInside int
	var grants []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			p.Acquire(r)
			grants = append(grants, name)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(10)
			inside--
			p.Release(r)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutual exclusion violated: %d inside", maxInside)
	}
	if got := strings.Join(grants, " "); got != "a b c" {
		t.Fatalf("grants %q, want FIFO order", got)
	}
	if e.Now() != 30 {
		t.Fatalf("makespan %d, want 30 (serialized)", e.Now())
	}
	// b waited 10, c waited 20: interference accounting.
	if e.Procs()[1].LockTime() != 10 || e.Procs()[2].LockTime() != 20 {
		t.Fatalf("lock times %d/%d, want 10/20",
			e.Procs()[1].LockTime(), e.Procs()[2].LockTime())
	}
}

func TestCondWaitBroadcast(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("lock")
	c := e.NewCond(r)
	ready := false
	var consumedAt int64
	e.Spawn("consumer", func(p *Proc) {
		p.Acquire(r)
		for !ready {
			p.Wait(c)
		}
		consumedAt = p.Now()
		p.Release(r)
	})
	e.Spawn("producer", func(p *Proc) {
		p.Advance(42)
		p.Acquire(r)
		ready = true
		p.Broadcast(c)
		p.Release(r)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if consumedAt != 42 {
		t.Fatalf("consumer woke at %d, want 42", consumedAt)
	}
	if st := e.Procs()[0].StarveTime(); st != 42 {
		t.Fatalf("starvation time %d, want 42", st)
	}
}

func TestSignalWakesOne(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("lock")
	c := e.NewCond(r)
	woken := 0
	items := 0
	for i := 0; i < 2; i++ {
		e.Spawn("waiter", func(p *Proc) {
			p.Acquire(r)
			for items == 0 {
				p.Wait(c)
			}
			items--
			woken++
			p.Release(r)
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Advance(5)
		p.Acquire(r)
		items = 1
		p.Signal(c)
		p.Release(r)
		p.Advance(5)
		p.Acquire(r)
		items = 1
		p.Signal(c)
		p.Release(r)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 2 || items != 0 {
		t.Fatalf("woken=%d items=%d", woken, items)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("lock")
	c := e.NewCond(r)
	e.Spawn("stuck", func(p *Proc) {
		p.Acquire(r)
		p.Wait(c) // nobody will broadcast
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("deadlock error should name the blocked process: %v", err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEnv()
	var childDone int64
	e.Spawn("parent", func(p *Proc) {
		p.Advance(10)
		p.env.Spawn("child", func(q *Proc) {
			q.Advance(5)
			childDone = q.Now()
		})
		p.Advance(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childDone != 15 {
		t.Fatalf("child finished at %d, want 15", childDone)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	e := NewEnv()
	e.Spawn("a", func(p *Proc) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestZeroAdvanceDoesNotYield(t *testing.T) {
	e := NewEnv()
	e.Spawn("a", func(p *Proc) {
		p.Advance(0)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved on zero advance")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEnv()
	panicked := make(chan bool, 1)
	e.Spawn("a", func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-park as exited so Run can finish.
		}()
		p.Advance(-1)
	})
	_ = e.Run()
	if !<-panicked {
		t.Fatal("negative Advance did not panic")
	}
}

// A worker-pool smoke test: N workers drain a shared queue of jobs with
// different costs; makespan must equal the LPT bound for this ordering.
func TestWorkerPoolMakespan(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("queue")
	jobs := []int64{7, 3, 3, 3}
	for w := 0; w < 2; w++ {
		e.Spawn("worker", func(p *Proc) {
			for {
				p.Acquire(r)
				if len(jobs) == 0 {
					p.Release(r)
					return
				}
				j := jobs[0]
				jobs = jobs[1:]
				p.Release(r)
				p.Advance(j)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// worker0: 7, then queue empty at its return time 7... worker1: 3+3+3=9.
	if e.Now() != 9 {
		t.Fatalf("makespan %d, want 9", e.Now())
	}
}
