package sim

// Optional busy-interval tracing, used to render worker-utilization
// timelines (which phases of a parallel search starve which processors).

// Interval is a half-open busy span [Start, End) in virtual time.
type Interval struct {
	Start, End int64
}

// EnableTrace turns on busy-interval recording for all processes spawned
// before or after the call. Call before Run.
func (e *Env) EnableTrace() { e.trace = true }

// BusyIntervals returns the recorded busy spans (only if tracing was
// enabled). Adjacent spans are coalesced.
func (p *Proc) BusyIntervals() []Interval { return p.intervals }

// recordBusy appends a busy span, coalescing with the previous one.
func (p *Proc) recordBusy(start, end int64) {
	if !p.env.trace {
		return
	}
	if n := len(p.intervals); n > 0 && p.intervals[n-1].End == start {
		p.intervals[n-1].End = end
		return
	}
	p.intervals = append(p.intervals, Interval{Start: start, End: end})
}
