package sim

// Resource is an exclusive, FIFO-granted lock in virtual time. Time spent
// waiting for a Resource is accounted as interference loss (§3.1) — in the
// paper's implementation this is contention for the shared game tree and the
// problem heap.
type Resource struct {
	env     *Env
	name    string
	holder  *Proc
	waiters []*Proc
}

// NewResource creates a named exclusive resource.
func (e *Env) NewResource(name string) *Resource {
	return &Resource{env: e, name: name}
}

// Acquire takes the resource, blocking in virtual time while another process
// holds it. Grants are FIFO, so the simulation stays deterministic.
func (p *Proc) Acquire(r *Resource) {
	if r.holder == p {
		panic("sim: recursive Acquire of " + r.name)
	}
	if r.holder == nil {
		r.holder = p
		return
	}
	r.waiters = append(r.waiters, p)
	p.state = stateBlocked
	p.blockedAt = p.env.now
	p.park()
	// Resumed by Release with holdership already transferred.
	p.lockWait += p.env.now - p.blockedAt
}

// Release hands the resource to the longest-waiting process, or frees it.
func (p *Proc) Release(r *Resource) {
	if r.holder != p {
		panic("sim: Release of " + r.name + " by non-holder")
	}
	if len(r.waiters) == 0 {
		r.holder = nil
		return
	}
	q := r.waiters[0]
	r.waiters = r.waiters[1:]
	r.holder = q
	p.env.schedule(q, p.env.now)
}

// Cond is a condition variable tied to a Resource, mirroring sync.Cond.
// Time spent in Wait is accounted as starvation loss (§3.1) — idle
// processors with no work available.
type Cond struct {
	env     *Env
	r       *Resource
	waiters []*Proc
}

// NewCond creates a condition variable using r as its lock.
func (e *Env) NewCond(r *Resource) *Cond {
	return &Cond{env: e, r: r}
}

// Wait atomically releases the resource and blocks until Broadcast, then
// reacquires the resource before returning. The caller must hold c's
// resource.
func (p *Proc) Wait(c *Cond) {
	if c.r.holder != p {
		panic("sim: Wait without holding the lock")
	}
	c.waiters = append(c.waiters, p)
	start := p.env.now
	p.Release(c.r)
	p.state = stateBlocked
	p.blockedAt = start
	p.park()
	p.starve += p.env.now - start
	p.Acquire(c.r)
}

// Broadcast wakes every process blocked in Wait. The waiters re-contend for
// the resource in FIFO order. The caller should hold c's resource (as with
// sync.Cond, this is conventional rather than enforced).
func (p *Proc) Broadcast(c *Cond) {
	for _, q := range c.waiters {
		p.env.schedule(q, p.env.now)
	}
	c.waiters = nil
}

// Signal wakes the longest-waiting process blocked in Wait, if any.
func (p *Proc) Signal(c *Cond) {
	if len(c.waiters) == 0 {
		return
	}
	q := c.waiters[0]
	c.waiters = c.waiters[1:]
	p.env.schedule(q, p.env.now)
}
