// Package checkers implements English draughts (American checkers), the
// game of Fishburn's tree-splitting experiments that the paper cites when
// comparing pv-splitting results (§4.4: "These results compare favorably
// with Fishburn's results for the tree splitting algorithm using checkers
// game trees"). Experiment E3 uses it as a second, real workload.
//
// Rules implemented: 8x8 board, men move diagonally forward, kings any
// diagonal; captures by jumping are forced, including multi-jumps (a move
// is one complete jump sequence); men promote on the back rank (promotion
// ends the move); a player with no legal move loses. Draws by repetition
// are out of scope (searches are depth-limited).
//
// Board representation: the 32 playable dark squares are numbered 0..31,
// row-major from the bottom-left, rows alternating offsets. Bitboards hold
// men and kings per side.
package checkers

import (
	"fmt"
	"math/bits"
	"strings"

	"ertree/internal/game"
)

// Board is a checkers position from the point of view of the side to move.
type Board struct {
	ownMen, ownKings uint32 // stones of the player to move
	oppMen, oppKings uint32
	// blackToMove records which color "own" is (Black moves first and
	// moves "up" the board in our orientation).
	blackToMove bool
}

var _ game.Position = Board{}

// square coordinates: square s occupies row r = s/4 (0 = bottom) and column
// c = 2*(s%4) + ((r+1)&1)  (dark squares).
func squareRC(s int) (r, c int) {
	r = s / 4
	c = 2*(s%4) + ((r + 1) & 1)
	return
}

// rcSquare returns the square index for (r, c), or -1 for light squares or
// off-board coordinates.
func rcSquare(r, c int) int {
	if r < 0 || r > 7 || c < 0 || c > 7 {
		return -1
	}
	if (r+c)&1 != 1 {
		return -1 // light square
	}
	return r*4 + c/2
}

// neighbor returns the square one diagonal step from s in direction
// (dr, dc), or -1.
func neighbor(s, dr, dc int) int {
	r, c := squareRC(s)
	return rcSquare(r+dr, c+dc)
}

// Start returns the standard initial position, Black to move. Black men
// occupy squares 0..11 (rows 0-2), White men squares 20..31 (rows 5-7);
// Black moves up (+1 rows).
func Start() Board {
	return Board{
		ownMen:      0x00000FFF,
		oppMen:      0xFFF00000,
		blackToMove: true,
	}
}

// forwardDirs returns the row directions a man of the side to move may
// step: Black (own when blackToMove) moves +1, White moves -1. Because the
// board state is stored from the mover's perspective, we need the mover's
// color.
func (b Board) forwardDir() int {
	if b.blackToMove {
		return 1
	}
	return -1
}

// Move is one complete move: the visited squares (start, then each landing
// square) and the captured squares.
type Move struct {
	Path     []int
	Captures []int
}

func (m Move) String() string {
	var sb strings.Builder
	sep := "-"
	if len(m.Captures) > 0 {
		sep = "x"
	}
	for i, s := range m.Path {
		if i > 0 {
			sb.WriteString(sep)
		}
		fmt.Fprintf(&sb, "%d", s+1) // standard 1-based numbering
	}
	return sb.String()
}

// occupied returns all occupied squares.
func (b Board) occupied() uint32 { return b.ownMen | b.ownKings | b.oppMen | b.oppKings }

// pieceDirs returns the (dr, dc) steps available to the piece on square s.
func (b Board) pieceDirs(s int) [][2]int {
	bit := uint32(1) << uint(s)
	if b.ownKings&bit != 0 {
		return [][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
	}
	f := b.forwardDir()
	return [][2]int{{f, 1}, {f, -1}}
}

// jumpsFrom appends all complete jump sequences starting at square s with
// the piece currently there (captured set so far in caps).
func (b Board) jumpsFrom(s int, visitedCaps uint32, path []int, caps []int, out *[]Move) {
	found := false
	// A piece may not be jumped twice in one move, but captured pieces
	// remain on the board until the move completes, so they still block
	// landing squares.
	opp := (b.oppMen | b.oppKings) &^ visitedCaps
	occ := b.occupied()
	for _, d := range b.pieceDirs(path[0]) {
		over := neighbor(s, d[0], d[1])
		land := neighbor(s, 2*d[0], 2*d[1])
		if over < 0 || land < 0 {
			continue
		}
		overBit := uint32(1) << uint(over)
		landBit := uint32(1) << uint(land)
		if opp&overBit == 0 {
			continue
		}
		if occ&landBit != 0 && land != path[0] {
			continue // landing square occupied (the start square is vacated)
		}
		// A man that reaches the back rank promotes and the move ends.
		promotes := b.isBackRank(land) && b.ownKings&(1<<uint(path[0])) == 0
		found = true
		np := append(append([]int{}, path...), land)
		nc := append(append([]int{}, caps...), over)
		if promotes {
			*out = append(*out, Move{Path: np, Captures: nc})
			continue
		}
		b.jumpsFrom(land, visitedCaps|overBit, np, nc, out)
	}
	if !found && len(caps) > 0 {
		*out = append(*out, Move{Path: append([]int{}, path...), Captures: append([]int{}, caps...)})
	}
}

// isBackRank reports whether square s is the promotion rank for the side to
// move.
func (b Board) isBackRank(s int) bool {
	r := s / 4
	if b.forwardDir() == 1 {
		return r == 7
	}
	return r == 0
}

// Moves returns all legal moves. Captures are forced: if any jump exists,
// only jumps are returned.
func (b Board) Moves() []Move {
	var jumps []Move
	own := b.ownMen | b.ownKings
	for m := own; m != 0; m &= m - 1 {
		s := bits.TrailingZeros32(m)
		b.jumpsFrom(s, 0, []int{s}, nil, &jumps)
	}
	if len(jumps) > 0 {
		return jumps
	}
	var moves []Move
	occ := b.occupied()
	for m := own; m != 0; m &= m - 1 {
		s := bits.TrailingZeros32(m)
		for _, d := range b.pieceDirs(s) {
			to := neighbor(s, d[0], d[1])
			if to < 0 || occ&(1<<uint(to)) != 0 {
				continue
			}
			moves = append(moves, Move{Path: []int{s, to}})
		}
	}
	return moves
}

// Apply plays a move (assumed legal, as produced by Moves) and returns the
// position from the opponent's perspective.
func (b Board) Apply(mv Move) Board {
	from := mv.Path[0]
	to := mv.Path[len(mv.Path)-1]
	fromBit := uint32(1) << uint(from)
	toBit := uint32(1) << uint(to)
	isKing := b.ownKings&fromBit != 0

	ownMen, ownKings := b.ownMen, b.ownKings
	if isKing {
		ownKings = (ownKings &^ fromBit) | toBit
	} else if b.isBackRank(to) {
		ownMen &^= fromBit
		ownKings |= toBit // promotion
	} else {
		ownMen = (ownMen &^ fromBit) | toBit
	}
	oppMen, oppKings := b.oppMen, b.oppKings
	for _, c := range mv.Captures {
		cb := uint32(1) << uint(c)
		oppMen &^= cb
		oppKings &^= cb
	}
	return Board{
		ownMen: oppMen, ownKings: oppKings,
		oppMen: ownMen, oppKings: ownKings,
		blackToMove: !b.blackToMove,
	}
}

// Children implements game.Position.
func (b Board) Children() []game.Position {
	moves := b.Moves()
	if len(moves) == 0 {
		return nil // side to move has lost
	}
	out := make([]game.Position, len(moves))
	for i, mv := range moves {
		out[i] = b.Apply(mv)
	}
	return out
}

// Terminal reports whether the side to move has no legal move (loss).
func (b Board) Terminal() bool { return len(b.Moves()) == 0 }

// Value implements game.Position: a lost position scores -10000; otherwise
// material (men 100, kings 160) plus small positional terms (advancement,
// back-rank guard, center control).
func (b Board) Value() game.Value {
	if len(b.Moves()) == 0 {
		return -10000
	}
	score := 100*(bits.OnesCount32(b.ownMen)-bits.OnesCount32(b.oppMen)) +
		160*(bits.OnesCount32(b.ownKings)-bits.OnesCount32(b.oppKings))
	score += b.positional(b.ownMen, b.forwardDir()) - b.positional(b.oppMen, -b.forwardDir())
	return game.Value(score)
}

// positional scores men advancement and structure for a side moving in
// direction dir.
func (b Board) positional(men uint32, dir int) int {
	s := 0
	for m := men; m != 0; m &= m - 1 {
		sq := bits.TrailingZeros32(m)
		r, c := squareRC(sq)
		adv := r
		if dir == -1 {
			adv = 7 - r
		}
		s += 2 * adv // advancement toward promotion
		if adv == 0 {
			s += 3 // guarding the back rank
		}
		if c >= 2 && c <= 5 && r >= 2 && r <= 5 {
			s += 2 // center control
		}
	}
	return s
}

// Pieces returns (own men, own kings, opp men, opp kings) counts.
func (b Board) Pieces() (om, ok, pm, pk int) {
	return bits.OnesCount32(b.ownMen), bits.OnesCount32(b.ownKings),
		bits.OnesCount32(b.oppMen), bits.OnesCount32(b.oppKings)
}

// BlackToMove reports whether Black is the side to move.
func (b Board) BlackToMove() bool { return b.blackToMove }

// Hash returns a 64-bit position hash for transposition tables.
func (b Board) Hash() uint64 {
	h := uint64(b.ownMen) | uint64(b.ownKings)<<32
	h2 := uint64(b.oppMen) | uint64(b.oppKings)<<32
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= h2 * 0x94D049BB133111EB
	if b.blackToMove {
		h ^= 0xD1B54A32D192ED03
	}
	h = (h ^ (h >> 27)) * 0xBF58476D1CE4E5B9
	return h ^ (h >> 31)
}

// String renders the board; the side to move's pieces are 'o'/'O' (men/
// kings), the opponent's 'x'/'X'.
func (b Board) String() string {
	var sb strings.Builder
	side := "BLACK"
	if !b.blackToMove {
		side = "WHITE"
	}
	fmt.Fprintf(&sb, "turn: %s (o moves %+d rows)\n", side, b.forwardDir())
	for r := 7; r >= 0; r-- {
		for c := 0; c < 8; c++ {
			s := rcSquare(r, c)
			if s < 0 {
				sb.WriteString("  ")
				continue
			}
			bit := uint32(1) << uint(s)
			switch {
			case b.ownMen&bit != 0:
				sb.WriteString("o ")
			case b.ownKings&bit != 0:
				sb.WriteString("O ")
			case b.oppMen&bit != 0:
				sb.WriteString("x ")
			case b.oppKings&bit != 0:
				sb.WriteString("X ")
			default:
				sb.WriteString(". ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
