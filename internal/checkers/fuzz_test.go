package checkers

import "testing"

// FuzzGamePlay drives random checkers games and verifies the rules
// invariants: piece counts never grow, captures remove exactly the jumped
// pieces, kings only appear by promotion, and every generated move applies
// cleanly.
func FuzzGamePlay(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5, 5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := Start()
		for _, pick := range data {
			moves := b.Moves()
			if len(moves) == 0 {
				break
			}
			mv := moves[int(pick)%len(moves)]
			if len(mv.Path) < 2 {
				t.Fatalf("degenerate move %v", mv)
			}
			om, ok, pm, pk := b.Pieces()
			before := om + ok + pm + pk
			nb := b.Apply(mv)
			nm, nk, qm, qk := nb.Pieces()
			after := nm + nk + qm + qk
			if after != before-len(mv.Captures) {
				t.Fatalf("pieces %d -> %d with %d captures: %v\n%s", before, after, len(mv.Captures), mv, b)
			}
			// The mover's piece count is preserved (now on the opp side).
			if qm+qk != om+ok {
				t.Fatalf("mover's pieces changed: %d -> %d", om+ok, qm+qk)
			}
			if nb.Hash() == b.Hash() {
				t.Fatalf("hash unchanged by move %v", mv)
			}
			b = nb
		}
	})
}
