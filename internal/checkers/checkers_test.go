package checkers

import (
	"math/rand"
	"strings"
	"testing"

	"ertree/internal/game"
	"ertree/internal/serial"
)

func TestStartPosition(t *testing.T) {
	b := Start()
	om, ok, pm, pk := b.Pieces()
	if om != 12 || pm != 12 || ok != 0 || pk != 0 {
		t.Fatalf("start pieces %d/%d men, %d/%d kings", om, pm, ok, pk)
	}
	if !b.BlackToMove() {
		t.Fatal("Black moves first")
	}
	moves := b.Moves()
	// Black's opening: men on row 2 (squares 8-11) each have up to two
	// forward steps; the classic count is 7.
	if len(moves) != 7 {
		t.Fatalf("start has %d moves, want 7:\n%v", len(moves), moves)
	}
	for _, m := range moves {
		if len(m.Captures) != 0 {
			t.Fatalf("opening move with captures: %v", m)
		}
	}
}

func TestSquareGeometry(t *testing.T) {
	// All 32 squares round-trip and are dark.
	for s := 0; s < 32; s++ {
		r, c := squareRC(s)
		if (r+c)&1 != 1 {
			t.Fatalf("square %d maps to light cell (%d,%d)", s, r, c)
		}
		if rcSquare(r, c) != s {
			t.Fatalf("square %d round-trips to %d", s, rcSquare(r, c))
		}
	}
	if rcSquare(0, 0) != -1 || rcSquare(-1, 1) != -1 || rcSquare(8, 1) != -1 {
		t.Fatal("invalid coordinates accepted")
	}
}

// build constructs a position from piece lists (1-based square numbers,
// matching standard checkers notation).
func build(blackMen, blackKings, whiteMen, whiteKings []int, blackToMove bool) Board {
	bm, bk, wm, wk := mask(blackMen), mask(blackKings), mask(whiteMen), mask(whiteKings)
	if blackToMove {
		return Board{ownMen: bm, ownKings: bk, oppMen: wm, oppKings: wk, blackToMove: true}
	}
	return Board{ownMen: wm, ownKings: wk, oppMen: bm, oppKings: bk, blackToMove: false}
}

func mask(squares []int) uint32 {
	var m uint32
	for _, s := range squares {
		m |= 1 << uint(s-1)
	}
	return m
}

func TestForcedCapture(t *testing.T) {
	// Black man on square 14 (row 3), White man on 18 (row 4) diagonally
	// adjacent: Black must jump.
	b := build([]int{14}, nil, []int{18}, nil, true)
	moves := b.Moves()
	if len(moves) != 1 {
		t.Fatalf("%d moves, want 1 forced jump:\n%s%v", len(moves), b, moves)
	}
	if len(moves[0].Captures) != 1 {
		t.Fatalf("move is not a capture: %v", moves[0])
	}
	after := b.Apply(moves[0])
	_, _, pm, pk := after.Pieces() // from White's perspective: opp = Black
	om, ok2, _, _ := after.Pieces()
	_ = pm
	_ = pk
	if om != 0 || ok2 != 0 {
		t.Fatalf("White should have no pieces left, has %d men %d kings:\n%s", om, ok2, after)
	}
}

func TestMultiJump(t *testing.T) {
	// Black man on 1; White men placed for a double jump: over 6 landing
	// 10 is wrong geometry — construct via neighbor arithmetic instead.
	s0 := 0 // square 1 (0-based 0)
	over1 := neighbor(s0, 1, 1)
	land1 := neighbor(s0, 2, 2)
	over2 := neighbor(land1, 1, 1)
	land2 := neighbor(land1, 2, 2)
	if over1 < 0 || land1 < 0 || over2 < 0 || land2 < 0 {
		t.Fatal("bad geometry for the fixture")
	}
	b := build([]int{s0 + 1}, nil, []int{over1 + 1, over2 + 1}, nil, true)
	moves := b.Moves()
	if len(moves) != 1 {
		t.Fatalf("%d moves, want the single double-jump:\n%s%v", len(moves), b, moves)
	}
	if len(moves[0].Captures) != 2 {
		t.Fatalf("expected a double jump, got %v", moves[0])
	}
	after := b.Apply(moves[0])
	om, ok2, _, _ := after.Pieces() // own = White now
	if om != 0 || ok2 != 0 {
		t.Fatalf("both White men should be captured:\n%s", after)
	}
}

func TestPromotion(t *testing.T) {
	// Black man one step from the back rank (row 6 -> row 7).
	from := rcSquare(6, 1)
	to := neighbor(from, 1, 1)
	b := build([]int{from + 1}, nil, []int{1}, nil, true) // white man parked on square 1
	var promoting *Move
	for i, m := range b.Moves() {
		if m.Path[len(m.Path)-1] == to {
			promoting = &b.Moves()[i]
			break
		}
	}
	if promoting == nil {
		t.Fatalf("no move to the back rank found: %v", b.Moves())
	}
	after := b.Apply(*promoting)
	_, _, pm, pk := after.Pieces() // opp = Black from White's view
	if pm != 0 || pk != 1 {
		t.Fatalf("promotion failed: opp has %d men %d kings\n%s", pm, pk, after)
	}
}

func TestPromotionEndsJumpSequence(t *testing.T) {
	// A man jumping onto the back rank stops even if another jump would be
	// available to a king.
	from := rcSquare(5, 2)
	over := neighbor(from, 1, 1) // row 6
	land := neighbor(from, 2, 2) // row 7: promotes
	if from < 0 || over < 0 || land < 0 {
		t.Fatal("bad geometry")
	}
	// Place a second white piece that WOULD be jumpable from `land` going
	// backward (only a king could).
	back := neighbor(land, -1, -1)
	_ = back
	b := build([]int{from + 1}, nil, []int{over + 1, 5}, nil, true)
	for _, m := range b.Moves() {
		if m.Path[len(m.Path)-1] == land && len(m.Captures) > 1 {
			t.Fatalf("jump continued past promotion: %v", m)
		}
	}
}

func TestKingMovesBackward(t *testing.T) {
	s := rcSquare(4, 3)
	b := build(nil, []int{s + 1}, []int{29}, nil, true)
	dirs := 0
	for _, m := range b.Moves() {
		if m.Path[0] == s {
			dirs++
		}
	}
	if dirs != 4 {
		t.Fatalf("king has %d moves, want 4:\n%s%v", dirs, b, b.Moves())
	}
}

func TestManCannotMoveBackward(t *testing.T) {
	s := rcSquare(4, 3)
	b := build([]int{s + 1}, nil, []int{29}, nil, true)
	for _, m := range b.Moves() {
		to := m.Path[len(m.Path)-1]
		tr, _ := squareRC(to)
		if tr <= 4 && m.Path[0] == s {
			t.Fatalf("man moved sideways/backward: %v", m)
		}
	}
}

func TestNoMovesIsLoss(t *testing.T) {
	// White to move with a single man completely blocked in a corner by
	// Black pieces it cannot jump (double-blocked).
	// White man on square 29 (0-based 28, row 7 corner region)... use
	// geometry: White man at top row cannot move forward (dir -1 is down);
	// block both diagonals with protected black pieces.
	wm := rcSquare(0, 1) // White man on the bottom row moving -1: no rows below -> stuck
	b := build([]int{32}, nil, []int{wm + 1}, nil, false)
	if !b.Terminal() {
		t.Fatalf("expected terminal (White stuck):\n%s%v", b, b.Moves())
	}
	if b.Value() != -10000 {
		t.Fatalf("stuck side value %d, want -10000", b.Value())
	}
	if b.Children() != nil {
		t.Fatal("terminal position has children")
	}
}

func TestEvaluatorAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := Start()
	for i := 0; i < 30 && !b.Terminal(); i++ {
		swapped := Board{
			ownMen: b.oppMen, ownKings: b.oppKings,
			oppMen: b.ownMen, oppKings: b.ownKings,
			blackToMove: !b.blackToMove,
		}
		if !b.Terminal() && !swapped.Terminal() {
			if b.Value() != -swapped.Value() {
				t.Fatalf("evaluator not antisymmetric at ply %d: %d vs %d\n%s", i, b.Value(), swapped.Value(), b)
			}
		}
		moves := b.Moves()
		b = b.Apply(moves[rng.Intn(len(moves))])
	}
}

func TestPieceConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for g := 0; g < 20; g++ {
		b := Start()
		for i := 0; i < 60 && !b.Terminal(); i++ {
			om, ok, pm, pk := b.Pieces()
			before := om + ok + pm + pk
			moves := b.Moves()
			mv := moves[rng.Intn(len(moves))]
			b = b.Apply(mv)
			om, ok, pm, pk = b.Pieces()
			after := om + ok + pm + pk
			if after != before-len(mv.Captures) {
				t.Fatalf("pieces %d -> %d with %d captures", before, after, len(mv.Captures))
			}
			if om+ok > 12 || pm+pk > 12 {
				t.Fatalf("side exceeds 12 pieces")
			}
		}
	}
}

func TestSearchAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		b := Start()
		for i := 0; i < rng.Intn(12); i++ {
			if b.Terminal() {
				break
			}
			moves := b.Moves()
			b = b.Apply(moves[rng.Intn(len(moves))])
		}
		var s serial.Searcher
		want := s.Negmax(b, 5)
		if got := s.AlphaBeta(b, 5, game.FullWindow()); got != want {
			t.Fatalf("trial %d: alpha-beta %d, negmax %d\n%s", trial, got, want, b)
		}
		if got := s.ER(b, 5, game.FullWindow()); got != want {
			t.Fatalf("trial %d: ER %d, negmax %d\n%s", trial, got, want, b)
		}
	}
}

func TestMoveNotation(t *testing.T) {
	b := Start()
	moves := b.Moves()
	for _, m := range moves {
		s := m.String()
		if !strings.Contains(s, "-") {
			t.Fatalf("quiet move notation %q missing '-'", s)
		}
	}
	jump := Move{Path: []int{13, 22}, Captures: []int{17}}
	if jump.String() != "14x23" {
		t.Fatalf("jump notation %q, want 14x23", jump.String())
	}
}

func TestHashDiscriminates(t *testing.T) {
	a := Start()
	moves := a.Moves()
	b := a.Apply(moves[0])
	if a.Hash() == b.Hash() {
		t.Fatal("hash unchanged by a move")
	}
	if a.Hash() != Start().Hash() {
		t.Fatal("equal positions hash differently")
	}
}

func TestRenderShowsSide(t *testing.T) {
	s := Start().String()
	if !strings.Contains(s, "BLACK") {
		t.Fatalf("render missing side to move:\n%s", s)
	}
}
