package ttt

import (
	"testing"

	"ertree/internal/game"
	"ertree/internal/serial"
)

func TestEmptyBoardIsADraw(t *testing.T) {
	// Figure 1: with optimal play tic-tac-toe is a draw (root value 0).
	var s serial.Searcher
	if got := s.Negmax(New(), 9); got != 0 {
		t.Fatalf("negmax(empty) = %d, want 0", got)
	}
	if got := s.AlphaBeta(New(), 9, game.FullWindow()); got != 0 {
		t.Fatalf("alpha-beta(empty) = %d, want 0", got)
	}
	if got := s.ER(New(), 9, game.FullWindow()); got != 0 {
		t.Fatalf("ER(empty) = %d, want 0", got)
	}
}

func TestAlphaBetaPrunesTicTacToe(t *testing.T) {
	var ab, nm game.Stats
	sa := serial.Searcher{Stats: &ab}
	sn := serial.Searcher{Stats: &nm}
	sa.AlphaBeta(New(), 9, game.FullWindow())
	sn.Negmax(New(), 9)
	if ab.Generated.Load() >= nm.Generated.Load() {
		t.Fatalf("alpha-beta generated %d nodes, negmax %d", ab.Generated.Load(), nm.Generated.Load())
	}
	t.Logf("negmax: %d nodes; alpha-beta: %d nodes", nm.Generated.Load(), ab.Generated.Load())
}

func TestImmediateWinDetected(t *testing.T) {
	// X to move with two in a row: value +1 at depth 1.
	b := Parse("XX. OO. ...")
	if b.toMove != 1 {
		t.Fatalf("expected X to move, got %d", b.toMove)
	}
	var s serial.Searcher
	if got := s.Negmax(b, 9); got != 1 {
		t.Fatalf("negmax = %d, want 1 (X wins by playing cell 2)", got)
	}
}

func TestForcedLoss(t *testing.T) {
	// O to move; X (cells 0, 3, 4) threatens two lines — cell 5 completes
	// 3-4-5 and cell 8 completes 0-4-8 — and O has no winning reply, so O
	// cannot block both and loses.
	b := Parse("X.O XX. O..")
	if b.toMove != 2 {
		t.Fatalf("expected O to move, got %d", b.toMove)
	}
	var s serial.Searcher
	if got := s.Negmax(b, 9); got != -1 {
		t.Fatalf("negmax = %d, want -1 (O is lost)", got)
	}
}

func TestTerminalPositions(t *testing.T) {
	win := Parse("XXX OO. ...")
	if !win.Terminal() {
		t.Fatal("completed line not terminal")
	}
	if win.Children() != nil {
		t.Fatal("terminal position has children")
	}
	// The winner is X and it is O's turn, so the mover's value is -1.
	if win.Value() != -1 {
		t.Fatalf("value = %d, want -1", win.Value())
	}
	draw := Parse("XOX XXO OXO")
	if !draw.Terminal() || draw.Value() != 0 {
		t.Fatalf("draw: terminal=%v value=%d", draw.Terminal(), draw.Value())
	}
}

func TestMoveLegality(t *testing.T) {
	b := New()
	b2, ok := b.Move(4)
	if !ok || b2.cells[4] != 1 || b2.toMove != 2 {
		t.Fatal("legal move rejected or misapplied")
	}
	if _, ok := b2.Move(4); ok {
		t.Fatal("occupied cell accepted")
	}
	if _, ok := b2.Move(-1); ok {
		t.Fatal("out-of-range cell accepted")
	}
	win := Parse("XXX OO. ...")
	if _, ok := win.Move(8); ok {
		t.Fatal("move after game over accepted")
	}
}

func TestChildCountMatchesEmptyCells(t *testing.T) {
	b := New()
	if n := len(b.Children()); n != 9 {
		t.Fatalf("empty board has %d children, want 9", n)
	}
	b, _ = b.Move(0)
	if n := len(b.Children()); n != 8 {
		t.Fatalf("after one move: %d children, want 8", n)
	}
}

func TestFullGameTreeSize(t *testing.T) {
	// The complete tic-tac-toe tree (terminating at wins) has a known node
	// count: 549946 including the root.
	var count func(b Board) int
	count = func(b Board) int {
		n := 1
		for _, c := range b.Children() {
			n += count(c.(Board))
		}
		return n
	}
	if got := count(New()); got != 549946 {
		t.Fatalf("full tree size %d, want 549946", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	b := Parse("X.O .X. O.X")
	s := b.String()
	if s != "X.O\n.X.\nO.X\n" {
		t.Fatalf("render:\n%s", s)
	}
	if b.toMove != 2 {
		t.Fatalf("X has one extra piece; O to move, got %d", b.toMove)
	}
}
