// Package ttt implements tic-tac-toe, the game of the paper's Figure 1. Its
// complete game tree is small enough to search exhaustively, which makes it a
// useful end-to-end oracle: the value of the empty board is 0 (a draw, as
// Figure 1 shows), and every search algorithm must reproduce that.
package ttt

import (
	"strings"

	"ertree/internal/game"
)

// Board is a tic-tac-toe position. Cells are indexed 0..8 row-major. X moves
// first; ToMove is the player whose turn it is. Board implements
// game.Position from the point of view of ToMove.
type Board struct {
	cells  [9]int8 // 0 empty, 1 X, 2 O
	toMove int8    // 1 or 2
}

var _ game.Position = Board{}

// New returns the empty board with X to move.
func New() Board { return Board{toMove: 1} }

// Parse builds a board from a 9-character string of 'X', 'O' and '.'
// (whitespace ignored). The side to move is inferred from the piece counts.
func Parse(s string) Board {
	b := Board{}
	i := 0
	var nx, no int
	for _, r := range s {
		switch r {
		case 'X', 'x':
			b.cells[i] = 1
			nx++
			i++
		case 'O', 'o':
			b.cells[i] = 2
			no++
			i++
		case '.':
			i++
		}
		if i == 9 {
			break
		}
	}
	if nx > no {
		b.toMove = 2
	} else {
		b.toMove = 1
	}
	return b
}

var lines = [8][3]int{
	{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, // rows
	{0, 3, 6}, {1, 4, 7}, {2, 5, 8}, // columns
	{0, 4, 8}, {2, 4, 6}, // diagonals
}

// winner returns 1 or 2 if that player has three in a row, else 0.
func (b Board) winner() int8 {
	for _, l := range lines {
		c := b.cells[l[0]]
		if c != 0 && c == b.cells[l[1]] && c == b.cells[l[2]] {
			return c
		}
	}
	return 0
}

// full reports whether every cell is occupied.
func (b Board) full() bool {
	for _, c := range b.cells {
		if c == 0 {
			return false
		}
	}
	return true
}

// Children returns the positions reachable in one move; the game tree
// terminates at wins and full boards, exactly as in Figure 1.
func (b Board) Children() []game.Position {
	if b.winner() != 0 || b.full() {
		return nil
	}
	var out []game.Position
	for i, c := range b.cells {
		if c != 0 {
			continue
		}
		nb := b
		nb.cells[i] = b.toMove
		nb.toMove = 3 - b.toMove
		out = append(out, nb)
	}
	return out
}

// Value scores the position for the player to move: -1 loss (the opponent
// has completed a line), 0 otherwise. A win for the player to move is
// impossible in a reachable terminal position (the winning move ends the
// game), matching Figure 1's labels of -1, 0, +1 from the mover's view.
func (b Board) Value() game.Value {
	w := b.winner()
	switch {
	case w == 0:
		return 0
	case w == b.toMove:
		return 1
	default:
		return -1
	}
}

// Move returns the board after the player to move plays cell i, and whether
// the move was legal.
func (b Board) Move(i int) (Board, bool) {
	if i < 0 || i > 8 || b.cells[i] != 0 || b.winner() != 0 {
		return b, false
	}
	nb := b
	nb.cells[i] = b.toMove
	nb.toMove = 3 - b.toMove
	return nb, true
}

// Terminal reports whether the game is over.
func (b Board) Terminal() bool { return b.winner() != 0 || b.full() }

// String renders the board.
func (b Board) String() string {
	var sb strings.Builder
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			switch b.cells[3*r+c] {
			case 1:
				sb.WriteByte('X')
			case 2:
				sb.WriteByte('O')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Hash returns a 64-bit position hash for transposition tables: the board
// encoded in base 3 plus the side to move, diffused.
func (b Board) Hash() uint64 {
	var code uint64
	for _, c := range b.cells {
		code = code*3 + uint64(c)
	}
	code = code*3 + uint64(b.toMove)
	code += 0x9E3779B97F4A7C15
	code = (code ^ (code >> 30)) * 0xBF58476D1CE4E5B9
	code = (code ^ (code >> 27)) * 0x94D049BB133111EB
	return code ^ (code >> 31)
}
