package core

import (
	"testing"

	"ertree/internal/randtree"
)

// TestSimulateGolden pins the simulated runtime's exact output — value, node
// accounting, virtual-time makespan and the loss decomposition — on a fixed
// random tree across a spread of configurations (serial cut-over on and off,
// high worker counts, the bound spec-rank with eager admission). The
// simulator is the repo's reproduction of the paper's measurements, so any
// engine change that alters these numbers is by definition a model change
// and must update this table deliberately, with the reason recorded in the
// commit. In particular the real-runtime optimizations (per-worker stats
// shards, batched heap pushes, node arenas, transposition tables) are
// required to leave every row byte-identical.
func TestSimulateGolden(t *testing.T) {
	tr := &randtree.Tree{Seed: 0x60_0D, Degree: 4, Depth: 9, ValueRange: 10000}
	type golden struct {
		name                 string
		workers, serialDepth int
		rank                 SpecRank
		eager                bool

		value                           int
		generated, evaluated, sortEvals int64
		cutoffs                         int64
		maxPly                          int
		refutations, refuteFails        int64
		virtualTime, busyTime           int64
		starveTime, lockTime            int64
		serialTasks, leafTasks          int64
		specPops, dropped               int64
		cutoffDrops, heapOps            int64
	}
	rows := []golden{
		{
			name: "P1-sd4", workers: 1, serialDepth: 4,
			value: 4785, generated: 48336, evaluated: 20802, cutoffs: 7368,
			maxPly: 9, refutations: 6176, refuteFails: 2609,
			virtualTime: 113566, busyTime: 113566, starveTime: 0, lockTime: 0,
			serialTasks: 459, leafTasks: 0, specPops: 0, dropped: 5,
			cutoffDrops: 31, heapOps: 2141,
		},
		{
			name: "P4-sd4", workers: 4, serialDepth: 4,
			value: 4785, generated: 69779, evaluated: 29667, cutoffs: 10807,
			maxPly: 9, refutations: 8798, refuteFails: 3644,
			virtualTime: 41120, busyTime: 162874, starveTime: 188, lockTime: 965,
			serialTasks: 653, leafTasks: 0, specPops: 99, dropped: 89,
			cutoffDrops: 37, heapOps: 3118,
		},
		{
			name: "P16-sd4", workers: 16, serialDepth: 4,
			value: 4785, generated: 81949, evaluated: 34558, cutoffs: 12785,
			maxPly: 9, refutations: 10103, refuteFails: 4133,
			virtualTime: 17290, busyTime: 190407, starveTime: 75454, lockTime: 10779,
			serialTasks: 758, leafTasks: 0, specPops: 219, dropped: 122,
			cutoffDrops: 37, heapOps: 3658,
		},
		{
			name: "P4-sd0", workers: 4, serialDepth: 0,
			value: 4785, generated: 47988, evaluated: 31880, cutoffs: 9867,
			maxPly: 9, refutations: 14099, refuteFails: 2411,
			virtualTime: 223385, busyTime: 319025, starveTime: 30, lockTime: 574485,
			serialTasks: 0, leafTasks: 31880, specPops: 1941, dropped: 6031,
			cutoffDrops: 333, heapOps: 132620,
		},
		{
			name: "P3-sd2-bound-eager", workers: 3, serialDepth: 2,
			rank: SpecRankBound, eager: true,
			value: 4785, generated: 62231, evaluated: 27296, cutoffs: 9598,
			maxPly: 9, refutations: 8968, refuteFails: 2930,
			virtualTime: 64721, busyTime: 176015, starveTime: 16, lockTime: 18108,
			serialTasks: 5184, leafTasks: 0, specPops: 407, dropped: 459,
			cutoffDrops: 152, heapOps: 24298,
		},
	}
	for _, g := range rows {
		t.Run(g.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Workers = g.workers
			opt.SerialDepth = g.serialDepth
			opt.SpecRank = g.rank
			opt.EagerSpec = g.eager
			res, err := Simulate(tr.Root(), 9, opt, DefaultCostModel())
			if err != nil {
				t.Fatal(err)
			}
			check := func(field string, got, want int64) {
				if got != want {
					t.Errorf("%s = %d, want %d", field, got, want)
				}
			}
			check("Value", int64(res.Value), int64(g.value))
			check("Generated", res.Stats.Generated, g.generated)
			check("Evaluated", res.Stats.Evaluated, g.evaluated)
			check("SortEvals", res.Stats.SortEvals, g.sortEvals)
			check("Cutoffs", res.Stats.Cutoffs, g.cutoffs)
			check("MaxPlySeen", int64(res.Stats.MaxPlySeen), int64(g.maxPly))
			check("Refutations", res.Stats.Refutations, g.refutations)
			check("RefuteFails", res.Stats.RefuteFails, g.refuteFails)
			check("VirtualTime", res.VirtualTime, g.virtualTime)
			check("BusyTime", res.BusyTime, g.busyTime)
			check("StarveTime", res.StarveTime, g.starveTime)
			check("LockTime", res.LockTime, g.lockTime)
			check("SerialTasks", res.SerialTasks, g.serialTasks)
			check("LeafTasks", res.LeafTasks, g.leafTasks)
			check("SpecPops", res.SpecPops, g.specPops)
			check("Dropped", res.Dropped, g.dropped)
			check("CutoffDrops", res.CutoffDrops, g.cutoffDrops)
			check("HeapOps", res.HeapOps, g.heapOps)
			// A transposition table must never perturb the model: Simulate
			// ignores Options.Table.
			if res.TTProbes != 0 || res.TTHits != 0 || res.TTStores != 0 {
				t.Errorf("simulated run touched the transposition table: probes %d hits %d stores %d",
					res.TTProbes, res.TTHits, res.TTStores)
			}
		})
	}
}
