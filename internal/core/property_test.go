package core

import (
	"runtime"
	"testing"

	"ertree/internal/checkers"
	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/serial"
	"ertree/internal/tt"
	"ertree/internal/ttt"
)

// TestSearchMatchesNegamaxWithTT is the exactness property test for the real
// runtime under full concurrency: for every game and depth, parallel Search
// with many workers and a shared transposition table must return exactly the
// serial negamax value. Run with -race (as CI does) this also exercises the
// per-worker stats shards, the batched heap pushes, and the concurrent
// TT probe/store paths for data races.
func TestSearchMatchesNegamaxWithTT(t *testing.T) {
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	cases := []struct {
		name   string
		pos    game.Position
		depths []int
	}{
		{"ttt", ttt.New(), []int{4, 6, 9}},
		{"connect4", connect4.New(), []int{4, 6, 8}},
		{"othello", othello.Start(), []int{3, 5}},
		{"checkers", checkers.Start(), []int{4, 6}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, depth := range c.depths {
				oracle := (&serial.Searcher{}).Negmax(c.pos, depth)
				table := tt.NewDefault(14, 8)
				opt := DefaultOptions()
				opt.Workers = workers
				opt.SerialDepth = depth / 2
				opt.Table = table
				res, err := Search(c.pos, depth, opt)
				if err != nil {
					t.Fatalf("depth %d: %v", depth, err)
				}
				if res.Value != oracle {
					t.Errorf("depth %d: Search = %d, serial negamax = %d",
						depth, res.Value, oracle)
				}
				if res.SerialTasks > 0 && res.TTProbes == 0 {
					t.Errorf("depth %d: %d serial tasks ran but the table was never probed",
						depth, res.SerialTasks)
				}
				if res.TTProbes > 0 && res.TTStores == 0 && res.TTCutoffs != res.TTProbes {
					t.Errorf("depth %d: probes %d, cutoffs %d, but nothing stored",
						depth, res.TTProbes, res.TTCutoffs)
				}
			}
		})
	}
}

// TestSearchTableReuseAcrossRuns: a second identical search over a warm table
// must still be exact and must observe hits from the first run's stores.
func TestSearchTableReuseAcrossRuns(t *testing.T) {
	pos := connect4.New()
	const depth = 8
	oracle := (&serial.Searcher{}).Negmax(pos, depth)
	table := tt.NewDefault(14, 8)
	opt := DefaultOptions()
	opt.Workers = 4
	opt.SerialDepth = 4
	opt.Table = table

	first, err := Search(pos, depth, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Search(pos, depth, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != oracle || second.Value != oracle {
		t.Fatalf("values %d, %d; want %d", first.Value, second.Value, oracle)
	}
	if first.TTStores == 0 {
		t.Fatal("cold run stored nothing")
	}
	if second.TTHits == 0 {
		t.Error("warm run over a populated table saw no hits")
	}
}

// TestArenaReleasedAfterSearch: once Search returns, no node allocated during
// the run remains reachable — the arena blocks are zeroed (severing every
// position, parent, kid and move reference) and the state drops its block
// list, so retained pointers cannot pin the tree or its positions for the GC.
func TestArenaReleasedAfterSearch(t *testing.T) {
	var blocks [][]node
	var allocated int
	testStateHook = func(s *state) {
		blocks = append([][]node(nil), s.arena.blocks...)
		allocated = s.arena.allocated()
	}
	defer func() { testStateHook = nil }()

	opt := DefaultOptions()
	opt.Workers = 2
	opt.SerialDepth = 3
	if _, err := Search(ttt.New(), 7, opt); err != nil {
		t.Fatal(err)
	}
	if allocated == 0 || len(blocks) == 0 {
		t.Fatal("search allocated no arena nodes")
	}
	for bi, blk := range blocks {
		for ni := range blk {
			n := &blk[ni]
			if n.pos != nil || n.parent != nil || n.kids != nil || n.moves != nil {
				t.Fatalf("block %d node %d still holds references after release", bi, ni)
			}
			if n.seq != 0 || n.value != 0 || n.done || n.expanded {
				t.Fatalf("block %d node %d not zeroed after release", bi, ni)
			}
		}
	}
}
