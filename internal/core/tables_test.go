package core

// Unit tests for the paper's Table 1 (node-generation rules) and Table 2
// (combination rules), exercised directly on the engine state machine with
// hand-built trees (DESIGN.md experiments T1 and T2).

import (
	"testing"

	"ertree/internal/game"
	"ertree/internal/gtree"
)

// harness builds a state around a small explicit tree and provides direct
// access to the worker actions without running workers.
type harness struct {
	s *state
	w *wctx
}

func newHarness(root *gtree.Node, depth int, opt Options) *harness {
	h := &harness{
		s: newState(root, depth, opt, DefaultCostModel()),
		w: newWctx(newRealRuntime()),
	}
	h.s.seedRoot()
	return h
}

// step pops one node from the problem heap and performs its worker action,
// returning the node (or nil if the heap was empty).
func (h *harness) step(t *testing.T) *node {
	t.Helper()
	h.w.rt.Lock()
	defer h.w.rt.Unlock()
	n, fromSpec := h.s.heap.pop()
	if n == nil {
		return nil
	}
	if fromSpec {
		h.s.specAction(n, h.w)
		return n
	}
	if !n.alive() {
		return n
	}
	w := n.window()
	if w.Empty() || n.value >= w.Beta {
		h.s.cutoffAtPop(n, w, h.w)
		return n
	}
	switch {
	case n.depth == 0:
		h.w.rt.Unlock()
		v := n.pos.Value()
		h.w.rt.Lock()
		h.s.finish(n, v, h.w)
	case n.depth <= h.s.opt.SerialDepth && n.typ == eNode:
		h.s.serialTask(n, w, h.w)
	case n.examine:
		h.s.examineTask(n, w, h.w)
	default:
		if !n.expanded && !h.s.expandTask(n, h.w) {
			return n
		}
		if len(n.moves) == 0 {
			h.w.rt.Unlock()
			v := n.pos.Value()
			h.w.rt.Lock()
			h.s.finish(n, v, h.w)
			return n
		}
		h.s.table1(n, h.w)
	}
	return n
}

// wideTree returns a depth-3 complete tree of degree d.
func wideTree(d int) *gtree.Node {
	v := 0
	return gtree.Complete(d, 3, func(i int) game.Value { v++; return game.Value((v*37)%21 - 10) })
}

// TestTable1ENodeGeneratesAllChildren: "E-node: generate all children,
// assign each child 'undecided' type, place each child on primary queue."
func TestTable1ENodeGeneratesAllChildren(t *testing.T) {
	h := newHarness(wideTree(3), 3, DefaultOptions())
	root := h.step(t) // pops the root e-node
	if root != h.s.root {
		t.Fatalf("first pop was not the root")
	}
	if len(root.kids) != 3 || root.activeKids != 3 {
		t.Fatalf("root generated %d children (active %d), want 3", len(root.kids), root.activeKids)
	}
	for _, k := range root.kids {
		if k.typ != undecided {
			t.Fatalf("child type %v, want undecided", k.typ)
		}
		if !k.inPrimary {
			t.Fatalf("child not on the primary queue")
		}
	}
}

// TestTable1UndecidedGeneratesFirstChildAsENode: "Undecided: generate first
// child (an 'e-node') and place on primary queue."
func TestTable1UndecidedGeneratesFirstChildAsENode(t *testing.T) {
	h := newHarness(wideTree(3), 3, DefaultOptions())
	h.step(t) // root
	u := h.step(t)
	if u.typ != undecided {
		t.Fatalf("expected an undecided child next (deepest-first), got %v", u.typ)
	}
	if len(u.kids) != 1 {
		t.Fatalf("undecided generated %d children, want 1", len(u.kids))
	}
	if u.kids[0].typ != eNode {
		t.Fatalf("first child of undecided is %v, want e-node", u.kids[0].typ)
	}
	// Remaining moves are known but not materialized.
	if len(u.moves) != 3 {
		t.Fatalf("moves %d, want 3", len(u.moves))
	}
}

// TestTable1RNodeSequentialGeneration: an r-node examines one child at a
// time; the next child is generated only after the current one completes,
// and subsequent children are typed r-node.
func TestTable1RNodeSequentialGeneration(t *testing.T) {
	// Drive a full small search at P=1 and inspect an r-node's history:
	// after the run, r-children of e-nodes must have been examined in
	// sequence (each kid index i generated only when kids[<i] are done).
	// The state machine asserts ordering during the run; here we check the
	// final shape: any r-node's kids are e-node first, r-nodes after.
	h := newHarness(wideTree(3), 3, DefaultOptions())
	for h.step(t) != nil {
	}
	if !h.s.root.done {
		t.Fatal("search did not finish")
	}
	var walk func(n *node)
	checked := 0
	walk = func(n *node) {
		if n.typ == rNode && len(n.kids) > 0 && !n.kids[0].isEChild {
			if n.kids[0].typ != eNode {
				t.Fatalf("r-node's first child is %v, want e-node", n.kids[0].typ)
			}
			for _, k := range n.kids[1:] {
				if k.typ != rNode {
					t.Fatalf("r-node's later child is %v, want r-node", k.typ)
				}
			}
			checked++
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(h.s.root)
	if checked == 0 {
		t.Fatal("no r-nodes with children were produced; test tree too small")
	}
}

// TestTable2SpeculativeInsertionAtAllButOne: "E-node: all but one of the
// elder grandchildren are evaluated -> place node on speculative queue."
func TestTable2SpeculativeInsertionAtAllButOne(t *testing.T) {
	h := newHarness(wideTree(3), 3, DefaultOptions())
	// Run until something lands on the speculative queue; verify the
	// eligibility condition held at insertion.
	for i := 0; i < 10000; i++ {
		if len(h.s.heap.spec) > 0 {
			e := h.s.heap.spec[0]
			if e.typ != eNode {
				t.Fatalf("speculative entry is %v, want e-node", e.typ)
			}
			if e.elderDone < len(e.kids)-1 {
				t.Fatalf("node entered the speculative queue with %d/%d elder grandchildren",
					e.elderDone, len(e.kids))
			}
			if !hasCandidate(e) {
				t.Fatal("speculative entry has no candidate e-child")
			}
			return
		}
		if h.step(t) == nil {
			break
		}
	}
	t.Fatal("nothing ever reached the speculative queue")
}

// TestTable2MandatorySelectionAtAllElders: "E-node: all elder grandchildren
// are evaluated, but an e-child has not been selected -> select the e-child
// and place it on the primary queue." With speculation disabled the
// mandatory path is the only way an e-child appears.
func TestTable2MandatorySelectionAtAllElders(t *testing.T) {
	opt := Options{} // no speculation
	h := newHarness(wideTree(3), 3, opt)
	for h.step(t) != nil {
	}
	if !h.s.root.done {
		t.Fatal("search did not finish")
	}
	// The root must have selected exactly one e-child (no multiples
	// without the speculative queue), and selection happened only after
	// every elder grandchild was evaluated (elderDone reached d).
	eChildren := 0
	for _, k := range h.s.root.kids {
		if k.isEChild {
			eChildren++
		}
	}
	if eChildren != 1 {
		t.Fatalf("root has %d e-children, want exactly 1 without speculation", eChildren)
	}
	if h.s.root.elderDone < len(h.s.root.kids) {
		t.Fatalf("elderDone %d of %d at completion", h.s.root.elderDone, len(h.s.root.kids))
	}
	if h.s.heap.specPops.Load() != 0 {
		t.Fatalf("speculative queue served %d pops while disabled", h.s.heap.specPops.Load())
	}
}

// TestTable2ParallelRefutationRetypes: "E-node: the first e-child has been
// evaluated and remaining children are 'undecided' -> assign each active
// child type 'r-node' and place it on the primary queue."
func TestTable2ParallelRefutationRetypes(t *testing.T) {
	h := newHarness(wideTree(3), 3, DefaultOptions())
	for h.step(t) != nil {
	}
	root := h.s.root
	if !root.refuting {
		t.Fatal("root never entered the refutation phase")
	}
	for _, k := range root.kids {
		if k.isEChild {
			continue
		}
		if k.typ != rNode && !k.done {
			t.Fatalf("non-e-child %v not retyped to r-node", k.typ)
		}
	}
}

// TestTable2SelectsMostOptimisticChild: the e-child must be the child with
// the lowest tentative value (the largest elder grandchild, §5).
func TestTable2SelectsMostOptimisticChild(t *testing.T) {
	// Root with three children whose elder grandchildren have known
	// distinct values. Children of the root (from the opponent's view)
	// have values: child i's first grandchild decides its tentative.
	root := gtree.N(
		gtree.N(gtree.L(5), gtree.L(50)),  // tentative -5
		gtree.N(gtree.L(-9), gtree.L(60)), // tentative 9 -> least promising
		gtree.N(gtree.L(1), gtree.L(70)),  // tentative -1
	)
	opt := Options{} // mandatory path only, deterministic
	h := newHarness(root, 2, opt)
	for h.step(t) != nil {
	}
	if !h.s.root.done {
		t.Fatal("unfinished")
	}
	// The most optimistic child is kid 0 (tentative -5, promising the
	// root +5; kid 1 promises -9... wait: tentative value of child = -5
	// means the child's own value estimate is -5, contributing +5 to the
	// root — the lowest tentative wins).
	var selected *node
	for _, k := range h.s.root.kids {
		if k.isEChild {
			selected = k
		}
	}
	if selected == nil {
		t.Fatal("no e-child selected")
	}
	if selected != h.s.root.kids[0] {
		t.Fatalf("e-child is kid %d, want kid 0 (lowest tentative value)",
			indexOf(h.s.root.kids, selected))
	}
}

func indexOf(kids []*node, n *node) int {
	for i, k := range kids {
		if k == n {
			return i
		}
	}
	return -1
}

// TestTable2UndecidedDoneWhenSingleMove: Eval_first's d=1 rule — an
// undecided node with a single move is done once its only child completes.
func TestTable2UndecidedDoneWhenSingleMove(t *testing.T) {
	root := gtree.N(
		gtree.N(gtree.L(7)), // single-move child
		gtree.N(gtree.L(3), gtree.L(4)),
	)
	h := newHarness(root, 2, DefaultOptions())
	for h.step(t) != nil {
	}
	if !h.s.root.done {
		t.Fatal("unfinished")
	}
	if got := h.s.root.value; got != h.s.root.pos.(*gtree.Node).Negmax() {
		t.Fatalf("value %d, want %d", got, h.s.root.pos.(*gtree.Node).Negmax())
	}
	single := h.s.root.kids[0]
	if len(single.kids) != 1 || !single.done {
		t.Fatalf("single-move child not completed via the d=1 rule")
	}
}

// TestCombineCutoffAbandonsSubtree: a node whose value reaches its beta is
// finished immediately and its queued descendants are dropped at pop time.
func TestCombineCutoffAbandonsSubtree(t *testing.T) {
	// Root with a strong first child (value -10 => root >= 10) and a weak
	// second child whose own children all exceed the bound.
	root := gtree.N(
		gtree.L(-10),
		gtree.N(gtree.L(-3), gtree.L(-4), gtree.L(-5)), // child value 5: contributes -5 < 10
	)
	h := newHarness(root, 2, DefaultOptions())
	for h.step(t) != nil {
	}
	if !h.s.root.done {
		t.Fatal("unfinished")
	}
	if h.s.root.value != 10 {
		t.Fatalf("root value %d, want 10", h.s.root.value)
	}
	// The weak child must have been refuted without examining all of its
	// children (its first child already proves value >= 3 > -10... the
	// refutation bound -root.value = -10 is exceeded immediately).
	weak := h.s.root.kids[1]
	if !weak.done {
		t.Fatal("weak child unresolved")
	}
	if len(weak.kids) == 3 && !weak.cutoff {
		t.Log("note: weak child fully examined (no cutoff taken)")
	}
}

// TestWorkerDispatchMatchesTables is a meta-check: drive complete searches
// over many shapes through the single-step harness and verify the engine
// still produces exact values (the harness replicates the worker loop, so
// divergence would indicate the tests above exercise a different machine
// than the real one).
func TestWorkerDispatchMatchesTables(t *testing.T) {
	for d := 1; d <= 4; d++ {
		root := wideTree(d)
		want := root.Negmax()
		h := newHarness(root, 3, DefaultOptions())
		steps := 0
		for h.step(t) != nil {
			steps++
			if steps > 1_000_000 {
				t.Fatal("runaway")
			}
		}
		if !h.s.root.done || h.s.root.value != want {
			t.Fatalf("degree %d: value %d (done=%v), want %d", d, h.s.root.value, h.s.root.done, want)
		}
	}
}
