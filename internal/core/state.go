package core

import (
	"sync/atomic"
	"time"

	"ertree/internal/game"
	"ertree/internal/serial"
	"ertree/internal/tt"
)

// state is the shared search state: the game tree under construction and the
// problem heap. Tree and heap structure are guarded by the engine's single
// lock (acquired through the Runtime); the paper's implementation likewise
// shares one tree among all processors, and the resulting contention is one
// of its measured loss sources. Counters, by contrast, are atomics (or
// per-worker shards merged at exit) so the real runtime never takes the lock
// just to account for work.
type state struct {
	opt      Options
	cost     CostModel
	heap     problemHeap
	shards   *shardedHeap // non-nil when Options.Sharded selected the sharded heap
	arena    nodeArena
	root     *node
	seq      uint64
	finished bool
	aborted  bool // cancellation requested; workers exit at the next pop-loop check
	stats    *game.Stats

	// engine counters (beyond game.Stats)
	serialTasks atomic.Int64
	leafTasks   atomic.Int64
	dropped     atomic.Int64 // dead nodes discarded at pop time
	cutoffDrops atomic.Int64 // nodes cut off at pop time

	// transposition-table counters (all zero when opt.Table is nil)
	ttProbes  atomic.Int64
	ttHits    atomic.Int64
	ttStores  atomic.Int64
	ttCutoffs atomic.Int64 // serial tasks answered by the table alone
}

// wctx is one worker's execution context: its runtime binding plus private
// shards for statistics and (when hooks are armed) telemetry. Hot-path
// accounting goes to the shards so concurrent workers never contend on the
// sink's cache lines; each shard is merged into its run-wide sink exactly
// once, when the worker exits.
type wctx struct {
	rt    Runtime
	stats *game.Stats

	// shard is the worker's home shard of the sharded heap (stealworker.go);
	// always 0 on the simulator and the global-heap runtime. rng drives the
	// worker's steal victim rotation, seeded from Options.StealSeed.
	shard int
	rng   uint64

	// Telemetry shard (hooks.go); tel is nil when hooks are disabled and
	// every instrumentation call reduces to one pointer test. rec is the
	// flight-recorder ring (events.go), nil unless Hooks.Events > 0; labels
	// arms per-task pprof goroutine labels (Options.ProfileLabels).
	hooks  *Hooks
	tel    *WorkerTelemetry
	rec    *eventRing
	epoch  time.Time
	pops   int // pop counter for heap sampling
	labels bool
}

func newWctx(rt Runtime) *wctx { return &wctx{rt: rt, stats: &game.Stats{}} }

func newState(pos game.Position, depth int, opt Options, cost CostModel) *state {
	s := &state{opt: opt, cost: cost, stats: opt.Stats}
	if s.stats == nil {
		s.stats = &game.Stats{}
	}
	s.root = s.newNode(pos, nil, eNode, depth)
	if opt.RootWindow != nil {
		s.root.rootWin = *opt.RootWindow
	}
	s.stats.AddGenerated(1)
	return s
}

// seedRoot schedules the root node once the heap mode has been decided —
// Search may have swapped in the sharded heap after newState built the tree.
func (s *state) seedRoot() {
	if s.shards != nil {
		s.shards.pushPrimary(s.root, 0)
		return
	}
	s.heap.pushPrimary(s.root)
}

// enqueue schedules n on the active heap: the worker's own shard when the
// sharded heap is selected, the global primary queue otherwise. Lock held.
func (s *state) enqueue(n *node, w *wctx) {
	if s.shards != nil {
		s.shards.pushPrimary(n, w.shard)
		return
	}
	s.heap.pushPrimary(n)
}

// enqueueBatch schedules freshly generated children in one pass. Lock held.
func (s *state) enqueueBatch(ns []*node, w *wctx) {
	if s.shards != nil {
		s.shards.pushPrimaryBatch(ns, w.shard)
		return
	}
	s.heap.pushPrimaryBatch(ns)
}

// enqueueSpec places e-node n on the active speculative queue. Lock held.
func (s *state) enqueueSpec(n *node, w *wctx) {
	if s.shards != nil {
		s.shards.pushSpec(n, w.shard)
		return
	}
	s.heap.pushSpec(n)
}

// release severs the search tree once a result has been extracted: the heap
// slices are dropped and every arena node is zeroed, so no node — and no
// position a node referenced — remains reachable through the state.
func (s *state) release() {
	s.heap.primary, s.heap.spec = nil, nil
	if s.shards != nil {
		s.shards.release()
	}
	s.root = nil
	s.arena.release()
}

func (s *state) newNode(pos game.Position, parent *node, typ nodeType, depth int) *node {
	s.seq++
	n := s.arena.alloc()
	n.pos, n.parent, n.typ, n.depth, n.value, n.seq = pos, parent, typ, depth, -game.Inf, s.seq
	if parent != nil {
		n.ply = parent.ply + 1
		n.specBorn = parent.specBorn
	} else {
		n.rootWin = game.FullWindow()
	}
	return n
}

// orderer returns the configured move orderer.
func (s *state) orderer() game.Orderer {
	if s.opt.Order == nil {
		return game.NaturalOrder{}
	}
	return s.opt.Order
}

// hasCandidate reports whether e-node E has a child that could still become
// an e-child.
func hasCandidate(E *node) bool {
	for _, k := range E.kids {
		if k.eChildCandidate() {
			return true
		}
	}
	return false
}

// pushSpeculative places e-node E on the speculative queue with the rank
// prescribed by the configured policy. Lock held.
func (s *state) pushSpeculative(E *node, w *wctx) {
	switch s.opt.SpecRank {
	case SpecRankDepth:
		// The "naive" pure-depth ordering of §8: shallowest first.
		E.specKey = int64(E.ply)
	case SpecRankBound:
		// Global promise ranking: the node whose best remaining
		// candidate has the lowest tentative value (the most optimistic
		// bound for E) is served first.
		best := game.Inf
		for _, k := range E.kids {
			if k.eChildCandidate() && k.value < best {
				best = k.value
			}
		}
		E.specKey = int64(best)
	default:
		// Paper §6: fewest e-children first, then shallower nodes.
		E.specKey = int64(E.eKids)<<32 | int64(E.ply)
	}
	s.enqueueSpec(E, w)
	w.rt.HoldWork(s.cost.HeapOp)
}

// finish marks a node done with the given value and propagates the
// completion. Lock held.
func (s *state) finish(n *node, v game.Value, w *wctx) {
	if debugInvariants && n.done {
		panic("core: node finished twice")
	}
	if v > n.value {
		n.value = v
	}
	n.done = true
	s.combine(n, w)
}

// cutoffAtPop abandons a node whose effective window closed while it was
// queued. Its value is clamped to the window's beta so the contribution to
// its parent cannot exceed what the bound already proves. Lock held.
func (s *state) cutoffAtPop(n *node, win game.Window, w *wctx) {
	s.cutoffDrops.Add(1)
	w.stats.AddCutoffs(1)
	n.cutoff = true
	s.finish(n, game.Max(n.value, win.Beta), w)
}

// table1 applies the node-generation rules of Table 1 to a live, expanded,
// non-terminal node popped from the primary queue. Lock held.
func (s *state) table1(n *node, w *wctx) {
	switch n.typ {
	case eNode:
		// "Generate all children. Assign each child 'undecided' type.
		// Place each child on primary queue." A selected e-child already
		// has its first child materialized (the evaluated elder grandchild
		// of its parent); such a completed child counts toward this node's
		// own elder-grandchild tally, or its mandatory e-child selection
		// could never trigger.
		for _, k := range n.kids {
			if k.done && !k.elderCounted {
				k.elderCounted = true
				n.elderDone++
			}
		}
		if start := len(n.kids); start < len(n.moves) {
			for i := start; i < len(n.moves); i++ {
				k := s.newNode(n.moves[i], n, undecided, n.depth-1)
				n.kids = append(n.kids, k)
				n.activeKids++
				w.event(Event{Kind: EvSpawn, Seq: k.seq, Par: n.seq,
					Arg: int64(i), Spec: k.specBorn, Ply: int32(k.ply)})
			}
			batch := n.kids[start:]
			w.stats.AddGenerated(int64(len(batch)))
			w.rt.HoldWork(int64(len(batch)) * (s.cost.Node + s.cost.HeapOp))
			s.enqueueBatch(batch, w)
		}
		w.rt.WakeAll()
	case undecided, rNode:
		if len(n.kids) == 0 {
			// "Generate first child (an 'e-node') and place on primary
			// queue." This child is the elder grandchild when n's parent
			// is an e-node.
			k := s.newNode(n.moves[0], n, eNode, n.depth-1)
			n.kids = append(n.kids, k)
			n.activeKids++
			w.event(Event{Kind: EvSpawn, Seq: k.seq, Par: n.seq,
				Arg: 0, Spec: k.specBorn, Ply: int32(k.ply)})
			w.stats.AddGenerated(1)
			w.rt.HoldWork(s.cost.Node + s.cost.HeapOp)
			s.enqueue(k, w)
			w.rt.WakeAll()
			return
		}
		if n.typ == rNode && len(n.kids) < len(n.moves) {
			// "Generate next child (an 'r-node') and place on primary
			// queue." At the serial frontier the child is examined in
			// one serial unit rather than decomposed further, so each
			// refutation step gets a fresh window while the protocol
			// bookkeeping stays bounded.
			idx := len(n.kids)
			k := s.newNode(n.moves[idx], n, rNode, n.depth-1)
			k.examine = k.depth <= s.opt.SerialDepth
			n.kids = append(n.kids, k)
			n.activeKids++
			w.event(Event{Kind: EvSpawn, Seq: k.seq, Par: n.seq,
				Arg: int64(idx), Spec: k.specBorn, Ply: int32(k.ply)})
			w.stats.AddGenerated(1)
			w.stats.AddRefutations(1)
			w.rt.HoldWork(s.cost.Node + s.cost.HeapOp)
			s.enqueue(k, w)
			w.rt.WakeAll()
		}
	}
}

// combine backs the completed node's value up the tree (§6), performing the
// Table 2 actions at the first ancestor that still has work in flight.
// Lock held.
func (s *state) combine(n *node, w *wctx) {
	cur := n
	for {
		w.rt.HoldWork(s.cost.Combine)
		p := cur.parent
		if p == nil {
			s.finished = true
			w.rt.WakeAll()
			return
		}
		if p.done {
			// An ancestor was resolved concurrently (cutoff); this
			// subtree's result is no longer needed.
			w.event(Event{Kind: EvDiscard, Seq: cur.seq, Par: p.seq,
				Spec: cur.specBorn, Ply: int32(cur.ply)})
			return
		}
		if -cur.value > p.value {
			p.value = -cur.value
		}
		p.activeKids--
		w.event(Event{Kind: EvCombine, Seq: cur.seq, Par: p.seq,
			Arg: int64(-cur.value), Spec: cur.specBorn, Ply: int32(cur.ply)})

		// "...until node has active children AND node can't be cut off."
		if win := p.window(); p.value >= win.Beta {
			p.done, p.cutoff = true, true
			w.stats.AddCutoffs(1)
			if p.activeKids > 0 {
				// The cutoff orphans in-flight children: their subtrees
				// are the speculative waste internal/flight attributes.
				w.event(Event{Kind: EvAbort, Seq: p.seq,
					Arg: int64(p.activeKids), Spec: p.specBorn, Ply: int32(p.ply)})
			}
			cur = p
			continue
		}
		if s.childDone(p, cur, w) {
			p.done = true
			cur = p
			continue
		}
		return
	}
}

// childDone applies the Table 2 bookkeeping at last_node p after its child c
// completed, and reports whether p itself is now done. Lock held.
func (s *state) childDone(p, c *node, w *wctx) bool {
	switch p.typ {
	case eNode:
		if !c.elderCounted {
			c.elderCounted = true
			p.elderDone++
		}
		switch {
		case p.refuting:
			if !s.opt.ParallelRefutation {
				s.launchNextRefuter(p, w)
			}
		case c.isEChild:
			// Table 2 row 3: "The first e-child has been evaluated...
			// Assign each active child type 'r-node' and place it on the
			// primary queue. (All children may be refuted in parallel.)"
			p.refuting = true
			s.startRefutation(p, w)
		default:
			s.elderProgress(p, w)
		}
		return p.expanded && p.activeKids == 0 && len(p.kids) == len(p.moves)

	case undecided:
		// c is p's only generated child (its first). p's value is now a
		// tentative value; p waits until its parent's protocol decides
		// whether p is an e-child or an r-node.
		if len(p.moves) == 1 {
			return true // Eval_first: done when d = 1
		}
		// Table 2 rows 4-5: an elder grandchild of p's parent finished.
		if gp := p.parent; gp != nil && gp.typ == eNode && !gp.refuting {
			if !p.elderCounted {
				p.elderCounted = true
				gp.elderDone++
			}
			s.elderProgress(gp, w)
		}
		return false

	default: // rNode
		if len(p.kids) < len(p.moves) {
			// Sequential refutation within an r-node: the next child is
			// examined only now that the current one has finished.
			s.enqueue(p, w)
			w.rt.HoldWork(s.cost.HeapOp)
			w.rt.WakeAll()
			return false
		}
		if p.activeKids == 0 {
			w.stats.AddRefuteFails(1) // all children examined; not refuted
			return true
		}
		return false
	}
}

// elderProgress applies Table 2 rows 1-2 and 4-5 at e-node E: once all but
// one elder grandchild is evaluated E joins the speculative queue; once all
// are evaluated and no e-child has been selected, the best child becomes the
// e-child. Lock held.
func (s *state) elderProgress(E *node, w *wctx) {
	if E.refuting || !E.expanded || E.done {
		return
	}
	d := len(E.kids)
	// Admission threshold: the paper requires all but one elder grandchild
	// evaluated; the EagerSpec extension admits E as soon as any candidate
	// bound is known.
	threshold := d - 1
	if s.opt.EagerSpec {
		threshold = 1
	}
	if !E.eSelected {
		if E.elderDone >= d {
			// Mandatory selection (Table 2 row 2/5).
			s.selectEChild(E, w, false)
		} else if E.elderDone >= threshold && s.opt.EarlyChoice && !E.onSpec && hasCandidate(E) {
			// Table 2 row 1/4: eligible for early choice.
			s.pushSpeculative(E, w)
			w.rt.WakeAll()
		}
		return
	}
	// First e-child already selected: the speculative queue may add more.
	if s.opt.MultipleENodes && !E.onSpec && hasCandidate(E) {
		s.pushSpeculative(E, w)
		w.rt.WakeAll()
	}
}

// selectEChild promotes E's most promising undecided child (lowest tentative
// value = most optimistic bound for E) to an e-node and schedules it.
// speculative marks promotions driven by the speculative queue: the promoted
// child and every node generated under it are tagged speculative-born, the
// wall-clock analogue of the paper's primary/speculative work split (the
// tag feeds telemetry only and never steers the search). Lock held.
func (s *state) selectEChild(E *node, w *wctx, speculative bool) bool {
	var best *node
	bestV := game.Inf
	for _, k := range E.kids {
		if k.eChildCandidate() && k.value < bestV {
			best, bestV = k, k.value
		}
	}
	if best == nil {
		return false
	}
	best.typ = eNode
	best.isEChild = true
	if speculative {
		best.specBorn = true
	}
	E.eSelected = true
	E.eKids++
	w.event(Event{Kind: EvPromote, Seq: best.seq, Par: E.seq,
		Spec: speculative, Ply: int32(best.ply)})
	s.enqueue(best, w)
	w.rt.HoldWork(s.cost.HeapOp)
	// "Once the elder grandchildren of E have been evaluated, ensure that
	// E always has at least one active e-child" (§5): keep E available on
	// the speculative queue while candidates remain.
	if s.opt.MultipleENodes && !E.onSpec && hasCandidate(E) {
		s.pushSpeculative(E, w)
	}
	w.rt.WakeAll()
	return true
}

// specAction handles a node taken from the speculative queue: select the
// best remaining child as an (additional) e-child and requeue the node while
// candidates remain (§6). Lock held.
func (s *state) specAction(E *node, w *wctx) {
	if E.done || E.refuting || !E.alive() {
		s.dropped.Add(1)
		return
	}
	if !s.selectEChild(E, w, true) {
		return
	}
	if s.opt.MultipleENodes && hasCandidate(E) {
		s.pushSpeculative(E, w)
	}
}

// startRefutation retypes E's unfinished children as r-nodes and, with
// parallel refutation enabled, schedules every one whose previous activity
// has finished; otherwise only the most promising refuter runs. Lock held.
func (s *state) startRefutation(E *node, w *wctx) {
	w.event(Event{Kind: EvRefute, Seq: E.seq, Spec: E.specBorn, Ply: int32(E.ply)})
	for _, k := range E.kids {
		if k.done || k.isEChild {
			continue
		}
		k.typ = rNode
	}
	if !s.opt.ParallelRefutation {
		s.launchNextRefuter(E, w)
		return
	}
	for _, k := range E.kids {
		if k.done || k.isEChild || k.typ != rNode {
			continue
		}
		s.scheduleRefuter(k, w)
	}
}

// scheduleRefuter pushes r-node k unless it is still waiting for an active
// child (an r-node examines one child at a time) or already queued.
func (s *state) scheduleRefuter(k *node, w *wctx) {
	if k.activeKids > 0 || k.inPrimary {
		return // combine will reschedule it when the child completes
	}
	if k.expanded && len(k.kids) == len(k.moves) {
		return // nothing left to generate; completion is in flight
	}
	s.enqueue(k, w)
	w.rt.HoldWork(s.cost.HeapOp)
	w.rt.WakeAll()
}

// launchNextRefuter implements the sequential-refutation ablation: at most
// one r-node child of E is examined at a time, in tentative-value order.
func (s *state) launchNextRefuter(E *node, w *wctx) {
	var best *node
	bestV := game.Inf
	for _, k := range E.kids {
		if k.done || k.typ != rNode {
			continue
		}
		if k.activeKids > 0 || k.inPrimary {
			return // one already running
		}
		if k.value < bestV || best == nil {
			best, bestV = k, k.value
		}
	}
	if best != nil {
		s.scheduleRefuter(best, w)
	}
}

// serialSearcher builds the serial ER searcher for a subtree task rooted at
// ply basePly, accumulating into task-local stats.
func (s *state) serialSearcher(local *game.Stats, basePly int) serial.Searcher {
	return serial.Searcher{Order: s.opt.Order, Stats: local, BasePly: basePly}
}

// taskCost converts a serial task's statistics into virtual time.
func (s *state) taskCost(snap game.StatsSnapshot) int64 {
	return snap.Generated*s.cost.Node + snap.TotalEvals()*s.cost.Eval
}

// ttKey returns pos's transposition key, if the search has a table and the
// position is hashable. Called without the lock (hashing is private work).
func (s *state) ttKey(pos game.Position) (uint64, bool) {
	if s.opt.Table == nil {
		return 0, false
	}
	h, ok := pos.(tt.Hashable)
	if !ok {
		return 0, false
	}
	return h.Hash(), true
}

// ttProbe consults the transposition table for the position behind key at
// the given remaining depth, before a serial task searches it. Entries match
// at equal depth only, so every stored value is a fail-soft bound on the
// depth-limited negamax value and exactness is preserved. A bound that
// narrows the task's window adjusts win in place; a bound that answers the
// task outright returns (value, true), and the returned value mimics what a
// fail-soft search under win would have returned, which is exactly what
// finish/combine expect. Called without the lock.
func (s *state) ttProbe(key uint64, depth int, win *game.Window) (game.Value, bool) {
	s.ttProbes.Add(1)
	e, ok := s.opt.Table.Probe(key, depth)
	if !ok {
		return 0, false
	}
	s.ttHits.Add(1)
	switch e.Bound {
	case tt.Exact:
		s.ttCutoffs.Add(1)
		return e.Value, true
	case tt.Lower:
		if e.Value >= win.Beta {
			s.ttCutoffs.Add(1)
			return e.Value, true
		}
		if e.Value > win.Alpha {
			win.Alpha = e.Value
		}
	default: // tt.Upper
		if e.Value <= win.Alpha {
			s.ttCutoffs.Add(1)
			return e.Value, true
		}
		if e.Value < win.Beta {
			win.Beta = e.Value
		}
	}
	return 0, false
}

// ttStore records a serial task's fail-soft result, classified against the
// window the task actually searched (including any table-driven narrowing:
// the fail-soft contract is relative to the searched window, wherever its
// bounds came from). Called without the lock.
func (s *state) ttStore(key uint64, depth int, win game.Window, v game.Value) {
	s.ttStores.Add(1)
	switch {
	case v <= win.Alpha:
		s.opt.Table.Store(key, depth, v, tt.Upper)
	case v >= win.Beta:
		s.opt.Table.Store(key, depth, v, tt.Lower)
	default:
		s.opt.Table.Store(key, depth, v, tt.Exact)
	}
}
