package core

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/serial"
	"ertree/internal/ttt"
)

func oracle(pos game.Position, depth int) game.Value {
	var s serial.Searcher
	return s.Negmax(pos, depth)
}

// TestParallelERExactOnFixtures: root values on the paper-figure trees.
func TestParallelERExactOnFixtures(t *testing.T) {
	fixtures := []struct {
		name string
		root *gtree.Node
		want game.Value
	}{
		{"figure2-shallow", gtree.Figure2Shallow(), 7},
		{"figure2-deep", gtree.Figure2Deep(), 7},
		{"figure6", gtree.Figure6Tree(), 11},
		{"figure7", gtree.Figure7Tree(), 13},
		{"figure3", gtree.Figure3Tree(), gtree.Figure3Tree().Negmax()},
	}
	for _, f := range fixtures {
		for _, workers := range []int{1, 2, 4, 16} {
			opt := DefaultOptions()
			opt.Workers = workers
			res := mustSimulate(t, f.root, f.root.Height(), opt, DefaultCostModel())
			if res.Value != f.want {
				t.Errorf("%s P=%d: value %d, want %d", f.name, workers, res.Value, f.want)
			}
			got := mustSearch(t, f.root, f.root.Height(), opt)
			if got.Value != f.want {
				t.Errorf("%s P=%d (real): value %d, want %d", f.name, workers, got.Value, f.want)
			}
		}
	}
}

// TestParallelERExactRandomSweep is the central soundness property: for
// random irregular trees, any worker count, any serial depth, and any
// speculation configuration, the root value equals negmax. Runs on the
// deterministic simulator.
func TestParallelERExactRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	specs := []gtree.RandomSpec{
		{MinDegree: 1, MaxDegree: 3, MinDepth: 1, MaxDepth: 4, ValueRange: 10},
		{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 100},
		{MinDegree: 2, MaxDegree: 2, MinDepth: 6, MaxDepth: 6, ValueRange: 3}, // heavy ties
		{MinDegree: 3, MaxDegree: 3, MinDepth: 3, MaxDepth: 4, ValueRange: 1000},
	}
	configs := []Options{
		{ParallelRefutation: true, MultipleENodes: true, EarlyChoice: true},
		{ParallelRefutation: false, MultipleENodes: false, EarlyChoice: false},
		{ParallelRefutation: true, MultipleENodes: false, EarlyChoice: false},
		{ParallelRefutation: false, MultipleENodes: true, EarlyChoice: true},
		{ParallelRefutation: true, MultipleENodes: true, EarlyChoice: false},
		{ParallelRefutation: true, MultipleENodes: false, EarlyChoice: true},
	}
	trees := 0
	for _, spec := range specs {
		for i := 0; i < 25; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			want := oracle(root, h)
			trees++
			for ci, cfg := range configs {
				for _, workers := range []int{1, 2, 3, 5, 16} {
					for _, sd := range []int{0, 1, h} {
						opt := cfg
						opt.Workers = workers
						opt.SerialDepth = sd
						res := mustSimulate(t, root, h, opt, DefaultCostModel())
						if res.Value != want {
							t.Fatalf("spec tree %d cfg %d P=%d sd=%d: value %d, want %d\n%s",
								i, ci, workers, sd, res.Value, want, root)
						}
					}
				}
			}
		}
	}
	t.Logf("verified %d trees x %d configs x 5 worker counts x 3 serial depths",
		trees, len(configs))
}

// TestParallelERRealRuntimeRandomSweep exercises the goroutine runtime
// (true concurrency, nondeterministic interleavings) on a smaller sweep.
func TestParallelERRealRuntimeRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 50}
	for i := 0; i < 40; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		want := oracle(root, h)
		for _, workers := range []int{1, 4, 8} {
			opt := DefaultOptions()
			opt.Workers = workers
			opt.SerialDepth = h / 2
			res := mustSearch(t, root, h, opt)
			if res.Value != want {
				t.Fatalf("tree %d P=%d: value %d, want %d\n%s", i, workers, res.Value, want, root)
			}
		}
	}
}

// TestSimulateDeterministic: identical configurations must give identical
// virtual times and node counts.
func TestSimulateDeterministic(t *testing.T) {
	tr := randtree.R3()
	opt := DefaultOptions()
	opt.Workers = 7
	opt.SerialDepth = 3
	a := mustSimulate(t, tr.Root(), 5, opt, DefaultCostModel())
	for i := 0; i < 3; i++ {
		b := mustSimulate(t, tr.Root(), 5, opt, DefaultCostModel())
		if a.Value != b.Value || a.VirtualTime != b.VirtualTime ||
			a.Stats.Generated != b.Stats.Generated || a.SpecPops != b.SpecPops {
			t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
		}
	}
}

// TestMoreWorkersNeverChangeValue on real game positions.
func TestRealGamesAllWorkerCounts(t *testing.T) {
	// Tic-tac-toe midgame (full board search is slow under the protocol;
	// use a position a few plies in).
	b := ttt.New()
	b, _ = b.Move(4)
	b, _ = b.Move(0)
	want := oracle(b, 7)
	for _, workers := range []int{1, 2, 8, 16} {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = 4
		if res := mustSimulate(t, b, 7, opt, DefaultCostModel()); res.Value != want {
			t.Fatalf("ttt P=%d: %d want %d", workers, res.Value, want)
		}
	}
	// Othello O1 at 3 ply with static ordering.
	o := othello.O1()
	var so serial.Searcher
	wantO := so.Negmax(o, 3)
	for _, workers := range []int{1, 4, 16} {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = 1
		opt.Order = game.StaticOrder{MaxPly: 5}
		if res := mustSimulate(t, o, 3, opt, DefaultCostModel()); res.Value != wantO {
			t.Fatalf("othello P=%d: %d want %d", workers, res.Value, wantO)
		}
	}
}

// TestSpeedupOnRandomTree: the headline behavior — more virtual processors
// must reduce virtual makespan substantially on a tree with enough work.
func TestSpeedupOnRandomTree(t *testing.T) {
	tr := &randtree.Tree{Seed: 99, Degree: 4, Depth: 7, ValueRange: 10000}
	times := map[int]int64{}
	var nodes1 int64
	for _, workers := range []int{1, 2, 4, 8, 16} {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = 4
		res := mustSimulate(t, tr.Root(), 7, opt, DefaultCostModel())
		times[workers] = res.VirtualTime
		if workers == 1 {
			nodes1 = res.Stats.Generated
		}
		if res.Value != oracle(tr.Root(), 7) {
			t.Fatalf("P=%d wrong value", workers)
		}
	}
	if times[4] >= times[1] {
		t.Errorf("no speedup at P=4: t1=%d t4=%d", times[1], times[4])
	}
	sp4 := float64(times[1]) / float64(times[4])
	sp16 := float64(times[1]) / float64(times[16])
	t.Logf("virtual times: %v; speedup(4)=%.2f speedup(16)=%.2f; nodes(P=1)=%d",
		times, sp4, sp16, nodes1)
	if sp4 < 1.5 {
		t.Errorf("speedup at P=4 only %.2f", sp4)
	}
	if sp16 < sp4 {
		t.Errorf("speedup decreased from P=4 (%.2f) to P=16 (%.2f)", sp4, sp16)
	}
}

// TestSpeculativeLossGrowsModerately: nodes generated grows from P=1 to P=4
// and then plateaus (the paper's Figures 12-13 shape).
func TestNodesGrowWithWorkers(t *testing.T) {
	tr := &randtree.Tree{Seed: 1234, Degree: 4, Depth: 7, ValueRange: 10000}
	nodes := map[int]int64{}
	for _, workers := range []int{1, 4, 16} {
		opt := DefaultOptions()
		opt.Workers = workers
		opt.SerialDepth = 4
		res := mustSimulate(t, tr.Root(), 7, opt, DefaultCostModel())
		nodes[workers] = res.Stats.Generated + res.Stats.Evaluated
	}
	if nodes[4] < nodes[1] {
		t.Logf("note: P=4 examined fewer nodes than P=1 (acceleration anomaly)")
	}
	// Between 4 and 16 processors growth should be moderate (< 3x here;
	// the paper reports slow growth).
	if nodes[16] > 3*nodes[4] {
		t.Errorf("speculative loss exploded: nodes(16)=%d nodes(4)=%d", nodes[16], nodes[4])
	}
	t.Logf("nodes: P=1 %d, P=4 %d, P=16 %d", nodes[1], nodes[4], nodes[16])
}

// TestStarvationWithoutSpeculation: with all speculation disabled, workers
// starve — total starvation time must exceed the fully speculative
// configuration's.
func TestStarvationWithoutSpeculation(t *testing.T) {
	tr := &randtree.Tree{Seed: 5, Degree: 4, Depth: 6, ValueRange: 10000}
	base := Options{Workers: 8, SerialDepth: 3}
	noSpec := base
	full := base
	full.ParallelRefutation, full.MultipleENodes, full.EarlyChoice = true, true, true
	rNo := mustSimulate(t, tr.Root(), 6, noSpec, DefaultCostModel())
	rFull := mustSimulate(t, tr.Root(), 6, full, DefaultCostModel())
	if rNo.Value != rFull.Value {
		t.Fatalf("values differ: %d vs %d", rNo.Value, rFull.Value)
	}
	t.Logf("starvation: none=%d full=%d; makespan: none=%d full=%d",
		rNo.StarveTime, rFull.StarveTime, rNo.VirtualTime, rFull.VirtualTime)
	if rFull.VirtualTime >= rNo.VirtualTime {
		t.Errorf("speculation did not reduce makespan: full=%d none=%d",
			rFull.VirtualTime, rNo.VirtualTime)
	}
}

// TestSpecQueueUsed: the speculative queue actually serves work when
// enabled, and never when disabled.
func TestSpecQueueUsed(t *testing.T) {
	tr := &randtree.Tree{Seed: 8, Degree: 4, Depth: 6, ValueRange: 10000}
	opt := DefaultOptions()
	opt.Workers = 8
	opt.SerialDepth = 3
	res := mustSimulate(t, tr.Root(), 6, opt, DefaultCostModel())
	if res.SpecPops == 0 {
		t.Errorf("speculative queue never used with 8 workers")
	}
	opt.MultipleENodes, opt.EarlyChoice = false, false
	res = mustSimulate(t, tr.Root(), 6, opt, DefaultCostModel())
	if res.SpecPops != 0 {
		t.Errorf("speculative queue used while disabled: %d pops", res.SpecPops)
	}
}

// TestSerialDepthEquivalence: with SerialDepth == depth the engine reduces
// to one serial ER task and must match serial ER's node accounting.
func TestSerialDepthEquivalence(t *testing.T) {
	tr := &randtree.Tree{Seed: 21, Degree: 3, Depth: 6, ValueRange: 100}
	opt := DefaultOptions()
	opt.SerialDepth = 6
	res := mustSimulate(t, tr.Root(), 6, opt, DefaultCostModel())
	var st game.Stats
	s := serial.Searcher{Stats: &st}
	want := s.ER(tr.Root(), 6, game.FullWindow())
	if res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
	if res.SerialTasks != 1 {
		t.Fatalf("serial tasks %d, want 1", res.SerialTasks)
	}
	// Engine counts the root node itself plus the serial search's counts.
	if res.Stats.Generated != st.Generated.Load()+1 {
		t.Errorf("generated %d, serial %d (+1 root)", res.Stats.Generated, st.Generated.Load())
	}
	if res.Stats.Evaluated != st.Evaluated.Load() {
		t.Errorf("evaluated %d, serial %d", res.Stats.Evaluated, st.Evaluated.Load())
	}
}

// TestDepthZeroAndTerminalRoots: degenerate searches.
func TestDegenerateRoots(t *testing.T) {
	leaf := gtree.L(42)
	opt := DefaultOptions()
	if res := mustSimulate(t, leaf, 0, opt, DefaultCostModel()); res.Value != 42 {
		t.Fatalf("depth-0 root: %d want 42", res.Value)
	}
	if res := mustSimulate(t, leaf, 5, opt, DefaultCostModel()); res.Value != 42 {
		t.Fatalf("terminal root: %d want 42", res.Value)
	}
	single := gtree.N(gtree.L(-3))
	if res := mustSimulate(t, single, 1, opt, DefaultCostModel()); res.Value != 3 {
		t.Fatalf("single child: %d want 3", res.Value)
	}
	if res := mustSearch(t, single, 1, opt); res.Value != 3 {
		t.Fatalf("single child (real): %d want 3", res.Value)
	}
}

// TestWindowComputation checks the dynamic window derivation on a hand-built
// chain.
func TestWindowComputation(t *testing.T) {
	s := &state{opt: DefaultOptions(), stats: &game.Stats{}}
	root := s.newNode(gtree.L(0), nil, eNode, 3)
	a := s.newNode(gtree.L(0), root, undecided, 2)
	b := s.newNode(gtree.L(0), a, eNode, 1)
	if w := root.window(); w != game.FullWindow() {
		t.Fatalf("root window %+v", w)
	}
	root.value = 5
	if w := a.window(); w.Alpha != -game.Inf || w.Beta != -5 {
		t.Fatalf("child window %+v, want (-Inf,-5)", w)
	}
	a.value = -2
	// b: alpha = -beta(a) = 5... beta = -max(alpha(a), value(a)) = -max(-Inf, -2) = 2.
	if w := b.window(); w.Alpha != 5 || w.Beta != 2 {
		t.Fatalf("grandchild window %+v, want (5,2)", w)
	}
	if !b.window().Empty() {
		t.Fatal("expected empty window (deep cutoff condition)")
	}
}

// TestAliveness: nodes under a done ancestor are dead.
func TestAliveness(t *testing.T) {
	s := &state{opt: DefaultOptions(), stats: &game.Stats{}}
	root := s.newNode(gtree.L(0), nil, eNode, 3)
	a := s.newNode(gtree.L(0), root, undecided, 2)
	b := s.newNode(gtree.L(0), a, eNode, 1)
	if !b.alive() {
		t.Fatal("fresh chain should be alive")
	}
	a.done = true
	if b.alive() {
		t.Fatal("node under done ancestor should be dead")
	}
	if !a.alive() == false {
		// a itself done -> not alive (its work is finished)
		t.Fatal("done node reported alive")
	}
}

// TestHeapOrdering: primary pops deepest-first; speculative pops
// fewest-e-children then shallowest.
func TestHeapOrdering(t *testing.T) {
	s := &state{opt: DefaultOptions(), stats: &game.Stats{}}
	h := &s.heap
	n1 := s.newNode(gtree.L(0), nil, undecided, 1)
	n1.ply = 1
	n2 := s.newNode(gtree.L(0), nil, undecided, 1)
	n2.ply = 3
	n3 := s.newNode(gtree.L(0), nil, undecided, 1)
	n3.ply = 2
	h.pushPrimary(n1)
	h.pushPrimary(n2)
	h.pushPrimary(n3)
	order := []int{}
	for !h.empty() {
		n, _ := h.pop()
		order = append(order, n.ply)
	}
	if order[0] != 3 || order[1] != 2 || order[2] != 1 {
		t.Fatalf("primary order %v, want deepest first", order)
	}

	w := newWctx(newRealRuntime())
	e1 := s.newNode(gtree.L(0), nil, eNode, 2)
	e1.eKids, e1.ply = 2, 1
	e2 := s.newNode(gtree.L(0), nil, eNode, 2)
	e2.eKids, e2.ply = 1, 5
	e3 := s.newNode(gtree.L(0), nil, eNode, 2)
	e3.eKids, e3.ply = 1, 2
	s.pushSpeculative(e1, w)
	s.pushSpeculative(e2, w)
	s.pushSpeculative(e3, w)
	got := []*node{}
	for !h.empty() {
		n, fromSpec := h.pop()
		if !fromSpec {
			t.Fatal("expected speculative pop")
		}
		got = append(got, n)
	}
	if got[0] != e3 || got[1] != e2 || got[2] != e1 {
		t.Fatalf("spec order wrong: fewer e-children first, then shallower")
	}
}

// TestDuplicatePushGuards: pushing a queued node twice is a no-op.
func TestDuplicatePushGuards(t *testing.T) {
	s := &state{opt: DefaultOptions(), stats: &game.Stats{}}
	var h problemHeap
	n := s.newNode(gtree.L(0), nil, undecided, 1)
	h.pushPrimary(n)
	h.pushPrimary(n)
	if len(h.primary) != 1 {
		t.Fatalf("duplicate primary push not guarded")
	}
	e := s.newNode(gtree.L(0), nil, eNode, 1)
	h.pushSpec(e)
	h.pushSpec(e)
	if len(h.spec) != 1 {
		t.Fatalf("duplicate spec push not guarded")
	}
}

// TestCutoffDropsHappen: with many workers some queued work must be cut off
// or dropped once bounds improve (this is what keeps speculative loss
// bounded).
func TestCutoffDropsHappen(t *testing.T) {
	tr := &randtree.Tree{Seed: 3, Degree: 6, Depth: 5, ValueRange: 10000}
	opt := DefaultOptions()
	opt.Workers = 16
	opt.SerialDepth = 2
	res := mustSimulate(t, tr.Root(), 5, opt, DefaultCostModel())
	if res.CutoffDrops+res.Dropped == 0 {
		t.Errorf("no queued work was ever cancelled with 16 workers")
	}
	t.Logf("cutoff drops %d, dead drops %d of %d heap ops",
		res.CutoffDrops, res.Dropped, res.HeapOps)
}

// TestSpecRankVariantsExact: every speculative-queue ranking policy returns
// the exact value on random trees at various processor counts.
func TestSpecRankVariantsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 40}
	for i := 0; i < 30; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		want := oracle(root, h)
		for _, rank := range []SpecRank{SpecRankPaper, SpecRankDepth, SpecRankBound} {
			for _, workers := range []int{1, 8, 16} {
				opt := DefaultOptions()
				opt.Workers = workers
				opt.SerialDepth = h / 2
				opt.SpecRank = rank
				if res := mustSimulate(t, root, h, opt, DefaultCostModel()); res.Value != want {
					t.Fatalf("tree %d rank=%v P=%d: value %d, want %d", i, rank, workers, res.Value, want)
				}
			}
		}
	}
}

// TestSpecRankStrings covers the policy names used in experiment tables.
func TestSpecRankStrings(t *testing.T) {
	if SpecRankPaper.String() != "paper" || SpecRankDepth.String() != "depth" || SpecRankBound.String() != "bound" {
		t.Fatal("spec rank names changed")
	}
}

// TestEagerSpecExact: the eager-admission extension preserves exactness.
func TestEagerSpecExact(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 30}
	for i := 0; i < 30; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		want := oracle(root, h)
		for _, workers := range []int{1, 8, 16} {
			opt := DefaultOptions()
			opt.Workers = workers
			opt.SerialDepth = h / 2
			opt.EagerSpec = true
			if res := mustSimulate(t, root, h, opt, DefaultCostModel()); res.Value != want {
				t.Fatalf("tree %d P=%d eager: value %d, want %d", i, workers, res.Value, want)
			}
		}
	}
}

// TestTraceTimeline: tracing yields per-worker busy intervals consistent
// with the totals.
func TestTraceTimeline(t *testing.T) {
	tr := randtree.R3()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.SerialDepth = 3
	opt.Trace = true
	res := mustSimulate(t, tr.Root(), 5, opt, DefaultCostModel())
	if len(res.Timeline) != 4 {
		t.Fatalf("timeline rows %d, want 4", len(res.Timeline))
	}
	var total int64
	for _, spans := range res.Timeline {
		last := int64(-1)
		for _, s := range spans {
			if s.Start < last {
				t.Fatalf("intervals not ordered: %+v", spans)
			}
			if s.End <= s.Start {
				t.Fatalf("empty interval %+v", s)
			}
			if s.End > res.VirtualTime {
				t.Fatalf("interval exceeds makespan")
			}
			total += s.End - s.Start
			last = s.End
		}
	}
	if total != res.BusyTime {
		t.Fatalf("interval sum %d != busy time %d", total, res.BusyTime)
	}
	// Without Trace, no timeline is recorded.
	opt.Trace = false
	if res := mustSimulate(t, tr.Root(), 5, opt, DefaultCostModel()); res.Timeline != nil {
		t.Fatal("timeline recorded without Trace")
	}
}

// TestRealMatchesSimAtP1: with one worker both runtimes process work in the
// same deterministic priority order, so node accounting must be identical.
func TestRealMatchesSimAtP1(t *testing.T) {
	rng := rand.New(rand.NewSource(11111))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 40}
	for i := 0; i < 20; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		opt := DefaultOptions()
		opt.SerialDepth = h / 2
		real := mustSearch(t, root, h, opt)
		sim := mustSimulate(t, root, h, opt, DefaultCostModel())
		if real.Value != sim.Value {
			t.Fatalf("tree %d: values differ: %d vs %d", i, real.Value, sim.Value)
		}
		if real.Stats.Generated != sim.Stats.Generated ||
			real.Stats.Evaluated != sim.Stats.Evaluated ||
			real.SerialTasks != sim.SerialTasks ||
			real.SpecPops != sim.SpecPops {
			t.Fatalf("tree %d: P=1 accounting differs:\nreal %+v tasks=%d spec=%d\nsim  %+v tasks=%d spec=%d",
				i, real.Stats, real.SerialTasks, real.SpecPops,
				sim.Stats, sim.SerialTasks, sim.SpecPops)
		}
	}
}
