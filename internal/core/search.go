package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ertree/internal/game"
	"ertree/internal/sim"
	"ertree/internal/tt"
)

// ErrAborted is returned by Search when the Cancel channel fired before the
// root was resolved. The accompanying Result carries everything the engine
// had proven at that point: Value is the root's running fail-soft lower
// bound (-Inf when no child had completed) and the statistics count the work
// actually performed.
var ErrAborted = errors.New("core: search aborted")

// ErrUnresolved reports that the workers all exited with the root still
// unresolved and no cancellation requested — an engine invariant violation.
var ErrUnresolved = errors.New("core: search terminated with unresolved root")

// Options configures a parallel ER search.
type Options struct {
	// Workers is the number of processors P. Defaults to 1.
	Workers int
	// Sharded replaces the global two-queue problem heap with per-worker
	// heap shards plus rank-respecting work stealing on the real runtime
	// (shardheap.go): each worker owns a primary + speculative queue pair,
	// pushes the work it generates locally, and steals the best task from
	// the busiest victim when it runs dry. ER's deepest-first /
	// fewest-e-children priorities hold exactly per shard and approximately
	// globally, which changes which nodes are speculatively expanded but
	// never the root value (the fuzzsched harness cross-checks this against
	// the serial oracle). Ignored by Simulate, which keeps the paper's exact
	// single-heap semantics so Tables 1-2 reproductions stay bit-identical.
	Sharded bool
	// StealSeed seeds the per-worker victim-rotation RNG of the sharded
	// heap. Zero is a fixed default; the schedule fuzzer varies it to
	// explore steal interleavings.
	StealSeed uint64
	// SerialDepth is the remaining depth at or below which subtrees are
	// searched by serial ER as a single work unit (the paper's "depth
	// below which serial ER is to be used", §6). Zero parallelizes all the
	// way to the leaves.
	SerialDepth int
	// Order is the static move-ordering policy for non-e-node expansions
	// (§7). Nil means natural order.
	Order game.Orderer
	// The three speculative-work mechanisms of §5. The paper's
	// implementation enables all three; disabling them individually gives
	// the ablation experiment A1.
	ParallelRefutation bool // refute an e-node's children concurrently
	MultipleENodes     bool // keep offering additional e-children
	EarlyChoice        bool // pick an e-child before the last elder grandchild finishes
	// SpecRank selects how the speculative queue is ordered. The paper's
	// §8 calls for "a better mechanism for globally ranking speculative
	// work"; experiment A3 compares the alternatives.
	SpecRank SpecRank
	// Trace records per-processor busy intervals during Simulate so the
	// worker-utilization timeline can be rendered (cmd/ertree -timeline).
	Trace bool
	// EagerSpec relaxes the paper's speculative-queue admission rule ("all
	// but one elder grandchild evaluated") to "at least one elder
	// grandchild evaluated". Idle processors can then start additional
	// e-children during the elder-evaluation ramp, the largest starvation
	// phase at high processor counts; experiment A6 measures the effect.
	// An extension beyond the paper.
	EagerSpec bool
	// Stats, if non-nil, receives node accounting.
	Stats *game.Stats
	// Table, if non-nil, is the transposition table consulted by the serial
	// subtree tasks of the real runtime: each task probes its position at
	// its exact remaining depth before searching (a stored bound narrows
	// the task's window or answers it outright) and stores its fail-soft
	// result after. Equal-depth matching keeps every cached value a sound
	// bound on the depth-limited negamax value, so the search stays exact.
	// Concurrent workers — and successive searches sharing the table, such
	// as the deepening iterations of internal/engine — reuse each other's
	// subtree work instead of only the root result. Ignored by Simulate:
	// the simulated runtime models the paper's machine, which had no
	// transposition table, and must stay bit-stable.
	Table tt.Prober
	// RootWindow, when non-nil, restricts the whole search to the given
	// alpha-beta window instead of (-Inf, Inf). The result is fail-soft: a
	// value inside the window is exact, a value at or below Alpha is an
	// upper bound on the true value, a value at or above Beta a lower
	// bound. Aspiration drivers (internal/engine) use this to steer
	// iterative deepening.
	RootWindow *game.Window
	// Cancel, when non-nil, makes Search cooperatively cancellable: once
	// the channel is closed every worker abandons the search at its next
	// pop-loop check and Search returns ErrAborted together with the
	// partial result. Ignored by Simulate, which is deterministic.
	Cancel <-chan struct{}
	// Hooks, when non-nil, arms low-overhead real-runtime telemetry: worker
	// busy spans by task kind, the speculative-vs-primary work split, and
	// heap size samples, accumulated in per-worker shards and delivered at
	// worker exit (see hooks.go). Nil costs one pointer test per task.
	// Ignored by Simulate, which has its own deterministic tracing (Trace).
	Hooks *Hooks
	// ProfileLabels runs every task under runtime/pprof goroutine labels
	// task_kind and spec (events.go), so CPU/mutex/block profiles segment by
	// the Table 1 work taxonomy. Real runtime only; off by default because
	// SetGoroutineLabels costs a few tens of nanoseconds per task.
	ProfileLabels bool
}

// SpecRank is a speculative-queue ordering policy.
type SpecRank int8

const (
	// SpecRankPaper is the published ordering (§6): fewest e-children
	// first, ties broken in favor of shallower nodes.
	SpecRankPaper SpecRank = iota
	// SpecRankDepth is the "rather naive" pure depth ordering the paper's
	// §8 self-criticizes: shallowest e-nodes first.
	SpecRankDepth
	// SpecRankBound is a global ranking by promise, one answer to the
	// paper's future-work question: the e-node whose best remaining
	// candidate carries the most optimistic bound is served first.
	SpecRankBound
)

func (r SpecRank) String() string {
	switch r {
	case SpecRankDepth:
		return "depth"
	case SpecRankBound:
		return "bound"
	default:
		return "paper"
	}
}

// DefaultOptions returns the paper's configuration: all three speculation
// mechanisms enabled.
func DefaultOptions() Options {
	return Options{
		Workers:            1,
		ParallelRefutation: true,
		MultipleENodes:     true,
		EarlyChoice:        true,
	}
}

// CostModel maps engine operations to virtual time for simulated runs
// (DESIGN.md §3). Units are arbitrary; only ratios matter.
type CostModel struct {
	Node    int64 // generating one tree node (shared-tree update, under lock)
	Eval    int64 // one static evaluation (outside the lock)
	HeapOp  int64 // one problem-heap push or pop (under lock)
	Combine int64 // one step of the combine loop (under lock)
}

// DefaultCostModel makes evaluation a few times the cost of bookkeeping,
// which is typical of real game programs (and of the paper's Othello
// evaluator relative to Sequent memory operations).
func DefaultCostModel() CostModel {
	return CostModel{Node: 1, Eval: 3, HeapOp: 1, Combine: 1}
}

// Of converts a statistics snapshot into virtual time under the model: the
// cost of a purely serial search that generated those counts.
func (c CostModel) Of(s game.StatsSnapshot) int64 {
	return s.Generated*c.Node + s.TotalEvals()*c.Eval
}

// Result reports the outcome of a parallel ER search.
type Result struct {
	// Value is the exact negamax value of the root.
	Value game.Value
	// Exact reports that Value is the exact negamax value: the root
	// resolved and the value lies strictly inside the root window. False
	// means Value is a fail-soft bound (RootWindow excluded it) or the
	// search was aborted.
	Exact bool
	// Stats are the accumulated node counts.
	Stats game.StatsSnapshot
	// Workers is the processor count used.
	Workers int
	// Sharded reports which problem-heap implementation ran (Options.Sharded
	// on the real runtime; always false for Simulate).
	Sharded bool

	// Engine counters.
	SerialTasks int64 // subtrees searched by serial ER
	LeafTasks   int64 // frontier/terminal static evaluations
	SpecPops    int64 // nodes taken from the speculative queue
	Dropped     int64 // dead nodes discarded at pop time
	CutoffDrops int64 // nodes cut off at pop time (window closed while queued)
	HeapOps     int64 // pushes + pops on the problem heap

	// Sharded-heap counters (zero on the global heap).
	Steals     int64 // tasks taken from another worker's shard
	StealFails int64 // steal sweeps that found every shard empty

	// Transposition-table counters (all zero when Options.Table is nil).
	TTProbes  int64 // serial-task probes of the table
	TTHits    int64 // probes that found a usable entry
	TTStores  int64 // task results stored
	TTCutoffs int64 // serial tasks answered by the table without searching

	// Real-runtime measurement.
	Elapsed time.Duration

	// Simulated-runtime measurement (zero for real runs).
	VirtualTime int64 // makespan on P virtual processors
	BusyTime    int64 // total productive virtual time across processors
	StarveTime  int64 // total starvation loss (§3.1)
	LockTime    int64 // total interference loss (§3.1)
	// Timeline holds per-processor busy intervals when Options.Trace was
	// set on a simulated run.
	Timeline [][]sim.Interval
}

func (s *state) result(workers int) Result {
	res := Result{
		Value:       s.root.value,
		Exact:       s.root.done && s.root.rootWin.Contains(s.root.value),
		Stats:       s.stats.Snapshot(),
		Workers:     workers,
		SerialTasks: s.serialTasks.Load(),
		LeafTasks:   s.leafTasks.Load(),
		Dropped:     s.dropped.Load(),
		CutoffDrops: s.cutoffDrops.Load(),
		TTProbes:    s.ttProbes.Load(),
		TTHits:      s.ttHits.Load(),
		TTStores:    s.ttStores.Load(),
		TTCutoffs:   s.ttCutoffs.Load(),
	}
	if s.shards != nil {
		res.Sharded = true
		res.SpecPops = s.shards.specPops.Load()
		res.HeapOps = s.shards.pushes.Load() + s.shards.pops.Load()
		res.Steals = s.shards.steals.Load()
		res.StealFails = s.shards.stealFails.Load()
	} else {
		res.SpecPops = s.heap.specPops.Load()
		res.HeapOps = s.heap.pushes.Load() + s.heap.pops.Load()
	}
	return res
}

// testStateHook, when non-nil, observes the search state after the result
// has been extracted and just before the node arena is released. Test
// instrumentation only.
var testStateHook func(*state)

// finalize extracts the state's counters into res-independent form and then
// severs the tree so no node outlives the search.
func (s *state) finalize() {
	if testStateHook != nil {
		testStateHook(s)
	}
	s.release()
}

// Search runs parallel ER on real goroutines and returns the root value. It
// is correct for any worker count; on a single-CPU host the workers
// interleave rather than run in parallel, so use Simulate for speedup
// measurements.
//
// When Options.Cancel fires before the root is resolved, Search returns the
// partial Result together with ErrAborted; all workers exit promptly at
// their next pop-loop check.
func Search(pos game.Position, depth int, opt Options) (Result, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	s := newState(pos, depth, opt, DefaultCostModel())
	if opt.Sharded {
		s.shards = newShardedHeap(workers)
	}
	s.seedRoot()
	rt := newRealRuntime()
	if opt.Cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-opt.Cancel:
				rt.mu.Lock()
				s.aborted = true
				rt.cond.Broadcast()
				rt.mu.Unlock()
			case <-stop:
			}
		}()
	}
	start := time.Now()
	epoch := start
	if opt.Hooks != nil && !opt.Hooks.Epoch.IsZero() {
		epoch = opt.Hooks.Epoch
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := newWctx(rt)
			w.labels = opt.ProfileLabels
			if opt.Hooks != nil {
				w.attachHooks(id, opt.Hooks, epoch)
			}
			if s.shards != nil {
				w.shard = id
				w.rng = stealRNGSeed(opt.StealSeed, id)
				s.workerSharded(w)
				return
			}
			s.worker(w)
		}(i)
	}
	wg.Wait()
	rt.mu.Lock()
	aborted := s.aborted
	rt.mu.Unlock()
	res := s.result(workers)
	res.Elapsed = time.Since(start)
	resolved := s.root.done
	s.finalize()
	if !resolved {
		if aborted {
			return res, ErrAborted
		}
		return res, ErrUnresolved
	}
	return res, nil
}

// Simulate runs parallel ER on the deterministic discrete-event simulator
// with P virtual processors under the given cost model. Results (value,
// node counts, virtual makespan, loss decomposition) are exactly
// reproducible. Options.Cancel is ignored: simulated runs always complete.
// It panics if the simulator itself deadlocks — an internal-invariant
// violation — but an unresolved root is reported as ErrUnresolved.
func Simulate(pos game.Position, depth int, opt Options, cost CostModel) (Result, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	opt.Cancel = nil
	opt.Table = nil           // the paper's machine had no transposition table
	opt.Hooks = nil           // wall-clock hooks would perturb the bit-stable virtual run
	opt.ProfileLabels = false // goroutine labels are a real-runtime concern
	opt.Sharded = false       // the model keeps the paper's exact single-heap semantics
	s := newState(pos, depth, opt, cost)
	s.seedRoot()
	env := sim.NewEnv()
	if opt.Trace {
		env.EnableTrace()
	}
	res := env.NewResource("tree+heap")
	cond := env.NewCond(res)
	for i := 0; i < workers; i++ {
		env.Spawn(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			s.worker(newWctx(&simRuntime{p: p, res: res, cond: cond}))
		})
	}
	if err := env.Run(); err != nil {
		panic("core: " + err.Error())
	}
	out := s.result(workers)
	resolved := s.root.done
	if resolved {
		out.VirtualTime = env.Now()
		for _, p := range env.Procs() {
			out.BusyTime += p.Busy()
			out.StarveTime += p.StarveTime()
			out.LockTime += p.LockTime()
			if opt.Trace {
				out.Timeline = append(out.Timeline, p.BusyIntervals())
			}
		}
	}
	s.finalize()
	if !resolved {
		return out, ErrUnresolved
	}
	return out, nil
}
