// Package core implements the paper's primary contribution: the parallel ER
// game-tree search algorithm (§5-§6), organized as a problem-heap algorithm
// with a primary priority queue of scheduled work and a speculative priority
// queue of potential speculative work.
//
// The same engine runs on two runtimes (DESIGN.md §3): a real runtime using
// goroutines (true concurrency, used to validate correctness), and a
// simulated runtime on the deterministic discrete-event simulator of
// internal/sim, which reproduces the paper's 16-processor measurements with
// a virtual clock and cost model.
package core

import (
	"ertree/internal/game"
)

// nodeType is the paper's node classification: e-nodes are evaluated
// completely, r-nodes only need to be refuted, and undecided nodes await the
// outcome of the elder-grandchild protocol (§5, Table 1).
type nodeType int8

const (
	undecided nodeType = iota
	eNode
	rNode
)

func (t nodeType) String() string {
	switch t {
	case eNode:
		return "e-node"
	case rNode:
		return "r-node"
	default:
		return "undecided"
	}
}

// node is a shared game-tree node. All fields are guarded by the engine's
// single lock; positions themselves are immutable and may be read anywhere.
type node struct {
	pos    game.Position
	parent *node
	depth  int // remaining search depth (0 = static-evaluation leaf)
	ply    int // distance from the search root
	seq    uint64
	typ    nodeType

	// value is the fail-soft running value: the max over completed
	// children of the negation of their values (-Inf before any child
	// completes). It only ever increases.
	value game.Value

	// rootWin is the search window of the whole tree; meaningful only on
	// the root node (Options.RootWindow, FullWindow by default).
	rootWin game.Window

	done   bool // value is final (subtree solved or node cut off)
	cutoff bool // done because value >= effective beta

	// moves are the ordered child positions, generated once on first
	// expansion. kids[i] is the materialized node for moves[i]; e-nodes
	// materialize all children at once, undecided and r-nodes one at a
	// time (Table 1).
	moves    []game.Position
	kids     []*node
	expanded bool // moves generated

	activeKids int // kids generated and not yet done

	// e-node protocol state (valid when typ == eNode).
	elderDone int  // children whose elder grandchild (or self) is evaluated
	eSelected bool // a first e-child has been chosen
	eKids     int  // e-children selected so far (speculative-queue rank)
	refuting  bool // first e-child evaluated; remaining children being refuted
	onSpec    bool
	specKey   int64 // speculative-queue rank, computed at push time

	// child-side flags (about this node's role under its parent).
	specBorn     bool // born of a speculative-queue e-child selection (telemetry tag only)
	isEChild     bool // this node was selected as an e-child of its parent
	elderCounted bool // parent's elderDone already includes this node
	inPrimary    bool // guards duplicate primary-queue entries
	examine      bool // refutation step at the serial frontier: search this
	// node in one serial unit with the r-child protocol (Eval_first +
	// Refute_rest) instead of decomposing it further
}

// alive reports whether no ancestor of n (nor n itself) is done; work under
// a finished ancestor is garbage and is dropped lazily at pop time.
func (n *node) alive() bool {
	for a := n; a != nil; a = a.parent {
		if a.done {
			return false
		}
	}
	return true
}

// window computes n's effective alpha-beta window from the live values of
// its ancestors. Values only increase, so windows only narrow; deep cutoffs
// come from the alpha side being inherited across levels.
func (n *node) window() game.Window {
	if n.parent == nil {
		return n.rootWin
	}
	pw := n.parent.window()
	a := pw.Alpha
	if n.parent.value > a {
		a = n.parent.value
	}
	return game.Window{Alpha: -pw.Beta, Beta: -a}
}

// tentative reports the node's current tentative value and whether anything
// is known (used to rank e-child candidates by optimism).
func (n *node) tentative() (game.Value, bool) {
	if n.value <= -game.Inf {
		return n.value, false
	}
	return n.value, true
}

// eChildCandidate reports whether n may still be chosen as an e-child of its
// (e-node) parent: it must be undecided, unfinished, and have a known
// tentative value to rank by.
func (n *node) eChildCandidate() bool {
	if n.typ != undecided || n.done {
		return false
	}
	_, known := n.tentative()
	return known
}
