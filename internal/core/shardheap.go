package core

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Sharded problem heap for the real runtime.
//
// The paper's problem heap is one shared structure guarded by the engine
// lock, and on real hardware every pop serializes the workers on that lock —
// the same global-queue ceiling the Sequent hit at 16 processors. The
// sharded heap splits the two priority queues into per-worker shards: each
// worker owns a primary + speculative pair guarded by a private mutex, pushes
// the work it generates into its own shard, and pops from its own shard
// first. A worker that runs dry steals from the shard with the largest
// size hint (a relaxed atomic read, no lock taken until one victim is
// chosen), and a steal removes the *best* task the victim holds — the root
// of the victim's heap — so ER's deepest-first / fewest-e-children priorities
// are preserved per shard and approximately preserved globally.
//
// Flag discipline differs from the global heap in one deliberate way: the
// global heap clears inPrimary/onSpec at pop time, which is safe because pop
// happens under the engine lock. Sharded pops happen under only a shard
// mutex, so the popped node's queued flag stays set until the worker acquires
// the engine lock and begins processing (workerSharded). Between pop and
// processing the node is "in flight": re-push checks under the engine lock
// still observe it as queued and skip the duplicate — exactly the single-heap
// dedup semantics — and the in-flight worker processes it with whatever state
// the tree has by the time it gets the lock, which is what the single heap
// would have done too. Every queued-flag transition therefore happens under
// the engine lock, and the shard mutexes guard only the slice structure.
//
// Lock order: engine lock → shard mutex (pushes run under both); pops and
// steals take a shard mutex alone and never acquire the engine lock while
// holding one.
type shardedHeap struct {
	shards []heapShard

	// queued counts tasks across all shards. Workers check it under the
	// engine lock before sleeping; pushes increment it under the engine lock
	// before WakeAll, so the sleep/wake handshake has no lost-wakeup window.
	queued atomic.Int64

	pushes, pops atomic.Int64 // heap operations (interference accounting)
	specPops     atomic.Int64 // work taken from the speculative queues
	steals       atomic.Int64 // tasks taken from another worker's shard
	stealFails   atomic.Int64 // full victim sweeps that found nothing
}

// heapShard is one worker's slice of the problem heap: a primary/speculative
// queue pair with the same ordering invariants as the global problemHeap.
type heapShard struct {
	mu      sync.Mutex
	primary primaryQueue
	spec    specQueue

	// sizeP/sizeS are the load hints thieves and telemetry read without the
	// mutex: the number of tasks queued on this shard's primary and
	// speculative queues. They are updated inside the critical section, so a
	// hint can be momentarily stale but never drifts.
	sizeP atomic.Int64
	sizeS atomic.Int64

	// Pad shards apart so one worker's mutex traffic does not false-share
	// with its neighbor's.
	_ [64]byte
}

func newShardedHeap(shards int) *shardedHeap {
	if shards < 1 {
		shards = 1
	}
	return &shardedHeap{shards: make([]heapShard, shards)}
}

// pushPrimary schedules n on the given shard. Engine lock held.
func (h *shardedHeap) pushPrimary(n *node, shard int) {
	if n.inPrimary {
		return
	}
	n.inPrimary = true
	sh := &h.shards[shard]
	sh.mu.Lock()
	sh.primary = append(sh.primary, n)
	sh.primary.up(len(sh.primary) - 1)
	sh.sizeP.Add(1)
	sh.mu.Unlock()
	h.pushes.Add(1)
	h.queued.Add(1)
}

// pushPrimaryBatch schedules freshly generated children (never queued before,
// so the dedup check is skipped) on the given shard in one critical section.
// Engine lock held.
func (h *shardedHeap) pushPrimaryBatch(ns []*node, shard int) {
	sh := &h.shards[shard]
	sh.mu.Lock()
	for _, n := range ns {
		n.inPrimary = true
		sh.primary = append(sh.primary, n)
		sh.primary.up(len(sh.primary) - 1)
	}
	sh.sizeP.Add(int64(len(ns)))
	sh.mu.Unlock()
	h.pushes.Add(int64(len(ns)))
	h.queued.Add(int64(len(ns)))
}

// pushSpec places e-node n on the given shard's speculative queue. Engine
// lock held.
func (h *shardedHeap) pushSpec(n *node, shard int) {
	if n.onSpec {
		return
	}
	n.onSpec = true
	sh := &h.shards[shard]
	sh.mu.Lock()
	sh.spec = append(sh.spec, n)
	heapUpSpec(sh.spec)
	sh.sizeS.Add(1)
	sh.mu.Unlock()
	h.pushes.Add(1)
	h.queued.Add(1)
}

// popShard removes the best task from one shard: primary first, speculative
// otherwise (§6's pop order, applied per shard). It leaves the node's queued
// flag set — the caller clears it under the engine lock when processing
// starts. Called without the engine lock.
func (h *shardedHeap) popShard(idx int) (n *node, fromSpec bool) {
	sh := &h.shards[idx]
	sh.mu.Lock()
	switch {
	case len(sh.primary) > 0:
		n = heap.Pop(&sh.primary).(*node)
		sh.sizeP.Add(-1)
	case len(sh.spec) > 0:
		n = heap.Pop(&sh.spec).(*node)
		fromSpec = true
		sh.sizeS.Add(-1)
	default:
		sh.mu.Unlock()
		return nil, false
	}
	sh.mu.Unlock()
	h.queued.Add(-1)
	h.pops.Add(1)
	if fromSpec {
		h.specPops.Add(1)
	}
	return n, fromSpec
}

// steal takes the best task from the busiest other shard. Victim selection is
// two phases: read every shard's size hint (cheap atomic loads, no locks) and
// pick the largest, then lock only the chosen victim. A stale hint can make
// the chosen victim come up empty; the sweep then retries with fresh hints,
// at most once per shard, so a steal attempt is bounded even while other
// thieves race it. The scan starts at a per-call offset derived from rot so
// concurrent thieves with equal hints spread across victims instead of
// convoying on shard 0.
func (h *shardedHeap) steal(self int, rot uint64) (n *node, fromSpec bool) {
	off := int(rot % uint64(len(h.shards)))
	for attempt := 0; attempt < len(h.shards); attempt++ {
		victim, best := -1, int64(0)
		for i := range h.shards {
			j := (i + off + attempt) % len(h.shards)
			if j == self {
				continue
			}
			if sz := h.shards[j].sizeP.Load() + h.shards[j].sizeS.Load(); sz > best {
				victim, best = j, sz
			}
		}
		if victim < 0 {
			h.stealFails.Add(1)
			return nil, false
		}
		if n, fromSpec = h.popShard(victim); n != nil {
			h.steals.Add(1)
			return n, fromSpec
		}
	}
	h.stealFails.Add(1)
	return nil, false
}

// approxSizes returns the summed primary/speculative queue lengths without
// taking any shard lock; used for telemetry heap samples, where a momentarily
// stale total is fine.
func (h *shardedHeap) approxSizes() (primary, spec int) {
	for i := range h.shards {
		primary += int(h.shards[i].sizeP.Load())
		spec += int(h.shards[i].sizeS.Load())
	}
	return primary, spec
}

// release drops every shard's slices so no queued node stays reachable.
func (h *shardedHeap) release() {
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		sh.primary, sh.spec = nil, nil
		sh.sizeP.Store(0)
		sh.sizeS.Store(0)
		sh.mu.Unlock()
	}
}

// heapUpSpec restores the spec-queue heap invariant after an append — the
// sift-up half of container/heap.Push, mirroring primaryQueue.up.
func heapUpSpec(q specQueue) {
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.Less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}
