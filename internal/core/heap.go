package core

import "container/heap"

// The problem heap (§6): a pair of priority queues.
//
// The primary queue holds scheduled work — mandatory work plus speculative
// work that has been selected — ordered by node depth with the deepest nodes
// first (ties broken by creation order for determinism).
//
// The speculative queue holds e-nodes that are eligible to receive
// (additional) e-children, ranked by number of e-children (fewer first) with
// ties broken in favor of shallower nodes.

type primaryQueue []*node

func (q primaryQueue) Len() int { return len(q) }
func (q primaryQueue) Less(i, j int) bool {
	if q[i].ply != q[j].ply {
		return q[i].ply > q[j].ply // deepest first
	}
	return q[i].seq < q[j].seq
}
func (q primaryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *primaryQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *primaryQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

type specQueue []*node

func (q specQueue) Len() int { return len(q) }
func (q specQueue) Less(i, j int) bool {
	if q[i].specKey != q[j].specKey {
		return q[i].specKey < q[j].specKey
	}
	return q[i].seq < q[j].seq
}
func (q specQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *specQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *specQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// problemHeap bundles the two queues with operation counters.
type problemHeap struct {
	primary primaryQueue
	spec    specQueue

	pushes, pops int64 // heap operations (interference accounting)
	specPops     int64 // work taken from the speculative queue
	dropped      int64 // dead nodes discarded at pop time
}

func (h *problemHeap) pushPrimary(n *node) {
	if n.inPrimary {
		return
	}
	n.inPrimary = true
	h.pushes++
	heap.Push(&h.primary, n)
}

func (h *problemHeap) pushSpec(n *node) {
	if n.onSpec {
		return
	}
	n.onSpec = true
	h.pushes++
	heap.Push(&h.spec, n)
}

// pop removes the next work item: primary first, speculative otherwise
// (§6: "A processor that needs work first attempts to remove a scheduled
// node from the primary priority queue"). It returns nil when both queues
// are empty. fromSpec reports which queue served the node.
func (h *problemHeap) pop() (n *node, fromSpec bool) {
	if len(h.primary) > 0 {
		h.pops++
		n = heap.Pop(&h.primary).(*node)
		n.inPrimary = false
		return n, false
	}
	if len(h.spec) > 0 {
		h.pops++
		h.specPops++
		n = heap.Pop(&h.spec).(*node)
		n.onSpec = false
		return n, true
	}
	return nil, false
}

func (h *problemHeap) empty() bool { return len(h.primary) == 0 && len(h.spec) == 0 }
