package core

import (
	"container/heap"
	"sync/atomic"
)

// The problem heap (§6): a pair of priority queues.
//
// The primary queue holds scheduled work — mandatory work plus speculative
// work that has been selected — ordered by node depth with the deepest nodes
// first (ties broken by creation order for determinism).
//
// The speculative queue holds e-nodes that are eligible to receive
// (additional) e-children, ranked by number of e-children (fewer first) with
// ties broken in favor of shallower nodes.
//
// Queue mutation always happens under the engine lock; the operation
// counters are atomics so workers may read (and bump) them without it.

type primaryQueue []*node

func (q primaryQueue) Len() int { return len(q) }
func (q primaryQueue) Less(i, j int) bool {
	if q[i].ply != q[j].ply {
		return q[i].ply > q[j].ply // deepest first
	}
	return q[i].seq < q[j].seq
}
func (q primaryQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *primaryQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *primaryQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// up restores the heap invariant after appending at index i — the sift-up
// half of container/heap.Push, inlined so batch pushes skip one interface
// conversion and two indirect calls per child. Because Less is a strict
// total order (seq is a unique tiebreaker), the pop sequence is identical
// whichever push path built the heap.
func (q primaryQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.Less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

type specQueue []*node

func (q specQueue) Len() int { return len(q) }
func (q specQueue) Less(i, j int) bool {
	if q[i].specKey != q[j].specKey {
		return q[i].specKey < q[j].specKey
	}
	return q[i].seq < q[j].seq
}
func (q specQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *specQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *specQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// problemHeap bundles the two queues with operation counters.
type problemHeap struct {
	primary primaryQueue
	spec    specQueue

	pushes, pops atomic.Int64 // heap operations (interference accounting)
	specPops     atomic.Int64 // work taken from the speculative queue
}

func (h *problemHeap) pushPrimary(n *node) {
	if n.inPrimary {
		return
	}
	n.inPrimary = true
	h.pushes.Add(1)
	heap.Push(&h.primary, n)
}

// pushPrimaryBatch schedules a batch of freshly generated children (never
// queued before, so the inPrimary dedup check is skipped) with one sift-up
// pass over the new elements instead of one container/heap.Push per child —
// the e-node expansion of Table 1 schedules all children at once, and on the
// real runtime this entire pass runs under the engine lock.
func (h *problemHeap) pushPrimaryBatch(ns []*node) {
	for _, n := range ns {
		n.inPrimary = true
		h.primary = append(h.primary, n)
		h.primary.up(len(h.primary) - 1)
	}
	h.pushes.Add(int64(len(ns)))
}

func (h *problemHeap) pushSpec(n *node) {
	if n.onSpec {
		return
	}
	n.onSpec = true
	h.pushes.Add(1)
	heap.Push(&h.spec, n)
}

// pop removes the next work item: primary first, speculative otherwise
// (§6: "A processor that needs work first attempts to remove a scheduled
// node from the primary priority queue"). It returns nil when both queues
// are empty. fromSpec reports which queue served the node.
func (h *problemHeap) pop() (n *node, fromSpec bool) {
	if len(h.primary) > 0 {
		h.pops.Add(1)
		n = heap.Pop(&h.primary).(*node)
		n.inPrimary = false
		return n, false
	}
	if len(h.spec) > 0 {
		h.pops.Add(1)
		h.specPops.Add(1)
		n = heap.Pop(&h.spec).(*node)
		n.onSpec = false
		return n, true
	}
	return nil, false
}

func (h *problemHeap) empty() bool { return len(h.primary) == 0 && len(h.spec) == 0 }
