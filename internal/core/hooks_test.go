package core

import (
	"sync"
	"testing"
	"time"

	"ertree/internal/gtree"
	"ertree/internal/randtree"
)

// hookSink collects worker telemetry concurrently, the way engine and
// command consumers do.
type hookSink struct {
	mu   sync.Mutex
	tels []WorkerTelemetry
}

func (s *hookSink) add(wt WorkerTelemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tels = append(s.tels, wt)
}

func TestHooksObserveSearch(t *testing.T) {
	tree := &randtree.Tree{Seed: 11, Degree: 4, Depth: 7, ValueRange: 1000}
	sink := &hookSink{}
	opt := DefaultOptions()
	opt.Workers = 4
	opt.SerialDepth = 3
	opt.Hooks = &Hooks{Spans: true, HeapEvery: 1, OnWorkerDone: sink.add}
	res, err := Search(tree.Root(), 7, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(tree.Root(), 7); res.Value != want {
		t.Fatalf("hooked search value %d, want %d", res.Value, want)
	}
	if len(sink.tels) != 4 {
		t.Fatalf("got %d worker telemetry shards, want 4", len(sink.tels))
	}
	seen := map[int]bool{}
	var tasks, serial, spans int64
	var heapSamples int
	for _, wt := range sink.tels {
		if seen[wt.Worker] {
			t.Fatalf("worker %d delivered telemetry twice", wt.Worker)
		}
		seen[wt.Worker] = true
		tasks += wt.Tasks()
		// Result.SerialTasks counts both serial-ER and examine units.
		serial += wt.TaskCounts[TaskSerial] + wt.TaskCounts[TaskExamine]
		spans += int64(len(wt.Spans))
		heapSamples += len(wt.HeapSamples)
		if wt.Busy() < 0 {
			t.Fatalf("worker %d negative busy time", wt.Worker)
		}
		for _, sp := range wt.Spans {
			if sp.End < sp.Start || sp.Start < 0 {
				t.Fatalf("worker %d span out of order: %+v", wt.Worker, sp)
			}
		}
		if wt.SpecTasks > wt.Tasks() {
			t.Fatalf("worker %d: spec tasks %d exceed total %d", wt.Worker, wt.SpecTasks, wt.Tasks())
		}
	}
	if tasks == 0 || spans != tasks {
		t.Fatalf("tasks %d, spans %d: want equal and positive", tasks, spans)
	}
	if serial != res.SerialTasks {
		t.Fatalf("telemetry serial tasks %d, result says %d", serial, res.SerialTasks)
	}
	if heapSamples == 0 {
		t.Fatal("HeapEvery=1 recorded no heap samples")
	}
}

// TestHooksSharedEpoch: successive searches handed the same epoch produce
// spans on one common time axis (the engine merges deepening iterations
// into one session timeline this way).
func TestHooksSharedEpoch(t *testing.T) {
	tree := gtree.Figure6Tree()
	sink := &hookSink{}
	epoch := time.Now()
	opt := DefaultOptions()
	opt.Workers = 2
	opt.Hooks = &Hooks{Epoch: epoch, Spans: true, OnWorkerDone: sink.add}
	for i := 0; i < 2; i++ {
		if _, err := Search(tree, tree.Height(), opt); err != nil {
			t.Fatal(err)
		}
	}
	merged := map[int]*WorkerTelemetry{}
	for _, wt := range sink.tels {
		if m, ok := merged[wt.Worker]; ok {
			m.Merge(wt)
		} else {
			cp := wt
			merged[wt.Worker] = &cp
		}
	}
	if len(merged) != 2 {
		t.Fatalf("merged tracks: %d, want 2", len(merged))
	}
	for id, wt := range merged {
		if wt.Tasks() == 0 {
			continue // a worker can exit without ever winning a task
		}
		if int64(len(wt.Spans)) != wt.Tasks() {
			t.Fatalf("worker %d: %d spans for %d tasks", id, len(wt.Spans), wt.Tasks())
		}
	}
}

// TestHooksDisabledInstrumentationAllocFree pins the nil-hook fast path: with
// telemetry disabled the per-task instrumentation — including every flight-
// recorder call site — performs zero allocations (and, by construction, no
// clock reads).
func TestHooksDisabledInstrumentationAllocFree(t *testing.T) {
	w := newWctx(newRealRuntime())
	n := &node{seq: 7, ply: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		start := w.taskStart()
		w.sampleHeap(3, 1)
		w.event(Event{Kind: EvSpawn, Seq: n.seq, Par: RootSeq, Ply: int32(n.ply)})
		w.event(Event{Kind: EvCombine, Seq: n.seq, Par: RootSeq, Arg: 42})
		w.taskEnd(start, TaskSerial, false, n)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f per task, want 0", allocs)
	}
}

// TestSimulateIgnoresHooks: the simulator must stay bit-stable, so hooks are
// stripped before the virtual run.
func TestSimulateIgnoresHooks(t *testing.T) {
	tree := gtree.Figure6Tree()
	sink := &hookSink{}
	opt := DefaultOptions()
	opt.Workers = 2
	opt.Hooks = &Hooks{Spans: true, OnWorkerDone: sink.add}
	if _, err := Simulate(tree, tree.Height(), opt, DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	if len(sink.tels) != 0 {
		t.Fatalf("Simulate delivered %d telemetry shards, want 0", len(sink.tels))
	}
}

// BenchmarkSearchHooksOverhead compares the same real-runtime search with
// hooks disabled and fully enabled; the guard for "enabling observability
// does not tax the disabled hot path" is the alloc-free test above, this
// benchmark measures what enabling costs.
func BenchmarkSearchHooksOverhead(b *testing.B) {
	tree := &randtree.Tree{Seed: 5, Degree: 4, Depth: 8, ValueRange: 1000}
	run := func(b *testing.B, hooks *Hooks) {
		b.ReportAllocs()
		opt := DefaultOptions()
		opt.Workers = 4
		opt.SerialDepth = 3
		opt.Hooks = hooks
		for i := 0; i < b.N; i++ {
			if _, err := Search(tree.Root(), 8, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		run(b, &Hooks{Spans: true, HeapEvery: 16, OnWorkerDone: func(WorkerTelemetry) {}})
	})
	b.Run("recorder", func(b *testing.B) {
		run(b, &Hooks{Spans: true, HeapEvery: 16, Events: 1 << 14,
			OnWorkerDone: func(WorkerTelemetry) {}})
	})
}
