package core

import "ertree/internal/game"

// worker is the per-processor loop of §6:
//
//	repeat
//	    take a node from the problem-heap;
//	    if node is a leaf then begin value := static_evaluator; combine end
//	    else generate children as specified in Table 1;
//	until done;
//
// extended with the serial-depth cut-over (nodes at remaining depth at or
// below Options.SerialDepth are searched by serial ER in one unit), lazy
// cancellation of work whose ancestors were resolved while it was queued,
// and a cooperative abort flag checked on every pop-loop round so a
// cancelled search winds down after at most one in-flight task per worker.
//
// Heavy computation (position expansion, static evaluation, serial subtree
// search) happens outside the lock; all tree and heap mutation happens under
// it.
func (s *state) worker(rt Runtime) {
	rt.Lock()
	defer rt.Unlock()
	for {
		for !s.finished && !s.aborted && s.heap.empty() {
			rt.WaitWork()
		}
		if s.finished || s.aborted {
			return
		}
		n, fromSpec := s.heap.pop()
		rt.HoldWork(s.cost.HeapOp)
		if n == nil {
			continue
		}
		if fromSpec {
			s.specAction(n, rt)
			continue
		}
		if !n.alive() {
			s.heap.dropped++
			continue
		}
		w := n.window()
		if w.Empty() || n.value >= w.Beta {
			// The window closed while the node was queued: cut it off
			// without searching (a cutoff the serial algorithm would have
			// taken before recursing).
			s.cutoffAtPop(n, w, rt)
			continue
		}
		switch {
		case n.depth == 0:
			s.leafTask(n, rt)
		case n.depth <= s.opt.SerialDepth && n.typ == eNode:
			// The serial cut-over matches work units to node roles. An
			// e-node's work is a complete evaluation — exactly one
			// serial ER call. Undecided and r-nodes at the frontier
			// still follow Table 1 (their work is per-child), but the
			// children they generate become single serial units: e-node
			// children full ER calls, r-node children Examine calls.
			s.serialTask(n, w, rt)
		case n.examine:
			s.examineTask(n, w, rt)
		default:
			if !n.expanded && !s.expandTask(n, rt) {
				continue // node died during expansion
			}
			if len(n.moves) == 0 {
				s.leafTask(n, rt) // terminal position above the horizon
				continue
			}
			s.table1(n, rt)
		}
	}
}

// leafTask evaluates a frontier or terminal node. Lock held on entry and
// exit; released around the evaluator call.
func (s *state) leafTask(n *node, rt Runtime) {
	s.leafTasks++
	rt.Unlock()
	v := n.pos.Value()
	rt.FreeWork(s.cost.Eval)
	rt.Lock()
	s.stats.AddEvaluated(1)
	s.stats.NotePly(n.ply)
	if !n.alive() {
		s.heap.dropped++
		return
	}
	s.finish(n, v, rt)
}

// serialTask searches the subtree under n with serial ER using a snapshot of
// the node's window. Windows only narrow, so a snapshot is always a
// superset of the live window and the result remains sound; searching with
// the stale window is precisely the missed-cutoff speculative loss the paper
// measures. Lock held on entry and exit.
func (s *state) serialTask(n *node, w game.Window, rt Runtime) {
	s.serialTasks++
	// A promoted e-child already carries a sound lower bound from its
	// evaluated first child; raising alpha to it prunes the (partial)
	// re-search of that subtree.
	if n.value > w.Alpha {
		w.Alpha = n.value
	}
	rt.Unlock()
	local := &game.Stats{}
	searcher := s.serialSearcher(local, n.ply)
	v := searcher.ER(n.pos, n.depth, w)
	snap := local.Snapshot()
	rt.FreeWork(s.taskCost(snap))
	rt.Lock()
	s.stats.Merge(snap)
	if !n.alive() {
		s.heap.dropped++
		return
	}
	s.finish(n, v, rt)
}

// examineTask performs one refutation step in one serial unit: the r-node
// child n is searched with the r-child protocol (Eval_first + Refute_rest)
// under a window snapshot taken at pop time, so each step of a sequential
// refutation sees the freshest bounds. Lock held on entry and exit.
func (s *state) examineTask(n *node, w game.Window, rt Runtime) {
	s.serialTasks++
	rt.Unlock()
	local := &game.Stats{}
	searcher := s.serialSearcher(local, n.ply)
	v := searcher.Examine(n.pos, n.depth, w)
	snap := local.Snapshot()
	rt.FreeWork(s.taskCost(snap))
	rt.Lock()
	s.stats.Merge(snap)
	if !n.alive() {
		s.heap.dropped++
		return
	}
	s.finish(n, v, rt)
}

// expandTask generates and orders n's child positions outside the lock.
// Children of e-nodes are not statically sorted (§7): the elder-grandchild
// protocol orders them by tentative value instead. Returns false if the node
// died meanwhile. Lock held on entry and exit.
func (s *state) expandTask(n *node, rt Runtime) bool {
	rt.Unlock()
	moves := n.pos.Children()
	var sortEvals int64
	if len(moves) > 1 && n.typ != eNode {
		o := s.orderer()
		sortEvals = int64(o.Cost(len(moves), n.ply))
		moves = o.Order(moves, n.ply)
	}
	rt.FreeWork(sortEvals * s.cost.Eval)
	rt.Lock()
	s.stats.AddSortEvals(sortEvals)
	if !n.alive() {
		s.heap.dropped++
		return false
	}
	n.moves = moves
	n.expanded = true
	return true
}
