package core

import "ertree/internal/game"

// worker is the per-processor loop of §6:
//
//	repeat
//	    take a node from the problem-heap;
//	    if node is a leaf then begin value := static_evaluator; combine end
//	    else generate children as specified in Table 1;
//	until done;
//
// extended with the serial-depth cut-over (nodes at remaining depth at or
// below Options.SerialDepth are searched by serial ER in one unit), lazy
// cancellation of work whose ancestors were resolved while it was queued,
// and a cooperative abort flag checked on every pop-loop round so a
// cancelled search winds down after at most one in-flight task per worker.
//
// Heavy computation (position expansion, static evaluation, serial subtree
// search, transposition-table traffic) happens outside the lock; all tree
// and heap mutation happens under it. Statistics — and, when Options.Hooks
// is set, telemetry spans — go to the worker's private shard, merged into
// the run-wide sink (or delivered to the hooks) when the worker exits.
func (s *state) worker(w *wctx) {
	defer func() {
		s.stats.Merge(w.stats.Snapshot())
		w.flush()
	}()
	rt := w.rt
	rt.Lock()
	defer rt.Unlock()
	for {
		for !s.finished && !s.aborted && s.heap.empty() {
			rt.WaitWork()
		}
		if s.finished || s.aborted {
			return
		}
		n, fromSpec := s.heap.pop()
		if n == nil {
			// An empty pop touched no heap structure, so it charges no
			// heap time (it would otherwise count as interference the
			// paper's model never incurs).
			continue
		}
		rt.HoldWork(s.cost.HeapOp)
		w.sampleHeap(len(s.heap.primary), len(s.heap.spec))
		s.runTask(n, fromSpec, w)
	}
}

// runTask executes one popped task: the Table 1 / §6 dispatch shared by the
// global-heap worker and the sharded-heap worker (stealworker.go). The node's
// queued flag has already been cleared — at pop time on the global heap, at
// processing time on the sharded heap — so from here both runtimes see
// identical semantics. Lock held on entry and exit.
func (s *state) runTask(n *node, fromSpec bool, w *wctx) {
	if w.labels {
		setTaskLabels(s.classifyTask(n, fromSpec))
		defer clearTaskLabels()
	}
	start := w.taskStart()
	if fromSpec {
		s.specAction(n, w)
		w.taskEnd(start, TaskSpec, true, n)
		return
	}
	if !n.alive() {
		s.dropped.Add(1)
		w.taskEnd(start, TaskDrop, n.specBorn, n)
		return
	}
	win := n.window()
	if win.Empty() || n.value >= win.Beta {
		// The window closed while the node was queued: cut it off
		// without searching (a cutoff the serial algorithm would have
		// taken before recursing).
		s.cutoffAtPop(n, win, w)
		w.taskEnd(start, TaskCutoff, n.specBorn, n)
		return
	}
	switch {
	case n.depth == 0:
		s.leafTask(n, w)
		w.taskEnd(start, TaskLeaf, n.specBorn, n)
	case n.depth <= s.opt.SerialDepth && n.typ == eNode:
		// The serial cut-over matches work units to node roles. An
		// e-node's work is a complete evaluation — exactly one
		// serial ER call. Undecided and r-nodes at the frontier
		// still follow Table 1 (their work is per-child), but the
		// children they generate become single serial units: e-node
		// children full ER calls, r-node children Examine calls.
		s.serialTask(n, win, w)
		w.taskEnd(start, TaskSerial, n.specBorn, n)
	case n.examine:
		s.examineTask(n, win, w)
		w.taskEnd(start, TaskExamine, n.specBorn, n)
	default:
		if !n.expanded && !s.expandTask(n, w) {
			w.taskEnd(start, TaskExpand, n.specBorn, n)
			return // node died during expansion
		}
		if len(n.moves) == 0 {
			s.leafTask(n, w) // terminal position above the horizon
			w.taskEnd(start, TaskLeaf, n.specBorn, n)
			return
		}
		s.table1(n, w)
		w.taskEnd(start, TaskExpand, n.specBorn, n)
	}
}

// leafTask evaluates a frontier or terminal node. Lock held on entry and
// exit; released around the evaluator call.
func (s *state) leafTask(n *node, w *wctx) {
	s.leafTasks.Add(1)
	w.rt.Unlock()
	v := n.pos.Value()
	w.rt.FreeWork(s.cost.Eval)
	w.stats.AddEvaluated(1)
	w.stats.NotePly(n.ply)
	w.rt.Lock()
	if !n.alive() {
		s.dropped.Add(1)
		w.event(Event{Kind: EvDiscard, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
		return
	}
	s.finish(n, v, w)
}

// serialTask searches the subtree under n with serial ER using a snapshot of
// the node's window. Windows only narrow, so a snapshot is always a
// superset of the live window and the result remains sound; searching with
// the stale window is precisely the missed-cutoff speculative loss the paper
// measures. With a transposition table attached the task probes before
// searching — a stored bound narrows the window or answers the task outright
// — and stores its fail-soft result after, so concurrent workers and later
// searches of the same position reuse the subtree work. Lock held on entry
// and exit.
func (s *state) serialTask(n *node, win game.Window, w *wctx) {
	s.serialTasks.Add(1)
	// A promoted e-child already carries a sound lower bound from its
	// evaluated first child; raising alpha to it prunes the (partial)
	// re-search of that subtree.
	if n.value > win.Alpha {
		win.Alpha = n.value
	}
	w.rt.Unlock()
	v, answered := game.Value(0), false
	key, hashed := s.ttKey(n.pos)
	if hashed {
		v, answered = s.ttProbe(key, n.depth, &win)
	}
	if !answered {
		local := &game.Stats{}
		searcher := s.serialSearcher(local, n.ply)
		v = searcher.ER(n.pos, n.depth, win)
		snap := local.Snapshot()
		w.rt.FreeWork(s.taskCost(snap))
		w.stats.Merge(snap)
		if hashed {
			s.ttStore(key, n.depth, win, v)
		}
	}
	w.rt.Lock()
	if answered {
		w.event(Event{Kind: EvTTCutoff, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
	}
	if !n.alive() {
		s.dropped.Add(1)
		w.event(Event{Kind: EvDiscard, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
		return
	}
	s.finish(n, v, w)
}

// examineTask performs one refutation step in one serial unit: the r-node
// child n is searched with the r-child protocol (Eval_first + Refute_rest)
// under a window snapshot taken at pop time, so each step of a sequential
// refutation sees the freshest bounds. Like serialTask it is backed by the
// optional transposition table. Lock held on entry and exit.
func (s *state) examineTask(n *node, win game.Window, w *wctx) {
	s.serialTasks.Add(1)
	w.rt.Unlock()
	v, answered := game.Value(0), false
	key, hashed := s.ttKey(n.pos)
	if hashed {
		v, answered = s.ttProbe(key, n.depth, &win)
	}
	if !answered {
		local := &game.Stats{}
		searcher := s.serialSearcher(local, n.ply)
		v = searcher.Examine(n.pos, n.depth, win)
		snap := local.Snapshot()
		w.rt.FreeWork(s.taskCost(snap))
		w.stats.Merge(snap)
		if hashed {
			s.ttStore(key, n.depth, win, v)
		}
	}
	w.rt.Lock()
	if answered {
		w.event(Event{Kind: EvTTCutoff, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
	}
	if !n.alive() {
		s.dropped.Add(1)
		w.event(Event{Kind: EvDiscard, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
		return
	}
	s.finish(n, v, w)
}

// expandTask generates and orders n's child positions outside the lock.
// Children of e-nodes are not statically sorted (§7): the elder-grandchild
// protocol orders them by tentative value instead. Returns false if the node
// died meanwhile. Lock held on entry and exit.
func (s *state) expandTask(n *node, w *wctx) bool {
	// Capture the node type before dropping the lock: startRefutation can
	// retype this node to an r-node concurrently, and the ordering decision
	// must use one coherent value (the type it had when expansion began).
	isENode := n.typ == eNode
	w.rt.Unlock()
	moves := n.pos.Children()
	var sortEvals int64
	if len(moves) > 1 && !isENode {
		o := s.orderer()
		sortEvals = int64(o.Cost(len(moves), n.ply))
		moves = o.Order(moves, n.ply)
	}
	w.rt.FreeWork(sortEvals * s.cost.Eval)
	w.stats.AddSortEvals(sortEvals)
	w.rt.Lock()
	if !n.alive() {
		s.dropped.Add(1)
		w.event(Event{Kind: EvDiscard, Seq: n.seq, Spec: n.specBorn, Ply: int32(n.ply)})
		return false
	}
	n.moves = moves
	n.expanded = true
	return true
}
