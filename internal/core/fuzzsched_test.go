package core

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ertree/internal/driver"
	"ertree/internal/game"
	"ertree/internal/randtree"
	"ertree/internal/tt"
)

// Differential schedule-fuzzing harness.
//
// The sharded work-stealing heap relaxes the paper's global task ordering:
// which nodes are speculatively expanded now depends on steal interleavings,
// pop timing, and the per-worker victim rotation. The root value must not —
// parallel ER is sound for any schedule because tasks are independent,
// combine is a commutative max, and windows only narrow. This harness makes
// that claim falsifiable: randomized trees, worker counts, steal seeds and
// injected pop-delays, every run cross-checked against the serial negamax
// oracle and the heap conservation invariants (no lost tasks, no duplicate
// queue entries, finish exactly once per node — the latter two armed as
// panics via debugInvariants for the whole package test run).

// TestMain arms the package-wide schedule-perturbation instrumentation:
// debugInvariants turns the double-finish / duplicate-pop checks into panics
// for every test in this package, and the pop-jitter hook is installed once
// here (behavior gated by the jitterSeed atomic, so tests toggle it without
// racing workers that are mid-read).
func TestMain(m *testing.M) {
	debugInvariants = true
	testPopJitter = scheduleJitter
	os.Exit(m.Run())
}

// jitterSeed arms scheduleJitter when nonzero; jitterTick decorrelates
// successive calls.
var (
	jitterSeed atomic.Uint64
	jitterTick atomic.Uint64
)

// scheduleJitter perturbs the sharded pop loop: occasional microsecond
// sleeps and yields, hashed from the armed seed, the worker index and a
// global tick, so steals race drains and sleep races pushes in ways the
// normal scheduler rarely produces.
func scheduleJitter(worker int) {
	seed := jitterSeed.Load()
	if seed == 0 {
		return
	}
	x := seed ^ uint64(worker+1)*0x9E3779B97F4A7C15 ^ jitterTick.Add(1)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	switch x % 16 {
	case 0:
		time.Sleep(time.Duration(x%64) * time.Microsecond)
	case 1, 2, 3:
		runtime.Gosched()
	}
}

// fuzzCase is one decoded schedule-fuzz configuration.
type fuzzCase struct {
	tree    *randtree.Tree
	depth   int
	opt     Options
	jitter  uint64
	withTT  bool
	sharded bool
	// drv, when non-empty, additionally deepens 1..depth through the named
	// root driver (aspiration/mtdf/bns), each iteration resolved by
	// RootWindow-bounded searches of this same configuration — the driver
	// dimension of the fuzz space.
	drv string
}

// decodeFuzzCase maps raw fuzz inputs onto a bounded search configuration:
// trees small enough that the serial oracle stays fast, worker counts up to
// 8, all speculation mechanisms and spec-rank policies reachable, sharded
// and global heaps both reachable, steal seeds and pop-jitter fuzzed.
func decodeFuzzCase(seed uint64, shape uint16, sched uint32, stealSeed uint64) fuzzCase {
	degree := 1 + int(shape%4)     // 1..4
	depth := 1 + int((shape>>2)%6) // 1..6
	valueRange := 1 + int32((shape>>8)%200)
	// Cap the leaf count so one case stays well under a millisecond of
	// oracle time: shrink depth until degree^depth <= 4096.
	for leaves := pow(degree, depth); leaves > 4096; leaves = pow(degree, depth) {
		depth--
	}
	c := fuzzCase{
		tree:  &randtree.Tree{Seed: seed, Degree: degree, Depth: depth, ValueRange: valueRange},
		depth: depth,
	}
	c.opt = Options{
		Workers:            1 + int(sched%8),
		SerialDepth:        int((sched >> 3) % 4),
		ParallelRefutation: sched>>5&1 == 1,
		MultipleENodes:     sched>>6&1 == 1,
		EarlyChoice:        sched>>7&1 == 1,
		SpecRank:           SpecRank((sched >> 8) % 3),
		EagerSpec:          sched>>10&1 == 1,
		Sharded:            sched>>11&1 == 1,
		StealSeed:          stealSeed,
	}
	c.sharded = c.opt.Sharded
	c.withTT = sched>>12&1 == 1
	if c.withTT {
		c.opt.Table = tt.NewDefault(10, 4)
	}
	if sched>>13&1 == 1 {
		c.jitter = stealSeed | 1
	}
	c.drv = [...]string{"", "aspiration", "mtdf", "bns"}[(sched>>14)&3]
	return c
}

func pow(b, e int) int {
	n := 1
	for i := 0; i < e; i++ {
		n *= b
		if n > 1<<20 {
			return n
		}
	}
	return n
}

// verifyHeapConservation inspects the post-search state (via testStateHook,
// after all workers exited, before the arena is released): every push was
// either popped or is still queued (no lost tasks), every queued node still
// carries its queued flag (no orphaned entries), and the queued counter
// agrees with the shard contents.
func verifyHeapConservation(t testing.TB, s *state) {
	t.Helper()
	if s.shards != nil {
		var remaining int64
		for i := range s.shards.shards {
			sh := &s.shards.shards[i]
			sh.mu.Lock()
			for _, n := range sh.primary {
				if !n.inPrimary {
					t.Errorf("shard %d: queued primary node without inPrimary flag", i)
				}
			}
			for _, n := range sh.spec {
				if !n.onSpec {
					t.Errorf("shard %d: queued spec node without onSpec flag", i)
				}
			}
			remaining += int64(len(sh.primary) + len(sh.spec))
			sh.mu.Unlock()
		}
		if q := s.shards.queued.Load(); q != remaining {
			t.Errorf("queued counter %d, shard contents %d", q, remaining)
		}
		pushes, pops := s.shards.pushes.Load(), s.shards.pops.Load()
		if pushes != pops+remaining {
			t.Errorf("task conservation violated: %d pushed, %d popped, %d remaining", pushes, pops, remaining)
		}
	} else {
		remaining := int64(len(s.heap.primary) + len(s.heap.spec))
		pushes, pops := s.heap.pushes.Load(), s.heap.pops.Load()
		if pushes != pops+remaining {
			t.Errorf("task conservation violated: %d pushed, %d popped, %d remaining", pushes, pops, remaining)
		}
	}
	if !s.root.done && !s.aborted {
		t.Error("workers exited with the root unresolved and no abort")
	}
}

// runFuzzCase executes one configuration against the oracle. Called only
// from sequential tests (testStateHook is a package global).
func runFuzzCase(t testing.TB, c fuzzCase) {
	t.Helper()
	want := oracle(c.tree.Root(), c.depth)

	jitterSeed.Store(c.jitter)
	defer jitterSeed.Store(0)
	testStateHook = func(s *state) { verifyHeapConservation(t, s) }
	defer func() { testStateHook = nil }()

	res, err := Search(c.tree.Root(), c.depth, c.opt)
	if err != nil {
		t.Fatalf("%+v: Search: %v", c.opt, err)
	}
	if res.Value != want {
		t.Fatalf("schedule divergence: tree %v depth %d opt %+v: Search = %d, oracle = %d",
			c.tree, c.depth, c.opt, res.Value, want)
	}
	if !res.Exact {
		t.Fatalf("full-window search reported inexact result: %+v", res)
	}
	if res.Sharded != c.sharded {
		t.Fatalf("Result.Sharded = %v, want %v", res.Sharded, c.sharded)
	}

	if c.drv != "" {
		runFuzzDriver(t, c)
	}
}

// runFuzzDriver deepens 1..depth through the configured root driver, every
// iteration resolved by RootWindow-bounded searches of the fuzzed scheduler
// configuration. Each depth's resolved value must match the oracle — the
// driver must converge through whatever fail-soft bounds the fuzzed schedule
// produces, with or without a table (the no-table mtdf degradation path is
// half the fuzz space). Core searches report no root move, so resolution is
// value-only (move -1 throughout).
func runFuzzDriver(t testing.TB, c fuzzCase) {
	t.Helper()
	d, err := driver.New(c.drv, driver.Config{Delta: 8})
	if err != nil {
		t.Fatal(err)
	}
	prev := game.NoValue
	for depth := 1; depth <= c.depth; depth++ {
		want := oracle(c.tree.Root(), depth)
		r, err := d.Resolve(func(w game.Window) (int, game.Value, error) {
			opt := c.opt
			opt.RootWindow = &w
			res, err := Search(c.tree.Root(), depth, opt)
			if err != nil {
				return -1, 0, err
			}
			return -1, res.Value, nil
		}, prev)
		if err != nil {
			t.Fatalf("driver %s depth %d: %v", c.drv, depth, err)
		}
		if r.Value != want {
			t.Fatalf("driver divergence: %s on tree %v depth %d opt %+v: resolved %d, oracle %d",
				c.drv, c.tree, depth, c.opt, r.Value, want)
		}
		if r.Probes > driver.DefaultMaxProbes {
			t.Fatalf("driver %s depth %d: %d probes exceeds the budget", c.drv, depth, r.Probes)
		}
		prev = r.Value
	}
}

// FuzzSearchEquivalence is the native fuzz target: `go test
// -fuzz=FuzzSearchEquivalence ./internal/core/` explores tree shapes, worker
// counts, heap modes, steal seeds, pop-delays and root drivers, failing on
// any divergence from the serial oracle or any invariant violation. The
// committed corpus under testdata/fuzz/ pins the interesting region (sharded
// × jitter × spec-rank × TT × driver) so plain `go test` replays it on every
// run.
func FuzzSearchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(0x0F), uint32(0xFFFF), uint64(42))
	f.Add(uint64(0x60_0D), uint16(0x1B), uint32(0x2FE1), uint64(7))
	f.Add(uint64(3), uint16(0x2A7), uint32(0x3AE5), uint64(0))
	f.Add(uint64(99), uint16(0x13), uint32(0x0820), uint64(123456789))
	f.Add(uint64(424242), uint16(0x3FF), uint32(0x1FFF), uint64(0xDEADBEEF))
	// Driver-dimension seeds (sched bits 14-15): aspiration over the sharded
	// heap, mtdf with the table, mtdf without the table (the degradation
	// path), and bns with jitter armed.
	f.Add(uint64(0x60_0E), uint16(0x1B), uint32(0x6FE1), uint64(17))
	f.Add(uint64(5), uint16(0x2A7), uint32(0xBAE5), uint64(3))
	f.Add(uint64(77), uint16(0x153), uint32(0x8FE1), uint64(9))
	f.Add(uint64(2024), uint16(0x3F), uint32(0xFFFF), uint64(0xFEED))
	f.Fuzz(func(t *testing.T, seed uint64, shape uint16, sched uint32, stealSeed uint64) {
		runFuzzCase(t, decodeFuzzCase(seed, shape, sched, stealSeed))
	})
}

// TestDifferentialSchedules is the deterministic slice of the fuzz space run
// on every `go test`: for a spread of trees it compares the serial oracle,
// the global heap, and the sharded heap across worker counts, steal seeds
// and jitter, asserting identical root values and heap conservation on every
// run.
func TestDifferentialSchedules(t *testing.T) {
	type variant struct {
		workers   int
		sharded   bool
		stealSeed uint64
		jitter    uint64
	}
	variants := []variant{
		{workers: 1, sharded: false},
		{workers: 4, sharded: false},
		{workers: 1, sharded: true},
		{workers: 2, sharded: true, stealSeed: 1},
		{workers: 4, sharded: true, stealSeed: 99, jitter: 0xABCD},
		{workers: 8, sharded: true, stealSeed: 7, jitter: 0x1234},
	}
	trees := []*randtree.Tree{
		{Seed: 11, Degree: 2, Depth: 8, ValueRange: 100},
		{Seed: 12, Degree: 3, Depth: 6, ValueRange: 1000},
		{Seed: 13, Degree: 4, Depth: 5, ValueRange: 5}, // heavy ties
		{Seed: 14, Degree: 1, Depth: 6, ValueRange: 50},
	}
	for ti, tr := range trees {
		for _, sd := range []int{0, 2} {
			for vi, v := range variants {
				c := fuzzCase{
					tree:  tr,
					depth: tr.Depth,
					opt: Options{
						Workers:            v.workers,
						SerialDepth:        sd,
						ParallelRefutation: true,
						MultipleENodes:     true,
						EarlyChoice:        true,
						Sharded:            v.sharded,
						StealSeed:          v.stealSeed,
					},
					jitter:  v.jitter,
					sharded: v.sharded,
				}
				t.Run(fmt.Sprintf("tree%d-sd%d-v%d", ti, sd, vi), func(t *testing.T) {
					runFuzzCase(t, c)
				})
			}
		}
	}
}

// TestShardedDrainNoLivelock is the regression test for the empty-pop path
// under stealing: with far more workers than the tree can feed, most workers
// oscillate between failed local pops, failed steals and cond-wait sleeps
// while the heap drains, with pop-jitter widening the race windows. Any lost
// wakeup (a push whose WakeAll lands before a starving worker re-checks the
// queued counter) or a steal/termination livelock shows up as the batch
// blowing the deadline.
func TestShardedDrainNoLivelock(t *testing.T) {
	tr := &randtree.Tree{Seed: 21, Degree: 3, Depth: 7, ValueRange: 100}
	want := oracle(tr.Root(), 7)
	jitterSeed.Store(0x5EED)
	defer jitterSeed.Store(0)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 25; i++ {
			opt := DefaultOptions()
			opt.Workers = 16
			opt.SerialDepth = 1
			opt.Sharded = true
			opt.StealSeed = uint64(i) * 0x9E3779B9
			res, err := Search(tr.Root(), 7, opt)
			if err != nil {
				done <- err
				return
			}
			if res.Value != want {
				done <- fmt.Errorf("run %d: Search = %d, oracle = %d", i, res.Value, want)
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("livelock: 25 sharded drains did not finish in 60s\n%s", buf[:n])
	}
}

// TestShardedStealsHappen pins that the sharded configuration actually
// exercises the steal path (a scheduler whose workers never run dry would
// leave the whole steal mechanism untested): across a batch of searches wide
// enough to starve some shards, at least one steal must occur, and the steal
// counters must be consistent with the telemetry shards.
func TestShardedStealsHappen(t *testing.T) {
	tr := &randtree.Tree{Seed: 5, Degree: 4, Depth: 7, ValueRange: 10000}
	var steals int64
	var telSteals atomic.Int64
	for attempt := 0; attempt < 20 && steals == 0; attempt++ {
		opt := DefaultOptions()
		opt.Workers = 8
		opt.SerialDepth = 2
		opt.Sharded = true
		opt.StealSeed = uint64(attempt)
		opt.Hooks = &Hooks{OnWorkerDone: func(wt WorkerTelemetry) {
			telSteals.Add(wt.Steals)
		}}
		res, err := Search(tr.Root(), 7, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != oracle(tr.Root(), 7) {
			t.Fatalf("wrong value %d", res.Value)
		}
		steals += res.Steals
	}
	if steals == 0 {
		t.Fatal("no steal ever happened across 20 sharded searches at P=8")
	}
	if telSteals.Load() != steals {
		t.Errorf("telemetry counted %d steals, results counted %d", telSteals.Load(), steals)
	}
}
