package core

import (
	"fmt"
	"testing"

	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/serial"
	"ertree/internal/ttt"
)

// Metamorphic schedule-invariance: the root value and the Exact flag are
// functions of the position and depth alone, not of the schedule. Varying the
// worker count, the heap implementation (global vs. sharded) and the steal
// seed must leave both unchanged on every game. This is the test-suite form
// of the paper's soundness argument — speculation and stealing may reorder
// work arbitrarily, but combine is commutative and windows only narrow, so
// every schedule converges to the serial value.

// metamorphicVariants is the schedule grid every position is searched under:
// P ∈ {1,2,4,8} on both heap implementations.
func metamorphicVariants() []Options {
	var opts []Options
	for _, sharded := range []bool{false, true} {
		for _, p := range []int{1, 2, 4, 8} {
			o := DefaultOptions()
			o.Workers = p
			o.Sharded = sharded
			o.StealSeed = uint64(p) * 0x9E3779B97F4A7C15
			opts = append(opts, o)
		}
	}
	return opts
}

func TestMetamorphicScheduleInvariance(t *testing.T) {
	cases := []struct {
		name  string
		pos   game.Position
		depth int
	}{
		{"ttt", ttt.New(), 6},
		{"connect4", connect4.New(), 6},
		{"othello", othello.Start(), 4},
		{"randtree", (&randtree.Tree{Seed: 77, Degree: 3, Depth: 6, ValueRange: 500}).Root(), 6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			want := (&serial.Searcher{}).Negmax(c.pos, c.depth)
			for _, opt := range metamorphicVariants() {
				opt.SerialDepth = c.depth / 2
				label := fmt.Sprintf("P=%d sharded=%v", opt.Workers, opt.Sharded)
				res, err := Search(c.pos, c.depth, opt)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Value != want {
					t.Errorf("%s: Search = %d, serial negamax = %d", label, res.Value, want)
				}
				if !res.Exact {
					t.Errorf("%s: full-window search reported Exact=false", label)
				}
				if res.Sharded != opt.Sharded {
					t.Errorf("%s: Result.Sharded = %v", label, res.Sharded)
				}
			}
		})
	}
}

// TestMetamorphicRootWindowInexact drives the same grid through a root window
// that excludes the true value, so the search must fail low everywhere:
// Exact=false on every schedule, never flipping to true on any worker count
// or heap implementation.
func TestMetamorphicRootWindowInexact(t *testing.T) {
	tr := &randtree.Tree{Seed: 78, Degree: 3, Depth: 6, ValueRange: 500}
	const depth = 6
	want := (&serial.Searcher{}).Negmax(tr.Root(), depth)
	w := game.Window{Alpha: want, Beta: want + 100} // strict Contains excludes want
	for _, opt := range metamorphicVariants() {
		opt.SerialDepth = 2
		opt.RootWindow = &w
		res, err := Search(tr.Root(), depth, opt)
		if err != nil {
			t.Fatalf("P=%d sharded=%v: %v", opt.Workers, opt.Sharded, err)
		}
		if res.Exact {
			t.Errorf("P=%d sharded=%v: window (%d,%d) excludes true value %d but Exact=true (value %d)",
				opt.Workers, opt.Sharded, w.Alpha, w.Beta, want, res.Value)
		}
		if res.Value > want {
			t.Errorf("P=%d sharded=%v: fail-low bound %d exceeds true value %d",
				opt.Workers, opt.Sharded, res.Value, want)
		}
	}
}
