package core

import "time"

// workerSharded is the per-processor loop of the sharded-heap runtime. It
// differs from the global-heap worker in where the lock boundary sits: the
// pop happens first, against the worker's own shard (then by stealing), with
// no engine lock held at all; only with a task in hand does the worker take
// the engine lock to run it. The global heap instead pops under the engine
// lock, so at high worker counts every pop serializes the machine — the
// contention this runtime exists to remove.
//
// Termination protocol. A worker that finds every shard empty takes the
// engine lock and re-checks the sharded heap's queued counter under it;
// pushes increment that counter and call WakeAll while holding the same
// lock, so the check-then-wait has no lost-wakeup window. The counter can
// read zero while another worker still has a task in flight (popped but not
// yet processed) — that is fine: an in-flight task either finishes the root
// (the broadcast wakes everyone to exit), pushes new work (the push wakes
// the sleepers), or completes without descendants (no one needed waking).
// Steals in flight when the heap drains therefore cannot livelock the pool:
// every worker parks on the condition variable and the last in-flight task's
// lock-held epilogue is the only wake source left. The regression for this
// is TestShardedDrainNoLivelock.
func (s *state) workerSharded(w *wctx) {
	defer func() {
		s.stats.Merge(w.stats.Snapshot())
		w.flush()
	}()
	rt := w.rt
	for {
		n, fromSpec := s.takeTask(w)
		if n == nil {
			rt.Lock()
			for !s.finished && !s.aborted && s.shards.queued.Load() == 0 {
				rt.WaitWork()
			}
			done := s.finished || s.aborted
			rt.Unlock()
			if done {
				return
			}
			continue
		}
		rt.Lock()
		if s.finished || s.aborted {
			// The search resolved while this task was in flight; it is
			// garbage now, and the arena release severs whatever it held.
			rt.Unlock()
			return
		}
		// Processing-time dequeue: the queued flag drops only here, under
		// the engine lock, so re-push checks elsewhere observe in-flight
		// nodes as still queued — the single-heap dedup semantics (see the
		// flag-discipline comment in shardheap.go).
		if fromSpec {
			if debugInvariants && !n.onSpec {
				panic("core: spec node popped twice (duplicate queue entry)")
			}
			n.onSpec = false
		} else {
			if debugInvariants && !n.inPrimary {
				panic("core: primary node popped twice (duplicate queue entry)")
			}
			n.inPrimary = false
		}
		if w.tel != nil {
			p, sp := s.shards.approxSizes()
			w.sampleHeap(p, sp)
		}
		s.runTask(n, fromSpec, w)
		rt.Unlock()
	}
}

// takeTask fetches the worker's next task: its own shard first, then a steal
// from the busiest victim. Runs without the engine lock. Steal latency — the
// time from running dry to holding a stolen task — lands in the worker's
// telemetry shard when hooks are armed.
func (s *state) takeTask(w *wctx) (n *node, fromSpec bool) {
	if j := testPopJitter; j != nil {
		j(w.shard)
	}
	h := s.shards
	if n, fromSpec = h.popShard(w.shard); n != nil {
		return n, fromSpec
	}
	var t0 time.Time
	if w.tel != nil {
		t0 = time.Now()
	}
	n, fromSpec = h.steal(w.shard, w.nextRand())
	if n != nil && w.tel != nil {
		w.tel.Steals++
		w.tel.StealTime += time.Since(t0)
		// Only immutable node fields here: the thief does not yet hold the
		// engine lock, so mutable state (specBorn, value) is off limits.
		w.event(Event{Kind: EvSteal, Seq: n.seq, Ply: int32(n.ply)})
	}
	return n, fromSpec
}

// nextRand advances the worker's xorshift steal RNG.
func (w *wctx) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// stealRNGSeed derives a non-zero per-worker RNG state from the configured
// steal seed (splitmix64 of seed xor worker id).
func stealRNGSeed(seed uint64, worker int) uint64 {
	z := seed ^ (uint64(worker+1) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// testPopJitter, when non-nil, is called at the top of every sharded pop
// round with the worker's shard index. The schedule fuzzer injects delays
// here to force rare interleavings (steals racing drains, pushes racing
// sleep). Set and cleared only while no search is running.
var testPopJitter func(worker int)

// debugInvariants arms internal-invariant panics (double finish, duplicate
// queue entries) that are too hot to check in production searches. Enabled
// by the fuzz/differential harnesses; set and cleared only while no search
// is running.
var debugInvariants bool
