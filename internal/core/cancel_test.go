package core

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"ertree/internal/game"
	"ertree/internal/randtree"
)

// mustSearch runs Search and fails the test on any error; the wrapper the
// pre-cancellation tests use now that Search reports failure instead of
// panicking.
func mustSearch(t testing.TB, pos game.Position, depth int, opt Options) Result {
	t.Helper()
	res, err := Search(pos, depth, opt)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return res
}

// mustSimulate runs Simulate and fails the test on any error.
func mustSimulate(t testing.TB, pos game.Position, depth int, opt Options, cost CostModel) Result {
	t.Helper()
	res, err := Simulate(pos, depth, opt, cost)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

// TestCancelMidSearch cancels a deep random-tree search shortly after it
// starts and asserts that Search returns ErrAborted promptly and that every
// worker goroutine (and the cancel watcher) has exited afterwards.
func TestCancelMidSearch(t *testing.T) {
	before := runtime.NumGoroutine()

	// Big enough that 8 workers cannot finish before the cancel fires:
	// degree 8, 12 ply is ~10^10 leaves.
	tr := &randtree.Tree{Seed: 99, Degree: 8, Depth: 12, ValueRange: 10000}
	cancel := make(chan struct{})
	opt := DefaultOptions()
	opt.Workers = 8
	opt.SerialDepth = 3
	opt.Cancel = cancel

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Search(tr.Root(), 12, opt)
		done <- outcome{res, err}
	}()

	time.Sleep(20 * time.Millisecond)
	close(cancel)

	select {
	case out := <-done:
		if !errors.Is(out.err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", out.err)
		}
		if out.res.Stats.Generated == 0 {
			t.Fatal("aborted search reports no work at all")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled search did not return within 10s")
	}

	// All workers must unwind; poll because goroutine exit is asynchronous
	// with respect to wg.Wait observers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelBeforeStart verifies that a search whose Cancel channel is
// already closed aborts without resolving the root.
func TestCancelBeforeStart(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	tr := randtree.R1()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.Cancel = cancel
	// The workers may still race the watcher and finish tiny searches; use
	// a tree large enough that honoring the abort is the only fast path.
	_, err := Search(tr.Root(), tr.Depth, opt)
	if err != nil && !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted or nil", err)
	}
}

// TestSearchWithoutCancelNeverErrors pins the contract the facade relies
// on: absent a Cancel channel, Search cannot fail.
func TestSearchWithoutCancelNeverErrors(t *testing.T) {
	tr := randtree.R1()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.SerialDepth = 2
	res, err := Search(tr.Root(), 6, opt)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if want := oracle(tr.Root(), 6); res.Value != want {
		t.Fatalf("value %d, want %d", res.Value, want)
	}
}

// TestRootWindowFailSoft checks the fail-soft contract of Options.RootWindow
// on both runtimes: values inside the window are exact, values at or below
// alpha are upper bounds, values at or above beta are lower bounds.
func TestRootWindowFailSoft(t *testing.T) {
	tr := &randtree.Tree{Seed: 7, Degree: 4, Depth: 7, ValueRange: 10000}
	root, depth := tr.Root(), 7
	exact := oracle(root, depth)
	windows := []game.Window{
		{Alpha: exact - 100, Beta: exact + 100}, // contains the value
		{Alpha: exact + 1, Beta: exact + 500},   // fails low
		{Alpha: exact - 500, Beta: exact},       // fails high
		{Alpha: -game.Inf, Beta: exact + 1},     // one-sided, contains
	}
	for wi, w := range windows {
		for _, workers := range []int{1, 4} {
			opt := DefaultOptions()
			opt.Workers = workers
			opt.SerialDepth = 2
			w := w
			opt.RootWindow = &w

			check := func(label string, v game.Value) {
				t.Helper()
				switch {
				case w.Contains(v):
					if v != exact {
						t.Fatalf("window %d %s P=%d: interior value %d, exact %d", wi, label, workers, v, exact)
					}
				case v <= w.Alpha: // fail low: v is an upper bound
					if exact > v {
						t.Fatalf("window %d %s P=%d: fail-low value %d below exact %d", wi, label, workers, v, exact)
					}
				default: // fail high: v is a lower bound
					if exact < v {
						t.Fatalf("window %d %s P=%d: fail-high value %d above exact %d", wi, label, workers, v, exact)
					}
				}
			}
			res, err := Search(root, depth, opt)
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			check("real", res.Value)
			sim, err := Simulate(root, depth, opt, DefaultCostModel())
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			check("sim", sim.Value)
		}
	}
}
