package core

import (
	"sync"

	"ertree/internal/sim"
)

// Runtime abstracts the execution substrate so the ER engine is written once
// and runs both on real goroutines and on the deterministic simulator
// (DESIGN.md §3). A Runtime value is bound to one worker.
type Runtime interface {
	// Lock acquires the engine's single lock guarding tree and heap.
	Lock()
	// Unlock releases the lock.
	Unlock()
	// WaitWork blocks until WakeAll is called. It must be invoked with the
	// lock held and returns with the lock held (condition-variable
	// semantics). Time spent here is starvation loss.
	WaitWork()
	// WakeAll wakes every worker blocked in WaitWork. Must be called with
	// the lock held.
	WakeAll()
	// HoldWork charges virtual time for shared-structure work performed
	// while the lock is held (node creation, heap operations, combine
	// steps). A no-op on the real runtime, where the work itself takes the
	// time.
	HoldWork(cost int64)
	// FreeWork charges virtual time for private work performed outside the
	// lock (static evaluations, serial subtree searches). A no-op on the
	// real runtime.
	FreeWork(cost int64)
}

// realRuntime runs workers as goroutines with a mutex and condition
// variable; all workers share one instance.
type realRuntime struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func newRealRuntime() *realRuntime {
	r := &realRuntime{}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *realRuntime) Lock()          { r.mu.Lock() }
func (r *realRuntime) Unlock()        { r.mu.Unlock() }
func (r *realRuntime) WaitWork()      { r.cond.Wait() }
func (r *realRuntime) WakeAll()       { r.cond.Broadcast() }
func (r *realRuntime) HoldWork(int64) {}
func (r *realRuntime) FreeWork(int64) {}

// simRuntime binds a worker to a simulator process. The lock is a simulated
// exclusive resource, so time blocked in Lock is interference loss and time
// blocked in WaitWork is starvation loss, exactly the decomposition of §3.1.
type simRuntime struct {
	p    *sim.Proc
	res  *sim.Resource
	cond *sim.Cond
}

func (r *simRuntime) Lock()            { r.p.Acquire(r.res) }
func (r *simRuntime) Unlock()          { r.p.Release(r.res) }
func (r *simRuntime) WaitWork()        { r.p.Wait(r.cond) }
func (r *simRuntime) WakeAll()         { r.p.Broadcast(r.cond) }
func (r *simRuntime) HoldWork(c int64) { r.p.Advance(c) }
func (r *simRuntime) FreeWork(c int64) {
	// Private work does not hold the lock in the simulation either: the
	// worker releases it around heavy computation (see worker.go), so
	// advancing here overlaps with other processors' work.
	r.p.Advance(c)
}
