package core

// nodeArena slab-allocates tree nodes for one search. The paper's tree is
// shared and only grows, so nodes can live in append-only blocks: one Go
// allocation per arenaBlockSize nodes instead of one per node, which cuts
// both allocator pressure and GC scan work on the real runtime's hot path.
// All allocation happens under the engine lock (node creation is a
// shared-tree mutation), so the arena itself needs no synchronization.
type nodeArena struct {
	blocks [][]node
	used   int // slots handed out from the newest block
}

// arenaBlockSize is the node count per slab. Large enough that block
// allocation is rare, small enough that a tiny search does not overcommit.
const arenaBlockSize = 512

// alloc returns a pointer to a fresh zero node.
func (a *nodeArena) alloc() *node {
	if len(a.blocks) == 0 || a.used == arenaBlockSize {
		a.blocks = append(a.blocks, make([]node, arenaBlockSize))
		a.used = 0
	}
	n := &a.blocks[len(a.blocks)-1][a.used]
	a.used++
	return n
}

// allocated returns the number of nodes handed out.
func (a *nodeArena) allocated() int {
	if len(a.blocks) == 0 {
		return 0
	}
	return (len(a.blocks)-1)*arenaBlockSize + a.used
}

// release zeroes every node and drops the blocks, severing every
// position, parent, child and move reference the tree held: after release
// no node (and nothing a node pointed to) is reachable through the search
// state, even if a caller retains it.
func (a *nodeArena) release() {
	for _, blk := range a.blocks {
		clear(blk)
	}
	a.blocks, a.used = nil, 0
}
