package core

import "time"

// Real-runtime observation hooks.
//
// The paper's whole argument is about where parallel time goes — primary vs.
// speculative work, heap traffic, starvation (§3, §6) — and the simulator
// reports that decomposition exactly. Hooks give the goroutine runtime the
// same visibility for wall-clock runs: per-worker busy spans tagged by task
// kind, the speculative-vs-primary work split, and problem-heap size samples.
//
// The design constraint is the hot path: workers already avoid the engine
// lock for all accounting by writing to private wctx shards merged at exit
// (state.go). Hooks follow the same discipline — every event is appended to
// the observing worker's own WorkerTelemetry, no shared structure is touched
// until the worker exits and delivers its shard to OnWorkerDone. With Hooks
// nil the instrumentation is a single pointer test per task and zero
// allocations (see TestHooksDisabledInstrumentationAllocFree).
//
// Simulate ignores Hooks: the simulated runtime has its own deterministic
// busy-interval tracing (Options.Trace) and must stay bit-stable.

// TaskKind classifies the work a worker performs in one pop-loop round.
type TaskKind uint8

const (
	// TaskLeaf is a frontier or terminal static evaluation.
	TaskLeaf TaskKind = iota
	// TaskSerial is a serial-ER subtree search at the serial frontier.
	TaskSerial
	// TaskExamine is one refutation step searched as a serial unit.
	TaskExamine
	// TaskExpand is child generation plus the Table 1 scheduling actions.
	TaskExpand
	// TaskSpec is a speculative-queue action (selecting an extra e-child).
	TaskSpec
	// TaskCutoff is a node cut off at pop time (window closed while queued).
	TaskCutoff
	// TaskDrop is a dead node discarded at pop time.
	TaskDrop
	// NumTaskKinds bounds the TaskKind values for array-indexed accounting.
	NumTaskKinds
)

func (k TaskKind) String() string {
	switch k {
	case TaskLeaf:
		return "leaf"
	case TaskSerial:
		return "serial"
	case TaskExamine:
		return "examine"
	case TaskExpand:
		return "expand"
	case TaskSpec:
		return "spec-select"
	case TaskCutoff:
		return "cutoff"
	case TaskDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// Span is one task executed by a worker, as offsets from the Hooks epoch.
type Span struct {
	Kind TaskKind
	// Spec marks work on a node born speculative: the node (or an ancestor)
	// was selected as an additional e-child from the speculative queue, so a
	// serial search would not necessarily have visited it. The split is the
	// wall-clock analogue of the paper's primary/speculative accounting.
	Spec bool
	// Ply is the node's distance from the search root.
	Ply        int
	Start, End time.Duration
}

// HeapSample is a problem-heap size observation taken at pop time.
type HeapSample struct {
	At      time.Duration
	Primary int // nodes queued on the primary queue
	Spec    int // e-nodes queued on the speculative queue
}

// WorkerTelemetry is one worker's accumulated observations, delivered to
// Hooks.OnWorkerDone when the worker exits.
type WorkerTelemetry struct {
	Worker     int
	TaskCounts [NumTaskKinds]int64
	TaskTime   [NumTaskKinds]time.Duration
	// SpecTasks/SpecTime total the tasks (and busy time) spent on
	// speculative-born nodes; the remainder of the TaskCounts/TaskTime
	// totals is primary work.
	SpecTasks int64
	SpecTime  time.Duration
	// Steals/StealTime count the tasks this worker stole from another
	// worker's heap shard and the time spent running dry before holding
	// them (sharded runtime only; zero on the global heap).
	Steals    int64
	StealTime time.Duration
	// Spans are the individual task spans, recorded only when Hooks.Spans
	// is set (they are the expensive part: one append per task).
	Spans []Span
	// HeapSamples are recorded every Hooks.HeapEvery pops.
	HeapSamples []HeapSample
	// Events is the worker's flight-recorder log (events.go), drained from
	// the bounded ring at worker exit; empty unless Hooks.Events > 0.
	// EventDrops counts events overwritten when the ring wrapped.
	Events     []Event
	EventDrops int64
}

// Busy returns the worker's total instrumented busy time.
func (wt *WorkerTelemetry) Busy() time.Duration {
	var d time.Duration
	for _, t := range wt.TaskTime {
		d += t
	}
	return d
}

// Tasks returns the worker's total task count.
func (wt *WorkerTelemetry) Tasks() int64 {
	var n int64
	for _, c := range wt.TaskCounts {
		n += c
	}
	return n
}

// Merge folds o into wt (concatenating spans and samples), for aggregating
// one logical worker's telemetry across successive searches that share an
// epoch — the engine's deepening iterations reuse worker ids.
func (wt *WorkerTelemetry) Merge(o WorkerTelemetry) {
	for k := range wt.TaskCounts {
		wt.TaskCounts[k] += o.TaskCounts[k]
		wt.TaskTime[k] += o.TaskTime[k]
	}
	wt.SpecTasks += o.SpecTasks
	wt.SpecTime += o.SpecTime
	wt.Steals += o.Steals
	wt.StealTime += o.StealTime
	wt.Spans = append(wt.Spans, o.Spans...)
	wt.HeapSamples = append(wt.HeapSamples, o.HeapSamples...)
	wt.Events = append(wt.Events, o.Events...)
	wt.EventDrops += o.EventDrops
}

// Hooks configures optional observation of a real-runtime Search. A nil
// *Hooks (the default) costs one pointer test per task and allocates
// nothing. All fields are read-only during the search.
type Hooks struct {
	// Epoch anchors span and sample timestamps. Zero means "the start of
	// this Search"; callers aggregating several searches into one timeline
	// (e.g. a deepening session) set a common epoch.
	Epoch time.Time
	// Spans records one Span per task, the raw material for trace timelines.
	// Off, only the per-kind totals are kept.
	Spans bool
	// HeapEvery samples the problem-heap sizes every N pops per worker
	// (0 disables sampling).
	HeapEvery int
	// Events arms the flight recorder (events.go) with a per-worker ring of
	// this capacity; 0 disables it. The ring keeps the newest events and
	// counts overwrites in WorkerTelemetry.EventDrops, so memory stays
	// bounded at Events records per worker regardless of search size.
	Events int
	// OnWorkerDone receives each worker's telemetry when the worker exits.
	// It is called once per worker, concurrently from worker goroutines, so
	// the sink must be safe for concurrent use.
	OnWorkerDone func(WorkerTelemetry)
}

// attachHooks arms the worker context's telemetry shard. Called only when
// hooks are non-nil, before the worker starts.
func (w *wctx) attachHooks(id int, h *Hooks, epoch time.Time) {
	w.hooks = h
	w.epoch = epoch
	w.tel = &WorkerTelemetry{Worker: id}
	if h.Events > 0 {
		w.rec = &eventRing{buf: make([]Event, 0, h.Events)}
	}
}

// taskStart stamps the beginning of a task; the zero time when telemetry is
// disabled (the nil-hook fast path: no clock read, no allocation).
func (w *wctx) taskStart() time.Time {
	if w.tel == nil {
		return time.Time{}
	}
	return time.Now()
}

// taskEnd records one finished task in the worker's shard; n is the task's
// node (its seq feeds the flight recorder when armed).
func (w *wctx) taskEnd(start time.Time, k TaskKind, spec bool, n *node) {
	t := w.tel
	if t == nil {
		return
	}
	end := time.Now()
	d := end.Sub(start)
	t.TaskCounts[k]++
	t.TaskTime[k] += d
	if spec {
		t.SpecTasks++
		t.SpecTime += d
	}
	if w.hooks.Spans {
		t.Spans = append(t.Spans, Span{
			Kind:  k,
			Spec:  spec,
			Ply:   n.ply,
			Start: start.Sub(w.epoch),
			End:   end.Sub(w.epoch),
		})
	}
	if w.rec != nil {
		w.rec.add(Event{
			At:   start.Sub(w.epoch),
			Dur:  d,
			Seq:  n.seq,
			Kind: EvTask,
			Task: k,
			Spec: spec,
			Ply:  int32(n.ply),
		})
	}
}

// sampleHeap records the heap sizes every HeapEvery pops. Called with the
// engine lock held (sizes must be read under it), so it does only two loads
// and, on the sampled pop, one append into the private shard.
func (w *wctx) sampleHeap(primary, spec int) {
	t := w.tel
	if t == nil || w.hooks.HeapEvery <= 0 {
		return
	}
	w.pops++
	if w.pops%w.hooks.HeapEvery != 0 {
		return
	}
	t.HeapSamples = append(t.HeapSamples, HeapSample{
		At:      time.Since(w.epoch),
		Primary: primary,
		Spec:    spec,
	})
}

// flush delivers the worker's telemetry shard to the sink at worker exit,
// draining the flight-recorder ring into it first.
func (w *wctx) flush() {
	if w.tel == nil {
		return
	}
	if w.rec != nil {
		w.tel.Events, w.tel.EventDrops = w.rec.drain()
	}
	if w.hooks.OnWorkerDone != nil {
		w.hooks.OnWorkerDone(*w.tel)
	}
}
