package core

import (
	"testing"

	"ertree/internal/randtree"
)

// TestEventRingKeepLast pins the ring's bounded keep-last semantics: after
// wrapping, drain returns the newest cap events oldest-first and reports the
// overwritten count.
func TestEventRingKeepLast(t *testing.T) {
	r := &eventRing{buf: make([]Event, 0, 4)}
	for i := 0; i < 10; i++ {
		r.add(Event{Seq: uint64(i)})
	}
	events, drops := r.drain()
	if drops != 6 {
		t.Fatalf("drops = %d, want 6", drops)
	}
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d (oldest-first rotation)", i, e.Seq, want)
		}
	}

	// A ring that never wrapped drains everything with zero drops.
	r = &eventRing{buf: make([]Event, 0, 8)}
	for i := 0; i < 3; i++ {
		r.add(Event{Seq: uint64(i)})
	}
	events, drops = r.drain()
	if drops != 0 || len(events) != 3 {
		t.Fatalf("unwrapped ring: %d events, %d drops; want 3, 0", len(events), drops)
	}
}

// TestEventRingExactDropAccounting: across capacity/push combinations, kept
// plus dropped always equals pushed, and what survives is exactly the newest
// cap events — the invariant the waste report relies on when it extrapolates
// from a wrapped ring.
func TestEventRingExactDropAccounting(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 32} {
		for _, pushes := range []int{0, 1, capacity - 1, capacity, capacity + 1, 3*capacity + 2} {
			if pushes < 0 {
				continue
			}
			r := &eventRing{buf: make([]Event, 0, capacity)}
			for i := 0; i < pushes; i++ {
				r.add(Event{Seq: uint64(i + 1)})
			}
			events, drops := r.drain()
			if int64(len(events))+drops != int64(pushes) {
				t.Fatalf("cap=%d pushes=%d: kept %d + dropped %d != pushed",
					capacity, pushes, len(events), drops)
			}
			wantDrops := int64(pushes - capacity)
			if wantDrops < 0 {
				wantDrops = 0
			}
			if drops != wantDrops {
				t.Fatalf("cap=%d pushes=%d: drops = %d, want %d", capacity, pushes, drops, wantDrops)
			}
			for i, e := range events {
				if want := uint64(pushes - len(events) + i + 1); e.Seq != want {
					t.Fatalf("cap=%d pushes=%d: events[%d].Seq = %d, want %d (newest cap, oldest-first)",
						capacity, pushes, i, e.Seq, want)
				}
			}
		}
	}
}

// TestFlightRecorderObservesSearch runs a real search with a generous ring
// and checks the log's internal consistency: one EvTask per counted task,
// every spawn introduces a fresh node with its parent already known, and the
// root is spawn-free.
func TestFlightRecorderObservesSearch(t *testing.T) {
	tree := &randtree.Tree{Seed: 3, Degree: 4, Depth: 6, ValueRange: 1000}
	for _, sharded := range []bool{false, true} {
		sink := &hookSink{}
		opt := DefaultOptions()
		opt.Workers = 4
		// SerialDepth 0 keeps every generated node in the parallel tree, so
		// the spawn log must account for Stats.Generated exactly; serial
		// subtree tasks would generate nodes the recorder never sees.
		opt.SerialDepth = 0
		opt.Sharded = sharded
		opt.Hooks = &Hooks{Events: 1 << 16, OnWorkerDone: sink.add}
		res, err := Search(tree.Root(), 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		var evTasks, tasks int64
		known := map[uint64]bool{RootSeq: true}
		var spawns []Event
		for _, wt := range sink.tels {
			if wt.EventDrops != 0 {
				t.Fatalf("sharded=%v: %d drops with a 64k ring on a tiny search", sharded, wt.EventDrops)
			}
			tasks += wt.Tasks()
			for _, e := range wt.Events {
				if e.Kind >= NumEventKinds {
					t.Fatalf("invalid event kind %d", e.Kind)
				}
				switch e.Kind {
				case EvTask:
					evTasks++
					if e.Dur < 0 {
						t.Fatalf("negative task duration: %+v", e)
					}
				case EvSpawn:
					spawns = append(spawns, e)
				}
			}
		}
		if evTasks != tasks {
			t.Fatalf("sharded=%v: %d EvTask events for %d counted tasks", sharded, evTasks, tasks)
		}
		// Spawns are recorded under the engine lock, so sorting by sequence
		// number recovers creation order: each child must be new and its
		// parent previously spawned (or the root).
		for range spawns {
			progress := false
			for i, e := range spawns {
				if e.Seq == 0 || known[e.Seq] || !known[e.Par] {
					continue
				}
				known[e.Seq] = true
				spawns[i].Seq = 0 // consumed
				progress = true
			}
			if !progress {
				break
			}
		}
		for _, e := range spawns {
			if e.Seq != 0 {
				t.Fatalf("sharded=%v: spawn %+v has unknown parent or duplicate child", sharded, e)
			}
		}
		if int64(len(known)) != res.Stats.Generated {
			t.Fatalf("sharded=%v: %d spawned nodes (incl. root), stats generated %d",
				sharded, len(known), res.Stats.Generated)
		}
	}
}

// TestFlightRecorderBounded: a deliberately tiny ring must cap memory and
// report drops instead of growing.
func TestFlightRecorderBounded(t *testing.T) {
	tree := &randtree.Tree{Seed: 9, Degree: 5, Depth: 6, ValueRange: 1000}
	sink := &hookSink{}
	opt := DefaultOptions()
	opt.Workers = 2
	opt.Hooks = &Hooks{Events: 32, OnWorkerDone: sink.add}
	if _, err := Search(tree.Root(), 6, opt); err != nil {
		t.Fatal(err)
	}
	var drops int64
	for _, wt := range sink.tels {
		if len(wt.Events) > 32 {
			t.Fatalf("worker %d delivered %d events, ring bound is 32", wt.Worker, len(wt.Events))
		}
		// Exact accounting under overflow: a worker that reported drops was
		// wrapped, so it must deliver precisely the ring capacity — fewer
		// means drain lost kept events, more means the bound leaked.
		if wt.EventDrops > 0 && len(wt.Events) != 32 {
			t.Fatalf("worker %d dropped %d events but delivered %d, want exactly 32",
				wt.Worker, wt.EventDrops, len(wt.Events))
		}
		drops += wt.EventDrops
	}
	if drops == 0 {
		t.Fatal("a 32-entry ring on a depth-6 degree-5 search must wrap")
	}
}

// TestProfileLabelsSearch exercises the label path under the race detector
// and confirms it does not disturb the result.
func TestProfileLabelsSearch(t *testing.T) {
	tree := &randtree.Tree{Seed: 4, Degree: 4, Depth: 6, ValueRange: 1000}
	opt := DefaultOptions()
	opt.Workers = 4
	opt.SerialDepth = 2
	opt.ProfileLabels = true
	res, err := Search(tree.Root(), 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle(tree.Root(), 6); res.Value != want {
		t.Fatalf("labeled search value %d, want %d", res.Value, want)
	}
}
