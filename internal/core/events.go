package core

import (
	"context"
	"runtime/pprof"
	"time"
)

// Search flight recorder.
//
// The paper's §6 discussion turns on *which* work was wasted — speculative
// subtrees started by the Table 2 early-choice rules and then orphaned by a
// cutoff — but aggregate counters cannot answer that for a single search.
// The flight recorder captures a bounded per-worker event log: every task
// execution, every Table 1 child spawn, every Table 2 e-child promotion and
// refutation start, every combine step, every discarded subtree result, every
// transposition-table cutoff, and every steal. internal/flight replays the
// log after the search to reconstruct the tree and attribute busy time to
// useful-primary / useful-speculative / wasted-speculative buckets.
//
// The recorder follows the hooks discipline (hooks.go): each worker appends
// to its own fixed-capacity ring, no shared structure is touched during the
// search, and the ring is drained into the worker's WorkerTelemetry at exit.
// When the ring wraps, the oldest events are overwritten and EventDrops
// counts what was lost — the log is bounded by Hooks.Events per worker no
// matter how large the search. Disabled (Hooks nil or Hooks.Events == 0),
// every record call is a single nil check and zero allocations, pinned by
// TestHooksDisabledInstrumentationAllocFree.

// RootSeq is the node sequence number of the search root: newNode numbers
// nodes from 1 and the root is always created first. Event consumers
// (internal/flight) anchor tree reconstruction at this id.
const RootSeq uint64 = 1

// EventKind classifies one flight-recorder event.
type EventKind uint8

const (
	// EvTask is one executed task: Seq is the node, Task/Spec/Ply classify
	// it, At..At+Dur is the busy interval.
	EvTask EventKind = iota
	// EvSpawn is a Table 1 child generation: Seq is the child, Par the
	// parent, Arg the move index into the parent's ordered move list.
	EvSpawn
	// EvPromote is a Table 2 e-child selection: Seq is the promoted child,
	// Par the e-node; Spec marks promotions driven by the speculative queue.
	EvPromote
	// EvRefute marks the start of refutation at e-node Seq (Table 2 row 3).
	EvRefute
	// EvCombine is one combine step: child Seq's value (negated, in Arg)
	// reached parent Par.
	EvCombine
	// EvAbort is a beta cutoff that abandoned in-flight work: node Seq was
	// cut off with Arg children still active; their subtrees are wasted.
	EvAbort
	// EvDiscard is a subtree result thrown away: node Seq died (an ancestor
	// resolved) between task start and completion, or its combine arrived
	// after the parent was already done.
	EvDiscard
	// EvTTCutoff is a serial task answered by the transposition table alone.
	EvTTCutoff
	// EvSteal is a task taken from another worker's heap shard.
	EvSteal
	// NumEventKinds bounds the EventKind values.
	NumEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvTask:
		return "task"
	case EvSpawn:
		return "spawn"
	case EvPromote:
		return "promote"
	case EvRefute:
		return "refute"
	case EvCombine:
		return "combine"
	case EvAbort:
		return "abort"
	case EvDiscard:
		return "discard"
	case EvTTCutoff:
		return "tt-cutoff"
	case EvSteal:
		return "steal"
	default:
		return "unknown"
	}
}

// Event is one flight-recorder record. Seq/Par are node sequence numbers
// (RootSeq for the root); field meaning per kind is documented on the
// EventKind constants.
type Event struct {
	At   time.Duration // offset from the hooks epoch
	Dur  time.Duration // busy duration (EvTask only)
	Seq  uint64        // subject node
	Par  uint64        // parent / e-node, kind-dependent (0 when unused)
	Arg  int64         // kind-specific argument (move index, value, active kids)
	Kind EventKind
	Task TaskKind // task classification (EvTask only)
	Spec bool     // speculative-born subject / speculative promotion
	Ply  int32    // subject's distance from the root
}

// eventRing is a worker-private bounded event log with keep-last semantics:
// once capacity is reached the oldest event is overwritten, so the tail of
// the search — where cutoffs resolve and waste becomes attributable — always
// survives. No locking: exactly one worker writes, and the ring is drained
// only after that worker exits.
type eventRing struct {
	buf []Event
	n   uint64 // total events recorded; slot for event i is i % cap(buf)
}

func (r *eventRing) add(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = e
	}
	r.n++
}

// drain returns the recorded events oldest-first plus the number dropped to
// the ring bound. The returned slice aliases the ring's buffer when it never
// wrapped and is freshly rotated otherwise.
func (r *eventRing) drain() (events []Event, drops int64) {
	c := uint64(cap(r.buf))
	if c == 0 || r.n <= c {
		return r.buf, 0
	}
	head := int(r.n % c)
	out := make([]Event, 0, c)
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out, int64(r.n - c)
}

// event records e in the worker's ring, stamping the time. The disabled path
// is one nil check; the struct argument is built on the caller's stack, so
// the call allocates nothing either way.
func (w *wctx) event(e Event) {
	r := w.rec
	if r == nil {
		return
	}
	e.At = time.Since(w.epoch)
	r.add(e)
}

// Goroutine profile labels.
//
// With Options.ProfileLabels set, every task executes under pprof labels
// task_kind (the Table 1 / §6 dispatch class) and spec (whether the node was
// speculative-born), so CPU, mutex, and block profiles segment by the
// paper's work taxonomy: `go tool pprof -tagfocus task_kind=serial` isolates
// the serial frontier, `-tagfocus spec=true` the speculative share. The
// label contexts are precomputed per (kind, spec) pair; arming a task costs
// two SetGoroutineLabels calls and zero allocations.
var taskLabelCtx [NumTaskKinds][2]context.Context

func init() {
	for k := TaskKind(0); k < NumTaskKinds; k++ {
		taskLabelCtx[k][0] = pprof.WithLabels(context.Background(),
			pprof.Labels("task_kind", k.String(), "spec", "false"))
		taskLabelCtx[k][1] = pprof.WithLabels(context.Background(),
			pprof.Labels("task_kind", k.String(), "spec", "true"))
	}
}

// classifyTask predicts the task kind runTask will execute for a popped
// node, mirroring its dispatch order. It is a pop-time classification: a
// node that turns out terminal above the horizon is labeled expand even
// though runTask completes it as a leaf — the label describes the scheduled
// work class, not the retrospective one. Lock held.
func (s *state) classifyTask(n *node, fromSpec bool) (TaskKind, bool) {
	if fromSpec {
		return TaskSpec, true
	}
	if !n.alive() {
		return TaskDrop, n.specBorn
	}
	if win := n.window(); win.Empty() || n.value >= win.Beta {
		return TaskCutoff, n.specBorn
	}
	switch {
	case n.depth == 0:
		return TaskLeaf, n.specBorn
	case n.depth <= s.opt.SerialDepth && n.typ == eNode:
		return TaskSerial, n.specBorn
	case n.examine:
		return TaskExamine, n.specBorn
	default:
		return TaskExpand, n.specBorn
	}
}

// setTaskLabels applies the precomputed label context for the popped task.
func setTaskLabels(k TaskKind, spec bool) {
	i := 0
	if spec {
		i = 1
	}
	pprof.SetGoroutineLabels(taskLabelCtx[k][i])
}

// clearTaskLabels restores the unlabeled goroutine state between tasks.
func clearTaskLabels() {
	pprof.SetGoroutineLabels(context.Background())
}
