package othello

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/serial"
)

func TestStartPosition(t *testing.T) {
	b := Start()
	own, opp := b.Discs()
	if own != 2 || opp != 2 {
		t.Fatalf("start discs %d/%d, want 2/2", own, opp)
	}
	if !b.BlackToMove() {
		t.Fatal("Black moves first")
	}
	moves := b.Moves()
	if len(moves) != 4 {
		t.Fatalf("start has %d moves, want 4", len(moves))
	}
	want := map[string]bool{"d3": true, "c4": true, "f5": true, "e6": true}
	for _, m := range moves {
		if !want[SquareName(m)] {
			t.Fatalf("unexpected opening move %s", SquareName(m))
		}
	}
}

func TestOpeningFlip(t *testing.T) {
	b := Start().MustPlay("d3")
	// d3 flips d4: Black now has d3, d4, d5, e4; White keeps e5.
	black, white := b.opp, b.own // White to move, so own is White
	if b.BlackToMove() {
		t.Fatal("after one move White should be to move")
	}
	wantBlack := sq("d3") | sq("d4") | sq("d5") | sq("e4")
	if black != wantBlack {
		t.Fatalf("black discs wrong after d3:\n%s", b)
	}
	if white != sq("e5") {
		t.Fatalf("white discs wrong after d3:\n%s", b)
	}
}

// refLegal is a slow, obviously-correct legality checker used as an oracle
// for the bitboard move generator.
func refLegal(own, opp uint64, sqi int) bool {
	if (own|opp)&(1<<uint(sqi)) != 0 {
		return false
	}
	r0, c0 := sqi/8, sqi%8
	for _, d := range [8][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
		r, c := r0+d[0], c0+d[1]
		seenOpp := false
		for r >= 0 && r < 8 && c >= 0 && c < 8 {
			m := uint64(1) << uint(r*8+c)
			if opp&m != 0 {
				seenOpp = true
			} else if own&m != 0 {
				if seenOpp {
					return true
				}
				break
			} else {
				break
			}
			r += d[0]
			c += d[1]
		}
	}
	return false
}

func TestMoveGeneratorAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		// Random positions: fill each square with own/opp/empty.
		var own, opp uint64
		for i := 0; i < 64; i++ {
			switch rng.Intn(3) {
			case 0:
				own |= 1 << uint(i)
			case 1:
				opp |= 1 << uint(i)
			}
		}
		got := legalMoves(own, opp)
		for i := 0; i < 64; i++ {
			want := refLegal(own, opp, i)
			if (got&(1<<uint(i)) != 0) != want {
				t.Fatalf("trial %d square %s: bitboard=%v ref=%v",
					trial, SquareName(i), !want, want)
			}
		}
	}
}

func TestFlipsAgainstReplay(t *testing.T) {
	// Play random games; after every move, disc counts must satisfy the
	// conservation law: total discs grows by exactly one per non-pass move,
	// and the mover's count grows by flips+1 while the opponent shrinks by
	// flips.
	rng := rand.New(rand.NewSource(7))
	for g := 0; g < 30; g++ {
		b := Start()
		for !b.Terminal() {
			moves := b.Moves()
			prevOwn, prevOpp := b.Discs()
			if len(moves) == 0 {
				nb, ok := b.Play(-1)
				if !ok {
					t.Fatal("forced pass rejected")
				}
				b = nb
				continue
			}
			nb, ok := b.Play(moves[rng.Intn(len(moves))])
			if !ok {
				t.Fatal("legal move rejected")
			}
			// nb is from the opponent's perspective.
			newOpp, newOwn := nb.Discs()
			if newOwn+newOpp != prevOwn+prevOpp+1 {
				t.Fatalf("disc conservation broken: %d+%d -> %d+%d",
					prevOwn, prevOpp, newOwn, newOpp)
			}
			flips := newOwn - prevOwn - 1
			if flips < 1 && prevOwn+prevOpp >= 4 {
				t.Fatalf("move flipped %d discs (must flip at least one)", flips)
			}
			if newOpp != prevOpp-flips {
				t.Fatalf("flip bookkeeping inconsistent")
			}
			b = nb
		}
	}
}

func TestPerft(t *testing.T) {
	// Known Othello game-tree counts from the start position (passes
	// counted as moves only when forced; terminal at double-pass).
	want := []int64{1, 4, 12, 56, 244, 1396, 8200, 55092}
	var perft func(b Board, depth int) int64
	perft = func(b Board, depth int) int64 {
		if depth == 0 {
			return 1
		}
		kids := b.Children()
		var n int64
		for _, k := range kids {
			n += perft(k.(Board), depth-1)
		}
		return n
	}
	for d := 0; d <= 7; d++ {
		if got := perft(Start(), d); got != want[d] {
			t.Errorf("perft(%d) = %d, want %d", d, got, want[d])
		}
	}
}

func TestPassGeneratesSingleChild(t *testing.T) {
	// A classic must-pass position: Black owns a corner region, White has
	// no move; construct directly.
	diagram := `
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . X O . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .`
	b, err := Parse(diagram, false) // White to move
	if err != nil {
		t.Fatal(err)
	}
	if legalMoves(b.own, b.opp) != 0 {
		t.Skip("fixture unexpectedly has moves")
	}
	kids := b.Children()
	if len(kids) != 1 {
		t.Fatalf("must-pass position has %d children, want 1 (pass)", len(kids))
	}
	child := kids[0].(Board)
	if child.BlackToMove() != true {
		t.Fatal("pass child should give Black the move")
	}
	co, cp := child.Discs()
	bo, bp := b.Discs()
	if co != bp || cp != bo {
		t.Fatal("pass changed disc counts")
	}
}

func TestDoublePassTerminal(t *testing.T) {
	// Position where neither side can move: isolated same-color discs.
	diagram := `
		X . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . O`
	b, err := Parse(diagram, true)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Terminal() {
		t.Fatal("double-pass position not terminal")
	}
	if b.Children() != nil {
		t.Fatal("terminal position has children")
	}
}

func TestTerminalValueIsDiscDifference(t *testing.T) {
	diagram := `
		X X . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . .
		. . . . . . . O`
	b, err := Parse(diagram, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Value(); got != 10000 {
		t.Fatalf("terminal value %d, want 10000 (one-disc lead x 10000)", got)
	}
}

func TestEvaluatorAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for g := 0; g < 10; g++ {
		b := Start()
		for ply := 0; ply < 20 && !b.Terminal(); ply++ {
			moves := b.Moves()
			if len(moves) == 0 {
				b, _ = b.Play(-1)
				continue
			}
			b, _ = b.Play(moves[rng.Intn(len(moves))])
			swapped := Board{own: b.opp, opp: b.own, blackToMove: !b.blackToMove}
			if b.Value() != -swapped.Value() {
				t.Fatalf("evaluator not antisymmetric: %d vs %d\n%s", b.Value(), swapped.Value(), b)
			}
		}
	}
}

func TestEvaluatorInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for g := 0; g < 20; g++ {
		b := Start()
		for !b.Terminal() {
			if v := b.Value(); v <= -game.Inf || v >= game.Inf {
				t.Fatalf("evaluator out of range: %d", v)
			}
			moves := b.Moves()
			if len(moves) == 0 {
				b, _ = b.Play(-1)
				continue
			}
			b, _ = b.Play(moves[rng.Intn(len(moves))])
		}
	}
}

func TestIllegalMovesRejected(t *testing.T) {
	b := Start()
	if _, ok := b.Play(0); ok { // a1 is not reachable at the start
		t.Fatal("a1 accepted from the start position")
	}
	occupied, _ := SquareIndex("d4")
	if _, ok := b.Play(occupied); ok {
		t.Fatal("occupied square accepted")
	}
	if _, ok := b.Play(-1); ok {
		t.Fatal("pass accepted while moves exist")
	}
	if _, ok := b.Play(64); ok {
		t.Fatal("expected out-of-range move to be rejected")
	}
}

func TestSquareNames(t *testing.T) {
	for i := 0; i < 64; i++ {
		j, err := SquareIndex(SquareName(i))
		if err != nil || j != i {
			t.Fatalf("square %d round-trips to %d (%v)", i, j, err)
		}
	}
	if _, err := SquareIndex("i9"); err == nil {
		t.Fatal("bad square accepted")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	b := Start().MustPlay("d3", "c5")
	parsed, err := Parse(b.String(), b.BlackToMove())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.own != b.own || parsed.opp != b.opp {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", b, parsed)
	}
}

func TestExperimentRoots(t *testing.T) {
	roots := Roots()
	if len(roots) != 3 {
		t.Fatalf("want 3 roots")
	}
	seen := map[uint64]bool{}
	for name, b := range roots {
		if b.BlackToMove() {
			t.Errorf("%s: paper roots have White to move", name)
		}
		if b.Terminal() {
			t.Errorf("%s: root is terminal", name)
		}
		if len(b.Moves()) < 2 {
			t.Errorf("%s: root has too few moves (%d)", name, len(b.Moves()))
		}
		own, opp := b.Discs()
		if own+opp < 14 || own+opp > 26 {
			t.Errorf("%s: disc count %d not midgame-like", name, own+opp)
		}
		key := b.own*31 ^ b.opp
		if seen[key] {
			t.Errorf("%s: duplicate root position", name)
		}
		seen[key] = true
	}
	if _, err := Root("O2"); err != nil {
		t.Error(err)
	}
	if _, err := Root("O9"); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestRootsDeterministic(t *testing.T) {
	a, b := O1(), O1()
	if a.own != b.own || a.opp != b.opp || a.blackToMove != b.blackToMove {
		t.Fatal("O1 not deterministic")
	}
}

func TestSearchOnOthelloAgrees(t *testing.T) {
	// 4-ply agreement between negmax, alpha-beta, and serial ER on a real
	// midgame position.
	b := O1()
	var s serial.Searcher
	want := s.Negmax(b, 4)
	if got := s.AlphaBeta(b, 4, game.FullWindow()); got != want {
		t.Fatalf("alpha-beta %d, negmax %d", got, want)
	}
	if got := s.ER(b, 4, game.FullWindow()); got != want {
		t.Fatalf("ER %d, negmax %d", got, want)
	}
	sorted := serial.Searcher{Order: game.StaticOrder{MaxPly: 5}}
	if got := sorted.AlphaBeta(b, 4, game.FullWindow()); got != want {
		t.Fatalf("sorted alpha-beta %d, negmax %d", got, want)
	}
}

func TestDeeperSortedSearchCheaper(t *testing.T) {
	b := O1()
	var plain, sorted game.Stats
	sp := serial.Searcher{Stats: &plain}
	ss := serial.Searcher{Stats: &sorted, Order: game.StaticOrder{MaxPly: 5}}
	v1 := sp.AlphaBeta(b, 5, game.FullWindow())
	v2 := ss.AlphaBeta(b, 5, game.FullWindow())
	if v1 != v2 {
		t.Fatalf("values differ: %d vs %d", v1, v2)
	}
	if sorted.Generated.Load() >= plain.Generated.Load() {
		t.Logf("sorted search generated %d nodes vs %d unsorted (ordering did not help here)",
			sorted.Generated.Load(), plain.Generated.Load())
	}
}

func TestHashProperties(t *testing.T) {
	// Equal positions hash equal; playing any move changes the hash; the
	// pass-history flag does not affect it (same reachable subtree).
	a := Start().MustPlay("d3", "c5")
	b := Start().MustPlay("d3", "c5")
	if a.Hash() != b.Hash() {
		t.Fatal("equal positions hash differently")
	}
	rng := rand.New(rand.NewSource(123))
	seen := map[uint64]bool{}
	cur := Start()
	for i := 0; i < 40 && !cur.Terminal(); i++ {
		h := cur.Hash()
		if seen[h] {
			t.Fatalf("hash repeated along a single game line at ply %d", i)
		}
		seen[h] = true
		moves := cur.Moves()
		if len(moves) == 0 {
			cur, _ = cur.Play(-1)
			continue
		}
		cur, _ = cur.Play(moves[rng.Intn(len(moves))])
	}
	// Same discs, different side to move: must differ.
	sameDiscs := Board{own: a.opp, opp: a.own, blackToMove: !a.blackToMove}
	if sameDiscs.Hash() == a.Hash() {
		t.Fatal("side to move ignored by the hash")
	}
}

func TestMustPlayPanicsOnIllegal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlay accepted an illegal move")
		}
	}()
	Start().MustPlay("a1")
}

func TestMustPlayPass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPlay accepted an illegal pass")
		}
	}()
	Start().MustPlay("pass") // moves exist: pass is illegal
}
