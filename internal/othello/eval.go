package othello

import (
	"math/bits"

	"ertree/internal/game"
)

// Static evaluation in the spirit of Rosenbloom's Iago (cited by the paper):
// a phase-blended combination of positional square weights, current
// mobility, corner possession, and disc difference. Values are from the
// point of view of the player to move, per the game.Position contract.

// weights is the classic positional table (rank 1 at the bottom; the table
// is symmetric so orientation does not matter).
var weights = [64]int32{
	120, -20, 20, 5, 5, 20, -20, 120,
	-20, -40, -5, -5, -5, -5, -40, -20,
	20, -5, 15, 3, 3, 15, -5, 20,
	5, -5, 3, 3, 3, 3, -5, 5,
	5, -5, 3, 3, 3, 3, -5, 5,
	20, -5, 15, 3, 3, 15, -5, 20,
	-20, -40, -5, -5, -5, -5, -40, -20,
	120, -20, 20, 5, 5, 20, -20, 120,
}

const corners uint64 = 0x8100000000000081

// positional sums the square weights of the discs in b.
func positional(b uint64) int32 {
	var s int32
	for m := b; m != 0; m &= m - 1 {
		s += weights[bits.TrailingZeros64(m)]
	}
	return s
}

// Value implements game.Position. Terminal positions score the final disc
// difference at a scale that dominates every heuristic term, so searches
// that reach the end of the game prefer real wins over good-looking
// positions.
func (b Board) Value() game.Value {
	ownMoves := legalMoves(b.own, b.opp)
	oppMoves := legalMoves(b.opp, b.own)
	ownDiscs := bits.OnesCount64(b.own)
	oppDiscs := bits.OnesCount64(b.opp)
	if ownMoves == 0 && oppMoves == 0 {
		return game.Value(int32(ownDiscs-oppDiscs) * 10000)
	}
	discs := ownDiscs + oppDiscs

	pos := positional(b.own) - positional(b.opp)
	mob := int32(bits.OnesCount64(ownMoves) - bits.OnesCount64(oppMoves))
	corn := int32(bits.OnesCount64(b.own&corners) - bits.OnesCount64(b.opp&corners))
	diff := int32(ownDiscs - oppDiscs)

	var v int32
	switch {
	case discs <= 20: // opening: mobility and position dominate
		v = pos + 12*mob + 80*corn - 2*diff
	case discs <= 48: // midgame
		v = pos + 8*mob + 100*corn + 0*diff
	default: // endgame approach: discs start to matter
		v = pos/2 + 4*mob + 120*corn + 8*diff
	}
	return game.Value(v)
}
