package othello

import (
	"fmt"

	"ertree/internal/game"
)

// The paper's Figure 9 shows three midgame root configurations with WHITE to
// move, searched to 7 ply. The exact boards are not machine-readable in the
// source, so O1-O3 are deterministic substitutes with the same role: three
// independent midgame positions of differing character (see DESIGN.md §3).
//
// Each root is produced by deterministic greedy self-play from the initial
// position: at each ply the mover ranks its moves by the static evaluator
// and picks the rank prescribed by the root's "style" string, one digit per
// ply (cycled). Styles differ enough that the three positions share no
// resemblance. Self-play stops when the prescribed number of plies has been
// played and it is White's turn.

func makeRoot(plies int, style string) Board {
	b := Start()
	for ply := 0; ply < plies || !isWhiteToMove(b); ply++ {
		if b.Terminal() {
			panic("othello: self-play reached a terminal position")
		}
		kids := b.Children()
		// Rank children ascending by their value (from the child's
		// perspective): lower child value is better for the mover.
		best := make([]int, len(kids))
		for i := range best {
			best[i] = i
		}
		for i := 1; i < len(kids); i++ {
			j := i
			for j > 0 && kids[best[j]].Value() < kids[best[j-1]].Value() {
				best[j], best[j-1] = best[j-1], best[j]
				j--
			}
		}
		rank := int(style[ply%len(style)]-'0') % len(kids)
		b = kids[best[rank]].(Board)
		if ply > plies+8 {
			panic("othello: self-play failed to reach a White-to-move position")
		}
	}
	return b
}

func isWhiteToMove(b Board) bool { return !b.blackToMove }

// O1 returns the first Othello experiment root (quiet positional middlegame).
func O1() Board { return makeRoot(16, "0102010") }

// O2 returns the second Othello experiment root (sharper, more uneven play).
func O2() Board { return makeRoot(18, "2103120") }

// O3 returns the third Othello experiment root (unbalanced material).
func O3() Board { return makeRoot(14, "1210201") }

// Roots returns the three experiment roots keyed by the paper's names.
func Roots() map[string]Board {
	return map[string]Board{"O1": O1(), "O2": O2(), "O3": O3()}
}

// Root returns the named experiment root.
func Root(name string) (Board, error) {
	b, ok := Roots()[name]
	if !ok {
		return Board{}, fmt.Errorf("othello: unknown root %q (want O1, O2 or O3)", name)
	}
	return b, nil
}

var _ game.Position = Board{} // O1-O3 feed directly into searches
