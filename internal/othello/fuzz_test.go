package othello

import "testing"

// FuzzGamePlay drives random move sequences (decoded from fuzz data) through
// the rules and checks the structural invariants after every move.
func FuzzGamePlay(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{7, 7, 7, 7, 0, 0, 3, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := Start()
		for _, pick := range data {
			if b.Terminal() {
				break
			}
			moves := b.Moves()
			var nb Board
			var ok bool
			if len(moves) == 0 {
				nb, ok = b.Play(-1)
			} else {
				nb, ok = b.Play(moves[int(pick)%len(moves)])
			}
			if !ok {
				t.Fatalf("engine-produced move rejected on\n%s", b)
			}
			own, opp := nb.Discs()
			po, pp := b.Discs()
			total, prev := own+opp, po+pp
			if len(moves) == 0 {
				if total != prev {
					t.Fatalf("pass changed disc count")
				}
			} else if total != prev+1 {
				t.Fatalf("disc count %d -> %d", prev, total)
			}
			if total > 64 {
				t.Fatalf("more than 64 discs")
			}
			if v := nb.Value(); v <= -(1<<30) || v >= 1<<30 {
				t.Fatalf("evaluator out of range: %d", v)
			}
			// Hash stability: recomputing the hash yields the same value.
			if nb.Hash() != nb.Hash() {
				t.Fatal("hash not a pure function")
			}
			b = nb
		}
	})
}
