// Package othello implements the game of Othello (Reversi), the real-game
// workload of the paper's experiments (§7). The paper used an Othello
// program by Steven Scott; that program is not available, so this package is
// a from-scratch bitboard implementation with a classic static evaluator in
// the spirit of Rosenbloom's Iago features (positional weights, mobility,
// corners, disc parity). See DESIGN.md §3 for the substitution rationale.
//
// Boards are immutable values and safe for concurrent use.
package othello

import (
	"fmt"
	"math/bits"
	"strings"

	"ertree/internal/game"
)

// Board is an Othello position from the point of view of the player to move
// ("own"). Bit i of a bitboard corresponds to square i, with a1 = bit 0,
// h1 = bit 7, a8 = bit 56 (row-major from White's side of the board).
type Board struct {
	own, opp uint64
	// blackToMove tracks which color "own" is, for display and for
	// constructing positions with a specific side to move.
	blackToMove bool
	// prevPassed records that the previous player passed; two consecutive
	// passes end the game.
	prevPassed bool
}

var _ game.Position = Board{}

const (
	fileA uint64 = 0x0101010101010101
	fileH uint64 = 0x8080808080808080
	notA         = ^fileA
	notH         = ^fileH
)

// Start returns the standard initial position with Black to move.
func Start() Board {
	// d4, e5 white; d5, e4 black (standard setup).
	white := sq("d4") | sq("e5")
	black := sq("d5") | sq("e4")
	return Board{own: black, opp: white, blackToMove: true}
}

// sq converts algebraic notation ("a1".."h8") to a bitboard with one bit set.
func sq(s string) uint64 {
	i, err := SquareIndex(s)
	if err != nil {
		panic(err)
	}
	return 1 << uint(i)
}

// SquareIndex converts algebraic notation to a square index 0..63.
func SquareIndex(s string) (int, error) {
	if len(s) != 2 || s[0] < 'a' || s[0] > 'h' || s[1] < '1' || s[1] > '8' {
		return 0, fmt.Errorf("othello: bad square %q", s)
	}
	return int(s[1]-'1')*8 + int(s[0]-'a'), nil
}

// SquareName converts a square index to algebraic notation.
func SquareName(i int) string {
	return string([]byte{byte('a' + i%8), byte('1' + i/8)})
}

// shift moves every bit one step in direction d (0..7), handling board-edge
// wraparound.
func shift(b uint64, d int) uint64 {
	switch d {
	case 0: // east
		return (b & notH) << 1
	case 1: // west
		return (b & notA) >> 1
	case 2: // north
		return b << 8
	case 3: // south
		return b >> 8
	case 4: // north-east
		return (b & notH) << 9
	case 5: // north-west
		return (b & notA) << 7
	case 6: // south-east
		return (b & notH) >> 7
	default: // south-west
		return (b & notA) >> 9
	}
}

// legalMoves returns the bitboard of squares where "own" may move.
func legalMoves(own, opp uint64) uint64 {
	empty := ^(own | opp)
	var moves uint64
	for d := 0; d < 8; d++ {
		t := shift(own, d) & opp
		for i := 0; i < 5; i++ {
			t |= shift(t, d) & opp
		}
		moves |= shift(t, d) & empty
	}
	return moves
}

// flipsFor returns the discs flipped if "own" plays on square bit m.
func flipsFor(own, opp, m uint64) uint64 {
	var flips uint64
	for d := 0; d < 8; d++ {
		var line uint64
		t := shift(m, d) & opp
		for t != 0 {
			line |= t
			next := shift(t, d)
			if next&own != 0 {
				flips |= line
				break
			}
			t = next & opp
		}
	}
	return flips
}

// Moves returns the list of legal move squares for the player to move.
func (b Board) Moves() []int {
	m := legalMoves(b.own, b.opp)
	out := make([]int, 0, bits.OnesCount64(m))
	for m != 0 {
		i := bits.TrailingZeros64(m)
		out = append(out, i)
		m &= m - 1
	}
	return out
}

// Play applies a move on square i and returns the resulting position (with
// the opponent to move). It reports whether the move was legal. Pass with
// i < 0; passing is legal only when no move is available.
func (b Board) Play(i int) (Board, bool) {
	if i < 0 {
		if legalMoves(b.own, b.opp) != 0 {
			return b, false
		}
		return Board{own: b.opp, opp: b.own, blackToMove: !b.blackToMove, prevPassed: true}, true
	}
	m := uint64(1) << uint(i)
	if m&(b.own|b.opp) != 0 || m&legalMoves(b.own, b.opp) == 0 {
		return b, false
	}
	flips := flipsFor(b.own, b.opp, m)
	if flips == 0 {
		return b, false
	}
	return Board{
		own:         b.opp &^ flips,
		opp:         b.own | flips | m,
		blackToMove: !b.blackToMove,
	}, true
}

// MustPlay applies a sequence of algebraic moves ("pass" allowed) and panics
// on an illegal move. Used to construct fixture positions.
func (b Board) MustPlay(moves ...string) Board {
	for _, mv := range moves {
		var nb Board
		var ok bool
		if mv == "pass" {
			nb, ok = b.Play(-1)
		} else {
			i, err := SquareIndex(mv)
			if err != nil {
				panic(err)
			}
			nb, ok = b.Play(i)
		}
		if !ok {
			panic(fmt.Sprintf("othello: illegal move %q on\n%s", mv, b))
		}
		b = nb
	}
	return b
}

// Terminal reports whether the game is over (neither player can move).
func (b Board) Terminal() bool {
	if b.own|b.opp == ^uint64(0) {
		return true
	}
	return legalMoves(b.own, b.opp) == 0 && legalMoves(b.opp, b.own) == 0
}

// Children implements game.Position: one child per legal move, or a single
// pass child when only the opponent can move, or nil when the game is over.
func (b Board) Children() []game.Position {
	moves := legalMoves(b.own, b.opp)
	if moves == 0 {
		if legalMoves(b.opp, b.own) == 0 {
			return nil // game over
		}
		child, _ := b.Play(-1)
		return []game.Position{child}
	}
	out := make([]game.Position, 0, bits.OnesCount64(moves))
	for m := moves; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		child, ok := b.Play(i)
		if !ok {
			panic("othello: legal move rejected")
		}
		out = append(out, child)
	}
	return out
}

// Discs returns the disc counts (own, opp).
func (b Board) Discs() (own, opp int) {
	return bits.OnesCount64(b.own), bits.OnesCount64(b.opp)
}

// BlackToMove reports whether Black is the player to move.
func (b Board) BlackToMove() bool { return b.blackToMove }

// String renders the board with Black as 'X', White as 'O', and legal moves
// for the side to move as '*'.
func (b Board) String() string {
	black, white := b.own, b.opp
	if !b.blackToMove {
		black, white = white, black
	}
	moves := legalMoves(b.own, b.opp)
	var sb strings.Builder
	side := "BLACK" // renders without any cell characters so Parse(String()) round-trips
	if !b.blackToMove {
		side = "WHITE"
	}
	fmt.Fprintf(&sb, "  a b c d e f g h   turn: %s\n", side)
	for r := 7; r >= 0; r-- {
		fmt.Fprintf(&sb, "%d ", r+1)
		for c := 0; c < 8; c++ {
			m := uint64(1) << uint(r*8+c)
			switch {
			case black&m != 0:
				sb.WriteString("X ")
			case white&m != 0:
				sb.WriteString("O ")
			case moves&m != 0:
				sb.WriteString("* ")
			default:
				sb.WriteString(". ")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse builds a Board from a rendering like the one String produces, given
// explicitly which side is to move. Cells must be uppercase 'X' (Black),
// uppercase 'O' (White), '.', or '*' (legal-move markers, treated as empty);
// all other characters, including lowercase letters, are skipped so that
// String's header and rank digits are harmless.
func Parse(diagram string, blackToMove bool) (Board, error) {
	var black, white uint64
	i := 0
	for _, r := range diagram {
		switch r {
		case 'X':
			black |= 1 << uint(i)
			i++
		case 'O':
			white |= 1 << uint(i)
			i++
		case '.', '*':
			i++
		}
		if i == 64 {
			break
		}
	}
	if i != 64 {
		return Board{}, fmt.Errorf("othello: diagram has %d cells, want 64", i)
	}
	// Diagrams are written top row (rank 8) first; flip vertically.
	black = flipVertical(black)
	white = flipVertical(white)
	b := Board{blackToMove: blackToMove}
	if blackToMove {
		b.own, b.opp = black, white
	} else {
		b.own, b.opp = white, black
	}
	return b, nil
}

func flipVertical(x uint64) uint64 {
	var y uint64
	for r := 0; r < 8; r++ {
		y |= ((x >> uint(8*r)) & 0xFF) << uint(8*(7-r))
	}
	return y
}

// Hash returns a 64-bit position hash for transposition tables. Two boards
// with the same discs and the same side to move hash equal (the pass-history
// flag does not affect the reachable subtree, so it is excluded).
func (b Board) Hash() uint64 {
	h := mix64(b.own)
	h ^= mix64(b.opp + 0x9E3779B97F4A7C15)
	if b.blackToMove {
		h ^= 0xD1B54A32D192ED03
	}
	return mix64(h)
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
