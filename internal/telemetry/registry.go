// Package telemetry is the repository's dependency-free metrics and tracing
// layer: counters, gauges, fixed-bucket histograms and labeled families
// collected in a Registry, exposed in Prometheus text format or as a JSON
// snapshot, plus a Chrome trace_event writer whose output loads in Perfetto.
//
// Everything is stdlib-only by design (the container bakes in no third-party
// modules), and every metric is safe for concurrent use: counters and gauges
// are single atomics, histograms are per-bucket atomics, and family child
// lookup takes a read lock only on the first access of a label set.
//
// The hot search path (internal/core) does not touch this package at all: its
// event hooks aggregate in per-worker shards and the *consumers* (engine,
// servers, commands) fold the shards into a Registry. See DESIGN.md §7.
package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metricKind is the exposition type of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them. The zero value is not
// usable; create one with NewRegistry. All methods are safe for concurrent
// use. Registration of a duplicate or invalid name panics: families are
// created at wiring time, so a bad name is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families []*family // registration order, the exposition order
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family with zero or more label dimensions.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64      // histogram upper bounds, ascending, +Inf implicit
	fn      func() float64 // callback gauge; nil for stored values

	mu       sync.RWMutex
	children map[string]*metric
}

// register creates and records a family, panicking on invalid or duplicate
// definitions.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, labels []string, fn func() float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: metric %s: bucket bounds not strictly increasing", name))
		}
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		fn:       fn,
		children: make(map[string]*metric),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric name %q", name))
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// child returns the metric for the given label values, creating it on first
// use. The fast path is a read-locked map hit.
func (f *family) child(labelVals []string) *metric {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s: got %d label values, want %d",
			f.name, len(labelVals), len(f.labels)))
	}
	key := strings.Join(labelVals, "\xff")
	f.mu.RLock()
	m := f.children[key]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.children[key]; m != nil {
		return m
	}
	m = &metric{labelVals: append([]string(nil), labelVals...)}
	if f.kind == kindHistogram {
		m.hist = newHistValues(len(f.buckets))
	}
	f.children[key] = m
	return m
}

// sortedChildren returns the family's metrics ordered by label values, for
// deterministic exposition.
func (f *family) sortedChildren() []*metric {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*metric, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	return out
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	return &Counter{m: f.child(nil)}
}

// CounterVec registers a counter family with the given label dimensions.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, nil, labels, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	return &Gauge{m: f.child(nil)}
}

// GaugeVec registers a gauge family with the given label dimensions.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, nil, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("telemetry: GaugeFunc %s: nil function", name))
	}
	r.register(name, help, kindGauge, nil, nil, fn)
}

// Histogram registers an unlabeled histogram with the given upper bounds
// (ascending; a +Inf overflow bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, buckets, nil, nil)
	return &Histogram{f: f, m: f.child(nil)}
}

// HistogramVec registers a histogram family with label dimensions.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, buckets, labels, nil)}
}
