package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event output (the JSON array format), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Both the real runtime's worker
// spans and the simulator's virtual-time busy intervals export through this
// writer, so the paper's virtual timelines and the machine's wall-clock
// timelines render in the same tool. Timestamps and durations are in
// microseconds (for simulated runs: virtual time units, a fiction Perfetto
// neither knows nor cares about).

// traceEvent is one trace_event record.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceWriter streams trace events as a JSON array, one event per line.
type TraceWriter struct {
	w   io.Writer
	n   int
	err error
}

// NewTraceWriter starts a trace stream on w. Call Close to finish the array.
func NewTraceWriter(w io.Writer) *TraceWriter { return &TraceWriter{w: w} }

func (t *TraceWriter) emit(ev traceEvent) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	sep := "[ "
	if t.n > 0 {
		sep = ",\n  "
	}
	if _, err := fmt.Fprintf(t.w, "%s%s", sep, data); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Complete emits an "X" (complete) event: a span of dur microseconds starting
// at ts on track (pid, tid).
func (t *TraceWriter) Complete(pid, tid int64, name, cat string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1 // Perfetto drops zero-length spans; keep them visible
	}
	t.emit(traceEvent{Name: name, Cat: cat, Phase: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args})
}

// Instant emits an "i" (instant) event at ts on track (pid, tid).
func (t *TraceWriter) Instant(pid, tid int64, name string, ts int64, args map[string]any) {
	t.emit(traceEvent{Name: name, Phase: "i", TS: ts, PID: pid, TID: tid, Args: args})
}

// CounterSample emits a "C" (counter) event: Perfetto renders one line per
// key in values as a counter track.
func (t *TraceWriter) CounterSample(pid int64, name string, ts int64, values map[string]any) {
	t.emit(traceEvent{Name: name, Phase: "C", TS: ts, PID: pid, TID: 0, Args: values})
}

// ProcessName emits the process_name metadata record for pid.
func (t *TraceWriter) ProcessName(pid int64, name string) {
	t.emit(traceEvent{Name: "process_name", Phase: "M", PID: pid, Args: map[string]any{"name": name}})
}

// ThreadName emits the thread_name metadata record for (pid, tid).
func (t *TraceWriter) ThreadName(pid, tid int64, name string) {
	t.emit(traceEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tid, Args: map[string]any{"name": name}})
}

// Close terminates the JSON array and returns the first error encountered.
func (t *TraceWriter) Close() error {
	if t.err != nil {
		return t.err
	}
	if t.n == 0 {
		_, t.err = io.WriteString(t.w, "[")
	}
	if t.err == nil {
		_, t.err = io.WriteString(t.w, " ]\n")
	}
	return t.err
}

// TraceSpan is one renderable span, runtime-agnostic: core worker telemetry
// and simulator busy intervals both convert to it.
type TraceSpan struct {
	Track     int            // tid: one track per worker/processor
	TrackName string         // thread_name metadata (first non-empty wins)
	Name      string         // span label (e.g. task kind)
	Cat       string         // category (e.g. "primary" / "speculative")
	StartUS   int64          // microseconds (or virtual units) from the epoch
	DurUS     int64          // span length
	Args      map[string]any // optional details
}

// WriteTrace writes a complete Chrome trace for the spans: process metadata,
// one named thread per track, and one "X" event per span, ordered by (track,
// start) so output is deterministic.
func WriteTrace(w io.Writer, process string, spans []TraceSpan) error {
	tw := NewTraceWriter(w)
	tw.ProcessName(1, process)
	sorted := append([]TraceSpan(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Track != sorted[j].Track {
			return sorted[i].Track < sorted[j].Track
		}
		return sorted[i].StartUS < sorted[j].StartUS
	})
	names := map[int]string{}
	for _, s := range sorted {
		if _, ok := names[s.Track]; !ok || (names[s.Track] == "" && s.TrackName != "") {
			names[s.Track] = s.TrackName
		}
	}
	for _, s := range sorted {
		if name, ok := names[s.Track]; ok {
			if name == "" {
				name = fmt.Sprintf("worker %d", s.Track)
			}
			tw.ThreadName(1, int64(s.Track), name)
			delete(names, s.Track)
		}
		tw.Complete(1, int64(s.Track), s.Name, s.Cat, s.StartUS, s.DurUS, s.Args)
	}
	return tw.Close()
}
