package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4), families in registration order, children in sorted
// label-value order, so output is deterministic and diffable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	var b strings.Builder
	for _, f := range families {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
		}
		for _, m := range f.sortedChildren() {
			writeChild(&b, f, m)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeChild(b *strings.Builder, f *family, m *metric) {
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, m.labelVals), m.num.Load())
	case kindGauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, m.labelVals), formatFloat(m.gaugeGet()))
	case kindHistogram:
		// Copy before appending "le": f.labels and m.labelVals are shared.
		names := append(append(make([]string, 0, len(f.labels)+1), f.labels...), "le")
		vals := append(append(make([]string, 0, len(m.labelVals)+1), m.labelVals...), "")
		var cum int64
		for i := range m.hist.counts {
			cum += m.hist.counts[i].Load()
			vals[len(vals)-1] = "+Inf"
			if i < len(f.buckets) {
				vals[len(vals)-1] = formatFloat(f.buckets[i])
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(names, vals), cum)
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, m.labelVals),
			formatFloat(math.Float64frombits(m.hist.sum.Load())))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, m.labelVals), cum)
	}
}

// labelString renders {k="v",...} or "" when there are no labels.
func labelString(names, vals []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one metric child in a JSON snapshot.
type Sample struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`   // histograms
	Sum     float64           `json:"sum,omitempty"`     // histograms
	Buckets map[string]int64  `json:"buckets,omitempty"` // cumulative, keyed by le
}

// FamilySnapshot is one family in a JSON snapshot.
type FamilySnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Type    string   `json:"type"`
	Samples []Sample `json:"samples"`
}

// Snapshot returns a point-in-time copy of every family, for JSON exposition
// and tests.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	out := make([]FamilySnapshot, 0, len(families))
	for _, f := range families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
		if f.fn != nil {
			fs.Samples = append(fs.Samples, Sample{Value: f.fn()})
		}
		for _, m := range f.sortedChildren() {
			s := Sample{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					s.Labels[n] = m.labelVals[i]
				}
			}
			switch f.kind {
			case kindCounter:
				s.Value = float64(m.num.Load())
			case kindGauge:
				s.Value = m.gaugeGet()
			case kindHistogram:
				s.Count = m.hist.count.Load()
				s.Sum = math.Float64frombits(m.hist.sum.Load())
				s.Buckets = make(map[string]int64, len(m.hist.counts))
				var cum int64
				for i := range m.hist.counts {
					cum += m.hist.counts[i].Load()
					le := "+Inf"
					if i < len(f.buckets) {
						le = formatFloat(f.buckets[i])
					}
					s.Buckets[le] = cum
				}
				s.Value = float64(s.Count)
			}
			fs.Samples = append(fs.Samples, s)
		}
		out = append(out, fs)
	}
	return out
}

// Handler serves the registry: Prometheus text format by default,
// ?format=json for the JSON snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
