package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a written trace back into generic events, proving the
// output is the valid JSON array Perfetto and chrome://tracing load.
func decodeTrace(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var events []map[string]any
	if err := json.Unmarshal([]byte(raw), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, raw)
	}
	return events
}

func TestTraceWriterEvents(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	tw.ProcessName(1, "ertree")
	tw.ThreadName(1, 0, "worker 0")
	tw.Complete(1, 0, "serial", "primary", 100, 50, map[string]any{"ply": 3})
	tw.Complete(1, 0, "leaf", "speculative", 200, 0, nil) // zero dur clamped to 1
	tw.Instant(1, 0, "cutoff", 260, nil)
	tw.CounterSample(1, "heap", 300, map[string]any{"primary": 7, "spec": 2})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, b.String())
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "process_name" {
		t.Fatalf("first event: %v", events[0])
	}
	span := events[2]
	if span["ph"] != "X" || span["ts"] != float64(100) || span["dur"] != float64(50) || span["cat"] != "primary" {
		t.Fatalf("complete event: %v", span)
	}
	if events[3]["dur"] != float64(1) {
		t.Fatalf("zero-duration span not clamped: %v", events[3])
	}
	if events[5]["ph"] != "C" {
		t.Fatalf("counter event: %v", events[5])
	}
}

func TestTraceWriterEmpty(t *testing.T) {
	var b strings.Builder
	tw := NewTraceWriter(&b)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if events := decodeTrace(t, b.String()); len(events) != 0 {
		t.Fatalf("empty trace has %d events", len(events))
	}
}

func TestWriteTraceOneTrackPerWorker(t *testing.T) {
	spans := []TraceSpan{
		{Track: 1, TrackName: "p1", Name: "serial", StartUS: 10, DurUS: 5},
		{Track: 0, TrackName: "p0", Name: "leaf", StartUS: 0, DurUS: 3},
		{Track: 1, TrackName: "p1", Name: "leaf", StartUS: 20, DurUS: 2},
	}
	var b strings.Builder
	if err := WriteTrace(&b, "test", spans); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, b.String())
	// 1 process_name + 2 thread_name + 3 spans.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	threads := map[float64]string{}
	var spanCount int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				threads[ev["tid"].(float64)] = args["name"].(string)
			}
		case "X":
			spanCount++
		}
	}
	if spanCount != 3 {
		t.Fatalf("span events = %d, want 3", spanCount)
	}
	if threads[0] != "p0" || threads[1] != "p1" {
		t.Fatalf("thread names: %v", threads)
	}
}
