package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs processed")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("queue_depth", "current queue depth")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 1 {
		t.Fatalf("gauge = %v, want 1", g.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter add did not panic")
			}
		}()
		c.Add(-1)
	}()
}

func TestVecLabelsAndExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests by path and code", "path", "code")
	v.With("/bestmove", "200").Add(3)
	v.With("/bestmove", "503").Inc()
	v.With(`/we"ird`+"\n", "200").Inc()
	r.GaugeFunc("uptime_seconds", "seconds since start", func() float64 { return 12.5 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP http_requests_total requests by path and code\n",
		"# TYPE http_requests_total counter\n",
		`http_requests_total{path="/bestmove",code="200"} 3` + "\n",
		`http_requests_total{path="/bestmove",code="503"} 1` + "\n",
		`http_requests_total{path="/we\"ird\n",code="200"} 1` + "\n",
		"# TYPE uptime_seconds gauge\n",
		"uptime_seconds 12.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-6.1) > 1e-9 {
		t.Fatalf("sum = %v, want 6.1", h.Sum())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram\n",
		`latency_seconds_bucket{le="0.1"} 2` + "\n",
		`latency_seconds_bucket{le="0.5"} 3` + "\n",
		`latency_seconds_bucket{le="1"} 4` + "\n",
		`latency_seconds_bucket{le="+Inf"} 5` + "\n",
		"latency_seconds_sum 6.1\n",
		"latency_seconds_count 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if got := h.m.hist.counts[0].Load(); got != 1 {
		t.Fatalf("boundary sample in bucket 0: %d, want 1", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", LinearBuckets(10, 10, 10)) // 10..100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-50) > 10 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p95 := h.Quantile(0.95); math.Abs(p95-95) > 10 {
		t.Fatalf("p95 = %v, want ~95", p95)
	}
	empty := r.Histogram("q2", "", []float64{1})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// Overflow-bucket quantile clamps to the highest finite bound.
	over := r.Histogram("q3", "", []float64{1})
	over.Observe(100)
	if got := over.Quantile(0.9); got != 1 {
		t.Fatalf("overflow quantile = %v, want 1", got)
	}
}

func TestRegistryPanicsOnBadRegistrations(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.Counter("ok_total", "") },
		"bad name":      func() { r.Counter("bad-name", "") },
		"bad label":     func() { r.CounterVec("v_total", "", "bad-label") },
		"bad buckets":   func() { r.Histogram("h1", "", []float64{2, 1}) },
		"nil gaugefunc": func() { r.GaugeFunc("g1", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s registration did not panic", name)
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label arity mismatch did not panic")
			}
		}()
		r.CounterVec("v2_total", "", "a", "b").With("only-one")
	}()
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("ops_total", "", "kind").With("serial").Add(7)
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"ops_total"`, `"kind":"serial"`, `"value":7`, `"count":2`, `"+Inf":2`} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %q in %s", want, s)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("text body:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap []FamilySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].Name != "x_total" {
		t.Fatalf("json snapshot: %+v", snap)
	}
}

// TestConcurrentUse hammers every metric type from many goroutines; run
// under -race this is the package's synchronization proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	v := r.CounterVec("v_total", "", "w")
	g := r.Gauge("g", "")
	h := r.HistogramVec("h", "", []float64{1, 10, 100}, "w")
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(lbl).Inc()
				g.Add(1)
				h.With(lbl).Observe(float64(i % 150))
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WriteText(&b)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	var total int64
	for w := 0; w < workers; w++ {
		total += v.With(string(rune('a' + w))).Value()
	}
	if total != workers*iters {
		t.Fatalf("vec total = %d, want %d", total, workers*iters)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear: %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential: %v", exp)
	}
	lat := LatencyBuckets()
	for i := 1; i < len(lat); i++ {
		if lat[i] <= lat[i-1] {
			t.Fatalf("latency buckets not increasing: %v", lat)
		}
	}
}
