package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// metric is the storage behind one (family, label values) pair. Counters use
// num; gauges use fbits (float64 bits); histograms use hist.
type metric struct {
	labelVals []string
	num       atomic.Int64
	fbits     atomic.Uint64
	hist      *histValues
}

func (m *metric) gaugeSet(v float64) { m.fbits.Store(math.Float64bits(v)) }
func (m *metric) gaugeGet() float64  { return math.Float64frombits(m.fbits.Load()) }
func (m *metric) gaugeAdd(d float64) {
	for {
		old := m.fbits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if m.fbits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() { c.m.num.Add(1) }

// Add adds n; negative deltas panic (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("telemetry: counter decreased")
	}
	c.m.num.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.m.num.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelVals ...string) *Counter {
	return &Counter{m: v.f.child(labelVals)}
}

// Gauge is a metric that can go up and down.
type Gauge struct{ m *metric }

// Set stores v.
func (g *Gauge) Set(v float64) { g.m.gaugeSet(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) { g.m.gaugeAdd(d) }

// Inc adds one.
func (g *Gauge) Inc() { g.m.gaugeAdd(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.m.gaugeAdd(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.m.gaugeGet() }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return &Gauge{m: v.f.child(labelVals)}
}

// histValues is the concurrent state of one histogram child: per-bucket
// atomic counts (the last slot is the +Inf overflow bucket), a total count
// and a float sum maintained by CAS.
type histValues struct {
	counts []atomic.Int64 // len(buckets)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistValues(buckets int) *histValues {
	return &histValues{counts: make([]atomic.Int64, buckets+1)}
}

func (h *histValues) observe(upper []float64, v float64) {
	i := sort.SearchFloat64s(upper, v) // first bound >= v: the `le` bucket
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram observes float64 samples into fixed buckets.
type Histogram struct {
	f *family
	m *metric
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.m.hist.observe(h.f.buckets, v) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.m.hist.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.m.hist.sum.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing it, the standard Prometheus-style estimate.
// Samples in the +Inf overflow bucket are attributed to the highest finite
// bound. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(h.f.buckets, h.m.hist, q)
}

func quantile(upper []float64, hv *histValues, q float64) float64 {
	total := hv.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range hv.counts {
		n := hv.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(upper) {
				// Overflow bucket: no finite upper edge to interpolate to.
				if len(upper) == 0 {
					return math.NaN()
				}
				return upper[len(upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (upper[i]-lo)*frac
		}
		cum += n
	}
	return upper[len(upper)-1]
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (created on first
// use).
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return &Histogram{f: v.f, m: v.f.child(labelVals)}
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets are the default request-latency bounds in seconds,
// 500µs to ~16s doubling.
func LatencyBuckets() []float64 { return ExponentialBuckets(0.0005, 2, 16) }
