package telemetry

import "testing"

func TestRingKeepsNewestInOrder(t *testing.T) {
	r := NewRing[int](4)
	if _, ok := r.Newest(); ok {
		t.Fatal("empty ring reported a newest value")
	}
	for i := 1; i <= 10; i++ {
		r.Push(i)
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped=%d, want 6", got)
	}
	got := r.Snapshot(nil)
	want := []int{7, 8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot=%v, want %v", got, want)
		}
	}
	if v, _ := r.Oldest(); v != 7 {
		t.Fatalf("Oldest=%d, want 7", v)
	}
	if v, _ := r.Newest(); v != 10 {
		t.Fatalf("Newest=%d, want 10", v)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing[string](8)
	r.Push("a")
	r.Push("b")
	if r.Len() != 2 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 2/0", r.Len(), r.Dropped())
	}
	s := r.Snapshot(nil)
	if len(s) != 2 || s[0] != "a" || s[1] != "b" {
		t.Fatalf("snapshot=%v", s)
	}
}

// TestRingSnapshotReuse pins the steady-state contract the obs monitor relies
// on: snapshotting into a warmed reusable buffer does not allocate.
func TestRingSnapshotReuse(t *testing.T) {
	r := NewRing[int](16)
	for i := 0; i < 40; i++ {
		r.Push(i)
	}
	scratch := make([]int, 0, 16)
	allocs := testing.AllocsPerRun(100, func() {
		scratch = r.Snapshot(scratch[:0])
	})
	if allocs != 0 {
		t.Fatalf("Snapshot into warmed buffer allocated %.1f/op, want 0", allocs)
	}
}
