package telemetry

// Ring is a fixed-capacity overwrite ring of values: pushes past capacity
// replace the oldest entry and count as drops. It is the retention primitive
// behind the obs sampling ring and the anomaly history — the buffer is
// allocated once at construction and every Push writes in place, so a
// steady-state sampler runs without allocating.
//
// Ring is not safe for concurrent use; callers hold their own lock (the obs
// monitor serializes pushes and snapshots under one mutex).
type Ring[T any] struct {
	buf []T
	n   uint64 // total pushes ever
}

// NewRing creates a ring retaining the newest capacity values (minimum 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring[T]{buf: make([]T, 0, capacity)}
}

// Push appends v, overwriting the oldest value once the ring is full.
func (r *Ring[T]) Push(v T) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = v
	}
	r.n++
}

// Len returns the number of retained values.
func (r *Ring[T]) Len() int { return len(r.buf) }

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return cap(r.buf) }

// Dropped returns how many values have been overwritten.
func (r *Ring[T]) Dropped() uint64 {
	if r.n <= uint64(cap(r.buf)) {
		return 0
	}
	return r.n - uint64(cap(r.buf))
}

// At returns the i-th oldest retained value; i must be in [0, Len).
func (r *Ring[T]) At(i int) T {
	if len(r.buf) < cap(r.buf) {
		return r.buf[i]
	}
	return r.buf[(r.n+uint64(i))%uint64(cap(r.buf))]
}

// Newest returns the most recent value, if any.
func (r *Ring[T]) Newest() (T, bool) {
	var zero T
	if len(r.buf) == 0 {
		return zero, false
	}
	return r.At(len(r.buf) - 1), true
}

// Oldest returns the oldest retained value, if any.
func (r *Ring[T]) Oldest() (T, bool) {
	var zero T
	if len(r.buf) == 0 {
		return zero, false
	}
	return r.At(0), true
}

// Snapshot appends the retained values oldest-first to dst and returns the
// extended slice. Passing a reused dst[:0] makes steady-state snapshots
// allocation-free once dst has grown to the ring capacity.
func (r *Ring[T]) Snapshot(dst []T) []T {
	for i := 0; i < len(r.buf); i++ {
		dst = append(dst, r.At(i))
	}
	return dst
}
