package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSnapshotDeltaQuantile: differencing two snapshots isolates the
// observations made in between, and the delta quantile reflects only those.
func TestSnapshotDeltaQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d", "", LinearBuckets(10, 10, 10)) // 10..100
	for i := 0; i < 100; i++ {
		h.Observe(5) // all in the first bucket
	}
	older := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(95) // all near the top
	}
	newer := h.Snapshot()

	// Cumulative median straddles both bursts; the delta sees only the second.
	if q := h.Quantile(0.5); q > 50 {
		t.Fatalf("cumulative p50 %v should be pulled down by the first burst", q)
	}
	if q := DeltaQuantile(h.BucketBounds(), older, newer, 0.5); q < 80 {
		t.Fatalf("delta p50 %v, want only the 95-valued burst", q)
	}
	if n := newer.Sub(older).Count; n != 100 {
		t.Fatalf("delta count %d, want 100", n)
	}
}

// TestDeltaQuantileEmptyWindow: an empty delta (no observations between the
// snapshots) is NaN, exactly like an empty histogram.
func TestDeltaQuantileEmptyWindow(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("e", "", LinearBuckets(1, 1, 4))
	h.Observe(2)
	s := h.Snapshot()
	if q := DeltaQuantile(h.BucketBounds(), s, s, 0.9); !math.IsNaN(q) {
		t.Fatalf("empty delta quantile %v, want NaN", q)
	}
	w := NewHistWindow(h, 4)
	// The seed snapshot already contains the one observation, so the window
	// starts empty.
	if q := w.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("fresh window quantile %v, want NaN", q)
	}
	if n := w.Count(); n != 0 {
		t.Fatalf("fresh window count %d, want 0", n)
	}
	if r := w.Rate(); r != 0 {
		t.Fatalf("fresh window rate %v, want 0", r)
	}
}

// TestDeltaMonotoneCounts: snapshots of a live histogram only grow, and Sub
// clamps any inverted pair instead of producing negative buckets.
func TestDeltaMonotoneCounts(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("m", "", LinearBuckets(1, 1, 8))
	var prev HistSnapshot
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Observe(float64(i % 10))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count < prev.Count {
			t.Errorf("snapshot count went backwards: %d -> %d", prev.Count, s.Count)
		}
		if len(prev.Counts) == len(s.Counts) {
			for j := range s.Counts {
				if s.Counts[j] < prev.Counts[j] {
					t.Errorf("bucket %d went backwards", j)
				}
			}
		}
		prev = s
	}
	close(stop)
	wg.Wait()

	// Swapped arguments clamp to an empty delta, never negative counts.
	newer := h.Snapshot()
	inverted := HistSnapshot{Counts: make([]int64, len(newer.Counts))}.Sub(newer)
	if inverted.Count != 0 {
		t.Fatalf("inverted Sub produced count %d, want 0", inverted.Count)
	}
	for i, c := range inverted.Counts {
		if c < 0 {
			t.Fatalf("inverted Sub produced negative bucket %d: %d", i, c)
		}
	}
}

// TestHistWindowWraparound: once the ring is full, ticking evicts the oldest
// snapshot, so observations older than the window fall out of the quantile.
func TestHistWindowWraparound(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("w", "", LinearBuckets(10, 10, 10))
	w := NewHistWindow(h, 3)

	// Burst of small values, then enough ticks to push it out of the ring.
	for i := 0; i < 50; i++ {
		h.Observe(15)
	}
	w.Tick()
	if n := w.Count(); n != 50 {
		t.Fatalf("window count %d after first burst, want 50", n)
	}
	if q := w.Quantile(0.99); q > 30 {
		t.Fatalf("window p99 %v, want inside the 10-20 bucket region", q)
	}

	w.Tick()
	w.Tick() // ring full: [burst, post-burst, post-burst]
	w.Tick() // evicts the pre-burst seed AND the post-burst duplicates shift
	w.Tick() // oldest retained snapshot now includes the burst
	if n := w.Count(); n != 0 {
		t.Fatalf("window count %d after the burst aged out, want 0", n)
	}
	if q := w.Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("aged-out window quantile %v, want NaN", q)
	}

	// New traffic after wraparound is visible again.
	for i := 0; i < 20; i++ {
		h.Observe(95)
	}
	if n := w.Count(); n != 20 {
		t.Fatalf("window count %d after new burst, want 20", n)
	}
	if q := w.Quantile(0.5); q < 80 {
		t.Fatalf("window p50 %v after new burst, want near 95", q)
	}
}

// TestHistWindowConcurrent: ticking and reading while observing races nothing
// (run under -race) and never yields negative counts.
func TestHistWindowConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("c", "", ExponentialBuckets(0.001, 2, 12))
	w := NewHistWindow(h, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%100) * 0.001)
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		w.Tick()
		if n := w.Count(); n < 0 {
			t.Fatalf("negative window count %d", n)
		}
		w.Quantile(0.99)
		w.Rate()
	}
	close(stop)
	wg.Wait()
}

// TestHistWindowConcurrentTickers: multiple goroutines ticking the same
// window while others record and read. The production shape has one ticker,
// but nothing in the API says so — a misconfigured deployment with two SLO
// tickers must corrupt nothing (run under -race).
func TestHistWindowConcurrentTickers(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ct", "", ExponentialBuckets(0.001, 2, 12))
	w := NewHistWindow(h, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(i%50) * 0.002)
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Tick()
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := w.Count(); n < 0 {
					t.Errorf("negative window count %d", n)
					return
				}
				if q := w.Quantile(0.5); q < 0 {
					t.Errorf("negative quantile %v", q)
					return
				}
				w.Rate()
				w.Span()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
