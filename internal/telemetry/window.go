package telemetry

import (
	"math"
	"sync"
	"time"
)

// HistSnapshot is a point-in-time copy of one histogram child's state:
// per-bucket counts (last slot is the +Inf overflow bucket), total count, and
// value sum. Snapshots of the same histogram are comparable: counts only grow,
// so the element-wise difference of two snapshots is itself a histogram — the
// observations made between the two instants. That difference is what turns
// the cumulative-since-boot histograms of a long-lived server into "what was
// p99 during the last window".
type HistSnapshot struct {
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current bucket counts, count, and sum.
// Concurrent observers may land between individual bucket reads, so a
// snapshot taken under load can be off by the few in-flight observations —
// fine for quantile estimation, which is already bucket-approximate.
func (h *Histogram) Snapshot() HistSnapshot {
	hv := h.m.hist
	s := HistSnapshot{Counts: make([]int64, len(hv.counts))}
	for i := range hv.counts {
		c := hv.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(hv.sum.Load())
	return s
}

// BucketBounds returns the histogram's finite upper bounds (the +Inf overflow
// bucket is implicit), shared with the family — callers must not mutate.
func (h *Histogram) BucketBounds() []float64 { return h.f.buckets }

// Sub returns the observations made between older and newer as a snapshot
// (newer minus older, element-wise). Negative deltas — an older snapshot from
// a different histogram, or arguments swapped — clamp to zero bucket by
// bucket, so the result is always a valid (possibly empty) histogram.
func (newer HistSnapshot) Sub(older HistSnapshot) HistSnapshot {
	d := HistSnapshot{Counts: make([]int64, len(newer.Counts))}
	for i, c := range newer.Counts {
		var o int64
		if i < len(older.Counts) {
			o = older.Counts[i]
		}
		if c > o {
			d.Counts[i] = c - o
			d.Count += c - o
		}
	}
	if s := newer.Sum - older.Sum; s > 0 && d.Count > 0 {
		d.Sum = s
	}
	return d
}

// Quantile estimates the q-quantile of the snapshot's observations with the
// same interpolation as Histogram.Quantile. upper must be the histogram's
// finite bucket bounds (BucketBounds). Returns NaN when the snapshot is
// empty.
func (s HistSnapshot) Quantile(upper []float64, q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(upper) {
				if len(upper) == 0 {
					return math.NaN()
				}
				return upper[len(upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (upper[i]-lo)*frac
		}
		cum += n
	}
	return upper[len(upper)-1]
}

// DeltaQuantile estimates the q-quantile of the observations made between
// older and newer. NaN when nothing was observed in between.
func DeltaQuantile(upper []float64, older, newer HistSnapshot, q float64) float64 {
	return newer.Sub(older).Quantile(upper, q)
}

// HistWindow turns one cumulative histogram into a sliding-window view: a
// ring of up to slots snapshots, advanced by Tick, against which the live
// counts are differenced. With a tick every T and N slots the window covers
// between (N-1)×T and N×T of history — the standard snapshot-ring
// approximation of "the last minute" (T=5s, N=12).
//
// The ring is seeded with one snapshot at construction, so a window younger
// than its first eviction reports since-construction quantiles rather than
// nothing. All methods are safe for concurrent use.
type HistWindow struct {
	h     *Histogram
	mu    sync.Mutex
	snaps []HistSnapshot // ring, oldest at head
	times []time.Time
	head  int // index of the oldest retained snapshot
	n     int // retained snapshots
}

// NewHistWindow creates a window of up to slots snapshots over h (minimum 1),
// seeded with the histogram's current state.
func NewHistWindow(h *Histogram, slots int) *HistWindow {
	if slots < 1 {
		slots = 1
	}
	w := &HistWindow{
		h:     h,
		snaps: make([]HistSnapshot, slots),
		times: make([]time.Time, slots),
	}
	w.push(h.Snapshot(), time.Now())
	return w
}

func (w *HistWindow) push(s HistSnapshot, at time.Time) {
	i := (w.head + w.n) % len(w.snaps)
	w.snaps[i] = s
	w.times[i] = at
	if w.n < len(w.snaps) {
		w.n++
	} else {
		w.head = (w.head + 1) % len(w.snaps) // overwrite the oldest
	}
}

// Tick records the histogram's current state into the ring, evicting the
// oldest snapshot when full. Call it on a steady cadence; the window's age is
// the tick interval times the slot count.
func (w *HistWindow) Tick() {
	s := w.h.Snapshot()
	w.mu.Lock()
	w.push(s, time.Now())
	w.mu.Unlock()
}

// delta returns the observations since the oldest retained snapshot and the
// wall-clock span they cover.
func (w *HistWindow) delta() (HistSnapshot, time.Duration) {
	live := w.h.Snapshot()
	w.mu.Lock()
	oldest := w.snaps[w.head]
	at := w.times[w.head]
	w.mu.Unlock()
	return live.Sub(oldest), time.Since(at)
}

// Quantile estimates the q-quantile of the observations inside the window
// (since the oldest retained snapshot). NaN when the window saw nothing.
func (w *HistWindow) Quantile(q float64) float64 {
	d, _ := w.delta()
	return d.Quantile(w.h.BucketBounds(), q)
}

// Count returns the number of observations inside the window.
func (w *HistWindow) Count() int64 {
	d, _ := w.delta()
	return d.Count
}

// Rate returns observations per second inside the window (0 for an empty or
// zero-age window).
func (w *HistWindow) Rate() float64 {
	d, span := w.delta()
	if d.Count == 0 || span <= 0 {
		return 0
	}
	return float64(d.Count) / span.Seconds()
}

// Span reports how much history the window currently covers.
func (w *HistWindow) Span() time.Duration {
	_, span := w.delta()
	return span
}
