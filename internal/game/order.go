package game

import "sort"

// Orderer decides how the children of a node are ordered before search.
// Ordering quality is the single most important driver of alpha-beta
// performance (§2.2), and the paper's experiments (§7) sort children by
// static value above a configurable ply.
type Orderer interface {
	// Order returns the children of pos in the order they should be
	// searched. ply is the distance from the search root (root = 0).
	// Implementations may return the input slice (possibly permuted in
	// place) or a new slice.
	Order(children []Position, ply int) []Position

	// Cost reports how many static-evaluator applications Order performs
	// for n children at the given ply, so searches can charge ordering
	// overhead to their statistics (the Figure 12 effect).
	Cost(n, ply int) int
}

// NaturalOrder searches children in the game's natural move order.
type NaturalOrder struct{}

// Order returns children unchanged.
func (NaturalOrder) Order(children []Position, ply int) []Position { return children }

// Cost is always zero: no evaluator calls are made.
func (NaturalOrder) Cost(n, ply int) int { return 0 }

// StaticOrder sorts children by their static evaluation so that the child
// most favorable to the parent (the child with the lowest own-perspective
// value) is searched first. Sorting stops below MaxPly, matching the paper's
// setup ("Sorting was not performed below ply five").
//
// Note that sorting is not free: it applies the static evaluator to every
// child. The per-child evaluator calls are charged to the search statistics
// by the algorithms themselves, which is how the paper's Figure 12 overhead
// effect (serial ER beating alpha-beta on O1 despite examining more nodes)
// arises.
type StaticOrder struct {
	// MaxPly is the deepest ply (inclusive) at which sorting is applied.
	// Ply counts from 0 at the root, so the paper's "not below ply five"
	// corresponds to MaxPly = 4 with 0-based plies; we use the paper's
	// 1-based convention and treat MaxPly as "sort while ply < MaxPly".
	MaxPly int
}

// Order sorts children ascending by static value when ply < MaxPly.
func (s StaticOrder) Order(children []Position, ply int) []Position {
	if ply >= s.MaxPly || len(children) < 2 {
		return children
	}
	type kv struct {
		p Position
		v Value
	}
	keyed := make([]kv, len(children))
	for i, c := range children {
		keyed[i] = kv{p: c, v: c.Value()}
	}
	sort.SliceStable(keyed, func(i, j int) bool { return keyed[i].v < keyed[j].v })
	out := make([]Position, len(children))
	for i, k := range keyed {
		out[i] = k.p
	}
	return out
}

// Cost reports how many static evaluations Order will perform for a node
// with n children at the given ply.
func (s StaticOrder) Cost(n, ply int) int {
	if ply >= s.MaxPly || n < 2 {
		return 0
	}
	return n
}
