package game

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWindowChild(t *testing.T) {
	w := FullWindow()
	c := w.Child(-Inf)
	if c.Alpha != -Inf || c.Beta != Inf {
		t.Fatalf("full window child = %+v", c)
	}
	w = Window{Alpha: -5, Beta: 10}
	c = w.Child(3) // running value above alpha
	if c.Alpha != -10 || c.Beta != -3 {
		t.Fatalf("child = %+v, want (-10,-3)", c)
	}
	c = w.Child(-7) // running value below alpha: alpha dominates
	if c.Alpha != -10 || c.Beta != 5 {
		t.Fatalf("child = %+v, want (-10,5)", c)
	}
}

func TestWindowPredicates(t *testing.T) {
	w := Window{Alpha: 0, Beta: 4}
	if !w.Contains(2) || w.Contains(0) || w.Contains(4) {
		t.Fatal("Contains is not strict-interior")
	}
	if w.Empty() {
		t.Fatal("non-empty window reported empty")
	}
	if !(Window{Alpha: 3, Beta: 3}).Empty() || !(Window{Alpha: 4, Beta: 3}).Empty() {
		t.Fatal("empty window not detected")
	}
}

// Property: Child is antitone — double negation restores ordering, and the
// child window of a narrower parent window is narrower.
func TestWindowChildMonotoneQuick(t *testing.T) {
	f := func(a8, b8, v8, v28 int8) bool {
		a, b := Value(a8), Value(b8)
		if a > b {
			a, b = b, a
		}
		v, v2 := Value(v8), Value(v28)
		if v > v2 {
			v, v2 = v2, v
		}
		w := Window{Alpha: a, Beta: b}
		c1, c2 := w.Child(v), w.Child(v2)
		// Larger running value => smaller child beta, same child alpha.
		return c1.Alpha == c2.Alpha && c2.Beta <= c1.Beta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegationNeverOverflows(t *testing.T) {
	for _, v := range []Value{Inf, -Inf, Inf - 1, -(Inf - 1), 0} {
		if -(-v) != v {
			t.Fatalf("negation overflow at %d", v)
		}
	}
	if NoValue >= -Inf {
		t.Fatalf("NoValue must be below -Inf")
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Max/Min broken")
	}
}

type fakePos struct{ v Value }

func (f fakePos) Children() []Position { return nil }
func (f fakePos) Value() Value         { return f.v }

func TestStaticOrderSortsAscending(t *testing.T) {
	kids := []Position{fakePos{3}, fakePos{-1}, fakePos{2}, fakePos{-1}}
	o := StaticOrder{MaxPly: 5}
	got := o.Order(kids, 0)
	vals := []Value{got[0].Value(), got[1].Value(), got[2].Value(), got[3].Value()}
	want := []Value{-1, -1, 2, 3}
	for i := range vals {
		if vals[i] != want[i] {
			t.Fatalf("order %v, want %v", vals, want)
		}
	}
	if c := o.Cost(4, 0); c != 4 {
		t.Fatalf("cost=%d want 4", c)
	}
}

func TestStaticOrderRespectsMaxPly(t *testing.T) {
	kids := []Position{fakePos{3}, fakePos{-1}}
	o := StaticOrder{MaxPly: 2}
	got := o.Order(kids, 2)
	if got[0].Value() != 3 {
		t.Fatal("order applied at ply >= MaxPly")
	}
	if c := o.Cost(2, 2); c != 0 {
		t.Fatalf("cost=%d want 0 at ply >= MaxPly", c)
	}
	if got := o.Order(kids, 1); got[0].Value() != -1 {
		t.Fatal("order not applied at ply < MaxPly")
	}
}

func TestNaturalOrderIsIdentity(t *testing.T) {
	kids := []Position{fakePos{3}, fakePos{-1}}
	o := NaturalOrder{}
	got := o.Order(kids, 0)
	if got[0].Value() != 3 || o.Cost(2, 0) != 0 {
		t.Fatal("natural order must be a free identity")
	}
}

func TestStatsNilSafety(t *testing.T) {
	var s *Stats
	s.AddGenerated(1)
	s.AddEvaluated(1)
	s.AddSortEvals(1)
	s.AddCutoffs(1)
	s.AddRefutations(1)
	s.AddRefuteFails(1)
	s.NotePly(3)
	s.Merge(StatsSnapshot{Generated: 5})
	if snap := s.Snapshot(); snap != (StatsSnapshot{}) {
		t.Fatalf("nil stats snapshot nonzero: %+v", snap)
	}
}

func TestStatsConcurrentAccumulation(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddGenerated(1)
				s.NotePly(p*1000 + j)
			}
		}(i)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Generated != 8000 {
		t.Fatalf("generated=%d want 8000", snap.Generated)
	}
	if snap.MaxPlySeen != 7999 {
		t.Fatalf("maxply=%d want 7999", snap.MaxPlySeen)
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.AddGenerated(2)
	b.AddGenerated(3)
	b.AddEvaluated(4)
	b.AddCutoffs(1)
	b.NotePly(9)
	a.Merge(b.Snapshot())
	snap := a.Snapshot()
	if snap.Generated != 5 || snap.Evaluated != 4 || snap.Cutoffs != 1 || snap.MaxPlySeen != 9 {
		t.Fatalf("merge result %+v", snap)
	}
	if snap.TotalEvals() != 4 {
		t.Fatalf("total evals %d", snap.TotalEvals())
	}
}
