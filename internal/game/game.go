// Package game defines the abstractions shared by every search algorithm in
// this repository: positions, value conventions, search windows, and move
// ordering policies.
//
// Values follow the negamax convention of the paper (§2): the value of a
// position is always from the point of view of the player whose turn it is to
// move, and the value of a position for one player is the negative of its
// value for the other.
package game

// Value is a position score in the negamax convention.
//
// Values are bounded by (-Inf, +Inf) so that negation never overflows and so
// that -Inf can serve as the identity for max.
type Value int32

const (
	// Inf is the largest representable score magnitude. Static evaluators
	// must return values strictly inside (-Inf, Inf).
	Inf Value = 1 << 30

	// NoValue marks a value slot that has not been assigned yet. It is more
	// negative than -Inf so it never collides with a legal score or bound.
	NoValue Value = -(Inf + 1)
)

// Position is a game state from the point of view of the player to move.
//
// Implementations must be usable by concurrent searches: methods may be
// called from multiple goroutines simultaneously, so they must either be
// read-only or internally synchronized. All implementations in this module
// are immutable values.
type Position interface {
	// Children returns the successor positions, one per legal move. A
	// position with no children is terminal. The order of the returned
	// slice is the game's natural move order; search algorithms apply
	// their own ordering policies on top of it.
	Children() []Position

	// Value is the static evaluation of the position from the point of
	// view of the player to move. It must lie strictly inside (-Inf, Inf).
	Value() Value
}

// Window is an alpha-beta window (Alpha, Beta). The window restricts search
// below a node: once a node's value reaches Beta the node is refuted (§2.1).
type Window struct {
	Alpha, Beta Value
}

// FullWindow is the unrestricted window (-Inf, +Inf) used at the root.
func FullWindow() Window { return Window{Alpha: -Inf, Beta: Inf} }

// Child returns the window to use when searching a child of a node that is
// being searched with window w and whose running value is v: (-Beta, -max(Alpha, v)).
func (w Window) Child(v Value) Window {
	a := w.Alpha
	if v > a {
		a = v
	}
	return Window{Alpha: -w.Beta, Beta: -a}
}

// Contains reports whether v lies strictly inside the window.
func (w Window) Contains(v Value) bool { return w.Alpha < v && v < w.Beta }

// Empty reports whether the window admits no strictly interior value.
func (w Window) Empty() bool { return w.Alpha >= w.Beta }

// Max returns the larger of a and b.
func Max(a, b Value) Value {
	if a > b {
		return a
	}
	return b
}

// Min returns the smaller of a and b.
func Min(a, b Value) Value {
	if a < b {
		return a
	}
	return b
}
