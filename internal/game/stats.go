package game

import "sync/atomic"

// Stats accumulates the node-accounting quantities the paper reports. All
// counters are safe for concurrent use.
//
// Terminology (paper §7, Figures 12–13): "nodes generated" counts every node
// materialized by a search, interior or leaf. "Static evaluations" counts
// applications of the static evaluator, including evaluator calls made only
// to sort children — the paper's Figure 12 discussion hinges on this
// distinction.
type Stats struct {
	Generated   atomic.Int64 // nodes generated (interior + leaf)
	Evaluated   atomic.Int64 // static evaluator applied as a leaf value
	SortEvals   atomic.Int64 // static evaluator applied for move ordering
	Cutoffs     atomic.Int64 // searches terminated by value >= beta
	MaxPlySeen  atomic.Int64 // deepest ply reached
	Refutations atomic.Int64 // r-node refutations attempted (ER only)
	RefuteFails atomic.Int64 // refutations that failed (ER only)
}

// AddGenerated records n generated nodes.
func (s *Stats) AddGenerated(n int64) {
	if s != nil {
		s.Generated.Add(n)
	}
}

// AddEvaluated records n leaf static evaluations.
func (s *Stats) AddEvaluated(n int64) {
	if s != nil {
		s.Evaluated.Add(n)
	}
}

// AddSortEvals records n ordering static evaluations.
func (s *Stats) AddSortEvals(n int64) {
	if s != nil {
		s.SortEvals.Add(n)
	}
}

// AddCutoffs records n beta cutoffs.
func (s *Stats) AddCutoffs(n int64) {
	if s != nil {
		s.Cutoffs.Add(n)
	}
}

// AddRefutations records n attempted refutations (ER only).
func (s *Stats) AddRefutations(n int64) {
	if s != nil {
		s.Refutations.Add(n)
	}
}

// AddRefuteFails records n failed refutations (ER only).
func (s *Stats) AddRefuteFails(n int64) {
	if s != nil {
		s.RefuteFails.Add(n)
	}
}

// Merge adds every counter of o into s (for merging per-task statistics into
// a run-wide sink).
func (s *Stats) Merge(o StatsSnapshot) {
	if s == nil {
		return
	}
	s.Generated.Add(o.Generated)
	s.Evaluated.Add(o.Evaluated)
	s.SortEvals.Add(o.SortEvals)
	s.Cutoffs.Add(o.Cutoffs)
	s.Refutations.Add(o.Refutations)
	s.RefuteFails.Add(o.RefuteFails)
	s.NotePly(int(o.MaxPlySeen))
}

// NotePly records that a search reached the given ply.
func (s *Stats) NotePly(ply int) {
	if s == nil {
		return
	}
	for {
		cur := s.MaxPlySeen.Load()
		if int64(ply) <= cur || s.MaxPlySeen.CompareAndSwap(cur, int64(ply)) {
			return
		}
	}
}

// Snapshot returns a plain-struct copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Generated:   s.Generated.Load(),
		Evaluated:   s.Evaluated.Load(),
		SortEvals:   s.SortEvals.Load(),
		Cutoffs:     s.Cutoffs.Load(),
		MaxPlySeen:  s.MaxPlySeen.Load(),
		Refutations: s.Refutations.Load(),
		RefuteFails: s.RefuteFails.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	Generated   int64
	Evaluated   int64
	SortEvals   int64
	Cutoffs     int64
	MaxPlySeen  int64
	Refutations int64
	RefuteFails int64
}

// TotalEvals returns leaf plus ordering evaluator applications.
func (s StatsSnapshot) TotalEvals() int64 { return s.Evaluated + s.SortEvals }
