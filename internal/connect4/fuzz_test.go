package connect4

import "testing"

// FuzzGamePlay plays random games decoded from fuzz data and checks the
// rules invariants after every drop.
func FuzzGamePlay(f *testing.F) {
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New()
		for _, pick := range data {
			if b.Terminal() {
				if b.Children() != nil {
					t.Fatal("terminal position has children")
				}
				break
			}
			kids := b.Children()
			if len(kids) == 0 {
				t.Fatalf("non-terminal position without children:\n%s", b)
			}
			nb := kids[int(pick)%len(kids)].(Board)
			if nb.Ply() != b.Ply()+1 {
				t.Fatalf("ply %d -> %d", b.Ply(), nb.Ply())
			}
			if nb.all&^fullMask != 0 {
				t.Fatal("stone on a padding bit")
			}
			if nb.own&^nb.all != 0 {
				t.Fatal("own stones not a subset of all stones")
			}
			if nb.Hash() == b.Hash() {
				t.Fatal("hash unchanged by a drop")
			}
			b = nb
		}
	})
}
