// Package connect4 implements Connect Four on bitboards. It is an
// additional real-game workload beyond the paper's Othello: a strongly
// ordered game (center columns dominate) with a cheap evaluator, useful for
// exercising the searches on a second realistic move-ordering profile.
//
// Encoding: each column occupies 7 bits (6 playable rows plus a padding
// bit), bit index = column*7 + row with row 0 at the bottom. One bitboard
// holds the stones of the player to move ("own"), another all occupied
// cells.
package connect4

import (
	"fmt"
	"math/bits"
	"strings"

	"ertree/internal/game"
)

// Board dimensions.
const (
	Cols   = 7
	Rows   = 6
	stride = Rows + 1 // bits per column (one padding bit)
)

var fullMask = ((uint64(1) << (stride * Cols)) - 1) &^ topPadding

// topPadding has the padding bit of every column set.
var topPadding = func() uint64 {
	var m uint64
	for c := 0; c < Cols; c++ {
		m |= 1 << uint(c*stride+Rows)
	}
	return m
}()

// Board is a Connect Four position from the point of view of the player to
// move. It implements game.Position.
type Board struct {
	own uint64 // stones of the player to move
	all uint64 // all stones
	ply int    // stones played
}

var _ game.Position = Board{}

// New returns the empty board (first player to move).
func New() Board { return Board{} }

// colTop returns the bit of the lowest free cell in column c, or 0 if full.
func (b Board) colTop(c int) uint64 {
	colBits := (b.all >> uint(c*stride)) & ((1 << Rows) - 1)
	h := bits.OnesCount64(colBits) // stones stack bottom-up
	if h >= Rows {
		return 0
	}
	return 1 << uint(c*stride+h)
}

// hasWin reports whether bitboard s contains four in a row.
func hasWin(s uint64) bool {
	for _, d := range [4]uint{1, stride, stride - 1, stride + 1} {
		t := s & (s >> d)
		if t&(t>>(2*d)) != 0 {
			return true
		}
	}
	return false
}

// opponentWon reports whether the player who just moved (the opponent of
// the mover) has four in a row.
func (b Board) opponentWon() bool { return hasWin(b.all &^ b.own) }

// Terminal reports whether the game is over.
func (b Board) Terminal() bool { return b.opponentWon() || b.all == fullMask }

// moveOrder lists columns center-out, Connect Four's natural strong order.
var moveOrder = [Cols]int{3, 2, 4, 1, 5, 0, 6}

// Drop plays a stone in column c for the player to move, returning the new
// position (opponent to move) and whether the move was legal.
func (b Board) Drop(c int) (Board, bool) {
	if c < 0 || c >= Cols || b.Terminal() {
		return b, false
	}
	m := b.colTop(c)
	if m == 0 {
		return b, false
	}
	// The mover's stones become (own | m); from the opponent's perspective
	// "own" is the previous opponent's set, and the mover's set is
	// recoverable as all &^ own.
	return Board{own: b.all &^ b.own, all: b.all | m, ply: b.ply + 1}, true
}

// MustDrop plays a sequence of columns, panicking on an illegal move.
func (b Board) MustDrop(cols ...int) Board {
	for _, c := range cols {
		nb, ok := b.Drop(c)
		if !ok {
			panic(fmt.Sprintf("connect4: illegal drop %d on\n%s", c, b))
		}
		b = nb
	}
	return b
}

// Children implements game.Position: one child per non-full column,
// center-out, or nil when the game is over.
func (b Board) Children() []game.Position {
	if b.Terminal() {
		return nil
	}
	out := make([]game.Position, 0, Cols)
	for _, c := range moveOrder {
		if nb, ok := b.Drop(c); ok {
			out = append(out, nb)
		}
	}
	return out
}

// lineMasks holds the 69 possible four-in-a-row masks.
var lineMasks = func() []uint64 {
	var lines []uint64
	add := func(c, r, dc, dr int) {
		var m uint64
		for i := 0; i < 4; i++ {
			cc, rr := c+i*dc, r+i*dr
			if cc < 0 || cc >= Cols || rr < 0 || rr >= Rows {
				return
			}
			m |= 1 << uint(cc*stride+rr)
		}
		lines = append(lines, m)
	}
	for c := 0; c < Cols; c++ {
		for r := 0; r < Rows; r++ {
			add(c, r, 1, 0)  // horizontal
			add(c, r, 0, 1)  // vertical
			add(c, r, 1, 1)  // diagonal up
			add(c, r, 1, -1) // diagonal down
		}
	}
	return lines
}()

// weights scores a line by how many of its cells one player holds, given
// the other player holds none.
var weights = [5]int32{0, 1, 4, 32, 10000}

// Value implements game.Position: a win for the previous player scores
// -10000 (the mover has lost), a draw 0; otherwise the difference of
// line potentials.
func (b Board) Value() game.Value {
	if b.opponentWon() {
		return -10000
	}
	if b.all == fullMask {
		return 0
	}
	opp := b.all &^ b.own
	var score int32
	for _, m := range lineMasks {
		ownIn := bits.OnesCount64(b.own & m)
		oppIn := bits.OnesCount64(opp & m)
		switch {
		case oppIn == 0:
			score += weights[ownIn]
		case ownIn == 0:
			score -= weights[oppIn]
		}
	}
	return game.Value(score)
}

// Ply returns the number of stones played.
func (b Board) Ply() int { return b.ply }

// String renders the board; the player to move's stones are 'o', the
// opponent's 'x'.
func (b Board) String() string {
	var sb strings.Builder
	opp := b.all &^ b.own
	for r := Rows - 1; r >= 0; r-- {
		for c := 0; c < Cols; c++ {
			m := uint64(1) << uint(c*stride+r)
			switch {
			case b.own&m != 0:
				sb.WriteString("o ")
			case opp&m != 0:
				sb.WriteString("x ")
			default:
				sb.WriteString(". ")
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("0 1 2 3 4 5 6\n")
	return sb.String()
}

// Hash returns a 64-bit position hash for transposition tables. The pair
// (own, all) determines the position completely (the side to move is
// implied by the stone count).
func (b Board) Hash() uint64 {
	h := b.own + 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= b.all * 0x94D049BB133111EB
	h = (h ^ (h >> 27)) * 0xBF58476D1CE4E5B9
	return h ^ (h >> 31)
}
