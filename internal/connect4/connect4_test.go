package connect4

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/serial"
)

func TestEmptyBoard(t *testing.T) {
	b := New()
	if b.Terminal() {
		t.Fatal("empty board terminal")
	}
	kids := b.Children()
	if len(kids) != 7 {
		t.Fatalf("%d children, want 7", len(kids))
	}
	if b.Value() != 0 {
		t.Fatalf("empty board value %d (symmetric position must be 0)", b.Value())
	}
}

func TestVerticalWin(t *testing.T) {
	// First player stacks column 3; second player wastes moves in 0.
	b := New().MustDrop(3, 0, 3, 0, 3, 0, 3)
	if !b.Terminal() {
		t.Fatalf("four in a column not detected:\n%s", b)
	}
	if b.Value() != -10000 {
		t.Fatalf("loser to move should see -10000, got %d", b.Value())
	}
	if b.Children() != nil {
		t.Fatal("terminal position has children")
	}
}

func TestHorizontalWin(t *testing.T) {
	b := New().MustDrop(0, 0, 1, 1, 2, 2, 3)
	if !b.Terminal() {
		t.Fatalf("four in a row not detected:\n%s", b)
	}
}

func TestDiagonalWins(t *testing.T) {
	// Up-diagonal for the first player: stones at (0,0),(1,1),(2,2),(3,3).
	b := New().MustDrop(0, 1, 1, 2, 2, 3, 2, 3, 3, 0, 3)
	if !b.Terminal() {
		t.Fatalf("up diagonal not detected:\n%s", b)
	}
	// Down-diagonal: mirror image.
	b = New().MustDrop(6, 5, 5, 4, 4, 3, 4, 3, 3, 6, 3)
	if !b.Terminal() {
		t.Fatalf("down diagonal not detected:\n%s", b)
	}
}

func TestColumnFullRejected(t *testing.T) {
	b := New().MustDrop(2, 2, 2, 2, 2, 2)
	if _, ok := b.Drop(2); ok {
		t.Fatal("seventh stone in a column accepted")
	}
	if len(b.Children()) != 6 {
		t.Fatalf("full column still among children")
	}
	if _, ok := b.Drop(-1); ok {
		t.Fatal("negative column accepted")
	}
	if _, ok := b.Drop(7); ok {
		t.Fatal("column 7 accepted")
	}
}

func TestNoMoveAfterGameOver(t *testing.T) {
	b := New().MustDrop(3, 0, 3, 0, 3, 0, 3)
	if _, ok := b.Drop(6); ok {
		t.Fatal("move accepted after a win")
	}
}

func TestChildrenAreCenterOut(t *testing.T) {
	kids := New().Children()
	first := kids[0].(Board)
	// The first child must be the center-column drop: its stone occupies
	// column 3, row 0.
	if first.all != 1<<uint(3*stride) {
		t.Fatalf("first child is not the center drop:\n%s", first)
	}
}

func TestImmediateWinFound(t *testing.T) {
	// Mover has three in column 3: dropping there wins.
	b := New().MustDrop(3, 0, 3, 0, 3, 0)
	var s serial.Searcher
	if v := s.Negmax(b, 2); v < 9000 {
		t.Fatalf("winning move not found: %d", v)
	}
}

func TestForcedLossSeen(t *testing.T) {
	// Opponent threatens two columns at once; mover cannot stop both.
	// x occupies 1,2,3 on the bottom row with both 0 and 4 empty; o's
	// stones are parked on columns 5 and 6.
	b := New().MustDrop(5, 1, 5, 2, 6, 3)
	var s serial.Searcher
	if v := s.Negmax(b, 3); v > -9000 {
		t.Fatalf("double threat not recognized as lost: %d\n%s", v, b)
	}
}

func TestSearchAgreementAcrossAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 12; trial++ {
		// Random midgame position.
		b := New()
		for i := 0; i < 8 && !b.Terminal(); i++ {
			kids := b.Children()
			b = kids[rng.Intn(len(kids))].(Board)
		}
		var s serial.Searcher
		depth := 5
		want := s.Negmax(b, depth)
		if got := s.AlphaBeta(b, depth, game.FullWindow()); got != want {
			t.Fatalf("trial %d: alpha-beta %d, negmax %d\n%s", trial, got, want, b)
		}
		if got := s.ER(b, depth, game.FullWindow()); got != want {
			t.Fatalf("trial %d: ER %d, negmax %d\n%s", trial, got, want, b)
		}
	}
}

func TestEvaluatorAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 50; trial++ {
		b := New()
		for i := 0; i < rng.Intn(20) && !b.Terminal(); i++ {
			kids := b.Children()
			b = kids[rng.Intn(len(kids))].(Board)
		}
		if b.Terminal() {
			continue
		}
		swapped := Board{own: b.all &^ b.own, all: b.all, ply: b.ply}
		if b.Value() != -swapped.Value() {
			t.Fatalf("evaluator not antisymmetric: %d vs %d\n%s", b.Value(), swapped.Value(), b)
		}
	}
}

func TestPlyCountAndConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	b := New()
	for i := 0; i < 42 && !b.Terminal(); i++ {
		if b.Ply() != i {
			t.Fatalf("ply %d after %d stones", b.Ply(), i)
		}
		kids := b.Children()
		nb := kids[rng.Intn(len(kids))].(Board)
		if popcount(nb.all) != popcount(b.all)+1 {
			t.Fatal("stone count did not grow by one")
		}
		b = nb
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestLineMaskCount(t *testing.T) {
	// 7x6 Connect Four has exactly 69 winning lines:
	// horizontal 4*6=24, vertical 7*3=21, each diagonal 4*3=12.
	if len(lineMasks) != 69 {
		t.Fatalf("%d line masks, want 69", len(lineMasks))
	}
}

func TestStringRendering(t *testing.T) {
	s := New().MustDrop(3).String()
	if s == "" || !containsRune(s, 'x') {
		t.Fatalf("expected the played stone to render as x (opponent view):\n%s", s)
	}
}

func containsRune(s string, r rune) bool {
	for _, c := range s {
		if c == r {
			return true
		}
	}
	return false
}
