// Package gtree provides explicit, in-memory game trees. They serve three
// purposes: test fixtures reconstructed from the paper's figures, a substrate
// for the Knuth/Moore minimal-tree theory of §2.2, and arbitrary-shape trees
// for property tests (every search algorithm must agree with negmax on them).
package gtree

import (
	"fmt"
	"strings"

	"ertree/internal/game"
)

// Node is an explicit game-tree node. A Node with no children is terminal and
// its Leaf value is its exact value; interior nodes may carry a Static value
// used as the heuristic estimate for move ordering.
type Node struct {
	Label  string
	Leaf   game.Value // exact value when terminal
	Static game.Value // heuristic estimate when interior (used for ordering)
	Kids   []*Node
}

var _ game.Position = (*Node)(nil)

// Children implements game.Position.
func (n *Node) Children() []game.Position {
	if len(n.Kids) == 0 {
		return nil
	}
	out := make([]game.Position, len(n.Kids))
	for i, k := range n.Kids {
		out[i] = k
	}
	return out
}

// Value implements game.Position: the exact value at leaves, the heuristic
// estimate at interior nodes.
func (n *Node) Value() game.Value {
	if len(n.Kids) == 0 {
		return n.Leaf
	}
	return n.Static
}

// L constructs a leaf with the given value.
func L(v game.Value) *Node { return &Node{Leaf: v} }

// N constructs an interior node with the given children.
func N(kids ...*Node) *Node { return &Node{Kids: kids} }

// Labeled attaches a label (fluent helper for fixtures).
func (n *Node) Labeled(label string) *Node { n.Label = label; return n }

// WithStatic sets the interior heuristic value (fluent helper).
func (n *Node) WithStatic(v game.Value) *Node { n.Static = v; return n }

// Negmax computes the exact negamax value of the node (paper §2, Figure 1
// procedure), visiting the entire tree.
func (n *Node) Negmax() game.Value {
	if len(n.Kids) == 0 {
		return n.Leaf
	}
	m := -game.Inf
	for _, k := range n.Kids {
		if v := -k.Negmax(); v > m {
			m = v
		}
	}
	return m
}

// Size returns the number of nodes in the tree.
func (n *Node) Size() int {
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Leaves returns the number of terminal nodes in the tree.
func (n *Node) Leaves() int {
	if len(n.Kids) == 0 {
		return 1
	}
	s := 0
	for _, k := range n.Kids {
		s += k.Leaves()
	}
	return s
}

// Height returns the length of the longest root-to-leaf path in edges.
func (n *Node) Height() int {
	h := 0
	for _, k := range n.Kids {
		if kh := k.Height() + 1; kh > h {
			h = kh
		}
	}
	return h
}

// Find returns the first node with the given label in preorder, or nil.
func (n *Node) Find(label string) *Node {
	if n.Label == label {
		return n
	}
	for _, k := range n.Kids {
		if f := k.Find(label); f != nil {
			return f
		}
	}
	return nil
}

// SortByNegmax reorders every node's children into best-first order (children
// ascending by their own negamax value, so the child best for the parent is
// first). Used to construct the optimally ordered trees of §2.2.
func (n *Node) SortByNegmax() {
	for _, k := range n.Kids {
		k.SortByNegmax()
	}
	if len(n.Kids) < 2 {
		return
	}
	vals := make(map[*Node]game.Value, len(n.Kids))
	for _, k := range n.Kids {
		vals[k] = k.Negmax()
	}
	kids := n.Kids
	for i := 1; i < len(kids); i++ {
		j := i
		for j > 0 && vals[kids[j]] < vals[kids[j-1]] {
			kids[j], kids[j-1] = kids[j-1], kids[j]
			j--
		}
	}
}

// String renders the tree in a compact indented form, useful in test failure
// messages.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.Label != "" {
		b.WriteString(n.Label)
	}
	if len(n.Kids) == 0 {
		fmt.Fprintf(b, "=%d\n", n.Leaf)
		return
	}
	b.WriteString(":\n")
	for _, k := range n.Kids {
		k.render(b, depth+1)
	}
}

// Complete builds a complete degree-d tree of the given height (in edges).
// Leaf values are produced by leaf(i) where i is the leaf's left-to-right
// index.
func Complete(degree, height int, leaf func(i int) game.Value) *Node {
	idx := 0
	var build func(h int) *Node
	build = func(h int) *Node {
		if h == 0 {
			n := L(leaf(idx))
			idx++
			return n
		}
		kids := make([]*Node, degree)
		for i := range kids {
			kids[i] = build(h - 1)
		}
		return N(kids...)
	}
	return build(height)
}
