package gtree

import (
	"math/rand"

	"ertree/internal/game"
)

// RandomSpec describes a family of random explicit trees for property tests.
type RandomSpec struct {
	MinDegree, MaxDegree int        // branching factor range (inclusive)
	MinDepth, MaxDepth   int        // tree height range in edges (inclusive)
	ValueRange           game.Value // leaf values drawn uniformly from [-ValueRange, ValueRange]
	StaticNoise          game.Value // interior static values: exact negamax +/- noise (0 => uninformed)
}

// DefaultRandomSpec is a convenient medium-sized spec.
func DefaultRandomSpec() RandomSpec {
	return RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 100}
}

// Generate builds a random explicit tree from the spec using rng. The shape
// is irregular: each interior node independently draws its degree, and
// subtrees may bottom out early (with probability 1/8 once past MinDepth).
func (s RandomSpec) Generate(rng *rand.Rand) *Node {
	depth := s.MinDepth
	if s.MaxDepth > s.MinDepth {
		depth += rng.Intn(s.MaxDepth - s.MinDepth + 1)
	}
	root := s.gen(rng, depth, 0)
	if s.StaticNoise >= 0 {
		s.assignStatics(rng, root)
	}
	return root
}

func (s RandomSpec) gen(rng *rand.Rand, depth, ply int) *Node {
	if depth == 0 || (ply >= s.MinDepth && rng.Intn(8) == 0) {
		return L(s.leafValue(rng))
	}
	deg := s.MinDegree
	if s.MaxDegree > s.MinDegree {
		deg += rng.Intn(s.MaxDegree - s.MinDegree + 1)
	}
	if deg < 1 {
		deg = 1
	}
	kids := make([]*Node, deg)
	for i := range kids {
		kids[i] = s.gen(rng, depth-1, ply+1)
	}
	return N(kids...)
}

func (s RandomSpec) leafValue(rng *rand.Rand) game.Value {
	r := int64(s.ValueRange)
	if r <= 0 {
		r = 1
	}
	return game.Value(rng.Int63n(2*r+1) - r)
}

// assignStatics gives every interior node a heuristic estimate equal to its
// negamax value perturbed by uniform noise in [-StaticNoise, StaticNoise].
// With zero noise the static order is the perfect best-first order.
func (s RandomSpec) assignStatics(rng *rand.Rand, n *Node) {
	if len(n.Kids) == 0 {
		return
	}
	noise := int64(s.StaticNoise)
	v := n.Negmax()
	if noise > 0 {
		v += game.Value(rng.Int63n(2*noise+1) - noise)
	}
	n.Static = v
	for _, k := range n.Kids {
		s.assignStatics(rng, k)
	}
}
