package gtree

// Knuth/Moore critical-node theory (paper §2.2).
//
// For alpha-beta *with* deep cutoffs, nodes of the minimal tree are assigned
// types 1, 2, 3 by the rules:
//
//	i.   the root is type 1;
//	ii.  the first child of a type 1 node is type 1, remaining children type 2;
//	iii. the first child of a type 2 node is type 3;
//	iv.  all children of a type 3 node are type 2;
//	v.   a node is critical iff it receives a number.
//
// For alpha-beta *without* deep cutoffs (Baudet; used by MWF) the minimal
// tree has only 1- and 2-nodes:
//
//	i.   the root is type 1;
//	ii.  the first child of a type 1 node is type 1, remaining children type 2;
//	iii. the first child of a type 2 node is type 1.

// NodeType classifies a critical node.
type NodeType int8

// Critical node types. NonCritical marks nodes outside the minimal tree.
const (
	NonCritical NodeType = 0
	Type1       NodeType = 1
	Type2       NodeType = 2
	Type3       NodeType = 3
)

func (t NodeType) String() string {
	switch t {
	case Type1:
		return "1"
	case Type2:
		return "2"
	case Type3:
		return "3"
	default:
		return "-"
	}
}

// Classification maps every node of a tree to its critical type.
type Classification map[*Node]NodeType

// ClassifyDeep computes the minimal tree of alpha-beta with deep cutoffs
// (types 1/2/3).
func ClassifyDeep(root *Node) Classification {
	c := make(Classification)
	var walk func(n *Node, t NodeType)
	walk = func(n *Node, t NodeType) {
		c[n] = t
		for i, k := range n.Kids {
			switch {
			case t == Type1 && i == 0:
				walk(k, Type1)
			case t == Type1:
				walk(k, Type2)
			case t == Type2 && i == 0:
				walk(k, Type3)
			case t == Type3:
				walk(k, Type2)
			}
		}
	}
	walk(root, Type1)
	return c
}

// ClassifyNoDeep computes the minimal tree of alpha-beta without deep
// cutoffs (types 1/2 only). This is the tree MWF's first phase searches.
func ClassifyNoDeep(root *Node) Classification {
	c := make(Classification)
	var walk func(n *Node, t NodeType)
	walk = func(n *Node, t NodeType) {
		c[n] = t
		for i, k := range n.Kids {
			switch {
			case t == Type1 && i == 0:
				walk(k, Type1)
			case t == Type1:
				walk(k, Type2)
			case t == Type2 && i == 0:
				walk(k, Type1)
			}
		}
	}
	walk(root, Type1)
	return c
}

// CriticalLeaves counts terminal nodes inside the minimal tree.
func (c Classification) CriticalLeaves() int {
	n := 0
	for node, t := range c {
		if t != NonCritical && len(node.Kids) == 0 {
			n++
		}
	}
	return n
}

// CriticalNodes counts all nodes inside the minimal tree.
func (c Classification) CriticalNodes() int {
	n := 0
	for _, t := range c {
		if t != NonCritical {
			n++
		}
	}
	return n
}

// CountByType tallies critical nodes per type.
func (c Classification) CountByType() map[NodeType]int {
	out := make(map[NodeType]int)
	for _, t := range c {
		if t != NonCritical {
			out[t]++
		}
	}
	return out
}

// MinimalLeafCount returns the number of terminal nodes in the minimal
// subtree of a complete degree-d tree of height h:
//
//	d^ceil(h/2) + d^floor(h/2) - 1
//
// (Slagle & Dixon 1969; Knuth & Moore 1975. The paper prints the constant as
// +1; the correct closed form has -1, which TestMinimalTreeFormula verifies
// against the rule-based classification above.)
func MinimalLeafCount(d, h int) int {
	return ipow(d, (h+1)/2) + ipow(d, h/2) - 1
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
