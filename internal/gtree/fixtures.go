package gtree

import "ertree/internal/game"

// Fixtures reconstructed from the paper's figures. Where the published figure
// is not fully machine-readable, the fixture preserves the property the
// figure illustrates (stated on each constructor) and the tests assert that
// property rather than incidental drawing details.

// Figure1TicTacToe is covered by internal/ttt, which builds the real game.

// Figure2Shallow reproduces the shallow-cutoff situation of Figure 2(a):
// node A's first child has value -7, so A >= 7; B's first child has value 5,
// so B >= -5, and B's remaining children need not be searched.
func Figure2Shallow() *Node {
	b := N(L(5), L(-100).Labeled("pruned")).Labeled("B")
	return N(L(-7), b).Labeled("A")
}

// Figure2Deep reproduces the deep-cutoff situation of Figure 2(b): A >= 7
// via its first child; on the path A-B-C-D, D's first child gives D >= -5,
// and D's remaining children cannot affect A regardless of whether C's value
// depends on D.
func Figure2Deep() *Node {
	d := N(L(5), L(-100).Labeled("pruned")).Labeled("D")
	c := N(d, L(2)).Labeled("C")
	b := N(c, L(3)).Labeled("B")
	return N(L(-7), b).Labeled("A")
}

// Figure3Tree returns a complete ternary tree of height 3 with distinct leaf
// values, standing in for the Knuth/Moore minimal-subtree illustration of
// Figure 3. Tests verify the critical-node rules and the minimal-leaf-count
// formula on it (and on many other complete trees).
func Figure3Tree() *Node {
	vals := []int{
		16, 8, 12, 4, 14, 2, 10, 6, 18,
		7, 15, 3, 11, 19, 1, 9, 17, 5,
		13, 20, 22, 26, 24, 28, 21, 23, 27,
	}
	return Complete(3, 3, func(i int) game.Value { return game.Value(vals[i%len(vals)]) })
}

// Figure6Tree illustrates evaluate vs. refute nodes (§5, Figure 6). Node I
// is being evaluated; its e-child establishes I = 10. Sibling R1 is refuted
// by its first child (value 9 < 10, so -R1 < 10 and R1's second child is
// never needed). Sibling R2 cannot be refuted: all of its children have
// values above 10, so the refutation fails and I's value rises to 11.
func Figure6Tree() *Node {
	e := L(-10).Labeled("E")
	r1 := N(L(9).Labeled("L"), L(20).Labeled("M")).Labeled("R1")
	r2 := N(L(11).Labeled("g"), L(12)).Labeled("R2")
	return N(e, r1, r2).Labeled("I")
}

// Figure7Tree is a three-generation evaluate/refute example in the spirit of
// Figure 7: the root A has three children (O, B, b); each child's first child
// is its elder grandchild (P, C, c respectively). The elder grandchildren have
// values chosen so that P is the largest, hence O should be chosen as A's
// e-child by the ER selection rule, after which B and b are refuted.
//
// Negmax values: O = -13 (children 13, 14, 16), B = -11 (children 11, 15),
// b = -8 (children 8, 9). Root A = max(13, 11, 8) = 13 via O.
func Figure7Tree() *Node {
	o := N(
		N(L(-13)).Labeled("P"), // elder grandchild P: value 13
		L(14),
		L(16),
	).Labeled("O")
	b1 := N(
		N(L(-11)).Labeled("C"), // elder grandchild C: value 11
		L(15).Labeled("G"),
	).Labeled("B")
	b2 := N(
		N(L(-8)).Labeled("c"), // elder grandchild c: value 8
		L(9).Labeled("g"),
	).Labeled("b")
	return N(o, b1, b2).Labeled("A")
}
