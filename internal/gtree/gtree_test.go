package gtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ertree/internal/game"
)

func TestCompleteShape(t *testing.T) {
	for _, tc := range []struct{ d, h int }{{2, 1}, {2, 3}, {3, 2}, {4, 3}, {1, 5}} {
		n := 0
		root := Complete(tc.d, tc.h, func(i int) game.Value { n++; return game.Value(i) })
		wantLeaves := ipow(tc.d, tc.h)
		if got := root.Leaves(); got != wantLeaves {
			t.Errorf("d=%d h=%d: leaves=%d want %d", tc.d, tc.h, got, wantLeaves)
		}
		if n != wantLeaves {
			t.Errorf("d=%d h=%d: leaf fn called %d times, want %d", tc.d, tc.h, n, wantLeaves)
		}
		if got := root.Height(); got != tc.h {
			t.Errorf("d=%d h=%d: height=%d", tc.d, tc.h, got)
		}
		wantSize := 0
		p := 1
		for i := 0; i <= tc.h; i++ {
			wantSize += p
			p *= tc.d
		}
		if got := root.Size(); got != wantSize {
			t.Errorf("d=%d h=%d: size=%d want %d", tc.d, tc.h, got, wantSize)
		}
	}
}

func TestNegmaxMatchesHandComputed(t *testing.T) {
	// max(-(-3), -(5)) = max(3, -5) = 3
	root := N(L(-3), L(5))
	if got := root.Negmax(); got != 3 {
		t.Fatalf("negmax=%d want 3", got)
	}
	// Two levels: root -> a=(4, -2), b=(1). a = max(-4, 2) = 2; b = -1.
	// root = max(-2, 1) = 1.
	root = N(N(L(4), L(-2)), N(L(1)))
	if got := root.Negmax(); got != 1 {
		t.Fatalf("negmax=%d want 1", got)
	}
}

func TestSortByNegmaxProducesBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := RandomSpec{MinDegree: 2, MaxDegree: 4, MinDepth: 2, MaxDepth: 4, ValueRange: 50}
	for i := 0; i < 50; i++ {
		root := spec.Generate(rng)
		want := root.Negmax()
		root.SortByNegmax()
		if got := root.Negmax(); got != want {
			t.Fatalf("sorting changed the value: %d -> %d", want, got)
		}
		var check func(n *Node)
		check = func(n *Node) {
			for j := 1; j < len(n.Kids); j++ {
				if n.Kids[j-1].Negmax() > n.Kids[j].Negmax() {
					t.Fatalf("children not ascending by negmax at %v", n)
				}
			}
			for _, k := range n.Kids {
				check(k)
			}
		}
		check(root)
	}
}

func TestClassifyDeepRules(t *testing.T) {
	// Hand-check on a complete binary tree of height 2.
	//            R(1)
	//        A(1)    B(2)
	//      C(1) D(2) E(3) F(-)
	root := Complete(2, 2, func(i int) game.Value { return game.Value(i) })
	c := ClassifyDeep(root)
	r := root
	a, b := r.Kids[0], r.Kids[1]
	if c[r] != Type1 || c[a] != Type1 || c[b] != Type2 {
		t.Fatalf("level1 types: R=%v A=%v B=%v", c[r], c[a], c[b])
	}
	if c[a.Kids[0]] != Type1 || c[a.Kids[1]] != Type2 {
		t.Fatalf("children of type1: %v %v", c[a.Kids[0]], c[a.Kids[1]])
	}
	if c[b.Kids[0]] != Type3 || c[b.Kids[1]] != NonCritical {
		t.Fatalf("children of type2: %v %v", c[b.Kids[0]], c[b.Kids[1]])
	}
}

func TestClassifyNoDeepRules(t *testing.T) {
	root := Complete(2, 2, func(i int) game.Value { return game.Value(i) })
	c := ClassifyNoDeep(root)
	b := root.Kids[1]
	if c[b.Kids[0]] != Type1 {
		t.Fatalf("first child of a 2-node should be type 1 (no-deep rules), got %v", c[b.Kids[0]])
	}
	if c[b.Kids[1]] != NonCritical {
		t.Fatalf("second child of a 2-node should be non-critical, got %v", c[b.Kids[1]])
	}
}

// TestMinimalTreeFormula (experiment A2): the rule-based classification on
// complete d-ary trees of height h has exactly d^ceil(h/2)+d^floor(h/2)-1
// critical leaves. This verifies the -1 constant (the paper prints +1).
func TestMinimalTreeFormula(t *testing.T) {
	for d := 1; d <= 5; d++ {
		for h := 0; h <= 6; h++ {
			if ipow(d, h) > 200000 {
				continue
			}
			root := Complete(d, h, func(i int) game.Value { return 0 })
			got := ClassifyDeep(root).CriticalLeaves()
			want := MinimalLeafCount(d, h)
			if got != want {
				t.Errorf("d=%d h=%d: critical leaves %d, formula %d", d, h, got, want)
			}
		}
	}
}

// The no-deep minimal tree is a superset of the deep-cutoff minimal tree.
func TestNoDeepMinimalTreeContainsDeepMinimalTree(t *testing.T) {
	for _, tc := range []struct{ d, h int }{{2, 4}, {3, 3}, {4, 2}, {2, 6}} {
		root := Complete(tc.d, tc.h, func(i int) game.Value { return 0 })
		deep := ClassifyDeep(root)
		nodeep := ClassifyNoDeep(root)
		var walk func(n *Node)
		walk = func(n *Node) {
			if deep[n] != NonCritical && nodeep[n] == NonCritical {
				t.Fatalf("d=%d h=%d: node critical with deep cutoffs but not without", tc.d, tc.h)
			}
			for _, k := range n.Kids {
				walk(k)
			}
		}
		walk(root)
		if nodeep.CriticalLeaves() < deep.CriticalLeaves() {
			t.Fatalf("d=%d h=%d: no-deep minimal tree smaller than deep minimal tree", tc.d, tc.h)
		}
	}
}

func TestFindAndLabels(t *testing.T) {
	root := Figure7Tree()
	for _, label := range []string{"A", "O", "B", "b", "P", "C", "c", "G", "g"} {
		if root.Find(label) == nil {
			t.Errorf("label %q not found in figure 7 tree", label)
		}
	}
	if root.Find("nope") != nil {
		t.Errorf("unexpected node found")
	}
}

func TestRandomSpecShapeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := RandomSpec{MinDegree: 2, MaxDegree: 5, MinDepth: 1, MaxDepth: 4, ValueRange: 9}
	for i := 0; i < 100; i++ {
		root := spec.Generate(rng)
		if h := root.Height(); h > spec.MaxDepth {
			t.Fatalf("height %d exceeds max %d", h, spec.MaxDepth)
		}
		var walk func(n *Node)
		walk = func(n *Node) {
			if len(n.Kids) > spec.MaxDegree {
				t.Fatalf("degree %d exceeds max", len(n.Kids))
			}
			if len(n.Kids) == 0 {
				if n.Leaf < -spec.ValueRange || n.Leaf > spec.ValueRange {
					t.Fatalf("leaf value %d outside range", n.Leaf)
				}
			}
			for _, k := range n.Kids {
				walk(k)
			}
		}
		walk(root)
	}
}

// Property: negmax value is always the negation of some leaf's value
// (the value of the terminal position reached by the principal variation).
func TestNegmaxIsALeafValueQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	spec := DefaultRandomSpec()
	f := func(seed int64) bool {
		_ = seed
		root := spec.Generate(rng)
		v := root.Negmax()
		found := false
		var walk func(n *Node, sign game.Value)
		walk = func(n *Node, sign game.Value) {
			if len(n.Kids) == 0 {
				if sign*n.Leaf == v {
					found = true
				}
				return
			}
			for _, k := range n.Kids {
				walk(k, -sign)
			}
		}
		walk(root, 1)
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	root := N(L(1).Labeled("x"), L(2)).Labeled("r")
	s := root.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	for _, sub := range []string{"r:", "x=1", "=2"} {
		if !contains(s, sub) {
			t.Errorf("rendering missing %q:\n%s", sub, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFixtureValues(t *testing.T) {
	// The paper-figure fixtures must encode the documented values.
	cases := []struct {
		name string
		root *Node
		want game.Value
	}{
		{"figure2-shallow", Figure2Shallow(), 7},
		{"figure2-deep", Figure2Deep(), 7},
		{"figure6", Figure6Tree(), 11},
		{"figure7", Figure7Tree(), 13},
	}
	for _, c := range cases {
		if got := c.root.Negmax(); got != c.want {
			t.Errorf("%s: negmax %d, want %d", c.name, got, c.want)
		}
	}
	f3 := Figure3Tree()
	if f3.Height() != 3 || f3.Leaves() != 27 {
		t.Errorf("figure 3 tree is not complete ternary height 3")
	}
}

func TestPositionInterface(t *testing.T) {
	n := N(L(4), L(-2)).WithStatic(9)
	kids := n.Children()
	if len(kids) != 2 {
		t.Fatalf("children %d", len(kids))
	}
	if n.Value() != 9 {
		t.Fatalf("interior Value = %d, want the static estimate 9", n.Value())
	}
	if kids[0].Value() != 4 || kids[0].Children() != nil {
		t.Fatalf("leaf behavior broken")
	}
}

func TestClassificationStatistics(t *testing.T) {
	root := Complete(3, 3, func(i int) game.Value { return 0 })
	c := ClassifyDeep(root)
	byType := c.CountByType()
	if byType[Type1] == 0 || byType[Type2] == 0 || byType[Type3] == 0 {
		t.Fatalf("missing critical types: %v", byType)
	}
	total := byType[Type1] + byType[Type2] + byType[Type3]
	if c.CriticalNodes() != total {
		t.Fatalf("CriticalNodes %d, sum of types %d", c.CriticalNodes(), total)
	}
	if c.CriticalNodes() >= root.Size() {
		t.Fatalf("minimal tree as large as the whole tree")
	}
	// The type-1 chain is the leftmost path: exactly height+1 type-1 nodes.
	if byType[Type1] != 4 {
		t.Fatalf("type-1 count %d, want 4 (the principal variation)", byType[Type1])
	}
}

func TestNodeTypeStrings(t *testing.T) {
	if Type1.String() != "1" || Type2.String() != "2" || Type3.String() != "3" || NonCritical.String() != "-" {
		t.Fatal("NodeType rendering changed")
	}
}
