package serve

import (
	"math"
	"sync"
	"time"

	"ertree/internal/backend"
	"ertree/internal/telemetry"
)

// Defaults for the windowed-quantile ring: a snapshot every 5s, 12 retained —
// the classic "last minute" window.
const (
	DefaultWindowTick  = 5 * time.Second
	DefaultWindowSlots = 12
)

// sloEntry is one tracked latency surface: a cumulative histogram plus its
// sliding window.
type sloEntry struct {
	hist *telemetry.Histogram
	win  *telemetry.HistWindow
}

// sloTracker maintains windowed latency quantiles per endpoint and per search
// backend. The cumulative histograms (the /metrics families) answer "since
// boot"; the windows answer "right now", which is what a load test's ramp
// phases and an operator's dashboard actually need.
//
// Windows advance lazily: every exposition (/stats, /metrics) calls maybeTick,
// which snapshots at most once per tick interval. A server nobody scrapes
// keeps no windows current — and needs none.
type sloTracker struct {
	tick  time.Duration
	slots int

	mu       sync.Mutex
	lastTick time.Time

	endpoints map[string]*sloEntry // by path label, the instrumented surface
	backends  map[string]*sloEntry // by search backend name

	// backendHist is the per-backend session latency family; endpoint
	// entries window the existing http_request_duration_seconds children.
	backendHist *telemetry.HistogramVec
	// windowGauge mirrors the windowed quantiles into /metrics:
	// slo_latency_window_seconds{kind,name,quantile}, updated at each tick.
	windowGauge *telemetry.GaugeVec
}

func newSLOTracker(reg *telemetry.Registry, m *httpMetrics, tick time.Duration, slots int) *sloTracker {
	if tick <= 0 {
		tick = DefaultWindowTick
	}
	if slots <= 0 {
		slots = DefaultWindowSlots
	}
	t := &sloTracker{
		tick:      tick,
		slots:     slots,
		endpoints: make(map[string]*sloEntry),
		backends:  make(map[string]*sloEntry),
		backendHist: reg.HistogramVec("server_backend_latency_seconds",
			"Analysis session latency by search backend (server-side view).",
			telemetry.LatencyBuckets(), "backend"),
		windowGauge: reg.GaugeVec("slo_latency_window_seconds",
			"Windowed latency quantiles per endpoint and backend, updated at each window tick.",
			"kind", "name", "quantile"),
	}
	// The label sets are closed (known paths, registered backends), so every
	// window exists up front and the serving path never allocates one.
	for path := range knownPaths {
		h := m.latency.With(path)
		t.endpoints[path] = &sloEntry{hist: h, win: telemetry.NewHistWindow(h, slots)}
	}
	for _, name := range backend.Names() {
		h := t.backendHist.With(name)
		t.backends[name] = &sloEntry{hist: h, win: telemetry.NewHistWindow(h, slots)}
	}
	return t
}

// observeBackend records one finished session's latency against the backend
// that served it. Unknown names (future backends registered after server
// construction) are dropped rather than growing the label set at serve time.
func (t *sloTracker) observeBackend(name string, elapsed time.Duration) {
	if e, ok := t.backends[name]; ok {
		e.hist.Observe(elapsed.Seconds())
	}
}

// maybeTick advances every window if at least one tick interval has passed
// since the last advance, and refreshes the /metrics quantile gauges. Called
// from the exposition handlers; concurrent calls collapse to one tick.
func (t *sloTracker) maybeTick() {
	now := time.Now()
	t.mu.Lock()
	if !t.lastTick.IsZero() && now.Sub(t.lastTick) < t.tick {
		t.mu.Unlock()
		return
	}
	t.lastTick = now
	t.mu.Unlock()

	for name, e := range t.endpoints {
		e.win.Tick()
		t.setGauges("endpoint", name, e.win)
	}
	for name, e := range t.backends {
		e.win.Tick()
		t.setGauges("backend", name, e.win)
	}
}

// setGauges publishes one window's quantiles to /metrics. Empty windows set 0
// (NaN would poison the JSON exposition format).
func (t *sloTracker) setGauges(kind, name string, w *telemetry.HistWindow) {
	for _, q := range [...]struct {
		label string
		q     float64
	}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}} {
		v := w.Quantile(q.q)
		if math.IsNaN(v) {
			v = 0
		}
		t.windowGauge.With(kind, name, q.label).Set(v)
	}
}

// sloQuantilesJSON is one windowed latency summary in /stats.
type sloQuantilesJSON struct {
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
}

// sloJSON is the /stats "slo" section: windowed quantiles per endpoint and
// backend, with the window's nominal size for interpretation.
type sloJSON struct {
	WindowMS  int64                       `json:"window_ms"`
	Endpoints map[string]sloQuantilesJSON `json:"endpoints"`
	Backends  map[string]sloQuantilesJSON `json:"backends"`
}

func windowSummary(w *telemetry.HistWindow) sloQuantilesJSON {
	ms := func(q float64) float64 {
		v := w.Quantile(q)
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	return sloQuantilesJSON{
		Count:      w.Count(),
		RatePerSec: w.Rate(),
		P50MS:      ms(0.5),
		P95MS:      ms(0.95),
		P99MS:      ms(0.99),
	}
}

// snapshot builds the /stats view. The quantiles difference the live counts
// against the oldest retained snapshot, so they include traffic since the
// last tick — a burst is visible on the very next /stats read.
func (t *sloTracker) snapshot() sloJSON {
	out := sloJSON{
		WindowMS:  (t.tick * time.Duration(t.slots)).Milliseconds(),
		Endpoints: make(map[string]sloQuantilesJSON, len(t.endpoints)),
		Backends:  make(map[string]sloQuantilesJSON, len(t.backends)),
	}
	for name, e := range t.endpoints {
		out.Endpoints[name] = windowSummary(e.win)
	}
	for name, e := range t.backends {
		out.Backends[name] = windowSummary(e.win)
	}
	return out
}
