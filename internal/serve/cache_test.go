package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestAnswerCacheLRU pins the cache container semantics: capacity-bounded,
// recency-ordered, completed-only retention, and nil-safety when disabled.
func TestAnswerCacheLRU(t *testing.T) {
	c := newAnswerCache(2)
	lead := func(key string, out analysisJSON) {
		fl, leader := c.join(key)
		if !leader {
			t.Fatalf("join(%q) did not lead an idle cache", key)
		}
		c.settle(key, fl, out, nil, 0)
	}
	lead("a", analysisJSON{Move: 1, Completed: true})
	lead("b", analysisJSON{Move: 2, Completed: true})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted before capacity was reached")
	}
	// a was just touched, so inserting c evicts b (the LRU entry).
	lead("c", analysisJSON{Move: 3, Completed: true})
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived an over-capacity insert")
	}
	if out, ok := c.get("a"); !ok || out.Move != 1 {
		t.Fatalf("recently-used entry a lost: %+v ok=%v", out, ok)
	}
	// Deadline-cut answers (Completed=false) are never retained.
	lead("cut", analysisJSON{Move: 4, Completed: false})
	if _, ok := c.get("cut"); ok {
		t.Fatal("incomplete analysis was cached")
	}
	if got := c.stats(); got.Stores != 3 || got.Evictions != 1 {
		t.Fatalf("stats: %+v", got)
	}

	// Disabled cache: every caller leads, nothing is served or counted.
	var off *answerCache
	if _, ok := off.get("x"); ok {
		t.Fatal("nil cache served an entry")
	}
	if _, leader := off.join("x"); !leader {
		t.Fatal("nil cache coalesced a request")
	}
	off.settle("x", nil, analysisJSON{}, nil, 0)
	if st := off.stats(); st.Enabled {
		t.Fatalf("nil cache reports enabled: %+v", st)
	}
	if newAnswerCache(0) != nil {
		t.Fatal("capacity 0 did not disable the cache")
	}
}

// TestAnswerKeyDiscriminates: any parameter that changes the response body
// must change the key.
func TestAnswerKeyDiscriminates(t *testing.T) {
	base := answerKey("connect4", "3,3", 8, 5000, "", "", false)
	for name, other := range map[string]string{
		"game":    answerKey("othello", "3,3", 8, 5000, "", "", false),
		"moves":   answerKey("connect4", "3,4", 8, 5000, "", "", false),
		"depth":   answerKey("connect4", "3,3", 9, 5000, "", "", false),
		"budget":  answerKey("connect4", "3,3", 8, 1000, "", "", false),
		"backend": answerKey("connect4", "3,3", 8, 5000, "lazysmp", "", false),
		"driver":  answerKey("connect4", "3,3", 8, 5000, "", "mtdf", false),
		"iters":   answerKey("connect4", "3,3", 8, 5000, "", "", true),
	} {
		if other == base {
			t.Errorf("key ignores %s: %q", name, base)
		}
	}
	if answerKey("connect4", "3,3", 8, 5000, "", "", false) != base {
		t.Fatal("key is not deterministic")
	}
}

// TestSingleFlightCoalescing is the end-to-end acceptance scenario: K
// concurrent identical /bestmove requests run exactly one engine search, all
// K get the identical completed answer, and /stats accounts for every
// request as the one leader plus cache hits and coalesced waiters.
func TestSingleFlightCoalescing(t *testing.T) {
	const k = 8
	ts := testServer(t, Config{
		Workers: 2, SerialDepth: 3, TableBits: 16,
		MaxConcurrent: 2, CacheSize: 32,
	})
	client := &http.Client{Timeout: 60 * time.Second}
	url := ts.URL + "/bestmove?game=connect4&moves=3,3&depth=8&budget_ms=30000"

	var wg sync.WaitGroup
	bodies := make([]analysisJSON, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(url)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&bodies[i]); err != nil {
				t.Errorf("request %d: decode: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	want, err := json.Marshal(bodies[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		if got, _ := json.Marshal(bodies[i]); string(got) != string(want) {
			t.Fatalf("request %d answered differently:\n%s\n%s", i, got, want)
		}
	}
	if !bodies[0].Completed {
		t.Fatalf("search did not complete, nothing was cacheable: %+v", bodies[0])
	}

	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if got := st.Games["connect4"].Started; got != 1 {
		t.Fatalf("%d engine sessions for %d identical requests, want exactly 1", got, k)
	}
	ac := st.AnswerCache
	if !ac.Enabled || ac.Misses != 1 {
		t.Fatalf("answer cache did not lead exactly one search: %+v", ac)
	}
	// Every non-leader either coalesced onto the flight or (arriving after
	// it settled) hit the retained answer.
	if ac.Hits+ac.Coalesced != k-1 {
		t.Fatalf("hits(%d) + coalesced(%d) != %d: %+v", ac.Hits, ac.Coalesced, k-1, ac)
	}
	if ac.Size != 1 || ac.Stores != 1 {
		t.Fatalf("completed answer not retained once: %+v", ac)
	}

	// A later identical request is a pure cache hit: no new session.
	var again analysisJSON
	getJSON(t, client, url, http.StatusOK, &again)
	if got, _ := json.Marshal(again); string(got) != string(want) {
		t.Fatalf("cached replay differs:\n%s\n%s", got, want)
	}
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if got := st.Games["connect4"].Started; got != 1 {
		t.Fatalf("cache hit started a session: %d", got)
	}
	if st.AnswerCache.Hits != ac.Hits+1 {
		t.Fatalf("replay not counted as a hit: %+v", st.AnswerCache)
	}

	// Observability requests bypass the cache: trace=1 always runs its own
	// session (its value is the per-request telemetry, not the answer).
	getJSON(t, client, ts.URL+"/analyze?game=connect4&moves=3,3&depth=4&budget_ms=30000&trace=1", http.StatusOK, nil)
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if got := st.Games["connect4"].Started; got != 2 {
		t.Fatalf("traced request did not run its own session: started=%d", got)
	}
}

// TestSingleFlightErrorNotCached: a failed flight is replayed, never
// retained, so the next identical request searches afresh instead of
// replaying a stale rejection. The error here is a deterministic 503: the
// single session slot is pinned by a long search and QueueTimeout is zero.
func TestSingleFlightErrorNotCached(t *testing.T) {
	ts := testServer(t, Config{
		Workers: 1, SerialDepth: 2, TableBits: 12,
		MaxConcurrent: 1, CacheSize: 8,
	})
	client := &http.Client{Timeout: 30 * time.Second}

	// Pin the only session slot with a deep search, cancelled at test end.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/bestmove?game=othello&depth=20&budget_ms=20000", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	defer func() { cancel(); <-done }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st statsJSON
		getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
		if st.Active >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pinning search never became active")
		}
		time.Sleep(10 * time.Millisecond)
	}

	url := ts.URL + "/bestmove?game=connect4&depth=6&budget_ms=5000"
	for i := 0; i < 2; i++ {
		resp, err := client.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("try %d: status %d, want %d", i, resp.StatusCode, http.StatusServiceUnavailable)
		}
	}
	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	ac := st.AnswerCache
	if ac.Size != 0 || ac.Stores != 0 {
		t.Fatalf("error outcome was cached: %+v", ac)
	}
	// Three misses: the pinning search plus both rejected requests — the
	// second rejection led its own flight rather than replaying the first.
	if ac.Misses != 3 || ac.Hits != 0 {
		t.Fatalf("second request did not re-search after the error: %+v", ac)
	}
}
