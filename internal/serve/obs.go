package serve

import (
	"net/http"
	"strconv"
	"strings"

	"ertree/internal/obs"
)

// newObsMonitor builds the server's self-monitor when Config.ObsSample
// enables it, wired to the shared telemetry registry (obs_anomaly_total lands
// on the same /metrics page as everything else) and the server's structured
// logger (anomaly warnings carry request-id correlation into the same stream
// as the access log).
func newObsMonitor(cfg Config, s *Server) *obs.Monitor {
	if cfg.ObsSample <= 0 {
		return nil
	}
	return obs.New(obs.Config{
		SampleEvery: cfg.ObsSample,
		RingSlots:   cfg.ObsRing,
		Logger:      s.log,
		Registry:    s.reg,
		Detectors:   cfg.ObsDetectors,
	})
}

// obsSample is the monitor's gauge source: the shared admission pool plus
// every engine's cheap atomic counters, summed — the table gauges sum across
// the per-game tables, so fill/hit-rate deltas describe the server's whole
// transposition footprint.
func (s *Server) obsSample(sm *obs.Sample) {
	sm.InFlight = int64(len(s.pool))
	for _, e := range s.engines {
		g := e.Gauges()
		sm.Waiting += g.Waiting
		sm.Sessions += g.Sessions
		sm.Iterations += g.Iterations
		sm.Probes += g.Probes
		sm.ShedFull += g.ShedFull
		sm.ShedTimeout += g.ShedTimeout
		sm.ShedCancelled += g.ShedCancelled
		sm.Steals += g.Steals
		sm.StealFails += g.StealFails
		sm.TTProbes += g.TTProbes
		sm.TTHits += g.TTHits
		sm.TTFill += g.TTFill
		sm.TTLen += g.TTLen
		sm.TTGenerations += g.TTGeneration
	}
}

// handleDebugObs serves the self-monitor's full JSON state: the sample ring,
// detector states, recent anomalies, retained profiles, and live sessions.
// With obs disabled it answers {"enabled": false} so pollers (erload) can
// tell "no anomalies" from "nobody watching".
func (s *Server) handleDebugObs(w http.ResponseWriter, r *http.Request) {
	report := s.obs.Report()
	for i := range report.Profiles {
		report.Profiles[i].URL = profileURL(report.Profiles[i].ID)
	}
	s.writeJSON(w, http.StatusOK, report)
}

func profileURL(id int64) string {
	return "/debug/obs/profiles/" + strconv.FormatInt(id, 10)
}

// handleObsProfiles lists the retained captures (GET /debug/obs/profiles) and
// serves raw pprof bytes (GET /debug/obs/profiles/<id>?type=goroutine|cpu)
// ready for `go tool pprof`.
func (s *Server) handleObsProfiles(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/debug/obs/profiles")
	rest = strings.Trim(rest, "/")
	if rest == "" {
		infos := s.obs.Profiles()
		for i := range infos {
			infos[i].URL = profileURL(infos[i].ID)
		}
		s.writeJSON(w, http.StatusOK, struct {
			Profiles []obs.ProfileInfo `json:"profiles"`
		}{Profiles: infos})
		return
	}
	id, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad profile id %q", rest)
		return
	}
	typ := firstValue(r.URL.Query(), "type")
	b, ok := s.obs.Profile(id, typ)
	if !ok {
		s.fail(w, http.StatusNotFound, "no retained %s profile %d (captures are evicted oldest-first; see /debug/obs/profiles)",
			orDefault(typ, "goroutine"), id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		"attachment; filename=obs-"+rest+"-"+orDefault(typ, "goroutine")+".pprof")
	_, _ = w.Write(b)
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
