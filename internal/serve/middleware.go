package serve

import (
	"encoding/hex"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"ertree/internal/telemetry"
)

// httpMetrics is the server's request-level instrumentation, registered on
// the same registry as the engine families so /metrics exposes one coherent
// page.
type httpMetrics struct {
	requests *telemetry.CounterVec   // http_requests_total{path,code}
	latency  *telemetry.HistogramVec // http_request_duration_seconds{path}
	inFlight *telemetry.Gauge        // http_requests_in_flight
	shed     *telemetry.Counter      // http_requests_shed_total
}

func newHTTPMetrics(reg *telemetry.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by path and status code.", "path", "code"),
		latency: reg.HistogramVec("http_request_duration_seconds",
			"HTTP request latency.", telemetry.LatencyBuckets(), "path"),
		inFlight: reg.Gauge("http_requests_in_flight",
			"Requests currently being served."),
		shed: reg.Counter("http_requests_shed_total",
			"Requests refused with 503 (admission pool full)."),
	}
}

// knownPaths bounds the path label's cardinality: anything outside the
// served surface (scanners, typos) collapses into "other".
var knownPaths = map[string]bool{
	"/bestmove": true, "/analyze": true, "/healthz": true,
	"/stats": true, "/metrics": true, "/debug/flight": true,
	"/debug/obs": true, "/debug/obs/profiles": true,
}

func pathLabel(p string) string {
	if knownPaths[p] {
		return p
	}
	// Per-capture profile downloads carry the capture id in the path;
	// collapse them into one label so retained-profile churn cannot grow
	// the metric cardinality.
	if strings.HasPrefix(p, "/debug/obs/profiles/") {
		return "/debug/obs/profiles"
	}
	return "other"
}

// statusWriter records the status code and body size a handler produced,
// plus the backend/driver attribution the analyze handler resolves for the
// access-log line.
type statusWriter struct {
	http.ResponseWriter
	code    int
	bytes   int64
	backend string
	driver  string
}

// attribute records which search backend and root driver served the request;
// the access-log line picks these up after the handler returns. The writer is
// the instrument middleware's wrapper for every served request; anything else
// (a bare handler under test) just drops the attribution.
func attribute(w http.ResponseWriter, backendName, driverName string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.backend, sw.driver = backendName, driverName
	}
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the SSE
// progress feed) keep working through the instrumentation layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestIDs hands out unique request ids: a random per-process prefix plus
// a counter, cheap and collision-free without consuming entropy per request.
type requestIDs struct {
	mu     sync.Mutex
	prefix string
	n      uint64
}

func newRequestIDs() *requestIDs {
	var b [4]byte
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return &requestIDs{prefix: hex.EncodeToString(b[:])}
}

func (g *requestIDs) next() string {
	g.mu.Lock()
	g.n++
	n := g.n
	g.mu.Unlock()
	return g.prefix + "-" + formatUint(n)
}

func formatUint(n uint64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// instrument wraps the service mux with the observability envelope: request
// ids (honoring a client-sent X-Request-ID, minting one otherwise), in-flight
// and per-path counters, latency histograms, a shed counter for 503s, and one
// structured access-log line per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = s.ids.next()
		}
		w.Header().Set("X-Request-ID", id)
		path := pathLabel(r.URL.Path)
		s.metrics.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		s.metrics.inFlight.Add(-1)
		if sw.code == 0 {
			sw.code = http.StatusOK // handler wrote nothing at all
		}
		s.metrics.requests.With(path, formatUint(uint64(sw.code))).Inc()
		s.metrics.latency.With(path).Observe(elapsed.Seconds())
		if sw.code == http.StatusServiceUnavailable {
			s.metrics.shed.Inc()
		}
		// Backend/driver attribution: what the analyze handler resolved for
		// this request, falling back to the server defaults for everything
		// else — so mixed ?backend=/?driver= traffic stays attributable from
		// the access log alone.
		bk, drv := sw.backend, sw.driver
		if bk == "" {
			bk = s.defaultBackend
		}
		if drv == "" {
			drv = s.defaultDriver
		}
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"code", sw.code,
			"bytes", sw.bytes,
			"elapsed_ms", elapsed.Milliseconds(),
			"remote", r.RemoteAddr,
			"backend", bk,
			"driver", drv,
		)
	})
}
