package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"ertree/internal/flight"
)

// flightRingSize bounds /debug/flight: the server keeps the reports of the
// last flightRingSize recorded requests and evicts the oldest beyond that.
const flightRingSize = 32

// flightRing keeps the most recent per-request flight reports keyed by
// request id, so a client that ran /analyze?flight=1 can fetch its search's
// speculation-waste profile afterwards from /debug/flight?id=<X-Request-ID>.
type flightRing struct {
	mu   sync.Mutex
	ids  []string // insertion order, oldest first
	byID map[string]*flight.Report
}

func newFlightRing() *flightRing {
	return &flightRing{byID: make(map[string]*flight.Report, flightRingSize)}
}

func (r *flightRing) add(id string, rep *flight.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		r.ids = append(r.ids, id)
		if len(r.ids) > flightRingSize {
			delete(r.byID, r.ids[0])
			r.ids = r.ids[1:]
		}
	}
	r.byID[id] = rep
}

func (r *flightRing) get(id string) (*flight.Report, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep, ok := r.byID[id]
	return rep, ok
}

// flightSummary is one /debug/flight listing entry.
type flightSummary struct {
	ID          string  `json:"id"`
	Workers     int     `json:"workers"`
	Tasks       int64   `json:"tasks"`
	WastedRatio float64 `json:"wasted_ratio"`
	EventDrops  int64   `json:"event_drops,omitempty"`
}

// summaries lists the retained reports, newest first.
func (r *flightRing) summaries() []flightSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]flightSummary, 0, len(r.ids))
	for i := len(r.ids) - 1; i >= 0; i-- {
		id := r.ids[i]
		rep := r.byID[id]
		out = append(out, flightSummary{
			ID:          id,
			Workers:     rep.Workers,
			Tasks:       rep.Tasks,
			WastedRatio: rep.WastedRatio(),
			EventDrops:  rep.EventDrops,
		})
	}
	return out
}

// handleDebugFlight serves the retained flight reports: a listing without
// parameters, the full report with ?id=<X-Request-ID>.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	if id := firstValue(r.URL.Query(), "id"); id != "" {
		rep, ok := s.flights.get(id)
		if !ok {
			s.fail(w, http.StatusNotFound, "no flight report for request id %q (ring keeps the last %d)", id, flightRingSize)
			return
		}
		s.writeJSON(w, http.StatusOK, rep)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"reports": s.flights.summaries()})
}

// sseWriter frames server-sent events over a flushable response writer; the
// handler goroutine is the only writer, so no locking.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// startSSE switches the response to a server-sent event stream. Returns nil
// when the connection cannot stream (no http.Flusher under the middleware).
func startSSE(w http.ResponseWriter) *sseWriter {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w: w, f: f}
}

// event emits one named SSE event with a JSON payload and flushes it to the
// client immediately — the point of streaming progress.
func (s *sseWriter) event(name string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, b)
	s.f.Flush()
}
