package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// sloStats decodes the /stats fields the SLO tests care about.
type sloStats struct {
	Waiting     int64            `json:"waiting"`
	SLO         sloJSON          `json:"slo"`
	AnswerCache answerCacheStats `json:"answer_cache"`
}

// TestStatsWindowedQuantilesTrackBursts is the windowed-quantile acceptance
// check: /stats reports per-endpoint p50/p95/p99 over a sliding window, and
// the numbers move when the traffic does — a burst of slow requests after a
// burst of fast ones must drag the windowed p99 up, which the cumulative
// histogram alone could never show this promptly.
func TestStatsWindowedQuantilesTrackBursts(t *testing.T) {
	ts := testServer(t, Config{
		Workers: 1, SerialDepth: 2, TableBits: 14, MaxConcurrent: 2,
		// Tick on every exposition so the test controls window advancement;
		// plenty of slots so nothing ages out mid-test.
		WindowTick: time.Nanosecond, WindowSlots: 32,
	})
	client := &http.Client{Timeout: 30 * time.Second}

	// Burst A: trivial depth-2 tic-tac-toe requests, each a few ms at most.
	// Distinct positions so the answer cache cannot collapse them.
	for i := 0; i < 5; i++ {
		getJSON(t, client, fmt.Sprintf("%s/bestmove?game=ttt&moves=%d&depth=2&budget_ms=10000", ts.URL, i), http.StatusOK, nil)
	}
	var st1 sloStats
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st1)
	ep1, ok := st1.SLO.Endpoints["/bestmove"]
	if !ok {
		t.Fatalf("/stats slo has no /bestmove endpoint: %+v", st1.SLO)
	}
	if ep1.Count < 5 {
		t.Fatalf("windowed count %d after 5 requests", ep1.Count)
	}
	if ep1.P99MS <= 0 || ep1.P50MS > ep1.P99MS {
		t.Fatalf("degenerate quantiles after burst A: %+v", ep1)
	}
	if ep1.P99MS > 100 {
		t.Fatalf("burst A p99 %.1fms for depth-2 ttt — too slow to separate the bursts", ep1.P99MS)
	}

	// Burst B: deadline-cut Connect Four searches pinned at ~250ms each.
	for i := 0; i < 5; i++ {
		getJSON(t, client, fmt.Sprintf("%s/bestmove?game=connect4&moves=%d&depth=30&budget_ms=250", ts.URL, i), http.StatusOK, nil)
	}
	var st2 sloStats
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st2)
	ep2 := st2.SLO.Endpoints["/bestmove"]
	if ep2.Count < ep1.Count+5 {
		t.Fatalf("windowed count did not grow across bursts: %d -> %d", ep1.Count, ep2.Count)
	}
	if ep2.P99MS <= ep1.P99MS {
		t.Fatalf("windowed p99 did not move with the slow burst: %.2fms -> %.2fms", ep1.P99MS, ep2.P99MS)
	}
	if ep2.P99MS < 100 {
		t.Fatalf("windowed p99 %.1fms after five ~250ms requests", ep2.P99MS)
	}

	// The sessions behind the bursts also land in the per-backend window.
	be := st2.SLO.Backends
	var sessions int64
	for _, q := range be {
		sessions += q.Count
	}
	if sessions < 10 {
		t.Fatalf("backend windows saw %d sessions, want >= 10: %+v", sessions, be)
	}
}

// TestMetricsExposeWindowGauges: /metrics carries the windowed quantiles as
// slo_latency_window_seconds gauges and the per-backend latency family.
func TestMetricsExposeWindowGauges(t *testing.T) {
	ts := testServer(t, Config{
		Workers: 1, SerialDepth: 2, TableBits: 12, MaxConcurrent: 2, CacheSize: 8,
		WindowTick: time.Nanosecond, WindowSlots: 8,
	})
	client := &http.Client{Timeout: 20 * time.Second}
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=3&budget_ms=15000", http.StatusOK, nil)

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`slo_latency_window_seconds{kind="endpoint",name="/bestmove",quantile="p99"}`,
		`slo_latency_window_seconds{kind="backend",name="er",quantile="p50"}`,
		`server_backend_latency_seconds_count{backend=`,
		"engine_pool_waiting",
		"engine_admission_wait_seconds_count",
		"server_answer_cache_hit_rate",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// JSON exposition must survive the window gauges (NaN would break it).
	resp2, err := client.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", resp2.StatusCode)
	}
	if b, _ := io.ReadAll(resp2.Body); len(b) == 0 {
		t.Fatal("empty JSON metrics body")
	}
}

// TestHealthzReadinessBody: /healthz carries the identity and load fields the
// load harness gates on.
func TestHealthzReadinessBody(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 3, TableBits: 12, Backend: "er"})
	client := &http.Client{Timeout: 5 * time.Second}
	var h healthzJSON
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Games != len(games) {
		t.Fatalf("healthz identity: %+v", h)
	}
	if h.Backend != "er" {
		t.Fatalf("healthz backend %q", h.Backend)
	}
	if h.TableImpl == "" || h.TableImpl == "none" {
		t.Fatalf("healthz table_impl %q with TableBits set", h.TableImpl)
	}
	if h.Capacity != 3 || h.InFlight != 0 || h.Waiting != 0 {
		t.Fatalf("healthz load state: %+v", h)
	}
	if h.UptimeMS < 0 {
		t.Fatalf("healthz uptime: %+v", h)
	}
}

// TestShedByCauseSurfaced: a queue-timeout shed shows up in the per-game shed
// breakdown and in the admission-wait histogram.
func TestShedByCauseSurfaced(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, SerialDepth: 4, MaxConcurrent: 1, QueueTimeout: 30 * time.Millisecond})
	client := &http.Client{Timeout: 10 * time.Second}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Get(ts.URL + "/bestmove?game=connect4&depth=32&budget_ms=2500")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Wait for the long request to own the slot, then overload.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h healthzJSON
		getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &h)
		if h.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long request never occupied the slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := client.Get(ts.URL + "/bestmove?game=connect4&depth=3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: %d", resp.StatusCode)
	}
	wg.Wait()

	var st struct {
		Games map[string]struct {
			Rejected    int64
			ShedTimeout int64
		} `json:"games"`
	}
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	g := st.Games["connect4"]
	if g.ShedTimeout != 1 || g.Rejected != 1 {
		t.Fatalf("shed breakdown: %+v", g)
	}

	resp2, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body), `engine_shed_total{game="connect4",cause="timeout"} 1`) {
		t.Fatalf("metrics missing the shed-by-cause counter")
	}
}
