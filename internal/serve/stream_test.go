package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events off the stream until it ends or n events arrived
// (n <= 0 reads to EOF).
func readSSE(t *testing.T, r io.Reader, n int) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
				if n > 0 && len(events) >= n {
					return events
				}
			}
		}
	}
	return events
}

// TestAnalyzeStreamSSE is the streaming acceptance check: /analyze?stream=1
// answers text/event-stream with one "iteration" event per completed depth in
// deepening order, then a terminal "done" event carrying the same analysis
// the non-streaming endpoint would have returned.
func TestAnalyzeStreamSSE(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 14, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Get(ts.URL + "/analyze?game=ttt&depth=6&budget_ms=20000&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	events := readSSE(t, resp.Body, 0)
	if len(events) < 2 {
		t.Fatalf("stream produced %d events, want iterations + done", len(events))
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("stream ended with %q, want done", last.name)
	}
	var an analysisJSON
	if err := json.Unmarshal([]byte(last.data), &an); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if !an.Completed || an.Depth != 6 || an.Game != "ttt" {
		t.Fatalf("done analysis: %+v", an)
	}
	iterations := events[:len(events)-1]
	if len(iterations) != 6 {
		t.Fatalf("%d iteration events for a depth-6 session", len(iterations))
	}
	for i, ev := range iterations {
		if ev.name != "iteration" {
			t.Fatalf("event %d named %q", i, ev.name)
		}
		var it iterationJSON
		if err := json.Unmarshal([]byte(ev.data), &it); err != nil {
			t.Fatalf("iteration payload %d: %v", i, err)
		}
		if it.Depth != i+1 {
			t.Fatalf("iteration event %d at depth %d: out of order", i, it.Depth)
		}
	}
}

// TestStreamDisconnectCancelsSession: closing the SSE stream mid-session
// must cancel the search. The handler derives the session context from the
// request context, so the disconnect surfaces as a deadline-cut session in
// the engine's counters — the observable proof the search stopped early.
func TestStreamDisconnectCancelsSession(t *testing.T) {
	srv := New(Config{
		Workers: 2, SerialDepth: 4, MaxConcurrent: 1,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Depth 32 with a generous budget cannot finish on its own before the
	// client hangs up; the first iteration event proves the session started.
	resp, err := client.Get(ts.URL + "/analyze?game=connect4&depth=32&budget_ms=25000&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := readSSE(t, resp.Body, 1); len(got) != 1 || got[0].name != "iteration" {
		resp.Body.Close()
		t.Fatalf("first stream event: %+v", got)
	}
	resp.Body.Close() // hang up mid-search

	deadline := time.Now().Add(20 * time.Second)
	for {
		st := srv.engines["connect4"].Stats()
		if st.DeadlineCut == 1 && st.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not cancelled by disconnect: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugFlightEndpoint: flight=1 retains a per-request report fetchable
// from /debug/flight by the request id, with the busy-time buckets forming an
// exact partition, and the listing shows it.
func TestDebugFlightEndpoint(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 14, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}

	req, _ := http.NewRequest("GET", ts.URL+"/analyze?game=ttt&depth=6&budget_ms=20000&flight=1", nil)
	req.Header.Set("X-Request-ID", "flight-e2e-1")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flight=1 analyze status %d", resp.StatusCode)
	}

	var rep struct {
		Label   string `json:"label"`
		Workers int    `json:"workers"`
		Tasks   int64  `json:"tasks"`
		BusyNS  int64  `json:"busy_ns"`
		Useful  struct {
			TimeNS int64 `json:"time_ns"`
		} `json:"useful_primary"`
		UsefulSpec struct {
			TimeNS int64 `json:"time_ns"`
		} `json:"useful_spec"`
		WastedSpec struct {
			TimeNS int64 `json:"time_ns"`
		} `json:"wasted_spec"`
		EventDrops int64 `json:"event_drops"`
	}
	getJSON(t, client, ts.URL+"/debug/flight?id=flight-e2e-1", http.StatusOK, &rep)
	if rep.Label != "flight-e2e-1" || rep.Workers != 2 || rep.Tasks <= 0 {
		t.Fatalf("flight report: %+v", rep)
	}
	if rep.EventDrops == 0 {
		if sum := rep.Useful.TimeNS + rep.UsefulSpec.TimeNS + rep.WastedSpec.TimeNS; sum != rep.BusyNS {
			t.Fatalf("buckets sum to %d ns, busy is %d ns", sum, rep.BusyNS)
		}
	}

	var listing struct {
		Reports []flightSummary `json:"reports"`
	}
	getJSON(t, client, ts.URL+"/debug/flight", http.StatusOK, &listing)
	found := false
	for _, e := range listing.Reports {
		found = found || e.ID == "flight-e2e-1"
	}
	if !found {
		t.Fatalf("listing misses the retained report: %+v", listing.Reports)
	}

	getJSON(t, client, ts.URL+"/debug/flight?id=nope", http.StatusNotFound, nil)
}

// TestStatsExposeSteals: after a sharded multi-worker session /stats carries
// the per-game steal counters; the end-of-search drain guarantees at least
// the steal-fail sweeps fired.
func TestStatsExposeSteals(t *testing.T) {
	ts := testServer(t, Config{Workers: 4, SerialDepth: 2, Sharded: true, TableBits: 14, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}

	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=connect4&depth=6&budget_ms=20000", http.StatusOK, &an)

	// Decode into a raw map too: the counters must be present as JSON
	// fields, not merely zero values of a stale struct.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Games map[string]map[string]any `json:"games"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	g := raw.Games["connect4"]
	steals, ok1 := g["Steals"].(float64)
	fails, ok2 := g["StealFails"].(float64)
	if !ok1 || !ok2 {
		t.Fatalf("/stats misses steal counters: %v", g)
	}
	if steals+fails == 0 {
		t.Fatal("sharded 4-worker session recorded no steal activity at all")
	}
}

// TestSSEChurnFreesAdmissionSlots is the cancellation-churn regression: waves
// of SSE clients that hang up mid-search must cancel their sessions and
// return their admission slots, so the pool never leaks capacity under
// disconnect churn. Each round fills every slot with a deliberately
// unfinishable streaming search, disconnects them all, and proves the slots
// came back by running a normal request to completion.
func TestSSEChurnFreesAdmissionSlots(t *testing.T) {
	const slots = 2
	srv := New(Config{
		Workers: 2, SerialDepth: 4, MaxConcurrent: slots,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	var cut int64
	for round := 1; round <= 3; round++ {
		var wg sync.WaitGroup
		for i := 0; i < slots; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Depth 32 cannot finish before the hangup; the first
				// iteration event proves the session holds a slot.
				resp, err := client.Get(ts.URL + "/analyze?game=connect4&depth=32&budget_ms=25000&stream=1")
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				if got := readSSE(t, resp.Body, 1); len(got) != 1 || got[0].name != "iteration" {
					t.Errorf("round %d: first stream event %+v", round, got)
				}
			}()
		}
		wg.Wait() // every stream started and then hung up
		cut += slots

		// The disconnects must surface as deadline-cut sessions with every
		// slot released.
		deadline := time.Now().Add(20 * time.Second)
		for {
			st := srv.engines["connect4"].Stats()
			if st.DeadlineCut == cut && st.Active == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: churned sessions not reaped: %+v", round, st)
			}
			time.Sleep(10 * time.Millisecond)
		}

		// Freed capacity is usable immediately: a plain request completes.
		var an analysisJSON
		getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=3&budget_ms=15000", http.StatusOK, &an)
		if !an.Completed {
			t.Fatalf("round %d: post-churn request did not complete: %+v", round, an)
		}
	}
}
