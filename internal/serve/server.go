// Package serve implements the erserve HTTP analysis service as a library:
// one engine per game over a shared admission pool, the single-flight answer
// cache, request instrumentation, SSE progress streaming, flight-report
// retention, and the SLO observability surface (/healthz, /stats, /metrics
// with windowed latency quantiles). cmd/erserve is a thin flag-parsing shell
// around it; cmd/erload starts an in-process instance through the same API
// when asked to bring its own server.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ertree/internal/backend"
	"ertree/internal/checkers"
	"ertree/internal/connect4"
	"ertree/internal/driver"
	"ertree/internal/engine"
	"ertree/internal/flight"
	"ertree/internal/game"
	"ertree/internal/obs"
	"ertree/internal/othello"
	"ertree/internal/telemetry"
	"ertree/internal/ttt"
)

// gameSpec describes one servable game: its initial position and the move
// ordering its searches should use.
type gameSpec struct {
	root  func() game.Position
	order game.Orderer
}

// games registers the built-in games. Positions are addressed by the list of
// child indices (natural move order) leading from the initial position.
var games = map[string]gameSpec{
	"ttt":      {root: func() game.Position { return ttt.New() }},
	"connect4": {root: func() game.Position { return connect4.New() }},
	"othello":  {root: func() game.Position { return othello.Start() }, order: game.StaticOrder{MaxPly: 5}},
	"checkers": {root: func() game.Position { return checkers.Start() }, order: game.StaticOrder{MaxPly: 5}},
}

// Config configures a server; flag parsing in main fills it.
type Config struct {
	Workers       int           // parallel-ER workers per search
	Backend       string        // default search backend; empty means the engine default
	Driver        string        // default root driver; empty means the engine default
	SerialDepth   int           // serial work grain
	Sharded       bool          // per-worker work-stealing problem heap
	TableBits     int           // per-game shared transposition table size
	TableImpl     string        // shared-table implementation; empty follows ERTREE_TABLE then the default
	CacheSize     int           // completed answers retained by the single-flight cache; 0 disables
	MaxConcurrent int           // server-wide concurrent sessions
	QueueTimeout  time.Duration // admission-queue wait before 503
	MaxDepth      int           // cap on requested depth
	DefaultBudget time.Duration // search budget when the client sends none
	WindowTick    time.Duration // windowed-quantile snapshot interval; 0 = DefaultWindowTick
	WindowSlots   int           // snapshots retained per window; 0 = DefaultWindowSlots
	Logger        *slog.Logger  // structured logs; nil logs JSON to stderr

	// ObsSample enables the self-monitor (internal/obs) and sets its gauge
	// sampling interval; 0 disables it entirely — no sampler goroutine, no
	// ring, one nil check per session. ObsRing sizes the retained sample
	// ring (0 = obs.DefaultRingSlots). ObsDetectors overrides the anomaly
	// detector set (nil = obs.DefaultDetectors) — tuning and tests only.
	ObsSample    time.Duration
	ObsRing      int
	ObsDetectors []obs.Detector
}

// server is the HTTP analysis service: one engine per game, all sharing one
// session-slot pool, so the whole server runs at most MaxConcurrent searches
// with queued admission. All engines record into one telemetry registry,
// exposed at /metrics alongside the server's own request instrumentation.
type Server struct {
	cfg     Config
	engines map[string]*engine.Engine
	pool    engine.Pool
	start   time.Time
	reg     *telemetry.Registry
	metrics *httpMetrics
	log     *slog.Logger
	ids     *requestIDs
	flights *flightRing
	cache   *answerCache
	slo     *sloTracker
	obs     *obs.Monitor // self-monitor; nil when Config.ObsSample is 0

	// Resolved default backend/driver names, cached for access-log
	// attribution on requests that don't override them.
	defaultBackend string
	defaultDriver  string
}

func New(cfg Config) *Server {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 32
	}
	if cfg.DefaultBudget <= 0 {
		cfg.DefaultBudget = 5 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	pool := engine.NewPool(cfg.MaxConcurrent)
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:     cfg,
		engines: make(map[string]*engine.Engine),
		pool:    pool,
		start:   time.Now(),
		reg:     reg,
		metrics: newHTTPMetrics(reg),
		log:     log,
		ids:     newRequestIDs(),
		flights: newFlightRing(),
		cache:   newAnswerCache(cfg.CacheSize),
	}
	s.slo = newSLOTracker(reg, s.metrics, cfg.WindowTick, cfg.WindowSlots)
	s.obs = newObsMonitor(cfg, s)
	tel := engine.NewTelemetry(reg)
	for name, spec := range games {
		s.engines[name] = engine.New(engine.Config{
			Name:         name,
			Backend:      cfg.Backend,
			Driver:       cfg.Driver,
			Workers:      cfg.Workers,
			SerialDepth:  cfg.SerialDepth,
			Sharded:      cfg.Sharded,
			Order:        spec.order,
			TableBits:    cfg.TableBits,
			TableImpl:    cfg.TableImpl,
			Delta:        32,
			Pool:         pool,
			QueueTimeout: cfg.QueueTimeout,
			Telemetry:    tel,
			Obs:          s.obs,
		})
	}
	for _, e := range s.engines {
		// All engines resolve the same defaults; any one identifies them.
		s.defaultBackend = e.Backend()
		s.defaultDriver = e.Driver()
		break
	}
	if s.obs != nil {
		s.obs.SetSource(s.obsSample)
		s.obs.Start()
	}
	reg.GaugeFunc("engine_pool_capacity",
		"Session slots shared by every game engine.",
		func() float64 { return float64(cap(pool)) })
	reg.GaugeFunc("engine_pool_active",
		"Sessions currently holding a slot.",
		func() float64 { return float64(len(pool)) })
	reg.GaugeFunc("engine_pool_waiting",
		"Requests queued for a session slot across all games (admission queue depth).",
		func() float64 { return float64(s.queueDepth()) })
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if s.cache != nil {
		reg.GaugeFunc("server_answer_cache_size",
			"Completed analyses retained by the single-flight answer cache.",
			func() float64 { return float64(s.cache.size()) })
		reg.GaugeFunc("server_answer_cache_hits_total",
			"Requests served from the answer cache (monotone).",
			func() float64 { return float64(s.cache.hits.Load()) })
		reg.GaugeFunc("server_answer_cache_misses_total",
			"Requests that led a new search (monotone).",
			func() float64 { return float64(s.cache.misses.Load()) })
		reg.GaugeFunc("server_answer_cache_coalesced_total",
			"Requests that waited on another request's identical search (monotone).",
			func() float64 { return float64(s.cache.coalesced.Load()) })
		reg.GaugeFunc("server_answer_cache_hit_rate",
			"Fraction of cacheable requests answered from the completed-answer LRU.",
			func() float64 { return s.cache.stats().HitRate })
	}
	return s
}

// Close releases the server's background resources (today: the self-monitor's
// sampler goroutine). Safe on a server built without obs, and idempotent.
func (s *Server) Close() {
	s.obs.Close()
}

func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/bestmove", s.handleAnalyze(false))
	mux.HandleFunc("/analyze", s.handleAnalyze(true))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/debug/flight", s.handleDebugFlight)
	mux.HandleFunc("/debug/obs", s.handleDebugObs)
	mux.HandleFunc("/debug/obs/profiles", s.handleObsProfiles)
	mux.HandleFunc("/debug/obs/profiles/", s.handleObsProfiles)
	// /metrics advances the quantile windows before exposition, so the
	// slo_latency_window_seconds gauges a scraper reads are at most one
	// scrape interval stale.
	metricsH := s.reg.Handler()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.slo.maybeTick()
		metricsH.ServeHTTP(w, r)
	}))
	return s.instrument(mux)
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

// writeJSON writes v as the indented JSON response body. Encoding errors are
// logged, not swallowed: after WriteHeader the status is already on the wire,
// so the log line (keyed by the response's request id) is the only place a
// half-written body becomes visible.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("response encode failed",
			"id", w.Header().Get("X-Request-ID"),
			"code", code,
			"err", err.Error(),
		)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, httpError{Error: fmt.Sprintf(format, args...)})
}

// iterationJSON is one completed deepening iteration on the wire; it doubles
// as the payload of the SSE "iteration" progress events.
type iterationJSON struct {
	Depth      int   `json:"depth"`
	Move       int   `json:"move"`
	Value      int   `json:"value"`
	Researches int   `json:"researches"`
	Probes     int   `json:"probes"`
	Nodes      int64 `json:"nodes"`
	Steals     int64 `json:"steals"`
	// HeapPeak is the largest problem-heap occupancy sampled during the
	// iteration; zero unless the session recorded (stream=1 or flight=1).
	HeapPeak  int   `json:"heap_peak"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// wireIteration converts an engine iteration to its JSON form.
func wireIteration(it engine.Iteration) iterationJSON {
	return iterationJSON{
		Depth:      it.Depth,
		Move:       it.Move,
		Value:      int(it.Value),
		Researches: it.Researches,
		Probes:     it.Probes,
		Nodes:      it.Nodes,
		Steals:     it.Steals,
		HeapPeak:   it.HeapPeak,
		ElapsedMS:  it.Elapsed.Milliseconds(),
	}
}

// analysisJSON is the /bestmove and /analyze response body.
type analysisJSON struct {
	Game           string          `json:"game"`
	Backend        string          `json:"backend"`
	Driver         string          `json:"driver"`
	RequestedDepth int             `json:"requested_depth"`
	Depth          int             `json:"depth"`
	Move           int             `json:"move"`
	Value          int             `json:"value"`
	Completed      bool            `json:"completed"`
	Nodes          int64           `json:"nodes"`
	ElapsedMS      int64           `json:"elapsed_ms"`
	Iterations     []iterationJSON `json:"iterations,omitempty"`
}

// parsePosition resolves the game and walks the moves list (child indices,
// natural move order) from the initial position.
func parsePosition(q map[string][]string) (name string, pos game.Position, err error) {
	name = firstValue(q, "game")
	if name == "" {
		return "", nil, errors.New("missing game parameter")
	}
	spec, ok := games[name]
	if !ok {
		return "", nil, fmt.Errorf("unknown game %q", name)
	}
	pos = spec.root()
	movesParam := firstValue(q, "moves")
	if movesParam == "" {
		return name, pos, nil
	}
	for step, f := range strings.Split(movesParam, ",") {
		idx, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return "", nil, fmt.Errorf("moves[%d]: %q is not a child index", step, f)
		}
		kids := pos.Children()
		if idx < 0 || idx >= len(kids) {
			return "", nil, fmt.Errorf("moves[%d]: index %d out of range (%d children)", step, idx, len(kids))
		}
		pos = kids[idx]
	}
	return name, pos, nil
}

func firstValue(q map[string][]string, key string) string {
	if vs := q[key]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// handleAnalyze serves /bestmove and /analyze: the same session, with the
// per-iteration history included only on /analyze. On /analyze, trace=1 runs
// the session with worker-span telemetry and answers with a Chrome
// trace-object envelope ({"traceEvents": [...], "analysis": {...}}) that
// loads directly in Perfetto; stream=1 answers a server-sent-event stream of
// per-iteration progress ("iteration" events, then "done" with the full
// analysis or "error"); flight=1 runs the session with the core flight
// recorder armed and retains the resulting speculation-waste report under the
// request id for /debug/flight.
func (s *Server) handleAnalyze(includeIterations bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		name, pos, err := parsePosition(q)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		depth := 8
		if d := firstValue(q, "depth"); d != "" {
			depth, err = strconv.Atoi(d)
			if err != nil || depth < 1 {
				s.fail(w, http.StatusBadRequest, "bad depth %q", d)
				return
			}
		}
		if depth > s.cfg.MaxDepth {
			s.fail(w, http.StatusBadRequest, "depth %d exceeds the server cap %d", depth, s.cfg.MaxDepth)
			return
		}
		budget := s.cfg.DefaultBudget
		if b := firstValue(q, "budget_ms"); b != "" {
			ms, err := strconv.Atoi(b)
			if err != nil || ms < 1 {
				s.fail(w, http.StatusBadRequest, "bad budget_ms %q", b)
				return
			}
			budget = time.Duration(ms) * time.Millisecond
		}
		// backend= swaps the search backend for this request only. Unknown
		// names are a client error naming the valid set — never a silent
		// fallback to the default.
		beName := firstValue(q, "backend")
		if beName != "" && !backend.Valid(beName) {
			s.fail(w, http.StatusBadRequest, "unknown backend %q (valid: %s)", beName, backend.NamesString())
			return
		}
		// driver= swaps the root driver for this request only, under the same
		// no-silent-fallback rule.
		dName := firstValue(q, "driver")
		if dName != "" && !driver.Valid(dName) {
			s.fail(w, http.StatusBadRequest, "unknown driver %q (valid: %s)", dName, driver.NamesString())
			return
		}
		// The request is valid from here on: record which backend/driver will
		// serve it for the access-log attribution (overrides, or defaults).
		attribute(w,
			orDefault(beName, s.defaultBackend),
			orDefault(dName, s.defaultDriver))

		trace := includeIterations && firstValue(q, "trace") == "1"
		stream := includeIterations && firstValue(q, "stream") == "1"
		recordFlight := includeIterations && firstValue(q, "flight") == "1"

		// Single-flight answer cache: plain (non-trace, non-stream,
		// non-flight) requests first try the completed-answer LRU, then
		// either lead a search or coalesce onto an identical one already in
		// flight. Observability requests always run their own session — their
		// value is the per-request telemetry, not the answer.
		var fl *cacheFlight
		var cacheKey string
		flightLeader := false
		if s.cache != nil && !trace && !stream && !recordFlight {
			cacheKey = answerKey(name, firstValue(q, "moves"), depth,
				budget.Milliseconds(), beName, dName, includeIterations)
			if out, ok := s.cache.get(cacheKey); ok {
				s.writeJSON(w, http.StatusOK, out)
				return
			}
			fl, flightLeader = s.cache.join(cacheKey)
			if !flightLeader {
				select {
				case <-fl.done:
					if fl.err != nil {
						if fl.code == http.StatusServiceUnavailable {
							w.Header().Set("Retry-After", "1")
						}
						s.fail(w, fl.code, "%s", fl.err.Error())
						return
					}
					s.writeJSON(w, http.StatusOK, fl.out)
				case <-r.Context().Done():
					s.fail(w, http.StatusServiceUnavailable, "request cancelled while awaiting a coalesced search")
				}
				return
			}
		}
		// The session stops at the budget or when the client disconnects,
		// whichever comes first, and still answers with the deepest
		// completed iteration. For SSE the disconnect path is the one that
		// matters: closing the stream cancels r.Context() and with it the
		// in-flight search.
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()

		// The middleware put the request id on the response before the
		// handler ran; threading it into the session labels its analysis,
		// trace, and flight report with the same correlation key as the
		// access-log line.
		opts := engine.SessionOptions{Trace: trace, Label: w.Header().Get("X-Request-ID"), Backend: beName, Driver: dName}
		switch {
		case recordFlight:
			opts.Record = 1 << 16
		case stream:
			// Streaming needs hooks armed for the heap-occupancy gauge in
			// the progress events; a small ring keeps the cost down.
			opts.Record = 1 << 12
		}
		var sse *sseWriter
		if stream {
			if sse = startSSE(w); sse == nil {
				s.fail(w, http.StatusInternalServerError, "connection does not support streaming")
				return
			}
			opts.OnIteration = func(it engine.Iteration) {
				sse.event("iteration", wireIteration(it))
			}
		}

		an, err := s.engines[name].AnalyzeSession(ctx, pos, depth, opts)
		if err != nil {
			code, msg := http.StatusInternalServerError, err.Error()
			switch {
			case errors.Is(err, engine.ErrBusy):
				code = http.StatusServiceUnavailable
			case errors.Is(err, engine.ErrNoMoves):
				code, msg = http.StatusUnprocessableEntity, "position is terminal: no moves to search"
			case errors.Is(err, engine.ErrNoResult):
				code, msg = http.StatusGatewayTimeout, fmt.Sprintf("budget %v expired before the first iteration completed", budget)
			case errors.Is(err, context.Canceled):
				code, msg = http.StatusServiceUnavailable, "request cancelled while queued"
			}
			if flightLeader {
				// Waiters asked the same question under the same budget;
				// they replay this outcome. Errors are never retained, so
				// the next request searches afresh.
				s.cache.settle(cacheKey, fl, analysisJSON{}, errors.New(msg), code)
			}
			if sse != nil {
				// The 200 and the event-stream header are already on the
				// wire; the error becomes the stream's terminal event.
				sse.event("error", httpError{Error: msg})
				return
			}
			if code == http.StatusServiceUnavailable && errors.Is(err, engine.ErrBusy) {
				w.Header().Set("Retry-After", "1")
			}
			s.fail(w, code, "%s", msg)
			return
		}
		s.slo.observeBackend(an.Backend, an.Elapsed)
		if recordFlight {
			s.flights.add(an.Label, flight.Build(an.Trace, flight.Options{
				Label:   an.Label,
				Workers: s.cfg.Workers,
			}))
		}

		out := analysisJSON{
			Game:           name,
			Backend:        an.Backend,
			Driver:         an.Driver,
			RequestedDepth: depth,
			Depth:          an.Depth,
			Move:           an.Move,
			Value:          int(an.Value),
			Completed:      an.Completed,
			Nodes:          an.Nodes,
			ElapsedMS:      an.Elapsed.Milliseconds(),
		}
		if includeIterations {
			for _, it := range an.Iterations {
				out.Iterations = append(out.Iterations, wireIteration(it))
			}
		}
		if flightLeader {
			s.cache.settle(cacheKey, fl, out, nil, 0)
		}
		if sse != nil {
			sse.event("done", out)
			return
		}
		if trace {
			var buf bytes.Buffer
			if err := engine.WriteWorkerTrace(&buf, "erserve "+name, an.Trace); err != nil {
				s.fail(w, http.StatusInternalServerError, "trace encode: %v", err)
				return
			}
			s.writeJSON(w, http.StatusOK, tracedAnalysisJSON{
				TraceEvents: json.RawMessage(buf.Bytes()),
				Analysis:    out,
			})
			return
		}
		s.writeJSON(w, http.StatusOK, out)
	}
}

// tracedAnalysisJSON is the trace=1 response: a Chrome trace object with the
// analysis riding along (Perfetto ignores unknown top-level keys).
type tracedAnalysisJSON struct {
	TraceEvents json.RawMessage `json:"traceEvents"`
	Analysis    analysisJSON    `json:"analysis"`
}

// queueDepth sums the engines' admission-queue occupancy: how many requests
// are waiting for one of the shared session slots right now.
func (s *Server) queueDepth() int64 {
	var n int64
	for _, e := range s.engines {
		n += e.Waiting()
	}
	return n
}

// healthzJSON is the /healthz body: enough identity and load state for a
// readiness gate (erload polls it before opening traffic) and for a human to
// tell which configuration is answering.
type healthzJSON struct {
	Status    string `json:"status"`
	UptimeMS  int64  `json:"uptime_ms"`
	Games     int    `json:"games"`
	Backend   string `json:"backend"`    // resolved default search backend
	Driver    string `json:"driver"`     // resolved default root driver
	TableImpl string `json:"table_impl"` // shared-table implementation; "none" when disabled
	InFlight  int    `json:"in_flight"`  // sessions currently holding a slot
	Capacity  int    `json:"capacity"`   // session slots
	Waiting   int64  `json:"waiting"`    // admission queue depth
	// Anomalies counts self-monitor detections since start (0 with obs
	// disabled); TT summarizes the shared-table health. Both let a load
	// balancer see degradation — a thrashing table or a storming driver —
	// not just liveness.
	Anomalies int64          `json:"anomalies"`
	TT        *healthzTTJSON `json:"tt,omitempty"` // omitted when tables are disabled
}

// healthzTTJSON is the /healthz transposition-table section, summed across
// the per-game tables (they share one configuration).
type healthzTTJSON struct {
	Impl       string  `json:"impl"`
	Fill       int64   `json:"fill"` // occupied slots (sampled), all games
	Len        int64   `json:"len"`  // total slots, all games
	HitRate    float64 `json:"hit_rate"`
	Generation int64   `json:"generation"` // aging ticks, summed across games
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	out := healthzJSON{
		Status:    "ok",
		UptimeMS:  time.Since(s.start).Milliseconds(),
		Games:     len(s.engines),
		Backend:   s.defaultBackend,
		Driver:    s.defaultDriver,
		TableImpl: "none",
		InFlight:  len(s.pool),
		Capacity:  cap(s.pool),
		Waiting:   s.queueDepth(),
		Anomalies: s.obs.AnomalyTotal(),
	}
	var ttProbes, ttHits int64
	for _, e := range s.engines {
		t := e.Table()
		if t == nil {
			continue
		}
		if out.TT == nil {
			out.TT = &healthzTTJSON{Impl: t.Impl()}
			out.TableImpl = t.Impl()
		}
		g := e.Gauges()
		out.TT.Fill += g.TTFill
		out.TT.Len += g.TTLen
		out.TT.Generation += g.TTGeneration
		ttProbes += g.TTProbes
		ttHits += g.TTHits
	}
	if out.TT != nil && ttProbes > 0 {
		out.TT.HitRate = float64(ttHits) / float64(ttProbes)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// statsJSON is the /stats response: the admission pool, windowed latency
// quantiles, the answer cache, and per-game engine counters.
type statsJSON struct {
	UptimeMS    int64                   `json:"uptime_ms"`
	Capacity    int                     `json:"capacity"`
	Active      int                     `json:"active"`
	Waiting     int64                   `json:"waiting"`
	SLO         sloJSON                 `json:"slo"`
	AnswerCache answerCacheStats        `json:"answer_cache"`
	Games       map[string]engine.Stats `json:"games"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.slo.maybeTick()
	out := statsJSON{
		UptimeMS:    time.Since(s.start).Milliseconds(),
		Waiting:     s.queueDepth(),
		SLO:         s.slo.snapshot(),
		AnswerCache: s.cache.stats(),
		Games:       make(map[string]engine.Stats, len(s.engines)),
	}
	for name, e := range s.engines {
		st := e.Stats()
		out.Capacity = st.Capacity // shared pool: same for every engine
		out.Active = st.Active
		out.Games[name] = st
	}
	s.writeJSON(w, http.StatusOK, out)
}
