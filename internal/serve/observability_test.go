package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint is the exposition acceptance check: after real traffic,
// /metrics answers Prometheus text covering the request, session, core-search,
// and transposition-table families.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 3, TableBits: 14, MaxConcurrent: 2})
	client := &http.Client{Timeout: 20 * time.Second}

	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=5&budget_ms=15000", http.StatusOK, &an)
	getJSON(t, client, ts.URL+"/bestmove?game=nosuch&depth=3", http.StatusBadRequest, nil)

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		// Request family, including the instrumented error response.
		`http_requests_total{path="/bestmove",code="200"} 1`,
		`http_requests_total{path="/bestmove",code="400"} 1`,
		`http_request_duration_seconds_count{path="/bestmove"} 2`,
		"http_requests_in_flight",
		// Session family.
		`engine_sessions_total{game="ttt",outcome="completed"} 1`,
		`engine_session_depth_count{game="ttt"} 1`,
		// Core-search and TT families.
		`core_tasks_total{game="ttt"`,
		`core_tt_ops_total{game="ttt",op="probe"}`,
		`core_tt_ops_total{game="ttt",op="store"}`,
		// Pool gauges.
		"engine_pool_capacity 2",
		"engine_pool_active 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Log(text)
	}

	// The JSON form of the same registry.
	resp2, err := client.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var fams []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&fams); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("JSON snapshot is empty")
	}
}

// TestRequestIDs: every response carries an X-Request-ID; a client-supplied
// one is preserved.
func TestRequestIDs(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response missing a generated X-Request-ID")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Fatalf("client request id not preserved: %q", got)
	}
}

// TestAccessLogLines: the structured access log emits one record per request
// with the request id and status code.
func TestAccessLogLines(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(Config{
		Workers: 1, MaxConcurrent: 1,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	h := srv.Handler()

	rec := newRecorder()
	req, _ := http.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "log-test-1")
	h.ServeHTTP(rec, req)

	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log is not one JSON record: %v (%q)", err, logBuf.String())
	}
	if line["msg"] != "request" || line["id"] != "log-test-1" ||
		line["path"] != "/healthz" || line["code"] != float64(200) {
		t.Fatalf("access log record: %v", line)
	}
}

// failingWriter is a ResponseWriter whose body writes always fail, the way a
// hung-up client looks to the handler.
type failingWriter struct {
	h http.Header
}

func (w *failingWriter) Header() http.Header       { return w.h }
func (w *failingWriter) WriteHeader(int)           {}
func (w *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

// TestWriteJSONLogsEncodeErrors is the regression test for the silently
// discarded Encode error: a failing writer must surface in the server log.
func TestWriteJSONLogsEncodeErrors(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(Config{
		Workers: 1, MaxConcurrent: 1,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	fw := &failingWriter{h: make(http.Header)}
	fw.h.Set("X-Request-ID", "fail-1")
	srv.writeJSON(fw, http.StatusOK, map[string]string{"hello": "world"})

	var line map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("expected one log record, got %q: %v", logBuf.String(), err)
	}
	if line["msg"] != "response encode failed" || line["id"] != "fail-1" {
		t.Fatalf("encode failure not logged usefully: %v", line)
	}
	if !strings.Contains(line["err"].(string), "client went away") {
		t.Fatalf("log lost the underlying error: %v", line)
	}
}

// recorder is a minimal in-process ResponseWriter for handler-level tests.
type recorder struct {
	h    http.Header
	code int
	body bytes.Buffer
}

func newRecorder() *recorder { return &recorder{h: make(http.Header)} }

func (r *recorder) Header() http.Header { return r.h }
func (r *recorder) WriteHeader(c int) {
	if r.code == 0 {
		r.code = c
	}
}
func (r *recorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(b)
}

// TestAnalyzeTraceEndpoint: /analyze?trace=1 answers a Chrome trace object —
// traceEvents a valid event array with per-worker thread names — with the
// analysis embedded, and /bestmove ignores the flag.
func TestAnalyzeTraceEndpoint(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 12, MaxConcurrent: 2})
	client := &http.Client{Timeout: 20 * time.Second}

	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Analysis    analysisJSON     `json:"analysis"`
	}
	getJSON(t, client, ts.URL+"/analyze?game=ttt&depth=5&budget_ms=15000&trace=1", http.StatusOK, &out)
	if !out.Analysis.Completed || out.Analysis.Game != "ttt" {
		t.Fatalf("embedded analysis: %+v", out.Analysis)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("trace=1 returned no trace events")
	}
	threads := map[float64]bool{}
	spans := 0
	for _, ev := range out.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				threads[ev["tid"].(float64)] = true
			}
		case "X":
			spans++
			if ev["dur"].(float64) < 1 {
				t.Fatalf("zero-width span: %v", ev)
			}
		}
	}
	if len(threads) == 0 || len(threads) > 2 {
		t.Fatalf("%d worker tracks for 2 workers", len(threads))
	}
	if spans == 0 {
		t.Fatal("no complete-events in the trace")
	}

	// /bestmove has no iteration history and no trace support.
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=3&trace=1&budget_ms=15000", http.StatusOK, &an)
	if an.Move < 0 {
		t.Fatalf("bestmove with trace param: %+v", an)
	}
}
