package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"ertree/internal/engine"
)

// defaultDriverName resolves the driver an unpinned engine defaults to, the
// same way engine.New does: ERTREE_DRIVER if set (CI's driver matrix routes
// unpinned sessions through each driver this way), else the built-in default.
func defaultDriverName() string {
	if d := os.Getenv(engine.EnvDriver); d != "" {
		return d
	}
	return engine.DefaultDriver
}

// TestDriverPerRequest drives one position through each root driver via the
// ?driver= parameter and checks the responses agree and are attributed to the
// driver that resolved them, in the response body, /stats, and /healthz.
func TestDriverPerRequest(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 16, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}

	values := map[string]int{}
	for _, d := range []string{"aspiration", "mtdf", "bns"} {
		var an analysisJSON
		getJSON(t, client,
			ts.URL+"/analyze?game=connect4&moves=3,3&depth=6&budget_ms=25000&driver="+d,
			http.StatusOK, &an)
		if an.Driver != d {
			t.Fatalf("response attributes driver %q, requested %q", an.Driver, d)
		}
		if !an.Completed {
			t.Fatalf("driver %s did not complete: %+v", d, an)
		}
		values[d] = an.Value
		probes := 0
		for _, it := range an.Iterations {
			probes += it.Probes
		}
		if d == "aspiration" && probes != 0 {
			t.Fatalf("aspiration iterations report %d probes", probes)
		}
		if d == "mtdf" && probes == 0 {
			t.Fatalf("mtdf iterations report no probes: %+v", an.Iterations)
		}
	}
	for d, v := range values {
		if v != values["aspiration"] {
			t.Fatalf("driver %s found value %d, aspiration found %d", d, v, values["aspiration"])
		}
	}

	// No driver parameter: the server default resolves and is named. (Under
	// CI's driver matrix ERTREE_DRIVER decides what that default is.)
	def := defaultDriverName()
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000", http.StatusOK, &an)
	if an.Driver != def {
		t.Fatalf("default driver %q, want %q", an.Driver, def)
	}

	// /stats attributes the mixed traffic per driver and counts the probes.
	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	c4 := st.Games["connect4"]
	if c4.DriverSessions["aspiration"] != 1 || c4.DriverSessions["mtdf"] != 1 || c4.DriverSessions["bns"] != 1 {
		t.Fatalf("connect4 driver attribution wrong: %+v", c4.DriverSessions)
	}
	if c4.Driver != def {
		t.Fatalf("engine default driver %q in stats, want %q", c4.Driver, def)
	}
	if c4.Probes == 0 {
		t.Fatal("stats report no probes after mtdf and bns sessions")
	}

	// /healthz names the resolved default driver.
	var hz healthzJSON
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &hz)
	if hz.Driver != def {
		t.Fatalf("healthz driver %q, want %q", hz.Driver, def)
	}
}

// TestDriverValidation: an unknown ?driver= is a 400 naming the valid options
// — never a silent fallback to the default.
func TestDriverValidation(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	resp, err := http.Get(ts.URL + "/bestmove?game=ttt&depth=3&driver=sssstar")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e httpError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sssstar", "aspiration", "mtdf", "bns"} {
		if !strings.Contains(e.Error, want) {
			t.Fatalf("400 body %q does not mention %q", e.Error, want)
		}
	}
}

// TestDriverMetricsLabel: mixed-driver traffic shows up in /metrics under
// engine_driver_sessions_total and engine_driver_probes_total with the driver
// label.
func TestDriverMetricsLabel(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, TableBits: 12, MaxConcurrent: 1})
	client := &http.Client{Timeout: 30 * time.Second}
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000&driver=mtdf", http.StatusOK, &an)
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, `engine_driver_sessions_total{game="ttt",driver="mtdf"} 1`) {
		t.Fatalf("metrics missing driver-labeled session counter:\n%s", body)
	}
	if !strings.Contains(body, `engine_driver_probes_total{game="ttt",driver="mtdf"}`) {
		t.Fatalf("metrics missing driver-labeled probe counter:\n%s", body)
	}
}

// TestDriverCacheKey: identical requests differing only in ?driver= must not
// coalesce onto one flight or serve each other's cached answer — the
// attribution in the response body would be wrong.
func TestDriverCacheKey(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, TableBits: 12, CacheSize: 16, MaxConcurrent: 1})
	client := &http.Client{Timeout: 30 * time.Second}
	var asp, mtdf analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000&driver=aspiration", http.StatusOK, &asp)
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000&driver=mtdf", http.StatusOK, &mtdf)
	if asp.Driver != "aspiration" || mtdf.Driver != "mtdf" {
		t.Fatalf("cache crossed drivers: %q then %q", asp.Driver, mtdf.Driver)
	}
	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if hits := st.AnswerCache.Hits; hits != 0 {
		t.Fatalf("second driver's request hit the first's cache entry (%d hits)", hits)
	}
	// Same driver again: now the cache answers.
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000&driver=mtdf", http.StatusOK, &mtdf)
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if st.AnswerCache.Hits != 1 {
		t.Fatalf("repeat request missed the cache: %+v", st.AnswerCache)
	}
}
