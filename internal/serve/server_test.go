package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Logger == nil {
		// Keep access logs out of the test output; log-asserting tests
		// inject their own buffer-backed logger.
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, client *http.Client, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e httpError
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("GET %s: status %d (%s), want %d", url, resp.StatusCode, e.Error, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", url, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

// TestBestMoveDepth8Connect4 is the acceptance scenario: a depth-8 Connect
// Four /bestmove request answered within a client-supplied deadline. The
// generous budget lets the search complete; the client deadline proves the
// answer arrived in time.
func TestBestMoveDepth8Connect4(t *testing.T) {
	ts := testServer(t, Config{Workers: 4, SerialDepth: 4, TableBits: 18, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=connect4&moves=3,3&depth=8&budget_ms=25000", http.StatusOK, &an)
	if !an.Completed || an.Depth != 8 || an.RequestedDepth != 8 {
		t.Fatalf("depth-8 search did not complete: %+v", an)
	}
	if an.Move < 0 || an.Move >= 7 {
		t.Fatalf("move %d out of range for Connect Four", an.Move)
	}
	if an.Game != "connect4" || an.Nodes <= 0 {
		t.Fatalf("malformed response: %+v", an)
	}
	if len(an.Iterations) != 0 {
		t.Fatalf("/bestmove leaked the iteration history: %+v", an)
	}
}

// TestBestMoveDeadlineCut is the other half of the acceptance scenario: when
// the budget cuts a deep search short, the server still answers 200 with the
// deepest completed iteration's move and completed=false.
func TestBestMoveDeadlineCut(t *testing.T) {
	ts := testServer(t, Config{Workers: 4, SerialDepth: 4, TableBits: 18, MaxConcurrent: 2})
	client := &http.Client{Timeout: 10 * time.Second}
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=connect4&depth=32&budget_ms=300", http.StatusOK, &an)
	if an.Completed || an.Depth >= 32 {
		t.Fatalf("depth-32 Connect Four reported complete within 300ms: %+v", an)
	}
	if an.Depth < 1 || an.Move < 0 || an.Move >= 7 {
		t.Fatalf("no best-so-far move: %+v", an)
	}
}

// TestAnalyzeIterations checks that /analyze includes the per-iteration
// history, each iteration one ply deeper than the last.
func TestAnalyzeIterations(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 3, TableBits: 16, MaxConcurrent: 2})
	client := &http.Client{Timeout: 10 * time.Second}
	var an analysisJSON
	getJSON(t, client, ts.URL+"/analyze?game=ttt&depth=9&budget_ms=20000", http.StatusOK, &an)
	if !an.Completed || len(an.Iterations) != 9 {
		t.Fatalf("tic-tac-toe analyze: %+v", an)
	}
	if an.Value != 0 {
		t.Fatalf("tic-tac-toe is a draw, got value %d", an.Value)
	}
	for i, it := range an.Iterations {
		if it.Depth != i+1 {
			t.Fatalf("iteration %d at depth %d", i, it.Depth)
		}
	}
	last := an.Iterations[len(an.Iterations)-1]
	if an.Move != last.Move || an.Depth != last.Depth {
		t.Fatalf("summary disagrees with the deepest iteration: %+v", an)
	}
}

// TestAllGamesAnswer smoke-tests every registered game end to end.
func TestAllGamesAnswer(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 14, MaxConcurrent: 4})
	client := &http.Client{Timeout: 20 * time.Second}
	for name := range games {
		var an analysisJSON
		getJSON(t, client, ts.URL+"/bestmove?game="+name+"&depth=4&budget_ms=15000", http.StatusOK, &an)
		if !an.Completed || an.Move < 0 {
			t.Fatalf("%s: %+v", name, an)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/bestmove?game=chess&depth=4", http.StatusBadRequest},
		{"/bestmove?depth=4", http.StatusBadRequest},
		{"/bestmove?game=connect4&depth=0", http.StatusBadRequest},
		{"/bestmove?game=connect4&depth=4&budget_ms=frog", http.StatusBadRequest},
		{"/bestmove?game=connect4&depth=99", http.StatusBadRequest},
		{"/bestmove?game=connect4&moves=9&depth=4", http.StatusBadRequest},
		{"/bestmove?game=connect4&moves=3,x&depth=4", http.StatusBadRequest},
	} {
		getJSON(t, client, ts.URL+tc.url, tc.code, nil)
	}
}

// TestBusyReturns503 fills the single session slot with a long search and
// verifies the next request is shed with 503 and a Retry-After header.
func TestBusyReturns503(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 4, MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	client := &http.Client{Timeout: 10 * time.Second}

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := client.Get(ts.URL + "/bestmove?game=connect4&depth=32&budget_ms=3000")
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the long request owns the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st statsJSON
		getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
		if st.Active == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long request never occupied the session slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := client.Get(ts.URL + "/bestmove?game=ttt&depth=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	<-done
}

func TestHealthzAndStats(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 3, TableBits: 12})
	client := &http.Client{Timeout: 5 * time.Second}

	var health map[string]any
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &health)
	if health["status"] != "ok" || health["games"] != float64(len(games)) {
		t.Fatalf("healthz: %+v", health)
	}

	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=5&budget_ms=10000", http.StatusOK, &an)

	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	if st.Capacity != 3 || st.Active != 0 {
		t.Fatalf("stats pool: %+v", st)
	}
	g, ok := st.Games["ttt"]
	if !ok || g.Started != 1 || g.Completed != 1 || g.Nodes <= 0 {
		t.Fatalf("stats for ttt: %+v", g)
	}
	if !g.HasTable || g.Table.Stores == 0 {
		t.Fatalf("ttt engine reports no table activity: %+v", g)
	}
}

// TestTerminalPositionRejected asserts the no-moves mapping: a finished game
// cannot be searched.
func TestTerminalPositionRejected(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	// Child indices walking X to a top-row win (cells 0,3,1,4,2): the
	// position after the last move is terminal.
	url := fmt.Sprintf("%s/bestmove?game=ttt&moves=%s&depth=3", ts.URL, "0,2,0,1,0")
	getJSON(t, client, url, http.StatusUnprocessableEntity, nil)
}
