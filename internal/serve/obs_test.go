package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ertree/internal/obs"
)

// obsTestServer builds a server with the self-monitor enabled at a fast
// sampling interval and guarantees its sampler goroutine is stopped.
func obsTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.ObsSample == 0 {
		cfg.ObsSample = 10 * time.Millisecond
	}
	srv := New(cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// pollObsTotals polls /debug/obs until the given anomaly kind has fired (or
// the deadline passes) and returns the final report.
func pollObsTotals(t *testing.T, client *http.Client, base, kind string) obsReportWire {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var rep obsReportWire
		getJSON(t, client, base+"/debug/obs", http.StatusOK, &rep)
		if rep.Totals[kind] >= 1 {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatalf("no %q anomaly within deadline; totals=%v detectors=%+v",
				kind, rep.Totals, rep.Detectors)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// obsReportWire decodes the /debug/obs JSON from the client side, proving the
// wire shape erload and operators consume.
type obsReportWire struct {
	Enabled      bool             `json:"enabled"`
	AnomalyTotal int64            `json:"anomaly_total"`
	Totals       map[string]int64 `json:"totals"`
	Samples      []struct {
		Sessions int64 `json:"sessions"`
		ShedFull int64 `json:"shed_full"`
	} `json:"samples"`
	Detectors []struct {
		Name  string `json:"name"`
		Fires int64  `json:"fires"`
	} `json:"detectors"`
	Anomalies []struct {
		ID        int64  `json:"id"`
		Kind      string `json:"kind"`
		Detail    string `json:"detail"`
		ProfileID int64  `json:"profile_id"`
	} `json:"anomalies"`
	Profiles []struct {
		ID        int64  `json:"id"`
		Kind      string `json:"kind"`
		Goroutine int    `json:"goroutine_bytes"`
		URL       string `json:"url"`
	} `json:"profiles"`
}

// TestDebugObsDisabled: without ObsSample the endpoint reports enabled=false
// (so pollers can tell "no anomalies" from "nobody watching") and /healthz
// carries a zero anomaly count.
func TestDebugObsDisabled(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	client := &http.Client{Timeout: 5 * time.Second}
	var rep obsReportWire
	getJSON(t, client, ts.URL+"/debug/obs", http.StatusOK, &rep)
	if rep.Enabled {
		t.Fatalf("obs reports enabled on a server built without it: %+v", rep)
	}
	var h healthzJSON
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Anomalies != 0 {
		t.Fatalf("healthz anomalies = %d with obs disabled", h.Anomalies)
	}
}

// TestDebugObsRingSamples: the sampler fills the ring with real gauge values
// — after one session the cumulative session counter shows up in the dump.
func TestDebugObsRingSamples(t *testing.T) {
	_, ts := obsTestServer(t, Config{Workers: 1, SerialDepth: 4, MaxConcurrent: 2, TableBits: 12})
	client := &http.Client{Timeout: 10 * time.Second}
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=2000", http.StatusOK, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		var rep obsReportWire
		getJSON(t, client, ts.URL+"/debug/obs", http.StatusOK, &rep)
		if rep.Enabled && len(rep.Samples) > 0 && rep.Samples[len(rep.Samples)-1].Sessions >= 1 {
			if len(rep.Detectors) != 5 {
				t.Fatalf("detector states = %+v, want the 5 defaults", rep.Detectors)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never appeared in the sample ring: %+v", rep)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAnomalyInjectionShedSpike drives the admission layer into a shed spike
// (capacity 1, no queue, a burst of distinct requests) and asserts the whole
// detection pipeline: the shed-spike anomaly fires, obs_anomaly_total lands
// on /metrics, /healthz counts it, and the auto-captured goroutine profile
// downloads from /debug/obs/profiles/<id>.
func TestAnomalyInjectionShedSpike(t *testing.T) {
	_, ts := obsTestServer(t, Config{
		Workers: 1, SerialDepth: 4, MaxConcurrent: 1, CacheSize: 0,
	})
	client := &http.Client{Timeout: 10 * time.Second}

	// One slow search owns the single slot; 30 distinct requests behind it
	// shed immediately (no queue configured).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := client.Get(ts.URL + "/bestmove?game=othello&depth=12&budget_ms=1500")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the leader take the slot
	for i := 0; i < 30; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/bestmove?game=connect4&moves=%d,%d&depth=10&budget_ms=500",
			ts.URL, i%7, (i/7)%7))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	rep := pollObsTotals(t, client, ts.URL, obs.KindShedSpike)
	wg.Wait()

	// The counter is on /metrics.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `obs_anomaly_total{kind="shed-spike"}`) {
		t.Fatalf("/metrics missing obs_anomaly_total{kind=\"shed-spike\"}:\n%s", body)
	}

	// /healthz surfaces the count for load balancers.
	var h healthzJSON
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Anomalies < 1 {
		t.Fatalf("healthz anomalies = %d after a detected shed spike", h.Anomalies)
	}

	// The anomaly retained a downloadable goroutine profile.
	var anom struct{ ID, ProfileID int64 }
	for _, a := range rep.Anomalies {
		if a.Kind == obs.KindShedSpike {
			anom.ID, anom.ProfileID = a.ID, a.ProfileID
		}
	}
	if anom.ProfileID == 0 {
		t.Fatalf("shed-spike anomaly carries no profile id: %+v", rep.Anomalies)
	}
	purl := fmt.Sprintf("%s/debug/obs/profiles/%d?type=goroutine", ts.URL, anom.ProfileID)
	presp, err := client.Get(purl)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || len(pb) == 0 {
		t.Fatalf("GET %s: status %d, %d bytes — want a retained pprof profile", purl, presp.StatusCode, len(pb))
	}
	if presp.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("profile content type %q", presp.Header.Get("Content-Type"))
	}

	// Unknown captures 404 with a JSON error.
	presp, err = client.Get(ts.URL + "/debug/obs/profiles/999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown profile id: status %d, want 404", presp.StatusCode)
	}
}

// TestAnomalyInjectionProbeStorm drives mtdf traffic against a monitor tuned
// so any probing looks like a storm, proving the probes/iteration pipeline:
// engine gauges → sample ring → detector → counter.
func TestAnomalyInjectionProbeStorm(t *testing.T) {
	_, ts := obsTestServer(t, Config{
		Workers: 1, SerialDepth: 4, MaxConcurrent: 2, TableBits: 14, CacheSize: 0,
		ObsDetectors: []obs.Detector{&obs.ProbeStorm{MaxPerIteration: 0.5, MinIterations: 2}},
	})
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 3; i++ {
		getJSON(t, client,
			fmt.Sprintf("%s/bestmove?game=connect4&moves=%d&depth=6&budget_ms=2000&driver=mtdf", ts.URL, i),
			http.StatusOK, nil)
	}
	rep := pollObsTotals(t, client, ts.URL, obs.KindProbeStorm)
	if rep.AnomalyTotal < 1 {
		t.Fatalf("anomaly_total = %d", rep.AnomalyTotal)
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `obs_anomaly_total{kind="probe-storm"}`) {
		t.Fatalf("/metrics missing obs_anomaly_total{kind=\"probe-storm\"}")
	}
}

// TestHealthzTTSection: with tables enabled /healthz carries the tt summary
// (impl, fill, hit_rate, generation) a balancer needs to spot degradation.
func TestHealthzTTSection(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, SerialDepth: 4, MaxConcurrent: 2, TableBits: 12})
	client := &http.Client{Timeout: 10 * time.Second}
	getJSON(t, client, ts.URL+"/bestmove?game=connect4&depth=6&budget_ms=2000", http.StatusOK, nil)
	var h struct {
		healthzJSON
		TT *healthzTTJSON `json:"tt"`
	}
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, &h)
	if h.TT == nil {
		t.Fatal("healthz has no tt section with TableBits set")
	}
	if h.TT.Impl == "" || h.TT.Len <= 0 {
		t.Fatalf("tt section incomplete: %+v", h.TT)
	}
	if h.TT.Generation < 1 {
		t.Fatalf("tt generation %d after an admitted session, want >= 1", h.TT.Generation)
	}
	if h.TT.HitRate < 0 || h.TT.HitRate > 1 {
		t.Fatalf("tt hit rate out of range: %v", h.TT.HitRate)
	}
	// Without tables the section is omitted entirely.
	ts2 := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	var h2 struct {
		TT *healthzTTJSON `json:"tt"`
	}
	getJSON(t, client, ts2.URL+"/healthz", http.StatusOK, &h2)
	if h2.TT != nil {
		t.Fatalf("tt section present without tables: %+v", h2.TT)
	}
}

// TestAccessLogBackendDriverAttribution: every access-log line names the
// backend and driver that served the request — per-request overrides where
// given, the server defaults everywhere else.
func TestAccessLogBackendDriverAttribution(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &logBuf, mu: &mu}, nil))
	ts := testServer(t, Config{
		Workers: 1, SerialDepth: 4, MaxConcurrent: 2, TableBits: 12,
		Backend: "er", Driver: "aspiration", Logger: logger,
	})
	client := &http.Client{Timeout: 10 * time.Second}
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=3&backend=serial&driver=mtdf&budget_ms=2000",
		http.StatusOK, nil)
	getJSON(t, client, ts.URL+"/healthz", http.StatusOK, nil)

	mu.Lock()
	out := logBuf.String()
	mu.Unlock()
	var bestmoveLine, healthzLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "path=/bestmove") {
			bestmoveLine = line
		}
		if strings.Contains(line, "path=/healthz") {
			healthzLine = line
		}
	}
	if bestmoveLine == "" || healthzLine == "" {
		t.Fatalf("missing access-log lines:\n%s", out)
	}
	if !strings.Contains(bestmoveLine, "backend=serial") || !strings.Contains(bestmoveLine, "driver=mtdf") {
		t.Fatalf("bestmove line lacks override attribution: %s", bestmoveLine)
	}
	if !strings.Contains(healthzLine, "backend=er") || !strings.Contains(healthzLine, "driver=aspiration") {
		t.Fatalf("healthz line lacks default attribution: %s", healthzLine)
	}
}

// syncWriter serializes concurrent slog writes into a shared buffer.
type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
