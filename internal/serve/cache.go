package serve

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// answerCache is the position-keyed single-flight result cache of /bestmove
// and /analyze: duplicate concurrent requests for the same analysis coalesce
// onto one engine search (the first request leads, the rest wait for its
// answer), and completed answers are retained in a bounded LRU so repeat
// requests skip the engine entirely.
//
// The cache key is every request parameter that changes the response body —
// game, moves, depth, budget, backend, driver, and whether iterations are
// included — so two requests share a flight only when either answer could
// serve both.
// Only analyses that reached their full requested depth are retained: a
// deadline-cut answer depends on how loaded the server was, not just on the
// request, and must not shadow the deeper answer a retry could earn. Errors
// are delivered to the flight's waiters (they asked the same question under
// the same budget) but never cached.
type answerCache struct {
	mu       sync.Mutex
	inflight map[string]*cacheFlight
	byKey    map[string]*list.Element
	lru      *list.List // front = most recently used; values are *cacheItem
	capacity int

	hits      atomic.Int64 // served from the completed-answer LRU
	misses    atomic.Int64 // led a new search
	coalesced atomic.Int64 // waited on another request's search
	stores    atomic.Int64 // completed answers retained
	evictions atomic.Int64 // LRU entries dropped for capacity
}

// cacheFlight is one in-progress search shared by every coalesced request.
// The leader closes done after filling out or err; waiters read both only
// after done is closed.
type cacheFlight struct {
	done chan struct{}
	out  analysisJSON
	err  error
	code int // HTTP status accompanying err
}

type cacheItem struct {
	key string
	out analysisJSON
}

// newAnswerCache creates a cache retaining up to capacity completed answers.
// capacity <= 0 disables the cache entirely (newAnswerCache returns nil, and
// a nil *answerCache serves nothing and coalesces nothing).
func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		return nil
	}
	return &answerCache{
		inflight: make(map[string]*cacheFlight),
		byKey:    make(map[string]*list.Element),
		lru:      list.New(),
		capacity: capacity,
	}
}

// answerKey builds the cache key from everything that shapes the response.
func answerKey(game, moves string, depth int, budgetMS int64, backend, driver string, includeIterations bool) string {
	var b strings.Builder
	b.Grow(len(game) + len(moves) + len(backend) + len(driver) + 32)
	b.WriteString(game)
	b.WriteByte('|')
	b.WriteString(moves)
	b.WriteByte('|')
	writeInt(&b, int64(depth))
	b.WriteByte('|')
	writeInt(&b, budgetMS)
	b.WriteByte('|')
	b.WriteString(backend)
	b.WriteByte('|')
	b.WriteString(driver)
	if includeIterations {
		b.WriteString("|iters")
	}
	return b.String()
}

func writeInt(b *strings.Builder, n int64) {
	if n < 0 {
		b.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	b.Write(buf[i:])
}

// get serves key from the completed-answer LRU, refreshing its recency.
func (c *answerCache) get(key string) (analysisJSON, bool) {
	if c == nil {
		return analysisJSON{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return analysisJSON{}, false
	}
	c.lru.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheItem).out, true
}

// join attaches the caller to key's flight. leader reports that the caller
// must run the search and settle the returned flight; otherwise the caller
// waits on flight.done (or its own context) and reads the shared answer.
func (c *answerCache) join(key string) (f *cacheFlight, leader bool) {
	if c == nil {
		return nil, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.inflight[key]; ok {
		c.coalesced.Add(1)
		return f, false
	}
	f = &cacheFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses.Add(1)
	return f, true
}

// settle publishes the leader's outcome to key's waiters and, for a
// successful completed analysis, retains the answer in the LRU.
func (c *answerCache) settle(key string, f *cacheFlight, out analysisJSON, err error, code int) {
	if c == nil {
		return
	}
	f.out, f.err, f.code = out, err, code
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil && out.Completed {
		if el, ok := c.byKey[key]; ok {
			el.Value.(*cacheItem).out = out
			c.lru.MoveToFront(el)
		} else {
			c.byKey[key] = c.lru.PushFront(&cacheItem{key: key, out: out})
			c.stores.Add(1)
			for c.lru.Len() > c.capacity {
				last := c.lru.Back()
				delete(c.byKey, last.Value.(*cacheItem).key)
				c.lru.Remove(last)
				c.evictions.Add(1)
			}
		}
	}
	c.mu.Unlock()
	close(f.done)
}

// size returns the number of retained answers.
func (c *answerCache) size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// answerCacheStats is the /stats view of the cache. HitRate is
// hits/(hits+misses) — the fraction of cacheable requests answered without a
// search; coalesced waiters are counted separately because they also skipped
// a search without being LRU hits.
type answerCacheStats struct {
	Enabled   bool    `json:"enabled"`
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hit_rate"`
	Coalesced int64   `json:"coalesced"`
	Stores    int64   `json:"stores"`
	Evictions int64   `json:"evictions"`
}

func (c *answerCache) stats() answerCacheStats {
	if c == nil {
		return answerCacheStats{}
	}
	st := answerCacheStats{
		Enabled:   true,
		Capacity:  c.capacity,
		Size:      c.size(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits) / float64(lookups)
	}
	return st
}
