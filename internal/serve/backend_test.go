package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestBackendPerRequest drives one position through each backend via the
// ?backend= parameter and checks the responses agree and are attributed to
// the backend that served them, in both the response body and /stats.
func TestBackendPerRequest(t *testing.T) {
	ts := testServer(t, Config{Workers: 2, SerialDepth: 2, TableBits: 16, MaxConcurrent: 2})
	client := &http.Client{Timeout: 30 * time.Second}

	values := map[string]int{}
	for _, be := range []string{"er", "serial", "lazysmp"} {
		var an analysisJSON
		getJSON(t, client,
			ts.URL+"/bestmove?game=connect4&moves=3,3&depth=6&budget_ms=25000&backend="+be,
			http.StatusOK, &an)
		if an.Backend != be {
			t.Fatalf("response attributes backend %q, requested %q", an.Backend, be)
		}
		if !an.Completed {
			t.Fatalf("backend %s did not complete: %+v", be, an)
		}
		values[be] = an.Value
	}
	for be, v := range values {
		if v != values["er"] {
			t.Fatalf("backend %s found value %d, er found %d", be, v, values["er"])
		}
	}

	// No backend parameter: the server default (er) serves and is named.
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000", http.StatusOK, &an)
	if an.Backend != "er" {
		t.Fatalf("default backend %q, want er", an.Backend)
	}

	// /stats attributes the mixed traffic per backend.
	var st statsJSON
	getJSON(t, client, ts.URL+"/stats", http.StatusOK, &st)
	c4 := st.Games["connect4"]
	if c4.BackendSessions["er"] != 1 || c4.BackendSessions["serial"] != 1 || c4.BackendSessions["lazysmp"] != 1 {
		t.Fatalf("connect4 backend attribution wrong: %+v", c4.BackendSessions)
	}
	if c4.Backend != "er" {
		t.Fatalf("engine default backend %q in stats, want er", c4.Backend)
	}
}

// TestBackendValidation: an unknown ?backend= is a 400 naming the valid
// options — never a silent fallback to the default.
func TestBackendValidation(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	resp, err := http.Get(ts.URL + "/bestmove?game=ttt&depth=3&backend=alphago")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e httpError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"alphago", "er", "serial", "lazysmp"} {
		if !strings.Contains(e.Error, want) {
			t.Fatalf("400 body %q does not mention %q", e.Error, want)
		}
	}
}

// TestBackendMetricsLabel: mixed-backend traffic shows up in /metrics under
// engine_backend_sessions_total with the backend label.
func TestBackendMetricsLabel(t *testing.T) {
	ts := testServer(t, Config{Workers: 1, TableBits: 12, MaxConcurrent: 1})
	client := &http.Client{Timeout: 30 * time.Second}
	var an analysisJSON
	getJSON(t, client, ts.URL+"/bestmove?game=ttt&depth=4&budget_ms=25000&backend=lazysmp", http.StatusOK, &an)
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if body := string(raw); !strings.Contains(body, `engine_backend_sessions_total{game="ttt",backend="lazysmp"} 1`) {
		t.Fatalf("metrics missing backend-labeled session counter:\n%s", body)
	}
}
