// Package backend defines the SearchBackend seam: one fixed-depth,
// fail-soft, cancellable search of a position, behind a small interface so
// drivers (the iterative-deepening engine, the CLI, the benchmarks) can swap
// the search scheduler without knowing how the tree is walked.
//
// Three backends register here or in sibling packages:
//
//   - "er":      the paper's parallel ER scheduler (internal/core) driven
//     move-by-move at the root with fail-soft alpha raising — the scheme
//     this repository reproduces.
//   - "serial":  single-threaded scout/PVS over the shared transposition
//     table — the one-processor reference every parallel curve is divided
//     by.
//   - "lazysmp": independent iterative-deepening workers sharing only the
//     transposition table (internal/lazysmp) — the Crafty/Lazy-SMP lineage
//     the paper never got to compare against.
//
// The contract every backend honors: Search(Request) returns the fail-soft
// value of Request.Pos at exactly Request.Depth under Request.Window (a
// value inside the window is the exact depth-limited negamax value, a value
// at or below Alpha is an upper bound, at or above Beta a lower bound), the
// root child index proving that value, and the node/TT/scheduler totals of
// the work performed. Cancellation via Request.Cancel aborts promptly with
// ErrAborted and partial totals.
package backend

import (
	"fmt"
	"sort"
	"sync"

	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/tt"
)

// ErrAborted reports a search cancelled before the root resolved. It is
// core.ErrAborted, so drivers handle every backend's cancellation alike.
var ErrAborted = core.ErrAborted

// Config fixes a backend's long-lived policy: worker count, move ordering,
// the shared transposition table, and the scheduler knobs of the parallel
// backends. Per-search inputs (position, depth, window, cancellation) travel
// in the Request instead, so one backend value serves concurrent searches.
type Config struct {
	// Workers is the parallelism available to the backend. The serial
	// backend ignores it; er runs Workers pop-loop goroutines; lazysmp runs
	// Workers independent deepening searchers.
	Workers int
	// SerialDepth is the remaining depth at or below which the er backend
	// searches subtrees serially (the ER work grain). Serial and lazysmp
	// search serially everywhere and ignore it.
	SerialDepth int
	// Order is the move-ordering policy; nil means natural order.
	Order game.Orderer
	// Table is the shared transposition table, or nil to search without
	// memory. All backends probe and store through the same keying policy,
	// so a table warmed by one backend answers the others. Any
	// tt.SharedTable implementation works (tt.NewSharedTable selects one by
	// name); New normalizes a typed-nil table to a nil interface.
	Table tt.SharedTable
	// DeeperHits accepts entries searched deeper than probed (Plaat-style
	// memory reuse): better reuse, weaker exact-depth semantics.
	DeeperHits bool

	// ER scheduler knobs (er backend only).
	ParallelRefutation bool // refute an e-node's children concurrently
	MultipleENodes     bool // keep offering additional e-children
	EarlyChoice        bool // pick an e-child before the last elder grandchild finishes
	SpecRank           core.SpecRank
	EagerSpec          bool
	Sharded            bool   // per-worker work-stealing problem heap
	StealSeed          uint64 // victim-rotation seed of the sharded heap
	ProfileLabels      bool   // run tasks under runtime/pprof labels
}

// Request is one search: a position to exactly Depth plies under a fail-soft
// Window, cancellable through Cancel.
type Request struct {
	Pos   game.Position
	Depth int
	// Window restricts the search. Use game.FullWindow() for the exact
	// value.
	Window game.Window
	// RootOrder, when non-nil, is the preferred order to try the root's
	// children in (indices into Pos.Children(), best candidate first).
	// Deepening drivers pass last iteration's ordering; backends may deviate
	// (lazysmp skews it per worker) but must still return a proving move.
	RootOrder []int
	// Cancel, when non-nil, aborts the search at the next cancellation
	// check; Search returns ErrAborted with the totals accumulated so far.
	Cancel <-chan struct{}
	// Hooks arms the er backend's per-worker core telemetry (spans, flight
	// recorder events). The serial and lazysmp backends do not run core
	// workers and ignore it; see DESIGN.md "Backends" for which telemetry
	// each backend populates.
	Hooks *core.Hooks
}

// Totals are the work counters a search accumulated, in the same taxonomy
// the engine and /metrics already aggregate. Backends leave fields they have
// no concept of at zero (serial/lazysmp never touch the problem heap, so
// SerialTasks, SpecPops, HeapOps, Steals stay zero there).
type Totals struct {
	Nodes int64 // tree nodes generated

	SerialTasks int64 // ER serial-subtree work units
	LeafTasks   int64 // frontier/terminal static evaluations
	SpecPops    int64 // speculative-queue pops
	Dropped     int64 // dead nodes discarded at pop time
	CutoffDrops int64 // nodes cut off at pop time
	HeapOps     int64 // problem-heap pushes + pops
	Steals      int64 // sharded-heap steals
	StealFails  int64 // steal sweeps that found nothing

	TTProbes  int64
	TTHits    int64
	TTStores  int64
	TTCutoffs int64 // searches answered by the table without searching
}

// Add folds o into t.
func (t *Totals) Add(o Totals) {
	t.Nodes += o.Nodes
	t.SerialTasks += o.SerialTasks
	t.LeafTasks += o.LeafTasks
	t.SpecPops += o.SpecPops
	t.Dropped += o.Dropped
	t.CutoffDrops += o.CutoffDrops
	t.HeapOps += o.HeapOps
	t.Steals += o.Steals
	t.StealFails += o.StealFails
	t.TTProbes += o.TTProbes
	t.TTHits += o.TTHits
	t.TTStores += o.TTStores
	t.TTCutoffs += o.TTCutoffs
}

// AddResult folds a core search result's counters into t.
func (t *Totals) AddResult(res core.Result) {
	t.Nodes += res.Stats.Generated
	t.SerialTasks += res.SerialTasks
	t.LeafTasks += res.LeafTasks
	t.SpecPops += res.SpecPops
	t.Dropped += res.Dropped
	t.CutoffDrops += res.CutoffDrops
	t.HeapOps += res.HeapOps
	t.Steals += res.Steals
	t.StealFails += res.StealFails
	t.TTProbes += res.TTProbes
	t.TTHits += res.TTHits
	t.TTStores += res.TTStores
	t.TTCutoffs += res.TTCutoffs
}

// Response reports one backend search.
type Response struct {
	// Value is the fail-soft result: exact inside the request window, an
	// upper bound at or below Alpha, a lower bound at or above Beta.
	Value game.Value
	// Move is the root child index (natural move order) proving Value, or
	// -1 when the position was terminal or searched at depth 0.
	Move int
	// Exact reports that Value lies strictly inside the request window.
	Exact bool
	// Scores holds the latest root-view score per child in natural order
	// (fail-soft bounds for refuted moves, game.NoValue for children the
	// search never visited). Deepening drivers use it to order the next
	// iteration. Nil when the backend has nothing useful to report.
	Scores []game.Value
	// Totals are the accumulated work counters, summed across every worker
	// the backend ran (for lazysmp that is total work, not critical path).
	Totals Totals
	// Workers is the parallelism actually used.
	Workers int
}

// Backend is one search scheduler behind the seam.
type Backend interface {
	// Name returns the backend's registered name.
	Name() string
	// Search runs one fixed-depth search. Safe for concurrent use.
	Search(req Request) (Response, error)
}

// Factory builds a backend from a config.
type Factory func(Config) Backend

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a backend constructible by name. Duplicate registration
// panics, by design (same discipline as telemetry families): two packages
// claiming one name is a wiring bug.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: %q registered twice", name))
	}
	registry[name] = f
}

// New builds the named backend, or an error naming the registered set so
// callers can surface a helpful message (erserve's 400, ertree's usage
// error).
func New(name string, cfg Config) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (registered: %s)", name, NamesString())
	}
	// Normalize a typed-nil table (a nil *tt.Shared stored in the interface
	// field) to a plain nil interface, so backends can test cfg.Table == nil.
	if tt.IsNil(cfg.Table) {
		cfg.Table = nil
	}
	return f(cfg), nil
}

// Valid reports whether name is a registered backend.
func Valid(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesString returns the registered names joined for error messages.
func NamesString() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// ChildSearcher evaluates one root child to the given remaining depth under
// a fail-soft window (from the child's own point of view).
type ChildSearcher func(child game.Position, depth int, w game.Window) (game.Value, error)

// RootResult is the outcome of one fail-soft root loop.
type RootResult struct {
	// Value is the fail-soft root value, Move the natural child index proving
	// it (-1 if no child was searched).
	Value game.Value
	Move  int
	// Scores holds the root-view score per child in natural order;
	// game.NoValue marks children the loop never reached.
	Scores []game.Value
}

// RootScout drives the fail-soft root loop shared by every backend: children
// are tried in the given order under a running lower bound of the best score
// so far, so refuted moves cut quickly on a null-ish window while the best
// move's score stays exact within the request window. This is the loop the
// engine's sessions ran before the backend seam existed; keeping one copy
// here keeps the backends' root semantics identical (internal/lazysmp's
// deepening workers call it once per iteration).
func RootScout(kids []game.Position, depth int, w game.Window, order []int, search ChildSearcher) (RootResult, error) {
	r := RootResult{Move: -1, Value: -game.Inf, Scores: make([]game.Value, len(kids))}
	for i := range r.Scores {
		r.Scores[i] = game.NoValue
	}
	if order == nil {
		order = make([]int, len(kids))
		for i := range order {
			order[i] = i
		}
	}
	for _, idx := range order {
		a := w.Alpha
		if r.Value > a {
			a = r.Value
		}
		if a >= w.Beta {
			break // the window is closed: the search fails high
		}
		cw := game.Window{Alpha: -w.Beta, Beta: -a}
		v, err := search(kids[idx], depth-1, cw)
		if err != nil {
			return r, err
		}
		nv := -v
		r.Scores[idx] = nv
		if nv > r.Value || r.Move < 0 {
			r.Value, r.Move = nv, idx
		}
	}
	return r, nil
}

// ttPolicy is the child-level transposition keying every backend shares, so
// a table warmed by one backend (or an earlier deepening iteration) answers
// the others. In exact mode the key is salted with the depth, keeping one
// entry per (position, depth) so iterative deepening's per-depth results
// coexist; deeper-hits mode keys by position alone and accepts deeper
// entries (Plaat-style reuse).
type ttPolicy struct {
	table  tt.SharedTable
	deeper bool
}

// depthSalt decorrelates per-depth entries in exact mode.
const depthSalt = 0x9E3779B97F4A7C15

// probeChild probes the table for child at depth, narrowing w in place when
// the cached bound is useful. It reports (answer, true, ...) when the entry
// resolves the search outright, and always returns the store key and whether
// the position is hashable at all.
func (p ttPolicy) probeChild(child game.Position, depth int, w *game.Window, tot *Totals) (game.Value, bool, uint64, bool) {
	if tt.IsNil(p.table) {
		return 0, false, 0, false
	}
	h, ok := child.(tt.Hashable)
	if !ok {
		return 0, false, 0, false
	}
	key := h.Hash()
	probe := p.table.ProbeDeep
	if !p.deeper {
		key ^= uint64(depth) * depthSalt
		probe = p.table.Probe
	}
	tot.TTProbes++
	en, ok := probe(key, depth)
	if !ok {
		return 0, false, key, true
	}
	tot.TTHits++
	switch en.Bound {
	case tt.Exact:
		tot.TTCutoffs++
		return en.Value, true, key, true
	case tt.Lower:
		if en.Value >= w.Beta {
			tot.TTCutoffs++
			return en.Value, true, key, true
		}
		if en.Value > w.Alpha {
			w.Alpha = en.Value
		}
	case tt.Upper:
		if en.Value <= w.Alpha {
			tot.TTCutoffs++
			return en.Value, true, key, true
		}
		if en.Value < w.Beta {
			w.Beta = en.Value
		}
	}
	return 0, false, key, true
}

// storeChild records a fail-soft result classified against the window it was
// searched under.
func (p ttPolicy) storeChild(key uint64, depth int, v game.Value, w game.Window, tot *Totals) {
	tot.TTStores++
	store := p.table.Store
	if p.deeper {
		store = p.table.StoreDeep
	}
	switch {
	case v <= w.Alpha:
		store(key, depth, v, tt.Upper)
	case v >= w.Beta:
		store(key, depth, v, tt.Lower)
	default:
		store(key, depth, v, tt.Exact)
	}
}

// LeafResponse answers a request whose position is terminal or searched at
// depth zero: the static value, no move.
func LeafResponse(req Request) Response {
	v := req.Pos.Value()
	return Response{
		Value:   v,
		Move:    -1,
		Exact:   req.Window.Contains(v),
		Totals:  Totals{Nodes: 1, LeafTasks: 1},
		Workers: 1,
	}
}
