package backend

import (
	"ertree/internal/game"
	"ertree/internal/tt"
)

func init() { Register("serial", newSerial) }

// serialBackend is single-threaded scout/PVS over the shared transposition
// table: the first child of every node is searched with the full child
// window, later children are verified with a null window and re-searched
// only on an in-window fail-high. It is the one-processor reference the
// parallel backends are benchmarked against, and (being the cheapest
// cancellable TT search in the repository) the building block the lazysmp
// workers deepen with.
type serialBackend struct {
	cfg Config
}

func newSerial(cfg Config) Backend { return &serialBackend{cfg: cfg} }

func (b *serialBackend) Name() string { return "serial" }

func (b *serialBackend) Search(req Request) (Response, error) {
	kids := req.Pos.Children()
	if req.Depth < 1 || len(kids) == 0 {
		return LeafResponse(req), nil
	}
	var tot Totals
	sc := &TTScout{
		Order:      b.cfg.Order,
		Table:      b.cfg.Table,
		DeeperHits: b.cfg.DeeperHits,
		Cancel:     req.Cancel,
		Totals:     &tot,
	}
	r, err := RootScout(kids, req.Depth, req.Window, req.RootOrder, sc.Search)
	return Response{
		Value:   r.Value,
		Move:    r.Move,
		Exact:   err == nil && req.Window.Contains(r.Value),
		Scores:  r.Scores,
		Totals:  tot,
		Workers: 1,
	}, err
}

// TTScout is a cancellable fail-soft scout (PVS) searcher over a shared
// transposition table, exported so internal/lazysmp's deepening workers run
// the exact same node semantics as the serial backend. Every node that
// implements tt.Hashable is probed before expansion and its fail-soft result
// stored after, under the same keying policy as ttPolicy (depth-salted keys
// with equal-depth matching, or bare keys with depth-or-deeper matching in
// DeeperHits mode); with exact-depth matching the cached bounds keep every
// returned value the sound depth-limited negamax bound.
// Not safe for concurrent use; each worker owns one.
type TTScout struct {
	Order      game.Orderer
	Table      tt.SharedTable // nil (or typed nil) searches without memory
	DeeperHits bool
	Cancel     <-chan struct{}
	// Totals receives the node and table accounting. Must be non-nil.
	Totals *Totals

	steps int64 // cancellation-check pacing
}

// cancelCheckMask paces the Cancel poll: every 256 recursion entries, cheap
// enough to vanish in the noise, frequent enough that a deadline cut aborts
// within microseconds of real work.
const cancelCheckMask = 255

func (s *TTScout) checkCancel() error {
	if s.Cancel == nil {
		return nil
	}
	s.steps++
	if s.steps&cancelCheckMask != 0 {
		return nil
	}
	select {
	case <-s.Cancel:
		return ErrAborted
	default:
		return nil
	}
}

// Search returns the fail-soft value of pos at exactly depth under w.
func (s *TTScout) Search(pos game.Position, depth int, w game.Window) (game.Value, error) {
	return s.search(pos, depth, 0, w)
}

func (s *TTScout) search(pos game.Position, depth, ply int, w game.Window) (game.Value, error) {
	if err := s.checkCancel(); err != nil {
		return 0, err
	}
	if depth == 0 {
		s.Totals.LeafTasks++
		return pos.Value(), nil
	}
	var key uint64
	hashable := false
	if !tt.IsNil(s.Table) {
		if h, ok := pos.(tt.Hashable); ok {
			hashable = true
			key = h.Hash()
			probe := s.Table.ProbeDeep
			if !s.DeeperHits {
				// Same keying as ttPolicy: salt with depth so per-depth
				// entries coexist and a table warmed by one backend answers
				// the others.
				key ^= uint64(depth) * depthSalt
				probe = s.Table.Probe
			}
			s.Totals.TTProbes++
			if en, ok := probe(key, depth); ok {
				s.Totals.TTHits++
				switch en.Bound {
				case tt.Exact:
					s.Totals.TTCutoffs++
					return en.Value, nil
				case tt.Lower:
					if en.Value >= w.Beta {
						s.Totals.TTCutoffs++
						return en.Value, nil
					}
					if en.Value > w.Alpha {
						w.Alpha = en.Value
					}
				case tt.Upper:
					if en.Value <= w.Alpha {
						s.Totals.TTCutoffs++
						return en.Value, nil
					}
					if en.Value < w.Beta {
						w.Beta = en.Value
					}
				}
			}
		}
	}
	kids := pos.Children()
	if len(kids) == 0 {
		s.Totals.LeafTasks++
		return pos.Value(), nil
	}
	if len(kids) > 1 && s.Order != nil {
		kids = s.Order.Order(kids, ply)
	}
	s.Totals.Nodes += int64(len(kids))
	m := -game.Inf
	for i, k := range kids {
		a := w.Alpha
		if m > a {
			a = m
		}
		var v game.Value
		var err error
		if i == 0 {
			v, err = s.search(k, depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -a})
			v = -v
		} else {
			// Scout: can this child beat the best so far? Null window.
			v, err = s.search(k, depth-1, ply+1, game.Window{Alpha: -(a + 1), Beta: -a})
			v = -v
			if err == nil && v > a && v < w.Beta {
				// In-window fail-high: re-search with the proper window for
				// the exact (fail-soft) value.
				var v2 game.Value
				v2, err = s.search(k, depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -a})
				v = -v2
			}
		}
		if err != nil {
			return 0, err
		}
		if v > m {
			m = v
		}
		if m >= w.Beta {
			break
		}
	}
	if hashable {
		// Classify against the (possibly table-narrowed) window actually
		// searched; with equal-depth matching the narrowed bounds keep the
		// classification sound.
		store := s.Table.Store
		if s.DeeperHits {
			store = s.Table.StoreDeep
		}
		s.Totals.TTStores++
		switch {
		case m <= w.Alpha:
			store(key, depth, m, tt.Upper)
		case m >= w.Beta:
			store(key, depth, m, tt.Lower)
		default:
			store(key, depth, m, tt.Exact)
		}
	}
	return m, nil
}
