package backend

import (
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/tt"
)

func init() { Register("er", newER) }

// erBackend is the paper's scheduler behind the seam: a fail-soft root loop
// whose child subtrees are searched by parallel ER (internal/core), with the
// shared table probed at the child level before a single core worker starts
// and the fail-soft bound stored after. This is the search the engine's
// sessions ran before the SearchBackend extraction, behavior-identical.
type erBackend struct {
	cfg Config
}

func newER(cfg Config) Backend {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &erBackend{cfg: cfg}
}

func (b *erBackend) Name() string { return "er" }

// coreTable returns the shared table as the prober handed to core.Search, or
// a nil interface when the backend runs without a table (a typed-nil table
// wrapped in tt.Prober would read as attached).
func (b *erBackend) coreTable() tt.Prober {
	if tt.IsNil(b.cfg.Table) {
		return nil
	}
	return b.cfg.Table
}

// options assembles the per-child core search options; w is the (possibly
// table-narrowed) fail-soft window of that child search.
func (b *erBackend) options(w *game.Window, req Request) core.Options {
	return core.Options{
		Workers:            b.cfg.Workers,
		SerialDepth:        b.cfg.SerialDepth,
		Order:              b.cfg.Order,
		ParallelRefutation: b.cfg.ParallelRefutation,
		MultipleENodes:     b.cfg.MultipleENodes,
		EarlyChoice:        b.cfg.EarlyChoice,
		SpecRank:           b.cfg.SpecRank,
		EagerSpec:          b.cfg.EagerSpec,
		Sharded:            b.cfg.Sharded,
		StealSeed:          b.cfg.StealSeed,
		ProfileLabels:      b.cfg.ProfileLabels,
		RootWindow:         w,
		Table:              b.coreTable(),
		Cancel:             req.Cancel,
		Hooks:              req.Hooks,
	}
}

func (b *erBackend) Search(req Request) (Response, error) {
	kids := req.Pos.Children()
	if req.Depth < 1 || len(kids) == 0 {
		return LeafResponse(req), nil
	}
	var tot Totals
	policy := ttPolicy{table: b.cfg.Table, deeper: b.cfg.DeeperHits}
	search := func(child game.Position, depth int, w game.Window) (game.Value, error) {
		if depth == 0 {
			tot.Nodes++
			tot.LeafTasks++
			return child.Value(), nil
		}
		v, done, key, hashable := policy.probeChild(child, depth, &w, &tot)
		if done {
			return v, nil
		}
		res, err := core.Search(child, depth, b.options(&w, req))
		tot.AddResult(res)
		if err != nil {
			return 0, err
		}
		if hashable {
			policy.storeChild(key, depth, res.Value, w, &tot)
		}
		return res.Value, nil
	}
	r, err := RootScout(kids, req.Depth, req.Window, req.RootOrder, search)
	return Response{
		Value:   r.Value,
		Move:    r.Move,
		Exact:   err == nil && req.Window.Contains(r.Value),
		Scores:  r.Scores,
		Totals:  tot,
		Workers: b.cfg.Workers,
	}, err
}
