package backend_test

import (
	"fmt"
	"strings"
	"testing"

	"ertree/internal/backend"
	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/tt"
	"ertree/internal/ttt"

	// The lazysmp backend registers itself on import, like callers do.
	_ "ertree/internal/lazysmp"
)

// negamax is the reference oracle every backend must agree with.
func negamax(pos game.Position, depth int) game.Value {
	kids := pos.Children()
	if depth == 0 || len(kids) == 0 {
		return pos.Value()
	}
	best := -game.Inf
	for _, k := range kids {
		if v := -negamax(k, depth-1); v > best {
			best = v
		}
	}
	return best
}

// invariancePosition is one (game, position, depth) case of the metamorphic
// suite.
type invariancePosition struct {
	name  string
	pos   game.Position
	depth int
}

func invariancePositions() []invariancePosition {
	tr := &randtree.Tree{Seed: 17, Degree: 4, Depth: 7, ValueRange: 10000}
	c4 := connect4.New().MustDrop(3, 2)
	return []invariancePosition{
		{"ttt/start", ttt.New(), 6},
		{"connect4/after-3-2", c4, 6},
		{"othello/start", othello.Start(), 4},
		{"randtree/7x4", tr.Root(), 6},
	}
}

// TestBackendInvariance is the metamorphic contract of the backend seam: the
// same position searched full-window by serial, er, and lazysmp at P ∈
// {1,2,4} must produce the identical exact value, and each reported move
// must prove that value against the negamax oracle. Run under -race this
// also exercises the lazysmp workers' shared-table traffic.
func TestBackendInvariance(t *testing.T) {
	for _, tc := range invariancePositions() {
		want := negamax(tc.pos, tc.depth)
		kids := tc.pos.Children()
		for _, name := range backend.Names() {
			for _, p := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%s/p%d", tc.name, name, p), func(t *testing.T) {
					be, err := backend.New(name, backend.Config{
						Workers:     p,
						SerialDepth: 2,
						Table:       tt.NewDefault(14, 0),
					})
					if err != nil {
						t.Fatal(err)
					}
					resp, err := be.Search(backend.Request{
						Pos:    tc.pos,
						Depth:  tc.depth,
						Window: game.FullWindow(),
					})
					if err != nil {
						t.Fatal(err)
					}
					if resp.Value != want {
						t.Fatalf("value %d, oracle %d", resp.Value, want)
					}
					if !resp.Exact {
						t.Fatal("full-window search not reported exact")
					}
					if resp.Move < 0 || resp.Move >= len(kids) {
						t.Fatalf("move %d out of range (%d children)", resp.Move, len(kids))
					}
					if got := -negamax(kids[resp.Move], tc.depth-1); got != want {
						t.Fatalf("move %d does not prove the value: child value %d, want %d",
							resp.Move, got, want)
					}
					if resp.Totals.Nodes == 0 {
						t.Fatal("search reported zero nodes")
					}
				})
			}
		}
	}
}

// TestBackendInvarianceNoTable repeats the value check without a
// transposition table, so a table-layer bug cannot mask a scheduler bug (and
// vice versa).
func TestBackendInvarianceNoTable(t *testing.T) {
	tc := invariancePosition{"randtree", (&randtree.Tree{Seed: 99, Degree: 4, Depth: 6, ValueRange: 5000}).Root(), 5}
	want := negamax(tc.pos, tc.depth)
	for _, name := range backend.Names() {
		be, err := backend.New(name, backend.Config{Workers: 2, SerialDepth: 2})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := be.Search(backend.Request{Pos: tc.pos, Depth: tc.depth, Window: game.FullWindow()})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Value != want {
			t.Fatalf("%s without table: value %d, oracle %d", name, resp.Value, want)
		}
	}
}

// TestBackendFailSoftWindows checks the fail-soft contract on every backend:
// under a window that excludes the true value, the returned value must be a
// correct bound on the oracle's value (upper when failing low, lower when
// failing high), and Exact must be false.
func TestBackendFailSoftWindows(t *testing.T) {
	tr := &randtree.Tree{Seed: 5, Degree: 4, Depth: 6, ValueRange: 10000}
	pos, depth := tr.Root(), 5
	truth := negamax(pos, depth)
	for _, name := range backend.Names() {
		be, err := backend.New(name, backend.Config{Workers: 2, SerialDepth: 2, Table: tt.NewDefault(12, 0)})
		if err != nil {
			t.Fatal(err)
		}
		// A window strictly above the true value: the search must fail low
		// with an upper bound on the truth.
		low, err := be.Search(backend.Request{
			Pos: pos, Depth: depth,
			Window: game.Window{Alpha: truth + 10, Beta: truth + 20},
		})
		if err != nil {
			t.Fatalf("%s fail-low: %v", name, err)
		}
		if low.Exact {
			t.Fatalf("%s: fail-low search claims exactness", name)
		}
		if low.Value < truth {
			t.Fatalf("%s fail-low: value %d is not an upper bound on %d", name, low.Value, truth)
		}
		// A window strictly below: fail high with a lower bound.
		high, err := be.Search(backend.Request{
			Pos: pos, Depth: depth,
			Window: game.Window{Alpha: truth - 20, Beta: truth - 10},
		})
		if err != nil {
			t.Fatalf("%s fail-high: %v", name, err)
		}
		if high.Exact {
			t.Fatalf("%s: fail-high search claims exactness", name)
		}
		if high.Value > truth {
			t.Fatalf("%s fail-high: value %d is not a lower bound on %d", name, high.Value, truth)
		}
	}
}

// TestRegistryErrors pins the validation surface servers build on: unknown
// names are rejected with a message naming the registered set, and the set
// itself contains the three shipped backends.
func TestRegistryErrors(t *testing.T) {
	if _, err := backend.New("nosuch", backend.Config{}); err == nil {
		t.Fatal("unknown backend constructed")
	} else if got := err.Error(); !strings.Contains(got, "er") || !strings.Contains(got, "serial") || !strings.Contains(got, "lazysmp") {
		t.Fatalf("error does not name the registered set: %q", got)
	}
	for _, name := range []string{"er", "serial", "lazysmp"} {
		if !backend.Valid(name) {
			t.Fatalf("backend %q not registered", name)
		}
	}
	if backend.Valid("nosuch") {
		t.Fatal("Valid accepted an unknown name")
	}
}
