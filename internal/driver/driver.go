// Package driver defines the root-driver seam of the deepening engine: the
// policy that turns one fixed-depth, fail-soft root search primitive into an
// exact root value for that depth. The engine's sessions run one driver
// resolution per deepening iteration; which windows the driver asks for — one
// wide aspiration window, or a converging sequence of null-window probes
// against the shared transposition table — is the whole difference between
// the classic wide-window deepening loop and Plaat et al.'s MTD(f) family.
//
// Three drivers register here:
//
//   - "aspiration": the engine's historical behavior — search a window around
//     the previous iteration's value, reopen the failed half on a fail-low or
//     fail-high, repeat until the value is interior. One or two wide
//     searches per iteration.
//   - "mtdf": MTD(f) — zero-window probes seeded from the previous
//     iteration's value, each probe returning a fail-soft bound that narrows
//     a monotone [lower, upper] envelope, with bound bisection after a few
//     adjacent-step probes and a wide-window fallback when the probe budget
//     runs out (the Plaat pathology guard: an unstable table degrades to one
//     wide search, never an unbounded probe loop).
//   - "bns": the best-first/SSS*-equivalent mode — null-window probes
//     descending from +Inf, so successive probes enumerate ever-tighter upper
//     bounds exactly the way SSS* expands its OPEN list (Plaat's MT-SSS*
//     equivalence). Included for the comparison table, not as a serving
//     default.
//
// The contract every driver honors: Resolve returns the exact depth-limited
// negamax value of the position the Search primitive searches, a root child
// index proving it, and the probe/re-search counts of the work spent. A
// driver never depends on the table being present or truthful for
// correctness — memory only makes the probes cheap.
package driver

import (
	"fmt"
	"sort"
	"sync"

	"ertree/internal/game"
)

// Search is the fixed-depth, fail-soft root search primitive a driver
// resolves through: it searches the session's position to the iteration's
// depth under w and returns the fail-soft root value (exact inside w, an
// upper bound at or below Alpha, a lower bound at or above Beta) plus the
// root child index proving it (-1 when no child was searched). Errors —
// cancellation, backend failure — abort the resolution.
type Search func(w game.Window) (move int, v game.Value, err error)

// Result reports one resolved iteration.
type Result struct {
	// Move is the root child index (natural move order) proving Value.
	Move int
	// Value is the exact depth-limited negamax value.
	Value game.Value
	// Researches counts wide-window searches beyond the first: aspiration
	// window reopenings, and the mtdf/bns probe-budget fallback search.
	Researches int
	// Probes counts null-window probes (mtdf/bns only; aspiration never
	// probes).
	Probes int
}

// Config fixes a driver's policy knobs. The zero value is usable.
type Config struct {
	// Delta is the aspiration half-window around the previous iteration's
	// value (aspiration driver only). Zero searches every iteration with a
	// full window.
	Delta game.Value
	// MaxProbes bounds the null-window probes mtdf and bns may spend per
	// iteration before falling back to one wide-window search. Zero means
	// DefaultMaxProbes.
	MaxProbes int
	// BisectAfter is how many adjacent-step probes mtdf tries before
	// switching to bound bisection (which converges in O(log range) probes
	// no matter how the value estimates jump around). Zero means
	// DefaultBisectAfter.
	BisectAfter int
}

// Default probe-policy knobs. MaxProbes is deliberately generous — with a
// consistent search the bisection regime converges in well under 40 probes on
// 31-bit values — so the fallback only fires on genuinely pathological
// (table-unstable) iterations.
const (
	DefaultMaxProbes   = 64
	DefaultBisectAfter = 4
)

// Default is the driver engines use when nothing selects one: the classic
// aspiration deepening loop, the behavior sessions had before drivers were
// selectable.
const Default = "aspiration"

// Driver resolves deepening iterations to exact root values.
type Driver interface {
	// Name returns the driver's registered name.
	Name() string
	// Resolve drives search (one fixed depth, already bound by the caller)
	// until the value is exact. prev is the previous iteration's exact value
	// — the aspiration center and the MTD(f) first guess — or game.NoValue
	// on the first iteration. Safe for concurrent use: a driver value holds
	// policy, never per-resolution state.
	Resolve(search Search, prev game.Value) (Result, error)
}

// Factory builds a driver from a config.
type Factory func(Config) Driver

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a driver constructible by name. Duplicate registration
// panics, by design (same discipline as the backend registry): two packages
// claiming one name is a wiring bug.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("driver: %q registered twice", name))
	}
	registry[name] = f
}

// New builds the named driver, or an error naming the registered set so
// callers can surface a helpful message (erserve's 400, ertree's usage
// error).
func New(name string, cfg Config) (Driver, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("driver: unknown driver %q (registered: %s)", name, NamesString())
	}
	return f(cfg), nil
}

// Valid reports whether name is a registered driver.
func Valid(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered driver names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesString returns the registered names joined for error messages.
func NamesString() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
