package driver

import "ertree/internal/game"

func init() { Register("aspiration", newAspiration) }

// aspiration is the classic wide-window deepening policy: search a window of
// ±Delta around the previous iteration's value; on a fail-low reopen the
// lower half, on a fail-high the upper half, and repeat until the value is
// interior. Each search is wide, so the fail-soft result it returns is
// usually exact on the first try and at worst after one re-search per side.
type aspiration struct {
	delta game.Value
}

func newAspiration(cfg Config) Driver { return &aspiration{delta: cfg.Delta} }

func (d *aspiration) Name() string { return "aspiration" }

func (d *aspiration) Resolve(search Search, prev game.Value) (Result, error) {
	r := Result{Move: -1}
	w := game.FullWindow()
	if d.delta > 0 && prev != game.NoValue {
		w = game.Window{Alpha: prev - d.delta, Beta: prev + d.delta}
	}
	for {
		move, v, err := search(w)
		if err != nil {
			return r, err
		}
		if v <= w.Alpha && w.Alpha > -game.Inf {
			// Fail low: true value <= v; reopen the lower half.
			r.Researches++
			w = game.Window{Alpha: -game.Inf, Beta: v + 1}
			continue
		}
		if v >= w.Beta && w.Beta < game.Inf {
			// Fail high: true value >= v; reopen the upper half.
			r.Researches++
			w = game.Window{Alpha: v - 1, Beta: game.Inf}
			continue
		}
		r.Move, r.Value = move, v
		return r, nil
	}
}
