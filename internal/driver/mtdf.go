package driver

import "ertree/internal/game"

func init() {
	Register("mtdf", newMTDF)
	Register("bns", newBNS)
}

// mtdf is Plaat et al.'s MTD(f): only null-window probes, each one a cheap
// fail-soft test "is the value at least γ?", converging a monotone
// [lower, upper] envelope onto the exact value. The first guess is the
// previous iteration's value — which is why MTD(f) belongs to a deepening
// engine with a memory-rich transposition table: the probes keep re-visiting
// the same tree, and the table turns those re-visits into lookups.
//
// Two guards keep the pathological cases bounded. After bisectAfter
// adjacent-step probes (the classic "test next to the last result" step,
// which can creep one unit per probe when value estimates drift), the test
// point switches to bisection of the envelope, which converges in O(log
// range) probes no matter how the estimates jump. And when maxProbes is
// spent without convergence — the Plaat pathology: a table too small or too
// lossy to keep the probes' bounds stable — the driver abandons probing and
// runs one wide-window search, exact by construction. Termination never
// depends on the table.
type mtdf struct {
	maxProbes   int
	bisectAfter int
}

func newMTDF(cfg Config) Driver {
	d := &mtdf{maxProbes: cfg.MaxProbes, bisectAfter: cfg.BisectAfter}
	if d.maxProbes <= 0 {
		d.maxProbes = DefaultMaxProbes
	}
	if d.bisectAfter <= 0 {
		d.bisectAfter = DefaultBisectAfter
	}
	return d
}

func (d *mtdf) Name() string { return "mtdf" }

func (d *mtdf) Resolve(search Search, prev game.Value) (Result, error) {
	r := Result{Move: -1}
	g := prev
	if g == game.NoValue {
		g = 0 // no previous iteration: probe around the draw score first
	}
	lower, upper := -game.Inf, game.Inf
	for lower < upper {
		if r.Probes >= d.maxProbes {
			return wideFallback(r, search)
		}
		var gamma game.Value
		if r.Probes < d.bisectAfter {
			// Adjacent step: test at the last result, nudged inside the
			// envelope (g == lower means "test whether it is even better").
			gamma = g
			if gamma <= lower {
				gamma = lower + 1
			}
			if gamma > upper {
				gamma = upper
			}
		} else {
			gamma = bisect(lower, upper)
		}
		move, v, err := search(game.Window{Alpha: gamma - 1, Beta: gamma})
		if err != nil {
			return r, err
		}
		r.Probes++
		g = v
		if v >= gamma {
			// Fail high: v is a lower bound, and move witnesses it. γ > lower
			// always, so the envelope strictly shrinks on every probe — the
			// loop terminates even against an inconsistent table.
			if v > lower {
				lower = v
			}
			r.Move = move
		} else if v < upper {
			// Fail low: v is an upper bound. No move can prove an upper
			// bound, so the witness from the last fail-high stands.
			upper = v
		}
	}
	// lower met upper: lower is the last proven bound and r.Move witnesses a
	// child achieving it, so it is the exact value with a proving move.
	r.Value = lower
	return r, nil
}

// bns is the best-first member of the MT family: null-window probes pinned to
// the current upper bound, descending from +Inf. Probing at γ = f+ is exactly
// Plaat's MT-SSS* formulation — each probe expands the best (highest upper
// bound) line first, so the probe sequence enumerates the same nodes SSS*
// would pop off its OPEN list, with the transposition table standing in for
// the list. Converges when one probe finally proves a move reaches the
// current upper bound. Shares mtdf's probe budget and wide-window fallback.
type bns struct {
	maxProbes int
}

func newBNS(cfg Config) Driver {
	d := &bns{maxProbes: cfg.MaxProbes}
	if d.maxProbes <= 0 {
		d.maxProbes = DefaultMaxProbes
	}
	return d
}

func (d *bns) Name() string { return "bns" }

func (d *bns) Resolve(search Search, prev game.Value) (Result, error) {
	r := Result{Move: -1}
	lower, upper := -game.Inf, game.Inf
	for lower < upper {
		if r.Probes >= d.maxProbes {
			return wideFallback(r, search)
		}
		gamma := upper // the SSS* test point: the best upper bound so far
		move, v, err := search(game.Window{Alpha: gamma - 1, Beta: gamma})
		if err != nil {
			return r, err
		}
		r.Probes++
		if v >= gamma {
			if v > lower {
				lower = v
			}
			r.Move = move
		} else if v < upper {
			upper = v
		}
	}
	r.Value = lower
	return r, nil
}

// bisect picks the next test point strictly inside (lower, upper]: the
// ceiling midpoint, computed in 64 bits because upper-lower can exceed the
// 32-bit value range when the envelope is still (-Inf, Inf).
func bisect(lower, upper game.Value) game.Value {
	return lower + game.Value((int64(upper)-int64(lower)+1)/2)
}

// wideFallback resolves an iteration whose probe budget ran out: one
// full-window search, exact by construction regardless of what the table
// holds. Counted as a re-search, so the telemetry shows pathological
// iterations as "probes maxed + one re-search".
func wideFallback(r Result, search Search) (Result, error) {
	move, v, err := search(game.FullWindow())
	if err != nil {
		return r, err
	}
	r.Researches++
	r.Move, r.Value = move, v
	return r, nil
}
