package driver_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"ertree/internal/driver"
	"ertree/internal/game"
)

// informedSearch scripts a perfectly-informed fail-soft search: whatever the
// window, it returns the true value (fail-soft results may land outside the
// window) and the proving move. This is the best case a warm transposition
// table approaches.
func informedSearch(truth game.Value, move int) driver.Search {
	return func(w game.Window) (int, game.Value, error) {
		return move, truth, nil
	}
}

// minimalSearch scripts the least-informative legal fail-soft search: a probe
// at window {γ-1, γ} learns only which side of γ the truth is on, and the
// returned bound is as tight to γ as the contract allows (v = γ on a fail
// high, γ-1 on a fail low). This is the adversary for convergence bounds —
// every probe shrinks the envelope no more than it must.
func minimalSearch(truth game.Value, move int) driver.Search {
	return func(w game.Window) (int, game.Value, error) {
		if truth >= w.Beta {
			return move, w.Beta, nil
		}
		if truth <= w.Alpha {
			return -1, w.Alpha, nil
		}
		return move, truth, nil // interior values are exact by contract
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"aspiration", "mtdf", "bns"} {
		if !driver.Valid(name) {
			t.Fatalf("driver %q not registered", name)
		}
	}
	if driver.Valid("nosuch") {
		t.Fatal("Valid accepted an unknown name")
	}
	if _, err := driver.New("nosuch", driver.Config{}); err == nil {
		t.Fatal("unknown driver constructed")
	} else if got := err.Error(); !strings.Contains(got, "aspiration") ||
		!strings.Contains(got, "mtdf") || !strings.Contains(got, "bns") {
		t.Fatalf("error does not name the registered set: %q", got)
	}
	names := driver.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if driver.Default != "aspiration" {
		t.Fatalf("default driver %q, want aspiration", driver.Default)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	driver.Register("mtdf", func(driver.Config) driver.Driver { return nil })
}

// TestResolveExactness: every driver returns the exact value and the proving
// move against both the informed and the minimal search, from first guesses
// that are right, far low, and far high.
func TestResolveExactness(t *testing.T) {
	truths := []game.Value{0, 1, -1, 37, -4200, 9999}
	guesses := []game.Value{game.NoValue, 0, -10000, 10000}
	for _, name := range driver.Names() {
		d, err := driver.New(name, driver.Config{Delta: 25})
		if err != nil {
			t.Fatal(err)
		}
		for _, truth := range truths {
			for _, prev := range guesses {
				for _, mk := range []struct {
					kind string
					mk   func(game.Value, int) driver.Search
				}{{"informed", informedSearch}, {"minimal", minimalSearch}} {
					r, err := d.Resolve(mk.mk(truth, 3), prev)
					if err != nil {
						t.Fatal(err)
					}
					if r.Value != truth {
						t.Fatalf("%s/%s: truth %d guess %d: value %d",
							name, mk.kind, truth, prev, r.Value)
					}
					if r.Move != 3 {
						t.Fatalf("%s/%s: truth %d guess %d: move %d, want the proving move 3",
							name, mk.kind, truth, prev, r.Move)
					}
				}
			}
		}
	}
}

// TestMTDFProbeBounds is the convergence property test: against the
// minimal-information adversary on random value distributions, MTD(f)'s probe
// count is bounded by the adjacent-step allowance plus the bisection bound
// (the envelope starts 2·Inf wide and halves every bisected probe), never by
// luck. The informed search must converge in at most two probes regardless
// of the first guess.
func TestMTDFProbeBounds(t *testing.T) {
	d, err := driver.New("mtdf", driver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// ceil(log2(2*Inf)) = 31 bisections cover the worst envelope, +1 for the
	// final adjacent collision.
	bisectBound := driver.DefaultBisectAfter + 32
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		truth := game.Value(rng.Intn(20001) - 10000)
		prev := game.Value(rng.Intn(20001) - 10000)
		if i%7 == 0 {
			prev = game.NoValue
		}
		r, err := d.Resolve(minimalSearch(truth, 1), prev)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != truth {
			t.Fatalf("truth %d guess %d: value %d", truth, prev, r.Value)
		}
		if r.Probes > bisectBound {
			t.Fatalf("truth %d guess %d: %d probes exceeds the bisection bound %d",
				truth, prev, r.Probes, bisectBound)
		}
		if r.Researches != 0 {
			t.Fatalf("truth %d guess %d: converged resolution reports %d re-searches",
				truth, prev, r.Researches)
		}

		ri, err := d.Resolve(informedSearch(truth, 1), prev)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Value != truth || ri.Probes > 2 {
			t.Fatalf("informed: truth %d guess %d: value %d in %d probes",
				truth, prev, ri.Value, ri.Probes)
		}
	}
}

// TestMTDFPathologyFallback pins the Plaat pathology to the wide-window
// fallback path: when the probe budget is too small for the envelope to
// converge (the unstable-table case in miniature), the driver must spend
// exactly the budget, run one wide-window search, and return its exact value
// and move — never loop.
func TestMTDFPathologyFallback(t *testing.T) {
	const truth, move = 123, 5
	for _, name := range []string{"mtdf", "bns"} {
		d, err := driver.New(name, driver.Config{MaxProbes: 4})
		if err != nil {
			t.Fatal(err)
		}
		probes := 0
		search := func(w game.Window) (int, game.Value, error) {
			if w == game.FullWindow() {
				return move, truth, nil
			}
			probes++
			// Oscillate: claim the truth is just below every window asked
			// about, yielding the weakest possible upper bound each time.
			return -1, w.Alpha, nil
		}
		r, err := d.Resolve(search, game.NoValue)
		if err != nil {
			t.Fatal(err)
		}
		if probes != 4 || r.Probes != 4 {
			t.Fatalf("%s: spent %d probes (reported %d), want the budget 4", name, probes, r.Probes)
		}
		if r.Researches != 1 {
			t.Fatalf("%s: fallback researches %d, want 1", name, r.Researches)
		}
		if r.Value != truth || r.Move != move {
			t.Fatalf("%s: fallback returned value %d move %d, want %d/%d",
				name, r.Value, r.Move, truth, move)
		}
	}
}

// TestMTDFInconsistentBoundsTerminate: a search whose answers contradict each
// other (the lossy-table hazard: an early fail-high above a later fail-low)
// must still terminate — the monotone envelope crosses and the loop exits
// rather than oscillating forever.
func TestMTDFInconsistentBoundsTerminate(t *testing.T) {
	d, err := driver.New("mtdf", driver.Config{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	search := func(w game.Window) (int, game.Value, error) {
		calls++
		if calls > driver.DefaultMaxProbes+1 {
			t.Fatal("driver did not terminate on contradictory bounds")
		}
		if calls == 1 {
			return 2, 500, nil // fail high: claims truth >= 500
		}
		return -1, -500, nil // every later probe: claims truth <= -500
	}
	r, err := d.Resolve(search, 400)
	if err != nil {
		t.Fatal(err)
	}
	// The envelope crossed; the driver keeps the proven lower bound and its
	// witness rather than looping.
	if r.Move != 2 {
		t.Fatalf("move %d, want the fail-high witness 2", r.Move)
	}
}

// TestAspirationWindows pins the aspiration driver's window policy: an exact
// in-window first search costs no re-search; values past either edge reopen
// that half exactly once per side.
func TestAspirationWindows(t *testing.T) {
	d, err := driver.New("aspiration", driver.Config{Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	var windows []game.Window
	logged := func(inner driver.Search) driver.Search {
		return func(w game.Window) (int, game.Value, error) {
			windows = append(windows, w)
			return inner(w)
		}
	}

	// Interior value: one search, the aspiration window.
	windows = nil
	r, err := d.Resolve(logged(informedSearch(105, 0)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Researches != 0 || len(windows) != 1 {
		t.Fatalf("interior value: %d researches over %d searches", r.Researches, len(windows))
	}
	if (windows[0] != game.Window{Alpha: 90, Beta: 110}) {
		t.Fatalf("aspiration window %+v, want {90 110}", windows[0])
	}

	// Fail high: the upper half reopens.
	windows = nil
	r, err = d.Resolve(logged(informedSearch(300, 0)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Researches != 1 || r.Value != 300 {
		t.Fatalf("fail high: %d researches, value %d", r.Researches, r.Value)
	}
	if windows[1].Beta != game.Inf {
		t.Fatalf("fail-high reopen %+v did not lift Beta to Inf", windows[1])
	}

	// Fail low: the lower half reopens.
	windows = nil
	r, err = d.Resolve(logged(informedSearch(-300, 0)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Researches != 1 || r.Value != -300 {
		t.Fatalf("fail low: %d researches, value %d", r.Researches, r.Value)
	}
	if windows[1].Alpha != -game.Inf {
		t.Fatalf("fail-low reopen %+v did not drop Alpha to -Inf", windows[1])
	}

	// No previous value: one full-window search.
	windows = nil
	if _, err := d.Resolve(logged(informedSearch(7, 0)), game.NoValue); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 || windows[0] != game.FullWindow() {
		t.Fatalf("first iteration searched %+v, want the full window", windows)
	}
}

// TestResolveErrorPropagates: a search error (cancellation, backend failure)
// aborts the resolution on every driver.
func TestResolveErrorPropagates(t *testing.T) {
	boom := errors.New("aborted")
	for _, name := range driver.Names() {
		d, err := driver.New(name, driver.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Resolve(func(game.Window) (int, game.Value, error) {
			return -1, 0, boom
		}, 0); !errors.Is(err, boom) {
			t.Fatalf("%s: error %v did not propagate", name, err)
		}
	}
}
