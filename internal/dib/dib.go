// Package dib is a small generic framework for parallel backtracking in the
// style of DIB, Finkel and Manber's Distributed Implementation of
// Backtracking (TOPLAS 1987). The paper models ER's programming interface
// on DIB (§6: "The programming interface to our implementation of ER is
// similar to DIB"): the caller supplies a problem-expansion procedure and a
// leaf solver, and the framework distributes the backtracking tree over
// workers.
//
// Unlike game-tree search, plain backtracking has no cross-subproblem
// pruning, so results are merged with a user-supplied associative,
// commutative operation and the outcome is deterministic for any worker
// count.
package dib

import "sync"

// Spec describes a backtracking computation over problems of type P with
// results of type R.
type Spec[P, R any] struct {
	// Expand decomposes a problem into subproblems. Returning an empty
	// slice (or nil) marks p as a leaf to be solved directly.
	Expand func(p P) []P
	// Solve computes a leaf problem's result.
	Solve func(p P) R
	// Merge combines two results. It must be associative and commutative
	// (workers complete subproblems in nondeterministic order).
	Merge func(a, b R) R
	// Zero is the identity of Merge.
	Zero R
}

// Run executes the backtracking computation on the given number of workers
// and returns the merged result of all leaves. workers < 1 means 1.
func Run[P, R any](root P, spec Spec[P, R], workers int) R {
	if workers < 1 {
		workers = 1
	}
	s := &state[P, R]{spec: spec, acc: spec.Zero, outstanding: 1}
	s.cond = sync.NewCond(&s.mu)
	s.stack = append(s.stack, root)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	wg.Wait()
	return s.acc
}

type state[P, R any] struct {
	spec Spec[P, R]

	mu          sync.Mutex
	cond        *sync.Cond
	stack       []P // LIFO: depth-first expansion keeps the frontier small
	acc         R
	outstanding int // problems taken from or still on the stack
	done        bool
}

func (s *state[P, R]) worker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.stack) == 0 && !s.done {
			s.cond.Wait()
		}
		if s.done {
			return
		}
		p := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		s.mu.Unlock()

		subs := s.spec.Expand(p)
		var leaf R
		isLeaf := len(subs) == 0
		if isLeaf {
			leaf = s.spec.Solve(p)
		}

		s.mu.Lock()
		if isLeaf {
			s.acc = s.spec.Merge(s.acc, leaf)
		} else {
			s.stack = append(s.stack, subs...)
			s.outstanding += len(subs)
			s.cond.Broadcast()
		}
		s.outstanding--
		if s.outstanding == 0 {
			s.done = true
			s.cond.Broadcast()
			return
		}
	}
}

// Count is a convenience Spec constructor for counting leaves that satisfy
// the solver predicate.
func Count[P any](expand func(P) []P, accept func(P) bool) Spec[P, int64] {
	return Spec[P, int64]{
		Expand: expand,
		Solve: func(p P) int64 {
			if accept(p) {
				return 1
			}
			return 0
		},
		Merge: func(a, b int64) int64 { return a + b },
	}
}
