package dib

import (
	"testing"

	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/ttt"
)

// queens is the classic DIB example: count the placements of n queens.
type queens struct {
	n    int
	cols []int // cols[i] = column of the queen on row i
}

func (q queens) children() []queens {
	if len(q.cols) == q.n {
		return nil
	}
	var out []queens
	row := len(q.cols)
	for c := 0; c < q.n; c++ {
		ok := true
		for r, qc := range q.cols {
			if qc == c || qc-c == row-r || c-qc == row-r {
				ok = false
				break
			}
		}
		if ok {
			next := append(append([]int{}, q.cols...), c)
			out = append(out, queens{n: q.n, cols: next})
		}
	}
	return out
}

func queensSpec() Spec[queens, int64] {
	return Count(
		func(q queens) []queens { return q.children() },
		func(q queens) bool { return len(q.cols) == q.n },
	)
}

func TestNQueensKnownCounts(t *testing.T) {
	want := map[int]int64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352}
	for n, expect := range want {
		got := Run(queens{n: n}, queensSpec(), 4)
		if got != expect {
			t.Errorf("n=%d: %d solutions, want %d", n, got, expect)
		}
	}
}

func TestResultIndependentOfWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		if got := Run(queens{n: 8}, queensSpec(), workers); got != 92 {
			t.Fatalf("workers=%d: %d, want 92", workers, got)
		}
	}
	if got := Run(queens{n: 6}, queensSpec(), 0); got != 4 {
		t.Fatalf("workers=0 must behave as 1")
	}
}

// perftProblem drives DIB over an Othello game tree: counting depth-d
// positions must reproduce the known perft values, cross-validating both
// the framework and the move generator.
type perftProblem struct {
	pos   game.Position
	depth int
}

func perftSpec() Spec[perftProblem, int64] {
	return Spec[perftProblem, int64]{
		Expand: func(p perftProblem) []perftProblem {
			if p.depth == 0 {
				return nil
			}
			kids := p.pos.Children()
			out := make([]perftProblem, len(kids))
			for i, k := range kids {
				out[i] = perftProblem{pos: k, depth: p.depth - 1}
			}
			return out
		},
		Solve: func(p perftProblem) int64 {
			if p.depth == 0 {
				return 1
			}
			return 0 // terminal position above the horizon
		},
		Merge: func(a, b int64) int64 { return a + b },
	}
}

func TestOthelloPerftViaDIB(t *testing.T) {
	want := []int64{1, 4, 12, 56, 244, 1396, 8200}
	for d := 0; d <= 6; d++ {
		got := Run(perftProblem{pos: othello.Start(), depth: d}, perftSpec(), 6)
		if got != want[d] {
			t.Errorf("perft(%d) via DIB = %d, want %d", d, got, want[d])
		}
	}
}

func TestTicTacToeLeafCountViaDIB(t *testing.T) {
	// Terminal-position count of the full tic-tac-toe tree (wins end the
	// game): a classic known value, 255168 final games.
	spec := Spec[ttt.Board, int64]{
		Expand: func(b ttt.Board) []ttt.Board {
			kids := b.Children()
			out := make([]ttt.Board, len(kids))
			for i, k := range kids {
				out[i] = k.(ttt.Board)
			}
			return out
		},
		Solve: func(b ttt.Board) int64 { return 1 },
		Merge: func(a, b int64) int64 { return a + b },
	}
	if got := Run(ttt.New(), spec, 8); got != 255168 {
		t.Fatalf("tic-tac-toe final games = %d, want 255168", got)
	}
}

func TestMaxMerge(t *testing.T) {
	// Merge need not be addition: find the maximum leaf of a small tree.
	type node struct{ v, depth int }
	spec := Spec[node, int]{
		Expand: func(n node) []node {
			if n.depth == 0 {
				return nil
			}
			return []node{
				{v: n.v*2 + 1, depth: n.depth - 1},
				{v: n.v * 3, depth: n.depth - 1},
			}
		},
		Solve: func(n node) int { return n.v },
		Merge: func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		Zero: -1 << 60,
	}
	got := Run(node{v: 1, depth: 10}, spec, 4)
	want := 1
	for i := 0; i < 10; i++ {
		want *= 3
	}
	if got != want {
		t.Fatalf("max leaf %d, want %d (all-times-3 path)", got, want)
	}
}
