// Package lazysmp implements the shared-hash-table parallel search of the
// Crafty/Lazy-SMP lineage behind the backend seam: N independent
// iterative-deepening workers that coordinate through nothing but the shared
// transposition table. Each worker runs the same serial scout the "serial"
// backend uses (backend.TTScout), but from a skewed starting depth, with a
// skewed aspiration window on warm-up iterations and a rotated root move
// order, so the workers explore the tree in different orders and seed the
// table for one another. The first worker to finish the target depth under
// the request window wins; the rest are aborted cooperatively.
//
// This is the architecture the 1990 ER paper never got to compare against —
// no work queue, no speculation bookkeeping, no e-node protocol; all
// parallelism emerges from table sharing. The backend registers itself as
// "lazysmp"; import this package for side effects to enable it.
package lazysmp

import (
	"sort"
	"sync"

	"ertree/internal/backend"
	"ertree/internal/game"
)

func init() { backend.Register("lazysmp", New) }

// Backend is the Lazy-SMP search scheduler. Zero coordination state lives on
// the value, so one Backend serves concurrent searches.
type Backend struct {
	cfg backend.Config
}

// New builds a Lazy-SMP backend; fewer than one worker is clamped to one
// (a single worker degenerates to the serial backend with extra warm-up
// iterations).
func New(cfg backend.Config) backend.Backend {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Backend{cfg: cfg}
}

// Name returns "lazysmp".
func (b *Backend) Name() string { return "lazysmp" }

// warmDelta is the base half-width of a warm-up aspiration window; worker id
// widens it so the helpers probe different slices of the score space.
const warmDelta = 24

// Search runs the worker pool and returns the first finisher's result. The
// returned Totals are total work summed across all workers — for wall-clock
// comparisons the caller should look at elapsed time, not node counts,
// because Lazy-SMP deliberately duplicates work to fill the table.
func (b *Backend) Search(req backend.Request) (backend.Response, error) {
	kids := req.Pos.Children()
	if req.Depth < 1 || len(kids) == 0 {
		return backend.LeafResponse(req), nil
	}

	// stop aborts every worker: closed by the first finisher and, through the
	// forwarder below, by the caller's Cancel.
	stop := make(chan struct{})
	var once sync.Once
	halt := func() { once.Do(func() { close(stop) }) }
	if req.Cancel != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-req.Cancel:
				halt()
			case <-stop:
			case <-done:
			}
		}()
	}

	var (
		mu     sync.Mutex
		tot    backend.Totals
		winner *backend.RootResult
	)
	var wg sync.WaitGroup
	for id := 0; id < b.cfg.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r, wtot, won := b.worker(id, kids, req, stop)
			mu.Lock()
			tot.Add(wtot)
			if won && winner == nil {
				winner = &r
			}
			mu.Unlock()
			if won {
				halt()
			}
		}(id)
	}
	wg.Wait()

	resp := backend.Response{
		Move:    -1,
		Totals:  tot,
		Workers: b.cfg.Workers,
	}
	if winner == nil {
		// No worker reached the target depth: only possible when the caller
		// cancelled (workers otherwise run to completion).
		return resp, backend.ErrAborted
	}
	resp.Value = winner.Value
	resp.Move = winner.Move
	resp.Scores = winner.Scores
	resp.Exact = req.Window.Contains(winner.Value)
	return resp, nil
}

// worker runs one deepening searcher: depths start at 1+(id&1) (clamped to
// the target) and advance by one, warm-up depths under a per-worker
// aspiration window, the target depth under the request window. It reports
// the target-depth root result and whether it got there before being stopped.
func (b *Backend) worker(id int, kids []game.Position, req backend.Request, stop <-chan struct{}) (backend.RootResult, backend.Totals, bool) {
	var tot backend.Totals
	sc := &backend.TTScout{
		Order:      b.cfg.Order,
		Table:      b.cfg.Table,
		DeeperHits: b.cfg.DeeperHits,
		Cancel:     stop,
		Totals:     &tot,
	}
	order := rotatedOrder(req.RootOrder, len(kids), id)
	prev := game.NoValue
	start := 1 + (id & 1)
	if start > req.Depth {
		start = req.Depth
	}
	for d := start; d <= req.Depth; d++ {
		w := req.Window
		if d < req.Depth {
			w = warmWindow(prev, id)
		}
		r, err := backend.RootScout(kids, d, w, order, sc.Search)
		if err != nil {
			return backend.RootResult{}, tot, false // stopped: a peer won or the caller cancelled
		}
		prev = r.Value
		order = reorder(order, r.Scores)
		if d == req.Depth {
			return r, tot, true
		}
	}
	return backend.RootResult{}, tot, false
}

// warmWindow is the aspiration window of a warm-up iteration: full for the
// first iteration and for worker 0 (which must stay a sound reference on its
// own), and a band around the worker's previous value otherwise, widened
// with the worker id so helpers fail in different directions and store
// complementary bounds. Warm-up results only feed move ordering and the
// table, so a failed aspiration needs no re-search.
func warmWindow(prev game.Value, id int) game.Window {
	if id == 0 || prev == game.NoValue {
		return game.FullWindow()
	}
	delta := game.Value(warmDelta * id)
	a, bta := prev-delta, prev+delta
	if a < -game.Inf {
		a = -game.Inf
	}
	if bta > game.Inf {
		bta = game.Inf
	}
	if a >= bta {
		return game.FullWindow()
	}
	return game.Window{Alpha: a, Beta: bta}
}

// rotatedOrder diversifies the root move order per worker: everyone keeps the
// driver's best candidate first (abandoning it costs real time), but the tail
// is rotated by the worker id so the helpers refute different moves first and
// their bounds land in the table before the winner needs them.
func rotatedOrder(base []int, n, id int) []int {
	order := make([]int, n)
	if base != nil {
		copy(order, base)
	} else {
		for i := range order {
			order[i] = i
		}
	}
	if id == 0 || n < 3 {
		return order
	}
	tail := order[1:]
	k := id % len(tail)
	rotated := append(append(make([]int, 0, len(tail)), tail[k:]...), tail[:k]...)
	copy(tail, rotated)
	return order
}

// reorder sorts the worker's private root order by the latest iteration's
// scores, best first; unvisited children (game.NoValue) sink to the back
// because NoValue is below every real value.
func reorder(order []int, scores []game.Value) []int {
	out := append(make([]int, 0, len(order)), order...)
	sort.SliceStable(out, func(i, j int) bool { return scores[out[i]] > scores[out[j]] })
	return out
}
