package lazysmp_test

import (
	"sync"
	"testing"
	"time"

	"ertree/internal/backend"
	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/lazysmp"
	"ertree/internal/randtree"
	"ertree/internal/tt"
)

func negamax(pos game.Position, depth int) game.Value {
	kids := pos.Children()
	if depth == 0 || len(kids) == 0 {
		return pos.Value()
	}
	best := -game.Inf
	for _, k := range kids {
		if v := -negamax(k, depth-1); v > best {
			best = v
		}
	}
	return best
}

// TestSearchExact pins the basic contract: the winning worker's full-window
// value is the exact negamax value and the move proves it, at several worker
// counts on one shared table.
func TestSearchExact(t *testing.T) {
	tr := &randtree.Tree{Seed: 42, Degree: 4, Depth: 7, ValueRange: 10000}
	pos, depth := tr.Root(), 6
	want := negamax(pos, depth)
	kids := pos.Children()
	for _, p := range []int{1, 2, 3, 8} {
		be := lazysmp.New(backend.Config{Workers: p, Table: tt.NewDefault(14, 0)})
		resp, err := be.Search(backend.Request{Pos: pos, Depth: depth, Window: game.FullWindow()})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if resp.Value != want || !resp.Exact {
			t.Fatalf("P=%d: value %d exact %v, want %d exact", p, resp.Value, resp.Exact, want)
		}
		if got := -negamax(kids[resp.Move], depth-1); got != want {
			t.Fatalf("P=%d: move %d does not prove value (%d != %d)", p, resp.Move, got, want)
		}
		if resp.Workers != p {
			t.Fatalf("P=%d: response reports %d workers", p, resp.Workers)
		}
	}
}

// TestSharedTableStress is the -race proof of the subsystem: many concurrent
// Search calls, each running 8 deepening workers, all pounding one shared
// transposition table, must keep returning the exact value. This is the
// densest table traffic the backend can generate — every worker of every
// session probes and stores the same striped slots.
func TestSharedTableStress(t *testing.T) {
	tr := &randtree.Tree{Seed: 7, Degree: 4, Depth: 7, ValueRange: 10000}
	pos, depth := tr.Root(), 6
	want := negamax(pos, depth)
	table := tt.NewDefault(12, 4) // small table: maximum collision pressure
	be := lazysmp.New(backend.Config{Workers: 8, Table: table})
	const sessions = 6
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	vals := make([]game.Value, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := be.Search(backend.Request{Pos: pos, Depth: depth, Window: game.FullWindow()})
			errs[i], vals[i] = err, resp.Value
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if vals[i] != want {
			t.Fatalf("session %d: value %d, want %d", i, vals[i], want)
		}
	}
	if st := table.Stats(); st.Probes == 0 || st.Stores == 0 {
		t.Fatalf("stress ran without table traffic: %+v", st)
	}
}

// TestCancelAborts closes the request's cancel channel mid-search and
// requires every worker to stop promptly with ErrAborted and partial totals.
func TestCancelAborts(t *testing.T) {
	// Deep Connect Four: far too big to finish, so cancellation is the only
	// way out.
	be := lazysmp.New(backend.Config{Workers: 4, Table: tt.NewDefault(14, 0)})
	cancel := make(chan struct{})
	done := make(chan struct{})
	var resp backend.Response
	var err error
	start := time.Now()
	go func() {
		defer close(done)
		resp, err = be.Search(backend.Request{
			Pos:    connect4.New(),
			Depth:  40,
			Window: game.FullWindow(),
			Cancel: cancel,
		})
	}()
	time.Sleep(50 * time.Millisecond)
	close(cancel)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("search did not abort within 10s of cancellation")
	}
	if err != backend.ErrAborted {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if resp.Totals.Nodes == 0 {
		t.Fatal("aborted search reported no partial totals")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v", elapsed)
	}
}

// TestTerminalAndDepthZero covers the leaf contract shared with the other
// backends.
func TestTerminalAndDepthZero(t *testing.T) {
	be := lazysmp.New(backend.Config{Workers: 4})
	pos := connect4.New()
	resp, err := be.Search(backend.Request{Pos: pos, Depth: 0, Window: game.FullWindow()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Move != -1 || resp.Value != pos.Value() {
		t.Fatalf("depth-0 search: %+v", resp)
	}
}

// TestRegisteredName checks the package self-registers under "lazysmp".
func TestRegisteredName(t *testing.T) {
	be, err := backend.New("lazysmp", backend.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "lazysmp" {
		t.Fatalf("Name() = %q", be.Name())
	}
}
