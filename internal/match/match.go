// Package match plays two search engines against each other on any game
// implementing game.Position plus a terminal test. It powers the gameplay
// examples and the engine-strength regression tests (a deeper or more
// speculative engine must not lose to a shallower one over a match).
package match

import (
	"fmt"

	"ertree/internal/game"
)

// Playable is a game position that knows when the game is over. Children()
// returning nil must coincide with Terminal() (true for all games in this
// module).
type Playable interface {
	game.Position
	Terminal() bool
}

// Engine chooses a move: given the current position and its legal children,
// it returns the index of the child to play.
type Engine interface {
	Name() string
	Choose(pos Playable, children []game.Position) int
}

// SearchEngine picks the child whose (negated) search value is maximal.
type SearchEngine struct {
	Label string
	// Search evaluates a child position from the child's perspective.
	Search func(child game.Position) game.Value
}

// Name implements Engine.
func (e SearchEngine) Name() string { return e.Label }

// Choose implements Engine.
func (e SearchEngine) Choose(pos Playable, children []game.Position) int {
	best, bestV := 0, -game.Inf-1
	for i, c := range children {
		if v := -e.Search(c); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Result reports one finished game.
type Result struct {
	Final   Playable
	Plies   int
	Moves   []int // chosen child indices in order
	Aborted bool  // MaxPlies reached before the game ended
}

// Play alternates first and second from pos until the game ends or maxPlies
// is reached. The first engine moves first.
func Play(pos Playable, first, second Engine, maxPlies int) Result {
	res := Result{}
	engines := [2]Engine{first, second}
	cur := pos
	for ply := 0; ; ply++ {
		if cur.Terminal() {
			res.Final = cur
			res.Plies = ply
			return res
		}
		if ply >= maxPlies {
			res.Final = cur
			res.Plies = ply
			res.Aborted = true
			return res
		}
		kids := cur.Children()
		if len(kids) == 0 {
			res.Final = cur
			res.Plies = ply
			return res
		}
		idx := engines[ply%2].Choose(cur, kids)
		if idx < 0 || idx >= len(kids) {
			panic(fmt.Sprintf("match: engine %s chose child %d of %d", engines[ply%2].Name(), idx, len(kids)))
		}
		res.Moves = append(res.Moves, idx)
		next, ok := kids[idx].(Playable)
		if !ok {
			panic("match: child does not implement Playable")
		}
		cur = next
	}
}

// Series plays n games alternating colors and returns (firstEngineScore,
// secondEngineScore, draws) where a win counts 1 under score(final, moverIsFirst).
// The caller supplies outcome, mapping the final position to +1 (the player
// to move at the end has won), -1 (lost), or 0 (draw) — for most games the
// player to move at a terminal position has lost or drawn.
func Series(start Playable, a, b Engine, games, maxPlies int, outcome func(final Playable) int) (aScore, bScore, draws int) {
	for g := 0; g < games; g++ {
		aIsFirst := g%2 == 0
		first, second := a, b
		if !aIsFirst {
			first, second = b, a
		}
		res := Play(start, first, second, maxPlies)
		// The outcome function also adjudicates aborted games (e.g. by
		// material), so engines that merely shuffle are not rewarded
		// with automatic draws.
		o := outcome(res.Final)
		if o == 0 {
			draws++
			continue
		}
		// o is from the point of view of the player to move at the end;
		// the player to move after res.Plies plies is the first engine
		// iff res.Plies is even.
		moverIsFirst := res.Plies%2 == 0
		firstWon := (o > 0) == moverIsFirst
		if firstWon == aIsFirst {
			aScore++
		} else {
			bScore++
		}
	}
	return aScore, bScore, draws
}
