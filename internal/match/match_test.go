package match

import (
	"testing"

	"ertree/internal/connect4"
	"ertree/internal/core"
	"ertree/internal/game"
	"ertree/internal/serial"
	"ertree/internal/ttt"
)

// depthEngine searches with plain alpha-beta to a fixed depth.
func depthEngine(name string, depth int) SearchEngine {
	return SearchEngine{
		Label: name,
		Search: func(child game.Position) game.Value {
			var s serial.Searcher
			return s.AlphaBeta(child, depth, game.FullWindow())
		},
	}
}

func TestTicTacToePerfectPlayDraws(t *testing.T) {
	// Two full-depth engines always draw tic-tac-toe.
	e := depthEngine("perfect", 9)
	res := Play(ttt.New(), e, e, 9)
	if res.Aborted {
		t.Fatal("game did not finish")
	}
	b := res.Final.(ttt.Board)
	if b.Value() != 0 {
		t.Fatalf("perfect play did not draw: final value %d\n%s", b.Value(), b)
	}
	if res.Plies != 9 {
		t.Fatalf("perfect tic-tac-toe lasts 9 plies, got %d", res.Plies)
	}
}

func TestDeeperEngineDoesNotLoseTicTacToe(t *testing.T) {
	deep := depthEngine("deep", 9)
	shallow := depthEngine("shallow", 1)
	outcome := func(final Playable) int {
		return int(final.(ttt.Board).Value())
	}
	deepScore, shallowScore, draws := Series(ttt.New(), deep, shallow, 4, 9, outcome)
	if shallowScore > 0 {
		t.Fatalf("depth-1 engine beat the perfect engine (%d-%d-%d)",
			deepScore, shallowScore, draws)
	}
}

func TestDeeperEngineWinsConnect4(t *testing.T) {
	deep := depthEngine("deep", 7)
	shallow := depthEngine("shallow", 1)
	outcome := func(final Playable) int {
		b := final.(connect4.Board)
		switch v := b.Value(); {
		case v <= -9000:
			return -1
		case v >= 9000:
			return 1
		default:
			return 0
		}
	}
	deepScore, shallowScore, draws := Series(connect4.New(), deep, shallow, 2, 42, outcome)
	if deepScore <= shallowScore {
		t.Fatalf("deep engine did not outscore shallow: %d-%d-%d",
			deepScore, shallowScore, draws)
	}
}

func TestPlayRecordsMoves(t *testing.T) {
	e := depthEngine("e", 2)
	res := Play(connect4.New(), e, e, 6)
	if len(res.Moves) != 6 || !res.Aborted {
		t.Fatalf("expected 6 recorded moves and an aborted game, got %d (aborted=%v)",
			len(res.Moves), res.Aborted)
	}
	f := res.Final.(connect4.Board)
	if f.Ply() != 6 {
		t.Fatalf("final ply %d", f.Ply())
	}
}

func TestEngineNamesSurface(t *testing.T) {
	if depthEngine("alice", 1).Name() != "alice" {
		t.Fatal("name lost")
	}
}

// TestParallelEREngineBeatsShallowAlphaBeta: the parallel engine as a
// player. Depth-5 parallel ER must outscore depth-1 alpha-beta on Connect
// Four.
func TestParallelEREngineBeatsShallowAlphaBeta(t *testing.T) {
	er := SearchEngine{
		Label: "parallel-er",
		Search: func(child game.Position) game.Value {
			res, err := core.Search(child, 5, core.Options{
				Workers: 4, SerialDepth: 3,
				ParallelRefutation: true, MultipleENodes: true, EarlyChoice: true,
			})
			if err != nil {
				t.Errorf("parallel-er engine: %v", err)
			}
			return res.Value
		},
	}
	shallow := depthEngine("shallow-ab", 1)
	outcome := func(final Playable) int {
		b := final.(connect4.Board)
		switch v := b.Value(); {
		case v <= -9000:
			return -1
		case v >= 9000:
			return 1
		default:
			return 0
		}
	}
	erScore, shallowScore, draws := Series(connect4.New(), er, shallow, 2, 42, outcome)
	if erScore <= shallowScore {
		t.Fatalf("parallel ER did not outscore shallow alpha-beta: %d-%d-%d",
			erScore, shallowScore, draws)
	}
}
