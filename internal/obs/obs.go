// Package obs is the engine's dependency-free self-monitoring subsystem: a
// bounded ring of timestamped gauge snapshots sampled from the running
// engine/serve stack, pluggable anomaly detectors that watch the ring for the
// serving pathologies the literature warns about (MTD(f) probe storms,
// admission shed spikes, transposition-table thrash, steal starvation, stalled
// sessions), and automatic capture of pprof profiles at the moment an anomaly
// fires — so a pathology is diagnosed from evidence taken while it happened,
// not reconstructed post-mortem.
//
// The whole subsystem follows the repository's pay-for-use telemetry
// discipline: a nil *Monitor is the disabled state, every exported method is
// nil-safe, and the per-session heartbeat calls on the disabled path cost one
// pointer test and zero allocations (pinned by an alloc test, like the core
// hooks). Enabled, the sampler runs one goroutine that writes into
// preallocated ring slots — steady-state ticks allocate nothing either; only
// a firing anomaly (rare by construction) allocates, for its detail string
// and captured profiles.
package obs

import (
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ertree/internal/telemetry"
)

// Sample is one timestamped snapshot of the monitored gauges. Instantaneous
// fields are point-in-time readings; the rest are cumulative counters, so
// detectors difference two samples to get a windowed rate.
type Sample struct {
	At time.Time `json:"at"`

	// Instantaneous.
	InFlight   int64  `json:"in_flight"`  // sessions holding an admission slot
	Waiting    int64  `json:"waiting"`    // admission queue depth
	Goroutines int64  `json:"goroutines"` // runtime.NumGoroutine
	HeapAlloc  uint64 `json:"heap_alloc"` // bytes of live heap objects
	TTFill     int64  `json:"tt_fill"`    // occupied table slots (sampled)
	TTLen      int64  `json:"tt_len"`     // table capacity

	// Cumulative.
	Sessions      int64 `json:"sessions"`       // admitted sessions
	Iterations    int64 `json:"iterations"`     // completed deepening iterations
	Probes        int64 `json:"probes"`         // root-driver null-window probes
	ShedFull      int64 `json:"shed_full"`      // immediate admission refusals
	ShedTimeout   int64 `json:"shed_timeout"`   // queue waits that expired
	ShedCancelled int64 `json:"shed_cancelled"` // callers that gave up queued
	Steals        int64 `json:"steals"`         // sharded-heap steals
	StealFails    int64 `json:"steal_fails"`    // steal sweeps finding nothing
	TTProbes      int64 `json:"tt_probes"`      // shared-table probes
	TTHits        int64 `json:"tt_hits"`        // shared-table hits
	TTGenerations int64 `json:"tt_generations"` // table aging ticks
}

// Sheds returns the cumulative shed count across all causes.
func (s Sample) Sheds() int64 { return s.ShedFull + s.ShedTimeout + s.ShedCancelled }

// Anomaly is one detector firing: what was detected, when, and which captured
// profile (if any) holds the evidence.
type Anomaly struct {
	ID        int64     `json:"id"`
	Kind      string    `json:"kind"`
	At        time.Time `json:"at"`
	Detail    string    `json:"detail"`
	RequestID string    `json:"request_id,omitempty"` // correlating session label, when per-session
	ProfileID int64     `json:"profile_id,omitempty"` // retained pprof capture; 0 = none
}

// SessionBeat is the watchdog's view of one live session's heartbeat.
type SessionBeat struct {
	ID           int           `json:"id"`
	Label        string        `json:"label,omitempty"`
	Start        time.Time     `json:"start"`
	Budget       time.Duration `json:"budget"`
	LastProgress time.Time     `json:"last_progress"`
	Stalled      bool          `json:"stalled"`
}

// DetectorState is one detector's firing history for /debug/obs.
type DetectorState struct {
	Name       string `json:"name"`
	Fires      int64  `json:"fires"`
	LastFireMS int64  `json:"last_fire_unix_ms,omitempty"` // 0 = never fired
	LastDetail string `json:"last_detail,omitempty"`
}

// Defaults for Config's zero fields.
const (
	DefaultSampleEvery = 250 * time.Millisecond
	DefaultRingSlots   = 240 // one minute at the default interval
	DefaultWindow      = 5 * time.Second
	DefaultCooldown    = 10 * time.Second
	DefaultStallFactor = 3.0
	DefaultStallBudget = 10 * time.Second
	DefaultProfiles    = 4
	DefaultCPUProfile  = 250 * time.Millisecond
	DefaultMaxSessions = 256
)

// Config configures a Monitor. The zero value is usable: every field has a
// default.
type Config struct {
	SampleEvery time.Duration // sampling interval; 0 = DefaultSampleEvery
	RingSlots   int           // retained samples; 0 = DefaultRingSlots
	Window      time.Duration // detector lookback; 0 = DefaultWindow
	Cooldown    time.Duration // per-detector refractory period; 0 = DefaultCooldown; <0 = none
	StallFactor float64       // watchdog fires at StallFactor × session budget; 0 = DefaultStallFactor
	StallBudget time.Duration // assumed budget for sessions reporting none; 0 = DefaultStallBudget
	Profiles    int           // retained pprof captures; 0 = DefaultProfiles
	CPUProfile  time.Duration // CPU-profile duration per capture; 0 = DefaultCPUProfile; <0 disables
	MaxSessions int           // watchdog heartbeat slots; 0 = DefaultMaxSessions

	Logger    *slog.Logger        // anomaly warnings; nil = no logging
	Registry  *telemetry.Registry // registers obs_anomaly_total{kind}; nil = no metric
	Detectors []Detector          // nil = DefaultDetectors()
}

// Monitor samples gauges into a bounded ring and runs the anomaly detectors
// over it. A nil Monitor is the disabled state: every method is nil-safe and
// costs one pointer test.
type Monitor struct {
	cfg        Config
	log        *slog.Logger
	anomalyVec *telemetry.CounterVec

	mu            sync.Mutex
	source        func(*Sample)
	ring          *telemetry.Ring[Sample]
	detectors     []Detector
	states        []DetectorState
	anomalies     *telemetry.Ring[Anomaly]
	totals        map[string]int64
	seq           int64
	sampleScratch []Sample
	viewScratch   View
	tickScratch   Sample
	mem           runtime.MemStats

	anomalyTotal atomic.Int64

	beatMu      sync.Mutex
	beats       []beatSlot
	beatScratch []SessionBeat

	profiles *profileRing

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// beatSlot is one watchdog heartbeat slot. Slots are preallocated; a session
// claims one at start and releases it at end, storing its progress timestamp
// with one atomic store per iteration.
type beatSlot struct {
	active  bool
	stalled bool
	label   string
	start   time.Time
	budget  time.Duration
	last    atomic.Int64 // UnixNano of the latest progress heartbeat
}

// New creates a monitor. It does not start sampling; call Start, or drive
// Tick manually (tests, one-shot CLI sessions).
func New(cfg Config) *Monitor {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.RingSlots <= 0 {
		cfg.RingSlots = DefaultRingSlots
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.StallFactor <= 0 {
		cfg.StallFactor = DefaultStallFactor
	}
	if cfg.StallBudget <= 0 {
		cfg.StallBudget = DefaultStallBudget
	}
	if cfg.Profiles <= 0 {
		cfg.Profiles = DefaultProfiles
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = DefaultCPUProfile
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Detectors == nil {
		cfg.Detectors = DefaultDetectors()
	}
	m := &Monitor{
		cfg:           cfg,
		log:           cfg.Logger,
		ring:          telemetry.NewRing[Sample](cfg.RingSlots),
		detectors:     cfg.Detectors,
		states:        make([]DetectorState, len(cfg.Detectors)),
		anomalies:     telemetry.NewRing[Anomaly](64),
		totals:        make(map[string]int64),
		sampleScratch: make([]Sample, 0, cfg.RingSlots),
		beats:         make([]beatSlot, cfg.MaxSessions),
		beatScratch:   make([]SessionBeat, 0, cfg.MaxSessions),
		profiles:      newProfileRing(cfg.Profiles),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for i, d := range m.detectors {
		m.states[i].Name = d.Name()
	}
	if cfg.Registry != nil {
		m.anomalyVec = cfg.Registry.CounterVec("obs_anomaly_total",
			"Anomalies detected by the self-monitor, by kind.", "kind")
	}
	return m
}

// SetSource installs the gauge-sampling callback the monitor invokes once per
// tick. The callback fills the engine/serve fields of the sample in place;
// the monitor adds the runtime gauges itself.
func (m *Monitor) SetSource(fn func(*Sample)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.source = fn
	m.mu.Unlock()
}

// Start launches the background sampler. Safe to call on a nil monitor (the
// disabled path starts nothing) and idempotent.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	m.startOnce.Do(func() {
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.cfg.SampleEvery)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case now := <-t.C:
					m.Tick(now)
				}
			}
		}()
	})
}

// Close stops the background sampler, if Start launched one. Nil-safe and
// idempotent.
func (m *Monitor) Close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	select {
	case <-m.stop:
		m.mu.Unlock()
		return
	default:
		close(m.stop)
	}
	m.mu.Unlock()
	m.startOnce.Do(func() { close(m.done) }) // never started: unblock done
	<-m.done
}

// Tick takes one sample and runs the detectors. Start drives it from the
// sampler goroutine; tests and one-shot CLI sessions may call it directly.
func (m *Monitor) Tick(now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// The sample is filled in a Monitor-owned scratch slot: passing a
	// stack-local's address through the source callback would force a heap
	// allocation per tick, and the sampler must not allocate in steady state.
	s := &m.tickScratch
	*s = Sample{At: now}
	if m.source != nil {
		m.source(s)
	}
	s.Goroutines = int64(runtime.NumGoroutine())
	runtime.ReadMemStats(&m.mem)
	s.HeapAlloc = m.mem.HeapAlloc
	m.ring.Push(*s)

	v := m.view(now)
	for i, d := range m.detectors {
		st := &m.states[i]
		if m.cfg.Cooldown > 0 && st.LastFireMS != 0 {
			if _, exempt := d.(cooldownExempt); !exempt &&
				now.Sub(time.UnixMilli(st.LastFireMS)) < m.cfg.Cooldown {
				continue
			}
		}
		for _, a := range d.Check(v) {
			if a.Kind == "" {
				a.Kind = d.Name()
			}
			m.emit(st, a, now)
		}
	}
}

// view assembles the detector input from the ring and the heartbeat slots,
// reusing the monitor's scratch buffers so steady-state ticks stay
// allocation-free.
func (m *Monitor) view(now time.Time) *View {
	m.sampleScratch = m.ring.Snapshot(m.sampleScratch[:0])
	v := &m.viewScratch
	*v = View{Now: now, cfg: &m.cfg, m: m}
	w := m.sampleScratch
	if len(w) == 0 {
		return v
	}
	v.Newest = w[len(w)-1]
	// Oldest within the detector window, and the sample nearest the window's
	// midpoint (the split detectors compare window halves around it).
	cut := now.Add(-m.cfg.Window)
	start := 0
	for start < len(w)-1 && w[start].At.Before(cut) {
		start++
	}
	v.Oldest = w[start]
	v.Samples = len(w) - start
	v.Span = v.Newest.At.Sub(v.Oldest.At)
	midAt := v.Oldest.At.Add(v.Span / 2)
	mid := start
	for mid < len(w)-1 && w[mid].At.Before(midAt) {
		mid++
	}
	v.Mid = w[mid]

	m.beatMu.Lock()
	m.beatScratch = m.beatScratch[:0]
	for i := range m.beats {
		b := &m.beats[i]
		if !b.active {
			continue
		}
		m.beatScratch = append(m.beatScratch, SessionBeat{
			ID:           i,
			Label:        b.label,
			Start:        b.start,
			Budget:       b.budget,
			LastProgress: time.Unix(0, b.last.Load()),
			Stalled:      b.stalled,
		})
	}
	m.beatMu.Unlock()
	v.Sessions = m.beatScratch
	return v
}

// emit records one anomaly: profile capture, retention ring, counters,
// detector state, and the structured warning. Called with mu held.
func (m *Monitor) emit(st *DetectorState, a Anomaly, now time.Time) {
	m.seq++
	a.ID = m.seq
	a.At = now
	a.ProfileID = m.profiles.capture(a.ID, a.Kind, now, m.cfg.CPUProfile)
	m.anomalies.Push(a)
	m.totals[a.Kind]++
	m.anomalyTotal.Add(1)
	st.Fires++
	st.LastFireMS = now.UnixMilli()
	st.LastDetail = a.Detail
	if m.anomalyVec != nil {
		m.anomalyVec.With(a.Kind).Inc()
	}
	if m.log != nil {
		m.log.Warn("obs anomaly",
			"kind", a.Kind,
			"anomaly_id", a.ID,
			"detail", a.Detail,
			"request_id", a.RequestID,
			"profile_id", a.ProfileID,
		)
	}
}

// markStalled flags a heartbeat slot so the watchdog fires once per session.
func (m *Monitor) markStalled(id int) {
	m.beatMu.Lock()
	if id >= 0 && id < len(m.beats) && m.beats[id].active {
		m.beats[id].stalled = true
	}
	m.beatMu.Unlock()
}

// SessionStart claims a watchdog heartbeat slot for a session with the given
// correlation label and time budget (0 = unknown; the watchdog assumes
// Config.StallBudget). Returns -1 on a nil monitor or when every slot is
// taken — the session simply runs unwatched. The disabled path is one nil
// check and allocates nothing.
func (m *Monitor) SessionStart(label string, budget time.Duration) int {
	if m == nil {
		return -1
	}
	now := time.Now()
	m.beatMu.Lock()
	for i := range m.beats {
		b := &m.beats[i]
		if b.active {
			continue
		}
		b.active, b.stalled = true, false
		b.label, b.start, b.budget = label, now, budget
		b.last.Store(now.UnixNano())
		m.beatMu.Unlock()
		return i
	}
	m.beatMu.Unlock()
	return -1
}

// SessionProgress records iteration progress for a claimed slot: one atomic
// store. id < 0 (nil monitor, or no free slot at start) is a no-op.
func (m *Monitor) SessionProgress(id int) {
	if m == nil || id < 0 || id >= len(m.beats) {
		return
	}
	m.beats[id].last.Store(time.Now().UnixNano())
}

// SessionEnd releases a claimed heartbeat slot. id < 0 is a no-op.
func (m *Monitor) SessionEnd(id int) {
	if m == nil || id < 0 || id >= len(m.beats) {
		return
	}
	m.beatMu.Lock()
	m.beats[id].active = false
	m.beats[id].label = ""
	m.beatMu.Unlock()
}

// AnomalyTotal returns the number of anomalies detected since start; 0 on a
// nil monitor. One atomic load, safe for exposition-time polling.
func (m *Monitor) AnomalyTotal() int64 {
	if m == nil {
		return 0
	}
	return m.anomalyTotal.Load()
}
