package obs

import (
	"fmt"
	"time"
)

// View is the input one detector check runs over: the newest sample, the
// oldest sample inside the detector window, the sample nearest the window's
// midpoint (for detectors comparing window halves), and the live session
// heartbeats. Deltas of cumulative Sample fields over [Oldest, Newest] are
// windowed rates.
type View struct {
	Now     time.Time
	Span    time.Duration // Oldest.At → Newest.At
	Samples int           // samples inside the window
	Newest  Sample
	Mid     Sample
	Oldest  Sample
	// Sessions are the live heartbeat slots; valid until the next tick.
	Sessions []SessionBeat

	cfg *Config
	m   *Monitor
}

// Detector is one anomaly check run against every tick's View. Detectors are
// called from the sampler goroutine only, so they may keep unsynchronized
// state. Returning a non-empty slice fires those anomalies (the monitor fills
// ID/At and captures profiles); most checks return at most one.
type Detector interface {
	Name() string
	Check(v *View) []Anomaly
}

// cooldownExempt marks detectors that manage their own re-fire suppression
// (the stall watchdog dedups per session, so a global refractory period would
// hide a second session stalling right after the first).
type cooldownExempt interface{ cooldownExempt() }

// Anomaly kind strings, shared by the detectors, the obs_anomaly_total{kind}
// metric, and the load harness's per-phase assertions.
const (
	KindShedSpike       = "shed-spike"
	KindProbeStorm      = "probe-storm"
	KindTTThrash        = "tt-thrash"
	KindStealStarvation = "steal-starvation"
	KindStall           = "stall"
)

// DefaultDetectors returns the standard detector set with default thresholds.
func DefaultDetectors() []Detector {
	return []Detector{
		&ShedSpike{MinSheds: 5, MinRate: 1},
		&ProbeStorm{MaxPerIteration: 24, MinIterations: 4},
		&TTThrash{MinGenerations: 4, MinHitDrop: 0.10, MinProbes: 256},
		&StealStarvation{MinAttempts: 128, MinFailRatio: 0.9},
		&Stall{},
	}
}

// ShedSpike fires when the admission layer refuses a burst of requests: at
// least MinSheds refusals inside the window, arriving at MinRate or more per
// second. A single shed on an idle server is noise; a sustained rate is the
// server telling its operators it is saturated.
type ShedSpike struct {
	MinSheds int64   // refusals inside the window
	MinRate  float64 // refusals per second
}

func (d *ShedSpike) Name() string { return KindShedSpike }

func (d *ShedSpike) Check(v *View) []Anomaly {
	if v.Samples < 2 || v.Span <= 0 {
		return nil
	}
	n := v.Newest.Sheds() - v.Oldest.Sheds()
	rate := float64(n) / v.Span.Seconds()
	if n < d.MinSheds || rate < d.MinRate {
		return nil
	}
	return []Anomaly{{
		Kind: KindShedSpike,
		Detail: fmt.Sprintf("%d requests shed in %.1fs (%.1f/s; full=%d timeout=%d cancelled=%d)",
			n, v.Span.Seconds(), rate,
			v.Newest.ShedFull-v.Oldest.ShedFull,
			v.Newest.ShedTimeout-v.Oldest.ShedTimeout,
			v.Newest.ShedCancelled-v.Oldest.ShedCancelled),
	}}
}

// ProbeStorm fires when the root drivers' null-window probe traffic runs at
// the budget-fallback rate: MTD(f) converges in a handful of probes per
// iteration when the table feeds it consistent bounds, and the driver caps a
// pathological non-converging iteration at its probe budget (Plaat et al.'s
// "No" case) before falling back to a full-window search. Probes-per-iteration
// near that cap across a whole window means the probe drivers are thrashing,
// not converging — usually concurrent table overwrites destroying the bound
// envelope.
type ProbeStorm struct {
	MaxPerIteration float64 // windowed probes/iteration that counts as a storm
	MinIterations   int64   // minimum iterations in the window before judging
}

func (d *ProbeStorm) Name() string { return KindProbeStorm }

func (d *ProbeStorm) Check(v *View) []Anomaly {
	if v.Samples < 2 {
		return nil
	}
	iters := v.Newest.Iterations - v.Oldest.Iterations
	probes := v.Newest.Probes - v.Oldest.Probes
	if iters < d.MinIterations {
		return nil
	}
	per := float64(probes) / float64(iters)
	if per < d.MaxPerIteration {
		return nil
	}
	return []Anomaly{{
		Kind: KindProbeStorm,
		Detail: fmt.Sprintf("%.1f probes/iteration over %.1fs (%d probes, %d iterations; budget-fallback territory)",
			per, v.Span.Seconds(), probes, iters),
	}}
}

// TTThrash fires on generation churn with a falling hit rate: the table aged
// MinGenerations times inside the window while the hit rate of the window's
// newer half dropped MinHitDrop below the older half's. Aging alone is
// healthy (one tick per admitted session); aging while hits collapse means
// the working set no longer fits and replacement is evicting entries the
// searches still need.
type TTThrash struct {
	MinGenerations int64   // aging ticks inside the window
	MinHitDrop     float64 // newer-half hit rate below older-half by this much
	MinProbes      int64   // probes per half before the rates mean anything
}

func (d *TTThrash) Name() string { return KindTTThrash }

func (d *TTThrash) Check(v *View) []Anomaly {
	if v.Samples < 3 {
		return nil
	}
	gens := v.Newest.TTGenerations - v.Oldest.TTGenerations
	if gens < d.MinGenerations {
		return nil
	}
	oldProbes := v.Mid.TTProbes - v.Oldest.TTProbes
	newProbes := v.Newest.TTProbes - v.Mid.TTProbes
	if oldProbes < d.MinProbes || newProbes < d.MinProbes {
		return nil
	}
	oldRate := float64(v.Mid.TTHits-v.Oldest.TTHits) / float64(oldProbes)
	newRate := float64(v.Newest.TTHits-v.Mid.TTHits) / float64(newProbes)
	if oldRate-newRate < d.MinHitDrop {
		return nil
	}
	return []Anomaly{{
		Kind: KindTTThrash,
		Detail: fmt.Sprintf("tt hit rate fell %.2f→%.2f across %d aging ticks in %.1fs (fill %d/%d)",
			oldRate, newRate, gens, v.Span.Seconds(), v.Newest.TTFill, v.Newest.TTLen),
	}}
}

// StealStarvation fires when the sharded heap's steal sweeps almost always
// come up empty: at least MinAttempts sweeps in the window with MinFailRatio
// of them failing. That is the paper's idle-worker overhead showing up live —
// workers burning cycles scanning shards that hold no work, usually a grain
// (SerialDepth) or fan-out problem.
type StealStarvation struct {
	MinAttempts  int64   // steal sweeps (hits + failures) in the window
	MinFailRatio float64 // failed fraction that counts as starvation
}

func (d *StealStarvation) Name() string { return KindStealStarvation }

func (d *StealStarvation) Check(v *View) []Anomaly {
	if v.Samples < 2 {
		return nil
	}
	steals := v.Newest.Steals - v.Oldest.Steals
	fails := v.Newest.StealFails - v.Oldest.StealFails
	attempts := steals + fails
	if attempts < d.MinAttempts {
		return nil
	}
	ratio := float64(fails) / float64(attempts)
	if ratio < d.MinFailRatio {
		return nil
	}
	return []Anomaly{{
		Kind: KindStealStarvation,
		Detail: fmt.Sprintf("%.0f%% of %d steal sweeps found every shard empty over %.1fs",
			ratio*100, attempts, v.Span.Seconds()),
	}}
}

// Stall is the per-session watchdog: a session that has not completed an
// iteration within StallFactor × its time budget is wedged — the deepening
// loop should either finish an iteration or get cut by its deadline well
// inside that bound. Fires once per session (the slot is flagged), carrying
// the session's correlation label so the warning, the access-log line, and
// the captured profiles share a request id.
type Stall struct{}

func (d *Stall) Name() string { return KindStall }

func (d *Stall) cooldownExempt() {}

func (d *Stall) Check(v *View) []Anomaly {
	var out []Anomaly
	for _, b := range v.Sessions {
		if b.Stalled {
			continue
		}
		budget := b.Budget
		if budget <= 0 {
			budget = v.cfg.StallBudget
		}
		limit := time.Duration(float64(budget) * v.cfg.StallFactor)
		idle := v.Now.Sub(b.LastProgress)
		if idle <= limit {
			continue
		}
		v.m.markStalled(b.ID)
		out = append(out, Anomaly{
			Kind:      KindStall,
			RequestID: b.Label,
			Detail: fmt.Sprintf("session %q has made no iteration progress for %s (budget %s, limit %s)",
				b.Label, idle.Round(time.Millisecond), budget, limit),
		})
	}
	return out
}
