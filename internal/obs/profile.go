package obs

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// cpuCaptureBusy guards runtime/pprof's process-global CPU profiler: only one
// StartCPUProfile may run at a time, across every monitor in the process (and
// against any -cpuprofile flag the host test binary set — in that case
// StartCPUProfile errors and the capture records why).
var cpuCaptureBusy atomic.Bool

// ProfileInfo describes one retained capture for listings.
type ProfileInfo struct {
	ID        int64     `json:"id"`
	Kind      string    `json:"kind"` // anomaly kind that triggered the capture
	At        time.Time `json:"at"`
	Goroutine int       `json:"goroutine_bytes"`
	CPU       int       `json:"cpu_bytes"`     // 0 while pending or skipped
	CPUState  string    `json:"cpu_state"`     // "done", "pending", "skipped", or an error
	URL       string    `json:"url,omitempty"` // filled by the serving layer
}

// profileEntry is one retained capture. The goroutine profile is taken
// synchronously at anomaly time; the CPU profile streams in from a background
// goroutine for the configured duration.
type profileEntry struct {
	id   int64
	kind string
	at   time.Time

	mu        sync.Mutex
	goroutine []byte
	cpu       []byte
	cpuState  string
}

// profileRing retains the newest N captures.
type profileRing struct {
	mu      sync.Mutex
	entries []*profileEntry
	max     int
}

func newProfileRing(max int) *profileRing {
	if max < 1 {
		max = 1
	}
	return &profileRing{max: max}
}

// capture takes a goroutine profile now and, when cpuDur > 0 and no other CPU
// capture is running, starts a cpuDur CPU profile in the background. Returns
// the capture id (the anomaly's id).
func (r *profileRing) capture(id int64, kind string, at time.Time, cpuDur time.Duration) int64 {
	e := &profileEntry{id: id, kind: kind, at: at, cpuState: "skipped"}
	var buf bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&buf, 0)
	}
	e.goroutine = buf.Bytes()

	if cpuDur > 0 {
		if cpuCaptureBusy.CompareAndSwap(false, true) {
			e.cpuState = "pending"
			go func() {
				defer cpuCaptureBusy.Store(false)
				var cb bytes.Buffer
				if err := pprof.StartCPUProfile(&cb); err != nil {
					e.setCPU(nil, "error: "+err.Error())
					return
				}
				time.Sleep(cpuDur)
				pprof.StopCPUProfile()
				e.setCPU(cb.Bytes(), "done")
			}()
		} else {
			e.cpuState = "skipped: capture already running"
		}
	}

	r.mu.Lock()
	r.entries = append(r.entries, e)
	if len(r.entries) > r.max {
		r.entries = r.entries[len(r.entries)-r.max:]
	}
	r.mu.Unlock()
	return id
}

func (e *profileEntry) setCPU(b []byte, state string) {
	e.mu.Lock()
	e.cpu, e.cpuState = b, state
	e.mu.Unlock()
}

func (e *profileEntry) info() ProfileInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ProfileInfo{
		ID:        e.id,
		Kind:      e.kind,
		At:        e.at,
		Goroutine: len(e.goroutine),
		CPU:       len(e.cpu),
		CPUState:  e.cpuState,
	}
}

// list returns the retained captures, oldest first.
func (r *profileRing) list() []ProfileInfo {
	r.mu.Lock()
	entries := make([]*profileEntry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	out := make([]ProfileInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	return out
}

// get returns the raw pprof bytes of one retained capture. typ is "goroutine"
// or "cpu"; ok is false for unknown ids, unknown types, and CPU captures that
// have not finished (or were skipped).
func (r *profileRing) get(id int64, typ string) ([]byte, bool) {
	r.mu.Lock()
	var e *profileEntry
	for _, c := range r.entries {
		if c.id == id {
			e = c
			break
		}
	}
	r.mu.Unlock()
	if e == nil {
		return nil, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch typ {
	case "", "goroutine":
		return e.goroutine, len(e.goroutine) > 0
	case "cpu":
		return e.cpu, len(e.cpu) > 0
	}
	return nil, false
}

// Profiles lists the monitor's retained captures, oldest first; nil-safe.
func (m *Monitor) Profiles() []ProfileInfo {
	if m == nil {
		return nil
	}
	return m.profiles.list()
}

// Profile returns the raw pprof bytes of one retained capture ("goroutine" by
// default, "cpu" for the CPU capture); nil-safe.
func (m *Monitor) Profile(id int64, typ string) ([]byte, bool) {
	if m == nil {
		return nil, false
	}
	return m.profiles.get(id, typ)
}
