package obs

import (
	"fmt"
	"io"
	"time"
)

// Report is the /debug/obs JSON body: configuration, the full sample ring,
// detector states, recent anomalies, retained profiles, and live sessions.
type Report struct {
	Enabled       bool             `json:"enabled"`
	SampleEveryMS int64            `json:"sample_every_ms,omitempty"`
	WindowMS      int64            `json:"window_ms,omitempty"`
	RingSlots     int              `json:"ring_slots,omitempty"`
	AnomalyTotal  int64            `json:"anomaly_total"`
	Totals        map[string]int64 `json:"totals,omitempty"`
	Samples       []Sample         `json:"samples,omitempty"`
	Detectors     []DetectorState  `json:"detectors,omitempty"`
	Anomalies     []Anomaly        `json:"anomalies,omitempty"`
	Profiles      []ProfileInfo    `json:"profiles,omitempty"`
	Sessions      []SessionBeat    `json:"sessions,omitempty"`
}

// Report snapshots the monitor for JSON exposition. Nil-safe: a disabled
// monitor reports Enabled=false and nothing else.
func (m *Monitor) Report() Report {
	if m == nil {
		return Report{}
	}
	m.mu.Lock()
	r := Report{
		Enabled:       true,
		SampleEveryMS: m.cfg.SampleEvery.Milliseconds(),
		WindowMS:      m.cfg.Window.Milliseconds(),
		RingSlots:     m.cfg.RingSlots,
		AnomalyTotal:  m.anomalyTotal.Load(),
		Samples:       m.ring.Snapshot(make([]Sample, 0, m.ring.Len())),
		Detectors:     append([]DetectorState(nil), m.states...),
		Anomalies:     m.anomalies.Snapshot(make([]Anomaly, 0, m.anomalies.Len())),
	}
	if len(m.totals) > 0 {
		r.Totals = make(map[string]int64, len(m.totals))
		for k, v := range m.totals {
			r.Totals[k] = v
		}
	}
	m.mu.Unlock()

	r.Profiles = m.profiles.list()

	m.beatMu.Lock()
	for i := range m.beats {
		b := &m.beats[i]
		if !b.active {
			continue
		}
		r.Sessions = append(r.Sessions, SessionBeat{
			ID:           i,
			Label:        b.label,
			Start:        b.start,
			Budget:       b.budget,
			LastProgress: time.Unix(0, b.last.Load()),
			Stalled:      b.stalled,
		})
	}
	m.beatMu.Unlock()
	return r
}

// WriteText renders the monitor state as a terminal report (the ertree -obs
// output). Nil-safe.
func (m *Monitor) WriteText(w io.Writer) {
	if m == nil {
		fmt.Fprintln(w, "obs: disabled")
		return
	}
	r := m.Report()
	fmt.Fprintf(w, "obs: %d/%d samples @%dms, window %dms, %d anomalies\n",
		len(r.Samples), r.RingSlots, r.SampleEveryMS, r.WindowMS, r.AnomalyTotal)
	if len(r.Samples) > 0 {
		s := r.Samples[len(r.Samples)-1]
		fmt.Fprintf(w, "latest: in-flight=%d waiting=%d goroutines=%d heap=%.1fMB\n",
			s.InFlight, s.Waiting, s.Goroutines, float64(s.HeapAlloc)/(1<<20))
		if s.TTLen > 0 {
			hitRate := 0.0
			if s.TTProbes > 0 {
				hitRate = float64(s.TTHits) / float64(s.TTProbes)
			}
			fmt.Fprintf(w, "table:  fill=%d/%d hit-rate=%.2f generations=%d\n",
				s.TTFill, s.TTLen, hitRate, s.TTGenerations)
		}
		o := r.Samples[0]
		span := s.At.Sub(o.At)
		fmt.Fprintf(w, "ring(%s): sessions +%d iterations +%d probes +%d sheds +%d steals +%d/+%d failed\n",
			span.Round(time.Millisecond),
			s.Sessions-o.Sessions, s.Iterations-o.Iterations, s.Probes-o.Probes,
			s.Sheds()-o.Sheds(), s.Steals-o.Steals, s.StealFails-o.StealFails)
	}
	fmt.Fprintln(w, "detectors:")
	for _, d := range r.Detectors {
		if d.Fires == 0 {
			fmt.Fprintf(w, "  %-17s ok\n", d.Name)
			continue
		}
		fmt.Fprintf(w, "  %-17s FIRED ×%d  last %s  %s\n",
			d.Name, d.Fires, time.UnixMilli(d.LastFireMS).Format(time.TimeOnly), d.LastDetail)
	}
	if len(r.Anomalies) > 0 {
		fmt.Fprintf(w, "anomalies (%d retained):\n", len(r.Anomalies))
		for _, a := range r.Anomalies {
			req := ""
			if a.RequestID != "" {
				req = " request=" + a.RequestID
			}
			fmt.Fprintf(w, "  #%d %s at %s%s profile=%d: %s\n",
				a.ID, a.Kind, a.At.Format(time.TimeOnly), req, a.ProfileID, a.Detail)
		}
	}
	if len(r.Profiles) > 0 {
		fmt.Fprintln(w, "profiles:")
		for _, p := range r.Profiles {
			fmt.Fprintf(w, "  #%d %s at %s goroutine=%dB cpu=%dB (%s)\n",
				p.ID, p.Kind, p.At.Format(time.TimeOnly), p.Goroutine, p.CPU, p.CPUState)
		}
	}
	if len(r.Sessions) > 0 {
		fmt.Fprintf(w, "sessions (%d live):\n", len(r.Sessions))
		now := time.Now()
		for _, b := range r.Sessions {
			flag := ""
			if b.Stalled {
				flag = "  STALLED"
			}
			fmt.Fprintf(w, "  #%d %-14s budget=%s running=%s since-progress=%s%s\n",
				b.ID, b.Label, b.Budget,
				now.Sub(b.Start).Round(time.Millisecond),
				now.Sub(b.LastProgress).Round(time.Millisecond), flag)
		}
	}
}
