package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"ertree/internal/telemetry"
)

// tick drives the monitor with a synthetic sample at a synthetic time: set
// the source to copy s (minus At), then Tick(at).
func tick(m *Monitor, at time.Time, s Sample) {
	m.SetSource(func(dst *Sample) {
		at := dst.At
		*dst = s
		dst.At = at
	})
	m.Tick(at)
}

// newTestMonitor builds a monitor with no CPU capture (keeps tests fast and
// avoids fighting over the process-global CPU profiler under -race).
func newTestMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = -1
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

func TestDisabledMonitorIsNilSafe(t *testing.T) {
	var m *Monitor
	id := m.SessionStart("req-1", time.Second)
	if id != -1 {
		t.Fatalf("nil monitor SessionStart = %d, want -1", id)
	}
	m.SessionProgress(id)
	m.SessionEnd(id)
	m.Tick(time.Now())
	m.Start()
	m.Close()
	if n := m.AnomalyTotal(); n != 0 {
		t.Fatalf("nil monitor AnomalyTotal = %d", n)
	}
	if r := m.Report(); r.Enabled {
		t.Fatal("nil monitor reports enabled")
	}
	if p := m.Profiles(); p != nil {
		t.Fatalf("nil monitor Profiles = %v", p)
	}
	var buf bytes.Buffer
	m.WriteText(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil WriteText = %q", buf.String())
	}
}

// TestDisabledHeartbeatAllocFree pins the acceptance criterion: the disabled
// path of the per-session heartbeats is one nil check and zero allocations,
// exactly like the core hooks' disabled instrumentation.
func TestDisabledHeartbeatAllocFree(t *testing.T) {
	var m *Monitor
	allocs := testing.AllocsPerRun(1000, func() {
		id := m.SessionStart("label", time.Second)
		m.SessionProgress(id)
		m.SessionEnd(id)
		_ = m.AnomalyTotal()
	})
	if allocs != 0 {
		t.Fatalf("disabled heartbeat path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledTickSteadyStateAllocFree pins the sampling-ring design goal: a
// tick that fires nothing writes into preallocated ring slots and scratch
// buffers — no background allocation from the sampler goroutine.
func TestEnabledTickSteadyStateAllocFree(t *testing.T) {
	m := newTestMonitor(t, Config{RingSlots: 32})
	var n int64
	m.SetSource(func(s *Sample) {
		n++
		s.Sessions = n
	})
	at := time.Now()
	for i := 0; i < 64; i++ { // wrap the ring so append never grows again
		at = at.Add(100 * time.Millisecond)
		m.Tick(at)
	}
	allocs := testing.AllocsPerRun(200, func() {
		at = at.Add(100 * time.Millisecond)
		m.Tick(at)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkDisabledHeartbeat(b *testing.B) {
	var m *Monitor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := m.SessionStart("label", time.Second)
		m.SessionProgress(id)
		m.SessionEnd(id)
	}
}

func TestShedSpikeFiresAndCoolsDown(t *testing.T) {
	var logBuf bytes.Buffer
	reg := telemetry.NewRegistry()
	m := newTestMonitor(t, Config{
		Window:   5 * time.Second,
		Cooldown: time.Minute,
		Logger:   slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Registry: reg,
	})
	base := time.Now()
	tick(m, base, Sample{})
	tick(m, base.Add(time.Second), Sample{ShedTimeout: 30, ShedFull: 12})
	if got := m.AnomalyTotal(); got != 1 {
		t.Fatalf("AnomalyTotal = %d after a 42-shed second, want 1", got)
	}
	r := m.Report()
	if r.Totals[KindShedSpike] != 1 {
		t.Fatalf("totals = %v, want one %s", r.Totals, KindShedSpike)
	}
	if len(r.Anomalies) != 1 || r.Anomalies[0].Kind != KindShedSpike {
		t.Fatalf("anomalies = %+v", r.Anomalies)
	}
	// The firing captured a goroutine profile retrievable by the anomaly id.
	pid := r.Anomalies[0].ProfileID
	if pid == 0 {
		t.Fatal("anomaly has no profile id")
	}
	if b, ok := m.Profile(pid, "goroutine"); !ok || len(b) == 0 {
		t.Fatalf("goroutine profile for capture %d missing (ok=%v len=%d)", pid, ok, len(b))
	}
	// The counter and the structured warning both fired.
	if got := telemetry.NewRegistry; got == nil {
		t.Fatal("unreachable")
	}
	var metrics bytes.Buffer
	if err := reg.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), `obs_anomaly_total{kind="shed-spike"} 1`) {
		t.Fatalf("metrics missing obs_anomaly_total:\n%s", metrics.String())
	}
	if !strings.Contains(logBuf.String(), `"kind":"shed-spike"`) {
		t.Fatalf("no structured warning logged: %s", logBuf.String())
	}
	// Within the cooldown the same detector stays quiet even though the
	// window still shows the spike.
	tick(m, base.Add(2*time.Second), Sample{ShedTimeout: 60, ShedFull: 24})
	if got := m.AnomalyTotal(); got != 1 {
		t.Fatalf("AnomalyTotal = %d inside cooldown, want still 1", got)
	}
}

func TestProbeStormFires(t *testing.T) {
	m := newTestMonitor(t, Config{})
	base := time.Now()
	tick(m, base, Sample{Iterations: 100, Probes: 100})
	// 10 iterations resolving 640 probes: budget-fallback territory.
	tick(m, base.Add(time.Second), Sample{Iterations: 110, Probes: 740})
	r := m.Report()
	if r.Totals[KindProbeStorm] != 1 {
		t.Fatalf("totals = %v, want one %s", r.Totals, KindProbeStorm)
	}
	// Healthy convergence (≈2 probes/iteration) must not fire.
	m2 := newTestMonitor(t, Config{})
	tick(m2, base, Sample{})
	tick(m2, base.Add(time.Second), Sample{Iterations: 100, Probes: 200})
	if got := m2.AnomalyTotal(); got != 0 {
		t.Fatalf("healthy probe traffic fired %d anomalies", got)
	}
}

func TestTTThrashFires(t *testing.T) {
	m := newTestMonitor(t, Config{Window: 4 * time.Second})
	base := time.Now()
	// Older half: 90% hit rate. Newer half: 30%, with 8 aging ticks.
	tick(m, base, Sample{})
	tick(m, base.Add(2*time.Second), Sample{TTProbes: 1000, TTHits: 900, TTGenerations: 4})
	tick(m, base.Add(4*time.Second), Sample{TTProbes: 2000, TTHits: 1200, TTGenerations: 8})
	r := m.Report()
	if r.Totals[KindTTThrash] != 1 {
		t.Fatalf("totals = %v, want one %s", r.Totals, KindTTThrash)
	}
}

func TestStealStarvationFires(t *testing.T) {
	m := newTestMonitor(t, Config{})
	base := time.Now()
	tick(m, base, Sample{})
	tick(m, base.Add(time.Second), Sample{Steals: 10, StealFails: 990})
	r := m.Report()
	if r.Totals[KindStealStarvation] != 1 {
		t.Fatalf("totals = %v, want one %s", r.Totals, KindStealStarvation)
	}
}

func TestStallWatchdogFiresOncePerSession(t *testing.T) {
	m := newTestMonitor(t, Config{StallFactor: 3})
	id := m.SessionStart("req-stall", 100*time.Millisecond)
	if id < 0 {
		t.Fatalf("SessionStart = %d", id)
	}
	defer m.SessionEnd(id)
	// Well past 3× the 100ms budget with no progress heartbeat.
	future := time.Now().Add(2 * time.Second)
	tick(m, future, Sample{})
	r := m.Report()
	if r.Totals[KindStall] != 1 {
		t.Fatalf("totals = %v, want one %s", r.Totals, KindStall)
	}
	if got := r.Anomalies[0].RequestID; got != "req-stall" {
		t.Fatalf("stall anomaly request id = %q, want the session label", got)
	}
	// The slot is flagged: later ticks do not refire for the same session.
	tick(m, future.Add(time.Second), Sample{})
	if got := m.AnomalyTotal(); got != 1 {
		t.Fatalf("stall refired: AnomalyTotal = %d", got)
	}
	// A session that heartbeats is never flagged.
	m2 := newTestMonitor(t, Config{})
	id2 := m2.SessionStart("req-live", 100*time.Millisecond)
	m2.SessionProgress(id2)
	tick(m2, time.Now().Add(100*time.Millisecond), Sample{})
	m2.SessionEnd(id2)
	if got := m2.AnomalyTotal(); got != 0 {
		t.Fatalf("heartbeating session flagged as stalled: %d anomalies", got)
	}
}

func TestProfileRingBounded(t *testing.T) {
	r := newProfileRing(2)
	for i := int64(1); i <= 5; i++ {
		r.capture(i, "stall", time.Now(), -1)
	}
	got := r.list()
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("profile ring = %+v, want captures 4 and 5", got)
	}
	if _, ok := r.get(1, "goroutine"); ok {
		t.Fatal("evicted capture still retrievable")
	}
	if _, ok := r.get(5, "cpu"); ok {
		t.Fatal("cpu bytes reported for a capture that skipped CPU profiling")
	}
	if b, ok := r.get(5, "goroutine"); !ok || len(b) == 0 {
		t.Fatal("goroutine profile missing from retained capture")
	}
}

func TestStartStopBackgroundSampler(t *testing.T) {
	m := New(Config{SampleEvery: time.Millisecond, CPUProfile: -1})
	var n int
	m.SetSource(func(s *Sample) { n++ })
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r := m.Report(); len(r.Samples) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sampler took no samples in 2s")
		}
		time.Sleep(time.Millisecond)
	}
	m.Close()
	m.Close() // idempotent
}

func TestWriteTextRendersState(t *testing.T) {
	m := newTestMonitor(t, Config{})
	base := time.Now()
	tick(m, base, Sample{})
	tick(m, base.Add(time.Second), Sample{ShedFull: 50, Sessions: 5, TTLen: 1024, TTFill: 100, TTProbes: 10, TTHits: 9})
	var buf bytes.Buffer
	m.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"detectors:", KindShedSpike, "FIRED", "anomalies", "latest:", "table:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}
