package flight_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ertree/internal/core"
	"ertree/internal/flight"
	"ertree/internal/game"
	"ertree/internal/gtree"
)

type sink struct {
	mu   sync.Mutex
	tels []core.WorkerTelemetry
}

func (s *sink) add(wt core.WorkerTelemetry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tels = append(s.tels, wt)
}

func searchWithRecorder(t *testing.T, pos game.Position, depth int, opt core.Options, ring int) []core.WorkerTelemetry {
	t.Helper()
	sk := &sink{}
	opt.Hooks = &core.Hooks{Events: ring, HeapEvery: 4, OnWorkerDone: sk.add}
	if _, err := core.Search(pos, depth, opt); err != nil {
		t.Fatal(err)
	}
	return sk.tels
}

// TestBusyPartitionProperty is the acceptance property: over random trees
// and runtime configurations, useful-primary + useful-speculative +
// wasted-speculative busy time equals total instrumented busy time exactly,
// and likewise for task counts — the attribution is a partition, not a
// sample.
func TestBusyPartitionProperty(t *testing.T) {
	spec := gtree.RandomSpec{MinDegree: 2, MaxDegree: 5, MinDepth: 3, MaxDepth: 6, ValueRange: 200}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		tree := spec.Generate(rng)
		opt := core.DefaultOptions()
		opt.Workers = 1 + i%4
		opt.Sharded = i%2 == 1
		opt.SerialDepth = i % 3
		tels := searchWithRecorder(t, tree, tree.Height(), opt, 1<<20)
		rep := flight.Build(tels, flight.Options{Workers: opt.Workers})
		if rep.EventDrops != 0 {
			t.Fatalf("case %d: unexpected ring drops (%d)", i, rep.EventDrops)
		}
		sumTime := rep.UsefulPrimary.Time + rep.UsefulSpec.Time + rep.WastedSpec.Time
		if sumTime != rep.Busy {
			t.Fatalf("case %d: buckets sum to %v, busy is %v", i, sumTime, rep.Busy)
		}
		sumTasks := rep.UsefulPrimary.Tasks + rep.UsefulSpec.Tasks + rep.WastedSpec.Tasks
		if sumTasks != rep.Tasks {
			t.Fatalf("case %d: buckets count %d tasks, telemetry counted %d", i, sumTasks, rep.Tasks)
		}
		var perPly flight.Bucket
		for _, p := range rep.Plies {
			perPly.Tasks += p.UsefulPrimary.Tasks + p.UsefulSpec.Tasks + p.WastedSpec.Tasks
			perPly.Time += p.UsefulPrimary.Time + p.UsefulSpec.Time + p.WastedSpec.Time
		}
		if perPly.Tasks != sumTasks || perPly.Time != sumTime {
			t.Fatalf("case %d: per-ply profiles disagree with totals", i)
		}
	}
}

// TestMinimalTreeCountsExact is the acceptance check against internal/gtree:
// on a complete tree the report's minimal-leaf count must equal the
// Slagle–Dixon closed form and its minimal-node count the rule-based
// classification — two independently derived quantities.
func TestMinimalTreeCountsExact(t *testing.T) {
	const degree, height = 3, 4
	tree := gtree.Complete(degree, height, func(i int) game.Value {
		return game.Value((i*37)%101 - 50)
	})
	opt := core.DefaultOptions()
	opt.Workers = 4
	tels := searchWithRecorder(t, tree, height, opt, 1<<20)
	rep := flight.Build(tels, flight.Options{Root: tree})
	m := rep.Minimal
	if m == nil {
		t.Fatal("no minimal report despite Options.Root")
	}
	if want := gtree.MinimalLeafCount(degree, height); m.MinimalLeaves != want {
		t.Fatalf("minimal leaves %d, closed form says %d", m.MinimalLeaves, want)
	}
	if want := gtree.ClassifyDeep(tree).CriticalNodes(); m.MinimalNodes != want {
		t.Fatalf("minimal nodes %d, classifier says %d", m.MinimalNodes, want)
	}
	if m.TreeNodes != tree.Size() {
		t.Fatalf("tree nodes %d, want %d", m.TreeNodes, tree.Size())
	}
	if m.Unmapped != 0 {
		t.Fatalf("%d unmapped spawns without ring drops", m.Unmapped)
	}
	// Every node the search materialized must exist in the game tree, and
	// the per-type tally must account for each visited node exactly once.
	byType := m.VisitedByType[0] + m.VisitedByType[1] + m.VisitedByType[2] + m.VisitedByType[3]
	if byType != m.VisitedNodes {
		t.Fatalf("per-type tally %d, visited %d", byType, m.VisitedNodes)
	}
	if m.VisitedNodes > m.TreeNodes {
		t.Fatalf("visited %d nodes of a %d-node tree", m.VisitedNodes, m.TreeNodes)
	}
	if m.VisitedNodes == 0 || m.VisitedByType[1] == 0 {
		t.Fatal("search visited no type-1 nodes — mapping is broken")
	}
}

// slowPos wraps an explicit tree with an artificial evaluation delay. Fast
// in-memory evaluations never let the primary queue drain, so the real
// runtime would never reach the speculative queue; the delay reproduces the
// elder-evaluation starvation window the paper's speculation exists to fill.
type slowPos struct {
	n     *gtree.Node
	delay time.Duration
}

func (p slowPos) Children() []game.Position {
	if len(p.n.Kids) == 0 {
		return nil
	}
	out := make([]game.Position, len(p.n.Kids))
	for i, k := range p.n.Kids {
		out[i] = slowPos{n: k, delay: p.delay}
	}
	return out
}

func (p slowPos) Value() game.Value {
	time.Sleep(p.delay)
	return p.n.Value()
}

// TestWasteDetected: with slow evaluations at P=8 the speculative queue is
// reliably exercised; the profiler must observe the speculative work, keep
// the waste ratio in [0,1], and stay a partition of busy time.
func TestWasteDetected(t *testing.T) {
	tree := gtree.Complete(4, 4, func(i int) game.Value {
		return game.Value((i*37)%101 - 50)
	})
	var sawSpec, sawWaste bool
	for i := 0; i < 6 && !(sawSpec && sawWaste); i++ {
		opt := core.DefaultOptions()
		opt.Workers = 8
		opt.EagerSpec = true
		tels := searchWithRecorder(t, slowPos{n: tree, delay: 50 * time.Microsecond}, 4, opt, 1<<20)
		rep := flight.Build(tels, flight.Options{})
		if rep.WastedRatio() < 0 || rep.WastedRatio() > 1 {
			t.Fatalf("degenerate waste ratio %f", rep.WastedRatio())
		}
		if sum := rep.UsefulPrimary.Time + rep.UsefulSpec.Time + rep.WastedSpec.Time; sum != rep.Busy {
			t.Fatalf("buckets sum to %v, busy is %v", sum, rep.Busy)
		}
		sawSpec = sawSpec || rep.SpecPromotions > 0 || rep.Kinds[core.TaskSpec.String()] > 0
		sawWaste = sawWaste || rep.WastedSpec.Tasks > 0
	}
	if !sawSpec {
		t.Fatal("slow-eval searches at P=8 never reached the speculative queue")
	}
	if !sawWaste {
		t.Log("no wasted speculation attributed in 6 runs (schedule-dependent; not a failure)")
	}
}

// TestWriteText smoke-checks the terminal rendering.
func TestWriteText(t *testing.T) {
	tree := gtree.Complete(2, 4, func(i int) game.Value { return game.Value(i % 7) })
	opt := core.DefaultOptions()
	opt.Workers = 2
	tels := searchWithRecorder(t, tree, 4, opt, 1<<16)
	rep := flight.Build(tels, flight.Options{Label: "smoke", Root: tree})
	var b strings.Builder
	rep.WriteText(&b)
	out := b.String()
	for _, want := range []string{"flight report: smoke", "busy split", "minimal tree"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestBuildTinyRing: with drops the report stays internally consistent (the
// buckets cover at most the recorded span, never more than total busy).
func TestBuildTinyRing(t *testing.T) {
	spec := gtree.RandomSpec{MinDegree: 3, MaxDegree: 4, MinDepth: 5, MaxDepth: 6, ValueRange: 100}
	tree := spec.Generate(rand.New(rand.NewSource(3)))
	opt := core.DefaultOptions()
	opt.Workers = 2
	tels := searchWithRecorder(t, tree, tree.Height(), opt, 16)
	rep := flight.Build(tels, flight.Options{})
	if rep.EventDrops == 0 {
		t.Fatal("a 16-entry ring should drop on this tree")
	}
	if sum := rep.UsefulPrimary.Time + rep.UsefulSpec.Time + rep.WastedSpec.Time; sum > rep.Busy {
		t.Fatalf("bucket sum %v exceeds total busy %v", sum, rep.Busy)
	}
}
