// Package flight turns a search's flight-recorder log (internal/core
// events) into a speculation-waste profile: where the busy time went, how
// much of it was speculative, and how much of the speculative share was
// wasted — the per-search answer to the paper's §6 question of how far
// parallel ER strays from the work a serial search would have done.
//
// Attribution rules (see DESIGN.md "Per-search introspection"):
//
//   - Every executed task (EvTask) carries its busy duration and whether its
//     node was speculative-born, so the task log partitions total busy time
//     exactly.
//   - A node is *wasted* when its subtree result was observably thrown away:
//     the node was discarded dead at pop time (TaskDrop), its completed
//     result was discarded after the heavy work or at combine time
//     (EvDiscard), or any ancestor was. Ancestry comes from the spawn log
//     and waste propagates downward: work under a discarded node could not
//     have contributed to the root.
//   - Buckets: wasted-speculative is speculative-born work on wasted nodes
//     (plus speculative dead-node drops); useful-speculative is the
//     remaining speculative work; useful-primary is everything else. Primary
//     work the scheduler discarded is rare (it requires a cutoff racing the
//     queue) and stays in the primary bucket, so the three buckets always
//     sum to total recorded busy time.
//
// When the per-worker rings wrapped (EventDrops > 0) the log is a suffix of
// the search and the buckets cover only what survived; Report.Busy still
// totals the full search from the aggregate counters so the gap is visible.
package flight

import (
	"sort"
	"time"

	"ertree/internal/core"
	"ertree/internal/gtree"
)

// Options configures report construction.
type Options struct {
	// Label names the search in the report (request id, workload name).
	Label string
	// Workers is the searching worker count, for the report header.
	Workers int
	// Root, when the search ran over an explicit gtree.Node position with
	// natural move order (no Orderer; e-node children are never statically
	// sorted), enables minimal-tree classification: spawn events map each
	// search node back to its gtree node by move index, and the visited set
	// is compared against the Knuth–Moore critical tree. Leave nil for real
	// games, where no explicit tree exists.
	Root *gtree.Node
}

// Bucket totals one waste-attribution class.
type Bucket struct {
	Tasks int64         `json:"tasks"`
	Time  time.Duration `json:"time_ns"`
}

func (b *Bucket) add(d time.Duration) { b.Tasks++; b.Time += d }

// PlyProfile is the bucket split at one tree depth.
type PlyProfile struct {
	Ply           int    `json:"ply"`
	UsefulPrimary Bucket `json:"useful_primary"`
	UsefulSpec    Bucket `json:"useful_spec"`
	WastedSpec    Bucket `json:"wasted_spec"`
}

// MinimalReport compares the visited parallel tree against the Knuth–Moore
// minimal tree (gtree workloads only).
type MinimalReport struct {
	TreeNodes     int `json:"tree_nodes"`     // nodes in the full game tree
	MinimalNodes  int `json:"minimal_nodes"`  // critical nodes (types 1-3)
	MinimalLeaves int `json:"minimal_leaves"` // critical terminal nodes
	VisitedNodes  int `json:"visited_nodes"`  // distinct nodes the search materialized
	// VisitedByType counts visited nodes per critical type; index 0 is
	// nodes outside the minimal tree — the search overhead of §6.
	VisitedByType [4]int `json:"visited_by_type"`
	// Overhead is VisitedNodes/MinimalNodes - 1: zero for a perfectly
	// ordered serial alpha-beta, growing with speculative excess.
	Overhead float64 `json:"overhead"`
	// Unmapped counts spawn events whose parent could not be placed in the
	// game tree (possible only when ring drops cut the spawn chain).
	Unmapped int `json:"unmapped,omitempty"`
}

// Report is a search's speculation-waste profile.
type Report struct {
	Label   string `json:"label,omitempty"`
	Workers int    `json:"workers"`

	// Busy and Tasks total the search from the aggregate per-kind counters,
	// which never drop; the buckets below cover the recorded events.
	Busy  time.Duration    `json:"busy_ns"`
	Tasks int64            `json:"tasks"`
	Kinds map[string]int64 `json:"tasks_by_kind"`

	UsefulPrimary Bucket       `json:"useful_primary"`
	UsefulSpec    Bucket       `json:"useful_spec"`
	WastedSpec    Bucket       `json:"wasted_spec"`
	Plies         []PlyProfile `json:"plies"`

	Events     int   `json:"events"`
	EventDrops int64 `json:"event_drops"`

	Spawns         int64 `json:"spawns"`
	Promotions     int64 `json:"promotions"`
	SpecPromotions int64 `json:"spec_promotions"`
	Refutations    int64 `json:"refutations"`
	Combines       int64 `json:"combines"`
	Aborts         int64 `json:"aborts"`
	Discards       int64 `json:"discards"`
	TTCutoffs      int64 `json:"tt_cutoffs"`
	Steals         int64 `json:"steals"`
	HeapPeak       int   `json:"heap_peak"`

	Minimal *MinimalReport `json:"minimal,omitempty"`
}

// WastedRatio returns the wasted-speculative share of recorded busy time.
func (r *Report) WastedRatio() float64 {
	total := r.UsefulPrimary.Time + r.UsefulSpec.Time + r.WastedSpec.Time
	if total == 0 {
		return 0
	}
	return float64(r.WastedSpec.Time) / float64(total)
}

// Build reconstructs a search's profile from the worker telemetry shards
// delivered by core.Hooks.OnWorkerDone. The shards must come from one search
// (or one deepening session sharing an epoch) with Hooks.Events armed.
func Build(tels []core.WorkerTelemetry, opts Options) *Report {
	r := &Report{
		Label:   opts.Label,
		Workers: opts.Workers,
		Kinds:   make(map[string]int64, int(core.NumTaskKinds)),
	}
	if r.Workers == 0 {
		r.Workers = len(tels)
	}

	var events []core.Event
	for i := range tels {
		wt := &tels[i]
		r.Busy += wt.Busy()
		r.Tasks += wt.Tasks()
		for k := core.TaskKind(0); k < core.NumTaskKinds; k++ {
			if c := wt.TaskCounts[k]; c > 0 {
				r.Kinds[k.String()] += c
			}
		}
		r.Events += len(wt.Events)
		r.EventDrops += wt.EventDrops
		events = append(events, wt.Events...)
		for _, hs := range wt.HeapSamples {
			if occ := hs.Primary + hs.Spec; occ > r.HeapPeak {
				r.HeapPeak = occ
			}
		}
	}

	// First pass: ancestry and the discarded set.
	parent := make(map[uint64]uint64)
	discarded := make(map[uint64]bool)
	for _, e := range events {
		switch e.Kind {
		case core.EvSpawn:
			parent[e.Seq] = e.Par
			r.Spawns++
		case core.EvDiscard:
			discarded[e.Seq] = true
			r.Discards++
		case core.EvTask:
			if e.Task == core.TaskDrop {
				discarded[e.Seq] = true
			}
		case core.EvPromote:
			r.Promotions++
			if e.Spec {
				r.SpecPromotions++
			}
		case core.EvRefute:
			r.Refutations++
		case core.EvCombine:
			r.Combines++
		case core.EvAbort:
			r.Aborts++
		case core.EvTTCutoff:
			r.TTCutoffs++
		case core.EvSteal:
			r.Steals++
		}
	}

	// wasted memoizes downward waste propagation: a node is wasted when it
	// or any known ancestor was discarded.
	wasted := make(map[uint64]bool, len(discarded))
	var isWasted func(seq uint64) bool
	isWasted = func(seq uint64) bool {
		if w, ok := wasted[seq]; ok {
			return w
		}
		w := discarded[seq]
		if !w {
			if par, ok := parent[seq]; ok {
				w = isWasted(par)
			}
		}
		wasted[seq] = w
		return w
	}

	// Second pass: bucket every executed task.
	plies := make(map[int]*PlyProfile)
	plyOf := func(ply int) *PlyProfile {
		p, ok := plies[ply]
		if !ok {
			p = &PlyProfile{Ply: ply}
			plies[ply] = p
		}
		return p
	}
	for _, e := range events {
		if e.Kind != core.EvTask {
			continue
		}
		p := plyOf(int(e.Ply))
		switch {
		case e.Spec && isWasted(e.Seq):
			r.WastedSpec.add(e.Dur)
			p.WastedSpec.add(e.Dur)
		case e.Spec:
			r.UsefulSpec.add(e.Dur)
			p.UsefulSpec.add(e.Dur)
		default:
			r.UsefulPrimary.add(e.Dur)
			p.UsefulPrimary.add(e.Dur)
		}
	}
	for _, p := range plies {
		r.Plies = append(r.Plies, *p)
	}
	sort.Slice(r.Plies, func(i, j int) bool { return r.Plies[i].Ply < r.Plies[j].Ply })

	if opts.Root != nil {
		r.Minimal = minimalReport(opts.Root, events)
	}
	return r
}

// minimalReport maps the spawn log back onto the explicit game tree and
// classifies the visited set against the Knuth–Moore critical tree. Spawn
// events carry the child's move index into the parent's move list, which for
// natural move order is the index into the parent's Kids — e-node children
// are never statically reordered and the default orderer is the identity.
func minimalReport(root *gtree.Node, events []core.Event) *MinimalReport {
	class := gtree.ClassifyDeep(root)
	m := &MinimalReport{
		TreeNodes:     root.Size(),
		MinimalNodes:  class.CriticalNodes(),
		MinimalLeaves: class.CriticalLeaves(),
	}

	// Spawns from different workers arrive unordered; resolve them with a
	// fixpoint pass so a child is placed as soon as its parent is (bounded
	// by the tree height in rounds).
	placed := map[uint64]*gtree.Node{core.RootSeq: root}
	pending := make([]core.Event, 0, len(events))
	for _, e := range events {
		if e.Kind == core.EvSpawn {
			pending = append(pending, e)
		}
	}
	for len(pending) > 0 {
		progress := false
		rest := pending[:0]
		for _, e := range pending {
			g, ok := placed[e.Par]
			if !ok {
				rest = append(rest, e)
				continue
			}
			if int(e.Arg) < len(g.Kids) {
				placed[e.Seq] = g.Kids[e.Arg]
			}
			progress = true
		}
		pending = rest
		if !progress {
			break
		}
	}
	m.Unmapped = len(pending)

	seen := make(map[*gtree.Node]bool, len(placed))
	for _, g := range placed {
		if seen[g] {
			continue // transpositions cannot occur in a tree; defensive
		}
		seen[g] = true
		m.VisitedNodes++
		t := class[g] // NonCritical (0) when outside the minimal tree
		m.VisitedByType[t]++
	}
	if m.MinimalNodes > 0 {
		m.Overhead = float64(m.VisitedNodes)/float64(m.MinimalNodes) - 1
	}
	return m
}
