package flight

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteText renders the report for terminals (cmd/ertree -flight).
func (r *Report) WriteText(w io.Writer) {
	if r.Label != "" {
		fmt.Fprintf(w, "flight report: %s\n", r.Label)
	} else {
		fmt.Fprintln(w, "flight report")
	}
	fmt.Fprintf(w, "  workers %d   tasks %d   busy %v   events %d (dropped %d)\n",
		r.Workers, r.Tasks, r.Busy.Round(time.Microsecond), r.Events, r.EventDrops)

	kinds := make([]string, 0, len(r.Kinds))
	for k := range r.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprint(w, "  by kind:")
	for _, k := range kinds {
		fmt.Fprintf(w, " %s=%d", k, r.Kinds[k])
	}
	fmt.Fprintln(w)

	recorded := r.UsefulPrimary.Time + r.UsefulSpec.Time + r.WastedSpec.Time
	pct := func(b Bucket) float64 {
		if recorded == 0 {
			return 0
		}
		return 100 * float64(b.Time) / float64(recorded)
	}
	fmt.Fprintf(w, "  busy split: primary %v (%.1f%%)   spec useful %v (%.1f%%)   spec wasted %v (%.1f%%)\n",
		r.UsefulPrimary.Time.Round(time.Microsecond), pct(r.UsefulPrimary),
		r.UsefulSpec.Time.Round(time.Microsecond), pct(r.UsefulSpec),
		r.WastedSpec.Time.Round(time.Microsecond), pct(r.WastedSpec))
	fmt.Fprintf(w, "  schedule: spawns %d   promotions %d (%d speculative)   refutations %d   aborts %d   discards %d\n",
		r.Spawns, r.Promotions, r.SpecPromotions, r.Refutations, r.Aborts, r.Discards)
	fmt.Fprintf(w, "  tt cutoffs %d   steals %d   heap peak %d\n", r.TTCutoffs, r.Steals, r.HeapPeak)

	if len(r.Plies) > 0 {
		fmt.Fprintln(w, "  per ply (tasks: primary / spec-useful / spec-wasted):")
		for _, p := range r.Plies {
			fmt.Fprintf(w, "    ply %2d: %6d / %6d / %6d\n",
				p.Ply, p.UsefulPrimary.Tasks, p.UsefulSpec.Tasks, p.WastedSpec.Tasks)
		}
	}

	if m := r.Minimal; m != nil {
		fmt.Fprintf(w, "  minimal tree: %d of %d tree nodes critical (%d critical leaves)\n",
			m.MinimalNodes, m.TreeNodes, m.MinimalLeaves)
		fmt.Fprintf(w, "  visited %d nodes: type1 %d, type2 %d, type3 %d, off-minimal %d   overhead %.2fx\n",
			m.VisitedNodes, m.VisitedByType[1], m.VisitedByType[2], m.VisitedByType[3],
			m.VisitedByType[0], m.Overhead)
		if m.Unmapped > 0 {
			fmt.Fprintf(w, "  (%d spawns unmapped: ring drops cut the spawn chain)\n", m.Unmapped)
		}
	}
}
