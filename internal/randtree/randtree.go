// Package randtree provides the synthetic game trees used in the paper's
// experiments (§7, Table 3): fixed-degree trees whose leaves carry
// independent pseudo-random values drawn from a uniform distribution, plus
// "strongly ordered" trees in Marsland's sense (§4.4) for the baseline
// experiments.
//
// Trees are never materialized. A position is identified by the hash of its
// path from the root, so the same (seed, path) always yields the same leaf
// value, searches of the same tree are reproducible across processes and
// processor counts, and trees with millions of leaves cost no memory.
package randtree

import (
	"fmt"

	"ertree/internal/game"
)

// Tree describes a uniform random game tree: every interior node has exactly
// Degree children, every root-to-leaf path has length Depth, and each leaf
// has an independent pseudo-random value uniform on [-ValueRange, ValueRange].
type Tree struct {
	Seed       uint64
	Degree     int
	Depth      int
	ValueRange int32
}

// Root returns the root position of the tree.
func (t *Tree) Root() game.Position {
	if t.Degree < 1 || t.Depth < 0 {
		panic(fmt.Sprintf("randtree: invalid tree %+v", t))
	}
	return pos{t: t, hash: splitmix64(t.Seed ^ 0xD1B54A32D192ED03), ply: 0}
}

func (t *Tree) String() string {
	return fmt.Sprintf("random(d=%d,h=%d,seed=%#x)", t.Degree, t.Depth, t.Seed)
}

type pos struct {
	t    *Tree
	hash uint64
	ply  int
}

var _ game.Position = pos{}

// Children returns the Degree successors, or nil at the leaf ply.
func (p pos) Children() []game.Position {
	if p.ply >= p.t.Depth {
		return nil
	}
	out := make([]game.Position, p.t.Degree)
	for i := range out {
		out[i] = pos{t: p.t, hash: childHash(p.hash, i), ply: p.ply + 1}
	}
	return out
}

// Value returns the leaf's uniform pseudo-random value. For interior nodes
// it returns an *uninformed* estimate (independent noise in the same range):
// the paper's random-tree experiments do not benefit from static ordering,
// and tests rely on this property.
func (p pos) Value() game.Value {
	h := p.hash
	if p.ply < p.t.Depth {
		h = splitmix64(h ^ 0xA0761D6478BD642F) // decorrelate interior estimates
	}
	return uniform(h, p.t.ValueRange)
}

// Hash returns the node's identity hash, making random trees usable with
// transposition tables (tt.Hashable). A synthetic tree has no transpositions
// — every node's path hash is distinct — so the table serves cross-task and
// cross-search reuse rather than in-tree sharing.
func (p pos) Hash() uint64 { return p.hash }

// childHash derives the hash of the i-th child of a node with hash h.
func childHash(h uint64, i int) uint64 {
	return splitmix64(h ^ (uint64(i+1) * 0x9E3779B97F4A7C15))
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// uniform maps a hash to a value uniform on [-r, r].
func uniform(h uint64, r int32) game.Value {
	if r <= 0 {
		return 0
	}
	span := uint64(2*r + 1)
	return game.Value(int64(h%span) - int64(r))
}

// The paper's Table 3 random workloads. Seeds are fixed so every figure is
// reproducible; the search depth equals the tree depth and the serial depths
// (7, 7, 5) live with the experiment configurations.

// R1 is random tree R1: degree 4, 10 ply.
func R1() *Tree { return &Tree{Seed: 0x5EC0_0001, Degree: 4, Depth: 10, ValueRange: 10000} }

// R2 is random tree R2: degree 4, 11 ply.
func R2() *Tree { return &Tree{Seed: 0x5EC0_0002, Degree: 4, Depth: 11, ValueRange: 10000} }

// R3 is random tree R3: degree 8, 7 ply.
func R3() *Tree { return &Tree{Seed: 0x5EC0_0003, Degree: 8, Depth: 7, ValueRange: 10000} }
