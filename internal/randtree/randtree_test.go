package randtree

import (
	"testing"

	"ertree/internal/game"
	"ertree/internal/serial"
)

func TestDeterminism(t *testing.T) {
	tr := &Tree{Seed: 1, Degree: 3, Depth: 4, ValueRange: 100}
	var s serial.Searcher
	v1 := s.Negmax(tr.Root(), tr.Depth)
	v2 := s.Negmax((&Tree{Seed: 1, Degree: 3, Depth: 4, ValueRange: 100}).Root(), tr.Depth)
	if v1 != v2 {
		t.Fatalf("same seed, different values: %d vs %d", v1, v2)
	}
	v3 := s.Negmax((&Tree{Seed: 2, Degree: 3, Depth: 4, ValueRange: 100}).Root(), tr.Depth)
	if v1 == v3 {
		t.Logf("note: different seeds gave equal values (possible but unlikely)")
	}
}

func TestShape(t *testing.T) {
	tr := &Tree{Seed: 7, Degree: 5, Depth: 2, ValueRange: 10}
	root := tr.Root()
	kids := root.Children()
	if len(kids) != 5 {
		t.Fatalf("degree %d, want 5", len(kids))
	}
	for _, k := range kids {
		gks := k.Children()
		if len(gks) != 5 {
			t.Fatalf("child degree %d, want 5", len(gks))
		}
		for _, g := range gks {
			if g.Children() != nil {
				t.Fatalf("leaf has children")
			}
		}
	}
}

func TestLeafValuesInRange(t *testing.T) {
	tr := &Tree{Seed: 3, Degree: 4, Depth: 3, ValueRange: 50}
	var walk func(p game.Position)
	count := 0
	walk = func(p game.Position) {
		kids := p.Children()
		if len(kids) == 0 {
			count++
			if v := p.Value(); v < -50 || v > 50 {
				t.Fatalf("leaf value %d outside [-50,50]", v)
			}
			return
		}
		for _, k := range kids {
			walk(k)
		}
	}
	walk(tr.Root())
	if count != 64 {
		t.Fatalf("leaf count %d, want 64", count)
	}
}

func TestLeafValueDistributionRoughlyUniform(t *testing.T) {
	tr := &Tree{Seed: 11, Degree: 4, Depth: 6, ValueRange: 1}
	counts := map[game.Value]int{}
	var walk func(p game.Position)
	walk = func(p game.Position) {
		kids := p.Children()
		if len(kids) == 0 {
			counts[p.Value()]++
			return
		}
		for _, k := range kids {
			walk(k)
		}
	}
	walk(tr.Root())
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4096 {
		t.Fatalf("leaves %d", total)
	}
	for v := game.Value(-1); v <= 1; v++ {
		frac := float64(counts[v]) / float64(total)
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("value %d frequency %.3f not near 1/3", v, frac)
		}
	}
}

func TestSiblingsDecorrelated(t *testing.T) {
	// Sibling subtrees must not share values systematically.
	tr := &Tree{Seed: 13, Degree: 2, Depth: 10, ValueRange: 1 << 20}
	kids := tr.Root().Children()
	var s serial.Searcher
	v0 := s.Negmax(kids[0], 9)
	v1 := s.Negmax(kids[1], 9)
	if v0 == v1 {
		t.Fatalf("sibling subtrees identical: %d", v0)
	}
}

func TestPaperWorkloadDefinitions(t *testing.T) {
	for _, tc := range []struct {
		tr     *Tree
		degree int
		depth  int
	}{
		{R1(), 4, 10},
		{R2(), 4, 11},
		{R3(), 8, 7},
	} {
		if tc.tr.Degree != tc.degree || tc.tr.Depth != tc.depth {
			t.Errorf("%s: got (d=%d,h=%d), want (d=%d,h=%d)",
				tc.tr, tc.tr.Degree, tc.tr.Depth, tc.degree, tc.depth)
		}
	}
	if R1().Seed == R2().Seed || R2().Seed == R3().Seed {
		t.Error("workload seeds must differ")
	}
}

func TestAlphaBetaAgreesWithNegmaxOnRandomTrees(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		tr := &Tree{Seed: seed, Degree: 3, Depth: 6, ValueRange: 100}
		var s serial.Searcher
		want := s.Negmax(tr.Root(), tr.Depth)
		if got := s.AlphaBeta(tr.Root(), tr.Depth, game.FullWindow()); got != want {
			t.Fatalf("seed %d: alpha-beta %d, negmax %d", seed, got, want)
		}
		if got := s.ER(tr.Root(), tr.Depth, game.FullWindow()); got != want {
			t.Fatalf("seed %d: ER %d, negmax %d", seed, got, want)
		}
	}
}

func TestStrongTreeDeterminism(t *testing.T) {
	a := Marsland(5, 4, 5)
	b := Marsland(5, 4, 5)
	var s serial.Searcher
	if s.Negmax(a.Root(), 5) != s.Negmax(b.Root(), 5) {
		t.Fatal("strong tree not deterministic")
	}
}

func TestStrongTreeOrderingQuality(t *testing.T) {
	// The Marsland preset must satisfy the strongly-ordered definition:
	// first branch best at least 70% of the time, best branch in the first
	// quarter at least 90% of the time (§4.4).
	// Note: for narrow trees the "first quarter" is a single branch, making
	// the 90% rule equivalent to 90% first-best; Marsland's definition
	// presumes the wide branching of chess, so the quarter rule is only
	// checked where the quarter spans at least two branches.
	for _, degree := range []int{4, 8} {
		tr := Marsland(17, degree, 5)
		firstBest, firstQuarter := OrderingStats(tr.Root(), 400)
		if firstBest < 0.70 {
			t.Errorf("degree %d: first-branch-best %.2f < 0.70", degree, firstBest)
		}
		if quarter := (degree + 3) / 4; quarter >= 2 && firstQuarter < 0.90 {
			t.Errorf("degree %d: first-quarter %.2f < 0.90", degree, firstQuarter)
		}
		if firstBest > 0.995 {
			t.Errorf("degree %d: ordering suspiciously perfect (%.3f); noise not applied?", degree, firstBest)
		}
	}
}

func TestStrongTreeStaticEstimateInformative(t *testing.T) {
	// The greedy-completion estimate must usually rank the true best child
	// first when children are sorted by it.
	tr := Marsland(23, 6, 4)
	root := tr.Root()
	kids := root.Children()
	var s serial.Searcher
	bestStatic, bestTrue := 0, 0
	sv, tv := game.Inf, game.Inf
	for i, k := range kids {
		if v := k.Value(); v < sv {
			sv, bestStatic = v, i
		}
		if v := s.Negmax(k, 3); v < tv {
			tv, bestTrue = v, i
		}
	}
	// Not a strict requirement per node, but for the fixture seed the
	// greedy estimate identifies the true best child.
	if bestStatic != bestTrue {
		t.Logf("static best %d, true best %d (informational)", bestStatic, bestTrue)
	}
	// A leaf's Value must equal its exact value (depth 0 search).
	leaf := kids[0]
	for leafKids := leaf.Children(); leafKids != nil; leafKids = leaf.Children() {
		leaf = leafKids[0]
	}
	if leaf.Children() != nil {
		t.Fatal("did not reach leaf")
	}
}

func TestStrongTreeAgreesWithNegmax(t *testing.T) {
	tr := Marsland(31, 4, 5)
	var s serial.Searcher
	want := s.Negmax(tr.Root(), 5)
	if got := s.AlphaBeta(tr.Root(), 5, game.FullWindow()); got != want {
		t.Fatalf("alpha-beta %d, negmax %d", got, want)
	}
	if got := s.ER(tr.Root(), 5, game.FullWindow()); got != want {
		t.Fatalf("ER %d, negmax %d", got, want)
	}
}

func TestStrongOrderingImprovesAlphaBeta(t *testing.T) {
	// Static-sorted alpha-beta on a strongly ordered tree must evaluate far
	// fewer leaves than on an unordered random tree of the same shape.
	strong := Marsland(41, 4, 7)
	var stStrong game.Stats
	s1 := serial.Searcher{Stats: &stStrong}
	s1.AlphaBeta(strong.Root(), 7, game.FullWindow())

	random := &Tree{Seed: 41, Degree: 4, Depth: 7, ValueRange: 10000}
	var stRand game.Stats
	s2 := serial.Searcher{Stats: &stRand}
	s2.AlphaBeta(random.Root(), 7, game.FullWindow())

	if stStrong.Evaluated.Load() >= stRand.Evaluated.Load() {
		t.Errorf("strongly ordered tree evaluated %d leaves, random %d: expected fewer",
			stStrong.Evaluated.Load(), stRand.Evaluated.Load())
	}
}
