package randtree

import (
	"fmt"

	"ertree/internal/game"
)

// StrongTree generates "strongly ordered" game trees in Marsland's sense
// (§4.4): the first branch from a node is best most of the time, and the
// best branch is almost always among the first quarter of the branches.
//
// Construction: every edge taken via child index c at any node carries a
// weight w = c*Bias + noise, with noise uniform on [0, Noise) derived from
// the path hash. Weights hurt the player who makes the move, so low indexes
// are usually best; the Bias/Noise ratio tunes how often. A leaf's value
// (from the leaf player's point of view) is the alternating sum of the edge
// weights on its path.
//
// Interior positions expose an informed static estimate: the value of the
// "greedy completion" that follows first children to the horizon. This gives
// the search a realistic, imperfect evaluation function.
type StrongTree struct {
	Seed   uint64
	Degree int
	Depth  int
	Bias   int32 // per-index penalty; larger = more strongly ordered
	Noise  int32 // uniform noise magnitude; larger = less strongly ordered
}

// Marsland returns a StrongTree preset whose ordering statistics match the
// strongly-ordered definition (first branch best ~70-80% of the time, best
// branch within the first quarter >90%), verified by tests.
func Marsland(seed uint64, degree, depth int) *StrongTree {
	return &StrongTree{Seed: seed, Degree: degree, Depth: depth, Bias: 64, Noise: 160}
}

// Root returns the root position.
func (t *StrongTree) Root() game.Position {
	if t.Degree < 1 || t.Depth < 0 {
		panic(fmt.Sprintf("randtree: invalid strong tree %+v", t))
	}
	return spos{t: t, hash: splitmix64(t.Seed ^ 0x8BB84B93962EACC9), ply: 0, acc: 0}
}

func (t *StrongTree) String() string {
	return fmt.Sprintf("strong(d=%d,h=%d,bias=%d,noise=%d,seed=%#x)",
		t.Degree, t.Depth, t.Bias, t.Noise, t.Seed)
}

type spos struct {
	t    *StrongTree
	hash uint64
	ply  int
	acc  game.Value // alternating edge-weight sum from this player's view
}

var _ game.Position = spos{}

// edgeWeight is the cost of taking child c from a node with hash h.
func (t *StrongTree) edgeWeight(h uint64, c int) game.Value {
	w := game.Value(int32(c) * t.Bias)
	if t.Noise > 0 {
		w += game.Value(childHash(h, c) % uint64(t.Noise))
	}
	return w
}

// Children returns the Degree successors, or nil at the leaf ply.
func (p spos) Children() []game.Position {
	if p.ply >= p.t.Depth {
		return nil
	}
	out := make([]game.Position, p.t.Degree)
	for c := range out {
		out[c] = spos{
			t:    p.t,
			hash: childHash(p.hash, c),
			ply:  p.ply + 1,
			acc:  -p.acc + p.t.edgeWeight(p.hash, c),
		}
	}
	return out
}

// Value returns the exact alternating sum at leaves and the greedy-completion
// estimate at interior nodes.
// Hash returns the node's identity hash (tt.Hashable). Path hashes are
// unique per node, and the accumulated edge weights are a function of the
// path, so the hash fully identifies the position.
func (p spos) Hash() uint64 { return p.hash }

func (p spos) Value() game.Value {
	acc, hash := p.acc, p.hash
	for ply := p.ply; ply < p.t.Depth; ply++ {
		acc = -acc + p.t.edgeWeight(hash, 0)
		hash = childHash(hash, 0)
	}
	return acc
}

// OrderingStats reports move-ordering quality for a tree: the fraction of
// sampled interior nodes whose first branch is best, and the fraction whose
// best branch lies in the first quarter of the branches (rounded up). Used
// to validate the Marsland preset against the 70%/90% definition.
func OrderingStats(root game.Position, maxNodes int) (firstBest, firstQuarter float64) {
	type item struct{ p game.Position }
	queue := []item{{root}}
	nodes, fb, fq := 0, 0, 0
	negmax := negmaxMemoless
	for len(queue) > 0 && nodes < maxNodes {
		it := queue[0]
		queue = queue[1:]
		kids := it.p.Children()
		if len(kids) == 0 {
			continue
		}
		nodes++
		best, bestIdx := game.Inf, 0
		for i, k := range kids {
			v := negmax(k)
			if v < best {
				best, bestIdx = v, i
			}
		}
		if bestIdx == 0 {
			fb++
		}
		quarter := (len(kids) + 3) / 4
		if bestIdx < quarter {
			fq++
		}
		for _, k := range kids {
			queue = append(queue, item{k})
		}
	}
	if nodes == 0 {
		return 0, 0
	}
	return float64(fb) / float64(nodes), float64(fq) / float64(nodes)
}

// negmaxMemoless is a tiny exact negamax used only for ordering statistics.
func negmaxMemoless(p game.Position) game.Value {
	kids := p.Children()
	if len(kids) == 0 {
		return p.Value()
	}
	m := -game.Inf
	for _, k := range kids {
		if v := -negmaxMemoless(k); v > m {
			m = v
		}
	}
	return m
}
