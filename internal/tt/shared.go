package tt

import (
	"sync"
	"sync/atomic"

	"ertree/internal/game"
)

// Prober is the probe/store capability common to Table and Shared, so search
// drivers can be written against either a private or a shared table.
type Prober interface {
	Probe(key uint64, depth int) (Entry, bool)
	Store(key uint64, depth int, value game.Value, bound Bound)
}

// Shared is the canonical Prober: core workers probe and store through this
// interface so tests can substitute counting or failing tables.
var _ Prober = (*Shared)(nil)

// Shared is a concurrent transposition table: one direct-mapped slot array
// divided into power-of-two shards, each guarded by its own mutex, so many
// searches on the same game can share one table with low lock contention
// (mutex striping). Statistics are atomics and may be read at any time.
//
// Probe and Store follow the same equal-depth-matching and
// deeper-stranger-replacement policy as Table; ProbeDeep adds the
// Plaat-style memory-reusing lookup iterative-deepening drivers want.
type Shared struct {
	shards    []sharedShard
	shardMask uint64
	slotMask  uint64
	slotBits  uint

	// gen is the aging generation of the SharedTable contract. The striped
	// table's direct-mapped replacement has no bucket to age within, so the
	// counter only feeds introspection (Stats gauges, head-to-head
	// comparisons with the lock-free table's aging policy).
	gen atomic.Uint32

	probes, hits, stores, replacements atomic.Int64
}

type sharedShard struct {
	mu    sync.Mutex
	slots []Entry
	// Pad shards apart so neighboring mutexes do not share a cache line.
	_ [40]byte
}

// DefaultShards is the shard count used when NewShared is given zero: enough
// stripes that even a machine-full of workers rarely collides on a mutex.
const DefaultShards = 64

// NewShared creates a shared table with 2^bits total slots split across
// shards stripes (rounded to powers of two; 0 means DefaultShards). Each
// shard holds at least one slot, so very small tables get fewer stripes.
func NewShared(bits, shards int) *Shared {
	if bits < 1 {
		bits = 1
	}
	if bits > 30 {
		bits = 30
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	// Round the stripe count down to a power of two no larger than the
	// slot count.
	sbits := 0
	for 1<<(sbits+1) <= shards {
		sbits++
	}
	if sbits > bits-1 {
		sbits = bits - 1
	}
	nShards := 1 << uint(sbits)
	slotsPerShard := 1 << uint(bits-sbits)
	t := &Shared{
		shards:    make([]sharedShard, nShards),
		shardMask: uint64(nShards - 1),
		slotMask:  uint64(slotsPerShard - 1),
		slotBits:  uint(bits - sbits),
	}
	for i := range t.shards {
		t.shards[i].slots = make([]Entry, slotsPerShard)
	}
	return t
}

// shard maps key to its stripe and in-stripe slot. The global slot index is
// key mod 2^bits exactly as in Table; its low bits select the slot within
// the stripe and the bits above them the stripe, so Shared is one
// direct-mapped array that happens to be lock-striped.
func (t *Shared) shard(key uint64) (*sharedShard, uint64) {
	return &t.shards[(key>>t.slotBits)&t.shardMask], key & t.slotMask
}

// Probe looks up the entry for key at exactly the given depth, mirroring
// Table.Probe semantics under the shard lock.
func (t *Shared) Probe(key uint64, depth int) (Entry, bool) {
	t.probes.Add(1)
	s, i := t.shard(key)
	s.mu.Lock()
	e := s.slots[i]
	s.mu.Unlock()
	if !e.used || e.Key != key || int(e.Depth) != depth {
		return Entry{}, false
	}
	t.hits.Add(1)
	return e, true
}

// ProbeDeep looks up the entry for key at depth or deeper. A deeper entry is
// the memory-reusing hit of iterative deepening (Plaat et al.): the cached
// value answers a harder question than the probe asked, so a driver willing
// to trade exact depth-d semantics for reuse can accept it. Exact-depth
// matches behave exactly like Probe.
func (t *Shared) ProbeDeep(key uint64, depth int) (Entry, bool) {
	t.probes.Add(1)
	s, i := t.shard(key)
	s.mu.Lock()
	e := s.slots[i]
	s.mu.Unlock()
	if !e.used || e.Key != key || int(e.Depth) < depth {
		return Entry{}, false
	}
	t.hits.Add(1)
	return e, true
}

// Store saves a result under the shard lock, preferring deeper entries on
// collisions but always replacing entries from the same position — the same
// policy as Table.Store.
func (t *Shared) Store(key uint64, depth int, value game.Value, bound Bound) {
	s, i := t.shard(key)
	s.mu.Lock()
	e := &s.slots[i]
	if e.used && e.Key != key && int(e.Depth) > depth {
		s.mu.Unlock()
		return // keep the deeper stranger
	}
	replaced := e.used && e.Key != key
	*e = Entry{Key: key, Depth: int16(depth), Value: value, Bound: bound, used: true}
	s.mu.Unlock()
	if replaced {
		t.replacements.Add(1)
	}
	t.stores.Add(1)
}

// StoreDeep saves a result but never lets a shallower search evict a deeper
// entry for the same position — the companion policy to ProbeDeep: in
// memory-reusing mode the deepest known result for a position is the one
// every later probe wants. Equal-depth same-key stores still refresh the
// entry, and foreign keys follow the deeper-stranger rule.
func (t *Shared) StoreDeep(key uint64, depth int, value game.Value, bound Bound) {
	s, i := t.shard(key)
	s.mu.Lock()
	e := &s.slots[i]
	if e.used && int(e.Depth) > depth {
		s.mu.Unlock()
		return // keep the deeper entry, same key or not
	}
	replaced := e.used && e.Key != key
	*e = Entry{Key: key, Depth: int16(depth), Value: value, Bound: bound, used: true}
	s.mu.Unlock()
	if replaced {
		t.replacements.Add(1)
	}
	t.stores.Add(1)
}

// Len returns the total slot count.
func (t *Shared) Len() int {
	return len(t.shards) * len(t.shards[0].slots)
}

// Shards returns the stripe count.
func (t *Shared) Shards() int { return len(t.shards) }

// NewSearch bumps the aging generation (see the field comment: tracked for
// the SharedTable contract, not consulted by the direct-mapped replacement).
func (t *Shared) NewSearch() { t.gen.Add(1) }

// Generation returns the current generation (wraps at 256).
func (t *Shared) Generation() uint8 { return uint8(t.gen.Load()) }

// Impl names the implementation.
func (t *Shared) Impl() string { return ImplStriped }

// fillSampleBudget bounds the slots Fill visits across all stripes: the slot
// index is the low bits of a 64-bit hash, so occupancy is uniform and a few
// thousand slots estimate the fill of millions.
const fillSampleBudget = 4096

// Fill estimates the number of used slots. Tables at or under the sample
// budget are counted exactly; larger ones sample a prefix of each stripe
// under that stripe's lock and extrapolate, so a /stats scrape holds each
// shard mutex for at most budget/shards slots instead of a full-stripe scan
// blocking that stripe's writers for the whole sweep.
func (t *Shared) Fill() int {
	perShard := fillSampleBudget / len(t.shards)
	if perShard < 1 {
		perShard = 1
	}
	exact := perShard >= len(t.shards[0].slots)
	if exact {
		perShard = len(t.shards[0].slots)
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j := 0; j < perShard; j++ {
			if s.slots[j].used {
				n++
			}
		}
		s.mu.Unlock()
	}
	if exact {
		return n
	}
	sampled := perShard * len(t.shards)
	est := int(int64(n) * int64(t.Len()) / int64(sampled))
	if max := t.Len(); est > max {
		est = max
	}
	return est
}

// SharedStats is an atomic snapshot of a Shared table's counters.
type SharedStats struct {
	Probes, Hits, Stores, Replacements int64
}

// Stats returns the current counters. Each counter is read atomically; the
// snapshot as a whole is approximate while writers are active.
func (t *Shared) Stats() SharedStats {
	return SharedStats{
		Probes:       t.probes.Load(),
		Hits:         t.hits.Load(),
		Stores:       t.stores.Load(),
		Replacements: t.replacements.Load(),
	}
}

// HitRate returns hits over probes.
func (t *Shared) HitRate() float64 {
	p := t.probes.Load()
	if p == 0 {
		return 0
	}
	return float64(t.hits.Load()) / float64(p)
}
