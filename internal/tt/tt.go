// Package tt provides a fixed-size transposition table, the standard
// game-program substrate for caching search results across transpositions
// (positions reachable by several move orders). The paper's algorithms
// don't use one — 1990 memory budgets — but any engine a downstream user
// builds on this library will want it, and experiment A5 measures what it
// buys on transposition-rich games.
package tt

import (
	"ertree/internal/game"
)

// Hashable is the optional capability a Position implements to enable
// transposition tables: a 64-bit hash such that equal positions hash equal
// and distinct positions collide with negligible probability.
type Hashable interface {
	Hash() uint64
}

// Bound classifies a stored value, following the usual alpha-beta
// convention.
type Bound uint8

// Bound kinds.
const (
	Exact Bound = iota // value is the exact negamax value at Depth
	Lower              // search failed high: true value >= Value
	Upper              // search failed low: true value <= Value
)

// Entry is one table slot.
type Entry struct {
	Key   uint64
	Depth int16
	Value game.Value
	Bound Bound
	used  bool
}

// Table is a power-of-two direct-mapped transposition table. It is NOT safe
// for concurrent use; each searcher should own one (or guard it).
type Table struct {
	slots []Entry
	mask  uint64

	// Statistics.
	Probes, Hits, Stores, Replacements int64
}

// New creates a table with 2^bits slots (bits in [1, 30]).
func New(bits int) *Table {
	if bits < 1 {
		bits = 1
	}
	if bits > 30 {
		bits = 30
	}
	n := 1 << uint(bits)
	return &Table{slots: make([]Entry, n), mask: uint64(n - 1)}
}

// Probe looks up the entry for key at exactly the given depth. Entries
// stored at other depths are not returned: equal-depth matching preserves
// the exact depth-d semantics of the search (see AlphaBetaTT), so a search
// with a transposition table returns bit-identical root values.
func (t *Table) Probe(key uint64, depth int) (Entry, bool) {
	t.Probes++
	e := t.slots[key&t.mask]
	if !e.used || e.Key != key || int(e.Depth) != depth {
		return Entry{}, false
	}
	t.Hits++
	return e, true
}

// Store saves a result, preferring deeper entries on collisions (a deeper
// result is more expensive to recompute) but always replacing entries from
// the same position.
func (t *Table) Store(key uint64, depth int, value game.Value, bound Bound) {
	i := key & t.mask
	e := &t.slots[i]
	if e.used && e.Key != key && int(e.Depth) > depth {
		return // keep the deeper stranger
	}
	if e.used && e.Key != key {
		t.Replacements++
	}
	t.Stores++
	*e = Entry{Key: key, Depth: int16(depth), Value: value, Bound: bound, used: true}
}

// Len returns the slot count.
func (t *Table) Len() int { return len(t.slots) }

// Fill returns the number of used slots.
func (t *Table) Fill() int {
	n := 0
	for i := range t.slots {
		if t.slots[i].used {
			n++
		}
	}
	return n
}

// HitRate returns hits over probes.
func (t *Table) HitRate() float64 {
	if t.Probes == 0 {
		return 0
	}
	return float64(t.Hits) / float64(t.Probes)
}
