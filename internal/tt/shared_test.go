package tt

import (
	"sync"
	"testing"

	"ertree/internal/game"
)

// Table and Shared must implement the common capability.
var (
	_ Prober = (*Table)(nil)
	_ Prober = (*Shared)(nil)
)

func TestSharedRoundTrip(t *testing.T) {
	s := NewShared(10, 4)
	if s.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", s.Shards())
	}
	if s.Len() != 1024 {
		t.Fatalf("len = %d, want 1024", s.Len())
	}
	s.Store(0xdeadbeef, 5, 42, Exact)
	e, ok := s.Probe(0xdeadbeef, 5)
	if !ok || e.Value != 42 || e.Bound != Exact || e.Depth != 5 {
		t.Fatalf("probe after store: %+v ok=%v", e, ok)
	}
	// Equal-depth matching: other depths miss.
	if _, ok := s.Probe(0xdeadbeef, 4); ok {
		t.Fatal("probe at wrong depth hit")
	}
	// A same-key store always wins, even at a shallower depth.
	s.Store(0xdeadbeef, 3, 7, Lower)
	if e, ok := s.Probe(0xdeadbeef, 3); !ok || e.Value != 7 || e.Bound != Lower {
		t.Fatalf("same-key restore: %+v ok=%v", e, ok)
	}
}

func TestSharedProbeDeep(t *testing.T) {
	s := NewShared(8, 2)
	s.Store(77, 6, -13, Exact)
	if e, ok := s.ProbeDeep(77, 4); !ok || e.Value != -13 || e.Depth != 6 {
		t.Fatalf("deeper entry not returned: %+v ok=%v", e, ok)
	}
	if _, ok := s.ProbeDeep(77, 7); ok {
		t.Fatal("shallower entry returned for deeper probe")
	}
	if e, ok := s.ProbeDeep(77, 6); !ok || e.Depth != 6 {
		t.Fatalf("exact-depth ProbeDeep: %+v ok=%v", e, ok)
	}
}

func TestSharedStoreDeep(t *testing.T) {
	s := NewShared(8, 2)
	s.StoreDeep(99, 6, 50, Exact)
	// A shallower same-key store must not evict the deeper entry.
	s.StoreDeep(99, 3, 11, Lower)
	if e, ok := s.ProbeDeep(99, 3); !ok || e.Value != 50 || e.Depth != 6 {
		t.Fatalf("shallow StoreDeep evicted deeper entry: %+v ok=%v", e, ok)
	}
	// An equal-depth same-key store refreshes the entry.
	s.StoreDeep(99, 6, 60, Lower)
	if e, ok := s.ProbeDeep(99, 6); !ok || e.Value != 60 || e.Bound != Lower {
		t.Fatalf("equal-depth StoreDeep did not refresh: %+v ok=%v", e, ok)
	}
	// A deeper store replaces, same key or not.
	s.StoreDeep(99, 8, 70, Exact)
	if e, ok := s.ProbeDeep(99, 8); !ok || e.Value != 70 {
		t.Fatalf("deeper StoreDeep did not replace: %+v ok=%v", e, ok)
	}
}

func TestSharedSmallTableClampsShards(t *testing.T) {
	s := NewShared(1, 1024)
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	if s.Shards() > s.Len() {
		t.Fatalf("%d shards for %d slots", s.Shards(), s.Len())
	}
	s.Store(1, 1, 9, Exact)
	if e, ok := s.Probe(1, 1); !ok || e.Value != 9 {
		t.Fatalf("tiny table roundtrip: %+v ok=%v", e, ok)
	}
}

// TestSharedConcurrentStress hammers one Shared table from 8 goroutines with
// interleaved probes and stores on an overlapping key set and asserts the
// counters stay consistent: every probe and store is counted, hits never
// exceed probes, and every hit returned a well-formed entry for the probed
// key and depth. Run under -race this is the concurrency proof for the
// engine's shared-table mode.
func TestSharedConcurrentStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 5000
		keys    = 512
	)
	s := NewShared(12, 8)
	var wg sync.WaitGroup
	var probesIssued, storesIssued, hitsSeen [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < rounds; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				// Spread the key set across slots and stripes while keeping
				// it deterministic per (key, depth).
				key := (rng % keys) * 2654435761
				depth := int(rng>>32) % 6
				if i%3 == 0 {
					s.Store(key, depth, game.Value(int32(key*7)+int32(depth)), Bound(key%3))
					storesIssued[w]++
				} else {
					probesIssued[w]++
					if e, ok := s.Probe(key, depth); ok {
						hitsSeen[w]++
						if e.Key != key || int(e.Depth) != depth {
							t.Errorf("hit returned foreign entry: key %d depth %d got %+v", key, depth, e)
							return
						}
						// Values are a pure function of (key, depth), so a
						// hit must return exactly that value: torn or mixed
						// writes would surface here.
						if want := game.Value(int32(key*7) + int32(depth)); e.Value != want {
							t.Errorf("torn entry: key %d depth %d value %d want %d", key, depth, e.Value, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var wantProbes, wantStores, wantHits int64
	for w := 0; w < workers; w++ {
		wantProbes += probesIssued[w]
		wantStores += storesIssued[w]
		wantHits += hitsSeen[w]
	}
	st := s.Stats()
	if st.Probes != wantProbes {
		t.Fatalf("probe counter %d, issued %d", st.Probes, wantProbes)
	}
	if st.Hits != wantHits {
		t.Fatalf("hit counter %d, observed %d", st.Hits, wantHits)
	}
	// Every store call either stored or was rejected by the deeper-stranger
	// rule; the counter tracks the former, so it can never exceed calls.
	if st.Stores > wantStores || st.Stores == 0 {
		t.Fatalf("store counter %d, issued %d", st.Stores, wantStores)
	}
	if st.Hits > st.Probes {
		t.Fatalf("hits %d exceed probes %d", st.Hits, st.Probes)
	}
	if got := s.Fill(); got > s.Len() || got == 0 {
		t.Fatalf("fill %d out of range (len %d)", got, s.Len())
	}
	if hr := s.HitRate(); hr < 0 || hr > 1 {
		t.Fatalf("hit rate %f out of range", hr)
	}
}
