package tt

import (
	"math/rand"
	"testing"

	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/ttt"
)

func TestStoreProbe(t *testing.T) {
	tbl := New(8)
	if tbl.Len() != 256 {
		t.Fatalf("len %d", tbl.Len())
	}
	tbl.Store(42, 3, 17, Exact)
	e, ok := tbl.Probe(42, 3)
	if !ok || e.Value != 17 || e.Bound != Exact {
		t.Fatalf("probe after store: %v %v", e, ok)
	}
	// Equal-depth matching: a different depth misses.
	if _, ok := tbl.Probe(42, 4); ok {
		t.Fatal("depth mismatch must miss")
	}
	// Wrong key misses.
	if _, ok := tbl.Probe(43, 3); ok {
		t.Fatal("wrong key must miss")
	}
	if tbl.HitRate() <= 0 || tbl.HitRate() > 1 {
		t.Fatalf("hit rate %f", tbl.HitRate())
	}
}

func TestReplacementPolicy(t *testing.T) {
	tbl := New(1)  // two slots: lots of collisions
	a := uint64(0) // slot 0
	b := uint64(2) // also slot 0
	tbl.Store(a, 5, 1, Exact)
	tbl.Store(b, 3, 2, Exact) // shallower stranger: kept out
	if _, ok := tbl.Probe(a, 5); !ok {
		t.Fatal("deeper entry evicted by shallower stranger")
	}
	tbl.Store(b, 7, 3, Exact) // deeper stranger: replaces
	if _, ok := tbl.Probe(b, 7); !ok {
		t.Fatal("deeper stranger not stored")
	}
	if _, ok := tbl.Probe(a, 5); ok {
		t.Fatal("evicted entry still present")
	}
	// Same key always replaces.
	tbl.Store(b, 2, 9, Lower)
	if e, ok := tbl.Probe(b, 2); !ok || e.Value != 9 || e.Bound != Lower {
		t.Fatal("same-key update failed")
	}
}

func TestFill(t *testing.T) {
	tbl := New(4)
	if tbl.Fill() != 0 {
		t.Fatal("fresh table not empty")
	}
	for i := uint64(0); i < 8; i++ {
		tbl.Store(i, 1, 0, Exact)
	}
	if f := tbl.Fill(); f == 0 || f > 8 {
		t.Fatalf("fill %d", f)
	}
}

func TestBitsClamped(t *testing.T) {
	if New(0).Len() != 2 {
		t.Fatal("low clamp")
	}
}

func TestGameHashesDiscriminate(t *testing.T) {
	// Connect Four: positions reached by different move orders that place
	// the same stones hash equal; different positions differ.
	a := connect4.New().MustDrop(3, 0, 4)
	b := connect4.New().MustDrop(4, 0, 3) // same stones, transposed order
	if a.Hash() != b.Hash() {
		t.Fatal("connect4 transposition hashes differ")
	}
	c := connect4.New().MustDrop(3, 0, 5)
	if a.Hash() == c.Hash() {
		t.Fatal("different connect4 positions hash equal")
	}

	// Othello: playing moves must change the hash.
	oa := othello.Start().MustPlay("d3", "c5", "e6")
	if oa.Hash() == othello.Start().Hash() {
		t.Fatal("othello hash ignores moves")
	}

	// Tic-tac-toe: X plays 0 then 4 vs 4 then 0 with O at 8 both times.
	ta := ttt.New()
	ta, _ = ta.Move(0)
	ta, _ = ta.Move(8)
	ta, _ = ta.Move(4)
	tb := ttt.New()
	tb, _ = tb.Move(4)
	tb, _ = tb.Move(8)
	tb, _ = tb.Move(0)
	if ta.Hash() != tb.Hash() {
		t.Fatal("ttt transposition hashes differ")
	}
}

func TestHashCollisionRateLow(t *testing.T) {
	// Random connect4 positions: hashes must be distinct in practice.
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]connect4.Board{}
	positions := 0
	for g := 0; g < 200; g++ {
		b := connect4.New()
		for !b.Terminal() {
			kids := b.Children()
			b = kids[rng.Intn(len(kids))].(connect4.Board)
			h := b.Hash()
			if prev, ok := seen[h]; ok {
				if prev.String() != b.String() {
					t.Fatalf("hash collision between distinct positions")
				}
			} else {
				seen[h] = b
				positions++
			}
		}
	}
	if positions < 1000 {
		t.Fatalf("too few distinct positions sampled: %d", positions)
	}
}

var _ Hashable = connect4.Board{}
var _ Hashable = othello.Board{}
var _ Hashable = ttt.Board{}
var _ game.Position = connect4.Board{}
