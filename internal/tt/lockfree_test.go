package tt

import (
	"sync"
	"testing"

	"ertree/internal/game"
)

// impls builds one table per implementation for the contract tests below:
// every SharedTable semantics test runs against both the striped baseline
// and the lock-free table.
func impls(bits, shards int) map[string]SharedTable {
	return map[string]SharedTable{
		ImplStriped:  NewShared(bits, shards),
		ImplLockFree: NewLockFree(bits),
	}
}

// TestSharedTableContract runs the striped table's semantics suite against
// every implementation: equal-depth Probe/Store, the ProbeDeep/StoreDeep
// memory-reuse pair, and the same-key replacement rules.
func TestSharedTableContract(t *testing.T) {
	for name, s := range impls(10, 4) {
		t.Run(name+"/roundtrip", func(t *testing.T) {
			if s.Impl() != name {
				t.Fatalf("Impl() = %q, want %q", s.Impl(), name)
			}
			if s.Len() != 1024 {
				t.Fatalf("len = %d, want 1024", s.Len())
			}
			s.Store(0xdeadbeef, 5, 42, Exact)
			e, ok := s.Probe(0xdeadbeef, 5)
			if !ok || e.Value != 42 || e.Bound != Exact || e.Depth != 5 {
				t.Fatalf("probe after store: %+v ok=%v", e, ok)
			}
			if _, ok := s.Probe(0xdeadbeef, 4); ok {
				t.Fatal("probe at wrong depth hit")
			}
			s.Store(0xdeadbeef, 3, 7, Lower)
			if e, ok := s.Probe(0xdeadbeef, 3); !ok || e.Value != 7 || e.Bound != Lower {
				t.Fatalf("same-key restore: %+v ok=%v", e, ok)
			}
		})
	}
	for name, s := range impls(8, 2) {
		t.Run(name+"/probe-deep", func(t *testing.T) {
			s.Store(77, 6, -13, Exact)
			if e, ok := s.ProbeDeep(77, 4); !ok || e.Value != -13 || e.Depth != 6 {
				t.Fatalf("deeper entry not returned: %+v ok=%v", e, ok)
			}
			if _, ok := s.ProbeDeep(77, 7); ok {
				t.Fatal("shallower entry returned for deeper probe")
			}
			if e, ok := s.ProbeDeep(77, 6); !ok || e.Depth != 6 {
				t.Fatalf("exact-depth ProbeDeep: %+v ok=%v", e, ok)
			}
		})
	}
	for name, s := range impls(8, 2) {
		t.Run(name+"/store-deep", func(t *testing.T) {
			s.StoreDeep(99, 6, 50, Exact)
			s.StoreDeep(99, 3, 11, Lower)
			if e, ok := s.ProbeDeep(99, 3); !ok || e.Value != 50 || e.Depth != 6 {
				t.Fatalf("shallow StoreDeep evicted deeper entry: %+v ok=%v", e, ok)
			}
			s.StoreDeep(99, 6, 60, Lower)
			if e, ok := s.ProbeDeep(99, 6); !ok || e.Value != 60 || e.Bound != Lower {
				t.Fatalf("equal-depth StoreDeep did not refresh: %+v ok=%v", e, ok)
			}
			s.StoreDeep(99, 8, 70, Exact)
			if e, ok := s.ProbeDeep(99, 8); !ok || e.Value != 70 {
				t.Fatalf("deeper StoreDeep did not replace: %+v ok=%v", e, ok)
			}
		})
	}
}

// TestFactory pins the implementation registry servers and CLIs validate
// against: both names construct, empty falls back to the default, unknown
// names error with a message naming the valid set, and NewDefault honors the
// ERTREE_TABLE environment variable.
func TestFactory(t *testing.T) {
	for _, name := range Impls() {
		tbl, err := NewSharedTable(name, 10, 0)
		if err != nil {
			t.Fatalf("NewSharedTable(%q): %v", name, err)
		}
		if tbl.Impl() != name {
			t.Fatalf("NewSharedTable(%q).Impl() = %q", name, tbl.Impl())
		}
	}
	if !ValidImpl(ImplStriped) || !ValidImpl(ImplLockFree) || ValidImpl("nosuch") {
		t.Fatal("ValidImpl misclassifies")
	}
	t.Setenv(EnvTable, "") // hermetic: the host may export ERTREE_TABLE
	if tbl, err := NewSharedTable("", 10, 0); err != nil || tbl.Impl() != DefaultImpl {
		t.Fatalf("empty impl did not fall back to %q: %v", DefaultImpl, err)
	}
	if _, err := NewSharedTable("nosuch", 10, 0); err == nil {
		t.Fatal("unknown impl constructed")
	}
	t.Setenv(EnvTable, ImplStriped)
	if got := NewDefault(10, 0).Impl(); got != ImplStriped {
		t.Fatalf("NewDefault under ERTREE_TABLE=striped built %q", got)
	}
	t.Setenv(EnvTable, ImplLockFree)
	if got := NewDefault(10, 0).Impl(); got != ImplLockFree {
		t.Fatalf("NewDefault under ERTREE_TABLE=lockfree built %q", got)
	}
}

// TestIsNil guards the typed-nil trap the interface seam introduces: a nil
// pointer of either implementation wrapped in the interface must read as "no
// table".
func TestIsNil(t *testing.T) {
	if !IsNil(nil) || !IsNil((*Shared)(nil)) || !IsNil((*LockFree)(nil)) {
		t.Fatal("nil table not detected")
	}
	if IsNil(NewLockFree(8)) || IsNil(NewShared(8, 2)) {
		t.Fatal("live table read as nil")
	}
}

// TestLockFreeTornWriteSelfInvalidates injects the exact failure mode the
// XOR validation exists for: an entry whose check and data words come from
// different writes (a torn write, frozen mid-flight). The probe must treat
// the slot as empty — returning any entry would be returning a corrupt one.
func TestLockFreeTornWriteSelfInvalidates(t *testing.T) {
	s := NewLockFree(8)
	const keyA, keyB = 0x1111111111111100, 0x2222222222222200 // same bucket (same low bits)
	s.Store(keyA, 5, 10, Exact)
	b := s.bucket(keyA)
	i, _ := b.find(keyA)
	if i < 0 {
		t.Fatal("stored entry not found")
	}
	// Freeze a torn write: keyB's payload lands but keyA's check word is
	// still in place (a writer preempted between its two stores).
	b.words[2*i+1].Store(packEntry(9, 77, Lower, 0))
	if e, ok := s.Probe(keyA, 5); ok {
		t.Fatalf("torn slot validated under keyA: %+v", e)
	}
	if e, ok := s.Probe(keyB, 9); ok {
		t.Fatalf("torn slot validated under keyB: %+v", e)
	}
	if e, ok := s.ProbeDeep(keyA, 0); ok {
		t.Fatalf("torn slot validated under ProbeDeep: %+v", e)
	}
	// The slot is reusable: a clean write through the public API heals it.
	s.Store(keyB, 9, 77, Lower)
	if e, ok := s.Probe(keyB, 9); !ok || e.Value != 77 {
		t.Fatalf("clean store after torn write: %+v ok=%v", e, ok)
	}
}

// lfBucketKeys returns n distinct keys that all map to the same bucket of s,
// maximizing replacement pressure for the adversarial tests.
func lfBucketKeys(s *LockFree, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i+1)<<40 | 0x33 // same low bits, distinct high bits
	}
	for _, k := range keys {
		if s.bucket(k) != s.bucket(keys[0]) {
			panic("test keys do not share a bucket")
		}
	}
	return keys
}

// lfWantValue is the pure value function of the stress tests: any hit
// returning a different value for its key is a torn or mixed entry.
func lfWantValue(key uint64, depth int) game.Value {
	return game.Value(int32(key*2654435761) + int32(depth))
}

// TestLockFreeTornWriteAdversarial hammers a single bucket from many
// goroutines with conflicting stores — the densest possible word-level race
// on the check/data pairs — and asserts every hit is internally consistent:
// the value is the pure function of the probed (key, depth). Run under -race
// this doubles as the data-race proof for the unlocked write path (atomics
// only, no mutexes).
func TestLockFreeTornWriteAdversarial(t *testing.T) {
	const (
		workers = 8
		rounds  = 4000
	)
	s := NewLockFree(10)
	keys := lfBucketKeys(s, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < rounds; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := keys[rng%uint64(len(keys))]
				depth := int(rng>>32) % 8
				switch i % 3 {
				case 0:
					s.Store(key, depth, lfWantValue(key, depth), Bound(rng%3))
				case 1:
					s.StoreDeep(key, depth, lfWantValue(key, depth), Bound(rng%3))
				default:
					if e, ok := s.Probe(key, depth); ok {
						if e.Key != key || int(e.Depth) != depth {
							t.Errorf("hit returned foreign entry: key %x depth %d got %+v", key, depth, e)
							return
						}
						if want := lfWantValue(key, depth); e.Value != want {
							t.Errorf("torn entry surfaced: key %x depth %d value %d want %d", key, depth, e.Value, want)
							return
						}
					}
					// ProbeDeep may return any depth >= floor for the key;
					// its value must still match its own reported depth.
					if e, ok := s.ProbeDeep(key, 0); ok {
						if want := lfWantValue(key, int(e.Depth)); e.Value != want {
							t.Errorf("mixed deep entry: key %x %+v want value %d", key, e, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits > st.Probes {
		t.Fatalf("hits %d exceed probes %d", st.Hits, st.Probes)
	}
}

// TestLockFreeConcurrentStress is the striped table's whole-table stress run
// against the lock-free implementation: spread keys, mixed probe/store
// traffic, counter consistency, Fill and HitRate in range.
func TestLockFreeConcurrentStress(t *testing.T) {
	const (
		workers = 8
		rounds  = 5000
		keys    = 512
	)
	s := NewLockFree(12)
	var wg sync.WaitGroup
	var probesIssued, storesIssued, hitsSeen [workers]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < rounds; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := (rng % keys) * 2654435761
				depth := int(rng>>32) % 6
				if i%3 == 0 {
					s.Store(key, depth, game.Value(int32(key*7)+int32(depth)), Bound(key%3))
					storesIssued[w]++
				} else {
					probesIssued[w]++
					if e, ok := s.Probe(key, depth); ok {
						hitsSeen[w]++
						if e.Key != key || int(e.Depth) != depth {
							t.Errorf("hit returned foreign entry: key %d depth %d got %+v", key, depth, e)
							return
						}
						if want := game.Value(int32(key*7) + int32(depth)); e.Value != want {
							t.Errorf("torn entry: key %d depth %d value %d want %d", key, depth, e.Value, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var wantProbes, wantStores, wantHits int64
	for w := 0; w < workers; w++ {
		wantProbes += probesIssued[w]
		wantStores += storesIssued[w]
		wantHits += hitsSeen[w]
	}
	st := s.Stats()
	if st.Probes != wantProbes {
		t.Fatalf("probe counter %d, issued %d", st.Probes, wantProbes)
	}
	if st.Hits != wantHits {
		t.Fatalf("hit counter %d, observed %d", st.Hits, wantHits)
	}
	if st.Stores > wantStores || st.Stores == 0 {
		t.Fatalf("store counter %d, issued %d", st.Stores, wantStores)
	}
	if got := s.Fill(); got > s.Len() || got == 0 {
		t.Fatalf("fill %d out of range (len %d)", got, s.Len())
	}
	if hr := s.HitRate(); hr < 0 || hr > 1 {
		t.Fatalf("hit rate %f out of range", hr)
	}
}

// TestFillSampling pins the O(sample) Fill estimates of both
// implementations: exact on small tables, within a factor-of-two band on
// tables past the sample budget at a known uniform occupancy.
func TestFillSampling(t *testing.T) {
	for name, s := range impls(8, 2) {
		t.Run(name+"/small-exact", func(t *testing.T) {
			for i := 0; i < 10; i++ {
				s.Store(uint64(i)*2654435761+1, 3, 1, Exact)
			}
			if got := s.Fill(); got != 10 {
				t.Fatalf("small-table fill %d, want 10 exact", got)
			}
		})
	}
	// 2^20 slots, every slot's key visited: occupancy ~50% by storing every
	// other hash. The estimate must land in a loose band around the truth.
	for name, s := range impls(20, 0) {
		t.Run(name+"/large-estimate", func(t *testing.T) {
			stored := 0
			for i := 0; i < 1<<19; i++ {
				s.Store(uint64(i)*0x9e3779b97f4a7c15, 4, 7, Exact)
				stored++
			}
			got := s.Fill()
			if got < stored/2 || got > s.Len() {
				t.Fatalf("sampled fill %d implausible (stored %d distinct keys, len %d)", got, stored, s.Len())
			}
		})
	}
}

// TestSharedFillDoesNotBlockWriters asserts the striped Fill samples bounded
// slices per stripe: a scrape of a large table must complete while writers
// keep storing (the regression was a full-stripe scan under each shard
// mutex). This is a liveness smoke, not a timing benchmark: interleaved
// scrapes and stores simply must all finish.
func TestSharedFillDoesNotBlockWriters(t *testing.T) {
	s := NewShared(20, 4) // 256k slots per stripe: a full scan would dwarf the stores
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := uint64(w)
			for {
				select {
				case <-done:
					return
				default:
					k += 0x9e3779b97f4a7c15
					s.Store(k, 3, 1, Exact)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		if f := s.Fill(); f < 0 || f > s.Len() {
			t.Errorf("fill %d out of range", f)
			break
		}
	}
	close(done)
	wg.Wait()
}

// TestLockFreeBucketLayout pins the cache-line packing: four entries per
// bucket, 64 bytes per bucket, and power-of-two bucket counts.
func TestLockFreeBucketLayout(t *testing.T) {
	var b lfBucket
	if got := len(b.words) * 8; got != 64 {
		t.Fatalf("bucket is %d bytes, want 64", got)
	}
	for _, bits := range []int{2, 10, 16} {
		s := NewLockFree(bits)
		if s.Len() != 1<<bits {
			t.Fatalf("bits=%d: len %d, want %d", bits, s.Len(), 1<<bits)
		}
		if n := len(s.buckets); n&(n-1) != 0 {
			t.Fatalf("bits=%d: %d buckets not a power of two", bits, n)
		}
	}
}

// TestPackUnpackRoundTrip exhausts the payload packing across the field
// extremes (negative values, max depth, every bound, generation wrap).
func TestPackUnpackRoundTrip(t *testing.T) {
	values := []game.Value{0, 1, -1, game.Inf - 1, -(game.Inf - 1), game.NoValue}
	depths := []int{0, 1, 17, 30, 1<<15 - 1}
	for _, v := range values {
		for _, d := range depths {
			for _, bd := range []Bound{Exact, Lower, Upper} {
				for _, g := range []uint8{0, 1, 128, 255} {
					data := packEntry(d, v, bd, g)
					e, gen := unpackEntry(42, data)
					if e.Value != v || int(e.Depth) != d || e.Bound != bd || gen != g || !e.used {
						t.Fatalf("round trip (%d,%d,%d,%d) -> %+v gen=%d",
							v, d, bd, g, e, gen)
					}
				}
			}
		}
	}
}
