package tt

import (
	"sync/atomic"

	"ertree/internal/game"
)

// LockFree is a lock-free fixed-size transposition table: cache-line buckets
// of four entries accessed with plain atomic loads and stores, no mutexes
// anywhere on the probe or store path.
//
// Correctness under concurrent unlocked writers follows Crafty's lockless
// hashing idiom: each entry is two adjacent 64-bit words, the packed payload
// and the key XORed with that payload. A reader recomputes key = check ^
// data; if a writer replaced one word between the reader's two loads, the
// XOR yields garbage that matches no probed key (collision probability
// 2^-64, the same as the hash itself), so a torn read self-invalidates
// instead of returning a corrupt entry. Writers never coordinate — the last
// word written wins and a mixed pair is simply an empty slot to every later
// probe.
//
// Replacement is bucketed and aging-aware, the policy the striped table's
// single direct-mapped slot cannot express: three depth-preferred slots keep
// the deepest recent results, one always-replace slot guarantees every store
// lands somewhere, and a generation counter bumped per engine session
// (NewSearch) ages entries so a deep stranger from a long-gone search stops
// shutting out fresh shallow results — the failure mode behind the near-zero
// hit rates the direct-mapped table recorded on the Table-3 workloads.
type LockFree struct {
	buckets []lfBucket
	mask    uint64 // len(buckets) - 1

	gen atomic.Uint32

	probes, hits, stores, replacements atomic.Int64
}

// lfSlots is the entry count per bucket: four 16-byte entries fill one
// 64-byte cache line, so a probe touches exactly one line.
const lfSlots = 4

// lfBucket is one cache line: lfSlots (check, data) word pairs. words[2i] is
// entry i's check word (key ^ data), words[2i+1] its packed payload.
type lfBucket struct {
	words [2 * lfSlots]atomic.Uint64
}

// Payload packing: value in the low 32 bits, then depth, bound, generation,
// and the used flag. 59 bits total; the top 5 stay zero.
const (
	lfDepthShift = 32
	lfBoundShift = 48
	lfGenShift   = 50
	lfUsedBit    = 1 << 58

	lfGenMask = uint64(0xff) << lfGenShift
)

// lfAgePenalty is the replacement cost of staleness: each generation an
// entry has sat unrefreshed costs it this many plies of effective depth, so
// a depth-20 entry from eleven sessions ago loses a preferred slot to a
// fresh depth-1 result.
const lfAgePenalty = 2

// packEntry encodes an entry payload word.
func packEntry(depth int, value game.Value, bound Bound, gen uint8) uint64 {
	return uint64(uint32(value)) |
		uint64(uint16(int16(depth)))<<lfDepthShift |
		uint64(bound&3)<<lfBoundShift |
		uint64(gen)<<lfGenShift |
		lfUsedBit
}

// unpackEntry decodes a payload word (the caller has already validated the
// check word against the probed key).
func unpackEntry(key, data uint64) (Entry, uint8) {
	return Entry{
		Key:   key,
		Depth: int16(uint16(data >> lfDepthShift)),
		Value: game.Value(int32(uint32(data))),
		Bound: Bound(data >> lfBoundShift & 3),
		used:  true,
	}, uint8(data >> lfGenShift)
}

// NewLockFree creates a lock-free table with 2^bits total slots (bits in
// [2, 30]; at least one four-slot bucket).
func NewLockFree(bits int) *LockFree {
	if bits < 2 {
		bits = 2
	}
	if bits > 30 {
		bits = 30
	}
	n := (1 << uint(bits)) / lfSlots
	return &LockFree{
		buckets: make([]lfBucket, n),
		mask:    uint64(n - 1),
	}
}

// bucket maps a key to its cache line.
func (t *LockFree) bucket(key uint64) *lfBucket { return &t.buckets[key&t.mask] }

// load reads slot i of b, validating the XOR check against key. ok reports a
// well-formed used entry for exactly that key; a torn or foreign pair fails
// the check and reads as a miss.
func (b *lfBucket) load(i int, key uint64) (data uint64, ok bool) {
	check := b.words[2*i].Load()
	data = b.words[2*i+1].Load()
	return data, check^data == key && data&lfUsedBit != 0
}

// write publishes (key, data) into slot i: payload first, check last. No
// ordering is required for correctness — any interleaving with a concurrent
// writer produces a pair whose XOR matches neither key.
func (b *lfBucket) write(i int, key, data uint64) {
	b.words[2*i+1].Store(data)
	b.words[2*i].Store(key ^ data)
}

// find returns the slot holding key and its payload, or -1.
func (b *lfBucket) find(key uint64) (int, uint64) {
	for i := 0; i < lfSlots; i++ {
		if data, ok := b.load(i, key); ok {
			return i, data
		}
	}
	return -1, 0
}

// refresh re-stamps slot i's entry with the current generation, protecting a
// probed-and-hit entry from aging out. Racing a writer is fine: a mixed pair
// self-invalidates, losing one cache entry, never corrupting one.
func (t *LockFree) refresh(b *lfBucket, i int, key, data uint64) {
	nd := data&^lfGenMask | uint64(t.Generation())<<lfGenShift
	if nd != data {
		b.write(i, key, nd)
	}
}

// Probe looks up the entry for key at exactly the given depth (the striped
// table's equal-depth semantics).
func (t *LockFree) Probe(key uint64, depth int) (Entry, bool) {
	t.probes.Add(1)
	b := t.bucket(key)
	if i, data := b.find(key); i >= 0 {
		e, _ := unpackEntry(key, data)
		if int(e.Depth) == depth {
			t.hits.Add(1)
			t.refresh(b, i, key, data)
			return e, true
		}
	}
	return Entry{}, false
}

// ProbeDeep looks up the entry for key at depth or deeper, returning the
// deepest match in the bucket (concurrent StoreDeep racers can leave more
// than one copy of a key; the deepest is the one every memory-reusing driver
// wants).
func (t *LockFree) ProbeDeep(key uint64, depth int) (Entry, bool) {
	t.probes.Add(1)
	b := t.bucket(key)
	best, bestSlot, bestData := Entry{}, -1, uint64(0)
	for i := 0; i < lfSlots; i++ {
		data, ok := b.load(i, key)
		if !ok {
			continue
		}
		e, _ := unpackEntry(key, data)
		if int(e.Depth) >= depth && (bestSlot < 0 || e.Depth > best.Depth) {
			best, bestSlot, bestData = e, i, data
		}
	}
	if bestSlot < 0 {
		return Entry{}, false
	}
	t.hits.Add(1)
	t.refresh(b, bestSlot, key, bestData)
	return best, true
}

// Store saves a result under the striped table's Store policy: a same-key
// store always replaces (in exact mode keys are depth-salted, so same key
// means same depth).
func (t *LockFree) Store(key uint64, depth int, value game.Value, bound Bound) {
	t.store(key, depth, value, bound, false)
}

// StoreDeep saves a result but never lets a shallower same-key store evict a
// deeper entry — the companion policy to ProbeDeep.
func (t *LockFree) StoreDeep(key uint64, depth int, value game.Value, bound Bound) {
	t.store(key, depth, value, bound, true)
}

func (t *LockFree) store(key uint64, depth int, value game.Value, bound Bound, deep bool) {
	b := t.bucket(key)
	gen := t.Generation()
	data := packEntry(depth, value, bound, gen)

	// Same key already present: refresh in place (or keep the deeper entry
	// under the StoreDeep policy).
	if i, old := b.find(key); i >= 0 {
		e, _ := unpackEntry(key, old)
		if deep && int(e.Depth) > depth {
			return // keep the deeper entry
		}
		b.write(i, key, data)
		t.stores.Add(1)
		return
	}

	// An empty slot anywhere in the bucket takes the entry without evicting
	// anyone.
	for i := 0; i < lfSlots; i++ {
		if b.words[2*i+1].Load()&lfUsedBit == 0 {
			b.write(i, key, data)
			t.stores.Add(1)
			return
		}
	}

	// Bucket full. Among the depth-preferred slots (0..lfSlots-2), find the
	// victim with the least effective depth — stored depth discounted by
	// generation age — and take its slot if the new entry retains at least as
	// well. Otherwise fall through to the always-replace slot, so a shallow
	// fresh result still lands instead of losing to a deep stale stranger.
	victim, victimRetention := -1, 0
	for i := 0; i < lfSlots-1; i++ {
		d := b.words[2*i+1].Load()
		e, g := unpackEntry(0, d)
		age := int((gen - g) & 0xff)
		retention := int(e.Depth) - lfAgePenalty*age
		if victim < 0 || retention < victimRetention {
			victim, victimRetention = i, retention
		}
	}
	slot := lfSlots - 1 // the always-replace slot
	if victim >= 0 && depth >= victimRetention {
		slot = victim
	}
	if b.words[2*slot+1].Load()&lfUsedBit != 0 {
		t.replacements.Add(1)
	}
	b.write(slot, key, data)
	t.stores.Add(1)
}

// NewSearch bumps the generation: entries stored before the bump age by one.
func (t *LockFree) NewSearch() { t.gen.Add(1) }

// Generation returns the current generation (wraps at 256).
func (t *LockFree) Generation() uint8 { return uint8(t.gen.Load()) }

// Impl names the implementation.
func (t *LockFree) Impl() string { return ImplLockFree }

// Len returns the total slot count.
func (t *LockFree) Len() int { return len(t.buckets) * lfSlots }

// lfFillSample bounds the buckets Fill visits: occupancy is uniform under a
// 64-bit hash, so a thousand cache lines estimate the fill of a million.
const lfFillSample = 1024

// Fill estimates the number of used slots in O(lfFillSample) atomic loads:
// small tables are counted exactly, large ones sampled and extrapolated. No
// writer is ever blocked — there is nothing to block on.
func (t *LockFree) Fill() int {
	sample := len(t.buckets)
	if sample > lfFillSample {
		sample = lfFillSample
	}
	n := 0
	for i := 0; i < sample; i++ {
		for j := 0; j < lfSlots; j++ {
			if t.buckets[i].words[2*j+1].Load()&lfUsedBit != 0 {
				n++
			}
		}
	}
	if sample == len(t.buckets) {
		return n
	}
	est := int(int64(n) * int64(len(t.buckets)) / int64(sample))
	if max := t.Len(); est > max {
		est = max
	}
	return est
}

// Stats returns the current traffic counters. Each counter is read
// atomically; the snapshot as a whole is approximate while writers are
// active.
func (t *LockFree) Stats() SharedStats {
	return SharedStats{
		Probes:       t.probes.Load(),
		Hits:         t.hits.Load(),
		Stores:       t.stores.Load(),
		Replacements: t.replacements.Load(),
	}
}

// HitRate returns hits over probes.
func (t *LockFree) HitRate() float64 {
	p := t.probes.Load()
	if p == 0 {
		return 0
	}
	return float64(t.hits.Load()) / float64(p)
}
