package tt

import (
	"fmt"
	"os"
	"sort"

	"ertree/internal/game"
)

// SharedTable is the full contract of a process-shared transposition table:
// the Prober probe/store pair the core workers use, the ProbeDeep/StoreDeep
// memory-reusing pair of the deepening drivers, occupancy and traffic
// introspection for the serving layer, and generation aging for replacement.
// Two implementations register here: the mutex-striped Shared (the
// comparison baseline) and the lock-free LockFree table (the default).
type SharedTable interface {
	Prober
	// ProbeDeep looks up the entry for key at depth or deeper (Plaat-style
	// memory reuse); StoreDeep is its companion store that never lets a
	// shallower same-key result evict a deeper one.
	ProbeDeep(key uint64, depth int) (Entry, bool)
	StoreDeep(key uint64, depth int, value game.Value, bound Bound)
	// Len returns the total slot count; Fill estimates the occupied count
	// without stopping writers (implementations sample, so the value is an
	// estimate on large tables).
	Len() int
	Fill() int
	// Stats and HitRate snapshot the probe/store traffic counters.
	Stats() SharedStats
	HitRate() float64
	// NewSearch bumps the table's generation: entries stored before the bump
	// age, and aged entries lose replacement priority. Engines call it once
	// per admitted session.
	NewSearch()
	// Generation returns the current generation (wraps at 256).
	Generation() uint8
	// Impl names the implementation ("striped" or "lockfree").
	Impl() string
}

// Both implementations satisfy the contract.
var (
	_ SharedTable = (*Shared)(nil)
	_ SharedTable = (*LockFree)(nil)
)

// Implementation names accepted by NewSharedTable.
const (
	// ImplStriped is the mutex-striped direct-mapped table (Shared), kept as
	// the lock-based comparison baseline.
	ImplStriped = "striped"
	// ImplLockFree is the lock-free bucketed table with XOR key validation
	// and aging replacement (LockFree).
	ImplLockFree = "lockfree"
)

// EnvTable is the environment variable consulted when no implementation name
// is given, so a test matrix (CI's table leg) can force every table in the
// process onto one implementation without threading a flag through each test.
const EnvTable = "ERTREE_TABLE"

// DefaultImpl is the table used when neither the caller nor EnvTable selects
// one: the lock-free table, the serving-scale default.
const DefaultImpl = ImplLockFree

// tableFactories maps implementation names to constructors. The striped
// table interprets shards as its stripe count; the lock-free table has no
// locks to stripe and ignores it.
var tableFactories = map[string]func(bits, shards int) SharedTable{
	ImplStriped:  func(bits, shards int) SharedTable { return NewShared(bits, shards) },
	ImplLockFree: func(bits, shards int) SharedTable { return NewLockFree(bits) },
}

// Impls returns the known implementation names, sorted.
func Impls() []string {
	out := make([]string, 0, len(tableFactories))
	for n := range tableFactories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ImplsString returns the known implementation names joined for error
// messages and flag help.
func ImplsString() string {
	s := ""
	for i, n := range Impls() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// ValidImpl reports whether name is a known table implementation. The empty
// name is valid: it selects EnvTable's choice, then DefaultImpl.
func ValidImpl(name string) bool {
	if name == "" {
		return true
	}
	_, ok := tableFactories[name]
	return ok
}

// NewSharedTable builds the named table implementation with 2^bits slots.
// An empty name consults the ERTREE_TABLE environment variable and then
// falls back to DefaultImpl; an unknown name is an error naming the valid
// set, so servers and CLIs can surface a helpful message.
func NewSharedTable(impl string, bits, shards int) (SharedTable, error) {
	if impl == "" {
		impl = os.Getenv(EnvTable)
	}
	if impl == "" {
		impl = DefaultImpl
	}
	f, ok := tableFactories[impl]
	if !ok {
		return nil, fmt.Errorf("tt: unknown table implementation %q (valid: %s)", impl, ImplsString())
	}
	return f(bits, shards), nil
}

// NewDefault builds the table selected by ERTREE_TABLE (or DefaultImpl) and
// panics on an unknown name: it is the constructor tests and benchmarks use,
// where a misspelled matrix value should fail loudly, not fall back.
func NewDefault(bits, shards int) SharedTable {
	t, err := NewSharedTable("", bits, shards)
	if err != nil {
		panic(err)
	}
	return t
}

// IsNil reports whether t is nil or a typed nil pointer wrapped in the
// interface. Callers that accept a SharedTable and branch on "no table" use
// it so a (*Shared)(nil) smuggled through the interface reads as absent, the
// same way the plain pointer fields did before the interface seam.
func IsNil(t SharedTable) bool {
	if t == nil {
		return true
	}
	switch v := t.(type) {
	case *Shared:
		return v == nil
	case *LockFree:
		return v == nil
	}
	return false
}
