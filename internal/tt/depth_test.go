package tt

import (
	"sync"
	"testing"

	"ertree/internal/game"
)

// Concurrent depth-preferred replacement: StoreDeep never lets a shallower
// result evict a deeper one for the same position, so under any interleaving
// of same-key stores the slot's depth is monotonically non-decreasing, and a
// reader that once observed depth d can never later observe a shallower
// entry. Entries are written with Value == Depth so torn or stale reads are
// also detectable as a value/depth mismatch. Run with -race (as CI does)
// this doubles as the data-race check on the striped-lock slot access.

func TestSharedStoreDeepConcurrentSameKey(t *testing.T) {
	const (
		key     = uint64(0xABCDEF123456)
		writers = 8
		readers = 4
		rounds  = 2000
		maxD    = 32
	)
	table := NewShared(10, 4)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			seen := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := table.ProbeDeep(key, 0)
				if !ok {
					continue
				}
				if int(e.Value) != int(e.Depth) {
					t.Errorf("torn entry: depth %d value %d", e.Depth, e.Value)
					return
				}
				if int(e.Depth) < seen {
					t.Errorf("depth went backwards: saw %d after %d", e.Depth, seen)
					return
				}
				seen = int(e.Depth)
				// ProbeDeep at a positive floor must never hand back a
				// shallower entry than asked for.
				if e2, ok2 := table.ProbeDeep(key, seen); ok2 && int(e2.Depth) < seen {
					t.Errorf("ProbeDeep(depth=%d) returned depth %d", seen, e2.Depth)
					return
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			x := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < rounds; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				d := int(x % maxD)
				table.StoreDeep(key, d, game.Value(d), Exact)
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// A consistent entry must survive the store storm.
	e, ok := table.ProbeDeep(key, 0)
	if !ok {
		t.Fatal("no entry survived the store storm")
	}
	if int(e.Value) != int(e.Depth) || int(e.Depth) >= maxD {
		t.Fatalf("final entry inconsistent: depth %d value %d", e.Depth, e.Value)
	}
	// A deeper StoreDeep still wins, and a shallower one still loses.
	table.StoreDeep(key, maxD, game.Value(maxD), Exact)
	table.StoreDeep(key, 1, 1, Exact)
	if e, _ := table.ProbeDeep(key, 0); int(e.Depth) != maxD {
		t.Fatalf("shallow StoreDeep evicted deeper entry: depth %d", e.Depth)
	}
}
