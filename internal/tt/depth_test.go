package tt

import (
	"fmt"
	"sync"
	"testing"

	"ertree/internal/game"
)

// Concurrent depth-preferred replacement: StoreDeep never lets a shallower
// result evict a deeper one for the same position. Under the striped table's
// per-slot mutex that is a strict guarantee — the slot's depth is
// monotonically non-decreasing, and a reader that once observed depth d can
// never later observe a shallower entry. The lock-free table is lossy by
// design: two unlocked writers can each pass the keep-deeper check against
// the same old entry and the shallower one can land last, so readers may see
// depth retreat across a race window. What it does guarantee, always: a
// ProbeDeep at floor f never returns an entry shallower than f, and no hit
// is ever corrupt (entries are written with Value == Depth so torn or mixed
// reads are detectable as a value/depth mismatch). Run with -race (as CI
// does) this doubles as the data-race check on both slot-access paths.

func TestStoreDeepConcurrentSameKey(t *testing.T) {
	for name, table := range impls(10, 4) {
		// Strict reader-visible monotonicity is the locked table's promise;
		// the lock-free table promises the floor contract and no corruption.
		strict := name == ImplStriped
		t.Run(fmt.Sprintf("%s/strict=%v", name, strict), func(t *testing.T) {
			testStoreDeepConcurrentSameKey(t, table, strict)
		})
	}
}

func testStoreDeepConcurrentSameKey(t *testing.T, table SharedTable, strict bool) {
	const (
		key     = uint64(0xABCDEF123456)
		writers = 8
		readers = 4
		rounds  = 2000
		maxD    = 32
	)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			seen := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				e, ok := table.ProbeDeep(key, 0)
				if !ok {
					continue
				}
				if int(e.Value) != int(e.Depth) {
					t.Errorf("torn entry: depth %d value %d", e.Depth, e.Value)
					return
				}
				if strict && int(e.Depth) < seen {
					t.Errorf("depth went backwards: saw %d after %d", e.Depth, seen)
					return
				}
				seen = int(e.Depth)
				// ProbeDeep at a positive floor must never hand back a
				// shallower entry than asked for — on any implementation.
				if e2, ok2 := table.ProbeDeep(key, seen); ok2 && int(e2.Depth) < seen {
					t.Errorf("ProbeDeep(depth=%d) returned depth %d", seen, e2.Depth)
					return
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			x := uint64(w)*0x9E3779B97F4A7C15 + 1
			for i := 0; i < rounds; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				d := int(x % maxD)
				table.StoreDeep(key, d, game.Value(d), Exact)
			}
		}(w)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	// A consistent entry must survive the store storm.
	e, ok := table.ProbeDeep(key, 0)
	if !ok {
		t.Fatal("no entry survived the store storm")
	}
	if int(e.Value) != int(e.Depth) || int(e.Depth) >= maxD {
		t.Fatalf("final entry inconsistent: depth %d value %d", e.Depth, e.Value)
	}
	// Once the writers quiesce, the sequential semantics hold on every
	// implementation: a deeper StoreDeep wins, a shallower one loses.
	table.StoreDeep(key, maxD, game.Value(maxD), Exact)
	table.StoreDeep(key, 1, 1, Exact)
	if e, _ := table.ProbeDeep(key, 0); int(e.Depth) != maxD {
		t.Fatalf("shallow StoreDeep evicted deeper entry: depth %d", e.Depth)
	}
}
