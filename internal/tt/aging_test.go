package tt

import (
	"testing"

	"ertree/internal/game"
)

// agingValue is the pure value function of the aging tests: every accepted
// entry must read back as exactly this for its (key, depth).
func agingValue(key uint64, depth int) game.Value {
	return game.Value(int32(key) ^ int32(depth)<<8)
}

// TestGenerationBump pins the generation plumbing on both implementations:
// NewSearch advances it, and it wraps at 256 without disturbing stored
// entries.
func TestGenerationBump(t *testing.T) {
	for name, s := range impls(8, 2) {
		t.Run(name, func(t *testing.T) {
			if s.Generation() != 0 {
				t.Fatalf("fresh table generation %d", s.Generation())
			}
			s.Store(42, 5, 9, Exact)
			for i := 0; i < 300; i++ {
				s.NewSearch()
			}
			if got, want := s.Generation(), uint8(300%256); got != want {
				t.Fatalf("generation after 300 bumps: %d, want %d", got, want)
			}
			if e, ok := s.Probe(42, 5); !ok || e.Value != 9 {
				t.Fatalf("entry lost across generation bumps: %+v ok=%v", e, ok)
			}
		})
	}
}

// TestLockFreeFreshShallowStoreAlwaysLands is the first half of the
// replacement property: however deep and full the bucket, a store from the
// current generation must land in some slot and be immediately probeable —
// the always-replace slot guarantees it. (This is exactly what the
// direct-mapped tables could not do: their single slot kept the deep
// stranger and dropped the fresh result.)
func TestLockFreeFreshShallowStoreAlwaysLands(t *testing.T) {
	s := NewLockFree(10)
	keys := lfBucketKeys(s, lfSlots+3)
	// Fill the bucket with maximally sticky entries: very deep, current
	// generation.
	for _, k := range keys[:lfSlots] {
		s.Store(k, 30, agingValue(k, 30), Exact)
	}
	s.NewSearch()
	// A depth-1 store from the new generation must still land.
	fresh := keys[lfSlots]
	s.Store(fresh, 1, agingValue(fresh, 1), Exact)
	if e, ok := s.Probe(fresh, 1); !ok || e.Value != agingValue(fresh, 1) {
		t.Fatalf("fresh shallow store did not land: %+v ok=%v", e, ok)
	}
}

// TestLockFreeDeepEntrySurvivesShallowChurn is the second half: a deep,
// recent entry in a preferred slot must survive a storm of shallow foreign
// stores (they cycle through the always-replace slot instead of evicting
// it), until the aging policy itself retires it.
func TestLockFreeDeepEntrySurvivesShallowChurn(t *testing.T) {
	s := NewLockFree(10)
	keys := lfBucketKeys(s, 64)
	deep := keys[0]
	s.Store(deep, 25, agingValue(deep, 25), Exact)
	// Shallow churn in the same generation: depth 1-3 foreign keys.
	for i, k := range keys[1:] {
		s.Store(k, 1+i%3, agingValue(k, 1+i%3), Lower)
	}
	if e, ok := s.Probe(deep, 25); !ok || e.Value != agingValue(deep, 25) {
		t.Fatalf("deep recent entry evicted by shallow churn: %+v ok=%v", e, ok)
	}

	// Now age it far enough that retention (25 - 2*age) drops below the
	// churn depth; the policy may and should retire it for fresh work.
	for i := 0; i < 15; i++ {
		s.NewSearch()
	}
	for i, k := range keys[1:] {
		s.Store(k, 1+i%3, agingValue(k, 1+i%3), Lower)
	}
	// Whether or not the deep entry survived (probes refresh generations, so
	// it may have been re-stamped), every probeable entry must be
	// uncorrupted: the value matches its own key and depth.
	hits := 0
	for _, k := range keys {
		if e, ok := s.ProbeDeep(k, 0); ok {
			hits++
			if e.Value != agingValue(k, int(e.Depth)) {
				t.Fatalf("corrupt entry after aging churn: key %x %+v", k, e)
			}
		}
	}
	if hits == 0 {
		t.Fatal("bucket empty after churn: stores are not landing at all")
	}
}

// TestLockFreeReplacementModelProperty is the randomized never-corrupt
// property over the full replacement policy: a single-threaded random
// workload of stores, deep stores, probes, and generation bumps, where every
// value is a pure function of (key, depth). Whatever the policy decides to
// keep or evict, a hit must always be exactly what some store wrote — wrong
// values, mixed fields, or phantom entries fail.
func TestLockFreeReplacementModelProperty(t *testing.T) {
	s := NewLockFree(8) // 64 buckets: heavy collision pressure
	rng := uint64(0xabcdef12345)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	stored := make(map[uint64]bool) // keys ever stored (any depth)
	for i := 0; i < 200000; i++ {
		key := (next(2048) + 1) * 0x9e3779b97f4a7c15
		depth := int(next(24))
		switch next(5) {
		case 0:
			s.Store(key, depth, agingValue(key, depth), Bound(next(3)))
			stored[key] = true
		case 1:
			s.StoreDeep(key, depth, agingValue(key, depth), Bound(next(3)))
			stored[key] = true
		case 2:
			if e, ok := s.Probe(key, depth); ok {
				if !stored[key] {
					t.Fatalf("phantom hit for never-stored key %x: %+v", key, e)
				}
				if int(e.Depth) != depth || e.Value != agingValue(key, depth) {
					t.Fatalf("probe corrupt: key %x depth %d -> %+v want value %d",
						key, depth, e, agingValue(key, depth))
				}
			}
		case 3:
			if e, ok := s.ProbeDeep(key, depth); ok {
				if !stored[key] {
					t.Fatalf("phantom deep hit for never-stored key %x: %+v", key, e)
				}
				if int(e.Depth) < depth || e.Value != agingValue(key, int(e.Depth)) {
					t.Fatalf("deep probe corrupt: key %x floor %d -> %+v", key, depth, e)
				}
			}
		case 4:
			if next(50) == 0 {
				s.NewSearch()
			}
		}
	}
	if st := s.Stats(); st.Stores == 0 || st.Hits == 0 {
		t.Fatalf("degenerate workload: %+v", st)
	}
}
