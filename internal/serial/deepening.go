package serial

import "ertree/internal/game"

// Iterative deepening with aspiration windows: the standard driver real
// game programs wrap around a fixed-depth search (and the serial use of
// Baudet's aspiration idea from §4.1). Each iteration searches one ply
// deeper with a narrow window centered on the previous value, re-searching
// with a wider window on failure. The final value is exact for MaxDepth.

// DeepeningOptions configures IterativeDeepening.
type DeepeningOptions struct {
	// MaxDepth is the final search depth. Must be at least 1.
	MaxDepth int
	// Delta is the aspiration half-window around the previous iteration's
	// value. Zero means full-window iterations (no aspiration).
	Delta game.Value
	// Algorithm selects the fixed-depth search: "ab" (default) or "er".
	Algorithm string
}

// DeepeningResult reports one iteration of the deepening driver.
type DeepeningResult struct {
	Depth      int
	Value      game.Value
	Researches int // extra searches forced by aspiration failures
}

// IterativeDeepening runs depth 1..MaxDepth searches, steering each with an
// aspiration window around the previous value, and returns the per-depth
// results. The last entry's Value is the exact value at MaxDepth.
func (s *Searcher) IterativeDeepening(pos game.Position, opt DeepeningOptions) []DeepeningResult {
	if opt.MaxDepth < 1 {
		return nil
	}
	search := func(depth int, w game.Window) game.Value {
		if opt.Algorithm == "er" {
			return s.ER(pos, depth, w)
		}
		return s.AlphaBeta(pos, depth, w)
	}
	var out []DeepeningResult
	prev := game.NoValue
	for depth := 1; depth <= opt.MaxDepth; depth++ {
		w := game.FullWindow()
		if opt.Delta > 0 && prev != game.NoValue {
			w = game.Window{Alpha: prev - opt.Delta, Beta: prev + opt.Delta}
		}
		res := DeepeningResult{Depth: depth}
		for {
			v := search(depth, w)
			if v <= w.Alpha && w.Alpha > -game.Inf {
				// Fail low: the true value is at most v; reopen the
				// lower half. The re-search window contains the value,
				// so at most one re-search per side is needed.
				res.Researches++
				w = game.Window{Alpha: -game.Inf, Beta: v + 1}
				continue
			}
			if v >= w.Beta && w.Beta < game.Inf {
				// Fail high: the true value is at least v; reopen the
				// upper half.
				res.Researches++
				w = game.Window{Alpha: v - 1, Beta: game.Inf}
				continue
			}
			res.Value = v
			break
		}
		prev = res.Value
		out = append(out, res)
	}
	return out
}
