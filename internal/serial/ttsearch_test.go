package serial

import (
	"math/rand"
	"testing"

	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/tt"
	"ertree/internal/ttt"
)

// TestTTSearchExactConnect4: alpha-beta with a transposition table returns
// the exact negmax value on transposition-rich Connect Four positions.
func TestTTSearchExactConnect4(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		b := connect4.New()
		for i := 0; i < rng.Intn(10) && !b.Terminal(); i++ {
			kids := b.Children()
			b = kids[rng.Intn(len(kids))].(connect4.Board)
		}
		depth := 6
		var plain Searcher
		want := plain.Negmax(b, depth)
		table := tt.New(14)
		var s Searcher
		if got := s.AlphaBetaTT(b, depth, game.FullWindow(), table); got != want {
			t.Fatalf("trial %d: TT search %d, negmax %d\n%s", trial, got, want, b)
		}
		if table.Hits == 0 {
			t.Errorf("trial %d: no transposition hits on connect4 at depth %d", trial, depth)
		}
	}
}

// TestTTSearchSavesNodes: the table must reduce node generation on a deep
// Connect Four search.
func TestTTSearchSavesNodes(t *testing.T) {
	b := connect4.New()
	depth := 8
	var noTT, withTT game.Stats
	s1 := Searcher{Stats: &noTT}
	v1 := s1.AlphaBeta(b, depth, game.FullWindow())
	s2 := Searcher{Stats: &withTT}
	v2 := s2.AlphaBetaTT(b, depth, game.FullWindow(), tt.New(18))
	if v1 != v2 {
		t.Fatalf("values differ: %d vs %d", v1, v2)
	}
	if withTT.Generated.Load() >= noTT.Generated.Load() {
		t.Errorf("TT did not save nodes: %d vs %d", withTT.Generated.Load(), noTT.Generated.Load())
	}
	t.Logf("nodes without TT: %d; with TT: %d", noTT.Generated.Load(), withTT.Generated.Load())
}

// TestTTSearchOthelloAndTTT: same-value property on the other hashable games.
func TestTTSearchOthelloAndTTT(t *testing.T) {
	o := othello.O1()
	var s Searcher
	want := s.Negmax(o, 4)
	if got := s.AlphaBetaTT(o, 4, game.FullWindow(), tt.New(14)); got != want {
		t.Fatalf("othello: %d want %d", got, want)
	}
	x := ttt.New()
	if got := s.AlphaBetaTT(x, 9, game.FullWindow(), tt.New(16)); got != 0 {
		t.Fatalf("ttt with TT: %d want 0", got)
	}
}

// TestTTSearchNilTableAndUnhashable: graceful degradation.
func TestTTSearchNilTableAndUnhashable(t *testing.T) {
	b := connect4.New()
	var s Searcher
	want := s.Negmax(b, 5)
	if got := s.AlphaBetaTT(b, 5, game.FullWindow(), nil); got != want {
		t.Fatalf("nil table: %d want %d", got, want)
	}
}

// TestTTSearchWindowed: fail-soft contract holds with a table.
func TestTTSearchWindowed(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	b := connect4.New().MustDrop(3, 3, 2)
	depth := 5
	var s Searcher
	exact := s.Negmax(b, depth)
	for i := 0; i < 30; i++ {
		a := game.Value(rng.Intn(201) - 100)
		bb := a + game.Value(rng.Intn(100)+1)
		table := tt.New(12)
		got := s.AlphaBetaTT(b, depth, game.Window{Alpha: a, Beta: bb}, table)
		switch {
		case exact <= a:
			if got > a {
				t.Fatalf("fail-low violated: exact %d window (%d,%d) got %d", exact, a, bb, got)
			}
		case exact >= bb:
			if got < bb || got > exact {
				t.Fatalf("fail-high violated: exact %d window (%d,%d) got %d", exact, a, bb, got)
			}
		default:
			if got != exact {
				t.Fatalf("interior mismatch: exact %d window (%d,%d) got %d", exact, a, bb, got)
			}
		}
	}
}
