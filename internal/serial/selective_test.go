package serial

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/gtree"
)

func TestSelectiveSortAgreesWithNegmax(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for _, noise := range []game.Value{0, 10, 500} {
		spec := gtree.RandomSpec{
			MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5,
			ValueRange: 60, StaticNoise: noise,
		}
		for i := 0; i < 60; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			var plain Searcher
			want := plain.Negmax(root, h)
			s := Searcher{Order: game.StaticOrder{MaxPly: 4}}
			if got := s.AlphaBetaSelectiveSort(root, h, game.FullWindow()); got != want {
				t.Fatalf("noise %d tree %d: selective = %d, want %d\n%s",
					noise, i, got, want, root)
			}
		}
	}
}

func TestSelectiveSortReducesSortEvals(t *testing.T) {
	// On a perfectly-ordered informed tree, the selective variant must
	// apply strictly fewer ordering evaluations than full sorting while
	// returning the same value.
	rng := rand.New(rand.NewSource(9))
	spec := gtree.RandomSpec{
		MinDegree: 3, MaxDegree: 3, MinDepth: 5, MaxDepth: 5,
		ValueRange: 1000, StaticNoise: 0,
	}
	root := spec.Generate(rng)
	order := game.StaticOrder{MaxPly: 4}
	var full, sel game.Stats
	sf := Searcher{Order: order, Stats: &full}
	v1 := sf.AlphaBeta(root, 5, game.FullWindow())
	ss := Searcher{Order: order, Stats: &sel}
	v2 := ss.AlphaBetaSelectiveSort(root, 5, game.FullWindow())
	if v1 != v2 {
		t.Fatalf("values differ: %d vs %d", v1, v2)
	}
	if sel.SortEvals.Load() >= full.SortEvals.Load() {
		t.Errorf("selective sorting used %d sort evals, full used %d",
			sel.SortEvals.Load(), full.SortEvals.Load())
	}
	// On a perfectly ordered tree, skipping sorts at 1/3-nodes must not
	// increase the node count (the order is already best-first).
	if sel.Generated.Load() > full.Generated.Load() {
		t.Errorf("selective sorting generated more nodes (%d > %d) on a best-first tree",
			sel.Generated.Load(), full.Generated.Load())
	}
}

func TestExamineAgreesWithWindowedSearch(t *testing.T) {
	// Examine must produce a value consistent with alpha-beta under the
	// same window: exact inside, bound-correct outside.
	rng := rand.New(rand.NewSource(71))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 4, ValueRange: 30}
	for i := 0; i < 150; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var o Searcher
		exact := o.Negmax(root, h)
		a := game.Value(rng.Intn(61) - 30)
		b := a + game.Value(rng.Intn(20)+1)
		var s Searcher
		got := s.Examine(root, h, game.Window{Alpha: a, Beta: b})
		switch {
		case exact <= a:
			if got > a {
				t.Fatalf("tree %d: fail-low violated: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		case exact >= b:
			if got < b || got > exact {
				t.Fatalf("tree %d: fail-high violated: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		default:
			if got != exact {
				t.Fatalf("tree %d: interior mismatch: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		}
	}
}

func TestRefuteAgreesWithWindowedSearch(t *testing.T) {
	// Refute with skip=0 and no tentative must satisfy the same windowed
	// contract as Examine.
	rng := rand.New(rand.NewSource(72))
	spec := gtree.RandomSpec{MinDegree: 2, MaxDegree: 3, MinDepth: 2, MaxDepth: 4, ValueRange: 25}
	for i := 0; i < 120; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var o Searcher
		exact := o.Negmax(root, h)
		a := game.Value(rng.Intn(51) - 25)
		b := a + game.Value(rng.Intn(15)+1)
		var s Searcher
		got := s.Refute(root, h, game.Window{Alpha: a, Beta: b}, 0, -game.Inf)
		switch {
		case exact <= a:
			if got > a {
				t.Fatalf("tree %d: fail-low violated: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		case exact >= b:
			if got < b || got > exact {
				t.Fatalf("tree %d: fail-high violated: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		default:
			if got != exact {
				t.Fatalf("tree %d: interior mismatch: exact %d window (%d,%d) got %d", i, exact, a, b, got)
			}
		}
	}
}
