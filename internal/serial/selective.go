package serial

import "ertree/internal/game"

// AlphaBetaSelectiveSort is alpha-beta with the sorting optimization the
// paper sketches in §7: "It is possible to reduce the sorting overhead for
// alpha-beta, since the children of critical 1-nodes and 3-nodes need not be
// sorted." The paper leaves open whether serial ER would still win on O1
// against this variant; experiment A4 answers that for this reproduction.
//
// Node types follow the Knuth/Moore expected-type rules (§2.2): the root is
// type 1; the first child of a type-1 node is type 1 and the rest are type
// 2; the first child of a type-2 node is type 3 and the rest are type 2
// (they are reached only when an earlier sibling fails to cut); children of
// a type-3 node are type 2. Only type-2 nodes sort their children — a
// type-2 node needs its best child first to produce the cutoff, while 1-
// and 3-nodes must examine all children anyway.
func (s *Searcher) AlphaBetaSelectiveSort(pos game.Position, depth int, w game.Window) game.Value {
	s.Stats.AddGenerated(1)
	return s.alphaBetaSel(pos, depth, 0, w, 1)
}

func (s *Searcher) alphaBetaSel(pos game.Position, depth, ply int, w game.Window, ntype int8) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	kids := s.expand(pos, ply, ntype == 2)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	m := -game.Inf
	for i, k := range kids {
		var childType int8
		switch {
		case ntype == 1 && i == 0:
			childType = 1
		case ntype == 1:
			childType = 2
		case ntype == 2 && i == 0:
			childType = 3
		case ntype == 2:
			childType = 2
		default: // ntype == 3
			childType = 2
		}
		t := -s.alphaBetaSel(k, depth-1, ply+1, w.Child(m), childType)
		if t > m {
			m = t
		}
		if m >= w.Beta {
			s.Stats.AddCutoffs(1)
			return m
		}
	}
	return m
}
