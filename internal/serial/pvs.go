package serial

import "ertree/internal/game"

// PVS is principal-variation search (minimal-window search), the technique
// behind the pv-splitting variant of Marsland and Popowich that the paper's
// footnote 3 describes: the first child is searched with the full window;
// every later child is first *verified* with a null window (alpha, alpha+1),
// which is cheap when the first child really is best, and re-searched with
// the proper window only when the verification fails high.
//
// With a full root window the result equals Negmax exactly.
func (s *Searcher) PVS(pos game.Position, depth int, w game.Window) game.Value {
	s.Stats.AddGenerated(1)
	return s.pvs(pos, depth, 0, w)
}

func (s *Searcher) pvs(pos game.Position, depth, ply int, w game.Window) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	kids := s.expand(pos, ply, true)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	// First child: full window.
	m := -s.pvs(kids[0], depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -w.Alpha})
	if m >= w.Beta {
		s.Stats.AddCutoffs(1)
		return m
	}
	for _, k := range kids[1:] {
		a := game.Max(w.Alpha, m)
		// Null-window verification: is the child worse than the best so
		// far?
		t := -s.pvs(k, depth-1, ply+1, game.Window{Alpha: -(a + 1), Beta: -a})
		if t > a && t < w.Beta {
			// Verification failed high inside the window: re-search with
			// the proper window for the exact value.
			t = -s.pvs(k, depth-1, ply+1, game.Window{Alpha: -w.Beta, Beta: -a})
		}
		if t > m {
			m = t
		}
		if m >= w.Beta {
			s.Stats.AddCutoffs(1)
			return m
		}
	}
	return m
}
