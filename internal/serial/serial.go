// Package serial implements the single-processor search algorithms of the
// paper: the negmax reference procedure (§2), alpha-beta with deep cutoffs
// (§2.1), alpha-beta without deep cutoffs (§2.2, the variant whose minimal
// tree MWF exploits), and the serial ER algorithm of Figure 8.
//
// All algorithms are depth-limited: a position is treated as terminal when
// the remaining depth reaches zero or it has no children, and its static
// value is used.
package serial

import "ertree/internal/game"

// Searcher bundles the policies shared by the serial algorithms: a move
// orderer and a statistics sink. The zero value uses natural move order and
// discards statistics.
type Searcher struct {
	// Order is the move-ordering policy. Nil means game.NaturalOrder.
	Order game.Orderer
	// Stats receives node accounting. Nil discards the counts.
	Stats *game.Stats
	// BasePly is the distance of the search root from the game root, used
	// when a serial search runs as a subtree task of a parallel search so
	// that ply-dependent ordering policies see true plies.
	BasePly int
}

func (s *Searcher) orderer() game.Orderer {
	if s.Order == nil {
		return game.NaturalOrder{}
	}
	return s.Order
}

// expand generates and orders the children of pos at the given ply, charging
// generation and ordering costs. sortChildren selectively disables ordering
// (ER does not sort successors of e-nodes, §7).
func (s *Searcher) expand(pos game.Position, ply int, sortChildren bool) []game.Position {
	kids := pos.Children()
	if len(kids) > 1 && sortChildren {
		o := s.orderer()
		s.Stats.AddSortEvals(int64(o.Cost(len(kids), s.BasePly+ply)))
		kids = o.Order(kids, s.BasePly+ply)
	}
	s.Stats.AddGenerated(int64(len(kids)))
	return kids
}

// leaf evaluates pos statically and charges the evaluation.
func (s *Searcher) leaf(pos game.Position, ply int) game.Value {
	s.Stats.AddEvaluated(1)
	s.Stats.NotePly(s.BasePly + ply)
	return pos.Value()
}

// Negmax computes the exact negamax value of pos searched to the given depth
// (paper §2). It visits the entire depth-limited tree and is the oracle
// against which every other algorithm is verified.
func (s *Searcher) Negmax(pos game.Position, depth int) game.Value {
	s.Stats.AddGenerated(1)
	return s.negmax(pos, depth, 0)
}

func (s *Searcher) negmax(pos game.Position, depth, ply int) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	kids := s.expand(pos, ply, false)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	m := -game.Inf
	for _, k := range kids {
		if v := -s.negmax(k, depth-1, ply+1); v > m {
			m = v
		}
	}
	return m
}

// AlphaBeta computes the negamax value of pos using fail-soft alpha-beta
// with deep cutoffs (§2.1). With the full window the result equals Negmax.
func (s *Searcher) AlphaBeta(pos game.Position, depth int, w game.Window) game.Value {
	s.Stats.AddGenerated(1)
	return s.alphaBeta(pos, depth, 0, w)
}

func (s *Searcher) alphaBeta(pos game.Position, depth, ply int, w game.Window) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	kids := s.expand(pos, ply, true)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	m := -game.Inf
	for _, k := range kids {
		t := -s.alphaBeta(k, depth-1, ply+1, w.Child(m))
		if t > m {
			m = t
		}
		if m >= w.Beta {
			s.Stats.AddCutoffs(1)
			return m
		}
	}
	return m
}

// AlphaBetaNoDeep computes the negamax value of pos using alpha-beta with
// shallow cutoffs only (Baudet's observation in §2.2 that deep cutoffs are a
// second-order effect; several algorithms, including MWF's reference, omit
// them). Only the immediate parent's running value bounds the search, so the
// alpha side of the window is never inherited across two plies.
func (s *Searcher) AlphaBetaNoDeep(pos game.Position, depth int, beta game.Value) game.Value {
	s.Stats.AddGenerated(1)
	return s.alphaBetaNoDeep(pos, depth, 0, beta)
}

func (s *Searcher) alphaBetaNoDeep(pos game.Position, depth, ply int, beta game.Value) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	kids := s.expand(pos, ply, true)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	m := -game.Inf
	for _, k := range kids {
		t := -s.alphaBetaNoDeep(k, depth-1, ply+1, -m)
		if t > m {
			m = t
		}
		if m >= beta {
			s.Stats.AddCutoffs(1)
			return m
		}
	}
	return m
}
