package serial

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/gtree"
	"ertree/internal/randtree"
)

func TestPVSExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	specs := []gtree.RandomSpec{
		{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 50},
		{MinDegree: 2, MaxDegree: 2, MinDepth: 6, MaxDepth: 6, ValueRange: 3},
		{MinDegree: 1, MaxDegree: 3, MinDepth: 1, MaxDepth: 4, ValueRange: 1000},
	}
	for si, spec := range specs {
		for i := 0; i < 80; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			var s Searcher
			want := s.Negmax(root, h)
			if got := s.PVS(root, h, game.FullWindow()); got != want {
				t.Fatalf("spec %d tree %d: PVS=%d want %d\n%s", si, i, got, want, root)
			}
		}
	}
}

func TestPVSWindowedContract(t *testing.T) {
	rng := rand.New(rand.NewSource(516))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 4, ValueRange: 30}
	for i := 0; i < 150; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		var o Searcher
		exact := o.Negmax(root, h)
		a := game.Value(rng.Intn(61) - 30)
		b := a + game.Value(rng.Intn(20)+1)
		var s Searcher
		got := s.PVS(root, h, game.Window{Alpha: a, Beta: b})
		switch {
		case exact <= a:
			if got > a {
				t.Fatalf("fail-low violated: exact %d window (%d,%d) got %d", exact, a, b, got)
			}
		case exact >= b:
			if got < b || got > exact {
				t.Fatalf("fail-high violated: exact %d window (%d,%d) got %d", exact, a, b, got)
			}
		default:
			if got != exact {
				t.Fatalf("interior mismatch: exact %d window (%d,%d) got %d", exact, a, b, got)
			}
		}
	}
}

func TestPVSCheaperOnOrderedTrees(t *testing.T) {
	// On a strongly ordered tree PVS must examine no more nodes than plain
	// alpha-beta (null windows verify cheaply when the first move is best).
	tr := randtree.Marsland(99, 4, 7)
	order := game.StaticOrder{MaxPly: 5}
	var ab, pvs game.Stats
	s1 := Searcher{Order: order, Stats: &ab}
	v1 := s1.AlphaBeta(tr.Root(), 7, game.FullWindow())
	s2 := Searcher{Order: order, Stats: &pvs}
	v2 := s2.PVS(tr.Root(), 7, game.FullWindow())
	if v1 != v2 {
		t.Fatalf("values differ: %d vs %d", v1, v2)
	}
	t.Logf("alpha-beta nodes %d, PVS nodes %d", ab.Generated.Load(), pvs.Generated.Load())
	if pvs.Generated.Load() > ab.Generated.Load()*11/10 {
		t.Errorf("PVS examined %d nodes vs alpha-beta %d (+>10%%) on an ordered tree",
			pvs.Generated.Load(), ab.Generated.Load())
	}
}
