package serial

import (
	"sort"

	"ertree/internal/game"
)

// This file is a transliteration of Figure 8 of the paper: the serial ER
// algorithm, decomposed into ER (the e-node protocol), Eval_first (evaluate a
// node's first child completely), and Refute_rest (examine the remaining
// children in order, trying to refute the node).
//
// One deviation from the printed pseudocode, documented here because it is
// load-bearing: Figure 8's Refute_rest begins with "value := α", which
// discards the tentative value the node obtained from its first child in
// Eval_first. Taken literally that loses the first child's contribution and
// can return a value below the node's true value even inside the window,
// corrupting ancestors (the paper's §5 prose — "the refutation is said to
// have failed and E's value is increased to -R" — requires R's value to
// include all children). We therefore retain the tentative value and only
// raise it to α: value := max(value, α). With this reading ER is alpha-beta
// with a different visit order and is exact at the root, which the property
// tests verify against negmax.

// erNode carries the per-node state of Figure 8's node record.
type erNode struct {
	pos   game.Position
	depth int // remaining search depth
	ply   int
	value game.Value
	done  bool
	kids  []*erNode // nil until expanded
}

// expandER generates the children of n once. Children of e-nodes are not
// statically sorted (the tentative-value sort replaces it, §7); children
// expanded inside Eval_first are sorted by the Searcher's orderer.
func (s *Searcher) expandER(n *erNode, sortChildren bool) []*erNode {
	if n.kids != nil || n.depth == 0 {
		return n.kids
	}
	kids := n.pos.Children()
	if len(kids) > 1 && sortChildren {
		o := s.orderer()
		s.Stats.AddSortEvals(int64(o.Cost(len(kids), s.BasePly+n.ply)))
		kids = o.Order(kids, s.BasePly+n.ply)
	}
	s.Stats.AddGenerated(int64(len(kids)))
	n.kids = make([]*erNode, len(kids))
	for i, k := range kids {
		n.kids[i] = &erNode{pos: k, depth: n.depth - 1, ply: n.ply + 1}
	}
	return n.kids
}

// ER evaluates pos to the given depth with window w using serial ER.
// With the full window the result equals Negmax.
func (s *Searcher) ER(pos game.Position, depth int, w game.Window) game.Value {
	s.Stats.AddGenerated(1)
	root := &erNode{pos: pos, depth: depth}
	return s.er(root, w.Alpha, w.Beta)
}

// er is function ER of Figure 8: the e-node protocol. It evaluates the elder
// grandchildren (via Eval_first on every child), sorts the children by their
// tentative values, then refutes the remaining children in that order.
func (s *Searcher) er(p *erNode, alpha, beta game.Value) game.Value {
	p.value = alpha
	kids := s.expandER(p, false)
	if len(kids) == 0 {
		p.done = true
		p.value = s.leaf(p.pos, p.ply)
		return p.value
	}
	for _, k := range kids {
		t := -s.evalFirst(k, -beta, -p.value)
		if k.done {
			if t > p.value {
				p.value = t
			}
			if p.value >= beta {
				s.Stats.AddCutoffs(1)
				p.done = true
				return p.value
			}
		}
	}
	// sort(P): order the children ascending by tentative value, so the
	// child most likely to be best for P is refuted (or evaluated) first.
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].value < kids[j].value })
	for _, k := range kids {
		if k.done {
			continue
		}
		t := -s.refuteRest(k, -beta, -p.value)
		if t > p.value {
			p.value = t
		}
		if p.value >= beta {
			s.Stats.AddCutoffs(1)
			p.done = true
			return p.value
		}
	}
	p.done = true
	return p.value
}

// evalFirst is function Eval_first of Figure 8: completely evaluate P's
// first child (an e-node), giving P a tentative value. P is done if it is a
// leaf, if the tentative value already refutes it, or if it has one child.
func (s *Searcher) evalFirst(p *erNode, alpha, beta game.Value) game.Value {
	p.value = alpha
	kids := s.expandER(p, true)
	if len(kids) == 0 {
		p.done = true
		p.value = s.leaf(p.pos, p.ply)
		return p.value
	}
	t := -s.er(kids[0], -beta, -p.value)
	if t > p.value {
		p.value = t
	}
	p.done = p.value >= beta || len(kids) == 1
	if p.value >= beta {
		s.Stats.AddCutoffs(1)
	}
	return p.value
}

// Refute attempts to refute pos within window w: its children are examined
// in order by the r-node protocol (Eval_first followed by Refute_rest, §5),
// stopping as soon as the node's value reaches w.Beta. The first `skip`
// children are assumed already examined, with their contribution included in
// `tentative` (a sound lower bound). This is the serial work unit for
// r-nodes at the parallel search's serial frontier.
func (s *Searcher) Refute(pos game.Position, depth int, w game.Window, skip int, tentative game.Value) game.Value {
	p := &erNode{pos: pos, depth: depth}
	p.value = game.Max(w.Alpha, tentative)
	if depth == 0 {
		return s.leaf(pos, 0)
	}
	kids := s.expandER(p, true)
	if len(kids) == 0 {
		return s.leaf(pos, 0)
	}
	if skip > len(kids) {
		skip = len(kids)
	}
	beta := w.Beta
	for i, k := range kids[skip:] {
		var t game.Value
		if skip == 0 && i == 0 {
			// An r-node's first child is an e-node (Table 1): it is
			// evaluated completely by the full ER protocol.
			t = -s.er(k, -beta, -p.value)
		} else {
			t = -s.evalFirst(k, -beta, -p.value)
			if !k.done {
				t = -s.refuteRest(k, -beta, -p.value)
			}
		}
		if t > p.value {
			p.value = t
		}
		if p.value >= beta {
			s.Stats.AddCutoffs(1)
			return p.value
		}
	}
	return p.value
}

// Examine evaluates pos within w using the protocol Figure 8 applies to a
// child of an r-node: Eval_first (the node's first child is an e-node,
// evaluated completely) followed, if that does not settle the node, by
// Refute_rest over its remaining children. This is the serial work unit for
// one refutation step at the parallel search's serial frontier.
func (s *Searcher) Examine(pos game.Position, depth int, w game.Window) game.Value {
	p := &erNode{pos: pos, depth: depth}
	v := s.evalFirst(p, w.Alpha, w.Beta)
	if !p.done {
		v = s.refuteRest(p, w.Alpha, w.Beta)
	}
	return v
}

// refuteRest is function Refute_rest of Figure 8: examine P's remaining
// children (the first was handled by Eval_first) in order, attempting to
// refute P. Each child is examined by Eval_first followed, if the child is
// not yet done, by Refute_rest — the r-node protocol.
func (s *Searcher) refuteRest(p *erNode, alpha, beta game.Value) game.Value {
	s.Stats.AddRefutations(1)
	if alpha > p.value {
		p.value = alpha // see the package comment: retain the tentative value
	}
	for _, k := range p.kids[1:] {
		t := -s.evalFirst(k, -beta, -p.value)
		if !k.done {
			t = -s.refuteRest(k, -beta, -p.value)
		}
		if t > p.value {
			p.value = t
		}
		if p.value >= beta {
			s.Stats.AddCutoffs(1)
			p.done = true
			return p.value
		}
	}
	p.done = true
	s.Stats.AddRefuteFails(1)
	return p.value
}
