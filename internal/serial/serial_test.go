package serial

import (
	"math/rand"
	"testing"

	"ertree/internal/game"
	"ertree/internal/gtree"
)

// deepNegmax is an independent oracle (does not share code with Searcher).
func deepNegmax(n *gtree.Node) game.Value { return n.Negmax() }

func TestNegmaxFixtures(t *testing.T) {
	cases := []struct {
		name string
		root *gtree.Node
		want game.Value
	}{
		{"figure2-shallow", gtree.Figure2Shallow(), 7},
		{"figure2-deep", gtree.Figure2Deep(), 7},
		{"figure6", gtree.Figure6Tree(), 11},
		{"figure7", gtree.Figure7Tree(), 13},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var s Searcher
			got := s.Negmax(c.root, c.root.Height())
			if got != c.want {
				t.Fatalf("negmax = %d, want %d\ntree:\n%s", got, c.want, c.root)
			}
			if got != deepNegmax(c.root) {
				t.Fatalf("negmax disagrees with gtree oracle")
			}
		})
	}
}

func TestAlphaBetaPrunesFigure2(t *testing.T) {
	// Both Figure 2 trees contain a leaf labeled "pruned" that alpha-beta
	// must never evaluate: its value (-100) would change the root value to
	// 100 if it leaked into the search result.
	for _, tc := range []struct {
		name string
		root *gtree.Node
	}{
		{"shallow", gtree.Figure2Shallow()},
		{"deep", gtree.Figure2Deep()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stats game.Stats
			s := Searcher{Stats: &stats}
			got := s.AlphaBeta(tc.root, tc.root.Height(), game.FullWindow())
			if got != 7 {
				t.Fatalf("alpha-beta = %d, want 7", got)
			}
			var full game.Stats
			fs := Searcher{Stats: &full}
			fs.Negmax(tc.root, tc.root.Height())
			if stats.Evaluated.Load() >= full.Evaluated.Load() {
				t.Fatalf("alpha-beta evaluated %d leaves, negmax %d: expected pruning",
					stats.Evaluated.Load(), full.Evaluated.Load())
			}
			if stats.Cutoffs.Load() == 0 {
				t.Fatalf("expected at least one cutoff")
			}
		})
	}
}

func TestDeepCutoffOnlyWithDeepVariant(t *testing.T) {
	// On Figure 2(b), alpha-beta with deep cutoffs must prune node D's
	// second child, while the no-deep variant may not (the bound needed
	// comes from three levels up).
	withDeep := func() int64 {
		var st game.Stats
		s := Searcher{Stats: &st}
		s.AlphaBeta(gtree.Figure2Deep(), 4, game.FullWindow())
		return st.Evaluated.Load()
	}()
	noDeep := func() int64 {
		var st game.Stats
		s := Searcher{Stats: &st}
		s.AlphaBetaNoDeep(gtree.Figure2Deep(), 4, game.Inf)
		return st.Evaluated.Load()
	}()
	if withDeep >= noDeep {
		t.Fatalf("deep variant evaluated %d leaves, no-deep %d: deep cutoffs should save work here",
			withDeep, noDeep)
	}
}

// TestAllAlgorithmsAgreeRandom is the central soundness property: on random
// irregular trees, alpha-beta (both variants) and serial ER must return the
// exact negmax value.
func TestAllAlgorithmsAgreeRandom(t *testing.T) {
	specs := []gtree.RandomSpec{
		{MinDegree: 1, MaxDegree: 3, MinDepth: 1, MaxDepth: 4, ValueRange: 10},
		{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5, ValueRange: 100},
		{MinDegree: 2, MaxDegree: 2, MinDepth: 6, MaxDepth: 6, ValueRange: 5}, // many ties
		{MinDegree: 1, MaxDegree: 6, MinDepth: 1, MaxDepth: 3, ValueRange: 1000},
		{MinDegree: 3, MaxDegree: 3, MinDepth: 4, MaxDepth: 4, ValueRange: 2}, // heavy ties
	}
	rng := rand.New(rand.NewSource(20260706))
	for si, spec := range specs {
		for i := 0; i < 120; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			want := deepNegmax(root)
			var s Searcher
			if got := s.Negmax(root, h); got != want {
				t.Fatalf("spec %d tree %d: Negmax=%d want %d\n%s", si, i, got, want, root)
			}
			if got := s.AlphaBeta(root, h, game.FullWindow()); got != want {
				t.Fatalf("spec %d tree %d: AlphaBeta=%d want %d\n%s", si, i, got, want, root)
			}
			if got := s.AlphaBetaNoDeep(root, h, game.Inf); got != want {
				t.Fatalf("spec %d tree %d: AlphaBetaNoDeep=%d want %d\n%s", si, i, got, want, root)
			}
			if got := s.ER(root, h, game.FullWindow()); got != want {
				t.Fatalf("spec %d tree %d: ER=%d want %d\n%s", si, i, got, want, root)
			}
		}
	}
}

// TestAlgorithmsAgreeWithStaticOrder repeats the agreement property with a
// static-sort orderer, including informed and misleading interior values.
func TestAlgorithmsAgreeWithStaticOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, noise := range []game.Value{0, 5, 1000} {
		spec := gtree.RandomSpec{
			MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 5,
			ValueRange: 50, StaticNoise: noise,
		}
		for i := 0; i < 80; i++ {
			root := spec.Generate(rng)
			h := root.Height()
			want := deepNegmax(root)
			s := Searcher{Order: game.StaticOrder{MaxPly: 3}}
			if got := s.AlphaBeta(root, h, game.FullWindow()); got != want {
				t.Fatalf("noise %d tree %d: AlphaBeta=%d want %d", noise, i, got, want)
			}
			if got := s.ER(root, h, game.FullWindow()); got != want {
				t.Fatalf("noise %d tree %d: ER=%d want %d", noise, i, got, want)
			}
		}
	}
}

// TestFailSoftBounds verifies the fail-soft contract of AlphaBeta: searched
// with an arbitrary window, the result is exact inside the window, an upper
// bound when it fails low, and a lower bound when it fails high.
func TestFailSoftBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := gtree.RandomSpec{MinDegree: 1, MaxDegree: 4, MinDepth: 2, MaxDepth: 4, ValueRange: 30}
	for i := 0; i < 200; i++ {
		root := spec.Generate(rng)
		h := root.Height()
		exact := deepNegmax(root)
		a := game.Value(rng.Intn(61) - 30)
		b := game.Value(rng.Intn(61) - 30)
		if a > b {
			a, b = b, a
		}
		if a == b {
			b++
		}
		var s Searcher
		got := s.AlphaBeta(root, h, game.Window{Alpha: a, Beta: b})
		switch {
		case exact <= a:
			if got > a && got != exact {
				t.Fatalf("fail-low: window (%d,%d) exact %d got %d", a, b, exact, got)
			}
			if got < exact && got > a {
				t.Fatalf("fail-low bound violated")
			}
			if got > a {
				t.Fatalf("expected got<=a, got %d > %d", got, a)
			}
			if exact > got {
				t.Fatalf("fail-low: got %d must be >= exact %d is false? exact<=a<...", got, exact)
			}
		case exact >= b:
			if got < b {
				t.Fatalf("fail-high: window (%d,%d) exact %d got %d (want >= beta)", a, b, exact, got)
			}
			if got > exact {
				t.Fatalf("fail-high: got %d exceeds exact %d", got, exact)
			}
		default:
			if got != exact {
				t.Fatalf("interior: window (%d,%d) exact %d got %d", a, b, exact, got)
			}
		}
	}
}

// TestERRefutationAccounting sanity-checks ER's refutation counters.
func TestERRefutationAccounting(t *testing.T) {
	var st game.Stats
	s := Searcher{Stats: &st}
	root := gtree.Figure7Tree()
	if got := s.ER(root, root.Height(), game.FullWindow()); got != 13 {
		t.Fatalf("ER on figure 7 = %d, want 13", got)
	}
	snap := st.Snapshot()
	if snap.Refutations == 0 {
		t.Fatalf("expected refutation attempts, got none")
	}
	if snap.RefuteFails > snap.Refutations {
		t.Fatalf("failed refutations (%d) exceed attempts (%d)", snap.RefuteFails, snap.Refutations)
	}
}

// TestDepthLimit verifies that depth-limited searches evaluate frontier
// nodes statically rather than descending.
func TestDepthLimit(t *testing.T) {
	// Interior static values deliberately disagree with subtree values.
	inner := gtree.N(gtree.L(100), gtree.L(200)).WithStatic(-7)
	root := gtree.N(inner)
	var s Searcher
	if got := s.Negmax(root, 1); got != 7 {
		t.Fatalf("depth-1 negmax = %d, want 7 (negated static of frontier child)", got)
	}
	if got := s.AlphaBeta(root, 1, game.FullWindow()); got != 7 {
		t.Fatalf("depth-1 alpha-beta = %d, want 7", got)
	}
	if got := s.ER(root, 1, game.FullWindow()); got != 7 {
		t.Fatalf("depth-1 ER = %d, want 7", got)
	}
	if got := s.Negmax(root, 2); got != 100 {
		t.Fatalf("depth-2 negmax = %d, want 100", got)
	}
}

// TestBestFirstOrderVisitsMinimalTree: with children in best-first order,
// alpha-beta evaluates exactly the minimal number of leaves on complete
// trees (§2.2).
func TestBestFirstOrderVisitsMinimalTree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range []struct{ d, h int }{{2, 2}, {2, 4}, {3, 2}, {3, 3}, {4, 3}, {2, 6}, {5, 2}} {
		root := gtree.Complete(tc.d, tc.h, func(i int) game.Value {
			return game.Value(rng.Intn(2001) - 1000)
		})
		root.SortByNegmax()
		var st game.Stats
		s := Searcher{Stats: &st}
		want := deepNegmax(root)
		if got := s.AlphaBeta(root, tc.h, game.FullWindow()); got != want {
			t.Fatalf("d=%d h=%d: value %d want %d", tc.d, tc.h, got, want)
		}
		wantLeaves := int64(gtree.MinimalLeafCount(tc.d, tc.h))
		if st.Evaluated.Load() != wantLeaves {
			t.Errorf("d=%d h=%d: alpha-beta evaluated %d leaves, minimal tree has %d",
				tc.d, tc.h, st.Evaluated.Load(), wantLeaves)
		}
	}
}

func TestIterativeDeepeningInternal(t *testing.T) {
	// Degenerate inputs and the ER-based variant.
	var s Searcher
	if out := s.IterativeDeepening(gtree.L(3), DeepeningOptions{MaxDepth: 0}); out != nil {
		t.Fatal("MaxDepth 0 must return nil")
	}
	rng := rand.New(rand.NewSource(321))
	spec := gtree.RandomSpec{MinDegree: 2, MaxDegree: 3, MinDepth: 4, MaxDepth: 4, ValueRange: 20}
	for i := 0; i < 15; i++ {
		root := spec.Generate(rng)
		for _, algo := range []string{"ab", "er"} {
			out := s.IterativeDeepening(root, DeepeningOptions{MaxDepth: 4, Delta: 2, Algorithm: algo})
			if len(out) != 4 {
				t.Fatalf("%s: %d iterations", algo, len(out))
			}
			for _, r := range out {
				var o Searcher
				if want := o.Negmax(root, r.Depth); r.Value != want {
					t.Fatalf("%s depth %d: %d want %d (researches %d)",
						algo, r.Depth, r.Value, want, r.Researches)
				}
			}
		}
	}
}
