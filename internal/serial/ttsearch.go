package serial

import (
	"ertree/internal/game"
	"ertree/internal/tt"
)

// AlphaBetaTT is fail-soft alpha-beta with a transposition table. Positions
// implementing tt.Hashable are probed and stored; others search normally.
// Matching is equal-depth only, so the result is exactly the depth-limited
// negamax value (no search-instability effects from mixing depths), which
// the tests exploit: with or without the table, the value is identical.
func (s *Searcher) AlphaBetaTT(pos game.Position, depth int, w game.Window, table *tt.Table) game.Value {
	s.Stats.AddGenerated(1)
	return s.alphaBetaTT(pos, depth, 0, w, table)
}

func (s *Searcher) alphaBetaTT(pos game.Position, depth, ply int, w game.Window, table *tt.Table) game.Value {
	if depth == 0 {
		return s.leaf(pos, ply)
	}
	var key uint64
	hashable := false
	if h, ok := pos.(tt.Hashable); ok && table != nil {
		key = h.Hash()
		hashable = true
		if e, ok := table.Probe(key, depth); ok {
			switch e.Bound {
			case tt.Exact:
				return e.Value
			case tt.Lower:
				if e.Value >= w.Beta {
					s.Stats.AddCutoffs(1)
					return e.Value
				}
				if e.Value > w.Alpha {
					w.Alpha = e.Value
				}
			case tt.Upper:
				if e.Value <= w.Alpha {
					return e.Value
				}
				if e.Value < w.Beta {
					w.Beta = e.Value
				}
			}
		}
	}
	kids := s.expand(pos, ply, true)
	if len(kids) == 0 {
		return s.leaf(pos, ply)
	}
	m := -game.Inf
	cut := false
	for _, k := range kids {
		t := -s.alphaBetaTT(k, depth-1, ply+1, w.Child(m), table)
		if t > m {
			m = t
		}
		if m >= w.Beta {
			s.Stats.AddCutoffs(1)
			cut = true
			break
		}
	}
	if hashable {
		switch {
		case cut || m >= w.Beta:
			table.Store(key, depth, m, tt.Lower)
		case m <= w.Alpha:
			table.Store(key, depth, m, tt.Upper)
		default:
			table.Store(key, depth, m, tt.Exact)
		}
	}
	return m
}
