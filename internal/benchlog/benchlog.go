// Package benchlog appends benchmark headlines to a retained JSONL history
// file (the committed BENCH_history.jsonl), so speedup ratios and serving
// throughput can be tracked across commits instead of each run overwriting
// the last. One line per run: a timestamp, the producing source, host
// metadata that makes the numbers comparable, and a flat name→value map of
// the run's headline ratios.
package benchlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Entry is one history line. Ratios is deliberately a flat map rather than a
// fixed struct: the core benchmark and the load harness record different
// headlines, and future sources can add theirs without a schema migration.
type Entry struct {
	At         time.Time          `json:"at"`
	Source     string             `json:"source"` // "bench-real", "erload", ...
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Ratios     map[string]float64 `json:"ratios"`
}

// Append writes one history line for this host and the given headlines,
// creating the file if needed. The write is a single buffered append of an
// already-marshalled line, so concurrent appenders from different processes
// interleave at line granularity on POSIX filesystems.
func Append(path, source string, ratios map[string]float64) error {
	e := Entry{
		At:         time.Now().UTC(),
		Source:     source,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     ratios,
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadAll parses every line of a history file, rejecting malformed lines with
// their line number — the artifact guard test's workhorse.
func ReadAll(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []Entry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for n := 1; sc.Scan(); n++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, n, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}
