package benchlog

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestAppendAndReadAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := Append(path, "bench-real", map[string]float64{"sharded_vs_global": 1.7}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, "erload", map[string]float64{"smoke_throughput_rps": 12.5, "smoke_shed_rate": 0}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Source != "bench-real" || entries[1].Source != "erload" {
		t.Fatalf("sources: %q, %q", entries[0].Source, entries[1].Source)
	}
	if entries[0].Ratios["sharded_vs_global"] != 1.7 {
		t.Fatalf("ratio lost: %+v", entries[0].Ratios)
	}
	for i, e := range entries {
		if e.GoVersion != runtime.Version() || e.NumCPU != runtime.NumCPU() {
			t.Fatalf("entry %d missing host metadata: %+v", i, e)
		}
		if e.At.IsZero() || time.Since(e.At) > time.Minute {
			t.Fatalf("entry %d has an implausible timestamp: %v", i, e.At)
		}
	}
	if entries[1].At.Before(entries[0].At) {
		t.Fatalf("timestamps not monotone: %v then %v", entries[0].At, entries[1].At)
	}
}

func TestReadAllRejectsCorruptLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := Append(path, "bench-real", nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{not json\n")
	f.Close()
	if _, err := ReadAll(path); err == nil {
		t.Fatal("corrupt line parsed without error")
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	if err := Append(path, "a", nil); err != nil {
		t.Fatal(err)
	}
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("\n")
	f.Close()
	if err := Append(path, "b", nil); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (blank line should be skipped)", len(entries))
	}
}
