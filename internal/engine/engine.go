// Package engine turns the repository's one-shot searches into a long-lived
// analysis engine: cancellable, time-managed sessions that drive iterative
// deepening with aspiration windows over parallel ER, share one concurrent
// transposition table per engine, and always have a best-move-so-far answer
// when a deadline cuts them short. It is the serving-shaped subsystem behind
// cmd/erserve.
package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ertree/internal/game"
	"ertree/internal/tt"
)

// Sentinel errors returned by Analyze.
var (
	// ErrBusy reports that every session slot was occupied and none freed
	// up within the admission timeout.
	ErrBusy = errors.New("engine: busy: no session slot within the admission timeout")
	// ErrNoMoves reports a position with no legal moves.
	ErrNoMoves = errors.New("engine: position has no legal moves")
	// ErrNoResult reports that the deadline expired before even the
	// depth-1 iteration completed, so there is no move to return.
	ErrNoResult = errors.New("engine: deadline expired before the first iteration completed")
)

// Config configures an Engine.
type Config struct {
	// Name labels this engine's samples in the shared Telemetry — the game
	// key of a multi-game server (e.g. "othello"). Empty means "default".
	Name string
	// Workers is the parallel-ER worker count used by each search.
	// Defaults to 1.
	Workers int
	// SerialDepth is the remaining depth at or below which subtrees are
	// searched serially (the work grain of the core engine).
	SerialDepth int
	// Order is the move-ordering policy for the underlying searches; nil
	// means natural order.
	Order game.Orderer
	// Sharded runs every search on the per-worker sharded work-stealing
	// problem heap instead of the global two-queue heap. Same values,
	// less pop-path lock contention at high worker counts.
	Sharded bool
	// ProfileLabels runs every core task under runtime/pprof goroutine
	// labels (task_kind, spec) so CPU/mutex profiles taken from the serving
	// process segment by the search's work taxonomy.
	ProfileLabels bool
	// TableBits sizes the shared transposition table at 2^TableBits slots.
	// Zero disables the table. All sessions of this engine share it, both
	// concurrently and across iterations.
	TableBits int
	// TableShards is the stripe count of the shared table; zero picks
	// tt.DefaultShards.
	TableShards int
	// DeeperHits accepts transposition entries searched deeper than
	// requested (Plaat-style memory reuse). Off, probes match equal depth
	// only and every reported value is the exact depth-d value; on, values
	// may come from deeper searches — better moves, weaker depth
	// semantics.
	DeeperHits bool
	// Delta is the aspiration half-window around the previous iteration's
	// value. Zero searches every iteration with a full window.
	Delta game.Value
	// MaxConcurrent bounds the number of sessions analyzed at once;
	// further requests wait up to QueueTimeout for a slot. Defaults to 1.
	// Ignored when Pool is set.
	MaxConcurrent int
	// QueueTimeout is how long an over-capacity request may wait for a
	// session slot before ErrBusy. Zero rejects immediately when full.
	QueueTimeout time.Duration
	// Pool, if non-nil, is a session-slot pool shared with other engines:
	// all of them together run at most cap(Pool) concurrent sessions. A
	// multi-game server uses one Pool across its per-game engines.
	Pool Pool
	// Telemetry, if non-nil, receives per-session metric samples (outcome
	// counts, latency and depth histograms, core task/TT traffic) labeled
	// with Name. Engines sharing a registry share one Telemetry. Nil
	// disables recording; the engine's own Stats counters always run.
	Telemetry *Telemetry
}

// Pool is a shared set of session slots (a counting semaphore). Engines
// created with the same Pool contend for the same slots.
type Pool chan struct{}

// NewPool creates a pool of n session slots (minimum 1).
func NewPool(n int) Pool {
	if n < 1 {
		n = 1
	}
	return make(Pool, n)
}

// Engine is a long-lived analysis engine for one game. Sessions admitted
// through Analyze share the engine's transposition table and its bounded
// pool of session slots. All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	table *tt.Shared
	sem   chan struct{}

	waiting     atomic.Int64
	started     atomic.Int64
	completed   atomic.Int64
	deadlineCut atomic.Int64
	rejected    atomic.Int64
	failed      atomic.Int64
	nodes       atomic.Int64
	researches  atomic.Int64

	// Core-search aggregates, folded in once per session (see coreTotals).
	serialTasks atomic.Int64
	leafTasks   atomic.Int64
	specPops    atomic.Int64
	dropped     atomic.Int64
	cutoffDrops atomic.Int64
	heapOps     atomic.Int64
	steals      atomic.Int64
	stealFails  atomic.Int64
	ttProbes    atomic.Int64
	ttHits      atomic.Int64
	ttStores    atomic.Int64
	ttCutoffs   atomic.Int64
}

// name returns the engine's telemetry label.
func (e *Engine) name() string {
	if e.cfg.Name != "" {
		return e.cfg.Name
	}
	return "default"
}

// addCore folds a finished session's core-search counters into the engine's
// aggregates.
func (e *Engine) addCore(c *coreTotals) {
	e.serialTasks.Add(c.serialTasks)
	e.leafTasks.Add(c.leafTasks)
	e.specPops.Add(c.specPops)
	e.dropped.Add(c.dropped)
	e.cutoffDrops.Add(c.cutoffDrops)
	e.heapOps.Add(c.heapOps)
	e.steals.Add(c.steals)
	e.stealFails.Add(c.stealFails)
	e.ttProbes.Add(c.ttProbes)
	e.ttHits.Add(c.ttHits)
	e.ttStores.Add(c.ttStores)
	e.ttCutoffs.Add(c.ttCutoffs)
}

// New creates an engine. The zero Config is usable: one worker, one
// concurrent session, no transposition table, full-window iterations.
func New(cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	e := &Engine{cfg: cfg, sem: cfg.Pool}
	if e.sem == nil {
		e.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.TableBits > 0 {
		e.table = tt.NewShared(cfg.TableBits, cfg.TableShards)
	}
	return e
}

// acquire claims a session slot, waiting up to QueueTimeout when the pool is
// full. ctx expiry during the wait is reported as the context's error.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	if e.cfg.QueueTimeout <= 0 {
		e.rejected.Add(1)
		return ErrBusy
	}
	e.waiting.Add(1)
	defer e.waiting.Add(-1)
	timer := time.NewTimer(e.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-timer.C:
		e.rejected.Add(1)
		return ErrBusy
	case <-ctx.Done():
		e.rejected.Add(1)
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	Capacity    int   // session slots
	Active      int   // sessions currently running
	Waiting     int64 // requests queued for a slot
	Started     int64 // sessions admitted
	Completed   int64 // sessions that reached their full requested depth
	DeadlineCut int64 // sessions cut short by their deadline
	Rejected    int64 // admissions refused (queue timeout or caller gave up)
	Failed      int64 // sessions that errored
	Nodes       int64 // total tree nodes generated across all sessions
	Researches  int64 // aspiration-window re-searches across all sessions

	// Core-search aggregates across all sessions.
	SerialTasks int64 // serial-ER subtree work units
	LeafTasks   int64 // frontier/terminal static evaluations
	SpecPops    int64 // speculative-queue pops
	Dropped     int64 // dead nodes discarded at pop time
	CutoffDrops int64 // nodes cut off at pop time
	HeapOps     int64 // problem-heap pushes + pops
	Steals      int64 // sharded-heap tasks taken from another worker's shard
	StealFails  int64 // steal sweeps that found every shard empty

	// Transposition traffic as the searches saw it: session-level root-child
	// probes plus the core serial tasks' probes.
	TTProbes  int64
	TTHits    int64
	TTStores  int64
	TTCutoffs int64 // searches answered by the table without searching

	HasTable     bool
	Table        tt.SharedStats
	TableHitRate float64
	TableFill    int
	TableLen     int
}

// Stats returns the engine's current counters. Counters are atomics; the
// snapshot is approximate while sessions are running.
func (e *Engine) Stats() Stats {
	s := Stats{
		Capacity:    cap(e.sem),
		Active:      len(e.sem),
		Waiting:     e.waiting.Load(),
		Started:     e.started.Load(),
		Completed:   e.completed.Load(),
		DeadlineCut: e.deadlineCut.Load(),
		Rejected:    e.rejected.Load(),
		Failed:      e.failed.Load(),
		Nodes:       e.nodes.Load(),
		Researches:  e.researches.Load(),
		SerialTasks: e.serialTasks.Load(),
		LeafTasks:   e.leafTasks.Load(),
		SpecPops:    e.specPops.Load(),
		Dropped:     e.dropped.Load(),
		CutoffDrops: e.cutoffDrops.Load(),
		HeapOps:     e.heapOps.Load(),
		Steals:      e.steals.Load(),
		StealFails:  e.stealFails.Load(),
		TTProbes:    e.ttProbes.Load(),
		TTHits:      e.ttHits.Load(),
		TTStores:    e.ttStores.Load(),
		TTCutoffs:   e.ttCutoffs.Load(),
	}
	if e.table != nil {
		s.HasTable = true
		s.Table = e.table.Stats()
		s.TableHitRate = e.table.HitRate()
		s.TableFill = e.table.Fill()
		s.TableLen = e.table.Len()
	}
	return s
}

// Table exposes the engine's shared transposition table (nil when disabled);
// tests use it to assert cross-session reuse.
func (e *Engine) Table() *tt.Shared { return e.table }

// coreTable returns the shared table as the prober handed to core.Search, or
// a nil interface when the engine runs without a table. The explicit nil
// check matters: wrapping a nil *tt.Shared in a tt.Prober would yield a
// non-nil interface and core would probe through a nil table.
func (e *Engine) coreTable() tt.Prober {
	if e.table == nil {
		return nil
	}
	return e.table
}
