// Package engine turns the repository's one-shot searches into a long-lived
// analysis engine: cancellable, time-managed sessions that drive iterative
// deepening with aspiration windows over parallel ER, share one concurrent
// transposition table per engine, and always have a best-move-so-far answer
// when a deadline cuts them short. It is the serving-shaped subsystem behind
// cmd/erserve.
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ertree/internal/backend"
	"ertree/internal/driver"
	"ertree/internal/game"
	"ertree/internal/obs"
	"ertree/internal/tt"

	// Register the lazysmp backend alongside the in-package er and serial
	// ones, so every engine user can select any of the three by name.
	_ "ertree/internal/lazysmp"
)

// Sentinel errors returned by Analyze.
var (
	// ErrBusy reports that every session slot was occupied and none freed
	// up within the admission timeout.
	ErrBusy = errors.New("engine: busy: no session slot within the admission timeout")
	// ErrNoMoves reports a position with no legal moves.
	ErrNoMoves = errors.New("engine: position has no legal moves")
	// ErrNoResult reports that the deadline expired before even the
	// depth-1 iteration completed, so there is no move to return.
	ErrNoResult = errors.New("engine: deadline expired before the first iteration completed")
	// ErrUnknownBackend reports a SessionOptions.Backend that names no
	// registered search backend; the wrapped message lists the valid set.
	ErrUnknownBackend = errors.New("engine: unknown search backend")
	// ErrUnknownDriver reports a SessionOptions.Driver that names no
	// registered root driver; the wrapped message lists the valid set.
	ErrUnknownDriver = errors.New("engine: unknown root driver")
)

// EnvBackend is the environment variable consulted when Config.Backend is
// empty, so a test matrix (CI's backend leg) can force every engine in the
// process onto one backend without threading a flag through each test.
const EnvBackend = "ERTREE_BACKEND"

// DefaultBackend is the search backend engines use when neither
// Config.Backend nor EnvBackend selects one: the paper's parallel ER
// scheduler, the behavior engines had before backends were selectable.
const DefaultBackend = "er"

// EnvDriver is the environment variable consulted when Config.Driver is
// empty, so a test matrix (CI's driver leg) can force every engine in the
// process onto one root driver without threading a flag through each test.
const EnvDriver = "ERTREE_DRIVER"

// DefaultDriver is the root driver engines use when neither Config.Driver
// nor EnvDriver selects one: the classic aspiration deepening loop, the
// behavior engines had before drivers were selectable.
const DefaultDriver = driver.Default

// Config configures an Engine.
type Config struct {
	// Name labels this engine's samples in the shared Telemetry — the game
	// key of a multi-game server (e.g. "othello"). Empty means "default".
	Name string
	// Backend selects the search backend sessions run on by default:
	// "er" (parallel ER, the paper's scheduler), "serial" (single-threaded
	// scout/PVS), or "lazysmp" (shared-table deepening workers). Empty
	// consults the ERTREE_BACKEND environment variable, then falls back to
	// DefaultBackend. Unknown names panic in New — validate user input with
	// backend.Valid first. Per-session overrides go through
	// SessionOptions.Backend.
	Backend string
	// Driver selects the root driver that resolves each deepening iteration:
	// "aspiration" (wide window around the previous value, the classic
	// loop), "mtdf" (null-window probes against the shared table), or "bns"
	// (the best-first SSS*-equivalent probe order). Empty consults the
	// ERTREE_DRIVER environment variable, then falls back to DefaultDriver.
	// Unknown names panic in New — validate user input with driver.Valid
	// first. Per-session overrides go through SessionOptions.Driver.
	Driver string
	// Workers is the parallel-ER worker count used by each search.
	// Defaults to 1.
	Workers int
	// SerialDepth is the remaining depth at or below which subtrees are
	// searched serially (the work grain of the core engine).
	SerialDepth int
	// Order is the move-ordering policy for the underlying searches; nil
	// means natural order.
	Order game.Orderer
	// Sharded runs every search on the per-worker sharded work-stealing
	// problem heap instead of the global two-queue heap. Same values,
	// less pop-path lock contention at high worker counts.
	Sharded bool
	// ProfileLabels runs every core task under runtime/pprof goroutine
	// labels (task_kind, spec) so CPU/mutex profiles taken from the serving
	// process segment by the search's work taxonomy.
	ProfileLabels bool
	// TableBits sizes the shared transposition table at 2^TableBits slots.
	// Zero disables the table. All sessions of this engine share it, both
	// concurrently and across iterations.
	TableBits int
	// TableShards is the stripe count of the shared table; zero picks
	// tt.DefaultShards. Only the striped implementation stripes; the
	// lock-free table ignores it.
	TableShards int
	// TableImpl selects the shared-table implementation: "lockfree" (atomic
	// cache-line buckets with XOR key validation and aging replacement) or
	// "striped" (the mutex-striped direct-mapped baseline). Empty consults
	// the ERTREE_TABLE environment variable, then falls back to
	// tt.DefaultImpl. Unknown names panic in New — validate user input with
	// tt.ValidImpl first.
	TableImpl string
	// DeeperHits accepts transposition entries searched deeper than
	// requested (Plaat-style memory reuse). Off, probes match equal depth
	// only and every reported value is the exact depth-d value; on, values
	// may come from deeper searches — better moves, weaker depth
	// semantics.
	DeeperHits bool
	// Delta is the aspiration half-window around the previous iteration's
	// value. Zero searches every iteration with a full window.
	Delta game.Value
	// MaxConcurrent bounds the number of sessions analyzed at once;
	// further requests wait up to QueueTimeout for a slot. Defaults to 1.
	// Ignored when Pool is set.
	MaxConcurrent int
	// QueueTimeout is how long an over-capacity request may wait for a
	// session slot before ErrBusy. Zero rejects immediately when full.
	QueueTimeout time.Duration
	// Pool, if non-nil, is a session-slot pool shared with other engines:
	// all of them together run at most cap(Pool) concurrent sessions. A
	// multi-game server uses one Pool across its per-game engines.
	Pool Pool
	// Telemetry, if non-nil, receives per-session metric samples (outcome
	// counts, latency and depth histograms, core task/TT traffic) labeled
	// with Name. Engines sharing a registry share one Telemetry. Nil
	// disables recording; the engine's own Stats counters always run.
	Telemetry *Telemetry
	// Obs, if non-nil, is the self-monitor watching this engine: sessions
	// register stall-watchdog heartbeats with it (start, per-iteration
	// progress, end), and its sampler reads the engine's Gauges. Nil (the
	// default) costs one pointer test per session and nothing else.
	Obs *obs.Monitor
}

// Pool is a shared set of session slots (a counting semaphore). Engines
// created with the same Pool contend for the same slots.
type Pool chan struct{}

// NewPool creates a pool of n session slots (minimum 1).
func NewPool(n int) Pool {
	if n < 1 {
		n = 1
	}
	return make(Pool, n)
}

// Engine is a long-lived analysis engine for one game. Sessions admitted
// through Analyze share the engine's transposition table and its bounded
// pool of session slots. All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	table tt.SharedTable
	sem   chan struct{}
	// backends holds one instance of every registered backend, built against
	// this engine's table and scheduler knobs at New, so per-session backend
	// switches (?backend=) are map lookups, not constructions. drivers is
	// the same arrangement for the root drivers (?driver=).
	backends map[string]backend.Backend
	drivers  map[string]driver.Driver

	// backendSessions and driverSessions count admitted sessions per backend
	// and driver name (the Stats attribution of mixed traffic).
	bmu             sync.Mutex
	backendSessions map[string]int64
	driverSessions  map[string]int64

	waiting     atomic.Int64
	started     atomic.Int64
	completed   atomic.Int64
	deadlineCut atomic.Int64
	rejected    atomic.Int64
	failed      atomic.Int64
	nodes       atomic.Int64
	researches  atomic.Int64
	probes      atomic.Int64
	iterations  atomic.Int64

	// Shed-by-cause breakdown of rejected: immediate refusals (no queue),
	// queue-timeout expiries, and callers that cancelled while queued.
	shedFull      atomic.Int64
	shedTimeout   atomic.Int64
	shedCancelled atomic.Int64

	// Core-search aggregates, folded in once per session (see coreTotals).
	serialTasks atomic.Int64
	leafTasks   atomic.Int64
	specPops    atomic.Int64
	dropped     atomic.Int64
	cutoffDrops atomic.Int64
	heapOps     atomic.Int64
	steals      atomic.Int64
	stealFails  atomic.Int64
	ttProbes    atomic.Int64
	ttHits      atomic.Int64
	ttStores    atomic.Int64
	ttCutoffs   atomic.Int64
}

// name returns the engine's telemetry label.
func (e *Engine) name() string {
	if e.cfg.Name != "" {
		return e.cfg.Name
	}
	return "default"
}

// addCore folds a finished session's core-search counters into the engine's
// aggregates.
func (e *Engine) addCore(c *coreTotals) {
	e.serialTasks.Add(c.serialTasks)
	e.leafTasks.Add(c.leafTasks)
	e.specPops.Add(c.specPops)
	e.dropped.Add(c.dropped)
	e.cutoffDrops.Add(c.cutoffDrops)
	e.heapOps.Add(c.heapOps)
	e.steals.Add(c.steals)
	e.stealFails.Add(c.stealFails)
	e.ttProbes.Add(c.ttProbes)
	e.ttHits.Add(c.ttHits)
	e.ttStores.Add(c.ttStores)
	e.ttCutoffs.Add(c.ttCutoffs)
}

// New creates an engine. The zero Config is usable: one worker, one
// concurrent session, no transposition table, full-window iterations, the
// default (er) backend. An unknown Config.Backend panics — it is a wiring
// bug, not user input; servers validate request parameters with
// backend.Valid before they get here.
func New(cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.Backend == "" {
		cfg.Backend = os.Getenv(EnvBackend)
	}
	if cfg.Backend == "" {
		cfg.Backend = DefaultBackend
	}
	if !backend.Valid(cfg.Backend) {
		panic(fmt.Sprintf("engine: unknown backend %q (registered: %s)",
			cfg.Backend, backend.NamesString()))
	}
	if cfg.Driver == "" {
		cfg.Driver = os.Getenv(EnvDriver)
	}
	if cfg.Driver == "" {
		cfg.Driver = DefaultDriver
	}
	if !driver.Valid(cfg.Driver) {
		panic(fmt.Sprintf("engine: unknown driver %q (registered: %s)",
			cfg.Driver, driver.NamesString()))
	}
	e := &Engine{
		cfg:             cfg,
		sem:             cfg.Pool,
		backendSessions: make(map[string]int64),
		driverSessions:  make(map[string]int64),
	}
	if e.sem == nil {
		e.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.TableBits > 0 {
		table, err := tt.NewSharedTable(cfg.TableImpl, cfg.TableBits, cfg.TableShards)
		if err != nil {
			panic(fmt.Sprintf("engine: %v", err))
		}
		e.table = table
	}
	bcfg := backend.Config{
		Workers:     cfg.Workers,
		SerialDepth: cfg.SerialDepth,
		Order:       cfg.Order,
		Table:       e.table,
		DeeperHits:  cfg.DeeperHits,
		// The engine has always run ER with the full speculation protocol on.
		ParallelRefutation: true,
		MultipleENodes:     true,
		EarlyChoice:        true,
		Sharded:            cfg.Sharded,
		ProfileLabels:      cfg.ProfileLabels,
	}
	e.backends = make(map[string]backend.Backend)
	for _, name := range backend.Names() {
		be, err := backend.New(name, bcfg)
		if err != nil {
			panic(err) // unreachable: the name came from the registry
		}
		e.backends[name] = be
	}
	// One instance of every registered driver, so per-session driver
	// switches (?driver=) are map lookups too. Drivers share the engine's
	// aspiration half-window; the probe-policy knobs keep their defaults.
	dcfg := driver.Config{Delta: cfg.Delta}
	e.drivers = make(map[string]driver.Driver)
	for _, name := range driver.Names() {
		d, err := driver.New(name, dcfg)
		if err != nil {
			panic(err) // unreachable: the name came from the registry
		}
		e.drivers[name] = d
	}
	return e
}

// Backend returns the engine's default backend name.
func (e *Engine) Backend() string { return e.cfg.Backend }

// Driver returns the engine's default root-driver name.
func (e *Engine) Driver() string { return e.cfg.Driver }

// driverFor resolves a per-session driver override ("" means the engine
// default) to the prebuilt instance.
func (e *Engine) driverFor(name string) (driver.Driver, error) {
	if name == "" {
		name = e.cfg.Driver
	}
	d, ok := e.drivers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)",
			ErrUnknownDriver, name, driver.NamesString())
	}
	return d, nil
}

// countDriverSession attributes one admitted session to the root driver
// resolving its iterations.
func (e *Engine) countDriverSession(name string) {
	e.bmu.Lock()
	e.driverSessions[name]++
	e.bmu.Unlock()
}

// backendFor resolves a per-session backend override ("" means the engine
// default) to the prebuilt instance.
func (e *Engine) backendFor(name string) (backend.Backend, error) {
	if name == "" {
		name = e.cfg.Backend
	}
	be, ok := e.backends[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)",
			ErrUnknownBackend, name, backend.NamesString())
	}
	return be, nil
}

// countBackendSession attributes one admitted session to the backend serving
// it.
func (e *Engine) countBackendSession(name string) {
	e.bmu.Lock()
	e.backendSessions[name]++
	e.bmu.Unlock()
}

// Shed-cause labels: why an admission was refused. "full" is an immediate
// rejection (no queue configured), "timeout" a queue wait that expired, and
// "cancelled" a caller that gave up while queued.
const (
	ShedFull      = "full"
	ShedTimeout   = "timeout"
	ShedCancelled = "cancelled"
)

// acquire claims a session slot, waiting up to QueueTimeout when the pool is
// full. ctx expiry during the wait is reported as the context's error. Every
// outcome records how long the caller waited (the admission-wait histogram —
// under load, queueing is where serving latency hides), and refusals count by
// cause.
func (e *Engine) acquire(ctx context.Context) error {
	start := time.Now()
	select {
	case e.sem <- struct{}{}:
		e.cfg.Telemetry.recordAdmissionWait(e.name(), time.Since(start))
		return nil
	default:
	}
	if e.cfg.QueueTimeout <= 0 {
		e.rejected.Add(1)
		e.shedFull.Add(1)
		e.cfg.Telemetry.recordAdmissionWait(e.name(), time.Since(start))
		e.cfg.Telemetry.recordShed(e.name(), ShedFull)
		return ErrBusy
	}
	e.waiting.Add(1)
	defer e.waiting.Add(-1)
	timer := time.NewTimer(e.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case e.sem <- struct{}{}:
		e.cfg.Telemetry.recordAdmissionWait(e.name(), time.Since(start))
		return nil
	case <-timer.C:
		e.rejected.Add(1)
		e.shedTimeout.Add(1)
		e.cfg.Telemetry.recordAdmissionWait(e.name(), time.Since(start))
		e.cfg.Telemetry.recordShed(e.name(), ShedTimeout)
		return ErrBusy
	case <-ctx.Done():
		e.rejected.Add(1)
		e.shedCancelled.Add(1)
		e.cfg.Telemetry.recordAdmissionWait(e.name(), time.Since(start))
		e.cfg.Telemetry.recordShed(e.name(), ShedCancelled)
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	Capacity    int   // session slots
	Active      int   // sessions currently running
	Waiting     int64 // requests queued for a slot
	Started     int64 // sessions admitted
	Completed   int64 // sessions that reached their full requested depth
	DeadlineCut int64 // sessions cut short by their deadline
	Rejected    int64 // admissions refused (queue timeout or caller gave up)
	Failed      int64 // sessions that errored

	// Rejected broken down by cause: "full" (immediate, no queue configured),
	// "timeout" (queue wait expired), "cancelled" (caller gave up queued).
	ShedFull      int64
	ShedTimeout   int64
	ShedCancelled int64
	Nodes         int64 // total tree nodes generated across all sessions
	Researches    int64 // wide-window re-searches across all sessions
	Probes        int64 // root-driver null-window probes across all sessions
	Iterations    int64 // completed deepening iterations across all sessions

	// Backend is the engine's default search backend; BackendSessions counts
	// admitted sessions per backend actually used (per-request overrides make
	// mixed-backend traffic, and this is how it stays attributable). Driver
	// and DriverSessions are the same pair for the root drivers.
	Backend         string
	BackendSessions map[string]int64
	Driver          string
	DriverSessions  map[string]int64

	// Core-search aggregates across all sessions.
	SerialTasks int64 // serial-ER subtree work units
	LeafTasks   int64 // frontier/terminal static evaluations
	SpecPops    int64 // speculative-queue pops
	Dropped     int64 // dead nodes discarded at pop time
	CutoffDrops int64 // nodes cut off at pop time
	HeapOps     int64 // problem-heap pushes + pops
	Steals      int64 // sharded-heap tasks taken from another worker's shard
	StealFails  int64 // steal sweeps that found every shard empty

	// Transposition traffic as the searches saw it: session-level root-child
	// probes plus the core serial tasks' probes.
	TTProbes  int64
	TTHits    int64
	TTStores  int64
	TTCutoffs int64 // searches answered by the table without searching

	HasTable     bool
	Table        tt.SharedStats
	TableHitRate float64
	TableFill    int
	TableLen     int
	// TableImpl names the table implementation ("striped" or "lockfree");
	// TableGeneration is its current aging generation (bumped once per
	// admitted session, wraps at 256).
	TableImpl       string
	TableGeneration uint8
}

// Stats returns the engine's current counters. Counters are atomics; the
// snapshot is approximate while sessions are running.
func (e *Engine) Stats() Stats {
	s := Stats{
		Capacity:      cap(e.sem),
		Active:        len(e.sem),
		Waiting:       e.waiting.Load(),
		Started:       e.started.Load(),
		Completed:     e.completed.Load(),
		DeadlineCut:   e.deadlineCut.Load(),
		Rejected:      e.rejected.Load(),
		Failed:        e.failed.Load(),
		ShedFull:      e.shedFull.Load(),
		ShedTimeout:   e.shedTimeout.Load(),
		ShedCancelled: e.shedCancelled.Load(),
		Nodes:         e.nodes.Load(),
		Researches:    e.researches.Load(),
		Probes:        e.probes.Load(),
		Iterations:    e.iterations.Load(),
		SerialTasks:   e.serialTasks.Load(),
		LeafTasks:     e.leafTasks.Load(),
		SpecPops:      e.specPops.Load(),
		Dropped:       e.dropped.Load(),
		CutoffDrops:   e.cutoffDrops.Load(),
		HeapOps:       e.heapOps.Load(),
		Steals:        e.steals.Load(),
		StealFails:    e.stealFails.Load(),
		TTProbes:      e.ttProbes.Load(),
		TTHits:        e.ttHits.Load(),
		TTStores:      e.ttStores.Load(),
		TTCutoffs:     e.ttCutoffs.Load(),
		Backend:       e.cfg.Backend,
		Driver:        e.cfg.Driver,
	}
	e.bmu.Lock()
	if len(e.backendSessions) > 0 {
		s.BackendSessions = make(map[string]int64, len(e.backendSessions))
		for k, v := range e.backendSessions {
			s.BackendSessions[k] = v
		}
	}
	if len(e.driverSessions) > 0 {
		s.DriverSessions = make(map[string]int64, len(e.driverSessions))
		for k, v := range e.driverSessions {
			s.DriverSessions[k] = v
		}
	}
	e.bmu.Unlock()
	if e.table != nil {
		s.HasTable = true
		s.Table = e.table.Stats()
		s.TableHitRate = e.table.HitRate()
		s.TableFill = e.table.Fill()
		s.TableLen = e.table.Len()
		s.TableImpl = e.table.Impl()
		s.TableGeneration = e.table.Generation()
	}
	return s
}

// Table exposes the engine's shared transposition table (nil when disabled);
// tests use it to assert cross-session reuse.
func (e *Engine) Table() tt.SharedTable { return e.table }

// Waiting returns the number of requests currently queued for a session slot
// — the admission queue depth. Cheaper than Stats() (one atomic load), so
// exposition-time gauges and load-test samplers can poll it freely.
func (e *Engine) Waiting() int64 { return e.waiting.Load() }

// Gauges is the cheap subset of Stats the self-monitor samples: plain atomic
// loads plus the table's sampled fill, no maps and no locks, so a 4 Hz
// background sampler reads it without perturbing the serving path.
type Gauges struct {
	InFlight      int64 // sessions holding a slot
	Waiting       int64 // admission queue depth
	Sessions      int64 // admitted sessions (cumulative)
	Iterations    int64 // completed deepening iterations (cumulative)
	Probes        int64 // root-driver null-window probes (cumulative)
	ShedFull      int64
	ShedTimeout   int64
	ShedCancelled int64
	Steals        int64
	StealFails    int64
	TTProbes      int64
	TTHits        int64
	TTFill        int64
	TTLen         int64
	TTGeneration  int64 // current aging generation (wraps at 256)
}

// Gauges returns the engine's self-monitoring gauge snapshot. Safe for
// concurrent use and cheap enough to poll at sampling rates.
func (e *Engine) Gauges() Gauges {
	g := Gauges{
		InFlight:      int64(len(e.sem)),
		Waiting:       e.waiting.Load(),
		Sessions:      e.started.Load(),
		Iterations:    e.iterations.Load(),
		Probes:        e.probes.Load(),
		ShedFull:      e.shedFull.Load(),
		ShedTimeout:   e.shedTimeout.Load(),
		ShedCancelled: e.shedCancelled.Load(),
		Steals:        e.steals.Load(),
		StealFails:    e.stealFails.Load(),
		TTProbes:      e.ttProbes.Load(),
		TTHits:        e.ttHits.Load(),
	}
	if e.table != nil {
		g.TTFill = int64(e.table.Fill())
		g.TTLen = int64(e.table.Len())
		g.TTGeneration = int64(e.table.Generation())
	}
	return g
}
