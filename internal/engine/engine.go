// Package engine turns the repository's one-shot searches into a long-lived
// analysis engine: cancellable, time-managed sessions that drive iterative
// deepening with aspiration windows over parallel ER, share one concurrent
// transposition table per engine, and always have a best-move-so-far answer
// when a deadline cuts them short. It is the serving-shaped subsystem behind
// cmd/erserve.
package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"ertree/internal/game"
	"ertree/internal/tt"
)

// Sentinel errors returned by Analyze.
var (
	// ErrBusy reports that every session slot was occupied and none freed
	// up within the admission timeout.
	ErrBusy = errors.New("engine: busy: no session slot within the admission timeout")
	// ErrNoMoves reports a position with no legal moves.
	ErrNoMoves = errors.New("engine: position has no legal moves")
	// ErrNoResult reports that the deadline expired before even the
	// depth-1 iteration completed, so there is no move to return.
	ErrNoResult = errors.New("engine: deadline expired before the first iteration completed")
)

// Config configures an Engine.
type Config struct {
	// Workers is the parallel-ER worker count used by each search.
	// Defaults to 1.
	Workers int
	// SerialDepth is the remaining depth at or below which subtrees are
	// searched serially (the work grain of the core engine).
	SerialDepth int
	// Order is the move-ordering policy for the underlying searches; nil
	// means natural order.
	Order game.Orderer
	// TableBits sizes the shared transposition table at 2^TableBits slots.
	// Zero disables the table. All sessions of this engine share it, both
	// concurrently and across iterations.
	TableBits int
	// TableShards is the stripe count of the shared table; zero picks
	// tt.DefaultShards.
	TableShards int
	// DeeperHits accepts transposition entries searched deeper than
	// requested (Plaat-style memory reuse). Off, probes match equal depth
	// only and every reported value is the exact depth-d value; on, values
	// may come from deeper searches — better moves, weaker depth
	// semantics.
	DeeperHits bool
	// Delta is the aspiration half-window around the previous iteration's
	// value. Zero searches every iteration with a full window.
	Delta game.Value
	// MaxConcurrent bounds the number of sessions analyzed at once;
	// further requests wait up to QueueTimeout for a slot. Defaults to 1.
	// Ignored when Pool is set.
	MaxConcurrent int
	// QueueTimeout is how long an over-capacity request may wait for a
	// session slot before ErrBusy. Zero rejects immediately when full.
	QueueTimeout time.Duration
	// Pool, if non-nil, is a session-slot pool shared with other engines:
	// all of them together run at most cap(Pool) concurrent sessions. A
	// multi-game server uses one Pool across its per-game engines.
	Pool Pool
}

// Pool is a shared set of session slots (a counting semaphore). Engines
// created with the same Pool contend for the same slots.
type Pool chan struct{}

// NewPool creates a pool of n session slots (minimum 1).
func NewPool(n int) Pool {
	if n < 1 {
		n = 1
	}
	return make(Pool, n)
}

// Engine is a long-lived analysis engine for one game. Sessions admitted
// through Analyze share the engine's transposition table and its bounded
// pool of session slots. All methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	table *tt.Shared
	sem   chan struct{}

	waiting     atomic.Int64
	started     atomic.Int64
	completed   atomic.Int64
	deadlineCut atomic.Int64
	rejected    atomic.Int64
	failed      atomic.Int64
	nodes       atomic.Int64
}

// New creates an engine. The zero Config is usable: one worker, one
// concurrent session, no transposition table, full-window iterations.
func New(cfg Config) *Engine {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	e := &Engine{cfg: cfg, sem: cfg.Pool}
	if e.sem == nil {
		e.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.TableBits > 0 {
		e.table = tt.NewShared(cfg.TableBits, cfg.TableShards)
	}
	return e
}

// acquire claims a session slot, waiting up to QueueTimeout when the pool is
// full. ctx expiry during the wait is reported as the context's error.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	if e.cfg.QueueTimeout <= 0 {
		e.rejected.Add(1)
		return ErrBusy
	}
	e.waiting.Add(1)
	defer e.waiting.Add(-1)
	timer := time.NewTimer(e.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-timer.C:
		e.rejected.Add(1)
		return ErrBusy
	case <-ctx.Done():
		e.rejected.Add(1)
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// Stats is a point-in-time snapshot of an engine's counters.
type Stats struct {
	Capacity    int   // session slots
	Active      int   // sessions currently running
	Waiting     int64 // requests queued for a slot
	Started     int64 // sessions admitted
	Completed   int64 // sessions that reached their full requested depth
	DeadlineCut int64 // sessions cut short by their deadline
	Rejected    int64 // admissions refused (queue timeout or caller gave up)
	Failed      int64 // sessions that errored
	Nodes       int64 // total tree nodes generated across all sessions

	HasTable     bool
	Table        tt.SharedStats
	TableHitRate float64
	TableFill    int
	TableLen     int
}

// Stats returns the engine's current counters. Counters are atomics; the
// snapshot is approximate while sessions are running.
func (e *Engine) Stats() Stats {
	s := Stats{
		Capacity:    cap(e.sem),
		Active:      len(e.sem),
		Waiting:     e.waiting.Load(),
		Started:     e.started.Load(),
		Completed:   e.completed.Load(),
		DeadlineCut: e.deadlineCut.Load(),
		Rejected:    e.rejected.Load(),
		Failed:      e.failed.Load(),
		Nodes:       e.nodes.Load(),
	}
	if e.table != nil {
		s.HasTable = true
		s.Table = e.table.Stats()
		s.TableHitRate = e.table.HitRate()
		s.TableFill = e.table.Fill()
		s.TableLen = e.table.Len()
	}
	return s
}

// Table exposes the engine's shared transposition table (nil when disabled);
// tests use it to assert cross-session reuse.
func (e *Engine) Table() *tt.Shared { return e.table }

// coreTable returns the shared table as the prober handed to core.Search, or
// a nil interface when the engine runs without a table. The explicit nil
// check matters: wrapping a nil *tt.Shared in a tt.Prober would yield a
// non-nil interface and core would probe through a nil table.
func (e *Engine) coreTable() tt.Prober {
	if e.table == nil {
		return nil
	}
	return e.table
}
