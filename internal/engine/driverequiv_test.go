package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ertree/internal/connect4"
	"ertree/internal/driver"
	"ertree/internal/game"
	"ertree/internal/othello"
	"ertree/internal/randtree"
	"ertree/internal/ttt"
)

// equivCase is one (game, position, depth) case of the driver-equivalence
// differential suite — the same spread as the backend invariance suite, so a
// driver bug and a backend bug surface against the same oracle.
type equivCase struct {
	name  string
	pos   game.Position
	depth int
}

func equivCases() []equivCase {
	tr := &randtree.Tree{Seed: 17, Degree: 4, Depth: 7, ValueRange: 10000}
	c4 := connect4.New().MustDrop(3, 2)
	return []equivCase{
		{"ttt/start", ttt.New(), 6},
		{"connect4/after-3-2", c4, 6},
		{"othello/start", othello.Start(), 4},
		{"randtree/7x4", tr.Root(), 6},
	}
}

// TestDriverEquivalence is the differential contract of the root-driver seam:
// every driver on every backend at P ∈ {1,2,4} must deepen to the
// negamax-oracle value with a proving move, whatever window sequence the
// driver chose to get there. A tiny aspiration half-window (Delta 1) forces
// the fail-low/fail-high reopen paths, and the randtree case's swinging
// values force MTD(f) first guesses that are wrong in both directions.
// Run under -race this doubles as the drivers' shared-table stress test.
func TestDriverEquivalence(t *testing.T) {
	for _, tc := range equivCases() {
		want := oracle(tc.pos, tc.depth)
		kids := tc.pos.Children()
		for _, drvName := range driver.Names() {
			for _, beName := range []string{"serial", "er", "lazysmp"} {
				for _, p := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("%s/%s/%s/p%d", tc.name, drvName, beName, p), func(t *testing.T) {
						e := New(Config{
							Backend:     beName,
							Driver:      drvName,
							Workers:     p,
							SerialDepth: 2,
							TableBits:   14,
							Delta:       1,
						})
						an, err := e.Analyze(context.Background(), tc.pos, tc.depth)
						if err != nil {
							t.Fatal(err)
						}
						if !an.Completed || an.Depth != tc.depth {
							t.Fatalf("session stopped at depth %d/%d", an.Depth, tc.depth)
						}
						if an.Driver != drvName || an.Backend != beName {
							t.Fatalf("attributed to %s/%s, want %s/%s",
								an.Driver, an.Backend, drvName, beName)
						}
						if an.Value != want {
							t.Fatalf("value %d, oracle %d", an.Value, want)
						}
						if an.Move < 0 || an.Move >= len(kids) {
							t.Fatalf("move %d out of range (%d children)", an.Move, len(kids))
						}
						if got := -oracle(kids[an.Move], tc.depth-1); got != want {
							t.Fatalf("move %d does not prove the value: child value %d, want %d",
								an.Move, got, want)
						}
						// mtdf converges within the bisection bound; bns's
						// γ = upper probes can creep (the SSS* worst case
						// against weak upper bounds) and are bounded by the
						// probe budget plus its wide-window fallback instead.
						probeBound := driver.DefaultBisectAfter + 32
						if drvName == "bns" {
							probeBound = driver.DefaultMaxProbes
						}
						for _, it := range an.Iterations {
							if it.Value != oracle(tc.pos, it.Depth) {
								t.Fatalf("depth %d: value %d, oracle %d",
									it.Depth, it.Value, oracle(tc.pos, it.Depth))
							}
							switch drvName {
							case "aspiration":
								if it.Probes != 0 {
									t.Fatalf("aspiration iteration reports %d probes", it.Probes)
								}
							default:
								if it.Probes == 0 && it.Researches == 0 {
									t.Fatalf("depth %d: %s resolved with no probes and no fallback",
										it.Depth, drvName)
								}
								if it.Probes > probeBound {
									t.Fatalf("depth %d: %d probes exceeds the driver's bound %d",
										it.Depth, it.Probes, probeBound)
								}
								if it.Probes == driver.DefaultMaxProbes && it.Researches == 0 {
									t.Fatalf("depth %d: probe budget spent without the fallback firing",
										it.Depth)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestDriverEquivalenceNoTable repeats the oracle check without a
// transposition table: MTD(f) loses the memory that makes probes cheap but
// must degrade gracefully — same value, bounded probes, no looping — because
// driver termination never depends on the table.
func TestDriverEquivalenceNoTable(t *testing.T) {
	tc := equivCase{"randtree", (&randtree.Tree{Seed: 99, Degree: 4, Depth: 6, ValueRange: 5000}).Root(), 5}
	want := oracle(tc.pos, tc.depth)
	for _, drvName := range driver.Names() {
		for _, beName := range []string{"serial", "er", "lazysmp"} {
			t.Run(drvName+"/"+beName, func(t *testing.T) {
				e := New(Config{Backend: beName, Driver: drvName, Workers: 2, SerialDepth: 2})
				an, err := e.Analyze(context.Background(), tc.pos, tc.depth)
				if err != nil {
					t.Fatal(err)
				}
				if an.Value != want {
					t.Fatalf("value %d without table, oracle %d", an.Value, want)
				}
				st := e.Stats()
				if st.Probes > int64(tc.depth*driver.DefaultMaxProbes) {
					t.Fatalf("%d probes for %d iterations: probe budget not enforced",
						st.Probes, tc.depth)
				}
			})
		}
	}
}

// TestSessionDriverOverride: ?driver=-style per-session overrides are
// attributed per driver actually used, both in Stats and in the engine's
// probe counter, while the engine default stays what Config said.
func TestSessionDriverOverride(t *testing.T) {
	// Driver pinned: the subject is per-session override attribution against
	// a known default, independent of the CI matrix's ERTREE_DRIVER.
	e := New(Config{Driver: "aspiration", Workers: 1, TableBits: 12, Delta: 25})
	if e.Driver() != "aspiration" {
		t.Fatalf("default driver %q", e.Driver())
	}
	ctx := context.Background()
	pos := ttt.New()
	if _, err := e.AnalyzeSession(ctx, pos, 4, SessionOptions{}); err != nil {
		t.Fatal(err)
	}
	an, err := e.AnalyzeSession(ctx, pos, 4, SessionOptions{Driver: "mtdf"})
	if err != nil {
		t.Fatal(err)
	}
	if an.Driver != "mtdf" {
		t.Fatalf("override session attributed to %q", an.Driver)
	}
	st := e.Stats()
	if st.Driver != "aspiration" {
		t.Fatalf("Stats.Driver %q changed by a per-session override", st.Driver)
	}
	if st.DriverSessions["aspiration"] != 1 || st.DriverSessions["mtdf"] != 1 {
		t.Fatalf("driver sessions %v, want one each", st.DriverSessions)
	}
	if st.Probes == 0 {
		t.Fatal("mtdf session recorded no probes")
	}
}

// TestSessionDriverUnknown: an unregistered driver fails the session with
// ErrUnknownDriver before admission — Started stays zero and the rejection
// counters keep meaning "the engine was busy".
func TestSessionDriverUnknown(t *testing.T) {
	e := New(Config{Workers: 1})
	_, err := e.AnalyzeSession(context.Background(), ttt.New(), 3, SessionOptions{Driver: "nosuch"})
	if !errors.Is(err, ErrUnknownDriver) {
		t.Fatalf("err %v, want ErrUnknownDriver", err)
	}
	st := e.Stats()
	if st.Started != 0 || st.Rejected != 0 {
		t.Fatalf("pre-admission failure moved counters: started %d rejected %d",
			st.Started, st.Rejected)
	}
}

// TestConfigDriverEnv: an empty Config.Driver consults ERTREE_DRIVER (the CI
// driver matrix's knob), and an unknown value there panics in New like an
// unknown Config.Driver does.
func TestConfigDriverEnv(t *testing.T) {
	t.Setenv(EnvDriver, "bns")
	e := New(Config{Workers: 1})
	if e.Driver() != "bns" {
		t.Fatalf("driver %q, want the env-selected bns", e.Driver())
	}

	t.Setenv(EnvDriver, "nosuch")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown env driver did not panic")
			}
		}()
		New(Config{Workers: 1})
	}()
}
