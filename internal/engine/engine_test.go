package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ertree/internal/connect4"
	"ertree/internal/game"
	"ertree/internal/randtree"
	"ertree/internal/ttt"
)

func oracle(pos game.Position, depth int) game.Value {
	kids := pos.Children()
	if depth == 0 || len(kids) == 0 {
		return pos.Value()
	}
	best := -game.Inf
	for _, k := range kids {
		if v := -oracle(k, depth-1); v > best {
			best = v
		}
	}
	return best
}

// TestAnalyzeExactPerIteration checks that every completed iteration's value
// is the exact negamax value at its depth and the reported move proves it,
// across table/no-table and aspiration/full-window configurations.
func TestAnalyzeExactPerIteration(t *testing.T) {
	tr := &randtree.Tree{Seed: 31, Degree: 4, Depth: 7, ValueRange: 10000}
	root := tr.Root()
	kids := root.Children()
	for _, cfg := range []Config{
		{Workers: 4, SerialDepth: 2},
		{Workers: 4, SerialDepth: 2, TableBits: 14, Delta: 25},
		{Workers: 1, TableBits: 12, Delta: 1},
	} {
		e := New(cfg)
		an, err := e.Analyze(context.Background(), root, 6)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if !an.Completed || an.Depth != 6 || len(an.Iterations) != 6 {
			t.Fatalf("cfg %+v: incomplete analysis %+v", cfg, an)
		}
		for _, it := range an.Iterations {
			if want := oracle(root, it.Depth); it.Value != want {
				t.Fatalf("cfg %+v depth %d: value %d, want %d", cfg, it.Depth, it.Value, want)
			}
			if it.Move < 0 || it.Move >= len(kids) {
				t.Fatalf("cfg %+v depth %d: move %d out of range", cfg, it.Depth, it.Move)
			}
			if want := -oracle(kids[it.Move], it.Depth-1); it.Value != want {
				t.Fatalf("cfg %+v depth %d: move %d does not prove value (%d != %d)",
					cfg, it.Depth, it.Move, want, it.Value)
			}
		}
	}
}

// TestAnalyzeTicTacToeDraw pins a known game value end to end.
func TestAnalyzeTicTacToeDraw(t *testing.T) {
	e := New(Config{Workers: 4, SerialDepth: 3, TableBits: 16})
	an, err := e.Analyze(context.Background(), ttt.New(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if an.Value != 0 || !an.Completed {
		t.Fatalf("tic-tac-toe start: value %d completed %v, want draw", an.Value, an.Completed)
	}
}

// TestDeadlineReturnsDeepestCompletedMove is the time-management contract: a
// deadline that expires mid-iteration yields the previous (deepest
// completed) iteration's move with Completed=false and no error.
func TestDeadlineReturnsDeepestCompletedMove(t *testing.T) {
	e := New(Config{Workers: 4, SerialDepth: 4, TableBits: 18})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	// Depth 40 Connect Four cannot complete; the deadline must cut it.
	an, err := e.Analyze(ctx, connect4.New(), 40)
	if err != nil {
		t.Fatalf("deadline-cut session errored: %v", err)
	}
	if an.Completed {
		t.Fatal("depth-40 Connect Four reported complete within 150ms")
	}
	if an.Depth < 1 || len(an.Iterations) != an.Depth {
		t.Fatalf("no completed iterations recorded: %+v", an)
	}
	last := an.Iterations[len(an.Iterations)-1]
	if an.Move != last.Move || an.Value != last.Value || last.Depth != an.Depth {
		t.Fatalf("analysis does not report the deepest completed iteration: %+v vs %+v", an, last)
	}
	if an.Move < 0 || an.Move >= 7 {
		t.Fatalf("move %d out of range for Connect Four", an.Move)
	}
	if stats := e.Stats(); stats.DeadlineCut != 1 {
		t.Fatalf("DeadlineCut = %d, want 1", stats.DeadlineCut)
	}
}

// TestExpiredContext covers the no-result edge: a context already expired at
// admission yields ErrNoResult (or the context error during queueing), never
// a bogus move.
func TestExpiredContext(t *testing.T) {
	e := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	an, err := e.Analyze(ctx, connect4.New(), 8)
	if err == nil {
		t.Fatalf("expired context produced an analysis: %+v", an)
	}
	if !errors.Is(err, ErrNoResult) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrNoResult or context.Canceled", err)
	}
}

// TestAdmissionControl verifies the bounded pool: with one slot occupied and
// a tiny queue timeout, the second session is rejected with ErrBusy.
func TestAdmissionControl(t *testing.T) {
	e := New(Config{Workers: 2, SerialDepth: 4, MaxConcurrent: 1, QueueTimeout: 20 * time.Millisecond})
	firstCtx, cancelFirst := context.WithCancel(context.Background())
	defer cancelFirst()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Holds the only slot until cancelled.
		_, _ = e.Analyze(firstCtx, connect4.New(), 40)
	}()
	// Wait until the first session owns the slot.
	for i := 0; ; i++ {
		if e.Stats().Active == 1 {
			break
		}
		if i > 500 {
			t.Fatal("first session never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := e.Analyze(context.Background(), connect4.New(), 4)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("second session: err = %v, want ErrBusy", err)
	}
	cancelFirst()
	<-done
	if s := e.Stats(); s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
}

// TestSharedTableAcrossSessions asserts the memory-reuse design: a second
// session on the same position answers out of the shared table, doing far
// less tree work.
func TestSharedTableAcrossSessions(t *testing.T) {
	e := New(Config{Workers: 2, SerialDepth: 2, TableBits: 16})
	pos := connect4.New().MustDrop(3, 3, 2)
	first, err := e.Analyze(context.Background(), pos, 7)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Analyze(context.Background(), pos, 7)
	if err != nil {
		t.Fatal(err)
	}
	if second.Value != first.Value || second.Move != first.Move {
		t.Fatalf("second session disagrees: %+v vs %+v", second, first)
	}
	if second.Nodes*4 > first.Nodes {
		t.Fatalf("shared table bought too little: first %d nodes, second %d", first.Nodes, second.Nodes)
	}
	if st := e.Stats(); !st.HasTable || st.Table.Hits == 0 {
		t.Fatalf("no table hits recorded: %+v", st)
	}
}

// TestConcurrentSessions exercises the pool and the shared table from
// parallel goroutines; run under -race this is the engine's concurrency
// proof.
func TestConcurrentSessions(t *testing.T) {
	e := New(Config{Workers: 2, SerialDepth: 2, TableBits: 14, MaxConcurrent: 4, QueueTimeout: 5 * time.Second})
	tr := &randtree.Tree{Seed: 5, Degree: 4, Depth: 6, ValueRange: 10000}
	want := oracle(tr.Root(), 5)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			an, err := e.Analyze(context.Background(), tr.Root(), 5)
			if err != nil {
				errs[i] = err
				return
			}
			if an.Value != want {
				errs[i] = errors.New("wrong value")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if s := e.Stats(); s.Completed != 8 {
		t.Fatalf("Completed = %d, want 8", s.Completed)
	}
}

// TestDeeperHitsMode sanity-checks the Plaat-style mode: analyses still
// return legal moves and, re-analyzing shallower than a cached deeper
// search, answer almost entirely from memory.
func TestDeeperHitsMode(t *testing.T) {
	// Driver pinned: near-total reuse is an aspiration-loop property — the
	// probe drivers mostly store bound entries on the first pass, which a
	// shallower re-analysis cannot answer exact queries from.
	e := New(Config{Driver: "aspiration", Workers: 2, SerialDepth: 2, TableBits: 16, DeeperHits: true})
	pos := connect4.New()
	if _, err := e.Analyze(context.Background(), pos, 8); err != nil {
		t.Fatal(err)
	}
	an, err := e.Analyze(context.Background(), pos, 6)
	if err != nil {
		t.Fatal(err)
	}
	if an.Move < 0 || an.Move >= 7 || !an.Completed {
		t.Fatalf("deeper-hits reanalysis broken: %+v", an)
	}
	if an.Nodes > 1000 {
		t.Fatalf("deeper-hits reanalysis searched %d nodes, expected near-total reuse", an.Nodes)
	}
}
