package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"ertree/internal/backend"
	"ertree/internal/core"
	"ertree/internal/driver"
	"ertree/internal/game"
	"ertree/internal/tt"
)

// Iteration reports one completed depth of a session's iterative deepening.
type Iteration struct {
	Depth      int        // search depth of this iteration
	Move       int        // best child index (natural move order)
	Value      game.Value // root value, from the side to move
	Researches int        // wide-window re-searches (aspiration reopens, probe fallback)
	Probes     int        // null-window probes (mtdf/bns drivers)
	Nodes      int64      // tree nodes generated during this iteration
	Steals     int64      // sharded-heap steals during this iteration
	// HeapPeak is the largest problem-heap occupancy sampled during this
	// iteration; zero unless the session runs with hooks armed
	// (SessionOptions.Trace or Record).
	HeapPeak int
	Elapsed  time.Duration
}

// Analysis is the result of a session: the best move found, at the deepest
// depth the deadline allowed, with the full per-iteration history.
type Analysis struct {
	// Label echoes SessionOptions.Label (e.g. the request id a server
	// session belongs to), so logs, traces, and flight reports correlate.
	Label string
	// Backend names the search backend that served the session; Driver names
	// the root driver that resolved its iterations.
	Backend    string
	Driver     string
	Move       int        // best child index (natural move order)
	Value      game.Value // value of the deepest completed iteration
	Depth      int        // deepest completed iteration
	Completed  bool       // the session reached the full requested depth
	Nodes      int64
	Elapsed    time.Duration
	Iterations []Iteration
	// Trace holds the merged per-worker telemetry of every core search the
	// session ran, on one common time axis anchored at session start.
	// Populated when the session armed hooks (SessionOptions.Trace records
	// spans for WriteWorkerTrace; SessionOptions.Record fills each worker's
	// Events for internal/flight).
	Trace []core.WorkerTelemetry
}

// Analyze runs one analysis session: iterative deepening from depth 1 to
// maxDepth, each iteration steered by an aspiration window around the
// previous value and searched under fail-soft bounds by the engine's
// configured search backend (parallel ER by default), probing and feeding
// the engine's shared transposition table.
//
// The session honors ctx cooperatively: when the deadline expires
// mid-iteration the in-flight searches abort, the partial iteration is
// discarded, and Analyze returns the deepest completed iteration's move with
// Completed=false and a nil error — a best-move-so-far is a successful
// answer for a time-managed engine. Only when not even depth 1 finished does
// it return ErrNoResult.
func (e *Engine) Analyze(ctx context.Context, pos game.Position, maxDepth int) (*Analysis, error) {
	return e.AnalyzeSession(ctx, pos, maxDepth, SessionOptions{})
}

// AnalyzeTrace is Analyze with worker-span tracing armed: every core search
// of the session runs with telemetry hooks on a shared epoch, and the
// returned Analysis carries the merged per-worker timeline in Trace. Costs a
// clock read and a span record per core task; use for on-demand diagnosis,
// not as the default serving path.
func (e *Engine) AnalyzeTrace(ctx context.Context, pos game.Position, maxDepth int) (*Analysis, error) {
	return e.AnalyzeSession(ctx, pos, maxDepth, SessionOptions{Trace: true})
}

// SessionOptions configures one analysis session's observability; the zero
// value is the plain serving path (no hooks, no streaming).
type SessionOptions struct {
	// Trace records per-task worker spans for Analysis.Trace (the Perfetto
	// timeline path of AnalyzeTrace).
	Trace bool
	// Record arms the core flight recorder with a per-worker ring of this
	// capacity; the recorded events land in Analysis.Trace[i].Events, ready
	// for internal/flight.Build. Zero disables recording.
	Record int
	// Label tags the session (Analysis.Label) with a caller-side
	// correlation id — the server passes its X-Request-ID so one request's
	// access-log line, worker trace, and flight report share a key.
	Label string
	// OnIteration, when non-nil, is called after each completed deepening
	// iteration from the session goroutine (never concurrently). Servers
	// stream these as progress events; a slow callback delays the next
	// iteration, not the search inside the current one.
	OnIteration func(Iteration)
	// Backend overrides the engine's configured search backend for this
	// session ("er", "serial", "lazysmp"); empty uses the engine default. An
	// unregistered name fails the session with ErrUnknownBackend before
	// admission.
	Backend string
	// Driver overrides the engine's configured root driver for this session
	// ("aspiration", "mtdf", "bns"); empty uses the engine default. An
	// unregistered name fails the session with ErrUnknownDriver before
	// admission.
	Driver string
}

// AnalyzeSession is Analyze with per-session observability options.
func (e *Engine) AnalyzeSession(ctx context.Context, pos game.Position, maxDepth int, opts SessionOptions) (*Analysis, error) {
	if maxDepth < 1 {
		return nil, fmt.Errorf("engine: maxDepth %d, must be at least 1", maxDepth)
	}
	kids := pos.Children()
	if len(kids) == 0 {
		return nil, ErrNoMoves
	}
	be, err := e.backendFor(opts.Backend)
	if err != nil {
		// Bad input, not capacity: fail before admission so the rejection
		// counters keep meaning "the engine was busy".
		return nil, err
	}
	drv, err := e.driverFor(opts.Driver)
	if err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		e.cfg.Telemetry.recordRejection(e.name())
		return nil, err
	}
	defer e.release()
	e.started.Add(1)
	// Register with the stall watchdog: the self-monitor fires when a session
	// makes no iteration progress within a multiple of its budget. Disabled
	// (the default), this whole block is one nil test.
	beat := -1
	if e.cfg.Obs != nil {
		budget := time.Duration(0)
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
		}
		beat = e.cfg.Obs.SessionStart(opts.Label, budget)
		defer e.cfg.Obs.SessionEnd(beat)
	}
	e.countBackendSession(be.Name())
	e.cfg.Telemetry.recordBackendSession(e.name(), be.Name())
	e.countDriverSession(drv.Name())
	e.cfg.Telemetry.recordDriverSession(e.name(), drv.Name())
	if e.table != nil {
		// One admitted session = one aging tick: entries untouched since
		// earlier sessions lose replacement priority in the lock-free table
		// (the striped baseline records the generation but does not age).
		e.table.NewSearch()
	}

	start := time.Now()
	s := &session{
		e:      e,
		be:     be,
		drv:    drv,
		pos:    pos,
		cancel: ctx.Done(),
		kids:   kids,
		order:  make([]int, len(kids)),
		scores: make([]game.Value, len(kids)),
		prev:   game.NoValue,
	}
	if opts.Trace || opts.Record > 0 {
		s.trace = newTraceCollector()
		// All of the session's searches share the session-start epoch, so
		// their spans land on one time axis and merge into per-worker
		// tracks. The collector also tracks peak heap occupancy for the
		// per-iteration progress reports.
		s.hooks = &core.Hooks{
			Epoch:        start,
			Spans:        opts.Trace,
			HeapEvery:    8,
			Events:       opts.Record,
			OnWorkerDone: s.observeWorker,
		}
	}
	for i := range s.order {
		s.order[i] = i
	}
	s.primeScores()

	an := &Analysis{Label: opts.Label, Backend: be.Name(), Driver: drv.Name(), Move: -1}
	researches, probes := 0, 0
	for depth := 1; depth <= maxDepth; depth++ {
		if ctx.Err() != nil {
			break
		}
		it, err := s.iterate(depth)
		researches += it.Researches
		probes += it.Probes
		if err != nil {
			if errors.Is(err, core.ErrAborted) {
				break // deadline hit mid-iteration; keep what we have
			}
			s.finish(outcomeFailed, time.Since(start), an.Depth, researches, probes)
			return nil, err
		}
		an.Iterations = append(an.Iterations, it)
		an.Move, an.Value, an.Depth = it.Move, it.Value, it.Depth
		s.prev = it.Value
		e.iterations.Add(1)
		if beat >= 0 {
			e.cfg.Obs.SessionProgress(beat)
		}
		if opts.OnIteration != nil {
			opts.OnIteration(it)
		}
		// Search the previous best first next iteration, then the rest by
		// their latest (bound) scores: the engine's own move ordering.
		s.reorder()
	}
	an.Elapsed = time.Since(start)
	an.Nodes = s.nodes
	if s.trace != nil {
		an.Trace = s.trace.workers()
	}
	if len(an.Iterations) == 0 {
		e.deadlineCut.Add(1)
		s.finish(outcomeNoResult, an.Elapsed, 0, researches, probes)
		return nil, ErrNoResult
	}
	an.Completed = an.Depth == maxDepth
	outcome := outcomeDeadlineCut
	if an.Completed {
		e.completed.Add(1)
		outcome = outcomeCompleted
	} else {
		e.deadlineCut.Add(1)
	}
	s.finish(outcome, an.Elapsed, an.Depth, researches, probes)
	return an, nil
}

// finish folds the session's accumulated counters into the engine and its
// Telemetry. Called exactly once per admitted session, on every exit path.
func (s *session) finish(outcome string, elapsed time.Duration, depth, researches, probes int) {
	e := s.e
	if outcome == outcomeFailed {
		e.failed.Add(1)
	}
	e.nodes.Add(s.nodes)
	e.researches.Add(int64(researches))
	e.probes.Add(int64(probes))
	e.addCore(&s.core)
	tel := e.cfg.Telemetry
	tel.recordSession(e.name(), outcome, elapsed, depth, researches, s.nodes)
	tel.recordDriverProbes(e.name(), s.drv.Name(), int64(probes))
	tel.recordCore(e.name(), &s.core)
	if e.table != nil {
		tel.recordTable(e.name(), e.table)
	}
}

// session is the per-request state of one deepening run.
type session struct {
	e      *Engine
	be     backend.Backend // the search backend serving this session
	drv    driver.Driver   // the root driver resolving each iteration
	pos    game.Position   // the analyzed position
	cancel <-chan struct{}
	kids   []game.Position // root children, natural order
	order  []int           // search order (indices into kids)
	scores []game.Value    // latest root-view score per child (bounds for non-best)
	prev   game.Value      // previous iteration's value (aspiration center)
	nodes  int64
	core   coreTotals      // search work counters, flushed once at finish
	hooks  *core.Hooks     // non-nil when the session is traced
	trace  *traceCollector // collects worker telemetry for Analysis.Trace

	// heapPeak is the largest sampled heap occupancy since the last
	// Iteration was cut (workers deliver concurrently; iterate swaps it out).
	heapPeak atomic.Int64
}

// observeWorker receives each finished worker's telemetry: it feeds the
// iteration-level heap-peak gauge and hands the shard to the collector.
func (s *session) observeWorker(wt core.WorkerTelemetry) {
	for _, hs := range wt.HeapSamples {
		occ := int64(hs.Primary + hs.Spec)
		for {
			cur := s.heapPeak.Load()
			if occ <= cur || s.heapPeak.CompareAndSwap(cur, occ) {
				break
			}
		}
	}
	s.trace.add(wt)
}

// iterate completes one depth by handing the fixed-depth root search to the
// session's driver: the driver decides which windows to search (one wide
// aspiration window, or a converging sequence of null-window probes) and
// returns an exact value with a proving move either way.
func (s *session) iterate(depth int) (Iteration, error) {
	it := Iteration{Depth: depth}
	start := time.Now()
	nodes0 := s.nodes
	steals0 := s.core.steals
	res, err := s.drv.Resolve(func(w game.Window) (int, game.Value, error) {
		return s.searchRoot(depth, w)
	}, s.prev)
	it.Researches = res.Researches
	it.Probes = res.Probes
	if err != nil {
		return it, err
	}
	it.Move, it.Value = res.Move, res.Value
	it.Nodes = s.nodes - nodes0
	it.Steals = s.core.steals - steals0
	it.HeapPeak = int(s.heapPeak.Swap(0))
	it.Elapsed = time.Since(start)
	return it, nil
}

// searchRoot runs one fixed-depth search of the session's position through
// the backend: the session passes its current move ordering in and folds the
// backend's fail-soft per-child scores back into its own (the backend marks
// children it never reached with game.NoValue, which must not clobber a
// real score from an earlier iteration).
func (s *session) searchRoot(depth int, w game.Window) (bestIdx int, best game.Value, err error) {
	resp, err := s.be.Search(backend.Request{
		Pos:       s.pos,
		Depth:     depth,
		Window:    w,
		RootOrder: s.order,
		Cancel:    s.cancel,
		Hooks:     s.hooks,
	})
	s.nodes += resp.Totals.Nodes
	s.core.addTotals(resp.Totals)
	if err != nil {
		return -1, 0, err
	}
	for i, v := range resp.Scores {
		if v != game.NoValue {
			s.scores[i] = v
		}
	}
	return resp.Move, resp.Value, nil
}

// primeScores seeds the root move ordering from the shared table before the
// first iteration: each child position is probed under its bare hash at any
// depth — the keying the core workers store under while searching subtrees —
// so a warm table (an earlier session on the same line, or the core's own
// in-search stores) orders the root moves before a single node is searched.
// The cached values are bounds of mixed depths, which is fine: they steer
// ordering only; exactness comes from the searches themselves.
func (s *session) primeScores() {
	if s.e.table == nil {
		return
	}
	primed := false
	for i, k := range s.kids {
		h, ok := k.(tt.Hashable)
		if !ok {
			return
		}
		if en, ok := s.e.table.ProbeDeep(h.Hash(), 0); ok {
			s.scores[i] = -en.Value
			primed = true
		}
	}
	if primed {
		s.reorder()
	}
}

// reorder sorts the search order by the latest scores, best first, keeping
// relative order stable for ties so the ordering is deterministic.
func (s *session) reorder() {
	sort.SliceStable(s.order, func(i, j int) bool {
		return s.scores[s.order[i]] > s.scores[s.order[j]]
	})
}
